// Quickstart: generate a graph, initialize with Karp-Sipser, compute the
// maximum matching with MS-BFS-Graft, and verify it with the Koenig
// certificate.
//
//   ./quickstart [scale]     (default scale 16: ~65k vertices per side)
#include <cstdio>
#include <cstdlib>

#include "graftmatch/graftmatch.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;

  RmatParams params;
  params.scale =
      argc > 1 ? static_cast<int>(cli::parse_int_arg("scale", argv[1], 1, 28))
               : 16;
  params.edge_factor = 16.0;
  params.seed = 7;

  std::printf("generating RMAT scale %d ...\n", params.scale);
  const BipartiteGraph graph = generate_rmat(params);
  const GraphStats gs = compute_graph_stats(graph);
  std::printf("graph: %s\n", format_graph_stats(gs).c_str());

  // Step 1: cheap maximal matching (the paper initializes everything
  // with Karp-Sipser).
  KarpSipserStats ks_stats;
  Matching matching = karp_sipser(graph, /*seed=*/1, &ks_stats);
  std::printf("Karp-Sipser: |M| = %lld (degree-1 rule %lld, random %lld) in %s\n",
              static_cast<long long>(matching.cardinality()),
              static_cast<long long>(ks_stats.degree_one_matches),
              static_cast<long long>(ks_stats.random_matches),
              format_seconds(ks_stats.seconds).c_str());

  // Step 2: grow to maximum cardinality with the tree-grafting algorithm.
  const RunStats stats = ms_bfs_graft(graph, matching);
  std::printf("%s\n", format_run_stats(stats).c_str());

  // Step 3: verify with an independent certificate (Koenig's theorem).
  if (!is_maximum_matching(graph, matching)) {
    std::printf("ERROR: certificate failed!\n");
    return 1;
  }
  std::printf("verified maximum: |M| = %lld (%.4f of all vertices matched)\n",
              static_cast<long long>(matching.cardinality()),
              matching.fraction_of_vertices());
  return 0;
}
