// Example: warm restarts -- reusing a cached maximum matching after the
// graph changes, instead of recomputing from scratch.
//
// Scenario (common in circuit simulation, the paper's motivating
// application): a sparse matrix is re-matched after small structural
// edits. A maximum matching of the old graph is still a VALID matching
// of the new graph once removed edges are dropped from it, so any
// augmenting-path algorithm can repair the difference. The example
// prints warm-vs-cold timings honestly: whether the warm start wins
// depends on how good (and how cheap) the initializer is on the graph
// at hand -- the repair paths left by a projected matching can be few
// but HARD (long alternating paths), while Karp-Sipser restarts leave
// few and easy ones on synthetic inputs.
//
// Also demonstrates matching serialization (matching_io) and the
// per-phase statistics (RunConfig::collect_phase_stats).
//
//   ./warm_restart [log2-vertices]     (default: 16)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace {

using namespace graftmatch;

// Remove `remove` random edges and add `add` random ones.
BipartiteGraph perturb(const BipartiteGraph& g, std::int64_t remove,
                       std::int64_t add, std::uint64_t seed) {
  EdgeList list = g.to_edges();
  Xoshiro256 rng(seed);
  for (std::int64_t k = 0; k < remove && !list.edges.empty(); ++k) {
    const auto at = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(list.edges.size())));
    list.edges[at] = list.edges.back();
    list.edges.pop_back();
  }
  for (std::int64_t k = 0; k < add; ++k) {
    list.edges.push_back(
        {static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(list.nx))),
         static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(list.ny)))});
  }
  return BipartiteGraph::from_edges(list);
}

// Drop matched pairs that are no longer edges of `g`.
Matching project_onto(const BipartiteGraph& g, const Matching& old) {
  Matching projected(g.num_x(), g.num_y());
  for (vid_t x = 0; x < g.num_x(); ++x) {
    const vid_t y = old.mate_of_x(x);
    if (y != kInvalidVertex && y < g.num_y() && g.has_edge(x, y)) {
      projected.match(x, y);
    }
  }
  return projected;
}

void print_phase_table(const RunStats& stats) {
  std::printf("  %-6s %7s %9s %10s %8s %8s\n", "phase", "levels", "paths",
              "edges", "grafted", "time");
  for (const PhaseStats& row : stats.phase_stats) {
    std::printf("  %-6lld %7lld %9lld %10lld %8s %8s\n",
                static_cast<long long>(row.phase),
                static_cast<long long>(row.levels),
                static_cast<long long>(row.augmentations),
                static_cast<long long>(row.edges),
                row.grafted ? "yes" : "no",
                format_seconds(row.seconds).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int log_size =
      argc > 1
          ? static_cast<int>(cli::parse_int_arg("log2-vertices", argv[1], 1, 28))
          : 16;
  ChungLuParams params;
  params.nx = params.ny = 1 << log_size;
  params.avg_degree = 8.0;
  params.seed = 13;
  const BipartiteGraph original = generate_chung_lu(params);

  // Cold run on the original graph; cache the result to disk.
  Matching matching = karp_sipser(original);
  RunConfig config;
  config.collect_phase_stats = true;
  RunStats cold = ms_bfs_graft(original, matching, config);
  std::printf("cold run   : |M| = %lld, %lld phases, %s\n",
              static_cast<long long>(cold.final_cardinality),
              static_cast<long long>(cold.phases),
              format_seconds(cold.seconds).c_str());
  const std::string cache = "/tmp/graftmatch_cached_matching.txt";
  write_matching_file(cache, matching);

  // The graph changes slightly (0.1% of edges rewired).
  const auto delta = original.num_edges() / 1000;
  const BipartiteGraph edited = perturb(original, delta, delta, 99);

  // Warm restart: load the cached matching, project it onto the edited
  // graph, repair.
  Matching warm = project_onto(edited, read_matching_file(cache));
  std::printf("projected  : |M| = %lld still valid after %lld edge edits\n",
              static_cast<long long>(warm.cardinality()),
              static_cast<long long>(2 * delta));
  RunStats warm_stats = ms_bfs_graft(edited, warm, config);
  std::printf("warm repair: |M| = %lld, %lld phases, %s\n",
              static_cast<long long>(warm_stats.final_cardinality),
              static_cast<long long>(warm_stats.phases),
              format_seconds(warm_stats.seconds).c_str());
  print_phase_table(warm_stats);

  // Reference: cold run on the edited graph.
  Matching cold2 = karp_sipser(edited);
  const RunStats cold2_stats = ms_bfs_graft(edited, cold2);
  const double cold_total = cold2_stats.seconds;
  std::printf("cold rerun : |M| = %lld, %lld phases, %s (+ initializer)\n",
              static_cast<long long>(cold2_stats.final_cardinality),
              static_cast<long long>(cold2_stats.phases),
              format_seconds(cold_total).c_str());

  if (warm_stats.final_cardinality != cold2_stats.final_cardinality ||
      !is_maximum_matching(edited, warm)) {
    std::printf("ERROR: warm restart missed the maximum!\n");
    return 1;
  }
  std::printf("warm restart verified maximum; %s was faster here.\n",
              warm_stats.seconds < cold_total ? "the warm repair"
                                              : "the cold rerun");
  return 0;
}
