// Example: permuting a sparse matrix to block triangular form (BTF) via
// the Dulmage-Mendelsohn decomposition -- the paper's motivating
// application (Sec. I: faster sparse linear solves in circuit
// simulation [2], structure prediction for sparse factorizations [3]).
//
// Builds a block-structured sparse matrix with planted horizontal,
// square (multi-block), and vertical parts, hides the structure with a
// random relabeling, recovers it with dm_decompose/block_triangular_form,
// and renders a small spy plot of the permuted matrix.
//
//   ./btf_decomposition [blocks] [block_size]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace {

using namespace graftmatch;

// A matrix whose square part is a chain of `blocks` irreducible blocks
// (each a dense block_size x block_size diamond with a forward coupling
// to the next block), plus a 2-row horizontal strip and a 3-row
// vertical strip.
BipartiteGraph planted_matrix(vid_t blocks, vid_t block_size,
                              std::uint64_t seed) {
  EdgeList list;
  const vid_t square = blocks * block_size;
  list.nx = square + 2 + 3;  // square + horizontal(2) + vertical(3)
  list.ny = square + 4 + 2;  // square + horizontal(4) + vertical(2)
  Xoshiro256 rng(seed);

  // Square part: rows/cols [0, square).
  for (vid_t b = 0; b < blocks; ++b) {
    const vid_t base = b * block_size;
    for (vid_t i = 0; i < block_size; ++i) {
      list.edges.push_back({base + i, base + i});  // diagonal
      // dense-ish coupling inside the block keeps it irreducible
      list.edges.push_back({base + i, base + (i + 1) % block_size});
      if (rng.uniform() < 0.5) {
        list.edges.push_back(
            {base + i,
             base + static_cast<vid_t>(rng.below(
                        static_cast<std::uint64_t>(block_size)))});
      }
    }
    // forward coupling to the next block (upper triangular direction)
    if (b + 1 < blocks) {
      list.edges.push_back({base, base + block_size});
    }
  }
  // Horizontal strip: 2 rows vs 4 cols, fully dense.
  for (vid_t i = 0; i < 2; ++i) {
    for (vid_t j = 0; j < 4; ++j) {
      list.edges.push_back({square + i, square + j});
    }
  }
  // Vertical strip: 3 rows vs 2 cols, fully dense.
  for (vid_t i = 0; i < 3; ++i) {
    for (vid_t j = 0; j < 2; ++j) {
      list.edges.push_back({square + 2 + i, square + 4 + j});
    }
  }
  return BipartiteGraph::from_edges(list);
}

void spy_plot(const BipartiteGraph& g, const BlockTriangularForm& btf,
              vid_t max_dim) {
  const vid_t rows = std::min<vid_t>(g.num_x(), max_dim);
  const vid_t cols = std::min<vid_t>(g.num_y(), max_dim);
  std::vector<vid_t> col_pos(static_cast<std::size_t>(g.num_y()), -1);
  for (vid_t j = 0; j < g.num_y(); ++j) {
    col_pos[static_cast<std::size_t>(
        btf.col_perm[static_cast<std::size_t>(j)])] = j;
  }
  std::printf("spy plot of the permuted matrix (first %lld x %lld):\n",
              static_cast<long long>(rows), static_cast<long long>(cols));
  for (vid_t i = 0; i < rows; ++i) {
    std::vector<char> line(static_cast<std::size_t>(cols), '.');
    const vid_t row = btf.row_perm[static_cast<std::size_t>(i)];
    for (const vid_t y : g.neighbors_of_x(row)) {
      const vid_t j = col_pos[static_cast<std::size_t>(y)];
      if (j >= 0 && j < cols) line[static_cast<std::size_t>(j)] = '#';
    }
    std::printf("  %s\n", std::string(line.begin(), line.end()).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const vid_t blocks =
      argc > 1 ? static_cast<vid_t>(
                     graftmatch::cli::parse_int_arg("blocks", argv[1], 1, 10000))
               : 5;
  const vid_t block_size =
      argc > 2 ? static_cast<vid_t>(graftmatch::cli::parse_int_arg(
                     "block-size", argv[2], 1, 10000))
               : 6;

  const BipartiteGraph planted = planted_matrix(blocks, block_size, 42);
  // Hide the structure: a solver sees the matrix in arbitrary order.
  const BipartiteGraph scrambled = shuffle_labels(planted, 7);

  std::printf("matrix: %lld x %lld, %lld nonzeros (structure hidden by "
              "random permutation)\n",
              static_cast<long long>(scrambled.num_x()),
              static_cast<long long>(scrambled.num_y()),
              static_cast<long long>(scrambled.num_edges()));

  const DmDecomposition dm = dm_decompose(scrambled);
  std::printf("\ncoarse Dulmage-Mendelsohn decomposition:\n");
  std::printf("  horizontal: %lld rows x %lld cols (underdetermined)\n",
              static_cast<long long>(dm.rows_in(DmBlock::kHorizontal)),
              static_cast<long long>(dm.cols_in(DmBlock::kHorizontal)));
  std::printf("  square    : %lld rows x %lld cols (perfectly matched)\n",
              static_cast<long long>(dm.rows_in(DmBlock::kSquare)),
              static_cast<long long>(dm.cols_in(DmBlock::kSquare)));
  std::printf("  vertical  : %lld rows x %lld cols (overdetermined)\n",
              static_cast<long long>(dm.rows_in(DmBlock::kVertical)),
              static_cast<long long>(dm.cols_in(DmBlock::kVertical)));
  std::printf("  structural rank: %lld\n",
              static_cast<long long>(dm.structural_rank()));

  const BlockTriangularForm btf = block_triangular_form(scrambled, dm);
  std::printf("\nfine decomposition: %lld irreducible diagonal blocks in "
              "the square part\n",
              static_cast<long long>(btf.num_square_blocks()));
  std::printf("verification: %s\n",
              verify_btf(scrambled, btf) ? "BTF structure checks PASS"
                                         : "BTF structure checks FAIL");
  std::printf("\n");
  spy_plot(scrambled, btf, 40);
  return verify_btf(scrambled, btf) ? 0 : 1;
}
