// Example: visualizing the anatomy of MS-BFS-Graft phases -- an ASCII
// rendition of the paper's Fig. 8. Shows, per BFS level, the frontier
// size and the direction chosen, with and without tree grafting, so the
// "start-large-then-shrink" effect of grafting is visible directly.
//
//   ./frontier_anatomy [instance-name] [size-factor]
//   (defaults: copapers-like at size factor 0.1)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace {

using namespace graftmatch;

void render(const RunStats& stats, std::int64_t max_phases) {
  std::map<std::int64_t, std::vector<FrontierSample>> phases;
  std::int64_t peak = 1;
  for (const FrontierSample& s : stats.frontier_trace) {
    phases[s.phase].push_back(s);
    peak = std::max(peak, s.frontier_size);
  }
  constexpr int kWidth = 52;
  std::int64_t shown = 0;
  for (const auto& [phase, samples] : phases) {
    if (++shown > max_phases) break;
    std::printf("phase %lld:\n", static_cast<long long>(phase));
    for (const FrontierSample& s : samples) {
      const int bar = std::max<int>(
          1, static_cast<int>(kWidth * s.frontier_size / peak));
      std::printf("  L%-3lld %c |%s %lld\n", static_cast<long long>(s.level),
                  s.bottom_up ? 'B' : 'T',
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  static_cast<long long>(s.frontier_size));
    }
  }
  std::printf("  (%lld phases total, %lld augmenting paths, %lld edges "
              "traversed)\n\n",
              static_cast<long long>(stats.phases),
              static_cast<long long>(stats.augmentations),
              static_cast<long long>(stats.edges_traversed));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "copapers-like";
  const double size =
      argc > 2 ? cli::parse_double_arg("size-factor", argv[2], 1e-6, 1e9)
               : 0.1;
  const BipartiteGraph graph = suite_instance(name).factory(size, 1);
  const Matching initial = randomized_greedy(graph, 1);
  std::printf("instance %s: %s\n\n", name.c_str(),
              format_graph_stats(compute_graph_stats(graph)).c_str());

  {
    RunConfig config;
    config.collect_frontier_trace = true;
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(graph, m, config);
    std::printf("=== WITH tree grafting (T = top-down, B = bottom-up) ===\n");
    render(stats, 4);
  }
  {
    RunConfig config;
    config.tree_grafting = false;
    config.collect_frontier_trace = true;
    Matching m = initial;
    const RunStats stats = ms_bfs_graft(graph, m, config);
    std::printf("=== WITHOUT tree grafting ===\n");
    render(stats, 4);
  }
  std::printf("with grafting, phases after the first start from the "
              "grafted frontier and only\nshrink; without it each phase "
              "re-grows from the unmatched vertices.\n");
  return 0;
}
