// Example: comparing all maximum-matching algorithms in the library on
// one graph, with verification. A compact version of what the benchmark
// suite does at scale -- useful as a template for evaluating the
// algorithms on your own Matrix Market files:
//
// The algorithm list comes from the engine's solver registry, so a
// newly registered solver shows up here automatically.
//
//   ./algorithm_comparison                # built-in web-crawl workload
//   ./algorithm_comparison 14             # web-crawl with 2^14 vertices
//   ./algorithm_comparison mygraph.mtx    # your matrix
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graftmatch/graftmatch.hpp"

int main(int argc, char** argv) {
  using namespace graftmatch;

  BipartiteGraph graph;
  // A sole argument is either a log2 size or a Matrix Market filename.
  const auto log_size =
      argc > 1 ? cli::try_parse_int(argv[1], 1, 28) : std::nullopt;
  if (argc > 1 && !log_size) {
    std::printf("loading %s ...\n", argv[1]);
    graph = BipartiteGraph::from_edges(read_matrix_market_file(argv[1]));
  } else {
    WebCrawlParams params;
    params.nx = params.ny = 1 << (log_size ? *log_size : 16);
    params.seed = 11;
    graph = generate_webcrawl(params);
  }
  std::printf("graph: %s\n\n",
              format_graph_stats(compute_graph_stats(graph)).c_str());

  // Common starting point: a randomized greedy maximal matching.
  const Matching initial = randomized_greedy(graph, 1);
  std::printf("initial maximal matching: |M| = %lld\n\n",
              static_cast<long long>(initial.cardinality()));

  std::printf("%-14s %10s %8s %12s %10s %12s %9s\n", "algorithm", "|M|",
              "phases", "edges", "avg path", "time", "verified");
  std::int64_t reference = -1;
  bool all_ok = true;
  for (const engine::SolverInfo& solver : engine::solver_registry()) {
    Matching m = initial;
    const RunStats stats = solver.run(graph, m, RunConfig{});
    const bool maximum = is_maximum_matching(graph, m);
    if (reference < 0) reference = m.cardinality();
    all_ok = all_ok && maximum && m.cardinality() == reference;
    std::printf("%-14s %10lld %8lld %12lld %10.2f %12s %9s\n",
                solver.display_name.c_str(),
                static_cast<long long>(m.cardinality()),
                static_cast<long long>(stats.phases),
                static_cast<long long>(stats.edges_traversed),
                stats.avg_path_length(),
                format_seconds(stats.seconds).c_str(),
                maximum ? "yes" : "NO!");
  }

  std::printf("\n%s\n", all_ok ? "all algorithms agree and are certified "
                                 "maximum (Koenig's theorem)"
                               : "DISAGREEMENT DETECTED");
  return all_ok ? 0 : 1;
}
