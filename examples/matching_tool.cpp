// graftmatch command-line tool: compute a maximum matching (and
// optionally the Dulmage-Mendelsohn decomposition) of a Matrix Market
// file or a built-in generator instance.
//
// Usage:
//   ./matching_tool --mtx FILE [options]
//   ./matching_tool --gen INSTANCE [--size F] [options]
//
// Options:
//   --algo NAME     graft (default) | msbfs | pf | pr | hk | ssbfs | ssdfs
//   --init NAME     rgreedy (default) | greedy | ks | none
//   --threads N     OpenMP threads (default: runtime default)
//   --alpha A       direction/grafting threshold (default 5)
//   --seed S        generator / initializer seed (default 1)
//   --dm            also print the coarse DM decomposition
//   --phases        print a per-phase table (MS-BFS-Graft only)
//   --no-verify     skip the Koenig maximality certificate
//   --list          list built-in generator instances and exit
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graftmatch/graftmatch.hpp"

namespace {

using namespace graftmatch;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--mtx FILE | --gen INSTANCE | --list) "
               "[--algo NAME] [--init NAME]\n"
               "       [--threads N] [--alpha A] [--seed S] [--size F] "
               "[--dm] [--no-verify]\n",
               argv0);
  std::exit(2);
}

RunStats run_algorithm(const std::string& algo, const BipartiteGraph& g,
                       Matching& m, const RunConfig& config) {
  if (algo == "graft") return ms_bfs_graft(g, m, config);
  if (algo == "msbfs") return ms_bfs(g, m, config);
  if (algo == "pf") return pothen_fan(g, m, config);
  if (algo == "pr") return push_relabel(g, m, config);
  if (algo == "hk") return hopcroft_karp(g, m, config);
  if (algo == "ssbfs") return ss_bfs(g, m, config);
  if (algo == "ssdfs") return ss_dfs(g, m, config);
  std::fprintf(stderr, "unknown algorithm '%s'\n", algo.c_str());
  std::exit(2);
}

Matching make_initial(const std::string& init, const BipartiteGraph& g,
                      std::uint64_t seed) {
  if (init == "rgreedy") return randomized_greedy(g, seed);
  if (init == "greedy") return greedy_maximal(g);
  if (init == "ks") return karp_sipser(g, seed);
  if (init == "none") return Matching(g.num_x(), g.num_y());
  std::fprintf(stderr, "unknown initializer '%s'\n", init.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string mtx_path;
  std::string gen_name;
  std::string algo = "graft";
  std::string init = "rgreedy";
  RunConfig config;
  std::uint64_t seed = 1;
  double size = 1.0;
  bool want_dm = false;
  bool want_phases = false;
  bool verify = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--mtx") mtx_path = next();
    else if (arg == "--gen") gen_name = next();
    else if (arg == "--algo") algo = next();
    else if (arg == "--init") init = next();
    else if (arg == "--threads") config.threads = std::atoi(next());
    else if (arg == "--alpha") config.alpha = std::atof(next());
    else if (arg == "--seed") seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--size") size = std::atof(next());
    else if (arg == "--dm") want_dm = true;
    else if (arg == "--phases") want_phases = true;
    else if (arg == "--no-verify") verify = false;
    else if (arg == "--list") {
      for (const SuiteInstance& instance : benchmark_suite()) {
        std::printf("%-20s %-12s (stands in for %s)\n",
                    instance.name.c_str(),
                    to_string(instance.graph_class).c_str(),
                    instance.paper_name.c_str());
      }
      return 0;
    } else {
      usage(argv[0]);
    }
  }
  if (mtx_path.empty() == gen_name.empty()) usage(argv[0]);

  BipartiteGraph graph;
  if (!mtx_path.empty()) {
    graph = BipartiteGraph::from_edges(read_matrix_market_file(mtx_path));
  } else {
    graph = suite_instance(gen_name).factory(size, seed);
  }
  std::printf("graph: %s\n",
              format_graph_stats(compute_graph_stats(graph)).c_str());

  const Timer init_timer;
  Matching matching = make_initial(init, graph, seed);
  std::printf("init (%s): |M| = %lld in %s\n", init.c_str(),
              static_cast<long long>(matching.cardinality()),
              format_seconds(init_timer.elapsed()).c_str());

  config.collect_phase_stats = want_phases;
  const RunStats stats = run_algorithm(algo, graph, matching, config);
  std::printf("%s\n", format_run_stats(stats).c_str());

  if (want_phases && !stats.phase_stats.empty()) {
    std::printf("%-6s %7s %5s %9s %11s %9s %11s %8s\n", "phase", "levels",
                "b-up", "paths", "edges", "activeX", "renewableY", "graft");
    for (const PhaseStats& row : stats.phase_stats) {
      std::printf("%-6lld %7lld %5lld %9lld %11lld %9lld %11lld %8s\n",
                  static_cast<long long>(row.phase),
                  static_cast<long long>(row.levels),
                  static_cast<long long>(row.bottom_up_levels),
                  static_cast<long long>(row.augmentations),
                  static_cast<long long>(row.edges),
                  static_cast<long long>(row.active_x),
                  static_cast<long long>(row.renewable_y),
                  row.grafted ? "yes" : "no");
    }
  }

  if (verify) {
    const bool ok = is_maximum_matching(graph, matching);
    std::printf("certificate: %s\n",
                ok ? "maximum (Koenig cover size == |M|)" : "NOT MAXIMUM");
    if (!ok) return 1;
  }

  if (want_dm) {
    const DmDecomposition dm = dm_decompose(graph, matching);
    std::printf("DM: H %lldx%lld | S %lldx%lld | V %lldx%lld, "
                "structural rank %lld\n",
                static_cast<long long>(dm.rows_in(DmBlock::kHorizontal)),
                static_cast<long long>(dm.cols_in(DmBlock::kHorizontal)),
                static_cast<long long>(dm.rows_in(DmBlock::kSquare)),
                static_cast<long long>(dm.cols_in(DmBlock::kSquare)),
                static_cast<long long>(dm.rows_in(DmBlock::kVertical)),
                static_cast<long long>(dm.cols_in(DmBlock::kVertical)),
                static_cast<long long>(dm.structural_rank()));
  }
  return 0;
}
