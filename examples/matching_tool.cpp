// graftmatch command-line tool: compute a maximum matching (and
// optionally the Dulmage-Mendelsohn decomposition) of a Matrix Market
// file or a built-in generator instance.
//
// Usage:
//   ./matching_tool --mtx FILE [options]
//   ./matching_tool --gen INSTANCE [--size F] [options]
//
// Options:
//   --algo NAME     any solver-registry key (default graft; see --list)
//   --init NAME     any initializer-registry key (default rgreedy)
//   --reduce MODE   kernelization pre-pass: none | d1 | d1d2 (default
//                   none; also accepts --reduce=MODE). The solver runs
//                   on the kernel; the matching is reconstructed and
//                   verified on the original graph.
//   --shard MODE    sharded execution: none | dm (default none; also
//                   accepts --shard=MODE). dm partitions the graph into
//                   independent Dulmage-Mendelsohn blocks, solves the
//                   deficient blocks concurrently, and stitches.
//                   Composes with --reduce (the kernel is sharded).
//   --dirsel POLICY traversal-direction policy: fixed | adaptive | td |
//                   bu (default fixed; also accepts --dirsel=POLICY).
//                   fixed is the paper's |F| >= unvisited/alpha rule;
//                   adaptive switches on scout/awake edge counts with
//                   hysteresis; td/bu force one direction (A/B floors).
//   --kernel ARM    bottom-up kernel: bit | word (default bit; also
//                   accepts --kernel=ARM). word consumes the visited
//                   bitmap 64 candidates at a time with word-granular
//                   claims instead of the per-bit candidate pool.
//   --threads N     OpenMP threads (default: runtime default)
//   --alpha A       direction/grafting threshold (default 5)
//   --seed S        generator / initializer seed (default 1)
//   --dm            also print the coarse DM decomposition
//   --phases        print a per-phase table (MS-BFS-Graft only)
//   --churn N       dynamic-matching replay: solve once, then apply N
//                   alternating remove/re-add churn batches through the
//                   incremental DynamicMatcher (dynamic/), verifying
//                   the final matching as usual. Stats switch to the
//                   matcher's cumulative "dynamic" block.
//   --batch B       edges per churn batch (default 64; with --churn)
//   --json          print the run's stats as one JSON object
//   --trace FILE    write a Chrome trace_event JSON of the run
//                   (open in Perfetto / chrome://tracing)
//   --no-verify     skip the Koenig maximality certificate
//   --list          list generator instances, solvers and initializers
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace {

using namespace graftmatch;

std::string joined_keys(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& name : names) {
    out += out.empty() ? name : " | " + name;
  }
  return out;
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--mtx FILE | --gen INSTANCE | --list) "
               "[--algo NAME] [--init NAME]\n"
               "       [--reduce MODE] [--shard MODE] [--dirsel POLICY] "
               "[--kernel ARM]\n"
               "       [--threads N] [--alpha A] [--seed S]\n"
               "       [--size F] [--churn N] [--batch B] [--dm] [--phases] "
               "[--json] [--trace FILE]\n"
               "       [--no-verify]\n"
               "  --algo: %s\n"
               "  --init: %s\n"
               "  --reduce: none | d1 | d1d2\n"
               "  --shard: none | dm\n"
               "  --dirsel: fixed | adaptive | td | bu\n"
               "  --kernel: bit | word\n",
               argv0, joined_keys(engine::solver_names()).c_str(),
               joined_keys(engine::initializer_names()).c_str());
  std::exit(2);
}

// Both lookups resolve through the engine registry, so the tool picks
// up newly registered solvers/initializers without edits here.
RunStats run_algorithm(const std::string& algo, const BipartiteGraph& g,
                       Matching& m, const RunConfig& config) {
  try {
    return engine::find_solver(algo).run(g, m, config);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "%s\n", error.what());
    std::exit(2);
  }
}

Matching make_initial(const std::string& init, const BipartiteGraph& g,
                      const RunConfig& config) {
  try {
    return engine::make_initial_matching(init, g, config);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "%s\n", error.what());
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string mtx_path;
  std::string gen_name;
  std::string algo = "graft";
  std::string init = "rgreedy";
  RunConfig config;
  std::uint64_t seed = 1;
  double size = 1.0;
  int churn_batches = 0;
  int churn_batch_size = 64;
  std::string trace_path;
  bool want_dm = false;
  bool want_phases = false;
  bool want_json = false;
  bool verify = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--mtx") mtx_path = next();
    else if (arg == "--gen") gen_name = next();
    else if (arg == "--algo") algo = next();
    else if (arg == "--init") init = next();
    else if (arg == "--threads") {
      config.threads =
          static_cast<int>(cli::parse_int_arg("--threads", next(), 0, 65536));
    }
    else if (arg == "--alpha") {
      config.alpha = cli::parse_double_arg("--alpha", next(), 1e-9, 1e18);
    }
    else if (arg == "--seed") seed = cli::parse_uint_arg("--seed", next());
    else if (arg == "--size") {
      size = cli::parse_double_arg("--size", next(), 0.0, 1e9);
    }
    else if (arg == "--churn") {
      churn_batches = static_cast<int>(
          cli::parse_int_arg("--churn", next(), 1, 1 << 20));
    }
    else if (arg == "--batch") {
      churn_batch_size = static_cast<int>(
          cli::parse_int_arg("--batch", next(), 1, 1 << 24));
    }
    else if (arg == "--reduce" || arg.rfind("--reduce=", 0) == 0) {
      const std::string value = arg == "--reduce" ? next() : arg.substr(9);
      if (!parse_reduce_mode(value, config.reduce)) {
        std::fprintf(stderr,
                     "error: unknown --reduce mode \"%s\" "
                     "(none | d1 | d1d2)\n",
                     value.c_str());
        return 2;
      }
    }
    else if (arg == "--shard" || arg.rfind("--shard=", 0) == 0) {
      const std::string value = arg == "--shard" ? next() : arg.substr(8);
      if (!parse_shard_mode(value, config.shard)) {
        std::fprintf(stderr,
                     "error: unknown --shard mode \"%s\" (none | dm)\n",
                     value.c_str());
        return 2;
      }
    }
    else if (arg == "--dirsel" || arg.rfind("--dirsel=", 0) == 0) {
      const std::string value = arg == "--dirsel" ? next() : arg.substr(9);
      if (!parse_direction_policy(value, config.direction_policy)) {
        std::fprintf(stderr,
                     "error: unknown --dirsel policy \"%s\" "
                     "(fixed | adaptive | td | bu)\n",
                     value.c_str());
        return 2;
      }
    }
    else if (arg == "--kernel" || arg.rfind("--kernel=", 0) == 0) {
      const std::string value = arg == "--kernel" ? next() : arg.substr(9);
      if (!parse_bottom_up_kernel(value, config.bottom_up_kernel)) {
        std::fprintf(stderr,
                     "error: unknown --kernel arm \"%s\" (bit | word)\n",
                     value.c_str());
        return 2;
      }
    }
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--dm") want_dm = true;
    else if (arg == "--phases") want_phases = true;
    else if (arg == "--json") want_json = true;
    else if (arg == "--no-verify") verify = false;
    else if (arg == "--list") {
      std::printf("generator instances:\n");
      for (const SuiteInstance& instance : benchmark_suite()) {
        std::printf("  %-20s %-12s (stands in for %s)\n",
                    instance.name.c_str(),
                    to_string(instance.graph_class).c_str(),
                    instance.paper_name.c_str());
      }
      std::printf("solvers (--algo):\n");
      for (const engine::SolverInfo& solver : engine::solver_registry()) {
        std::printf("  %-8s %-14s %s%s\n", solver.name.c_str(),
                    solver.display_name.c_str(), solver.description.c_str(),
                    solver.parallel ? "" : " [serial]");
      }
      std::printf("initializers (--init):\n");
      for (const engine::InitializerInfo& init :
           engine::initializer_registry()) {
        std::printf("  %-8s %s\n", init.name.c_str(),
                    init.description.c_str());
      }
      return 0;
    } else {
      usage(argv[0]);
    }
  }
  if (mtx_path.empty() == gen_name.empty()) usage(argv[0]);
  // The tool runs under its own session: the trace written at the end
  // comes from this session's sink, not from whatever the process-wide
  // default session last collected.
  SessionContext session;
  const SessionScope session_scope(session);
  if (!trace_path.empty()) {
    if (!obs::compiled()) {
      std::fprintf(stderr,
                   "error: --trace requires a GRAFTMATCH_TRACE=ON build\n");
      return 2;
    }
    session.trace().arm();
  }

  BipartiteGraph graph;
  if (!mtx_path.empty()) {
    graph = BipartiteGraph::from_edges(read_matrix_market_file(mtx_path));
  } else {
    graph = suite_instance(gen_name).factory(size, seed);
  }
  std::printf("graph: %s\n",
              format_graph_stats(compute_graph_stats(graph)).c_str());

  config.seed = seed;
  config.collect_phase_stats = want_phases;
  Matching matching(graph.num_x(), graph.num_y());
  RunStats stats;
  if (churn_batches > 0) {
    if (config.reduce != ReduceMode::kNone ||
        config.shard != ShardMode::kNone) {
      std::fprintf(stderr,
                   "error: --churn composes with neither --reduce nor "
                   "--shard (the matcher owns the live graph)\n");
      return 2;
    }
    if (graph.num_edges() == 0) {
      std::fprintf(stderr, "error: --churn needs a graph with edges\n");
      return 2;
    }
    dynamic::DynamicConfig dyn;
    dyn.solver = algo;
    dyn.initializer = init;
    dyn.run = config;
    dynamic::DynamicMatcher matcher(session, graph, dyn);
    const std::int64_t solved = matcher.cardinality();
    std::printf("init (dynamic, %s + %s): |M| = %lld\n", algo.c_str(),
                init.c_str(), static_cast<long long>(solved));
    // Sliding-window replay in a seeded shuffled order: every batch
    // removes B live edges and immediately re-adds them, so the final
    // live set equals the input and the certificate below still speaks
    // about the instance the user named.
    std::vector<Edge> edges = graph.to_edges().edges;
    Xoshiro256 rng(seed);
    for (std::size_t i = edges.size(); i > 1; --i) {
      std::swap(edges[rng.below(i)], edges[i - 1]);
    }
    const auto batch_size = static_cast<std::size_t>(churn_batch_size);
    const Timer churn_timer;
    std::int64_t updates = 0;
    std::size_t cursor = 0;
    std::vector<Edge> batch;
    for (int b = 0; b < churn_batches; ++b) {
      batch.clear();
      for (std::size_t k = 0; k < batch_size; ++k) {
        batch.push_back(edges[cursor]);
        cursor = (cursor + 1) % edges.size();
      }
      matcher.remove_edges(batch);
      matcher.add_edges(batch);
      updates += 2 * static_cast<std::int64_t>(batch.size());
    }
    const double seconds = churn_timer.elapsed();
    std::printf("churn: %d batches x %d edges -> %lld updates in %s "
                "(%.0f updates/s), |M| = %lld (%+lld vs initial)\n",
                churn_batches, churn_batch_size,
                static_cast<long long>(updates),
                format_seconds(seconds).c_str(),
                seconds > 0.0 ? static_cast<double>(updates) / seconds : 0.0,
                static_cast<long long>(matcher.cardinality()),
                static_cast<long long>(matcher.cardinality() - solved));
    stats = matcher.stats();
    matching = matcher.matching();
  } else if (config.reduce == ReduceMode::kNone &&
             config.shard == ShardMode::kNone) {
    const Timer init_timer;
    matching = make_initial(init, graph, config);
    std::printf("init (%s): |M| = %lld in %s\n", init.c_str(),
                static_cast<long long>(matching.cardinality()),
                format_seconds(init_timer.elapsed()).c_str());
    stats = run_algorithm(algo, graph, matching, config);
  } else {
    // run_sharded owns the whole pipeline: reduce, init + (sharded)
    // solve on the kernel, reconstruct on the original graph.
    try {
      stats = engine::run_sharded(algo, init, graph, matching, config);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "%s\n", error.what());
      return 2;
    }
    if (stats.reduce.collected) {
      const ReduceCounters& r = stats.reduce;
      std::printf("reduce (%s): kernel %lldx%lld with %lld edges, "
                  "forced %lld, folds %lld, %lld rounds in %s\n",
                  to_string(r.mode).c_str(),
                  static_cast<long long>(r.kernel_nx),
                  static_cast<long long>(r.kernel_ny),
                  static_cast<long long>(r.kernel_edges),
                  static_cast<long long>(r.forced_matches),
                  static_cast<long long>(r.folds),
                  static_cast<long long>(r.rounds),
                  format_seconds(r.reduce_seconds + r.compact_seconds +
                                 r.reconstruct_seconds)
                      .c_str());
    }
    if (stats.shard.collected) {
      const ShardCounters& sh = stats.shard;
      if (sh.fallback) {
        // largest_block_edges == 0 means the payoff gate aborted before
        // the census finished; a positive value means the census found
        // one dominant deficient block.
        if (sh.largest_block_edges > 0) {
          std::printf("shard (%s): monolithic fallback (1 deficient block "
                      "with %lld of %lld edges)\n",
                      to_string(sh.mode).c_str(),
                      static_cast<long long>(sh.largest_block_edges),
                      static_cast<long long>(graph.num_edges()));
        } else {
          std::printf("shard (%s): monolithic fallback (payoff gate "
                      "aborted the classification: deficient region too "
                      "large or too concentrated)\n",
                      to_string(sh.mode).c_str());
        }
      } else {
        std::printf("shard (%s): %lld blocks (H %lld | S %lld | V %lld), "
                    "%lld frozen, %lld solved (%lld wide, %lld pooled) "
                    "in %s\n",
                    to_string(sh.mode).c_str(),
                    static_cast<long long>(sh.blocks_total),
                    static_cast<long long>(sh.blocks_h),
                    static_cast<long long>(sh.blocks_s),
                    static_cast<long long>(sh.blocks_v),
                    static_cast<long long>(sh.blocks_frozen),
                    static_cast<long long>(sh.blocks_solved),
                    static_cast<long long>(sh.solved_wide),
                    static_cast<long long>(sh.solved_pooled),
                    format_seconds(sh.decompose_seconds + sh.extract_seconds +
                                   sh.solve_seconds + sh.stitch_seconds)
                        .c_str());
      }
    }
  }
  if (want_json) {
    std::printf("%s\n", run_stats_json(stats).c_str());
  } else {
    std::printf("%s\n", format_run_stats(stats).c_str());
  }

  if (!trace_path.empty()) {
    const obs::RunTrace& trace = session.trace().last_run();
    if (!trace.collected) {
      std::fprintf(stderr, "error: the run produced no trace\n");
      return 1;
    }
    if (!obs::write_chrome_trace_file(trace_path, trace)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("trace: %lld events (%lld dropped) -> %s\n",
                static_cast<long long>(trace.events.size()),
                static_cast<long long>(trace.dropped), trace_path.c_str());
  }

  if (want_phases && !stats.phase_stats.empty()) {
    std::printf("%-6s %7s %5s %9s %11s %9s %11s %8s\n", "phase", "levels",
                "b-up", "paths", "edges", "activeX", "renewableY", "graft");
    for (const PhaseStats& row : stats.phase_stats) {
      std::printf("%-6lld %7lld %5lld %9lld %11lld %9lld %11lld %8s\n",
                  static_cast<long long>(row.phase),
                  static_cast<long long>(row.levels),
                  static_cast<long long>(row.bottom_up_levels),
                  static_cast<long long>(row.augmentations),
                  static_cast<long long>(row.edges),
                  static_cast<long long>(row.active_x),
                  static_cast<long long>(row.renewable_y),
                  row.grafted ? "yes" : "no");
    }
  }

  if (verify) {
    const bool ok = is_maximum_matching(graph, matching);
    std::printf("certificate: %s\n",
                ok ? "maximum (Koenig cover size == |M|)" : "NOT MAXIMUM");
    if (!ok) return 1;
  }

  if (want_dm) {
    const DmDecomposition dm = dm_decompose(graph, matching);
    std::printf("DM: H %lldx%lld | S %lldx%lld | V %lldx%lld, "
                "structural rank %lld\n",
                static_cast<long long>(dm.rows_in(DmBlock::kHorizontal)),
                static_cast<long long>(dm.cols_in(DmBlock::kHorizontal)),
                static_cast<long long>(dm.rows_in(DmBlock::kSquare)),
                static_cast<long long>(dm.cols_in(DmBlock::kSquare)),
                static_cast<long long>(dm.rows_in(DmBlock::kVertical)),
                static_cast<long long>(dm.cols_in(DmBlock::kVertical)),
                static_cast<long long>(dm.structural_rank()));
  }
  return 0;
}
