// matchd: a matching-as-a-service daemon on a Unix domain socket.
//
// Loads a roster of generator instances once (computing each graph's
// maximum cardinality with the serial Hopcroft-Karp oracle), then
// serves matching requests over a length-prefixed key=value protocol
// (src/graftmatch/serve/protocol.hpp). Each server worker owns a
// long-lived SessionContext, so concurrent requests get isolated stats,
// traces, and warm workspace pools.
//
// Usage:
//   ./matchd --socket /tmp/graftmatch.sock [options]
//
// Options:
//   --socket PATH   socket path (default /tmp/graftmatch.sock)
//   --graphs LIST   comma-separated suite instances to load
//                   (default kkt_power-like,rmat-like)
//   --size F        workload size factor (default 0.05)
//   --seed S        generator seed (default 1)
//   --workers N     server worker sessions (default 2)
//   --queue N       admission-control queue capacity (default 64)
//   --batch-max N   largest coalesced same-key group one solve may
//                   answer; 1 disables batching (default 16)
//   --batch-window-us U  how long an undersized batch waits for more
//                   same-key arrivals before dispatching (default 200)
//   --demo          serve one in-process demo client, print the
//                   exchange, and exit (used by the CI smoke test)
//
// Talk to it from another terminal, e.g. with the Python one-liner:
//   python3 - <<'EOF'
//   import socket, struct
//   s = socket.socket(socket.AF_UNIX); s.connect("/tmp/graftmatch.sock")
//   req = b"graph=rmat-like\nsolver=graft\n"
//   s.sendall(struct.pack("<I", len(req)) + req)
//   n, = struct.unpack("<I", s.recv(4)); print(s.recv(n).decode())
//   EOF
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace {

using namespace graftmatch;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--graphs a,b,c] [--size F] "
               "[--seed S]\n"
               "       [--workers N] [--queue N] [--batch-max N] "
               "[--batch-window-us U] [--demo]\n",
               argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t end = csv.find(',', pos);
    if (end == std::string::npos) end = csv.size();
    if (end > pos) out.push_back(csv.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

void print_response(const serve::MatchResponse& response) {
  if (response.ok) {
    std::printf("  %-16s %-8s |M| = %lld / %lld  %.3fs  (session %llu, "
                "%d thread%s)\n",
                response.graph.c_str(), response.solver.c_str(),
                static_cast<long long>(response.cardinality),
                static_cast<long long>(response.maximum), response.seconds,
                static_cast<unsigned long long>(response.session),
                response.threads, response.threads == 1 ? "" : "s");
  } else {
    std::printf("  %-16s %-8s FAILED: %s\n", response.graph.c_str(),
                response.solver.c_str(), response.error.c_str());
  }
}

/// The --demo exchange: a client connects over the real socket and
/// exercises the solver/initializer/mode surface plus the error path.
/// Returns the number of failures (unexpected outcomes).
int run_demo(const std::string& socket_path) {
  serve::UdsClient client;
  std::string error;
  if (!client.connect(socket_path, error)) {
    std::fprintf(stderr, "demo client: %s\n", error.c_str());
    return 1;
  }
  int failures = 0;
  const auto expect = [&](serve::MatchRequest request, bool want_ok) {
    serve::MatchResponse response;
    if (!client.request(request, response, error)) {
      std::fprintf(stderr, "demo client: round trip failed: %s\n",
                   error.c_str());
      ++failures;
      return;
    }
    print_response(response);
    if (response.ok != want_ok) ++failures;
    if (want_ok && response.cardinality != response.maximum) ++failures;
  };

  serve::MatchRequest request;
  request.graph = "rmat-like";
  expect(request, true);

  request.solver = "pf";
  expect(request, true);

  request.graph = "kkt_power-like";
  request.solver = "graft";
  request.reduce = "d1";
  expect(request, true);

  request.reduce = "none";
  request.graph = "no-such-graph";
  expect(request, false);  // unknown graph: error response, not a crash

  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/graftmatch.sock";
  std::string graphs_csv = "kkt_power-like,rmat-like";
  double size = 0.05;
  std::uint64_t seed = 1;
  serve::ServerOptions options;
  bool demo = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--socket") socket_path = next();
    else if (arg == "--graphs") graphs_csv = next();
    else if (arg == "--size")
      size = cli::parse_double_arg("--size", next().c_str(), 1e-6, 1e6);
    else if (arg == "--seed")
      seed = cli::parse_uint_arg("--seed", next().c_str());
    else if (arg == "--workers")
      options.workers = static_cast<int>(
          cli::parse_int_arg("--workers", next().c_str(), 1, 1024));
    else if (arg == "--queue")
      options.queue_capacity = static_cast<std::size_t>(
          cli::parse_int_arg("--queue", next().c_str(), 1, 1 << 20));
    else if (arg == "--batch-max")
      options.batch_max = static_cast<std::size_t>(
          cli::parse_int_arg("--batch-max", next().c_str(), 1, 1 << 20));
    else if (arg == "--batch-window-us")
      options.batch_window_us = cli::parse_int_arg(
          "--batch-window-us", next().c_str(), 0, 60'000'000);
    else if (arg == "--demo") demo = true;
    else usage(argv[0]);
  }

  const std::vector<std::string> graph_names = split_csv(graphs_csv);
  if (graph_names.empty()) usage(argv[0]);

  std::printf("loading %zu graph(s) at size %g...\n", graph_names.size(),
              size);
  serve::GraphRoster roster;
  try {
    roster = serve::GraphRoster::from_suite(graph_names, size, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  for (const serve::RosterEntry& entry : roster.entries()) {
    std::printf("  %-16s %lld x %lld, %lld edges, maximum |M| = %lld\n",
                entry.name.c_str(),
                static_cast<long long>(entry.graph.num_x()),
                static_cast<long long>(entry.graph.num_y()),
                static_cast<long long>(entry.graph.num_edges()),
                static_cast<long long>(entry.maximum_cardinality));
  }

  serve::MatchServer server(roster, options);
  serve::UdsServer uds(server, socket_path);
  std::string error;
  if (!uds.start(error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::printf(
      "serving on %s with %d worker session(s), queue %zu, "
      "batch max %zu (window %lld us)\n",
      socket_path.c_str(), options.workers, options.queue_capacity,
      options.batch_max, static_cast<long long>(options.batch_window_us));

  if (demo) {
    std::printf("demo exchange:\n");
    const int failures = run_demo(socket_path);
    uds.stop();
    server.stop();
    const serve::ServerCounters counters = server.counters();
    std::printf(
        "served %llu request(s), %llu completed, %llu failed, "
        "%llu batch(es) dispatched\n",
        static_cast<unsigned long long>(counters.accepted),
        static_cast<unsigned long long>(counters.completed),
        static_cast<unsigned long long>(counters.failed),
        static_cast<unsigned long long>(counters.batches));
    return failures == 0 ? 0 : 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("shutting down\n");
  uds.stop();
  server.stop();
  return 0;
}
