// Exhaustive small-graph cross-validation: hundreds of tiny random
// bipartite graphs, every library algorithm, compared against an
// INDEPENDENT reference implementation (Kuhn's augmenting-path
// algorithm, written here in the test, sharing no code with the
// library). Small graphs hit degenerate shapes -- empty rows, isolated
// vertices, complete blocks, parallel structure collapsing to serial --
// far more densely than large workloads do.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch {
namespace {

// ---- independent reference: Kuhn's algorithm over an adjacency matrix.
class KuhnReference {
 public:
  KuhnReference(int nx, int ny, const std::vector<std::vector<bool>>& adj)
      : nx_(nx), ny_(ny), adj_(adj), mate_y_(static_cast<std::size_t>(ny), -1) {}

  int solve() {
    int result = 0;
    for (int x = 0; x < nx_; ++x) {
      seen_.assign(static_cast<std::size_t>(ny_), false);
      if (try_augment(x)) ++result;
    }
    return result;
  }

 private:
  bool try_augment(int x) {
    for (int y = 0; y < ny_; ++y) {
      if (!adj_[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] ||
          seen_[static_cast<std::size_t>(y)]) {
        continue;
      }
      seen_[static_cast<std::size_t>(y)] = true;
      if (mate_y_[static_cast<std::size_t>(y)] < 0 ||
          try_augment(mate_y_[static_cast<std::size_t>(y)])) {
        mate_y_[static_cast<std::size_t>(y)] = x;
        return true;
      }
    }
    return false;
  }

  int nx_;
  int ny_;
  const std::vector<std::vector<bool>>& adj_;
  std::vector<int> mate_y_;
  std::vector<bool> seen_;
};

struct SmallCase {
  BipartiteGraph graph;
  int reference = 0;
};

SmallCase random_small_case(Xoshiro256& rng) {
  const int nx = 1 + static_cast<int>(rng.below(12));
  const int ny = 1 + static_cast<int>(rng.below(12));
  // Density spans near-empty to complete.
  const double density = rng.uniform();
  std::vector<std::vector<bool>> adj(
      static_cast<std::size_t>(nx),
      std::vector<bool>(static_cast<std::size_t>(ny), false));
  EdgeList list;
  list.nx = nx;
  list.ny = ny;
  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      if (rng.uniform() < density) {
        adj[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = true;
        list.edges.push_back({x, y});
      }
    }
  }
  SmallCase result{BipartiteGraph::from_edges(list), 0};
  KuhnReference reference(nx, ny, adj);
  result.reference = reference.solve();
  return result;
}

using AlgoFn = std::function<RunStats(const BipartiteGraph&, Matching&)>;

struct NamedAlgo {
  const char* name;
  AlgoFn run;
};

std::vector<NamedAlgo> all_algorithms() {
  return {
      {"graft",
       [](const BipartiteGraph& g, Matching& m) { return ms_bfs_graft(g, m); }},
      {"graft-noopt",
       [](const BipartiteGraph& g, Matching& m) {
         RunConfig c;
         c.direction_optimizing = false;
         return ms_bfs_graft(g, m, c);
       }},
      {"msbfs",
       [](const BipartiteGraph& g, Matching& m) { return ms_bfs(g, m); }},
      {"pf",
       [](const BipartiteGraph& g, Matching& m) { return pothen_fan(g, m); }},
      {"pr",
       [](const BipartiteGraph& g, Matching& m) { return push_relabel(g, m); }},
      {"hk",
       [](const BipartiteGraph& g, Matching& m) { return hopcroft_karp(g, m); }},
      {"ssbfs",
       [](const BipartiteGraph& g, Matching& m) { return ss_bfs(g, m); }},
      {"ssdfs",
       [](const BipartiteGraph& g, Matching& m) { return ss_dfs(g, m); }},
  };
}

class ExhaustiveSmall : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustiveSmall, AllAlgorithmsMatchKuhnReference) {
  Xoshiro256 rng(GetParam());
  const auto algorithms = all_algorithms();
  // 50 random graphs per seed parameter, every algorithm, three
  // different starting matchings each.
  for (int round = 0; round < 50; ++round) {
    const SmallCase test_case = random_small_case(rng);
    const BipartiteGraph& g = test_case.graph;
    for (const NamedAlgo& algo : algorithms) {
      for (int start = 0; start < 3; ++start) {
        Matching m = start == 0   ? Matching(g.num_x(), g.num_y())
                     : start == 1 ? greedy_maximal(g)
                                  : karp_sipser(g, GetParam() + round);
        algo.run(g, m);
        ASSERT_EQ(m.cardinality(), test_case.reference)
            << algo.name << " round=" << round << " start=" << start
            << " nx=" << g.num_x() << " ny=" << g.num_y()
            << " m=" << g.num_edges();
        ASSERT_TRUE(is_valid_matching(g, m)) << algo.name;
        ASSERT_TRUE(is_maximum_matching(g, m)) << algo.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveSmall,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// DM/BTF on the same tiny-graph distribution: decomposition block sizes
// must be consistent with the reference matching number, and the BTF
// structural checks must hold.
class ExhaustiveDm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustiveDm, DecompositionConsistent) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const SmallCase test_case = random_small_case(rng);
    const BipartiteGraph& g = test_case.graph;
    const DmDecomposition dm = dm_decompose(g);
    EXPECT_EQ(dm.structural_rank(), test_case.reference);
    // Square part perfectly matched; H has column surplus; V row surplus.
    EXPECT_EQ(dm.rows_in(DmBlock::kSquare), dm.cols_in(DmBlock::kSquare));
    EXPECT_GE(dm.cols_in(DmBlock::kHorizontal),
              dm.rows_in(DmBlock::kHorizontal));
    EXPECT_GE(dm.rows_in(DmBlock::kVertical), dm.cols_in(DmBlock::kVertical));
    const BlockTriangularForm btf = block_triangular_form(g, dm);
    EXPECT_TRUE(verify_btf(g, btf)) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveDm, ::testing::Values(5, 6, 7, 8));

}  // namespace
}  // namespace graftmatch
