// Exhaustive small-graph cross-validation: hundreds of tiny random
// bipartite graphs, every library algorithm, compared against an
// INDEPENDENT reference implementation (Kuhn's augmenting-path
// algorithm, written here in the test, sharing no code with the
// library). Small graphs hit degenerate shapes -- empty rows, isolated
// vertices, complete blocks, parallel structure collapsing to serial --
// far more densely than large workloads do.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/parallel.hpp"

// Sanitized builds run the exhaustive enumerations 10-20x slower;
// subsample the big cells there (deterministically) instead of timing
// out. GRAFTMATCH_TSAN_ACTIVE comes from runtime/parallel.hpp.
#if GRAFTMATCH_TSAN_ACTIVE || defined(__SANITIZE_ADDRESS__)
#define GRAFTMATCH_EXH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRAFTMATCH_EXH_SANITIZED 1
#endif
#endif
#ifndef GRAFTMATCH_EXH_SANITIZED
#define GRAFTMATCH_EXH_SANITIZED 0
#endif

namespace graftmatch {
namespace {

// ---- independent reference: Kuhn's algorithm over an adjacency matrix.
class KuhnReference {
 public:
  KuhnReference(int nx, int ny, const std::vector<std::vector<bool>>& adj)
      : nx_(nx), ny_(ny), adj_(adj), mate_y_(static_cast<std::size_t>(ny), -1) {}

  int solve() {
    int result = 0;
    for (int x = 0; x < nx_; ++x) {
      seen_.assign(static_cast<std::size_t>(ny_), false);
      if (try_augment(x)) ++result;
    }
    return result;
  }

 private:
  bool try_augment(int x) {
    for (int y = 0; y < ny_; ++y) {
      if (!adj_[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] ||
          seen_[static_cast<std::size_t>(y)]) {
        continue;
      }
      seen_[static_cast<std::size_t>(y)] = true;
      if (mate_y_[static_cast<std::size_t>(y)] < 0 ||
          try_augment(mate_y_[static_cast<std::size_t>(y)])) {
        mate_y_[static_cast<std::size_t>(y)] = x;
        return true;
      }
    }
    return false;
  }

  int nx_;
  int ny_;
  const std::vector<std::vector<bool>>& adj_;
  std::vector<int> mate_y_;
  std::vector<bool> seen_;
};

struct SmallCase {
  BipartiteGraph graph;
  int reference = 0;
};

SmallCase random_small_case(Xoshiro256& rng) {
  const int nx = 1 + static_cast<int>(rng.below(12));
  const int ny = 1 + static_cast<int>(rng.below(12));
  // Density spans near-empty to complete.
  const double density = rng.uniform();
  std::vector<std::vector<bool>> adj(
      static_cast<std::size_t>(nx),
      std::vector<bool>(static_cast<std::size_t>(ny), false));
  EdgeList list;
  list.nx = nx;
  list.ny = ny;
  for (int x = 0; x < nx; ++x) {
    for (int y = 0; y < ny; ++y) {
      if (rng.uniform() < density) {
        adj[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = true;
        list.edges.push_back({x, y});
      }
    }
  }
  SmallCase result{BipartiteGraph::from_edges(list), 0};
  KuhnReference reference(nx, ny, adj);
  result.reference = reference.solve();
  return result;
}

using AlgoFn = std::function<RunStats(const BipartiteGraph&, Matching&)>;

struct NamedAlgo {
  const char* name;
  AlgoFn run;
};

std::vector<NamedAlgo> all_algorithms() {
  return {
      {"graft",
       [](const BipartiteGraph& g, Matching& m) { return ms_bfs_graft(g, m); }},
      {"graft-noopt",
       [](const BipartiteGraph& g, Matching& m) {
         RunConfig c;
         c.direction_optimizing = false;
         return ms_bfs_graft(g, m, c);
       }},
      {"msbfs",
       [](const BipartiteGraph& g, Matching& m) { return ms_bfs(g, m); }},
      {"pf",
       [](const BipartiteGraph& g, Matching& m) { return pothen_fan(g, m); }},
      {"pr",
       [](const BipartiteGraph& g, Matching& m) { return push_relabel(g, m); }},
      {"hk",
       [](const BipartiteGraph& g, Matching& m) { return hopcroft_karp(g, m); }},
      {"ssbfs",
       [](const BipartiteGraph& g, Matching& m) { return ss_bfs(g, m); }},
      {"ssdfs",
       [](const BipartiteGraph& g, Matching& m) { return ss_dfs(g, m); }},
  };
}

class ExhaustiveSmall : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustiveSmall, AllAlgorithmsMatchKuhnReference) {
  Xoshiro256 rng(GetParam());
  const auto algorithms = all_algorithms();
  // 50 random graphs per seed parameter, every algorithm, three
  // different starting matchings each.
  for (int round = 0; round < 50; ++round) {
    const SmallCase test_case = random_small_case(rng);
    const BipartiteGraph& g = test_case.graph;
    for (const NamedAlgo& algo : algorithms) {
      for (int start = 0; start < 3; ++start) {
        Matching m = start == 0   ? Matching(g.num_x(), g.num_y())
                     : start == 1 ? greedy_maximal(g)
                                  : karp_sipser(g, GetParam() + round);
        algo.run(g, m);
        ASSERT_EQ(m.cardinality(), test_case.reference)
            << algo.name << " round=" << round << " start=" << start
            << " nx=" << g.num_x() << " ny=" << g.num_y()
            << " m=" << g.num_edges();
        ASSERT_TRUE(is_valid_matching(g, m)) << algo.name;
        ASSERT_TRUE(is_maximum_matching(g, m)) << algo.name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveSmall,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// DM/BTF on the same tiny-graph distribution: decomposition block sizes
// must be consistent with the reference matching number, and the BTF
// structural checks must hold.
class ExhaustiveDm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExhaustiveDm, DecompositionConsistent) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const SmallCase test_case = random_small_case(rng);
    const BipartiteGraph& g = test_case.graph;
    const DmDecomposition dm = dm_decompose(g);
    EXPECT_EQ(dm.structural_rank(), test_case.reference);
    // Square part perfectly matched; H has column surplus; V row surplus.
    EXPECT_EQ(dm.rows_in(DmBlock::kSquare), dm.cols_in(DmBlock::kSquare));
    EXPECT_GE(dm.cols_in(DmBlock::kHorizontal),
              dm.rows_in(DmBlock::kHorizontal));
    EXPECT_GE(dm.rows_in(DmBlock::kVertical), dm.cols_in(DmBlock::kVertical));
    const BlockTriangularForm btf = block_triangular_form(g, dm);
    EXPECT_TRUE(verify_btf(g, btf)) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExhaustiveDm, ::testing::Values(5, 6, 7, 8));

// ---- kernelization on EVERY bipartite graph up to 4+4 vertices.
//
// Complete enumeration (one graph per edge-subset bitmask, ~75k graphs
// across the 16 (nx, ny) cells, sharded one cell per test): reduce with
// the degree-1 pipeline, run every registry solver on the kernel,
// reconstruct, and require the unreduced matching number from the Kuhn
// reference. This hits every degenerate shape the reduction rules can
// meet -- empty rows, pendant chains, stars, complete blocks -- by
// construction rather than by sampling.
class ExhaustiveReduce
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExhaustiveReduce, EveryGraphEverySolverMatchesUnreduced) {
  const auto [nx, ny] = GetParam();
  const int bits = nx * ny;
  const std::uint64_t total = std::uint64_t{1} << bits;
#if GRAFTMATCH_EXH_SANITIZED
  // Prime strides keep the subsample spread across edge patterns.
  const std::uint64_t stride = bits >= 12 ? 97 : (bits >= 8 ? 7 : 1);
#else
  const std::uint64_t stride = 1;
#endif
  const auto solvers = engine::solver_registry();
  std::uint64_t index = 0;
  for (std::uint64_t mask = 0; mask < total; mask += stride, ++index) {
    std::vector<std::vector<bool>> adj(
        static_cast<std::size_t>(nx),
        std::vector<bool>(static_cast<std::size_t>(ny), false));
    EdgeList list;
    list.nx = nx;
    list.ny = ny;
    for (int bit = 0; bit < bits; ++bit) {
      if ((mask >> bit) & 1u) {
        const int x = bit / ny;
        const int y = bit % ny;
        adj[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = true;
        list.edges.push_back({x, y});
      }
    }
    const BipartiteGraph g = BipartiteGraph::from_edges(list);
    KuhnReference reference(nx, ny, adj);
    const int nu = reference.solve();

    const reduce::Reduction red =
        reduce::reduce_graph(g, ReduceMode::kDegree1);
    const BipartiteGraph& kernel = reduce::solve_graph(red, g);
    for (const engine::SolverInfo& solver : solvers) {
      Matching kernel_m(kernel.num_x(), kernel.num_y());
      const RunConfig config;
      solver.run(kernel, kernel_m, config);
      const Matching m = reduce::reconstruct_matching(g, red, kernel_m);
      ASSERT_EQ(m.cardinality(), nu)
          << solver.name << " nx=" << nx << " ny=" << ny << " mask=" << mask
          << " " << reduce::debug_summary(red);
      ASSERT_TRUE(is_maximum_matching(g, m))
          << solver.name << " mask=" << mask;
    }

    // End-to-end through the engine driver on a rotating solver, so the
    // run_reduced wiring (init on kernel, stats translation) sees the
    // same complete graph population without multiplying the runtime.
    const engine::SolverInfo& solver = solvers[index % solvers.size()];
    RunConfig config;
    config.reduce = ReduceMode::kDegree1;
    Matching m;
    const RunStats stats =
        engine::run_reduced(solver.name, "none", g, m, config);
    ASSERT_EQ(m.cardinality(), nu)
        << solver.name << " nx=" << nx << " ny=" << ny << " mask=" << mask;
    ASSERT_EQ(stats.final_cardinality, nu) << solver.name;
    ASSERT_TRUE(stats.reduce.collected) << solver.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Cells, ExhaustiveReduce,
                         ::testing::Combine(::testing::Range(1, 5),
                                            ::testing::Range(1, 5)));

}  // namespace
}  // namespace graftmatch
