// Generator tests: determinism, size contracts, parameter validation,
// and the per-class structural properties the benchmark suite relies on.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/grid.hpp"
#include "graftmatch/gen/rmat.hpp"
#include "graftmatch/gen/road.hpp"
#include "graftmatch/gen/suite.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/graph/graph_stats.hpp"

namespace graftmatch {
namespace {

TEST(Rmat, DeterministicGivenSeed) {
  RmatParams params;
  params.scale = 10;
  params.seed = 5;
  const BipartiteGraph a = generate_rmat(params);
  const BipartiteGraph b = generate_rmat(params);
  EXPECT_EQ(a.to_edges().edges, b.to_edges().edges);
}

TEST(Rmat, SeedChangesGraph) {
  RmatParams params;
  params.scale = 10;
  params.seed = 5;
  const BipartiteGraph a = generate_rmat(params);
  params.seed = 6;
  const BipartiteGraph b = generate_rmat(params);
  EXPECT_NE(a.to_edges().edges, b.to_edges().edges);
}

TEST(Rmat, SizeContract) {
  RmatParams params;
  params.scale = 12;
  params.edge_factor = 8.0;
  const BipartiteGraph g = generate_rmat(params);
  EXPECT_EQ(g.num_x(), 1 << 12);
  EXPECT_EQ(g.num_y(), 1 << 12);
  // Dedup removes some edges but the bulk must remain.
  EXPECT_GT(g.num_edges(), (8 << 12) / 2);
  EXPECT_LE(g.num_edges(), 8LL << 12);
}

TEST(Rmat, SkewedDegrees) {
  RmatParams params;
  params.scale = 13;
  const GraphStats stats = compute_graph_stats(generate_rmat(params));
  // RMAT hubs are far above the mean degree.
  EXPECT_GT(stats.degree_skew_x, 10.0);
}

TEST(Rmat, RejectsBadParameters) {
  RmatParams params;
  params.scale = 0;
  EXPECT_THROW(generate_rmat(params), std::invalid_argument);
  params.scale = 10;
  params.a = 0.9;
  params.b = 0.2;  // a+b+c > 1
  EXPECT_THROW(generate_rmat(params), std::invalid_argument);
}

TEST(ErdosRenyi, SizeAndDeterminism) {
  ErdosRenyiParams params;
  params.nx = 500;
  params.ny = 400;
  params.edges = 3000;
  params.seed = 11;
  const BipartiteGraph a = generate_erdos_renyi(params);
  const BipartiteGraph b = generate_erdos_renyi(params);
  EXPECT_EQ(a.num_x(), 500);
  EXPECT_EQ(a.num_y(), 400);
  EXPECT_GT(a.num_edges(), 2800);  // dedup loses a few
  EXPECT_LE(a.num_edges(), 3000);
  EXPECT_EQ(a.to_edges().edges, b.to_edges().edges);
}

TEST(ErdosRenyi, RejectsBadParameters) {
  ErdosRenyiParams params;
  params.nx = 0;
  EXPECT_THROW(generate_erdos_renyi(params), std::invalid_argument);
  params.nx = 4;
  params.edges = -1;
  EXPECT_THROW(generate_erdos_renyi(params), std::invalid_argument);
}

TEST(ChungLu, PowerLawSkew) {
  ChungLuParams params;
  params.nx = 1 << 13;
  params.ny = 1 << 13;
  params.avg_degree = 8.0;
  params.gamma = 2.2;
  const BipartiteGraph g = generate_chung_lu(params);
  const GraphStats stats = compute_graph_stats(g);
  EXPECT_GT(stats.degree_skew_x, 8.0);
  // Realized edge count tracks the target within dedup losses.
  EXPECT_GT(g.num_edges(), static_cast<std::int64_t>(
                               0.5 * params.avg_degree * params.nx));
}

TEST(ChungLu, GammaControlsSkew) {
  ChungLuParams params;
  params.nx = params.ny = 1 << 13;
  params.avg_degree = 8.0;
  params.gamma = 1.9;
  const GraphStats heavy = compute_graph_stats(generate_chung_lu(params));
  params.gamma = 3.5;
  const GraphStats light = compute_graph_stats(generate_chung_lu(params));
  EXPECT_GT(heavy.degree_skew_x, light.degree_skew_x);
}

TEST(ChungLu, RejectsBadParameters) {
  ChungLuParams params;
  params.gamma = 1.0;
  EXPECT_THROW(generate_chung_lu(params), std::invalid_argument);
  params.gamma = 2.5;
  params.avg_degree = 0.0;
  EXPECT_THROW(generate_chung_lu(params), std::invalid_argument);
}

TEST(Grid, PerfectMatchingWithFullDiagonal) {
  GridParams params;
  params.width = 40;
  params.height = 40;
  const BipartiteGraph g = generate_grid(params);
  EXPECT_EQ(g.num_x(), 1600);
  // Zero-free diagonal -> perfect matching exists.
  EXPECT_EQ(maximum_matching_cardinality(g), 1600);
}

TEST(Grid, DiagonalDropKeepsNearPerfectMatching) {
  // On even-sided grids the off-diagonal stencil alone admits a perfect
  // matching (pair adjacent cells), so dropping diagonal entries must
  // not cost more than a few percent.
  GridParams params;
  params.width = 40;
  params.height = 40;
  params.diagonal_drop = 0.05;
  const BipartiteGraph g = generate_grid(params);
  const std::int64_t maximum = maximum_matching_cardinality(g);
  EXPECT_LE(maximum, 1600);
  EXPECT_GT(maximum, 1500);
}

TEST(Grid, OddGridWithoutDiagonalIsDeficient) {
  // 41x41 cells, all diagonals dropped: a perfect matching would be a
  // 2-factor of the odd grid graph, which cannot exist (the chessboard
  // color classes are unbalanced), so the matching number must drop.
  GridParams params;
  params.width = 41;
  params.height = 41;
  params.diagonal_drop = 1.0;
  const BipartiteGraph g = generate_grid(params);
  EXPECT_LT(maximum_matching_cardinality(g), 41 * 41);
}

TEST(Grid, ThreeDimensionalStencil) {
  GridParams params;
  params.width = 8;
  params.height = 8;
  params.depth = 8;
  const BipartiteGraph g = generate_grid(params);
  EXPECT_EQ(g.num_x(), 512);
  // 7-point stencil: interior row degree is 7 (diag + 6 neighbors).
  GraphStats stats = compute_graph_stats(g);
  EXPECT_EQ(stats.max_degree_x, 7);
}

TEST(Grid, RejectsBadParameters) {
  GridParams params;
  params.width = 0;
  EXPECT_THROW(generate_grid(params), std::invalid_argument);
  params.width = 4;
  params.diagonal_drop = 1.5;
  EXPECT_THROW(generate_grid(params), std::invalid_argument);
}

TEST(Road, BoundedDegreeAndDeterminism) {
  RoadParams params;
  params.width = 64;
  params.height = 64;
  params.seed = 3;
  const BipartiteGraph a = generate_road(params);
  const BipartiteGraph b = generate_road(params);
  EXPECT_EQ(a.to_edges().edges, b.to_edges().edges);
  const GraphStats stats = compute_graph_stats(a);
  EXPECT_LE(stats.max_degree_x, 5);  // diagonal + 4 lattice links
}

TEST(Road, DeadEndsCreateIsolation) {
  RoadParams params;
  params.width = 64;
  params.height = 64;
  params.dead_end = 0.1;
  const GraphStats stats = compute_graph_stats(generate_road(params));
  EXPECT_GT(stats.isolated_x, 0);
}

TEST(Road, RejectsBadParameters) {
  RoadParams params;
  params.edge_keep = 2.0;
  EXPECT_THROW(generate_road(params), std::invalid_argument);
}

TEST(WebCrawl, LowMatchingFraction) {
  WebCrawlParams params;
  params.nx = 1 << 13;
  params.ny = 1 << 13;
  params.seed = 2;
  const BipartiteGraph g = generate_webcrawl(params);
  const auto maximum = maximum_matching_cardinality(g);
  const double fraction =
      2.0 * static_cast<double>(maximum) /
      static_cast<double>(g.num_x() + g.num_y());
  // The defining property of the paper's class 3.
  EXPECT_LT(fraction, 0.6);
}

TEST(WebCrawl, StubsConcentrateOnHubs) {
  WebCrawlParams params;
  params.nx = 4096;
  params.ny = 4096;
  params.stub_fraction = 1.0;  // all rows are stubs
  params.hub_count = 16;
  const BipartiteGraph g = generate_webcrawl(params);
  for (vid_t x = 0; x < g.num_x(); ++x) {
    for (const vid_t y : g.neighbors_of_x(x)) EXPECT_LT(y, 16);
  }
}

TEST(WebCrawl, RejectsBadParameters) {
  WebCrawlParams params;
  params.hub_count = 0;
  EXPECT_THROW(generate_webcrawl(params), std::invalid_argument);
  params.hub_count = 10;
  params.stub_fraction = -0.1;
  EXPECT_THROW(generate_webcrawl(params), std::invalid_argument);
}

TEST(Suite, HasElevenInstancesInThreeClasses) {
  const auto& suite = benchmark_suite();
  EXPECT_EQ(suite.size(), 11u);
  EXPECT_EQ(suite_names(GraphClass::kScientific).size(), 4u);
  EXPECT_EQ(suite_names(GraphClass::kScaleFree).size(), 4u);
  EXPECT_EQ(suite_names(GraphClass::kWeb).size(), 3u);
}

TEST(Suite, LookupByName) {
  const SuiteInstance& instance = suite_instance("kkt_power-like");
  EXPECT_EQ(instance.paper_name, "kkt_power");
  EXPECT_EQ(instance.graph_class, GraphClass::kScientific);
  EXPECT_THROW(suite_instance("nope"), std::out_of_range);
}

TEST(Suite, SizeFactorScalesGraphs) {
  const SuiteInstance& instance = suite_instance("hugetrace-like");
  const BipartiteGraph small = instance.factory(0.01, 1);
  const BipartiteGraph larger = instance.factory(0.04, 1);
  EXPECT_GT(larger.num_x(), 2 * small.num_x());
}

TEST(Suite, ClassNames) {
  EXPECT_EQ(to_string(GraphClass::kScientific), "scientific");
  EXPECT_EQ(to_string(GraphClass::kScaleFree), "scale-free");
  EXPECT_EQ(to_string(GraphClass::kWeb), "web");
}

TEST(Suite, WebClassHasLowMatchingNumber) {
  for (const auto& name : suite_names(GraphClass::kWeb)) {
    const BipartiteGraph g = suite_instance(name).factory(0.02, 1);
    const double fraction =
        2.0 * static_cast<double>(maximum_matching_cardinality(g)) /
        static_cast<double>(g.num_x() + g.num_y());
    EXPECT_LT(fraction, 0.6) << name;
  }
}

TEST(Suite, ScientificClassHasHighMatchingNumber) {
  for (const auto& name : suite_names(GraphClass::kScientific)) {
    const BipartiteGraph g = suite_instance(name).factory(0.02, 1);
    const double fraction =
        2.0 * static_cast<double>(maximum_matching_cardinality(g)) /
        static_cast<double>(g.num_x() + g.num_y());
    EXPECT_GT(fraction, 0.9) << name;
  }
}

}  // namespace
}  // namespace graftmatch
