// Tests for the planted-matching and SBM generators, including the
// strongest property test in the suite: every algorithm must hit the
// EXACT matching number the planted construction guarantees.
#include <gtest/gtest.h>

#include <tuple>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch {
namespace {

TEST(Planted, ExactCardinalityByConstruction) {
  PlantedParams params;
  params.matched_pairs = 3000;
  params.surplus_rows = 500;
  params.bottleneck = 40;
  params.seed = 9;
  const PlantedGraph planted = generate_planted(params);
  EXPECT_EQ(planted.maximum_cardinality, 3040);
  // Confirm against the independent HK+Koenig machinery.
  EXPECT_EQ(maximum_matching_cardinality(planted.graph), 3040);
}

TEST(Planted, SurplusSmallerThanBottleneck) {
  PlantedParams params;
  params.matched_pairs = 100;
  params.surplus_rows = 5;
  params.bottleneck = 32;
  const PlantedGraph planted = generate_planted(params);
  EXPECT_EQ(planted.maximum_cardinality, 105);
  EXPECT_EQ(maximum_matching_cardinality(planted.graph), 105);
}

TEST(Planted, NoBottleneckMeansSurplusUnmatched) {
  PlantedParams params;
  params.matched_pairs = 200;
  params.surplus_rows = 50;
  params.bottleneck = 0;
  const PlantedGraph planted = generate_planted(params);
  EXPECT_EQ(planted.maximum_cardinality, 200);
  EXPECT_EQ(maximum_matching_cardinality(planted.graph), 200);
}

TEST(Planted, DeterministicPerSeed) {
  PlantedParams params;
  params.seed = 4;
  const PlantedGraph a = generate_planted(params);
  const PlantedGraph b = generate_planted(params);
  EXPECT_EQ(a.graph.to_edges().edges, b.graph.to_edges().edges);
}

TEST(Planted, RejectsBadParameters) {
  PlantedParams params;
  params.matched_pairs = -1;
  EXPECT_THROW(generate_planted(params), std::invalid_argument);
  params.matched_pairs = 10;
  params.noise_degree = -1.0;
  EXPECT_THROW(generate_planted(params), std::invalid_argument);
}

// The money test: every algorithm, exact planted oracle, several shapes.
using PlantedShape = std::tuple<vid_t, vid_t, vid_t>;  // pairs, surplus, B

class PlantedSweep : public ::testing::TestWithParam<PlantedShape> {};

TEST_P(PlantedSweep, EveryAlgorithmHitsExactOptimum) {
  const auto& [pairs, surplus, bottleneck] = GetParam();
  PlantedParams params;
  params.matched_pairs = pairs;
  params.surplus_rows = surplus;
  params.bottleneck = bottleneck;
  params.seed = 31;
  const PlantedGraph planted = generate_planted(params);
  const BipartiteGraph& g = planted.graph;
  const std::int64_t expected = planted.maximum_cardinality;

  const auto check = [&](auto&& algorithm, const char* name) {
    Matching m = randomized_greedy(g, 3);
    algorithm(g, m);
    EXPECT_EQ(m.cardinality(), expected) << name;
  };
  check([](const auto& g2, auto& m) { return ms_bfs_graft(g2, m); }, "graft");
  check([](const auto& g2, auto& m) { return ms_bfs(g2, m); }, "msbfs");
  check([](const auto& g2, auto& m) { return pothen_fan(g2, m); }, "pf");
  check([](const auto& g2, auto& m) { return push_relabel(g2, m); }, "pr");
  check([](const auto& g2, auto& m) { return hopcroft_karp(g2, m); }, "hk");
  check([](const auto& g2, auto& m) { return ss_bfs(g2, m); }, "ssbfs");
  check([](const auto& g2, auto& m) { return ss_dfs(g2, m); }, "ssdfs");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlantedSweep,
    ::testing::Values(PlantedShape{1000, 0, 0},      // perfect matching
                      PlantedShape{1000, 100, 100},  // balanced bottleneck
                      PlantedShape{1000, 400, 16},   // starved bottleneck
                      PlantedShape{1000, 8, 64},     // slack bottleneck
                      PlantedShape{0, 300, 20},      // bottleneck only
                      PlantedShape{2000, 1, 1}));    // single extra pair

TEST(Sbm, SizesAndDeterminism) {
  SbmParams params;
  params.rows_per_block = 200;
  params.cols_per_block = 150;
  params.blocks = 4;
  params.seed = 6;
  const BipartiteGraph a = generate_sbm(params);
  EXPECT_EQ(a.num_x(), 800);
  EXPECT_EQ(a.num_y(), 600);
  const BipartiteGraph b = generate_sbm(params);
  EXPECT_EQ(a.to_edges().edges, b.to_edges().edges);
}

TEST(Sbm, CommunityConcentration) {
  SbmParams params;
  params.rows_per_block = 300;
  params.cols_per_block = 300;
  params.blocks = 6;
  params.in_degree = 8.0;
  params.out_degree = 1.0;
  const BipartiteGraph g = generate_sbm(params);
  // Most edges stay inside the diagonal blocks.
  std::int64_t inside = 0;
  for (vid_t x = 0; x < g.num_x(); ++x) {
    const vid_t block = x / params.rows_per_block;
    for (const vid_t y : g.neighbors_of_x(x)) {
      inside += (y / params.cols_per_block == block);
    }
  }
  EXPECT_GT(inside, (g.num_edges() * 3) / 4);
}

TEST(Sbm, SingleBlockHasNoCrossEdges) {
  SbmParams params;
  params.blocks = 1;
  params.rows_per_block = 100;
  params.cols_per_block = 100;
  params.out_degree = 5.0;  // must be ignored with one block
  const BipartiteGraph g = generate_sbm(params);
  EXPECT_GT(g.num_edges(), 0);
}

TEST(Sbm, MatchableAndSolvable) {
  SbmParams params;
  params.rows_per_block = 400;
  params.cols_per_block = 400;
  params.blocks = 5;
  const BipartiteGraph g = generate_sbm(params);
  Matching m = randomized_greedy(g, 1);
  RunConfig config;
  config.check_invariants = true;
  ms_bfs_graft(g, m, config);
  EXPECT_TRUE(is_maximum_matching(g, m));
}

TEST(Sbm, RejectsBadParameters) {
  SbmParams params;
  params.blocks = 0;
  EXPECT_THROW(generate_sbm(params), std::invalid_argument);
  params.blocks = 2;
  params.in_degree = -1.0;
  EXPECT_THROW(generate_sbm(params), std::invalid_argument);
}

}  // namespace
}  // namespace graftmatch
