// Randomized robustness tests: the I/O layer and graph builders must
// round-trip arbitrary valid inputs and reject malformed ones without
// crashing; transforms must compose to identity.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/mm_io.hpp"
#include "graftmatch/graph/transforms.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {
namespace {

EdgeList random_edge_list(Xoshiro256& rng) {
  EdgeList list;
  list.nx = 1 + static_cast<vid_t>(rng.below(40));
  list.ny = 1 + static_cast<vid_t>(rng.below(40));
  const auto edges = rng.below(200);
  for (std::uint64_t k = 0; k < edges; ++k) {
    list.edges.push_back(
        {static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(list.nx))),
         static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(list.ny)))});
  }
  return list;
}

TEST(Fuzz, MatrixMarketRoundTripsRandomLists) {
  Xoshiro256 rng(101);
  for (int round = 0; round < 200; ++round) {
    EdgeList original = random_edge_list(rng);
    original.canonicalize();
    std::ostringstream out;
    write_matrix_market(out, original);
    std::istringstream in(out.str());
    const EdgeList parsed = read_matrix_market(in);
    ASSERT_EQ(parsed.nx, original.nx) << round;
    ASSERT_EQ(parsed.ny, original.ny) << round;
    ASSERT_EQ(parsed.edges, original.edges) << round;
  }
}

TEST(Fuzz, MatrixMarketSurvivesMutations) {
  // Mutate valid files and require: either a clean parse or a clean
  // exception -- never a crash and never an out-of-range edge list.
  Xoshiro256 rng(202);
  for (int round = 0; round < 300; ++round) {
    EdgeList original = random_edge_list(rng);
    original.canonicalize();
    std::ostringstream out;
    write_matrix_market(out, original);
    std::string text = out.str();
    // Apply 1-3 random byte mutations.
    const int mutations = 1 + static_cast<int>(rng.below(3));
    for (int k = 0; k < mutations && !text.empty(); ++k) {
      const auto at = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(text.size())));
      const char replacement =
          static_cast<char>('0' + static_cast<char>(rng.below(75)));
      text[at] = replacement;
    }
    std::istringstream in(text);
    try {
      const EdgeList parsed = read_matrix_market(in);
      EXPECT_TRUE(parsed.in_bounds()) << round;
    } catch (const std::runtime_error&) {
      // rejected cleanly: fine
    }
  }
}

TEST(Fuzz, CsrBuilderIdempotentUnderDuplication) {
  Xoshiro256 rng(303);
  for (int round = 0; round < 100; ++round) {
    EdgeList list = random_edge_list(rng);
    const BipartiteGraph once = BipartiteGraph::from_edges(list);
    // Duplicate every edge; the built graph must be identical.
    EdgeList doubled = list;
    doubled.edges.insert(doubled.edges.end(), list.edges.begin(),
                         list.edges.end());
    const BipartiteGraph twice = BipartiteGraph::from_edges(doubled);
    ASSERT_EQ(once.to_edges().edges, twice.to_edges().edges) << round;
  }
}

TEST(Fuzz, PermutationComposesToIdentity) {
  Xoshiro256 rng(404);
  for (int round = 0; round < 50; ++round) {
    const BipartiteGraph g = BipartiteGraph::from_edges(random_edge_list(rng));
    const auto perm_x = random_permutation(g.num_x(), rng);
    const auto perm_y = random_permutation(g.num_y(), rng);
    // Invert.
    std::vector<vid_t> inv_x(perm_x.size());
    std::vector<vid_t> inv_y(perm_y.size());
    for (std::size_t i = 0; i < perm_x.size(); ++i) {
      inv_x[static_cast<std::size_t>(perm_x[i])] = static_cast<vid_t>(i);
    }
    for (std::size_t i = 0; i < perm_y.size(); ++i) {
      inv_y[static_cast<std::size_t>(perm_y[i])] = static_cast<vid_t>(i);
    }
    const BipartiteGraph there = permute(g, perm_x, perm_y);
    const BipartiteGraph back = permute(there, inv_x, inv_y);
    ASSERT_EQ(back.to_edges().edges, g.to_edges().edges) << round;
  }
}

TEST(Fuzz, TransposeIsInvolutive) {
  Xoshiro256 rng(505);
  for (int round = 0; round < 50; ++round) {
    const BipartiteGraph g = BipartiteGraph::from_edges(random_edge_list(rng));
    const BipartiteGraph back = transpose(transpose(g));
    ASSERT_EQ(back.to_edges().edges, g.to_edges().edges) << round;
  }
}

}  // namespace
}  // namespace graftmatch
