// Randomized robustness tests: the I/O layer and graph builders must
// round-trip arbitrary valid inputs and reject malformed ones without
// crashing; transforms must compose to identity.
//
// Reproducibility: every case draws its seed from a splitmix64 stream
// of one master seed (overridable via GRAFTMATCH_FUZZ_SEED for CI seed
// rotation), and every assertion prints the failing case seed -- so a
// CI log line alone is enough to replay exactly one failing case with
// Xoshiro256(seed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/graph/mm_io.hpp"
#include "graftmatch/graph/transforms.hpp"
#include "graftmatch/reduce/reduce.hpp"
#include "graftmatch/runtime/prng.hpp"
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch {
namespace {

std::uint64_t master_seed() {
  if (const char* env = std::getenv("GRAFTMATCH_FUZZ_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) return parsed;
  }
  return 0xF0CC1A5EEDULL;
}

/// Per-test seed stream: fold a per-test salt into the master seed so
/// tests stay independent, then hand out one splitmix64 value per case.
class CaseSeeds {
 public:
  explicit CaseSeeds(std::uint64_t salt) : state_(master_seed() ^ salt) {}
  std::uint64_t next() { return splitmix64_next(state_); }

 private:
  std::uint64_t state_;
};

EdgeList random_edge_list(Xoshiro256& rng) {
  EdgeList list;
  list.nx = 1 + static_cast<vid_t>(rng.below(40));
  list.ny = 1 + static_cast<vid_t>(rng.below(40));
  const auto edges = rng.below(200);
  for (std::uint64_t k = 0; k < edges; ++k) {
    list.edges.push_back(
        {static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(list.nx))),
         static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(list.ny)))});
  }
  return list;
}

TEST(Fuzz, MatrixMarketRoundTripsRandomLists) {
  CaseSeeds seeds(0x101);
  for (int round = 0; round < 200; ++round) {
    const std::uint64_t seed = seeds.next();
    Xoshiro256 rng(seed);
    EdgeList original = random_edge_list(rng);
    original.canonicalize();
    std::ostringstream out;
    write_matrix_market(out, original);
    std::istringstream in(out.str());
    const EdgeList parsed = read_matrix_market(in);
    ASSERT_EQ(parsed.nx, original.nx) << "case seed " << seed;
    ASSERT_EQ(parsed.ny, original.ny) << "case seed " << seed;
    ASSERT_EQ(parsed.edges, original.edges) << "case seed " << seed;
  }
}

TEST(Fuzz, MatrixMarketSurvivesMutations) {
  // Mutate valid files and require: either a clean parse or a clean
  // exception -- never a crash and never an out-of-range edge list.
  CaseSeeds seeds(0x202);
  for (int round = 0; round < 300; ++round) {
    const std::uint64_t seed = seeds.next();
    Xoshiro256 rng(seed);
    EdgeList original = random_edge_list(rng);
    original.canonicalize();
    std::ostringstream out;
    write_matrix_market(out, original);
    std::string text = out.str();
    // Apply 1-3 random byte mutations.
    const int mutations = 1 + static_cast<int>(rng.below(3));
    for (int k = 0; k < mutations && !text.empty(); ++k) {
      const auto at = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(text.size())));
      const char replacement =
          static_cast<char>('0' + static_cast<char>(rng.below(75)));
      text[at] = replacement;
    }
    std::istringstream in(text);
    try {
      const EdgeList parsed = read_matrix_market(in);
      EXPECT_TRUE(parsed.in_bounds()) << "case seed " << seed;
    } catch (const std::runtime_error&) {
      // rejected cleanly: fine
    }
  }
}

TEST(Fuzz, CsrBuilderIdempotentUnderDuplication) {
  CaseSeeds seeds(0x303);
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t seed = seeds.next();
    Xoshiro256 rng(seed);
    EdgeList list = random_edge_list(rng);
    const BipartiteGraph once = BipartiteGraph::from_edges(list);
    // Duplicate every edge; the built graph must be identical.
    EdgeList doubled = list;
    doubled.edges.insert(doubled.edges.end(), list.edges.begin(),
                         list.edges.end());
    const BipartiteGraph twice = BipartiteGraph::from_edges(doubled);
    ASSERT_EQ(once.to_edges().edges, twice.to_edges().edges)
        << "case seed " << seed;
  }
}

TEST(Fuzz, PermutationComposesToIdentity) {
  CaseSeeds seeds(0x404);
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t seed = seeds.next();
    Xoshiro256 rng(seed);
    const BipartiteGraph g = BipartiteGraph::from_edges(random_edge_list(rng));
    const auto perm_x = random_permutation(g.num_x(), rng);
    const auto perm_y = random_permutation(g.num_y(), rng);
    // Invert.
    std::vector<vid_t> inv_x(perm_x.size());
    std::vector<vid_t> inv_y(perm_y.size());
    for (std::size_t i = 0; i < perm_x.size(); ++i) {
      inv_x[static_cast<std::size_t>(perm_x[i])] = static_cast<vid_t>(i);
    }
    for (std::size_t i = 0; i < perm_y.size(); ++i) {
      inv_y[static_cast<std::size_t>(perm_y[i])] = static_cast<vid_t>(i);
    }
    const BipartiteGraph there = permute(g, perm_x, perm_y);
    const BipartiteGraph back = permute(there, inv_x, inv_y);
    ASSERT_EQ(back.to_edges().edges, g.to_edges().edges)
        << "case seed " << seed;
  }
}

TEST(Fuzz, ReductionRoundTripPreservesMaximumMatching) {
  // Full kernelization round trip on arbitrary graphs: reduce, solve
  // the kernel, reconstruct, verify on the original. Failure messages
  // carry the case seed AND the reduction log summary, so a reproducer
  // pins down both the input graph and the pipeline state it reached.
  CaseSeeds seeds(0x606);
  for (int round = 0; round < 150; ++round) {
    const std::uint64_t seed = seeds.next();
    Xoshiro256 rng(seed);
    const BipartiteGraph g = BipartiteGraph::from_edges(random_edge_list(rng));
    Matching direct(g.num_x(), g.num_y());
    hopcroft_karp(g, direct);
    for (const ReduceMode mode :
         {ReduceMode::kDegree1, ReduceMode::kDegree12}) {
      const reduce::Reduction red = reduce::reduce_graph(g, mode);
      const BipartiteGraph& kernel = reduce::solve_graph(red, g);
      Matching kernel_m(kernel.num_x(), kernel.num_y());
      hopcroft_karp(kernel, kernel_m);
      const Matching lifted = reduce::reconstruct_matching(g, red, kernel_m);
      const std::string ctx =
          "case seed " + std::to_string(seed) + " " + reduce::debug_summary(red);
      ASSERT_TRUE(is_valid_matching(g, lifted)) << ctx;
      ASSERT_EQ(lifted.cardinality(), direct.cardinality()) << ctx;
      ASSERT_TRUE(is_maximum_matching(g, lifted)) << ctx;
    }
  }
}

TEST(Fuzz, ReconstructRejectsMismatchedDimensions) {
  // Handing reconstruct_matching a matching that does not fit the
  // kernel (or a graph that does not fit the reduction) must be a clean
  // invalid_argument, never a crash or a silent wrong answer.
  CaseSeeds seeds(0x707);
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t seed = seeds.next();
    Xoshiro256 rng(seed);
    const BipartiteGraph g = BipartiteGraph::from_edges(random_edge_list(rng));
    const reduce::Reduction red =
        reduce::reduce_graph(g, ReduceMode::kDegree1);
    // For an identity reduction the kernel is the original graph, so a
    // +1/+2 offset from its dimensions is still a mismatch either way.
    const BipartiteGraph& kernel = reduce::solve_graph(red, g);
    const Matching wrong(kernel.num_x() + 1, kernel.num_y() + 2);
    EXPECT_THROW(reduce::reconstruct_matching(g, red, wrong),
                 std::invalid_argument)
        << "case seed " << seed;
    const BipartiteGraph other =
        BipartiteGraph::from_edges({g.num_x() + 1, g.num_y(), {}});
    const Matching kernel_m(kernel.num_x(), kernel.num_y());
    EXPECT_THROW(reduce::reconstruct_matching(other, red, kernel_m),
                 std::invalid_argument)
        << "case seed " << seed;
  }
}

TEST(Fuzz, TransposeIsInvolutive) {
  CaseSeeds seeds(0x505);
  for (int round = 0; round < 50; ++round) {
    const std::uint64_t seed = seeds.next();
    Xoshiro256 rng(seed);
    const BipartiteGraph g = BipartiteGraph::from_edges(random_edge_list(rng));
    const BipartiteGraph back = transpose(transpose(g));
    ASSERT_EQ(back.to_edges().edges, g.to_edges().edges)
        << "case seed " << seed;
  }
}

}  // namespace
}  // namespace graftmatch
