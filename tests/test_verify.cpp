// Tests for the verification substrate itself: the validators must catch
// corrupt matchings and the Koenig certificate must separate maximum
// from non-maximum matchings.
#include <gtest/gtest.h>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch {
namespace {

BipartiteGraph z_graph() {
  // x0 ~ {y0, y1}, x1 ~ {y1}: maximum matching has size 2 and requires
  // x0-y0; the greedy trap x0-y1 gives size 1.
  EdgeList list;
  list.nx = 2;
  list.ny = 2;
  list.edges = {{0, 0}, {0, 1}, {1, 1}};
  return BipartiteGraph::from_edges(list);
}

TEST(Validate, AcceptsEmptyAndProperMatchings) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  EXPECT_TRUE(is_valid_matching(g, m));
  m.match(0, 0);
  m.match(1, 1);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Validate, RejectsSizeMismatch) {
  const BipartiteGraph g = z_graph();
  const Matching m(3, 2);
  EXPECT_FALSE(validate_matching(g, m).empty());
}

TEST(Validate, RejectsNonEdge) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.match(1, 0);  // (x1, y0) is not an edge
  const std::string error = validate_matching(g, m);
  EXPECT_NE(error.find("non-edge"), std::string::npos);
}

TEST(Validate, RejectsAsymmetricPair) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.mate_x()[0] = 0;  // forge one-sided pointer
  const std::string error = validate_matching(g, m);
  EXPECT_NE(error.find("asymmetric"), std::string::npos);

  Matching m2(2, 2);
  m2.mate_y()[1] = 0;
  EXPECT_FALSE(validate_matching(g, m2).empty());
}

TEST(Validate, RejectsOutOfRangeMate) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.mate_x()[0] = 7;
  EXPECT_NE(validate_matching(g, m).find("out of range"), std::string::npos);
}

TEST(Koenig, CertifiesMaximum) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.match(0, 0);
  m.match(1, 1);
  EXPECT_TRUE(is_maximum_matching(g, m));
  const VertexCover cover = koenig_cover(g, m);
  EXPECT_EQ(cover.size(), 2);
  EXPECT_TRUE(covers_all_edges(g, cover));
}

TEST(Koenig, RejectsNonMaximum) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.match(0, 1);  // the greedy trap: maximal but not maximum
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_FALSE(is_maximum_matching(g, m));
  // The Koenig cover is strictly larger than the matching here.
  const VertexCover cover = koenig_cover(g, m);
  EXPECT_GT(cover.size(), m.cardinality());
}

TEST(Koenig, EmptyMatchingOnEdgelessGraphIsMaximum) {
  EdgeList list;
  list.nx = 4;
  list.ny = 4;
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const Matching m(4, 4);
  EXPECT_TRUE(is_maximum_matching(g, m));
  EXPECT_EQ(koenig_cover(g, m).size(), 0);
}

TEST(Koenig, RejectsInvalidMatchingOutright) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.mate_x()[0] = 0;  // asymmetric
  EXPECT_FALSE(is_maximum_matching(g, m));
}

TEST(Koenig, CoverSizeEqualsHopcroftKarpCardinality) {
  // Koenig's theorem end-to-end on random graphs: min vertex cover
  // size equals maximum matching size.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    ErdosRenyiParams params;
    params.nx = 300;
    params.ny = 280;
    params.edges = 1500;
    params.seed = seed;
    const BipartiteGraph g = generate_erdos_renyi(params);
    Matching m = karp_sipser(g, seed);
    hopcroft_karp(g, m);
    const VertexCover cover = koenig_cover(g, m);
    EXPECT_TRUE(covers_all_edges(g, cover));
    EXPECT_EQ(cover.size(), m.cardinality());
  }
}

TEST(Koenig, CoversAllEdgesDetectsGaps) {
  const BipartiteGraph g = z_graph();
  VertexCover bogus;  // empty cover cannot cover a nonempty graph
  EXPECT_FALSE(covers_all_edges(g, bogus));
  bogus.y_vertices = {0, 1};
  EXPECT_TRUE(covers_all_edges(g, bogus));
}

}  // namespace
}  // namespace graftmatch
