// Tests for the verification substrate itself: the validators must catch
// corrupt matchings and the Koenig certificate must separate maximum
// from non-maximum matchings.
#include <gtest/gtest.h>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/planted.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch {
namespace {

BipartiteGraph z_graph() {
  // x0 ~ {y0, y1}, x1 ~ {y1}: maximum matching has size 2 and requires
  // x0-y0; the greedy trap x0-y1 gives size 1.
  EdgeList list;
  list.nx = 2;
  list.ny = 2;
  list.edges = {{0, 0}, {0, 1}, {1, 1}};
  return BipartiteGraph::from_edges(list);
}

TEST(Validate, AcceptsEmptyAndProperMatchings) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  EXPECT_TRUE(is_valid_matching(g, m));
  m.match(0, 0);
  m.match(1, 1);
  EXPECT_TRUE(is_valid_matching(g, m));
}

TEST(Validate, RejectsSizeMismatch) {
  const BipartiteGraph g = z_graph();
  const Matching m(3, 2);
  EXPECT_FALSE(validate_matching(g, m).empty());
}

TEST(Validate, RejectsNonEdge) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.match(1, 0);  // (x1, y0) is not an edge
  const std::string error = validate_matching(g, m);
  EXPECT_NE(error.find("non-edge"), std::string::npos);
}

TEST(Validate, RejectsAsymmetricPair) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.mate_x()[0] = 0;  // forge one-sided pointer
  const std::string error = validate_matching(g, m);
  EXPECT_NE(error.find("asymmetric"), std::string::npos);

  Matching m2(2, 2);
  m2.mate_y()[1] = 0;
  EXPECT_FALSE(validate_matching(g, m2).empty());
}

TEST(Validate, RejectsOutOfRangeMate) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.mate_x()[0] = 7;
  EXPECT_NE(validate_matching(g, m).find("out of range"), std::string::npos);
}

TEST(Koenig, CertifiesMaximum) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.match(0, 0);
  m.match(1, 1);
  EXPECT_TRUE(is_maximum_matching(g, m));
  const VertexCover cover = koenig_cover(g, m);
  EXPECT_EQ(cover.size(), 2);
  EXPECT_TRUE(covers_all_edges(g, cover));
}

TEST(Koenig, RejectsNonMaximum) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.match(0, 1);  // the greedy trap: maximal but not maximum
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_FALSE(is_maximum_matching(g, m));
  // The Koenig cover is strictly larger than the matching here.
  const VertexCover cover = koenig_cover(g, m);
  EXPECT_GT(cover.size(), m.cardinality());
}

TEST(Koenig, EmptyMatchingOnEdgelessGraphIsMaximum) {
  EdgeList list;
  list.nx = 4;
  list.ny = 4;
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const Matching m(4, 4);
  EXPECT_TRUE(is_maximum_matching(g, m));
  EXPECT_EQ(koenig_cover(g, m).size(), 0);
}

TEST(Koenig, RejectsInvalidMatchingOutright) {
  const BipartiteGraph g = z_graph();
  Matching m(2, 2);
  m.mate_x()[0] = 0;  // asymmetric
  EXPECT_FALSE(is_maximum_matching(g, m));
}

TEST(Koenig, CoverSizeEqualsHopcroftKarpCardinality) {
  // Koenig's theorem end-to-end on random graphs: min vertex cover
  // size equals maximum matching size.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    ErdosRenyiParams params;
    params.nx = 300;
    params.ny = 280;
    params.edges = 1500;
    params.seed = seed;
    const BipartiteGraph g = generate_erdos_renyi(params);
    Matching m = karp_sipser(g, seed);
    hopcroft_karp(g, m);
    const VertexCover cover = koenig_cover(g, m);
    EXPECT_TRUE(covers_all_edges(g, cover));
    EXPECT_EQ(cover.size(), m.cardinality());
  }
}

// Adversarial certificate coverage on planted instances, where the
// exact maximum is known independently of every solver: the certificate
// must accept known-maximum matchings and reject EVERY valid-but-
// sub-maximum matching we can manufacture -- this is the detection path
// the differential harness relies on when a parallel race silently
// drops an augmenting path.

PlantedParams planted_shape(std::uint64_t seed) {
  PlantedParams params;
  params.matched_pairs = 300;
  params.surplus_rows = 60;
  params.bottleneck = 20;
  params.noise_degree = 3.0;
  params.seed = seed;
  return params;
}

TEST(Koenig, AcceptsKnownMaximumOnPlantedInstances) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL, 44ULL}) {
    const PlantedGraph planted = generate_planted(planted_shape(seed));
    Matching m = karp_sipser(planted.graph, seed);
    hopcroft_karp(planted.graph, m);
    ASSERT_EQ(m.cardinality(), planted.maximum_cardinality) << seed;
    EXPECT_TRUE(is_maximum_matching(planted.graph, m)) << seed;
    const VertexCover cover = koenig_cover(planted.graph, m);
    EXPECT_TRUE(covers_all_edges(planted.graph, cover)) << seed;
    EXPECT_EQ(cover.size(), planted.maximum_cardinality) << seed;
  }
}

TEST(Koenig, RejectsPlantedSubMaximumMatchings) {
  // Start from the true maximum and strip k matched edges: the result
  // stays a valid matching but must fail the certificate for every k.
  const PlantedGraph planted = generate_planted(planted_shape(77));
  Matching maximum = karp_sipser(planted.graph, 77);
  hopcroft_karp(planted.graph, maximum);
  ASSERT_EQ(maximum.cardinality(), planted.maximum_cardinality);

  for (const int strip : {1, 2, 7, 50}) {
    Matching m = maximum;
    int stripped = 0;
    for (vid_t x = 0; x < m.num_x() && stripped < strip; ++x) {
      if (m.is_matched_x(x)) {
        m.unmatch_x(x);
        ++stripped;
      }
    }
    ASSERT_EQ(stripped, strip);
    ASSERT_TRUE(is_valid_matching(planted.graph, m)) << strip;
    EXPECT_FALSE(is_maximum_matching(planted.graph, m)) << strip;
    // The Koenig gap bounds the deficiency from below.
    const VertexCover cover = koenig_cover(planted.graph, m);
    EXPECT_GT(cover.size(), m.cardinality()) << strip;
  }
}

TEST(Koenig, RejectsMaximalButSubMaximumGreedyMatchings) {
  // Organic sub-maximum inputs (no hand-stripping): greedy maximal
  // matchings that fall short of the planted optimum must be rejected;
  // greedy runs that happen to reach the optimum must be accepted.
  int rejected = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const PlantedGraph planted = generate_planted(planted_shape(seed));
    const Matching m = randomized_greedy(planted.graph, seed * 13);
    ASSERT_TRUE(is_valid_matching(planted.graph, m)) << seed;
    ASSERT_TRUE(is_maximal_matching(planted.graph, m)) << seed;
    const bool at_optimum = m.cardinality() == planted.maximum_cardinality;
    EXPECT_EQ(is_maximum_matching(planted.graph, m), at_optimum) << seed;
    rejected += !at_optimum;
  }
  // The planted bottleneck makes greedy traps overwhelmingly likely; if
  // every greedy run reached the optimum this test stopped testing the
  // reject path and the shape above needs retuning.
  EXPECT_GT(rejected, 0);
}

TEST(Koenig, CoversAllEdgesDetectsGaps) {
  const BipartiteGraph g = z_graph();
  VertexCover bogus;  // empty cover cannot cover a nonempty graph
  EXPECT_FALSE(covers_all_edges(g, bogus));
  bogus.y_vertices = {0, 1};
  EXPECT_TRUE(covers_all_edges(g, bogus));
}

}  // namespace
}  // namespace graftmatch
