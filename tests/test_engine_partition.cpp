// Unit tests for the engine's degree-prefix-sum edge-balanced
// partitioner: degenerate shapes (empty, singleton, hub-dominated),
// coverage/monotonicity invariants under random degree sequences, and
// bit-identical boundaries regardless of the ambient OpenMP thread
// count (the property the traversal kernels' determinism rests on).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "graftmatch/engine/edge_partition.hpp"
#include "graftmatch/runtime/parallel.hpp"

namespace graftmatch::engine {
namespace {

std::vector<std::int64_t> prefix_of(const std::vector<std::int64_t>& degrees) {
  std::vector<std::int64_t> prefix(degrees.size() + 1, 0);
  std::partial_sum(degrees.begin(), degrees.end(), prefix.begin() + 1);
  return prefix;
}

// Every boundary vector must be monotone, start at 0 and end at the
// item count -- i.e. the parts tile the items exactly once.
void expect_tiling(const std::vector<std::int64_t>& bounds, int parts,
                   std::int64_t items) {
  ASSERT_EQ(bounds.size(), static_cast<std::size_t>(parts) + 1);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), items);
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    EXPECT_LE(bounds[i], bounds[i + 1]) << "part " << i;
  }
}

TEST(EdgeBalancedBoundaries, EmptyFrontier) {
  const std::vector<std::int64_t> prefix = {0};  // zero items
  for (int parts = 1; parts <= 4; ++parts) {
    const auto bounds = edge_balanced_boundaries(prefix, parts);
    expect_tiling(bounds, parts, 0);
  }
}

TEST(EdgeBalancedBoundaries, SingletonItem) {
  const auto prefix = prefix_of({7});
  for (int parts = 1; parts <= 4; ++parts) {
    const auto bounds = edge_balanced_boundaries(prefix, parts);
    expect_tiling(bounds, parts, 1);
    // Exactly one part owns the lone item.
    int owners = 0;
    for (int p = 0; p < parts; ++p) {
      owners += bounds[static_cast<std::size_t>(p)] <
                bounds[static_cast<std::size_t>(p) + 1];
    }
    EXPECT_EQ(owners, 1);
  }
}

TEST(EdgeBalancedBoundaries, HubDominatedFrontier) {
  // One hub holds ~99% of the edges. At item granularity the hub cannot
  // be split, so one part gets it whole and the others share the rest.
  const std::vector<std::int64_t> degrees = {1, 1, 1000, 1, 1};
  const auto prefix = prefix_of(degrees);
  const auto bounds = edge_balanced_boundaries(prefix, 4);
  expect_tiling(bounds, 4, 5);
  int hub_owners = 0;
  for (int p = 0; p < 4; ++p) {
    if (bounds[static_cast<std::size_t>(p)] <= 2 &&
        2 < bounds[static_cast<std::size_t>(p) + 1]) {
      ++hub_owners;
    }
  }
  EXPECT_EQ(hub_owners, 1);
}

TEST(EdgeBalancedBoundaries, TrailingZeroWeightItemsLandInLastPart) {
  const auto prefix = prefix_of({5, 0, 0, 0});
  const auto bounds = edge_balanced_boundaries(prefix, 3);
  expect_tiling(bounds, 3, 4);
  // The zero-degree tail belongs to the last part, never dropped.
  EXPECT_EQ(bounds.back(), 4);
}

TEST(EdgeBalancedBoundaries, RandomDegreesCoverAndBalance) {
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  const auto rng = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 20; ++trial) {
    const auto items = static_cast<std::int64_t>(rng() % 200);
    std::vector<std::int64_t> degrees(static_cast<std::size_t>(items));
    std::int64_t max_degree = 0;
    for (auto& d : degrees) {
      d = static_cast<std::int64_t>(rng() % 50);
      if (rng() % 4 == 0) d = 0;  // plenty of zero-degree items
      max_degree = std::max(max_degree, d);
    }
    const auto prefix = prefix_of(degrees);
    const std::int64_t total = prefix.back();
    for (int parts = 1; parts <= 9; ++parts) {
      const auto bounds = edge_balanced_boundaries(prefix, parts);
      expect_tiling(bounds, parts, items);
      for (int p = 0; p < parts; ++p) {
        const std::int64_t weight =
            prefix[static_cast<std::size_t>(
                bounds[static_cast<std::size_t>(p) + 1])] -
            prefix[static_cast<std::size_t>(
                bounds[static_cast<std::size_t>(p)])];
        // A part overshoots the ideal share by at most one item.
        EXPECT_LE(weight, total / parts + 1 + max_degree)
            << "trial " << trial << " parts " << parts << " part " << p;
      }
    }
  }
}

TEST(EdgePartition, BuildMatchesSerialPrefixSum) {
  const std::vector<std::int64_t> degrees = {3, 0, 2, 5, 0, 1};
  EdgePartition partition;
  partition.build(static_cast<std::int64_t>(degrees.size()),
                  [&](std::int64_t i) {
                    return degrees[static_cast<std::size_t>(i)];
                  });
  const auto expected = prefix_of(degrees);
  ASSERT_EQ(partition.items(), 6);
  ASSERT_EQ(partition.total(), 11);
  const auto prefix = partition.prefix();
  ASSERT_EQ(prefix.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(prefix[i], expected[i]) << "index " << i;
  }
}

TEST(EdgePartition, DeterministicAcrossThreadCounts) {
  // The parallel weight fill plus serial scan must produce the same
  // prefix -- and hence the same boundaries -- at every thread count.
  std::vector<std::int64_t> degrees(501);
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    degrees[i] = static_cast<std::int64_t>((i * 37) % 23);
  }
  const auto weight = [&](std::int64_t i) {
    return degrees[static_cast<std::size_t>(i)];
  };

  std::vector<std::vector<std::int64_t>> prefixes;
  for (const int threads : {1, 2, 4, 7}) {
    ThreadCountGuard guard(threads);
    EdgePartition partition;
    partition.build(static_cast<std::int64_t>(degrees.size()), weight);
    prefixes.emplace_back(partition.prefix().begin(),
                          partition.prefix().end());
  }
  for (std::size_t i = 1; i < prefixes.size(); ++i) {
    EXPECT_EQ(prefixes[i], prefixes[0]) << "thread-count variant " << i;
  }
}

TEST(EdgePartition, LocateFindsOwningItem) {
  const std::vector<std::int64_t> degrees = {3, 0, 2, 5, 0, 1};
  EdgePartition partition;
  partition.build(static_cast<std::int64_t>(degrees.size()),
                  [&](std::int64_t i) {
                    return degrees[static_cast<std::size_t>(i)];
                  });
  const auto prefix = partition.prefix();
  for (std::int64_t rank = 0; rank < partition.total(); ++rank) {
    const EdgePartition::Cursor cursor = partition.locate(rank);
    ASSERT_GE(cursor.item, 0);
    ASSERT_LT(cursor.item, partition.items());
    // The rank falls inside the located item's weight span, so locate
    // never lands on a zero-weight item.
    EXPECT_LE(prefix[static_cast<std::size_t>(cursor.item)], rank);
    EXPECT_LT(rank, prefix[static_cast<std::size_t>(cursor.item) + 1]);
    EXPECT_EQ(cursor.offset,
              rank - prefix[static_cast<std::size_t>(cursor.item)]);
  }
}

TEST(EdgePartition, EdgeRangesTileTheRanks) {
  const std::vector<std::int64_t> degrees = {4, 9, 1, 0, 6, 2};
  EdgePartition partition;
  partition.build(static_cast<std::int64_t>(degrees.size()),
                  [&](std::int64_t i) {
                    return degrees[static_cast<std::size_t>(i)];
                  });
  for (int parts = 1; parts <= 5; ++parts) {
    std::int64_t expected_begin = 0;
    for (int p = 0; p < parts; ++p) {
      const EdgePartition::Range range = partition.edge_range(p, parts);
      EXPECT_EQ(range.begin, expected_begin) << "parts " << parts;
      EXPECT_LE(range.begin, range.end);
      expected_begin = range.end;
    }
    EXPECT_EQ(expected_begin, partition.total()) << "parts " << parts;
  }
}

TEST(EdgePartition, ItemRangesMatchFreeFunctionBoundaries) {
  const std::vector<std::int64_t> degrees = {1, 1, 1000, 1, 1, 0, 0};
  EdgePartition partition;
  partition.build(static_cast<std::int64_t>(degrees.size()),
                  [&](std::int64_t i) {
                    return degrees[static_cast<std::size_t>(i)];
                  });
  for (int parts = 1; parts <= 6; ++parts) {
    const auto bounds = edge_balanced_boundaries(partition.prefix(), parts);
    std::int64_t covered = 0;
    for (int p = 0; p < parts; ++p) {
      const EdgePartition::Range range = partition.item_range(p, parts);
      EXPECT_EQ(range.begin, bounds[static_cast<std::size_t>(p)])
          << "parts " << parts << " part " << p;
      EXPECT_EQ(range.end, bounds[static_cast<std::size_t>(p) + 1])
          << "parts " << parts << " part " << p;
      covered += range.end - range.begin;
    }
    EXPECT_EQ(covered, partition.items()) << "parts " << parts;
  }
}

}  // namespace
}  // namespace graftmatch::engine
