// Differential oracle for the maximum-matching solvers.
//
// Nondeterministic parallel matchers are validated the way the GPU /
// multicore matching literature does it: run EVERY solver configuration
// on the SAME instance and require (a) each result to be a valid
// matching, (b) each result to carry a Koenig maximality certificate,
// and (c) all cardinalities to agree pairwise (and with the planted
// optimum when the generator knows it). A benign-looking race that
// drops one augmenting path breaks (b) and (c) loudly.
//
// Any failure dumps a self-contained reproducer -- Matrix Market graph,
// seed, and solver config -- under a failure directory (default
// "diff_failures/" beneath the test working directory, i.e.
// build/tests/diff/diff_failures in a standard build) so the case can
// be replayed outside the harness. See docs/TESTING.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch::diff {

/// One corpus entry. `seed` is the generator seed (derived from the
/// corpus master seed via a splitmix64 stream, so a failing instance is
/// reproducible from the master seed + index alone).
struct Instance {
  std::string name;    ///< unique, filesystem-safe (e.g. "rmat-02")
  std::string family;  ///< generator family ("er", "rmat", ...)
  std::uint64_t seed = 0;
  BipartiteGraph graph;
  std::int64_t known_maximum = -1;  ///< exact optimum, or -1 if unknown
};

/// Seeded corpus spanning every generator family (ER, RMAT, Chung-Lu,
/// grid, road, planted, SBM, webcrawl); >= 30 instances, sized so the
/// full differential sweep stays in test-suite time.
std::vector<Instance> build_corpus(std::uint64_t master_seed);

/// A named solver configuration: produces a final matching from a graph.
struct SolverSpec {
  std::string name;
  std::function<Matching(const BipartiteGraph&)> run;
};

/// The full roster: MS-BFS-Graft across thread counts x {direction
/// optimization, tree grafting} ablations x initializers (greedy,
/// Karp-Sipser, parallel Karp-Sipser), plus the five baselines
/// (Hopcroft-Karp, Pothen-Fan, push-relabel, SS-BFS, SS-DFS).
/// `thread_counts` defaults to {1, 2, 4, omp_max} (deduplicated).
std::vector<SolverSpec> solver_roster(std::vector<int> thread_counts = {});

/// One verification failure. `detail` is human-readable; `repro_dir` is
/// where the reproducer was written ("" when the dump itself failed).
struct Discrepancy {
  std::string instance;
  std::string solver;
  std::string detail;
  std::string repro_dir;
};

struct DiffOptions {
  std::vector<int> thread_counts;  ///< empty -> roster default
  std::string failure_dir = "diff_failures";
  std::uint64_t master_seed = 0;   ///< recorded in reproducers
};

/// Run every roster solver on `instance` and cross-check. Returns all
/// discrepancies found (empty == instance fully agrees and certifies).
std::vector<Discrepancy> run_differential(const Instance& instance,
                                          const DiffOptions& options = {});

/// Same checks against an explicit roster (used by the stress tests and
/// by the harness's own self-test with a deliberately broken solver).
std::vector<Discrepancy> run_differential(
    const Instance& instance, const std::vector<SolverSpec>& roster,
    const DiffOptions& options = {});

/// Render discrepancies for a test failure message.
std::string format_discrepancies(const std::vector<Discrepancy>& found);

}  // namespace graftmatch::diff
