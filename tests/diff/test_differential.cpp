// Differential-oracle sweep (ctest label: diff).
//
// Every solver configuration in the roster runs on every corpus
// instance; cardinalities must agree pairwise, every matching must be
// valid, and every matching must carry a Koenig maximality certificate.
// A failure dumps a reproducer under diff_failures/ -- the assertion
// message prints the directory.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>

#include "diff_harness.hpp"

namespace graftmatch::diff {
namespace {

// The corpus master seed honors GRAFTMATCH_SEED so CI can rotate seeds
// and a dumped reproducer's "corpus master" line can be replayed.
std::uint64_t master_seed() {
  const char* env = std::getenv("GRAFTMATCH_SEED");
  if (env != nullptr) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    if (end != env) return parsed;
  }
  return 0xD1FFC0DEULL;
}

const std::vector<Instance>& corpus() {
  static const std::vector<Instance> instances = build_corpus(master_seed());
  return instances;
}

class Differential : public ::testing::Test {
 protected:
  DiffOptions options() const {
    DiffOptions opts;
    opts.master_seed = master_seed();
    return opts;
  }

  void run_family(const std::string& family) {
    int covered = 0;
    for (const Instance& instance : corpus()) {
      if (instance.family != family) continue;
      ++covered;
      const auto found = run_differential(instance, options());
      EXPECT_TRUE(found.empty())
          << "differential failures on " << instance.name
          << " (generator seed " << instance.seed << "):\n"
          << format_discrepancies(found);
    }
    ASSERT_GT(covered, 0) << "no corpus instances in family " << family;
  }
};

TEST_F(Differential, CorpusIsLargeEnoughAndNamed) {
  // The acceptance bar: >= 30 instances, unique names, every family
  // present, every graph non-degenerate.
  ASSERT_GE(corpus().size(), 30u);
  std::set<std::string> names;
  std::set<std::string> families;
  for (const Instance& instance : corpus()) {
    EXPECT_TRUE(names.insert(instance.name).second)
        << "duplicate instance name " << instance.name;
    families.insert(instance.family);
    EXPECT_GT(instance.graph.num_x(), 0) << instance.name;
    EXPECT_GT(instance.graph.num_edges(), 0) << instance.name;
  }
  const std::set<std::string> expected = {"er",   "rmat",    "cl",  "grid",
                                          "road", "planted", "sbm", "web"};
  EXPECT_EQ(families, expected);
}

TEST_F(Differential, CorpusIsDeterministicGivenMasterSeed) {
  const auto again = build_corpus(master_seed());
  ASSERT_EQ(again.size(), corpus().size());
  for (std::size_t i = 0; i < again.size(); ++i) {
    EXPECT_EQ(again[i].seed, corpus()[i].seed);
    EXPECT_EQ(again[i].graph.num_edges(), corpus()[i].graph.num_edges())
        << again[i].name;
  }
}

TEST_F(Differential, ErdosRenyi) { run_family("er"); }
TEST_F(Differential, Rmat) { run_family("rmat"); }
TEST_F(Differential, ChungLu) { run_family("cl"); }
TEST_F(Differential, Grid) { run_family("grid"); }
TEST_F(Differential, Road) { run_family("road"); }
TEST_F(Differential, Planted) { run_family("planted"); }
TEST_F(Differential, Sbm) { run_family("sbm"); }
TEST_F(Differential, Webcrawl) { run_family("web"); }

TEST_F(Differential, HarnessCatchesPlantedSubMaximumSolver) {
  // Self-test: a deliberately broken "solver" that drops one matched
  // edge must trip the Koenig check and write a reproducer. This is the
  // same detection path a real lost-augmenting-path race would take.
  const Instance* planted = nullptr;
  for (const Instance& instance : corpus()) {
    if (instance.family == "planted") { planted = &instance; break; }
  }
  ASSERT_NE(planted, nullptr);

  std::vector<SolverSpec> roster = {
      {"broken-drops-one-edge", [](const BipartiteGraph& g) {
         Matching m = karp_sipser(g, 7);
         hopcroft_karp(g, m);
         for (vid_t x = 0; x < m.num_x(); ++x) {
           if (m.is_matched_x(x)) { m.unmatch_x(x); break; }
         }
         return m;
       }}};

  DiffOptions opts = options();
  opts.failure_dir = "diff_failures_selftest";
  const auto found = run_differential(*planted, roster, opts);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].solver, "broken-drops-one-edge");
  EXPECT_NE(found[0].detail.find("not maximum"), std::string::npos)
      << found[0].detail;

  // The reproducer must exist and be a loadable Matrix Market file
  // describing the same graph.
  ASSERT_FALSE(found[0].repro_dir.empty());
  const std::filesystem::path dir(found[0].repro_dir);
  ASSERT_TRUE(std::filesystem::exists(dir / "graph.mtx"));
  ASSERT_TRUE(std::filesystem::exists(dir / "repro.txt"));
  std::ifstream mtx(dir / "graph.mtx");
  const EdgeList reloaded = read_matrix_market(mtx);
  EXPECT_EQ(reloaded.nx, planted->graph.num_x());
  EXPECT_EQ(reloaded.ny, planted->graph.num_y());
  EXPECT_EQ(static_cast<std::int64_t>(reloaded.edges.size()),
            planted->graph.num_edges());
  std::filesystem::remove_all("diff_failures_selftest");
}

}  // namespace
}  // namespace graftmatch::diff
