#include "diff_harness.hpp"

#include <omp.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace graftmatch::diff {
namespace {

// ---------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------

// Each instance draws its generator seed from a splitmix64 stream of the
// master seed, so instance k is reproducible from (master_seed, k).
class SeedStream {
 public:
  explicit SeedStream(std::uint64_t master) : state_(master) {}
  std::uint64_t next() { return splitmix64_next(state_); }

 private:
  std::uint64_t state_;
};

std::string indexed_name(const std::string& family, int index) {
  std::ostringstream out;
  out << family << '-' << (index < 10 ? "0" : "") << index;
  return out.str();
}

}  // namespace

std::vector<Instance> build_corpus(std::uint64_t master_seed) {
  std::vector<Instance> corpus;
  SeedStream seeds(master_seed);
  auto add = [&](const std::string& family, BipartiteGraph graph,
                 std::uint64_t seed, std::int64_t known_maximum = -1) {
    Instance instance;
    instance.family = family;
    instance.name = indexed_name(
        family, static_cast<int>(std::count_if(
                    corpus.begin(), corpus.end(),
                    [&](const Instance& i) { return i.family == family; })));
    instance.seed = seed;
    instance.graph = std::move(graph);
    instance.known_maximum = known_maximum;
    corpus.push_back(std::move(instance));
  };

  // Erdos-Renyi: density sweep, including asymmetric parts (the paper's
  // matrices are rectangular) and a near-complete small block.
  struct ErShape { vid_t nx, ny; std::int64_t edges; };
  for (const ErShape& s : {ErShape{400, 400, 1200}, ErShape{600, 500, 3000},
                           ErShape{800, 800, 1600}, ErShape{300, 900, 2700},
                           ErShape{1000, 1000, 8000}, ErShape{64, 64, 2048}}) {
    const std::uint64_t seed = seeds.next();
    add("er", generate_erdos_renyi({s.nx, s.ny, s.edges, seed}), seed);
  }

  // RMAT: skewed degrees; the direction-optimized bottom-up path and
  // grafting collisions are exercised hardest here.
  for (const int scale : {7, 8, 9, 9}) {
    const std::uint64_t seed = seeds.next();
    RmatParams params;
    params.scale = scale;
    params.edge_factor = 8.0;
    params.seed = seed;
    add("rmat", generate_rmat(params), seed);
  }

  // Chung-Lu: power-law degree sweep from heavy to light tails.
  for (const double gamma : {1.8, 2.2, 2.5, 3.0}) {
    const std::uint64_t seed = seeds.next();
    ChungLuParams params;
    params.nx = 700;
    params.ny = 700;
    params.avg_degree = 6.0;
    params.gamma = gamma;
    params.max_degree = 128;
    params.seed = seed;
    add("cl", generate_chung_lu(params), seed);
  }

  // Grid stencils: near-perfect matchings, long augmenting paths. The
  // diagonal_drop variants pull the matching number below perfect.
  {
    const std::uint64_t s0 = seeds.next();
    add("grid", generate_grid({24, 24, 1, 0.0, s0}), s0,
        24 * 24);  // full diagonal -> perfect matching by construction
    const std::uint64_t s1 = seeds.next();
    add("grid", generate_grid({32, 32, 1, 0.1, s1}), s1);
    const std::uint64_t s2 = seeds.next();
    add("grid", generate_grid({8, 8, 8, 0.05, s2}), s2);
    const std::uint64_t s3 = seeds.next();
    add("grid", generate_grid({48, 16, 1, 0.3, s3}), s3);
  }

  // Road-like lattices: bounded degree, dead ends, long paths.
  struct RoadShape { vid_t w, h; double keep, dead; };
  for (const RoadShape& s :
       {RoadShape{32, 32, 0.85, 0.02}, RoadShape{40, 24, 0.7, 0.05},
        RoadShape{28, 28, 0.95, 0.0}, RoadShape{36, 36, 0.6, 0.1}}) {
    const std::uint64_t seed = seeds.next();
    add("road", generate_road({s.w, s.h, s.keep, s.dead, seed}), seed);
  }

  // Planted: the only family with an algorithm-independent exact optimum.
  struct PlantedShape { vid_t pairs, surplus, bottleneck; double noise; };
  for (const PlantedShape& s :
       {PlantedShape{512, 64, 16, 3.0}, PlantedShape{256, 128, 128, 1.0},
        PlantedShape{800, 40, 8, 6.0}, PlantedShape{128, 64, 0, 2.0},
        PlantedShape{600, 0, 32, 4.0}}) {
    const std::uint64_t seed = seeds.next();
    PlantedParams params;
    params.matched_pairs = s.pairs;
    params.surplus_rows = s.surplus;
    params.bottleneck = s.bottleneck;
    params.noise_degree = s.noise;
    params.seed = seed;
    PlantedGraph planted = generate_planted(params);
    add("planted", std::move(planted.graph), seed,
        planted.maximum_cardinality);
  }

  // SBM: community structure makes alternating trees collide.
  for (const double out_degree : {0.5, 1.0, 2.0}) {
    const std::uint64_t seed = seeds.next();
    SbmParams params;
    params.rows_per_block = 128;
    params.cols_per_block = 128;
    params.blocks = 5;
    params.in_degree = 5.0;
    params.out_degree = out_degree;
    params.seed = seed;
    add("sbm", generate_sbm(params), seed);
  }

  // Webcrawl: low matching number, many stubs -- the regime where
  // grafting pays off most and a dropped augmenting path is likeliest.
  for (const double stub_fraction : {0.3, 0.5, 0.7}) {
    const std::uint64_t seed = seeds.next();
    WebCrawlParams params;
    params.nx = 800;
    params.ny = 800;
    params.avg_degree = 5.0;
    params.gamma = 1.9;
    params.stub_fraction = stub_fraction;
    params.hub_count = 32;
    params.seed = seed;
    add("web", generate_webcrawl(params), seed);
  }

  return corpus;
}

// ---------------------------------------------------------------------
// Solver roster
// ---------------------------------------------------------------------

namespace {

std::vector<int> default_thread_counts() {
  std::vector<int> counts{1, 2, 4, omp_get_max_threads()};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

using InitFn = std::function<Matching(const BipartiteGraph&)>;

}  // namespace

std::vector<SolverSpec> solver_roster(std::vector<int> thread_counts) {
  if (thread_counts.empty()) thread_counts = default_thread_counts();
  const int max_threads = thread_counts.back();

  std::vector<SolverSpec> roster;

  const InitFn init_ks = [](const BipartiteGraph& g) {
    return karp_sipser(g, /*seed=*/7);
  };
  // Registry entries live in a function-local static vector, so the
  // pointer stays valid for the process lifetime; the run() member
  // resolves the ambient session like every one-shot call shape.
  const engine::SolverInfo* graft_solver = &engine::find_solver("graft");
  const auto graft_run = [graft_solver](const BipartiteGraph& g, Matching& m,
                                        const RunConfig& config) {
    return graft_solver->run(g, m, config);
  };

  // MS-BFS-Graft across the Fig. 7 ablation grid x thread counts.
  // (dir_opt=0, graft=0) is the plain MS-BFS baseline.
  for (const int threads : thread_counts) {
    for (const bool dir_opt : {false, true}) {
      for (const bool graft : {false, true}) {
        std::ostringstream name;
        name << "msbfs[do=" << dir_opt << ",graft=" << graft
             << ",t=" << threads << ",init=ks]";
        roster.push_back({name.str(), [=](const BipartiteGraph& g) {
                            Matching m = init_ks(g);
                            RunConfig config;
                            config.threads = threads;
                            config.direction_optimizing = dir_opt;
                            config.tree_grafting = graft;
                            config.check_invariants = true;
                            graft_run(g, m, config);
                            return m;
                          }});
      }
    }
  }

  // Initializer registry cross-product at max parallelism: the final
  // cardinality must not depend on the starting maximal matching. A
  // newly registered initializer is oracle-checked automatically. "ks"
  // is skipped here only because the ablation grid above already covers
  // graft-from-ks at every thread count.
  for (const auto& init : engine::initializer_registry()) {
    if (init.name == "ks") continue;
    const std::string init_name = init.name;
    roster.push_back({"graft[t=" + std::to_string(max_threads) +
                          ",init=" + init_name + "]",
                      [=](const BipartiteGraph& g) {
                        RunConfig config;
                        config.threads = max_threads;
                        config.seed = 7;
                        Matching m =
                            engine::make_initial_matching(init_name, g, config);
                        config.check_invariants = true;
                        graft_run(g, m, config);
                        return m;
                      }});
  }

  // Every registered solver from the same Karp-Sipser start: parallel
  // solvers serial and at max threads, serial solvers once. Iterating
  // the registry (instead of a hand-maintained list) means registering
  // a solver is all it takes to put it under the oracle.
  for (const auto& solver : engine::solver_registry()) {
    std::vector<int> counts;
    if (solver.parallel) {
      counts.push_back(1);
      if (max_threads != 1) counts.push_back(max_threads);
    } else {
      counts.push_back(0);
    }
    const engine::SolverInfo* info = &solver;
    const auto run = [info](const BipartiteGraph& g, Matching& m,
                            const RunConfig& config) {
      return info->run(g, m, config);
    };
    for (const int threads : counts) {
      const std::string name =
          solver.parallel
              ? solver.name + "[t=" + std::to_string(threads) + ",init=ks]"
              : solver.name + "[init=ks]";
      roster.push_back({name, [=](const BipartiteGraph& g) {
                          Matching m = init_ks(g);
                          RunConfig config;
                          config.threads = threads;
                          run(g, m, config);
                          return m;
                        }});
    }
  }

  // Every registered solver from the streaming single-pass start. The
  // streaming initializer feeds the dynamic-matching ingestion path, so
  // its composition with the full solver registry is oracle-gated here
  // (the registry cross-product above covers it with graft only).
  for (const auto& solver : engine::solver_registry()) {
    const engine::SolverInfo* info = &solver;
    const auto run = [info](const BipartiteGraph& g, Matching& m,
                            const RunConfig& config) {
      return info->run(g, m, config);
    };
    const int threads = solver.parallel ? max_threads : 0;
    const std::string name =
        solver.parallel
            ? solver.name + "[t=" + std::to_string(threads) +
                  ",init=streaming_ks]"
            : solver.name + "[init=streaming_ks]";
    roster.push_back({name, [=](const BipartiteGraph& g) {
                        RunConfig config;
                        config.threads = threads;
                        config.seed = 11;
                        Matching m = engine::make_initial_matching(
                            "streaming_ks", g, config);
                        run(g, m, config);
                        return m;
                      }});
  }

  // Every registered solver again, but through the DM-sharded driver:
  // classify, solve blocks independently, stitch. The oracle catches
  // any cardinality lost to misclassified components or a bad stitch --
  // on block-poor corpus instances this also exercises the payoff-gate
  // fallback path, which must be byte-for-byte a monolithic run.
  for (const auto& solver : engine::solver_registry()) {
    const std::string solver_name = solver.name;
    const int threads = solver.parallel ? max_threads : 0;
    roster.push_back({"shard-dm+" + solver_name + "[t=" +
                          std::to_string(threads) + ",init=ks]",
                      [=](const BipartiteGraph& g) {
                        RunConfig config;
                        config.threads = threads;
                        config.seed = 7;
                        config.shard = ShardMode::kDm;
                        config.check_invariants = true;
                        Matching m;
                        engine::run_sharded(solver_name, "ks", g, m, config);
                        return m;
                      }});
  }

  return roster;
}

// ---------------------------------------------------------------------
// Differential run + reproducer dump
// ---------------------------------------------------------------------

namespace {

/// Write graph.mtx + repro.txt for a failing (instance, solver) pair.
/// Returns the directory path, or "" when the dump failed.
std::string dump_reproducer(const Instance& instance,
                            const std::string& solver,
                            const std::string& detail,
                            const DiffOptions& options) {
  namespace fs = std::filesystem;
  std::string solver_slug = solver;
  for (char& c : solver_slug) {
    if (c == '[' || c == ']' || c == '=' || c == ',') c = '_';
  }
  const fs::path dir =
      fs::path(options.failure_dir) / (instance.name + "_" + solver_slug);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return "";

  std::ofstream mtx(dir / "graph.mtx");
  if (!mtx) return "";
  write_matrix_market(mtx, instance.graph.to_edges());

  std::ofstream repro(dir / "repro.txt");
  if (!repro) return "";
  repro << "instance      : " << instance.name << "\n"
        << "family        : " << instance.family << "\n"
        << "generator seed: " << instance.seed << "\n"
        << "corpus master : " << options.master_seed << "\n"
        << "known maximum : " << instance.known_maximum << "\n"
        << "solver        : " << solver << "\n"
        << "failure       : " << detail << "\n"
        << "graph         : graph.mtx (Matrix Market, alongside this file)\n"
        << "replay        : examples/matching_tool --input graph.mtx with\n"
        << "                the solver config above, or rerun\n"
        << "                ctest -L diff with GRAFTMATCH_SEED set to the\n"
        << "                corpus master seed.\n";
  return dir.string();
}

}  // namespace

std::vector<Discrepancy> run_differential(
    const Instance& instance, const std::vector<SolverSpec>& roster,
    const DiffOptions& options) {
  std::vector<Discrepancy> found;
  auto report = [&](const std::string& solver, const std::string& detail) {
    found.push_back({instance.name, solver, detail,
                     dump_reproducer(instance, solver, detail, options)});
  };

  std::int64_t reference = instance.known_maximum;
  std::string reference_solver =
      reference >= 0 ? "planted-optimum" : "";

  for (const SolverSpec& solver : roster) {
    Matching matching;
    try {
      matching = solver.run(instance.graph);
    } catch (const std::exception& e) {
      report(solver.name, std::string("threw: ") + e.what());
      continue;
    }

    // (a) structural validity, independent of any solver.
    const std::string validity = validate_matching(instance.graph, matching);
    if (!validity.empty()) {
      report(solver.name, "invalid matching: " + validity);
      continue;
    }

    // (b) Koenig maximality certificate.
    const VertexCover cover = koenig_cover(instance.graph, matching);
    const std::int64_t cardinality = matching.cardinality();
    if (!covers_all_edges(instance.graph, cover)) {
      report(solver.name, "Koenig construction is not a vertex cover");
      continue;
    }
    if (cover.size() != cardinality) {
      std::ostringstream detail;
      detail << "not maximum: |M| = " << cardinality
             << " but Koenig cover has size " << cover.size();
      report(solver.name, detail.str());
      continue;
    }

    // (c) pairwise cardinality agreement (via a common reference).
    if (reference < 0) {
      reference = cardinality;
      reference_solver = solver.name;
    } else if (cardinality != reference) {
      std::ostringstream detail;
      detail << "cardinality " << cardinality << " != " << reference
             << " from " << reference_solver;
      report(solver.name, detail.str());
    }
  }
  return found;
}

std::vector<Discrepancy> run_differential(const Instance& instance,
                                          const DiffOptions& options) {
  return run_differential(instance, solver_roster(options.thread_counts),
                          options);
}

std::string format_discrepancies(const std::vector<Discrepancy>& found) {
  std::ostringstream out;
  for (const Discrepancy& d : found) {
    out << d.instance << " / " << d.solver << ": " << d.detail;
    if (!d.repro_dir.empty()) out << " [repro: " << d.repro_dir << "]";
    out << "\n";
  }
  return out.str();
}

}  // namespace graftmatch::diff
