// Unit tests for the graph substrate: edge lists, CSR construction,
// transforms, matching container, and graph statistics.
#include <gtest/gtest.h>

#include <stdexcept>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/edge_list.hpp"
#include "graftmatch/graph/graph_stats.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/graph/transforms.hpp"

namespace graftmatch {
namespace {

EdgeList diamond() {
  // 2x3 matrix: x0 ~ {y0, y1}, x1 ~ {y1, y2}.
  EdgeList list;
  list.nx = 2;
  list.ny = 3;
  list.edges = {{0, 0}, {0, 1}, {1, 1}, {1, 2}};
  return list;
}

TEST(EdgeList, CanonicalizeSortsAndDedups) {
  EdgeList list;
  list.nx = 2;
  list.ny = 2;
  list.edges = {{1, 1}, {0, 0}, {1, 1}, {0, 1}};
  list.canonicalize();
  ASSERT_EQ(list.edges.size(), 3u);
  EXPECT_EQ(list.edges[0], (Edge{0, 0}));
  EXPECT_EQ(list.edges[1], (Edge{0, 1}));
  EXPECT_EQ(list.edges[2], (Edge{1, 1}));
}

TEST(EdgeList, InBounds) {
  EdgeList list = diamond();
  EXPECT_TRUE(list.in_bounds());
  list.edges.push_back({5, 0});
  EXPECT_FALSE(list.in_bounds());
}

TEST(BipartiteGraph, BuildsBothDirections) {
  const BipartiteGraph g = BipartiteGraph::from_edges(diamond());
  EXPECT_EQ(g.num_x(), 2);
  EXPECT_EQ(g.num_y(), 3);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.num_directed_edges(), 8);
  EXPECT_EQ(g.degree_x(0), 2);
  EXPECT_EQ(g.degree_y(1), 2);
  // X adjacency sorted.
  const auto adj0 = g.neighbors_of_x(0);
  ASSERT_EQ(adj0.size(), 2u);
  EXPECT_EQ(adj0[0], 0);
  EXPECT_EQ(adj0[1], 1);
  // Y adjacency mirrors.
  const auto back1 = g.neighbors_of_y(1);
  ASSERT_EQ(back1.size(), 2u);
  EXPECT_EQ(back1[0], 0);
  EXPECT_EQ(back1[1], 1);
}

TEST(BipartiteGraph, MergesDuplicates) {
  EdgeList list = diamond();
  list.edges.push_back({0, 0});
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(BipartiteGraph, RejectsOutOfRange) {
  EdgeList list = diamond();
  list.edges.push_back({0, 99});
  EXPECT_THROW(BipartiteGraph::from_edges(list), std::invalid_argument);
}

TEST(BipartiteGraph, HasEdge) {
  const BipartiteGraph g = BipartiteGraph::from_edges(diamond());
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(-1, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(BipartiteGraph, EmptyGraph) {
  EdgeList list;
  list.nx = 3;
  list.ny = 2;
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree_x(0), 0);
  EXPECT_TRUE(g.neighbors_of_x(2).empty());
}

TEST(BipartiteGraph, ToEdgesRoundTrips) {
  const BipartiteGraph g = BipartiteGraph::from_edges(diamond());
  EdgeList out = g.to_edges();
  EdgeList in = diamond();
  in.canonicalize();
  EXPECT_EQ(out.nx, in.nx);
  EXPECT_EQ(out.ny, in.ny);
  EXPECT_EQ(out.edges, in.edges);
}

TEST(BipartiteGraph, MemoryBytesPositive) {
  const BipartiteGraph g = BipartiteGraph::from_edges(diamond());
  EXPECT_GT(g.memory_bytes(), 0);
}

TEST(Transforms, TransposeSwapsSides) {
  const BipartiteGraph g = BipartiteGraph::from_edges(diamond());
  const BipartiteGraph t = transpose(g);
  EXPECT_EQ(t.num_x(), 3);
  EXPECT_EQ(t.num_y(), 2);
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_TRUE(t.has_edge(2, 1));
  EXPECT_FALSE(t.has_edge(2, 0));
}

TEST(Transforms, PermuteRelabels) {
  const BipartiteGraph g = BipartiteGraph::from_edges(diamond());
  const std::vector<vid_t> perm_x{1, 0};
  const std::vector<vid_t> perm_y{2, 0, 1};
  const BipartiteGraph p = permute(g, perm_x, perm_y);
  // Edge (0,0) -> (1,2); edge (1,2) -> (0,1).
  EXPECT_TRUE(p.has_edge(1, 2));
  EXPECT_TRUE(p.has_edge(0, 1));
  EXPECT_EQ(p.num_edges(), g.num_edges());
}

TEST(Transforms, PermuteValidatesInput) {
  const BipartiteGraph g = BipartiteGraph::from_edges(diamond());
  EXPECT_THROW(permute(g, {0}, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(permute(g, {0, 0}, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(permute(g, {0, 1}, {0, 1, 5}), std::invalid_argument);
}

TEST(Transforms, ShuffleIsDeterministicPerSeed) {
  const BipartiteGraph g = BipartiteGraph::from_edges(diamond());
  const BipartiteGraph a = shuffle_labels(g, 9);
  const BipartiteGraph b = shuffle_labels(g, 9);
  EXPECT_EQ(a.to_edges().edges, b.to_edges().edges);
  EXPECT_EQ(a.num_edges(), g.num_edges());
}

TEST(Transforms, RandomPermutationIsPermutation) {
  Xoshiro256 rng(4);
  const auto perm = random_permutation(100, rng);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(Transforms, IsPermutationRejects) {
  EXPECT_TRUE(is_permutation({2, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 3, 1}));
  EXPECT_FALSE(is_permutation({0, -1, 1}));
}

TEST(Matching, BasicOperations) {
  Matching m(3, 3);
  EXPECT_EQ(m.cardinality(), 0);
  EXPECT_FALSE(m.is_matched_x(0));
  m.match(0, 2);
  EXPECT_TRUE(m.is_matched_x(0));
  EXPECT_TRUE(m.is_matched_y(2));
  EXPECT_EQ(m.mate_of_x(0), 2);
  EXPECT_EQ(m.mate_of_y(2), 0);
  EXPECT_EQ(m.cardinality(), 1);
  m.unmatch_x(0);
  EXPECT_EQ(m.cardinality(), 0);
  EXPECT_FALSE(m.is_matched_y(2));
  m.unmatch_x(0);  // no-op on unmatched
  EXPECT_EQ(m.cardinality(), 0);
}

TEST(Matching, FractionOfVertices) {
  Matching m(2, 2);
  EXPECT_EQ(m.fraction_of_vertices(), 0.0);
  m.match(0, 0);
  m.match(1, 1);
  EXPECT_DOUBLE_EQ(m.fraction_of_vertices(), 1.0);
}

TEST(Matching, Equality) {
  Matching a(2, 2);
  Matching b(2, 2);
  EXPECT_EQ(a, b);
  a.match(0, 1);
  EXPECT_NE(a, b);
  b.match(0, 1);
  EXPECT_EQ(a, b);
}

TEST(GraphStats, ComputesDegreesAndIsolation) {
  EdgeList list;
  list.nx = 3;
  list.ny = 3;
  list.edges = {{0, 0}, {0, 1}, {0, 2}, {1, 0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const GraphStats stats = compute_graph_stats(g);
  EXPECT_EQ(stats.nx, 3);
  EXPECT_EQ(stats.edges, 4);
  EXPECT_EQ(stats.max_degree_x, 3);
  EXPECT_EQ(stats.max_degree_y, 2);
  EXPECT_EQ(stats.isolated_x, 1);  // x2
  EXPECT_EQ(stats.isolated_y, 0);
  EXPECT_NEAR(stats.avg_degree_x, 4.0 / 3.0, 1e-12);
  EXPECT_FALSE(format_graph_stats(stats).empty());
}

}  // namespace
}  // namespace graftmatch
