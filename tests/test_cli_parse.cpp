// Tests for the strict CLI number parsing (runtime/cli.hpp): exact
// acceptance/rejection cases plus a randomized differential check of
// try_parse_int against a strtoll-based strict reference.
#include <gtest/gtest.h>

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>

#include "graftmatch/runtime/cli.hpp"

namespace graftmatch::cli {
namespace {

TEST(TryParseInt, AcceptsPlainDecimals) {
  EXPECT_EQ(try_parse_int("0"), 0);
  EXPECT_EQ(try_parse_int("42"), 42);
  EXPECT_EQ(try_parse_int("-17"), -17);
  EXPECT_EQ(try_parse_int("9223372036854775807"), INT64_MAX);
  EXPECT_EQ(try_parse_int("-9223372036854775808"), INT64_MIN);
}

TEST(TryParseInt, RejectsGarbage) {
  EXPECT_EQ(try_parse_int(""), std::nullopt);
  EXPECT_EQ(try_parse_int("banana"), std::nullopt);
  EXPECT_EQ(try_parse_int("12x"), std::nullopt);     // atoi: 12
  EXPECT_EQ(try_parse_int("x12"), std::nullopt);
  EXPECT_EQ(try_parse_int(" 12"), std::nullopt);     // atoi: 12
  EXPECT_EQ(try_parse_int("12 "), std::nullopt);
  EXPECT_EQ(try_parse_int("+12"), std::nullopt);
  EXPECT_EQ(try_parse_int("1.5"), std::nullopt);
  EXPECT_EQ(try_parse_int("0x10"), std::nullopt);
  EXPECT_EQ(try_parse_int("--1"), std::nullopt);
  EXPECT_EQ(try_parse_int("-"), std::nullopt);
  EXPECT_EQ(try_parse_int("9223372036854775808"), std::nullopt);  // overflow
  EXPECT_EQ(try_parse_int("-9223372036854775809"), std::nullopt);
}

TEST(TryParseInt, EnforcesRange) {
  EXPECT_EQ(try_parse_int("5", 0, 10), 5);
  EXPECT_EQ(try_parse_int("0", 0, 10), 0);
  EXPECT_EQ(try_parse_int("10", 0, 10), 10);
  EXPECT_EQ(try_parse_int("11", 0, 10), std::nullopt);
  EXPECT_EQ(try_parse_int("-1", 0, 10), std::nullopt);
}

TEST(TryParseUint, RejectsNegativeAndWraps) {
  EXPECT_EQ(try_parse_uint("0"), 0u);
  EXPECT_EQ(try_parse_uint("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(try_parse_uint("18446744073709551616"), std::nullopt);
  // strtoull would wrap "-1" to UINT64_MAX; the strict parser refuses.
  EXPECT_EQ(try_parse_uint("-1"), std::nullopt);
  EXPECT_EQ(try_parse_uint("+1"), std::nullopt);
  EXPECT_EQ(try_parse_uint("1e3"), std::nullopt);
}

TEST(TryParseDouble, AcceptsFiniteNumbers) {
  EXPECT_EQ(try_parse_double("1.5", 0.0, 10.0), 1.5);
  EXPECT_EQ(try_parse_double("2", 0.0, 10.0), 2.0);
  EXPECT_EQ(try_parse_double("1e1", 0.0, 10.0), 10.0);
  EXPECT_EQ(try_parse_double("0.004", 0.0, 10.0), 0.004);
  EXPECT_EQ(try_parse_double("-0.5", -1.0, 1.0), -0.5);
}

TEST(TryParseDouble, RejectsNonFiniteAndJunk) {
  // from_chars accepts these spellings; the finite-range check must not.
  EXPECT_EQ(try_parse_double("inf", 0.0, 1e300), std::nullopt);
  EXPECT_EQ(try_parse_double("-inf", -1e300, 1e300), std::nullopt);
  EXPECT_EQ(try_parse_double("nan", 0.0, 1e300), std::nullopt);
  EXPECT_EQ(try_parse_double("1e999", 0.0, 1e308), std::nullopt);
  EXPECT_EQ(try_parse_double("", 0.0, 1.0), std::nullopt);
  EXPECT_EQ(try_parse_double("1e", 0.0, 1e9), std::nullopt);  // atof: 1
  EXPECT_EQ(try_parse_double("1.5GB", 0.0, 1e9), std::nullopt);
  EXPECT_EQ(try_parse_double("0.5", 1.0, 2.0), std::nullopt);  // range
}

// Regression pins for the churn knobs (matching_tool --churn/--batch,
// bench --batch/--batches/--window): the exact ranges those call sites
// pass must keep accepting their boundaries and rejecting off-by-one
// and garbage values, at the parser level where all of them converge.
TEST(ChurnFlagRanges, BatchAndBatchCounts) {
  // matching_tool --churn N and bench --batches N: [1, bound]
  EXPECT_EQ(try_parse_int("1", 1, 1 << 20), 1);
  EXPECT_EQ(try_parse_int("1048576", 1, 1 << 20), 1 << 20);
  EXPECT_EQ(try_parse_int("0", 1, 1 << 20), std::nullopt);
  EXPECT_EQ(try_parse_int("-3", 1, 1 << 20), std::nullopt);
  EXPECT_EQ(try_parse_int("1048577", 1, 1 << 20), std::nullopt);
  // --batch B: [1, 1 << 24]
  EXPECT_EQ(try_parse_int("16777216", 1, 1 << 24), 1 << 24);
  EXPECT_EQ(try_parse_int("16777217", 1, 1 << 24), std::nullopt);
  EXPECT_EQ(try_parse_int("64x", 1, 1 << 24), std::nullopt);
  EXPECT_EQ(try_parse_int("6 4", 1, 1 << 24), std::nullopt);
}

TEST(ChurnFlagRanges, WindowFraction) {
  // bench --window F: a fraction of the edge list, (0, 1].
  EXPECT_EQ(try_parse_double("1", 1e-9, 1.0), 1.0);
  EXPECT_EQ(try_parse_double("0.1", 1e-9, 1.0), 0.1);
  EXPECT_EQ(try_parse_double("1e-9", 1e-9, 1.0), 1e-9);
  EXPECT_EQ(try_parse_double("0", 1e-9, 1.0), std::nullopt);
  EXPECT_EQ(try_parse_double("1.0001", 1e-9, 1.0), std::nullopt);
  EXPECT_EQ(try_parse_double("-0.1", 1e-9, 1.0), std::nullopt);
  EXPECT_EQ(try_parse_double("10%", 1e-9, 1.0), std::nullopt);
  EXPECT_EQ(try_parse_double("nan", 1e-9, 1.0), std::nullopt);
}

/// Strict reference parser built on strtoll: full consumption, no
/// leading whitespace or '+', errno-based range detection.
std::optional<std::int64_t> reference_parse(const std::string& text) {
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0])) ||
      text[0] == '+') {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      end == text.c_str()) {
    return std::nullopt;
  }
  return value;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Differential fuzz: random token soup from a digit-heavy alphabet must
// parse identically under try_parse_int and the strtoll reference.
TEST(TryParseInt, FuzzAgainstStrtollReference) {
  const char alphabet[] = "0123456789-+. xeE";
  std::uint64_t rng = 0xfeedfacecafebeefULL;
  int accepted = 0;
  for (int iter = 0; iter < 10000; ++iter) {
    const int length = static_cast<int>(splitmix64(rng) % 20);
    std::string token;
    for (int i = 0; i < length; ++i) {
      token += alphabet[splitmix64(rng) % (sizeof alphabet - 1)];
    }
    const auto strict = try_parse_int(token);
    const auto reference = reference_parse(token);
    ASSERT_EQ(strict.has_value(), reference.has_value())
        << "token '" << token << "'";
    if (strict) {
      ASSERT_EQ(*strict, *reference) << "token '" << token << "'";
      ++accepted;
    }
  }
  // The alphabet is digit-heavy on purpose: a meaningful fraction of
  // tokens must exercise the accept path, not just rejections.
  EXPECT_GT(accepted, 100);
}

}  // namespace
}  // namespace graftmatch::cli
