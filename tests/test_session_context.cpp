// Tests for the session-context layer (runtime/context.hpp): ambient
// binding semantics, the warm workspace pool, nesting-safe thread-count
// guards, and -- the point of the whole refactor -- that two sessions
// solving concurrently in one process keep fully isolated stats,
// traces, and team-width probes while both still reach the serial
// oracle's cardinality.
//
// Carries the `obs` label alongside tier1: CI replays these tests under
// TSan in a GRAFTMATCH_TRACE=ON build, where any cross-session sharing
// of trace rings or probe atomics shows up as a data race.
#include <gtest/gtest.h>

#include <omp.h>

#include <string>
#include <thread>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/gen/planted.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "json_check.hpp"

namespace graftmatch {
namespace {

BipartiteGraph test_graph(std::uint64_t seed, std::int64_t pairs = 600) {
  PlantedParams params;
  params.matched_pairs = pairs;
  params.surplus_rows = 48;
  params.bottleneck = 12;
  params.noise_degree = 3.0;
  params.seed = seed;
  return generate_planted(params).graph;
}

TEST(SessionContext, AmbientFallsBackToDefault) {
  EXPECT_FALSE(has_ambient_session());
  EXPECT_EQ(&ambient_session(), &default_session());
}

TEST(SessionContext, ScopeBindsAndNestsLifo) {
  SessionContext outer;
  SessionContext inner;
  {
    const SessionScope bind_outer(outer);
    EXPECT_TRUE(has_ambient_session());
    EXPECT_EQ(&ambient_session(), &outer);
    {
      const SessionScope bind_inner(inner);
      EXPECT_EQ(&ambient_session(), &inner);
    }
    EXPECT_EQ(&ambient_session(), &outer);
  }
  EXPECT_FALSE(has_ambient_session());
  EXPECT_EQ(&ambient_session(), &default_session());
}

TEST(SessionContext, BindingIsPerThread) {
  SessionContext session;
  const SessionScope bind(session);
  bool other_thread_bound = true;
  SessionContext* other_thread_ambient = nullptr;
  std::thread probe([&] {
    other_thread_bound = has_ambient_session();
    other_thread_ambient = &ambient_session();
  });
  probe.join();
  EXPECT_FALSE(other_thread_bound);
  EXPECT_EQ(other_thread_ambient, &default_session());
}

TEST(SessionContext, IdsAreUnique) {
  SessionContext a;
  SessionContext b;
  EXPECT_NE(a.id(), b.id());
  EXPECT_NE(a.id(), default_session().id());
}

TEST(SessionContext, ParallelRegionPropagatesBinding) {
  SessionContext session;
  const SessionScope bind(session);
  const int width = omp_get_max_threads() > 1 ? 2 : 1;
  std::vector<const SessionContext*> seen(static_cast<std::size_t>(width),
                                          nullptr);
  parallel_region(width, [&] {
    seen[static_cast<std::size_t>(omp_get_thread_num())] = &ambient_session();
  });
  for (const SessionContext* bound : seen) {
    EXPECT_EQ(bound, &session);
  }
  // The probe pair landed on THIS session, not the default one.
  EXPECT_EQ(session.team_width().load(), width);
  EXPECT_GE(session.region_epoch().load(), 1u);
}

TEST(WorkspacePool, ReusesWarmWorkspaces) {
  WorkspacePool pool;
  GraftWorkspace* first = pool.acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(pool.outstanding(), 1u);
  EXPECT_EQ(pool.created(), 1u);
  pool.release(first);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.idle(), 1u);

  // LIFO: the next acquire hands back the workspace just released.
  GraftWorkspace* second = pool.acquire();
  EXPECT_EQ(second, first);
  EXPECT_EQ(pool.created(), 1u) << "no new allocation for a warm acquire";
  pool.release(second);

  pool.trim();
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(WorkspacePool, MaxIdleBoundsRetention) {
  WorkspacePool pool;
  pool.set_max_idle(1);
  GraftWorkspace* a = pool.acquire();
  GraftWorkspace* b = pool.acquire();
  EXPECT_EQ(pool.created(), 2u);
  pool.release(a);
  pool.release(b);  // beyond max_idle: destroyed, not parked
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(WorkspacePool, LeaseReleasesOnScopeExit) {
  WorkspacePool pool;
  {
    WorkspaceLease lease(pool);
    EXPECT_TRUE(static_cast<bool>(lease));
    EXPECT_EQ(pool.outstanding(), 1u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.idle(), 1u);

  WorkspaceLease lease(pool);
  lease.release();  // explicit early hand-back
  EXPECT_FALSE(static_cast<bool>(lease));
  EXPECT_EQ(pool.outstanding(), 0u);
}

// The 3-arg ms_bfs_graft overload used to park a GraftWorkspace in a
// thread_local that lived until thread exit; now it must lease from the
// session pool and hand back on return.
TEST(WorkspacePool, SolverOverloadLeasesAndReturns) {
  SessionContext session;
  const BipartiteGraph g = test_graph(21);
  const std::int64_t expected = maximum_matching_cardinality(g);

  for (int run = 0; run < 3; ++run) {
    Matching matching(g.num_x(), g.num_y());
    RunConfig config;
    config.threads = 1;
    const RunStats stats = ms_bfs_graft(session, g, matching, config);
    EXPECT_EQ(stats.final_cardinality, expected);
    EXPECT_EQ(session.workspaces().outstanding(), 0u)
        << "run " << run << " leaked its workspace lease";
    EXPECT_GE(session.workspaces().idle(), 1u);
  }
  // Warm reuse: three same-shape runs need exactly one allocation.
  EXPECT_EQ(session.workspaces().created(), 1u);
}

TEST(ThreadCountGuard, RestoresOnExit) {
  const int before = omp_get_max_threads();
  {
    const ThreadCountGuard guard(1);
    EXPECT_EQ(omp_get_max_threads(), 1);
  }
  EXPECT_EQ(omp_get_max_threads(), before);
}

TEST(ThreadCountGuard, NestsLifo) {
  const int before = omp_get_max_threads();
  {
    const ThreadCountGuard outer(1);
    {
      const ThreadCountGuard inner(1);
      EXPECT_EQ(omp_get_max_threads(), 1);
    }
    EXPECT_EQ(omp_get_max_threads(), 1) << "inner restored outer's value";
  }
  EXPECT_EQ(omp_get_max_threads(), before);
}

TEST(SessionContext, YieldPeriodOverrideSlot) {
  SessionContext session;
  EXPECT_EQ(session.yield_period_override(),
            SessionContext::kInheritYieldPeriod);
  session.set_yield_period(0);
  EXPECT_EQ(session.yield_period_override(), 0u);
  session.set_yield_period(7);
  EXPECT_EQ(session.yield_period_override(), 7u);
  session.clear_yield_period();
  EXPECT_EQ(session.yield_period_override(),
            SessionContext::kInheritYieldPeriod);
}

// The headline guarantee: two sessions solving concurrently in one
// process behave exactly like two processes -- correct cardinalities,
// independent traces, independent probe state, valid per-run JSON.
TEST(SessionContext, ConcurrentSessionsStayIsolated) {
  const BipartiteGraph graph_a = test_graph(31, 700);
  const BipartiteGraph graph_b = test_graph(32, 500);
  const std::int64_t expected_a = maximum_matching_cardinality(graph_a);
  const std::int64_t expected_b = maximum_matching_cardinality(graph_b);
  ASSERT_NE(expected_a, expected_b)
      << "distinct oracles, or cross-talk could hide";

  constexpr int kRunsPerSession = 4;
  struct SessionResult {
    std::vector<std::int64_t> cardinalities;
    std::vector<std::string> json;
    std::uint64_t epoch = 0;
    bool trace_collected = false;
    std::size_t trace_events = 0;
  };
  SessionResult result_a, result_b;

  const auto drive = [](SessionContext& session, const BipartiteGraph& graph,
                        SessionResult& result) {
    const SessionScope bind(session);
    session.trace().arm();
    for (int run = 0; run < kRunsPerSession; ++run) {
      Matching matching(graph.num_x(), graph.num_y());
      RunConfig config;
      config.threads = 1;
      config.check_invariants = true;
      const RunStats stats =
          engine::run(session, "graft", "ks", graph, matching, config);
      result.cardinalities.push_back(stats.final_cardinality);
      result.json.push_back(run_stats_json(stats));
    }
    result.epoch = session.region_epoch().load();
    result.trace_collected = session.trace().last_run().collected;
    result.trace_events = session.trace().last_run().events.size();
  };

  SessionContext session_a;
  SessionContext session_b;
  std::thread thread_a(drive, std::ref(session_a), std::cref(graph_a),
                       std::ref(result_a));
  std::thread thread_b(drive, std::ref(session_b), std::cref(graph_b),
                       std::ref(result_b));
  thread_a.join();
  thread_b.join();

  for (const std::int64_t cardinality : result_a.cardinalities) {
    EXPECT_EQ(cardinality, expected_a);
  }
  for (const std::int64_t cardinality : result_b.cardinalities) {
    EXPECT_EQ(cardinality, expected_b);
  }
  for (const std::string& json : result_a.json) {
    std::string error;
    EXPECT_TRUE(testing::JsonChecker(json).valid(&error)) << error;
  }
  for (const std::string& json : result_b.json) {
    std::string error;
    EXPECT_TRUE(testing::JsonChecker(json).valid(&error)) << error;
  }
  // Each session counted only its own parallel regions.
  EXPECT_GE(result_a.epoch, static_cast<std::uint64_t>(kRunsPerSession));
  EXPECT_GE(result_b.epoch, static_cast<std::uint64_t>(kRunsPerSession));
  if (obs::compiled()) {
    EXPECT_TRUE(result_a.trace_collected);
    EXPECT_TRUE(result_b.trace_collected);
    EXPECT_GT(result_a.trace_events, 0u);
    EXPECT_GT(result_b.trace_events, 0u);
  }
  // Nothing leaked into the process default session's sink.
  EXPECT_FALSE(default_session().trace().last_run().collected);
}

// An armed session next to an unarmed one: only the armed sink
// collects, and disarming is honored on the next run.
TEST(SessionContext, TraceArmingIsPerSession) {
  if (!obs::compiled()) GTEST_SKIP() << "GRAFTMATCH_TRACE is off";
  const BipartiteGraph graph = test_graph(33);
  RunConfig config;
  config.threads = 1;

  SessionContext armed;
  SessionContext unarmed;
  armed.trace().arm();

  Matching matching(graph.num_x(), graph.num_y());
  {
    const SessionScope bind(armed);
    engine::run(armed, "graft", "ks", graph, matching, config);
  }
  {
    const SessionScope bind(unarmed);
    matching = Matching(graph.num_x(), graph.num_y());
    engine::run(unarmed, "graft", "ks", graph, matching, config);
  }
  EXPECT_TRUE(armed.trace().last_run().collected);
  EXPECT_FALSE(unarmed.trace().last_run().collected);

  armed.trace().disarm();
  matching = Matching(graph.num_x(), graph.num_y());
  {
    const SessionScope bind(armed);
    engine::run(armed, "graft", "ks", graph, matching, config);
  }
  // last_run keeps the armed run's flush; the disarmed run added none.
  EXPECT_TRUE(armed.trace().last_run().collected);
}

}  // namespace
}  // namespace graftmatch
