// Direction-policy and word-kernel battery.
//
// Covers the pluggable traversal backend end to end: the fixed rule's
// degenerate-input clamps (prefer_bottom_up), the adaptive selector's
// scout/awake threshold and hysteresis band, the forced td/bu floors,
// word-granular claims on AtomicBitmap (fuzzed against a serial bit
// model, word-boundary and tail-word cases included), and the headline
// invariance property: every DirectionPolicy x BottomUpKernel
// combination must land on the SAME maximum cardinality -- on
// exhaustive tiny graphs (against an independent Kuhn reference), on
// word-boundary widths, and on the benchmark suite across seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "graftmatch/engine/direction.hpp"
#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/epoch_array.hpp"
#include "graftmatch/runtime/prng.hpp"
#include "json_check.hpp"

namespace graftmatch {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------
// prefer_bottom_up: the fixed rule and its degenerate-input clamps.

TEST(PreferBottomUp, NormalRegimeMatchesPaperRule) {
  // |F| >= unvisited / alpha with alpha = 5: threshold at 40.
  EXPECT_TRUE(engine::prefer_bottom_up(40, 200, 5.0));
  EXPECT_TRUE(engine::prefer_bottom_up(100, 200, 5.0));
  EXPECT_FALSE(engine::prefer_bottom_up(39, 200, 5.0));
  EXPECT_FALSE(engine::prefer_bottom_up(1, 200, 5.0));
}

TEST(PreferBottomUp, ExhaustedSideNeverPrefersBottomUp) {
  // unvisited == 0 used to satisfy `frontier >= 0/alpha` vacuously and
  // steer into a bottom-up scan over an empty target side.
  EXPECT_FALSE(engine::prefer_bottom_up(100, 0, 5.0));
  EXPECT_FALSE(engine::prefer_bottom_up(100, -1, 5.0));
  EXPECT_FALSE(engine::prefer_bottom_up(0, 200, 5.0));
  EXPECT_FALSE(engine::prefer_bottom_up(-3, 200, 5.0));
  EXPECT_FALSE(engine::prefer_bottom_up(0, 0, 5.0));
}

TEST(PreferBottomUp, NonFiniteOrNonPositiveAlphaIsTopDown) {
  // alpha = +inf used to make unvisited/alpha == 0 and force bottom-up
  // on every level; NaN made the comparison false-but-unordered.
  EXPECT_FALSE(engine::prefer_bottom_up(100, 200, kInf));
  EXPECT_FALSE(engine::prefer_bottom_up(100, 200, -kInf));
  EXPECT_FALSE(engine::prefer_bottom_up(100, 200, kNaN));
  EXPECT_FALSE(engine::prefer_bottom_up(100, 200, 0.0));
  EXPECT_FALSE(engine::prefer_bottom_up(100, 200, -5.0));
}

TEST(MsBfsGraft, RejectsNonFiniteAlpha) {
  EdgeList list;
  list.nx = list.ny = 2;
  list.edges = {{0, 0}, {1, 1}};
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  for (const double alpha : {kInf, kNaN, 0.0, -1.0}) {
    RunConfig config;
    config.alpha = alpha;
    Matching m(2, 2);
    EXPECT_THROW(ms_bfs_graft(g, m, config), std::invalid_argument)
        << "alpha=" << alpha;
  }
}

// ---------------------------------------------------------------------
// scout_edge_sum: exact frontier edge mass, serial and parallel paths.

TEST(ScoutEdgeSum, MatchesSerialDegreeSum) {
  ChungLuParams params;
  params.nx = params.ny = 6000;
  params.avg_degree = 5.0;
  params.seed = 17;
  const BipartiteGraph g = generate_chung_lu(params);
  const engine::Adjacency adj = engine::x_adjacency(g);

  // A frontier large enough to take the parallel path (>= 4096 items).
  std::vector<vid_t> frontier;
  for (vid_t x = 0; x < static_cast<vid_t>(g.num_x()); x += 1) {
    if (x % 4 != 0) frontier.push_back(x);
  }
  ASSERT_GE(frontier.size(), 4096u);

  std::int64_t expected = 0;
  for (const vid_t x : frontier) expected += adj.degree(x);
  EXPECT_EQ(engine::scout_edge_sum(adj, frontier), expected);

  // Small frontier: serial path, same contract.
  const std::vector<vid_t> small(frontier.begin(), frontier.begin() + 5);
  std::int64_t small_expected = 0;
  for (const vid_t x : small) small_expected += adj.degree(x);
  EXPECT_EQ(engine::scout_edge_sum(adj, small), small_expected);
  EXPECT_EQ(engine::scout_edge_sum(adj, std::span<const vid_t>{}), 0);
}

// ---------------------------------------------------------------------
// DirectionSelector: forced floors, fixed passthrough, hysteresis.

TEST(DirectionSelector, OnlyAdaptiveWantsScout) {
  for (const DirectionPolicy policy :
       {DirectionPolicy::kFixed, DirectionPolicy::kTopDown,
        DirectionPolicy::kBottomUp}) {
    engine::DirectionSelector selector(policy, 5.0, 1000, 100);
    EXPECT_FALSE(selector.wants_scout()) << to_string(policy);
  }
  engine::DirectionSelector adaptive(DirectionPolicy::kAdaptive, 5.0, 1000,
                                     100);
  EXPECT_TRUE(adaptive.wants_scout());
}

TEST(DirectionSelector, ForcedTopDownNeverSwitches) {
  engine::DirectionSelector selector(DirectionPolicy::kTopDown, 5.0, 1000,
                                     100);
  EXPECT_FALSE(selector.choose_bottom_up(1000, 0, 1, false));
  EXPECT_FALSE(selector.choose_bottom_up(1000, 0, 1000, false));
  EXPECT_EQ(selector.counters().bottom_up_levels, 0);
  EXPECT_EQ(selector.counters().switches, 0);
  EXPECT_EQ(selector.counters().decisions, 2);
}

TEST(DirectionSelector, ForcedBottomUpIgnoresBanButNotEmptiness) {
  engine::DirectionSelector selector(DirectionPolicy::kBottomUp, 5.0, 1000,
                                     100);
  // The ban exists so low-yield scans stop repeating; a forced run must
  // override it or the A/B floor silently degenerates to fixed.
  EXPECT_TRUE(selector.choose_bottom_up(1, 0, 1000, /*banned=*/true));
  // But an empty frontier or exhausted Y side has nothing to scan for.
  EXPECT_FALSE(selector.choose_bottom_up(0, 0, 1000, false));
  EXPECT_FALSE(selector.choose_bottom_up(10, 0, 0, false));
}

TEST(DirectionSelector, FixedHonorsBanAndMatchesPreferBottomUp) {
  engine::DirectionSelector selector(DirectionPolicy::kFixed, 5.0, 1000, 100);
  EXPECT_EQ(selector.choose_bottom_up(100, 0, 200, false),
            engine::prefer_bottom_up(100, 200, 5.0));
  EXPECT_FALSE(selector.choose_bottom_up(100, 0, 200, /*banned=*/true));
  EXPECT_EQ(selector.choose_bottom_up(10, 0, 200, false),
            engine::prefer_bottom_up(10, 200, 5.0));
}

TEST(DirectionSelector, AdaptiveHysteresisBand) {
  // total_edges = 1000 over ny = 100 -> avg degree 10; with
  // unvisited_y = 100 the awake mass is 1000. alpha = 2:
  //   switch in  (TD->BU): scout * 2 > 1000        -> scout > 500
  //   switch out (BU->TD): scout * 2 * 4 < 1000    -> scout < 125
  engine::DirectionSelector selector(DirectionPolicy::kAdaptive, 2.0, 1000,
                                     100);
  // Below the entry threshold: stays top-down.
  EXPECT_FALSE(selector.choose_bottom_up(10, 500, 100, false));
  // Crosses it: bottom-up.
  EXPECT_TRUE(selector.choose_bottom_up(10, 501, 100, false));
  // Inside the band (125 <= scout <= 500): a bare threshold would snap
  // back to top-down here; hysteresis holds bottom-up.
  EXPECT_TRUE(selector.choose_bottom_up(10, 200, 100, false));
  EXPECT_TRUE(selector.choose_bottom_up(10, 125, 100, false));
  // Below the exit threshold: back to top-down.
  EXPECT_FALSE(selector.choose_bottom_up(10, 124, 100, false));
  // And from top-down, mid-band mass is NOT enough to re-enter.
  EXPECT_FALSE(selector.choose_bottom_up(10, 200, 100, false));

  const DirectionCounters& counters = selector.counters();
  EXPECT_EQ(counters.decisions, 6);
  EXPECT_EQ(counters.bottom_up_levels, 3);
  EXPECT_EQ(counters.switches, 2);  // TD->BU at 501, BU->TD at 124
  EXPECT_EQ(counters.policy, DirectionPolicy::kAdaptive);
  EXPECT_TRUE(counters.collected);
}

TEST(DirectionSelector, ResetPhaseForgetsHysteresis) {
  engine::DirectionSelector selector(DirectionPolicy::kAdaptive, 2.0, 1000,
                                     100);
  EXPECT_TRUE(selector.choose_bottom_up(10, 501, 100, false));
  selector.reset_phase();
  // Mid-band scout mass after a reset reads as a fresh top-down start.
  EXPECT_FALSE(selector.choose_bottom_up(10, 200, 100, false));
}

TEST(DirectionSelector, AdaptiveHonorsBanAndDegenerateInputs) {
  engine::DirectionSelector selector(DirectionPolicy::kAdaptive, 2.0, 1000,
                                     100);
  EXPECT_FALSE(selector.choose_bottom_up(10, 5000, 100, /*banned=*/true));
  EXPECT_FALSE(selector.choose_bottom_up(0, 5000, 100, false));
  EXPECT_FALSE(selector.choose_bottom_up(10, 5000, 0, false));
  engine::DirectionSelector bad_alpha(DirectionPolicy::kAdaptive, kNaN, 1000,
                                      100);
  EXPECT_FALSE(bad_alpha.choose_bottom_up(10, 5000, 100, false));
}

// ---------------------------------------------------------------------
// AtomicBitmap::claim_word: fuzz against a serial bit model.

TEST(ClaimWord, EmptyMaskAndFullWordAreNoOps) {
  AtomicBitmap bits;
  bits.reset(64);
  bool fell_back = true;
  EXPECT_EQ(bits.claim_word(0, 0, &fell_back), 0u);
  EXPECT_FALSE(fell_back);
  EXPECT_EQ(bits.claim_word(0, ~std::uint64_t{0}, &fell_back),
            ~std::uint64_t{0});
  EXPECT_FALSE(fell_back);
  // Every bit now set: a second claim of anything wins nothing.
  EXPECT_EQ(bits.claim_word(0, ~std::uint64_t{0}), 0u);
  EXPECT_EQ(bits.claim_word(0, 0x5a5a5a5a5a5a5a5aULL), 0u);
}

TEST(ClaimWord, FuzzedMasksMatchSerialModel) {
  // Widths straddling word boundaries so tail words and multi-word
  // indexing both get exercised; masks fuzzed against a plain-uint64
  // model of the claim contract: won == mask & ~before, word becomes
  // before | mask, repeated claims win nothing.
  Xoshiro256 rng(0xD19E575ULL);
  for (const std::size_t width : {1u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    AtomicBitmap bits;
    bits.reset(width);
    const std::size_t words = bits.word_count();
    std::vector<std::uint64_t> model(words, 0);
    for (int trial = 0; trial < 400; ++trial) {
      const auto w = static_cast<std::size_t>(rng.below(words));
      const std::uint64_t mask = rng() & rng();  // ~25% density
      const std::uint64_t expect_won = mask & ~model[w];
      bool fell_back = false;
      const std::uint64_t won = bits.claim_word(w, mask, &fell_back);
      EXPECT_EQ(won, expect_won);
      EXPECT_FALSE(fell_back);  // no contention in a serial fuzz loop
      model[w] |= mask;
      EXPECT_EQ(bits.load_word(w), model[w]);
      // Immediately re-claiming the same mask must win nothing.
      EXPECT_EQ(bits.claim_word(w, mask), 0u);
    }
    // Per-bit view agrees with the word-granular model.
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_EQ(bits.test(i),
                ((model[i / 64] >> (i % 64)) & 1u) != 0u);
    }
  }
}

TEST(ClaimWord, SerialVariantMatchesAtomicVariant) {
  Xoshiro256 rng(0xABCDEFULL);
  AtomicBitmap atomic_bits;
  AtomicBitmap serial_bits;
  atomic_bits.reset(192);
  serial_bits.reset(192);
  for (int trial = 0; trial < 300; ++trial) {
    const auto w = static_cast<std::size_t>(rng.below(3));
    const std::uint64_t mask = rng() & rng();
    EXPECT_EQ(atomic_bits.claim_word(w, mask),
              serial_bits.claim_word_serial(w, mask));
    EXPECT_EQ(atomic_bits.load_word(w), serial_bits.load_word(w));
  }
}

TEST(ClaimWord, PerBitClaimsInterleaveExactlyOnce) {
  // Mixing claim() (per-bit) and claim_word() on the same word must
  // preserve exactly-once: total wins across both granularities equals
  // the number of distinct bits set.
  AtomicBitmap bits;
  bits.reset(64);
  for (const std::size_t i : {0u, 5u, 9u, 63u}) {
    EXPECT_TRUE(bits.claim(i));
  }
  const std::uint64_t preset = (std::uint64_t{1} << 0) |
                               (std::uint64_t{1} << 5) |
                               (std::uint64_t{1} << 9) |
                               (std::uint64_t{1} << 63);
  const std::uint64_t won = bits.claim_word(0, ~std::uint64_t{0});
  EXPECT_EQ(won, ~preset);
  EXPECT_FALSE(bits.claim(17));  // already claimed via the word
}

// ---------------------------------------------------------------------
// Invariance: every policy x kernel combination reaches the same
// maximum cardinality.

struct Combo {
  DirectionPolicy policy;
  BottomUpKernel kernel;
};

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  for (const DirectionPolicy policy :
       {DirectionPolicy::kFixed, DirectionPolicy::kAdaptive,
        DirectionPolicy::kTopDown, DirectionPolicy::kBottomUp}) {
    for (const BottomUpKernel kernel :
         {BottomUpKernel::kBit, BottomUpKernel::kWord}) {
      combos.push_back({policy, kernel});
    }
  }
  return combos;
}

void expect_all_combos_reach(const BipartiteGraph& g, std::int64_t expected,
                             std::uint64_t seed, const std::string& label) {
  for (const Combo& combo : all_combos()) {
    for (const int threads : {1, 4}) {
      RunConfig config;
      config.direction_policy = combo.policy;
      config.bottom_up_kernel = combo.kernel;
      config.threads = threads;
      Matching m = randomized_greedy(g, seed);
      const RunStats stats = ms_bfs_graft(g, m, config);
      EXPECT_EQ(stats.final_cardinality, expected)
          << label << " dirsel=" << to_string(combo.policy)
          << " kernel=" << to_string(combo.kernel) << " threads=" << threads;
      EXPECT_TRUE(is_valid_matching(g, m)) << label;
      EXPECT_TRUE(is_maximum_matching(g, m)) << label;
    }
  }
}

// Independent reference for the tiny-graph sweep: Kuhn's augmenting
// path algorithm over an adjacency matrix, sharing no library code.
int kuhn_cardinality(int nx, int ny,
                     const std::vector<std::vector<bool>>& adj) {
  std::vector<int> mate_y(static_cast<std::size_t>(ny), -1);
  std::vector<bool> seen;
  std::function<bool(int)> try_augment = [&](int x) {
    for (int y = 0; y < ny; ++y) {
      if (!adj[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] ||
          seen[static_cast<std::size_t>(y)]) {
        continue;
      }
      seen[static_cast<std::size_t>(y)] = true;
      if (mate_y[static_cast<std::size_t>(y)] < 0 ||
          try_augment(mate_y[static_cast<std::size_t>(y)])) {
        mate_y[static_cast<std::size_t>(y)] = x;
        return true;
      }
    }
    return false;
  };
  int result = 0;
  for (int x = 0; x < nx; ++x) {
    seen.assign(static_cast<std::size_t>(ny), false);
    if (try_augment(x)) ++result;
  }
  return result;
}

TEST(PolicyInvariance, ExhaustiveTinyGraphsMatchKuhnReference) {
  Xoshiro256 rng(0xBEEFCAFEULL);
  int graphs = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int nx = 1 + static_cast<int>(rng.below(std::uint64_t{7}));
    const int ny = 1 + static_cast<int>(rng.below(std::uint64_t{7}));
    // Sweep edge density from near-empty to complete.
    const int percent = static_cast<int>(rng.below(std::uint64_t{101}));
    std::vector<std::vector<bool>> adj(
        static_cast<std::size_t>(nx),
        std::vector<bool>(static_cast<std::size_t>(ny), false));
    EdgeList list;
    list.nx = nx;
    list.ny = ny;
    for (int x = 0; x < nx; ++x) {
      for (int y = 0; y < ny; ++y) {
        if (static_cast<int>(rng.below(std::uint64_t{100})) < percent) {
          adj[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] = true;
          list.edges.push_back({x, y});
        }
      }
    }
    const BipartiteGraph g = BipartiteGraph::from_edges(list);
    const std::int64_t expected = kuhn_cardinality(nx, ny, adj);
    expect_all_combos_reach(g, expected, 1 + trial,
                            "tiny#" + std::to_string(trial));
    ++graphs;
  }
  EXPECT_EQ(graphs, 60);
}

TEST(PolicyInvariance, WordBoundaryWidths) {
  // Y-side widths straddling 64-bit word boundaries: the word kernel's
  // tail-mask handling is exactly what these widths stress.
  Xoshiro256 rng(0x60D60DULL);
  for (const int ny : {63, 64, 65, 127, 129}) {
    ErdosRenyiParams params;
    params.nx = 96;
    params.ny = ny;
    params.edges = 3 * (96 + ny);
    params.seed = static_cast<std::uint64_t>(1000 + ny);
    const BipartiteGraph g = generate_erdos_renyi(params);
    const std::int64_t expected = maximum_matching_cardinality(g);
    expect_all_combos_reach(g, expected, rng(),
                            "ny=" + std::to_string(ny));
  }
}

using SuiteSeed = std::tuple<std::string, std::uint64_t>;

class PolicyInvarianceOnSuite : public ::testing::TestWithParam<SuiteSeed> {};

TEST_P(PolicyInvarianceOnSuite, AllCombosReachOracleCardinality) {
  const auto& [instance_name, seed] = GetParam();
  const BipartiteGraph g = suite_instance(instance_name).factory(0.006, seed);
  const std::int64_t expected = maximum_matching_cardinality(g);
  expect_all_combos_reach(g, expected, seed, instance_name);
}

std::vector<SuiteSeed> suite_seed_grid() {
  // Two instances per paper class (six generators), two seeds each.
  const std::vector<std::string> instances = {
      "hugetrace-like", "road_usa-like",    // scientific
      "copapers-like",  "rmat-like",        // scale-free
      "wikipedia-like", "web-google-like",  // web
  };
  std::vector<SuiteSeed> grid;
  for (const std::string& name : instances) {
    for (const std::uint64_t seed : {7ULL, 23ULL}) {
      grid.emplace_back(name, seed);
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyInvarianceOnSuite, ::testing::ValuesIn(suite_seed_grid()),
    [](const ::testing::TestParamInfo<SuiteSeed>& info) {
      std::string name = std::get<0>(info.param) + "_s" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PolicyInvariance, EverySolverIgnoresOrHonorsTheKnobs) {
  // Non-graft solvers receive the same RunConfig; setting the new knobs
  // must never change their answer (they have no direction switch).
  const BipartiteGraph g = suite_instance("copapers-like").factory(0.006, 5);
  const std::int64_t expected = maximum_matching_cardinality(g);
  for (const engine::SolverInfo& solver : engine::solver_registry()) {
    for (const Combo& combo : all_combos()) {
      RunConfig config;
      config.direction_policy = combo.policy;
      config.bottom_up_kernel = combo.kernel;
      config.threads = 2;
      Matching m = randomized_greedy(g, 3);
      const RunStats stats = solver.run(g, m, config);
      EXPECT_EQ(stats.final_cardinality, expected)
          << solver.name << " dirsel=" << to_string(combo.policy)
          << " kernel=" << to_string(combo.kernel);
    }
  }
}

// ---------------------------------------------------------------------
// Stats plumbing: the strict `direction` JSON block and the human
// formatter's non-default gating.

TEST(DirectionStats, JsonBlockIsStrictAndNamed) {
  const BipartiteGraph g = suite_instance("wikipedia-like").factory(0.006, 9);
  RunConfig config;
  config.direction_policy = DirectionPolicy::kAdaptive;
  config.bottom_up_kernel = BottomUpKernel::kWord;
  Matching m = randomized_greedy(g, 2);
  const RunStats stats = ms_bfs_graft(g, m, config);

  ASSERT_TRUE(stats.direction.collected);
  EXPECT_EQ(stats.direction.policy, DirectionPolicy::kAdaptive);
  EXPECT_EQ(stats.direction.kernel, BottomUpKernel::kWord);
  EXPECT_GT(stats.direction.decisions, 0);
  EXPECT_GE(stats.direction.decisions, stats.direction.bottom_up_levels);

  const std::string json = run_stats_json(stats);
  std::string error;
  testing::JsonChecker checker(json);
  EXPECT_TRUE(checker.valid(&error)) << error;
  EXPECT_NE(json.find("\"direction\":{\"policy\":\"adaptive\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"kernel\":\"word\""), std::string::npos);
  EXPECT_NE(json.find("\"word_commits\":"), std::string::npos);

  // Human formatter surfaces the knobs only when they differ from the
  // defaults, so default-config output stays byte-stable.
  EXPECT_NE(format_run_stats(stats).find("dirsel=adaptive"),
            std::string::npos);
  RunConfig default_config;
  Matching m2 = randomized_greedy(g, 2);
  const RunStats default_stats = ms_bfs_graft(g, m2, default_config);
  EXPECT_EQ(format_run_stats(default_stats).find("dirsel="),
            std::string::npos);
}

TEST(DirectionStats, WordCountersOnlyMoveOnWordArm) {
  const BipartiteGraph g = suite_instance("wikipedia-like").factory(0.006, 4);
  RunConfig bit_config;
  bit_config.direction_policy = DirectionPolicy::kBottomUp;
  bit_config.bottom_up_kernel = BottomUpKernel::kBit;
  Matching m_bit = randomized_greedy(g, 2);
  const RunStats bit_stats = ms_bfs_graft(g, m_bit, bit_config);
  EXPECT_EQ(bit_stats.direction.word_commits, 0);
  EXPECT_EQ(bit_stats.direction.word_fallbacks, 0);
  EXPECT_GT(bit_stats.direction.bottom_up_levels, 0);

  RunConfig word_config = bit_config;
  word_config.bottom_up_kernel = BottomUpKernel::kWord;
  Matching m_word = randomized_greedy(g, 2);
  const RunStats word_stats = ms_bfs_graft(g, m_word, word_config);
  EXPECT_GT(word_stats.direction.word_commits, 0);
  EXPECT_EQ(word_stats.final_cardinality, bit_stats.final_cardinality);
}

// ---------------------------------------------------------------------
// Enum round-trips for the two new RunConfig knobs.

TEST(DirectionEnums, ParseAndToStringRoundTrip) {
  for (const DirectionPolicy policy :
       {DirectionPolicy::kFixed, DirectionPolicy::kAdaptive,
        DirectionPolicy::kTopDown, DirectionPolicy::kBottomUp}) {
    DirectionPolicy parsed{};
    EXPECT_TRUE(parse_direction_policy(to_string(policy), parsed));
    EXPECT_EQ(parsed, policy);
  }
  for (const BottomUpKernel kernel :
       {BottomUpKernel::kBit, BottomUpKernel::kWord}) {
    BottomUpKernel parsed{};
    EXPECT_TRUE(parse_bottom_up_kernel(to_string(kernel), parsed));
    EXPECT_EQ(parsed, kernel);
  }
  DirectionPolicy policy{};
  BottomUpKernel kernel{};
  EXPECT_FALSE(parse_direction_policy("bogus", policy));
  EXPECT_FALSE(parse_direction_policy("", policy));
  EXPECT_FALSE(parse_bottom_up_kernel("simd", kernel));
  EXPECT_FALSE(parse_bottom_up_kernel("", kernel));
}

}  // namespace
}  // namespace graftmatch
