// Tests for the core MS-BFS-Graft algorithm: the paper's Fig. 2 worked
// example, the full configuration matrix (grafting x direction
// optimization x threads x alpha), statistics invariants, and the
// frontier trace.
#include <gtest/gtest.h>

#include <set>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/grid.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/verify/koenig.hpp"

namespace graftmatch {
namespace {

// The paper's Fig. 2(a) graph (x1..x6, y1..y6 -> indices 0..5) with the
// figure's maximal matching {x3-y1, x4-y2, x5-y3, x6-y4}; x1, x2
// unmatched. The figure walks two phases: phase 1 augments
// (x2,y3,x5,y5), phase 2 grafts y2,y3 onto T(x1) and augments
// (x1,y2,x4,y4,x6,y6).
BipartiteGraph figure2_graph() {
  EdgeList list;
  list.nx = 6;
  list.ny = 6;
  list.edges = {{0, 0}, {0, 1}, {2, 0}, {2, 1}, {2, 2}, {1, 2}, {1, 4},
                {3, 1}, {3, 3}, {4, 2}, {4, 4}, {5, 3}, {5, 5}};
  return BipartiteGraph::from_edges(list);
}

Matching figure2_initial() {
  Matching m(6, 6);
  m.match(2, 0);  // x3-y1
  m.match(3, 1);  // x4-y2
  m.match(4, 2);  // x5-y3
  m.match(5, 3);  // x6-y4
  return m;
}

TEST(MsBfsGraft, SolvesFigure2FromPaperState) {
  const BipartiteGraph g = figure2_graph();
  Matching m = figure2_initial();
  RunConfig config;
  config.threads = 1;
  config.collect_frontier_trace = true;
  const RunStats stats = ms_bfs_graft(g, m, config);
  EXPECT_EQ(m.cardinality(), 6);
  EXPECT_TRUE(is_maximum_matching(g, m));
  // The initial matching leaves exactly two unmatched X vertices, so
  // two augmenting paths must be found (each augmentation adds one).
  EXPECT_EQ(stats.augmentations, 2);
  // At most: one productive phase per augmentation + the terminating
  // phase. (Bottom-up intra-level chaining can merge the productive
  // phases the figure walks through separately.)
  EXPECT_GE(stats.phases, 2);
  EXPECT_LE(stats.phases, 3);
}

TEST(MsBfsGraft, ConfigurationMatrixAllReachMaximum) {
  ChungLuParams params;
  params.nx = params.ny = 3000;
  params.avg_degree = 6.0;
  params.seed = 3;
  const BipartiteGraph g = generate_chung_lu(params);
  const std::int64_t expected = maximum_matching_cardinality(g);

  for (const bool grafting : {false, true}) {
    for (const bool dirop : {false, true}) {
      for (const int threads : {1, 2, 4}) {
        for (const double alpha : {2.0, 5.0, 50.0}) {
          RunConfig config;
          config.tree_grafting = grafting;
          config.direction_optimizing = dirop;
          config.threads = threads;
          config.alpha = alpha;
          Matching m = randomized_greedy(g, 1);
          const RunStats stats = ms_bfs_graft(g, m, config);
          ASSERT_EQ(m.cardinality(), expected)
              << "graft=" << grafting << " dirop=" << dirop
              << " threads=" << threads << " alpha=" << alpha;
          ASSERT_TRUE(is_maximum_matching(g, m));
          ASSERT_EQ(stats.final_cardinality - stats.initial_cardinality,
                    stats.augmentations);
        }
      }
    }
  }
}

TEST(MsBfsGraft, MsBfsAliasDisablesBothFeatures) {
  const BipartiteGraph g = figure2_graph();
  Matching m = figure2_initial();
  const RunStats stats = ms_bfs(g, m);
  EXPECT_EQ(stats.algorithm, "MS-BFS");
  EXPECT_EQ(m.cardinality(), 6);
}

TEST(MsBfsGraft, AlgorithmNameReflectsConfig) {
  const BipartiteGraph g = figure2_graph();
  RunConfig config;
  Matching m = figure2_initial();
  EXPECT_EQ(ms_bfs_graft(g, m, config).algorithm, "MS-BFS-Graft");
  config.direction_optimizing = false;
  m = figure2_initial();
  EXPECT_EQ(ms_bfs_graft(g, m, config).algorithm, "MS-BFS+Graft");
  config.direction_optimizing = true;
  config.tree_grafting = false;
  m = figure2_initial();
  EXPECT_EQ(ms_bfs_graft(g, m, config).algorithm, "MS-BFS+DirOpt");
}

TEST(MsBfsGraft, StatsAreInternallyConsistent) {
  WebCrawlParams params;
  params.nx = params.ny = 4000;
  params.seed = 9;
  const BipartiteGraph g = generate_webcrawl(params);
  Matching m = randomized_greedy(g, 2);
  const std::int64_t initial = m.cardinality();
  const RunStats stats = ms_bfs_graft(g, m);

  EXPECT_EQ(stats.initial_cardinality, initial);
  EXPECT_EQ(stats.final_cardinality, m.cardinality());
  EXPECT_EQ(stats.augmentations, stats.final_cardinality - initial);
  EXPECT_GE(stats.phases, 1);
  EXPECT_GE(stats.seconds, 0.0);
  // Augmenting paths have odd length >= 1, so the sum is at least the
  // count and the average is at least 1.
  if (stats.augmentations > 0) {
    EXPECT_GE(stats.total_path_edges, stats.augmentations);
    EXPECT_GE(stats.avg_path_length(), 1.0);
  }
  // Step timers sum to no more than the total (within other).
  EXPECT_LE(stats.step_seconds.top_down + stats.step_seconds.bottom_up +
                stats.step_seconds.augment + stats.step_seconds.graft +
                stats.step_seconds.statistics,
            stats.seconds + 1e-6);
}

TEST(MsBfsGraft, FrontierTraceRecordsLevels) {
  GridParams params;
  params.width = 48;
  params.height = 48;
  params.diagonal_drop = 0.05;
  const BipartiteGraph g = generate_grid(params);
  Matching m = randomized_greedy(g, 1);
  RunConfig config;
  config.collect_frontier_trace = true;
  const RunStats stats = ms_bfs_graft(g, m, config);

  ASSERT_FALSE(stats.frontier_trace.empty());
  // Phases numbered from 1, contiguous; levels start at 0 per phase.
  std::set<std::int64_t> phases;
  for (const FrontierSample& sample : stats.frontier_trace) {
    EXPECT_GE(sample.phase, 1);
    EXPECT_LE(sample.phase, stats.phases);
    EXPECT_GE(sample.level, 0);
    EXPECT_GT(sample.frontier_size, 0);
    phases.insert(sample.phase);
  }
  // Every productive phase traversed at least one level.
  EXPECT_GE(static_cast<std::int64_t>(phases.size()), stats.phases - 1);
}

TEST(MsBfsGraft, TraceOffByDefault) {
  const BipartiteGraph g = figure2_graph();
  Matching m = figure2_initial();
  const RunStats stats = ms_bfs_graft(g, m);
  EXPECT_TRUE(stats.frontier_trace.empty());
}

TEST(MsBfsGraft, GraftingReducesEdgeTraversals) {
  // On a low-matching-number graph, grafting must traverse fewer edges
  // than rebuild-from-scratch MS-BFS (the paper's core claim).
  WebCrawlParams params;
  params.nx = params.ny = 20000;
  params.avg_degree = 8.0;
  params.seed = 4;
  const BipartiteGraph g = generate_webcrawl(params);

  RunConfig with;
  with.direction_optimizing = false;  // isolate the grafting effect
  with.tree_grafting = true;
  Matching m1 = randomized_greedy(g, 1);
  const RunStats graft = ms_bfs_graft(g, m1, with);

  RunConfig without = with;
  without.tree_grafting = false;
  Matching m2 = randomized_greedy(g, 1);
  const RunStats plain = ms_bfs_graft(g, m2, without);

  EXPECT_EQ(m1.cardinality(), m2.cardinality());
  EXPECT_LT(graft.edges_traversed, plain.edges_traversed);
}

TEST(MsBfsGraft, WorksFromEmptyMatching) {
  ChungLuParams params;
  params.nx = params.ny = 1000;
  const BipartiteGraph g = generate_chung_lu(params);
  Matching m(params.nx, params.ny);
  ms_bfs_graft(g, m);
  EXPECT_TRUE(is_maximum_matching(g, m));
}

TEST(MsBfsGraft, AlreadyMaximumIsOnePhaseNoop) {
  const BipartiteGraph g = figure2_graph();
  Matching m = figure2_initial();
  ms_bfs_graft(g, m);  // reach maximum
  const RunStats stats = ms_bfs_graft(g, m);  // run again
  EXPECT_EQ(stats.augmentations, 0);
  EXPECT_EQ(stats.phases, 1);
}

TEST(MsBfsGraft, EdgelessAndEmptyGraphs) {
  EdgeList list;
  list.nx = 8;
  list.ny = 8;
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  Matching m(8, 8);
  const RunStats stats = ms_bfs_graft(g, m);
  EXPECT_EQ(stats.final_cardinality, 0);

  EdgeList zero;
  const BipartiteGraph g0 = BipartiteGraph::from_edges(zero);
  Matching m0(0, 0);
  EXPECT_EQ(ms_bfs_graft(g0, m0).final_cardinality, 0);
}

TEST(MsBfsGraft, AlphaExtremesStillCorrect) {
  WebCrawlParams params;
  params.nx = params.ny = 2000;
  const BipartiteGraph g = generate_webcrawl(params);
  const std::int64_t expected = maximum_matching_cardinality(g);
  for (const double alpha : {1.0001, 1e9}) {
    RunConfig config;
    config.alpha = alpha;
    Matching m = randomized_greedy(g, 5);
    ms_bfs_graft(g, m, config);
    EXPECT_EQ(m.cardinality(), expected) << alpha;
  }
}

TEST(MsBfsGraft, RejectsNonPositiveAlpha) {
  const BipartiteGraph g = figure2_graph();
  Matching m = figure2_initial();
  RunConfig config;
  config.alpha = 0.0;
  EXPECT_THROW(ms_bfs_graft(g, m, config), std::invalid_argument);
  config.alpha = -3.0;
  EXPECT_THROW(ms_bfs_graft(g, m, config), std::invalid_argument);
}

TEST(MsBfsGraft, PhaseStatsRowsAreConsistent) {
  WebCrawlParams params;
  params.nx = params.ny = 4000;
  params.seed = 8;
  const BipartiteGraph g = generate_webcrawl(params);
  Matching m = randomized_greedy(g, 4);
  RunConfig config;
  config.collect_phase_stats = true;
  const RunStats stats = ms_bfs_graft(g, m, config);

  ASSERT_EQ(static_cast<std::int64_t>(stats.phase_stats.size()),
            stats.phases);
  std::int64_t total_edges = 0;
  std::int64_t total_paths = 0;
  for (std::size_t i = 0; i < stats.phase_stats.size(); ++i) {
    const PhaseStats& row = stats.phase_stats[i];
    EXPECT_EQ(row.phase, static_cast<std::int64_t>(i) + 1);
    EXPECT_GE(row.levels, 0);
    EXPECT_LE(row.bottom_up_levels, row.levels);
    EXPECT_GE(row.edges, 0);
    EXPECT_GE(row.seconds, 0.0);
    total_edges += row.edges;
    total_paths += row.augmentations;
  }
  EXPECT_EQ(total_edges, stats.edges_traversed);
  EXPECT_EQ(total_paths, stats.augmentations);
  // The final phase finds nothing (termination condition).
  EXPECT_EQ(stats.phase_stats.back().augmentations, 0);
  // Early path-rich phases rebuild; at least one later phase grafts on
  // this workload.
  bool any_grafted = false;
  for (const PhaseStats& row : stats.phase_stats) {
    any_grafted = any_grafted || row.grafted;
  }
  EXPECT_TRUE(any_grafted);
}

TEST(MsBfsGraft, PhaseStatsOffByDefault) {
  const BipartiteGraph g = figure2_graph();
  Matching m = figure2_initial();
  const RunStats stats = ms_bfs_graft(g, m);
  EXPECT_TRUE(stats.phase_stats.empty());
}

TEST(MsBfsGraft, InvariantAuditPassesAcrossConfigurations) {
  // The O(n+m) forest audit must stay silent for every configuration on
  // a workload that exercises grafting, rebuilds, and both directions.
  WebCrawlParams params;
  params.nx = params.ny = 3000;
  params.seed = 6;
  const BipartiteGraph g = generate_webcrawl(params);
  for (const bool grafting : {false, true}) {
    for (const bool dirop : {false, true}) {
      for (const int threads : {1, 4}) {
        RunConfig config;
        config.check_invariants = true;
        config.tree_grafting = grafting;
        config.direction_optimizing = dirop;
        config.threads = threads;
        Matching m = randomized_greedy(g, 3);
        EXPECT_NO_THROW(ms_bfs_graft(g, m, config))
            << "graft=" << grafting << " dirop=" << dirop
            << " threads=" << threads;
        EXPECT_TRUE(is_maximum_matching(g, m));
      }
    }
  }
}

TEST(MsBfsGraft, InvariantAuditOnScientificClass) {
  GridParams params;
  params.width = 64;
  params.height = 64;
  params.diagonal_drop = 0.1;
  const BipartiteGraph g = generate_grid(params);
  RunConfig config;
  config.check_invariants = true;
  Matching m = randomized_greedy(g, 1);
  EXPECT_NO_THROW(ms_bfs_graft(g, m, config));
}

TEST(MsBfsGraft, PinningPolicyDoesNotAffectResult) {
  const BipartiteGraph g = figure2_graph();
  for (const PinPolicy pin :
       {PinPolicy::kNone, PinPolicy::kCompact, PinPolicy::kScatter}) {
    RunConfig config;
    config.pin = pin;
    Matching m = figure2_initial();
    ms_bfs_graft(g, m, config);
    EXPECT_EQ(m.cardinality(), 6);
  }
}

}  // namespace
}  // namespace graftmatch
