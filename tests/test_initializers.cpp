// Tests for the maximal-matching initializers: Karp-Sipser (serial and
// parallel), the greedy variants, and the single-pass streaming
// matcher.
#include <gtest/gtest.h>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/grid.hpp"
#include "graftmatch/gen/rmat.hpp"
#include "graftmatch/gen/sbm.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/init/parallel_karp_sipser.hpp"
#include "graftmatch/init/streaming_ks.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch {
namespace {

BipartiteGraph path_graph(vid_t k) {
  // x0 - y0 - x1 - y1 - ... (a path with 2k vertices): the degree-1
  // rule alone solves it optimally.
  EdgeList list;
  list.nx = k;
  list.ny = k;
  for (vid_t i = 0; i < k; ++i) {
    list.edges.push_back({i, i});
    if (i + 1 < k) list.edges.push_back({i + 1, i});
  }
  return BipartiteGraph::from_edges(list);
}

BipartiteGraph star_graph(vid_t leaves) {
  // One X hub connected to `leaves` Y vertices: max matching is 1.
  EdgeList list;
  list.nx = 1;
  list.ny = leaves;
  for (vid_t y = 0; y < leaves; ++y) list.edges.push_back({0, y});
  return BipartiteGraph::from_edges(list);
}

TEST(KarpSipser, OptimalOnPath) {
  const BipartiteGraph g = path_graph(50);
  KarpSipserStats stats;
  const Matching m = karp_sipser(g, 1, &stats);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(m.cardinality(), 50);  // perfect via the diagonal
  EXPECT_GT(stats.degree_one_matches, 0);
}

TEST(KarpSipser, StarUsesDegreeOneRule) {
  const BipartiteGraph g = star_graph(10);
  KarpSipserStats stats;
  const Matching m = karp_sipser(g, 1, &stats);
  EXPECT_EQ(m.cardinality(), 1);
  // All ten leaves are degree-1; the safe rule fires first.
  EXPECT_EQ(stats.degree_one_matches + stats.random_matches, 1);
}

TEST(KarpSipser, MaximalOnRandomGraphs) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ErdosRenyiParams params;
    params.nx = 600;
    params.ny = 500;
    params.edges = 2500;
    params.seed = seed;
    const BipartiteGraph g = generate_erdos_renyi(params);
    const Matching m = karp_sipser(g, seed);
    EXPECT_TRUE(is_valid_matching(g, m));
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(KarpSipser, DeterministicGivenSeed) {
  ErdosRenyiParams params;
  params.nx = params.ny = 300;
  params.edges = 1200;
  const BipartiteGraph g = generate_erdos_renyi(params);
  EXPECT_EQ(karp_sipser(g, 7), karp_sipser(g, 7));
}

TEST(KarpSipser, NearOptimalOnGrid) {
  GridParams params;
  params.width = 32;
  params.height = 32;
  const BipartiteGraph g = generate_grid(params);
  const Matching m = karp_sipser(g);
  // KS should recover at least 95% of the (perfect) maximum.
  EXPECT_GT(m.cardinality(), (1024 * 95) / 100);
}

TEST(KarpSipser, EmptyGraph) {
  EdgeList list;
  list.nx = 5;
  list.ny = 5;
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  EXPECT_EQ(karp_sipser(g).cardinality(), 0);
}

TEST(KarpSipserRule1, MaximalValidAndBetween) {
  // KSR1's quality sits between plain greedy and full Karp-Sipser on
  // graphs with a meaningful degree-1 periphery.
  WebCrawlParams params;
  params.nx = params.ny = 3000;
  params.seed = 5;
  const BipartiteGraph g = generate_webcrawl(params);
  KarpSipserStats stats;
  const Matching m = karp_sipser_rule1(g, &stats);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_TRUE(is_maximal_matching(g, m));
  EXPECT_GT(stats.degree_one_matches, 0);
  const Matching full = karp_sipser(g);
  EXPECT_LE(m.cardinality(), full.cardinality());
  EXPECT_GE(2 * m.cardinality(), full.cardinality());
}

TEST(KarpSipserRule1, OptimalOnPath) {
  const BipartiteGraph g = path_graph(30);
  EXPECT_EQ(karp_sipser_rule1(g).cardinality(), 30);
}

TEST(KarpSipserRule1, Deterministic) {
  ErdosRenyiParams params;
  params.nx = params.ny = 400;
  params.edges = 1600;
  const BipartiteGraph g = generate_erdos_renyi(params);
  EXPECT_EQ(karp_sipser_rule1(g), karp_sipser_rule1(g));
}

TEST(Greedy, MaximalAndValid) {
  WebCrawlParams params;
  params.nx = params.ny = 2000;
  const BipartiteGraph g = generate_webcrawl(params);
  const Matching m = greedy_maximal(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(Greedy, AtLeastHalfOfMaximum) {
  ErdosRenyiParams params;
  params.nx = params.ny = 800;
  params.edges = 3000;
  const BipartiteGraph g = generate_erdos_renyi(params);
  const Matching m = greedy_maximal(g);
  EXPECT_GE(2 * m.cardinality(), maximum_matching_cardinality(g));
}

TEST(RandomizedGreedy, MaximalValidDeterministic) {
  ErdosRenyiParams params;
  params.nx = params.ny = 500;
  params.edges = 2000;
  const BipartiteGraph g = generate_erdos_renyi(params);
  const Matching a = randomized_greedy(g, 3);
  const Matching b = randomized_greedy(g, 3);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(is_valid_matching(g, a));
  EXPECT_TRUE(is_maximal_matching(g, a));
  // A different seed gives a different maximal matching (overwhelmingly).
  const Matching c = randomized_greedy(g, 4);
  EXPECT_NE(a, c);
}

TEST(IsMaximal, DetectsNonMaximal) {
  const BipartiteGraph g = path_graph(3);
  Matching empty(g.num_x(), g.num_y());
  EXPECT_FALSE(is_maximal_matching(g, empty));
}

TEST(ParallelKarpSipser, MaximalValidAcrossThreadCounts) {
  ErdosRenyiParams params;
  params.nx = 1500;
  params.ny = 1200;
  params.edges = 6000;
  const BipartiteGraph g = generate_erdos_renyi(params);
  for (int threads : {1, 2, 4}) {
    const Matching m = parallel_karp_sipser(g, 1, threads);
    EXPECT_TRUE(is_valid_matching(g, m)) << threads;
    EXPECT_TRUE(is_maximal_matching(g, m)) << threads;
  }
}

TEST(ParallelKarpSipser, QualityComparableToSerial) {
  GridParams params;
  params.width = 48;
  params.height = 48;
  const BipartiteGraph g = generate_grid(params);
  const auto serial = karp_sipser(g).cardinality();
  const auto parallel = parallel_karp_sipser(g, 1, 4).cardinality();
  // Both are maximal, so both are >= max/2; additionally the parallel
  // variant should stay within 10% of the serial one on a grid.
  EXPECT_GT(parallel, (serial * 9) / 10);
}

TEST(ParallelKarpSipser, HandlesIsolatedVertices) {
  EdgeList list;
  list.nx = 10;
  list.ny = 10;
  list.edges = {{0, 0}, {9, 9}};
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const Matching m = parallel_karp_sipser(g, 1, 2);
  EXPECT_EQ(m.cardinality(), 2);
}

TEST(StreamingMatcher, SinglePassRuleAndUntrustedInput) {
  StreamingMatcher matcher(2, 2);
  EXPECT_TRUE(matcher.accept(0, 0));   // both free -> matched
  EXPECT_FALSE(matcher.accept(0, 1));  // x0 taken -> dropped
  EXPECT_FALSE(matcher.accept(1, 0));  // y0 taken -> dropped
  EXPECT_TRUE(matcher.accept(1, 1));
  EXPECT_EQ(matcher.cardinality(), 2);
  // Out-of-range endpoints are ignored, not UB: streams are untrusted.
  EXPECT_FALSE(matcher.accept(-1, 0));
  EXPECT_FALSE(matcher.accept(0, 99));
  const Matching m = matcher.take();
  EXPECT_EQ(m.cardinality(), 2);
}

TEST(StreamingMaximal, MaximalOverTheStreamedEdgeList) {
  ErdosRenyiParams params;
  params.nx = 500;
  params.ny = 450;
  params.edges = 2200;
  const BipartiteGraph g = generate_erdos_renyi(params);
  const Matching m = streaming_maximal(g.to_edges());
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(StreamingKarpSipser, MaximalOnEveryGenerator) {
  std::vector<BipartiteGraph> corpus;
  {
    ErdosRenyiParams p;
    p.nx = 600;
    p.ny = 500;
    p.edges = 2500;
    corpus.push_back(generate_erdos_renyi(p));
  }
  {
    GridParams p;
    p.width = 24;
    p.height = 24;
    p.diagonal_drop = 0.2;
    corpus.push_back(generate_grid(p));
  }
  {
    WebCrawlParams p;
    p.nx = p.ny = 800;
    p.avg_degree = 4.0;
    corpus.push_back(generate_webcrawl(p));
  }
  {
    ChungLuParams p;
    p.nx = p.ny = 600;
    p.avg_degree = 5.0;
    p.max_degree = 64;
    corpus.push_back(generate_chung_lu(p));
  }
  {
    SbmParams p;
    p.rows_per_block = 80;
    p.cols_per_block = 70;
    p.blocks = 5;
    corpus.push_back(generate_sbm(p));
  }
  {
    RmatParams p;
    p.scale = 9;
    p.edge_factor = 5.0;
    corpus.push_back(generate_rmat(p));
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const Matching m = streaming_karp_sipser(corpus[i], 3);
    EXPECT_TRUE(is_valid_matching(corpus[i], m)) << "graph " << i;
    EXPECT_TRUE(is_maximal_matching(corpus[i], m)) << "graph " << i;
  }
}

TEST(StreamingKarpSipser, DeterministicGivenSeedAndSeedSensitive) {
  ErdosRenyiParams params;
  params.nx = params.ny = 400;
  params.edges = 1800;
  const BipartiteGraph g = generate_erdos_renyi(params);
  EXPECT_EQ(streaming_karp_sipser(g, 9), streaming_karp_sipser(g, 9));
  EXPECT_NE(streaming_karp_sipser(g, 9), streaming_karp_sipser(g, 10));
}

TEST(StreamingKarpSipser, PendantRowsStreamFirst) {
  // Star + pendant: x0 sees every y; x1..x10 each see exactly one y.
  // Pendant-first arrival must give all ten pendants their unique
  // neighbor, leaving a free column for the hub: cardinality 11.
  // Hub-first arrival orders could strand a pendant whose single
  // neighbor the hub grabbed.
  EdgeList list;
  list.nx = 11;
  list.ny = 11;
  for (vid_t y = 0; y < 11; ++y) list.edges.push_back({0, y});
  for (vid_t x = 1; x < 11; ++x) list.edges.push_back({x, x - 1});
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(streaming_karp_sipser(g, seed).cardinality(), 11) << seed;
  }
}

TEST(StreamingKarpSipser, EmptyAndDegenerateGraphs) {
  EdgeList list;
  list.nx = 4;
  list.ny = 0;
  EXPECT_EQ(streaming_karp_sipser(BipartiteGraph::from_edges(list))
                .cardinality(),
            0);
  list.ny = 4;  // still zero edges
  EXPECT_EQ(streaming_karp_sipser(BipartiteGraph::from_edges(list))
                .cardinality(),
            0);
}

}  // namespace
}  // namespace graftmatch
