// Unit tests for the engine's solver/initializer registry: enumeration,
// clear errors for unknown names, correctness of every registered entry
// on a known-maximum graph, and the RunConfig::threads contract -- a
// pinned thread count must reach the OpenMP regions each solver and
// initializer opens (probed via last_team_width()).
#include <gtest/gtest.h>
#include <omp.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch {
namespace {

BipartiteGraph complete_bipartite(vid_t nx, vid_t ny) {
  EdgeList list;
  list.nx = nx;
  list.ny = ny;
  for (vid_t x = 0; x < nx; ++x) {
    for (vid_t y = 0; y < ny; ++y) list.edges.push_back({x, y});
  }
  return BipartiteGraph::from_edges(list);
}

TEST(Registry, EnumeratesSolversAndInitializers) {
  ASSERT_FALSE(engine::solver_registry().empty());
  ASSERT_FALSE(engine::initializer_registry().empty());

  std::set<std::string> solver_keys;
  for (const engine::SolverInfo& solver : engine::solver_registry()) {
    EXPECT_FALSE(solver.name.empty());
    EXPECT_FALSE(solver.display_name.empty());
    EXPECT_TRUE(solver.solve != nullptr) << solver.name;
    EXPECT_TRUE(solver_keys.insert(solver.name).second)
        << "duplicate solver key " << solver.name;
    EXPECT_EQ(&engine::find_solver(solver.name), &solver);
  }
  EXPECT_TRUE(solver_keys.count("graft"));
  EXPECT_TRUE(solver_keys.count("pf"));

  std::set<std::string> init_keys;
  for (const engine::InitializerInfo& init : engine::initializer_registry()) {
    EXPECT_TRUE(init.build != nullptr) << init.name;
    EXPECT_TRUE(init_keys.insert(init.name).second)
        << "duplicate initializer key " << init.name;
    EXPECT_EQ(&engine::find_initializer(init.name), &init);
  }
  EXPECT_TRUE(init_keys.count("ks"));
  EXPECT_TRUE(init_keys.count("none"));
}

TEST(Registry, UnknownSolverNameGivesClearError) {
  EXPECT_EQ(engine::find_solver_or_null("no-such-solver"), nullptr);
  try {
    engine::find_solver("no-such-solver");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    // The message must name the offender and list valid keys so a CLI
    // user can fix a typo without reading the source.
    EXPECT_NE(what.find("unknown solver"), std::string::npos) << what;
    EXPECT_NE(what.find("no-such-solver"), std::string::npos) << what;
    EXPECT_NE(what.find("graft"), std::string::npos) << what;
  }
}

TEST(Registry, UnknownInitializerNameGivesClearError) {
  EXPECT_EQ(engine::find_initializer_or_null("bogus"), nullptr);
  try {
    engine::make_initial_matching("bogus", complete_bipartite(2, 2),
                                  RunConfig{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("unknown initializer"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    EXPECT_NE(what.find("ks"), std::string::npos) << what;
  }
}

TEST(Registry, EverySolverReachesMaximumCardinality) {
  const BipartiteGraph g = complete_bipartite(6, 9);
  for (const engine::SolverInfo& solver : engine::solver_registry()) {
    Matching m(g.num_x(), g.num_y());
    RunConfig config;
    config.threads = 1;
    const RunStats stats = solver.run(g, m, config);
    EXPECT_TRUE(is_valid_matching(g, m)) << solver.name;
    EXPECT_EQ(m.cardinality(), 6) << solver.name;
    EXPECT_EQ(stats.final_cardinality, 6) << solver.name;
    EXPECT_EQ(stats.algorithm, solver.display_name) << solver.name;
    EXPECT_EQ(stats.threads_used, 1) << solver.name;
  }
}

TEST(Registry, EveryInitializerProducesValidMatching) {
  const BipartiteGraph g = complete_bipartite(8, 5);
  for (const engine::InitializerInfo& init : engine::initializer_registry()) {
    RunConfig config;
    config.threads = 1;
    config.seed = 42;
    const Matching m = engine::make_initial_matching(init.name, g, config);
    EXPECT_TRUE(is_valid_matching(g, m)) << init.name;
    if (init.name != "none") {
      // Every real initializer is maximal, and on a complete bipartite
      // graph maximal == maximum.
      EXPECT_EQ(m.cardinality(), 5) << init.name;
    }
  }
}

// Regression for RunConfig::threads (the knob used to be ignored by
// some baselines): pin one thread with an oversubscribed OpenMP default
// of 4, run each parallel entry, and assert the parallel regions it
// opened were exactly one thread wide.
TEST(Registry, ThreadsPinnedToOneReachesEveryParallelRegion) {
  const BipartiteGraph g = complete_bipartite(24, 24);
  ThreadCountGuard ambient(4);  // default would be 4 without the pin
  ASSERT_EQ(omp_get_max_threads(), 4);

  for (const engine::SolverInfo& solver : engine::solver_registry()) {
    if (!solver.parallel) continue;
    last_team_width().store(-1);
    Matching m(g.num_x(), g.num_y());
    RunConfig config;
    config.threads = 1;
    const RunStats stats = solver.run(g, m, config);
    EXPECT_EQ(last_team_width().load(), 1) << solver.name;
    EXPECT_EQ(stats.threads_used, 1) << solver.name;
    // The pin must not leak into the ambient default.
    EXPECT_EQ(omp_get_max_threads(), 4) << solver.name;
  }

  for (const engine::InitializerInfo& init : engine::initializer_registry()) {
    if (!init.parallel) continue;
    last_team_width().store(-1);
    RunConfig config;
    config.threads = 1;
    config.seed = 3;
    (void)engine::make_initial_matching(init.name, g, config);
    EXPECT_EQ(last_team_width().load(), 1) << init.name;
    EXPECT_EQ(omp_get_max_threads(), 4) << init.name;
  }
}

// The inverse direction: with no pin, parallel solvers pick up the
// runtime default and report it in threads_used.
TEST(Registry, DefaultThreadsFollowRuntime) {
  const BipartiteGraph g = complete_bipartite(16, 16);
  ThreadCountGuard ambient(3);
  for (const engine::SolverInfo& solver : engine::solver_registry()) {
    if (!solver.parallel) continue;
    last_team_width().store(-1);
    Matching m(g.num_x(), g.num_y());
    const RunStats stats = solver.run(g, m, RunConfig{});
    EXPECT_EQ(last_team_width().load(), 3) << solver.name;
    EXPECT_EQ(stats.threads_used, 3) << solver.name;
  }
}

}  // namespace
}  // namespace graftmatch
