// Unit tests for timers, atomics helpers, padded types, frontier queues,
// affinity, and system info.
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "graftmatch/runtime/affinity.hpp"
#include "graftmatch/runtime/aligned.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/system_info.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

TEST(Timer, ElapsedIsMonotone) {
  const Timer timer;
  const double t1 = timer.elapsed();
  const double t2 = timer.elapsed();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(Stopwatch, AccumulatesLaps) {
  Stopwatch watch;
  EXPECT_EQ(watch.seconds(), 0.0);
  EXPECT_EQ(watch.laps(), 0);
  watch.start();
  watch.stop();
  watch.start();
  watch.stop();
  EXPECT_EQ(watch.laps(), 2);
  EXPECT_GE(watch.seconds(), 0.0);
  watch.reset();
  EXPECT_EQ(watch.laps(), 0);
  EXPECT_EQ(watch.seconds(), 0.0);
}

TEST(Stopwatch, StopWithoutStartIsNoop) {
  Stopwatch watch;
  watch.stop();
  EXPECT_EQ(watch.laps(), 0);
}

TEST(Stopwatch, ScopedLapStops) {
  Stopwatch watch;
  { const ScopedLap lap(watch); }
  EXPECT_EQ(watch.laps(), 1);
}

TEST(Timer, FormatSeconds) {
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
  EXPECT_EQ(format_seconds(0.0125), "12.500 ms");
  EXPECT_EQ(format_seconds(42e-6), "42.0 us");
}

TEST(Atomics, ClaimFlagIsExactlyOnce) {
  std::vector<std::uint8_t> flags(1000, 0);
  std::atomic<int> claims{0};
  parallel_region(4, [&] {
#pragma omp for
    for (int i = 0; i < 1000; ++i) {
      // Every thread races for every flag; exactly 1000 total claims.
      for (int attempt = 0; attempt < 4; ++attempt) {
        if (claim_flag(flags[static_cast<std::size_t>(i)])) {
          claims.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(claims.load(), 1000);
  EXPECT_TRUE(std::all_of(flags.begin(), flags.end(),
                          [](std::uint8_t f) { return f == 1; }));
}

TEST(Atomics, CasTransitions) {
  std::int64_t value = 5;
  EXPECT_TRUE(cas<std::int64_t>(value, 5, 9));
  EXPECT_EQ(value, 9);
  EXPECT_FALSE(cas<std::int64_t>(value, 5, 11));
  EXPECT_EQ(value, 9);
}

TEST(Atomics, FetchAddReturnsPrevious) {
  std::int64_t value = 10;
  EXPECT_EQ(fetch_add_relaxed(value, std::int64_t{3}), 10);
  EXPECT_EQ(value, 13);
}

TEST(Aligned, PaddedOccupiesFullCacheLine) {
  static_assert(sizeof(Padded<int>) == kCacheLineBytes);
  static_assert(alignof(Padded<int>) == kCacheLineBytes);
  PerThread<std::int64_t> slots(4);
  slots[0].value = 1;
  slots[3].value = 41;
  EXPECT_EQ(per_thread_sum(slots), 42);
}

TEST(FrontierQueue, SerialPushAndItems) {
  FrontierQueue<int> queue(10);
  EXPECT_TRUE(queue.empty());
  queue.push(3);
  queue.push(1);
  EXPECT_EQ(queue.size(), 2u);
  const auto items = queue.items();
  EXPECT_EQ(items[0], 3);
  EXPECT_EQ(items[1], 1);
  queue.clear();
  EXPECT_TRUE(queue.empty());
}

TEST(FrontierQueue, HandleFlushesOnDestruction) {
  FrontierQueue<int> queue(10);
  {
    auto handle = queue.handle();
    handle.push(7);
  }  // destructor flushes
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.items()[0], 7);
}

TEST(FrontierQueue, ParallelPushesLoseNothing) {
  constexpr int kItems = 100000;
  FrontierQueue<int> queue(kItems);
  parallel_region(4, [&] {
    auto handle = queue.handle();
#pragma omp for
    for (int i = 0; i < kItems; ++i) handle.push(i);
  });
  EXPECT_EQ(queue.size(), static_cast<std::size_t>(kItems));
  // Every value appears exactly once.
  auto items = queue.items();
  std::vector<int> sorted(items.begin(), items.end());
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(FrontierQueue, SwapExchangesContents) {
  FrontierQueue<int> a(4);
  FrontierQueue<int> b(4);
  a.push(1);
  b.push(2);
  b.push(3);
  a.swap(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.items()[0], 1);
}

TEST(Parallel, ThreadCountGuardRestores) {
  const int before = omp_get_max_threads();
  {
    const ThreadCountGuard guard(2);
    EXPECT_EQ(omp_get_max_threads(), 2);
  }
  EXPECT_EQ(omp_get_max_threads(), before);
}

TEST(Parallel, ZeroThreadsKeepsDefault) {
  const int before = omp_get_max_threads();
  {
    const ThreadCountGuard guard(0);
    EXPECT_EQ(omp_get_max_threads(), before);
  }
  EXPECT_EQ(omp_get_max_threads(), before);
}

TEST(Parallel, ExclusivePrefixSum) {
  std::vector<std::int64_t> values{3, 1, 4, 1, 5};
  const std::int64_t total = exclusive_prefix_sum(values);
  EXPECT_EQ(total, 14);
  EXPECT_EQ(values, (std::vector<std::int64_t>{0, 3, 4, 8, 9}));
}

TEST(Parallel, FirstTouchFill) {
  std::vector<int> data(1 << 16, -1);
  first_touch_fill(data, 7);
  EXPECT_TRUE(std::all_of(data.begin(), data.end(),
                          [](int v) { return v == 7; }));
}

TEST(Affinity, CpuCountPositive) {
  EXPECT_GE(logical_cpu_count(), 1);
}

TEST(Affinity, PinCurrentThread) {
  // Pinning to CPU 0 must succeed inside any Linux environment we run in.
  EXPECT_TRUE(pin_current_thread(0));
  EXPECT_EQ(current_cpu(), 0);
  EXPECT_FALSE(pin_current_thread(-1));
}

TEST(Affinity, CompactPlacementCoversThreads) {
  const auto placement = pin_openmp_threads(PinPolicy::kCompact);
  EXPECT_EQ(placement.size(),
            static_cast<std::size_t>(omp_get_max_threads()));
  for (const int cpu : placement) {
    EXPECT_GE(cpu, 0);
    EXPECT_LT(cpu, logical_cpu_count());
  }
}

TEST(Affinity, NonePolicyLeavesUnpinned) {
  const auto placement = pin_openmp_threads(PinPolicy::kNone);
  for (const int cpu : placement) EXPECT_EQ(cpu, -1);
}

TEST(SystemInfo, FieldsPopulated) {
  const SystemInfo info = query_system_info();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_GT(info.total_ram_mb, 0);
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_GE(info.openmp_max_threads, 1);
  const std::string text = format_system_info(info);
  EXPECT_NE(text.find("CPU model"), std::string::npos);
  EXPECT_NE(text.find("OpenMP"), std::string::npos);
}

}  // namespace
}  // namespace graftmatch
