// Property battery for the sharded-execution layer (shard/) and its
// engine driver run_sharded.
//
// classify_shards computes an APPROXIMATE coarse DM partition from the
// initializer's (maximal, not necessarily maximum) matching; the
// correctness of the whole pipeline rests on three theorems this file
// tests directly:
//
//   1. with a MAXIMUM matching the approximate partition IS the exact
//      coarse DM partition (classify_shards == dm_decompose);
//   2. matched pairs never straddle a class or a V component, and every
//      neighbor of a V row lands in the same component (closure), so
//      blocks really are independent subproblems;
//   3. every M0-augmenting path is confined to one V component, so
//      solving each solvable block to maximum and stitching yields the
//      global maximum: nu(G) = frozen_matched + sum_i nu(block_i).
//
// On top sit the mechanical contracts: extract/stitch round-trips, the
// payoff-gate abort semantics, run_sharded vs run_reduced cardinality
// across the whole solver registry, an exhaustive small-graph sweep,
// and the strict-JSON robustness of the "shard" stats block.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/dm/dulmage_mendelsohn.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/sbm.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/graftmatch.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/shard/shard.hpp"
#include "json_check.hpp"

namespace graftmatch {
namespace {

std::int64_t hk_cardinality(const BipartiteGraph& g) {
  Matching m(g.num_x(), g.num_y());
  hopcroft_karp(g, m);
  return m.cardinality();
}

/// Block-rich fixture: disconnected communities, each deficient enough
/// to stay solvable after a greedy start.
BipartiteGraph islands(std::uint64_t seed, int blocks = 8,
                       vid_t rows = 96, vid_t cols = 96,
                       double in_degree = 3.0) {
  SbmParams p;
  p.rows_per_block = rows;
  p.cols_per_block = cols;
  p.blocks = blocks;
  p.in_degree = in_degree;
  p.out_degree = 0.0;
  p.seed = seed;
  return generate_sbm(p);
}

std::vector<BipartiteGraph> fuzz_corpus(std::uint64_t seed) {
  std::vector<BipartiteGraph> graphs;
  graphs.push_back(islands(seed));
  graphs.push_back(islands(seed + 1, 6, 80, 48, 2.0));  // row surplus
  {
    WebCrawlParams p;
    p.nx = 500;
    p.ny = 450;
    p.avg_degree = 4.0;
    p.gamma = 1.9;
    p.stub_fraction = 0.4;
    p.hub_count = 12;
    p.seed = seed + 2;
    graphs.push_back(generate_webcrawl(p));
  }
  {
    ChungLuParams p;
    p.nx = 600;
    p.ny = 600;
    p.avg_degree = 2.0;
    p.seed = seed + 3;
    graphs.push_back(generate_chung_lu(p));
  }
  return graphs;
}

std::vector<Matching> initial_matchings(const BipartiteGraph& g,
                                        std::uint64_t seed) {
  std::vector<Matching> starts;
  starts.emplace_back(g.num_x(), g.num_y());  // empty
  starts.push_back(greedy_maximal(g));
  starts.push_back(randomized_greedy(g, seed));
  starts.push_back(karp_sipser(g, seed));
  return starts;
}

// ---------------------------------------------------------------------
// Theorem 1: exactness on a maximum matching.
// ---------------------------------------------------------------------

class ShardProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardProperties, ClassificationIsExactOnMaximumMatching) {
  for (const BipartiteGraph& g : fuzz_corpus(GetParam())) {
    Matching maximum(g.num_x(), g.num_y());
    hopcroft_karp(g, maximum);
    const shard::ShardClassification c =
        shard::classify_shards(g, maximum);
    ASSERT_FALSE(c.aborted);
    const DmDecomposition dm = dm_decompose(g, maximum);
    for (vid_t x = 0; x < g.num_x(); ++x) {
      ASSERT_EQ(c.row_class[static_cast<std::size_t>(x)],
                dm.row_block[static_cast<std::size_t>(x)])
          << "row " << x;
    }
    for (vid_t y = 0; y < g.num_y(); ++y) {
      ASSERT_EQ(c.col_class[static_cast<std::size_t>(y)],
                dm.col_block[static_cast<std::size_t>(y)])
          << "col " << y;
    }
    // A maximum matching leaves no solvable component: every component
    // is missing a free row or a free column.
    EXPECT_EQ(c.solvable_blocks(), 0);
  }
}

// ---------------------------------------------------------------------
// Theorem 2: structural invariants for ANY maximal starting matching.
// ---------------------------------------------------------------------

void check_classification_invariants(const BipartiteGraph& g,
                                     const Matching& m0,
                                     const shard::ShardClassification& c) {
  const auto nx = static_cast<std::size_t>(g.num_x());
  const auto ny = static_cast<std::size_t>(g.num_y());
  ASSERT_EQ(c.row_class.size(), nx);
  ASSERT_EQ(c.col_class.size(), ny);
  ASSERT_EQ(c.row_component.size(), nx);
  ASSERT_EQ(c.col_component.size(), ny);

  const auto comps = static_cast<std::int64_t>(c.components.size());
  std::int64_t h_rows = 0;
  std::int64_t s_rows = 0;
  std::vector<std::int64_t> rows_in(static_cast<std::size_t>(comps), 0);
  std::vector<std::int64_t> cols_in(static_cast<std::size_t>(comps), 0);
  std::vector<std::int64_t> edges_in(static_cast<std::size_t>(comps), 0);
  std::vector<std::int64_t> unmatched_rows(static_cast<std::size_t>(comps),
                                           0);
  std::vector<std::int64_t> unmatched_cols(static_cast<std::size_t>(comps),
                                           0);
  std::vector<std::int64_t> matched(static_cast<std::size_t>(comps), 0);

  for (std::size_t x = 0; x < nx; ++x) {
    const std::int64_t comp = c.row_component[x];
    if (c.row_class[x] == DmBlock::kVertical) {
      // Component ids are dense and V-only.
      ASSERT_GE(comp, 0) << "V row " << x << " without a component";
      ASSERT_LT(comp, comps);
      rows_in[static_cast<std::size_t>(comp)] += 1;
      edges_in[static_cast<std::size_t>(comp)] +=
          g.degree_x(static_cast<vid_t>(x));
      if (m0.is_matched_x(static_cast<vid_t>(x))) {
        matched[static_cast<std::size_t>(comp)] += 1;
      } else {
        unmatched_rows[static_cast<std::size_t>(comp)] += 1;
      }
    } else {
      ASSERT_EQ(comp, -1) << "non-V row " << x << " with a component";
      h_rows += c.row_class[x] == DmBlock::kHorizontal ? 1 : 0;
      s_rows += c.row_class[x] == DmBlock::kSquare ? 1 : 0;
      // Unmatched rows always seed the V reach.
      ASSERT_TRUE(m0.is_matched_x(static_cast<vid_t>(x)))
          << "unmatched row " << x << " must be V";
    }
  }
  EXPECT_EQ(h_rows, c.h_rows);
  EXPECT_EQ(s_rows, c.s_rows);

  std::int64_t h_cols = 0;
  std::int64_t s_cols = 0;
  for (std::size_t y = 0; y < ny; ++y) {
    const std::int64_t comp = c.col_component[y];
    if (c.col_class[y] == DmBlock::kVertical) {
      ASSERT_GE(comp, 0) << "V col " << y << " without a component";
      ASSERT_LT(comp, comps);
      cols_in[static_cast<std::size_t>(comp)] += 1;
      if (!m0.is_matched_y(static_cast<vid_t>(y))) {
        unmatched_cols[static_cast<std::size_t>(comp)] += 1;
      }
    } else {
      ASSERT_EQ(comp, -1) << "non-V col " << y << " with a component";
      h_cols += c.col_class[y] == DmBlock::kHorizontal ? 1 : 0;
      s_cols += c.col_class[y] == DmBlock::kSquare ? 1 : 0;
    }
  }
  EXPECT_EQ(h_cols, c.h_cols);
  EXPECT_EQ(s_cols, c.s_cols);

  // Closure: every neighbor of a V row is V, in the SAME component --
  // that is what makes blocks independent. Matched pairs co-travel
  // across every class.
  for (vid_t x = 0; x < g.num_x(); ++x) {
    if (c.row_class[static_cast<std::size_t>(x)] == DmBlock::kVertical) {
      for (const vid_t y : g.neighbors_of_x(x)) {
        ASSERT_EQ(c.col_class[static_cast<std::size_t>(y)],
                  DmBlock::kVertical)
            << "edge (" << x << "," << y << ") leaves V";
        ASSERT_EQ(c.col_component[static_cast<std::size_t>(y)],
                  c.row_component[static_cast<std::size_t>(x)])
            << "edge (" << x << "," << y << ") crosses components";
      }
    }
    const vid_t mate = m0.mate_of_x(x);
    if (mate != kInvalidVertex) {
      ASSERT_EQ(static_cast<int>(c.row_class[static_cast<std::size_t>(x)]),
                static_cast<int>(c.col_class[static_cast<std::size_t>(mate)]))
          << "matched pair (" << x << "," << mate << ") straddles classes";
      ASSERT_EQ(c.row_component[static_cast<std::size_t>(x)],
                c.col_component[static_cast<std::size_t>(mate)])
          << "matched pair (" << x << "," << mate << ") straddles components";
    }
  }

  // Per-component tallies agree with a recount from the label arrays.
  for (std::int64_t i = 0; i < comps; ++i) {
    const shard::ShardComponent& comp =
        c.components[static_cast<std::size_t>(i)];
    EXPECT_EQ(comp.rows, rows_in[static_cast<std::size_t>(i)]) << "comp " << i;
    EXPECT_EQ(comp.cols, cols_in[static_cast<std::size_t>(i)]) << "comp " << i;
    EXPECT_EQ(comp.edges, edges_in[static_cast<std::size_t>(i)])
        << "comp " << i;
    EXPECT_EQ(comp.matched, matched[static_cast<std::size_t>(i)])
        << "comp " << i;
    EXPECT_EQ(comp.unmatched_rows,
              unmatched_rows[static_cast<std::size_t>(i)])
        << "comp " << i;
    EXPECT_EQ(comp.unmatched_cols,
              unmatched_cols[static_cast<std::size_t>(i)])
        << "comp " << i;
    EXPECT_GT(comp.rows, 0) << "empty component " << i;
    EXPECT_EQ(comp.solvable(),
              comp.unmatched_rows > 0 && comp.unmatched_cols > 0);
  }
}

TEST_P(ShardProperties, ClassificationInvariantsOnAnyStart) {
  for (const BipartiteGraph& g : fuzz_corpus(GetParam() + 10)) {
    for (const Matching& m0 : initial_matchings(g, GetParam())) {
      const shard::ShardClassification c = shard::classify_shards(g, m0);
      ASSERT_FALSE(c.aborted);
      check_classification_invariants(g, m0, c);
    }
  }
}

// ---------------------------------------------------------------------
// Theorem 3: augmenting-path confinement. Solving each solvable block
// to maximum recovers exactly the global deficiency.
// ---------------------------------------------------------------------

TEST_P(ShardProperties, BlockSolvesRecoverGlobalMaximum) {
  for (const BipartiteGraph& g : fuzz_corpus(GetParam() + 20)) {
    const std::int64_t nu = hk_cardinality(g);
    for (const Matching& m0 : initial_matchings(g, GetParam() + 1)) {
      const shard::ShardClassification c = shard::classify_shards(g, m0);
      ASSERT_FALSE(c.aborted);
      const std::vector<shard::ShardBlock> blocks =
          shard::extract_blocks(g, m0, c);

      Matching stitched = m0;
      std::int64_t solved_total = 0;
      for (const shard::ShardBlock& block : blocks) {
        // Block extraction invariants: ids sorted, shapes consistent,
        // initial matching projects m0.
        const shard::ShardComponent& comp =
            c.components[static_cast<std::size_t>(block.component)];
        ASSERT_EQ(static_cast<std::int64_t>(block.x_ids.size()), comp.rows);
        ASSERT_EQ(static_cast<std::int64_t>(block.y_ids.size()), comp.cols);
        ASSERT_EQ(block.graph.num_edges(), comp.edges);
        ASSERT_EQ(block.initial.cardinality(), comp.matched);

        Matching local = block.initial;
        hopcroft_karp(block.graph, local);
        solved_total += local.cardinality();
        shard::stitch_block(block, local, stitched);
      }
      std::int64_t frozen = m0.cardinality();
      for (const shard::ShardBlock& block : blocks) {
        frozen -= c.components[static_cast<std::size_t>(block.component)]
                      .matched;
      }
      EXPECT_EQ(frozen + solved_total, nu);
      EXPECT_EQ(stitched.cardinality(), nu);
      EXPECT_TRUE(is_valid_matching(g, stitched));
      EXPECT_TRUE(is_maximum_matching(g, stitched));
    }
  }
}

TEST_P(ShardProperties, ExtractStitchRoundTrip) {
  for (const BipartiteGraph& g : fuzz_corpus(GetParam() + 30)) {
    const Matching m0 = greedy_maximal(g);
    const shard::ShardClassification c = shard::classify_shards(g, m0);
    ASSERT_FALSE(c.aborted);
    Matching rebuilt = m0;
    for (const shard::ShardBlock& block : shard::extract_blocks(g, m0, c)) {
      // Stitching the unsolved projection back must be the identity.
      shard::stitch_block(block, block.initial, rebuilt);
    }
    for (vid_t x = 0; x < g.num_x(); ++x) {
      ASSERT_EQ(rebuilt.mate_of_x(x), m0.mate_of_x(x)) << "row " << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardProperties,
                         ::testing::Values(41, 42, 43));

// ---------------------------------------------------------------------
// Payoff-gate abort semantics.
// ---------------------------------------------------------------------

TEST(ShardGate, AbortLeavesOnlyTheFlagUsable) {
  const BipartiteGraph g = islands(7);
  const Matching m0 = greedy_maximal(g);
  ASSERT_LT(m0.cardinality(), hk_cardinality(g))
      << "fixture must be deficient for the gate to have anything to do";
  // Cap of one edge: the first discovered component outgrows it.
  const shard::ShardClassification c = shard::classify_shards(g, m0, 1);
  EXPECT_TRUE(c.aborted);
  EXPECT_TRUE(c.components.empty());
  // The seed pre-scan aborts before allocating the label arrays.
  EXPECT_TRUE(c.row_class.empty());
  EXPECT_TRUE(c.col_class.empty());

  // Unlimited cap on the same input: full classification.
  const shard::ShardClassification full = shard::classify_shards(g, m0, 0);
  EXPECT_FALSE(full.aborted);
  EXPECT_GT(full.solvable_blocks(), 0);

  // A cap comfortably above every component: identical to unlimited.
  const shard::ShardClassification wide =
      shard::classify_shards(g, m0, g.num_edges());
  ASSERT_FALSE(wide.aborted);
  EXPECT_EQ(wide.solvable_blocks(), full.solvable_blocks());
  EXPECT_EQ(wide.components.size(), full.components.size());
}

TEST(ShardGate, ShapeMismatchThrows) {
  const BipartiteGraph g = islands(8);
  EXPECT_THROW(shard::classify_shards(g, Matching(1, 1)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Engine driver: run_sharded vs run_reduced across the whole registry.
// ---------------------------------------------------------------------

TEST(RunSharded, MatchesUnshardedAcrossRegistry) {
  // 32 small islands keep every component under the engine's m/16
  // payoff cap, so these runs go through extract/solve/stitch rather
  // than the monolithic fallback.
  const BipartiteGraph g = islands(9, 32, 48, 48);
  const std::int64_t nu = hk_cardinality(g);
  for (const engine::SolverInfo& solver : engine::solver_registry()) {
    for (const std::string init : {"none", "rgreedy"}) {
      RunConfig config;
      config.seed = 5;
      config.check_invariants = true;
      config.shard = ShardMode::kDm;
      Matching sharded;
      const RunStats stats =
          engine::run_sharded(solver.name, init, g, sharded, config);
      ASSERT_EQ(sharded.cardinality(), nu) << solver.name << " init=" << init;
      ASSERT_TRUE(is_maximum_matching(g, sharded)) << solver.name;
      ASSERT_EQ(stats.final_cardinality, nu) << solver.name;
      ASSERT_TRUE(stats.shard.collected) << solver.name;

      config.shard = ShardMode::kNone;
      Matching plain;
      const RunStats base =
          engine::run_reduced(solver.name, init, g, plain, config);
      ASSERT_EQ(base.final_cardinality, nu) << solver.name;
      ASSERT_EQ(plain.cardinality(), sharded.cardinality()) << solver.name;
    }
  }
}

TEST(RunSharded, ComposesWithReduce) {
  // Sparse graph so the degree-1 pre-pass actually fires, plus island
  // structure so sharding extracts blocks from the kernel.
  const BipartiteGraph g = islands(10, 32, 64, 64, 1.8);
  const std::int64_t nu = hk_cardinality(g);
  RunConfig config;
  config.seed = 3;
  config.reduce = ReduceMode::kDegree1;
  config.shard = ShardMode::kDm;
  config.check_invariants = true;
  Matching m;
  const RunStats stats = engine::run_sharded("graft", "greedy", g, m, config);
  EXPECT_EQ(m.cardinality(), nu);
  EXPECT_TRUE(is_maximum_matching(g, m));
  EXPECT_EQ(stats.final_cardinality, nu);
  EXPECT_TRUE(stats.reduce.collected);
  EXPECT_TRUE(stats.shard.collected);
}

TEST(RunSharded, SaturatedStartSkipsTheSolve) {
  // A graph whose greedy matching saturates one side: run_sharded must
  // return immediately with the maximality certificate, zero blocks.
  EdgeList list;
  list.nx = 3;
  list.ny = 5;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 5; ++y) list.edges.push_back({x, y});
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  RunConfig config;
  config.shard = ShardMode::kDm;
  Matching m;
  const RunStats stats = engine::run_sharded("hk", "greedy", g, m, config);
  EXPECT_EQ(stats.final_cardinality, 3);
  EXPECT_TRUE(stats.shard.collected);
  EXPECT_EQ(stats.shard.blocks_total, 0);
  EXPECT_FALSE(stats.shard.fallback);
  EXPECT_TRUE(is_maximum_matching(g, m));
}

// Exhaustive small graphs through the driver: every bipartite graph on
// up to 3x3 vertices (every degenerate shape), rotating through the
// solver registry, sharded run == independent Kuhn-style oracle.
TEST(RunSharded, ExhaustiveSmallGraphs) {
  const auto solvers = engine::solver_registry();
  std::size_t index = 0;
  for (const auto& [nx, ny] :
       {std::tuple<int, int>{2, 2}, {3, 2}, {2, 3}, {3, 3}}) {
    const int bits = nx * ny;
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << bits);
         ++mask, ++index) {
      EdgeList list;
      list.nx = nx;
      list.ny = ny;
      for (int bit = 0; bit < bits; ++bit) {
        if ((mask >> bit) & 1u) {
          list.edges.push_back({bit / ny, bit % ny});
        }
      }
      const BipartiteGraph g = BipartiteGraph::from_edges(list);
      const std::int64_t nu = hk_cardinality(g);
      const engine::SolverInfo& solver = solvers[index % solvers.size()];
      RunConfig config;
      config.shard = ShardMode::kDm;
      config.check_invariants = true;
      Matching m;
      const RunStats stats =
          engine::run_sharded(solver.name, "greedy", g, m, config);
      ASSERT_EQ(m.cardinality(), nu)
          << solver.name << " nx=" << nx << " ny=" << ny << " mask=" << mask;
      ASSERT_EQ(stats.final_cardinality, nu) << solver.name;
      ASSERT_TRUE(is_maximum_matching(g, m)) << solver.name;
    }
  }
}

// ---------------------------------------------------------------------
// Strict JSON for the "shard" RunStats block.
// ---------------------------------------------------------------------

TEST(RunStatsJson, ShardBlockIsStrictlyValid) {
  // 32 blocks: each island is ~m/32 edges, comfortably under the
  // engine's m/16 payoff cap, so the stitched path actually runs.
  const BipartiteGraph g = islands(11, 32, 64, 64);

  obs::arm();
  RunConfig config;
  config.seed = 2;
  config.shard = ShardMode::kDm;
  Matching m;
  const RunStats stats = engine::run_sharded("graft", "rgreedy", g, m, config);
  obs::disarm();

  ASSERT_TRUE(stats.shard.collected);
  ASSERT_GT(stats.shard.blocks_solved, 0)
      << "fixture must actually exercise the stitched path";
  const std::string json = run_stats_json(stats);
  std::string error;
  EXPECT_TRUE(testing::json_valid(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"shard\":{\"mode\":\"dm\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"blocks_solved\":"), std::string::npos);
  EXPECT_NE(json.find("\"blocks_frozen\":"), std::string::npos);
  EXPECT_NE(json.find("\"frozen_matched\":"), std::string::npos);
  EXPECT_NE(json.find("\"decompose_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"stitch_seconds\":"), std::string::npos);

  // Non-finite timings inside the shard block must stay valid JSON with
  // no nan/inf literals leaking through.
  RunStats degenerate = stats;
  degenerate.shard.decompose_seconds =
      std::numeric_limits<double>::quiet_NaN();
  degenerate.shard.extract_seconds = std::numeric_limits<double>::infinity();
  degenerate.shard.solve_seconds = -std::numeric_limits<double>::infinity();
  const std::string bad = run_stats_json(degenerate);
  EXPECT_TRUE(testing::json_valid(bad, &error)) << error << "\n" << bad;
  EXPECT_EQ(bad.find("nan"), std::string::npos);
  EXPECT_EQ(bad.find("inf"), std::string::npos);

  // No shard run, no shard key.
  RunStats plain;
  const std::string without = run_stats_json(plain);
  EXPECT_TRUE(testing::json_valid(without, &error)) << error;
  EXPECT_EQ(without.find("\"shard\""), std::string::npos);

  // A fallback run still emits a complete, strictly valid block.
  WebCrawlParams wp;
  wp.nx = 800;
  wp.ny = 400;
  wp.avg_degree = 3.0;
  wp.gamma = 1.9;
  wp.stub_fraction = 0.6;
  wp.hub_count = 12;
  wp.seed = 3;
  const BipartiteGraph web = generate_webcrawl(wp);
  RunConfig fb_config;
  fb_config.shard = ShardMode::kDm;
  Matching fb_m;
  const RunStats fb =
      engine::run_sharded("graft", "rgreedy", web, fb_m, fb_config);
  ASSERT_TRUE(fb.shard.collected);
  const std::string fb_json = run_stats_json(fb);
  EXPECT_TRUE(testing::json_valid(fb_json, &error)) << error << "\n"
                                                    << fb_json;
  EXPECT_NE(fb_json.find("\"fallback\":"), std::string::npos) << fb_json;
}

}  // namespace
}  // namespace graftmatch
