// Parameterized property sweep: EVERY maximum-matching algorithm, on
// EVERY suite family, from EVERY initializer, across seeds, must produce
// a valid matching whose cardinality equals the Hopcroft-Karp oracle and
// which passes the independent Koenig certificate.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch {
namespace {

enum class Algo { kGraft, kGraftSerial, kMsBfs, kPF, kPR, kHK, kSSBFS, kSSDFS };
enum class Init { kNone, kGreedy, kRandomGreedy, kKarpSipser, kParallelKS };

std::string to_string(Algo algo) {
  switch (algo) {
    case Algo::kGraft: return "graft";
    case Algo::kGraftSerial: return "graft1t";
    case Algo::kMsBfs: return "msbfs";
    case Algo::kPF: return "pf";
    case Algo::kPR: return "pr";
    case Algo::kHK: return "hk";
    case Algo::kSSBFS: return "ssbfs";
    case Algo::kSSDFS: return "ssdfs";
  }
  return "?";
}

std::string to_string(Init init) {
  switch (init) {
    case Init::kNone: return "none";
    case Init::kGreedy: return "greedy";
    case Init::kRandomGreedy: return "rgreedy";
    case Init::kKarpSipser: return "ks";
    case Init::kParallelKS: return "pks";
  }
  return "?";
}

RunStats run_algorithm(Algo algo, const BipartiteGraph& g, Matching& m) {
  RunConfig config;
  switch (algo) {
    case Algo::kGraft:
      config.threads = 4;
      return ms_bfs_graft(g, m, config);
    case Algo::kGraftSerial:
      config.threads = 1;
      return ms_bfs_graft(g, m, config);
    case Algo::kMsBfs:
      return ms_bfs(g, m);
    case Algo::kPF:
      config.threads = 4;
      return pothen_fan(g, m, config);
    case Algo::kPR:
      config.threads = 2;
      return push_relabel(g, m, config);
    case Algo::kHK:
      return hopcroft_karp(g, m);
    case Algo::kSSBFS:
      return ss_bfs(g, m);
    case Algo::kSSDFS:
      return ss_dfs(g, m);
  }
  return {};
}

Matching make_initial(Init init, const BipartiteGraph& g,
                      std::uint64_t seed) {
  switch (init) {
    case Init::kNone: return Matching(g.num_x(), g.num_y());
    case Init::kGreedy: return greedy_maximal(g);
    case Init::kRandomGreedy: return randomized_greedy(g, seed);
    case Init::kKarpSipser: return karp_sipser(g, seed);
    case Init::kParallelKS: return parallel_karp_sipser(g, seed, 4);
  }
  return Matching(g.num_x(), g.num_y());
}

// ---------------------------------------------------------------------
// Sweep 1: algorithm x suite instance (randomized-greedy init).

using AlgoInstance = std::tuple<Algo, std::string>;

class AlgorithmOnSuite : public ::testing::TestWithParam<AlgoInstance> {};

TEST_P(AlgorithmOnSuite, ReachesVerifiedMaximum) {
  const auto& [algo, instance_name] = GetParam();
  const BipartiteGraph g = suite_instance(instance_name).factory(0.01, 7);
  const std::int64_t expected = maximum_matching_cardinality(g);

  Matching m = randomized_greedy(g, 11);
  const RunStats stats = run_algorithm(algo, g, m);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_TRUE(is_maximum_matching(g, m));
  EXPECT_EQ(m.cardinality(), expected);
  EXPECT_EQ(stats.final_cardinality, expected);
  EXPECT_EQ(stats.augmentations,
            stats.final_cardinality - stats.initial_cardinality);
}

std::vector<AlgoInstance> algo_instance_grid() {
  std::vector<AlgoInstance> grid;
  for (const Algo algo : {Algo::kGraft, Algo::kGraftSerial, Algo::kMsBfs,
                          Algo::kPF, Algo::kPR, Algo::kHK, Algo::kSSBFS,
                          Algo::kSSDFS}) {
    for (const SuiteInstance& instance : benchmark_suite()) {
      grid.emplace_back(algo, instance.name);
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmOnSuite, ::testing::ValuesIn(algo_instance_grid()),
    [](const ::testing::TestParamInfo<AlgoInstance>& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_" +
                         std::get<1>(info.param);
      for (char& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Sweep 2: initializer x seed on one instance per class; every
// initializer must be a valid maximal matching and lead MS-BFS-Graft to
// the same maximum.

using InitSeed = std::tuple<Init, std::uint64_t, std::string>;

class InitializerSweep : public ::testing::TestWithParam<InitSeed> {};

TEST_P(InitializerSweep, InitializesAndConverges) {
  const auto& [init, seed, instance_name] = GetParam();
  const BipartiteGraph g = suite_instance(instance_name).factory(0.008, seed);
  const std::int64_t expected = maximum_matching_cardinality(g);

  Matching m = make_initial(init, g, seed);
  EXPECT_TRUE(is_valid_matching(g, m));
  if (init != Init::kNone) {
    EXPECT_TRUE(is_maximal_matching(g, m)) << "initializer not maximal";
    EXPECT_GE(2 * m.cardinality(), expected)
        << "maximal matching below half of maximum";
  }
  ms_bfs_graft(g, m);
  EXPECT_EQ(m.cardinality(), expected);
  EXPECT_TRUE(is_maximum_matching(g, m));
}

std::vector<InitSeed> init_seed_grid() {
  std::vector<InitSeed> grid;
  for (const Init init : {Init::kNone, Init::kGreedy, Init::kRandomGreedy,
                          Init::kKarpSipser, Init::kParallelKS}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      for (const char* instance :
           {"kkt_power-like", "cit-patents-like", "wikipedia-like"}) {
        grid.emplace_back(init, seed, instance);
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InitializerSweep, ::testing::ValuesIn(init_seed_grid()),
    [](const ::testing::TestParamInfo<InitSeed>& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_s" +
                         std::to_string(std::get<1>(info.param)) + "_" +
                         std::get<2>(info.param);
      for (char& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Sweep 3: alpha sensitivity -- any alpha > 1 must leave results exact.

class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, CorrectForAllAlpha) {
  const double alpha = GetParam();
  const BipartiteGraph g = suite_instance("web-google-like").factory(0.01, 5);
  const std::int64_t expected = maximum_matching_cardinality(g);
  RunConfig config;
  config.alpha = alpha;
  Matching m = randomized_greedy(g, 5);
  ms_bfs_graft(g, m, config);
  EXPECT_EQ(m.cardinality(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AlphaSweep,
                         ::testing::Values(1.1, 2.0, 3.0, 5.0, 8.0, 16.0,
                                           64.0, 1024.0));

// ---------------------------------------------------------------------
// Sweep 4: thread counts (including oversubscription) keep every
// parallel algorithm exact.

class ThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadSweep, ParallelAlgorithmsExact) {
  const int threads = GetParam();
  const BipartiteGraph g = suite_instance("copapers-like").factory(0.01, 2);
  const std::int64_t expected = maximum_matching_cardinality(g);

  RunConfig config;
  config.threads = threads;

  Matching m1 = randomized_greedy(g, 3);
  ms_bfs_graft(g, m1, config);
  EXPECT_EQ(m1.cardinality(), expected) << "graft threads=" << threads;

  Matching m2 = randomized_greedy(g, 3);
  pothen_fan(g, m2, config);
  EXPECT_EQ(m2.cardinality(), expected) << "pf threads=" << threads;

  Matching m3 = randomized_greedy(g, 3);
  push_relabel(g, m3, config);
  EXPECT_EQ(m3.cardinality(), expected) << "pr threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThreadSweep, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace graftmatch
