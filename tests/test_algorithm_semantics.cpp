// Final semantic-coverage batch: algorithm behaviors that the unit and
// property tests do not pin down directly -- monotonicity, idempotence,
// stats determinism, and degenerate shapes (complete bipartite, stars,
// chains, unbalanced parts).
#include <gtest/gtest.h>

#include <vector>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch {
namespace {

BipartiteGraph complete_bipartite(vid_t nx, vid_t ny) {
  EdgeList list;
  list.nx = nx;
  list.ny = ny;
  for (vid_t x = 0; x < nx; ++x) {
    for (vid_t y = 0; y < ny; ++y) list.edges.push_back({x, y});
  }
  return BipartiteGraph::from_edges(list);
}

BipartiteGraph long_chain(vid_t k) {
  // x0-y0-x1-y1-...-x(k-1)-y(k-1): forces a single augmenting path of
  // length 2k-1 when the matching starts "shifted".
  EdgeList list;
  list.nx = k;
  list.ny = k;
  for (vid_t i = 0; i < k; ++i) {
    list.edges.push_back({i, i});
    if (i + 1 < k) list.edges.push_back({i + 1, i});
  }
  return BipartiteGraph::from_edges(list);
}

TEST(Semantics, CompleteBipartiteMatchesSmallerSide) {
  for (const auto& [nx, ny] : std::vector<std::pair<vid_t, vid_t>>{
           {5, 9}, {9, 5}, {7, 7}, {1, 20}, {20, 1}}) {
    const BipartiteGraph g = complete_bipartite(nx, ny);
    Matching m(nx, ny);
    ms_bfs_graft(g, m);
    EXPECT_EQ(m.cardinality(), std::min(nx, ny)) << nx << "x" << ny;
  }
}

TEST(Semantics, LongestPossibleAugmentingPath) {
  // Adversarial shifted start: match x(i+1)-y(i) everywhere, leaving x0
  // and y(k-1) unmatched; the ONLY augmenting path uses all 2k-1 edges.
  constexpr vid_t k = 500;
  const BipartiteGraph g = long_chain(k);
  Matching m(k, k);
  for (vid_t i = 0; i + 1 < k; ++i) m.match(i + 1, i);
  ASSERT_TRUE(is_valid_matching(g, m));

  RunConfig config;
  config.collect_path_histogram = true;
  const RunStats stats = ms_bfs_graft(g, m, config);
  EXPECT_EQ(m.cardinality(), k);
  EXPECT_EQ(stats.augmentations, 1);
  EXPECT_EQ(stats.total_path_edges, 2 * k - 1);
  ASSERT_EQ(stats.path_length_histogram.size(), 1u);
  EXPECT_EQ(stats.path_length_histogram.begin()->first, 2 * k - 1);
}

TEST(Semantics, LongChainSolvedByAllAlgorithms) {
  constexpr vid_t k = 200;
  const BipartiteGraph g = long_chain(k);
  const auto check = [&](auto&& algorithm, const char* name) {
    Matching m(k, k);
    for (vid_t i = 0; i + 1 < k; ++i) m.match(i + 1, i);
    algorithm(g, m);
    EXPECT_EQ(m.cardinality(), k) << name;
  };
  check([](const auto& g2, auto& m) { return ms_bfs_graft(g2, m); }, "graft");
  check([](const auto& g2, auto& m) { return pothen_fan(g2, m); }, "pf");
  check([](const auto& g2, auto& m) { return push_relabel(g2, m); }, "pr");
  check([](const auto& g2, auto& m) { return hopcroft_karp(g2, m); }, "hk");
  check([](const auto& g2, auto& m) { return ss_bfs(g2, m); }, "ssbfs");
  check([](const auto& g2, auto& m) { return ss_dfs(g2, m); }, "ssdfs");
}

TEST(Semantics, CardinalityNeverDecreases) {
  // Every algorithm only augments: feed progressively better matchings
  // and assert monotone output.
  WebCrawlParams params;
  params.nx = params.ny = 1500;
  const BipartiteGraph g = generate_webcrawl(params);
  std::int64_t previous = -1;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Matching m = randomized_greedy(g, seed);
    const std::int64_t before = m.cardinality();
    ms_bfs_graft(g, m);
    EXPECT_GE(m.cardinality(), before);
    if (previous >= 0) {
      EXPECT_EQ(m.cardinality(), previous);
    }
    previous = m.cardinality();
  }
}

TEST(Semantics, RunningTwiceIsIdempotent) {
  ChungLuParams params;
  params.nx = params.ny = 1200;
  const BipartiteGraph g = generate_chung_lu(params);
  Matching m = greedy_maximal(g);
  ms_bfs_graft(g, m);
  const Matching settled = m;
  for (int round = 0; round < 3; ++round) {
    const RunStats stats = ms_bfs_graft(g, m);
    EXPECT_EQ(stats.augmentations, 0);
    EXPECT_EQ(m, settled);
  }
}

TEST(Semantics, SerialStatsFullyDeterministic) {
  const BipartiteGraph g = suite_instance("wb-edu-like").factory(0.01, 3);
  RunConfig config;
  config.threads = 1;
  config.collect_frontier_trace = true;
  config.collect_phase_stats = true;
  config.collect_path_histogram = true;

  Matching m1 = randomized_greedy(g, 7);
  Matching m2 = randomized_greedy(g, 7);
  const RunStats a = ms_bfs_graft(g, m1, config);
  const RunStats b = ms_bfs_graft(g, m2, config);
  EXPECT_EQ(a.edges_traversed, b.edges_traversed);
  EXPECT_EQ(a.phases, b.phases);
  EXPECT_EQ(a.path_length_histogram, b.path_length_histogram);
  ASSERT_EQ(a.frontier_trace.size(), b.frontier_trace.size());
  for (std::size_t i = 0; i < a.frontier_trace.size(); ++i) {
    EXPECT_EQ(a.frontier_trace[i].frontier_size,
              b.frontier_trace[i].frontier_size);
    EXPECT_EQ(a.frontier_trace[i].bottom_up, b.frontier_trace[i].bottom_up);
  }
  ASSERT_EQ(a.phase_stats.size(), b.phase_stats.size());
  for (std::size_t i = 0; i < a.phase_stats.size(); ++i) {
    EXPECT_EQ(a.phase_stats[i].edges, b.phase_stats[i].edges);
    EXPECT_EQ(a.phase_stats[i].grafted, b.phase_stats[i].grafted);
  }
}

TEST(Semantics, UnbalancedPartsBothOrientations) {
  // 10 rows, 100k columns and vice versa: index math must not assume
  // square shapes anywhere.
  ErdosRenyiParams params;
  params.nx = 10;
  params.ny = 100000;
  params.edges = 500;
  params.seed = 2;
  const BipartiteGraph wide = generate_erdos_renyi(params);
  Matching m1(wide.num_x(), wide.num_y());
  ms_bfs_graft(wide, m1);
  EXPECT_TRUE(is_maximum_matching(wide, m1));

  const BipartiteGraph tall = transpose(wide);
  Matching m2(tall.num_x(), tall.num_y());
  ms_bfs_graft(tall, m2);
  EXPECT_EQ(m1.cardinality(), m2.cardinality());
}

TEST(Semantics, SsAlgorithmsRespectExistingMatching) {
  // Starting from a maximum matching, the SS searches must not disturb
  // any existing pair (they only augment).
  const BipartiteGraph g = complete_bipartite(6, 6);
  Matching m(6, 6);
  for (vid_t i = 0; i < 6; ++i) m.match(i, 5 - i);
  const Matching before = m;
  ss_bfs(g, m);
  EXPECT_EQ(m, before);
  ss_dfs(g, m);
  EXPECT_EQ(m, before);
}

TEST(Semantics, StatsAlgorithmNamesStable) {
  const BipartiteGraph g = complete_bipartite(3, 3);
  Matching m(3, 3);
  EXPECT_EQ(pothen_fan(g, m).algorithm, "Pothen-Fan");
  m = Matching(3, 3);
  EXPECT_EQ(push_relabel(g, m).algorithm, "PR");
  m = Matching(3, 3);
  EXPECT_EQ(hopcroft_karp(g, m).algorithm, "HK");
  m = Matching(3, 3);
  EXPECT_EQ(ss_bfs(g, m).algorithm, "SS-BFS");
  m = Matching(3, 3);
  EXPECT_EQ(ss_dfs(g, m).algorithm, "SS-DFS");
}

}  // namespace
}  // namespace graftmatch
