// Dynamic-matcher stress harness (ctest labels: stress dynamic).
//
// Several DynamicMatchers churning concurrently in one process, each
// owned by its own SessionContext on its own host thread, with
// randomized OpenMP widths for the full-re-solve path, randomized
// per-session yield-jitter overrides, and traces armed on some
// sessions. The matcher itself is single-owner serial; what this
// harness proves under ThreadSanitizer (cmake -DGRAFTMATCH_SAN=tsan;
// ctest -L "stress|dynamic", suppression-free) is that the engine
// re-solves triggered from CONCURRENT matchers share nothing: no
// cross-session traffic through probe atomics, workspace pools, or
// trace rings, while the differential oracle still holds per session.
//
// Every randomized trial derives its seed from a fixed master seed and
// prints it on failure so CI logs are enough to replay the schedule's
// inputs.
#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/dynamic/dynamic_matcher.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {
namespace {

constexpr std::uint64_t kMasterSeed = 0xD1AC0517ULL;

class StressEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { stress::set_yield_period(16); }
  void TearDown() override { stress::set_yield_period(0); }
};
[[maybe_unused]] const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new StressEnvironment);

int random_width(Xoshiro256& rng) {
  const int hw = omp_get_num_procs();
  return 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(2 * hw)));
}

std::int64_t hk_cardinality(const BipartiteGraph& g) {
  Matching m(g.num_x(), g.num_y());
  hopcroft_karp(g, m);
  return m.cardinality();
}

// S sessions, each churning its own DynamicMatcher while the staleness
// gate keeps punching batches through the parallel engine re-solve
// path at randomized widths. Cardinality is oracle-checked after every
// batch, per session.
TEST(DynamicStress, ConcurrentMatchersChurnIsolated) {
  constexpr int kSessions = 4;
  constexpr int kBatches = 14;

  std::atomic<int> wrong{0};
  std::vector<std::string> failures(kSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      const auto si = static_cast<std::size_t>(s);
      Xoshiro256 rng(kMasterSeed ^ static_cast<std::uint64_t>(s * 6151));
      SessionContext session;
      const bool armed = (s % 2) == 0;
      if (armed) session.trace().arm();
      if (s % 3 == 0) session.set_yield_period(4);
      else if (s % 3 == 1) session.clear_yield_period();
      else session.set_yield_period(0);

      ErdosRenyiParams params;
      params.nx = 300 + 40 * s;
      params.ny = 280 + 30 * s;
      params.edges = 1500 + 100 * s;
      params.seed = kMasterSeed + static_cast<std::uint64_t>(s);
      const BipartiteGraph g = generate_erdos_renyi(params);

      dynamic::DynamicConfig config;
      // Low staleness threshold: most trials cross it, so the engine
      // re-solve (the parallel region under test) fires repeatedly.
      config.staleness_delta_fraction = 0.02;
      config.compact_fraction = 0.1;
      config.run.threads = random_width(rng);
      config.run.seed = rng();
      dynamic::DynamicMatcher matcher(session, g, config);

      std::vector<Edge> live = g.to_edges().edges;
      std::vector<Edge> removed;
      for (int step = 0; step < kBatches; ++step) {
        std::vector<Edge> batch;
        const std::size_t want = 1 + rng.below(48);
        if (step % 2 == 0) {
          for (std::size_t k = 0; k < want && !live.empty(); ++k) {
            const std::size_t pick = rng.below(live.size());
            batch.push_back(live[pick]);
            removed.push_back(live[pick]);
            live[pick] = live.back();
            live.pop_back();
          }
          matcher.remove_edges(batch);
        } else {
          for (std::size_t k = 0; k < want; ++k) {
            if (!removed.empty() && rng.below(2) == 0) {
              batch.push_back(removed.back());
              removed.pop_back();
            } else {
              batch.push_back(
                  {static_cast<vid_t>(rng.below(
                       static_cast<std::uint64_t>(g.num_x()))),
                   static_cast<vid_t>(rng.below(
                       static_cast<std::uint64_t>(g.num_y())))});
            }
          }
          matcher.add_edges(batch);
          for (const Edge& e : batch) live.push_back(e);
        }
        const std::int64_t oracle = hk_cardinality(matcher.materialize());
        if (matcher.cardinality() != oracle) {
          wrong.fetch_add(1);
          failures[si] = "session " + std::to_string(s) + " step " +
                         std::to_string(step) + ": got " +
                         std::to_string(matcher.cardinality()) + " want " +
                         std::to_string(oracle) + " (seed " +
                         std::to_string(kMasterSeed) + ")";
          return;
        }
        if (session.workspaces().outstanding() != 0) {
          wrong.fetch_add(1);
          failures[si] = "leaked workspace lease";
          return;
        }
      }
      const RunStats stats = matcher.stats();
      if (!stats.dynamic.collected || stats.dynamic.batches != kBatches) {
        wrong.fetch_add(1);
        failures[si] = "dynamic counters wrong: batches=" +
                       std::to_string(stats.dynamic.batches);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  for (const auto& f : failures) {
    EXPECT_TRUE(f.empty()) << f;
  }
}

// Matchers churning while OTHER sessions hammer the engine directly:
// the re-solve path and plain engine runs interleave in one process.
TEST(DynamicStress, ChurnBesideForegroundSolves) {
  constexpr int kChurners = 2;
  constexpr int kSolvers = 2;

  ErdosRenyiParams params;
  params.nx = 400;
  params.ny = 380;
  params.edges = 2000;
  params.seed = kMasterSeed;
  const BipartiteGraph shared = generate_erdos_renyi(params);
  const std::int64_t oracle = hk_cardinality(shared);

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < kChurners; ++s) {
    threads.emplace_back([&, s] {
      Xoshiro256 rng(kMasterSeed ^ static_cast<std::uint64_t>(0x99 + s));
      SessionContext session;
      dynamic::DynamicConfig config;
      config.staleness_delta_fraction = 0.05;
      config.run.threads = random_width(rng);
      dynamic::DynamicMatcher matcher(session, shared, config);
      std::vector<Edge> removed;
      std::vector<Edge> live = shared.to_edges().edges;
      for (int step = 0; step < 10; ++step) {
        std::vector<Edge> batch;
        for (std::size_t k = 0; k < 24 && !live.empty(); ++k) {
          const std::size_t pick = rng.below(live.size());
          batch.push_back(live[pick]);
          live[pick] = live.back();
          live.pop_back();
          removed.push_back(batch.back());
        }
        matcher.remove_edges(batch);
        matcher.add_edges(batch);
        if (matcher.cardinality() != oracle) {
          wrong.fetch_add(1);
          return;
        }
      }
    });
  }
  for (int s = 0; s < kSolvers; ++s) {
    threads.emplace_back([&, s] {
      Xoshiro256 rng(kMasterSeed ^ static_cast<std::uint64_t>(0x777 + s));
      SessionContext session;
      for (int run = 0; run < 8; ++run) {
        RunConfig config;
        config.threads = random_width(rng);
        config.seed = rng();
        Matching m(shared.num_x(), shared.num_y());
        const RunStats stats =
            engine::run(session, "graft", "rgreedy", shared, m, config);
        if (stats.final_cardinality != oracle) {
          wrong.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace graftmatch
