// Concurrency stress harness (ctest label: stress).
//
// Drives the lock-free kernels -- frontier-queue flush, atomic flag
// claims, CAS tree ownership, parallel Karp-Sipser, and the full
// MS-BFS-Graft engine -- under randomized omp_set_num_threads and (when
// the library is compiled with GRAFTMATCH_STRESS_HOOKS) scheduling
// jitter injected inside the race windows themselves. Designed to run
// under ThreadSanitizer: `cmake -DGRAFTMATCH_SAN=tsan` then
// `ctest -L stress` (see docs/TESTING.md).
//
// Every randomized trial derives its seed from a fixed master seed via
// a splitmix64 stream and prints that seed on failure, so any CI log is
// enough to replay a failing schedule's inputs.
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/rmat.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/init/parallel_karp_sipser.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/prng.hpp"
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch {
namespace {

constexpr std::uint64_t kMasterSeed = 0x5712E55ULL;

/// Jitter with probability 1/16 at every hook when hooks are compiled
/// in (TSan / stress builds); a no-op in plain builds, where the same
/// tests still run as fast schedule-race checks.
class StressEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { stress::set_yield_period(16); }
  void TearDown() override { stress::set_yield_period(0); }
};
[[maybe_unused]] const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new StressEnvironment);

/// Random thread count in [1, 2 * hardware max]: oversubscription forces
/// preemption inside parallel regions, the cheapest scheduling fuzzer.
int random_thread_count(Xoshiro256& rng) {
  const int hw = omp_get_num_procs();
  return 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(2 * hw)));
}

TEST(ConcurrencyStress, FrontierQueueConcurrentProducersLoseNothing) {
  // Satellite check: thread-private buffers flushing into the shared
  // array at phase boundaries must neither lose nor duplicate vertices,
  // for uneven per-thread loads, across repeated phases on one queue.
  std::uint64_t stream = kMasterSeed;
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    const int threads = random_thread_count(rng);
    // Uneven loads: ~half the producers push far more than the rest,
    // and counts are not multiples of the local buffer capacity.
    const int items = 20000 + static_cast<int>(rng.below(50000));
    FrontierQueue<int> queue(static_cast<std::size_t>(items));

    for (int phase = 0; phase < 3; ++phase) {
      queue.clear();
      parallel_region(threads, [&] {
        auto handle = queue.handle();
#pragma omp for schedule(dynamic, 37)
        for (int i = 0; i < items; ++i) handle.push(i);
        handle.flush();  // phase boundary
      });
      ASSERT_EQ(queue.size(), static_cast<std::size_t>(items))
          << "trial seed " << seed << " phase " << phase;
      auto span = queue.items();
      std::vector<int> sorted(span.begin(), span.end());
      std::sort(sorted.begin(), sorted.end());
      for (int i = 0; i < items; ++i) {
        ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i)
            << "lost/duplicated vertex, trial seed " << seed << " phase "
            << phase;
      }
    }
  }
}

TEST(ConcurrencyStress, AtomicBitmapClaimsAreExactlyOnce) {
  // Every thread races to claim every flag (the Y-vertex visited bitmap
  // pattern): total successful claims must equal the flag count.
  std::uint64_t stream = kMasterSeed ^ 0xB17;
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    const int threads = random_thread_count(rng);
    const int flags_count = 5000 + static_cast<int>(rng.below(20000));
    std::vector<std::uint8_t> flags(static_cast<std::size_t>(flags_count), 0);
    std::int64_t claims = 0;
    parallel_region(threads, [&] {
      std::int64_t local_claims = 0;
      // No worksharing: every thread attempts every flag.
      for (int i = 0; i < flags_count; ++i) {
        if (claim_flag(flags[static_cast<std::size_t>(i)])) ++local_claims;
      }
      fetch_add_relaxed(claims, local_claims);
    });
    ASSERT_EQ(claims, flags_count) << "trial seed " << seed;
    ASSERT_TRUE(std::all_of(flags.begin(), flags.end(),
                            [](std::uint8_t f) { return f == 1; }))
        << "trial seed " << seed;
  }
}

TEST(ConcurrencyStress, CasTreeOwnershipHasUniqueWinners) {
  // The tree-grafting ownership pattern: threads race to set parent[v]
  // from kInvalidVertex to their own claim id via cas(). Exactly one
  // winner per vertex, and each thread's view of its wins must match
  // the final array (no lost updates, no double grants).
  std::uint64_t stream = kMasterSeed ^ 0xCA5;
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    const int threads = random_thread_count(rng);
    const int vertices = 4000 + static_cast<int>(rng.below(12000));
    std::vector<vid_t> parent(static_cast<std::size_t>(vertices),
                              kInvalidVertex);
    std::int64_t total_wins = 0;
    parallel_region(threads, [&] {
      const vid_t my_id = static_cast<vid_t>(omp_get_thread_num());
      std::vector<vid_t> my_wins;
      std::int64_t local_wins = 0;
      for (int v = 0; v < vertices; ++v) {
        auto& slot = parent[static_cast<std::size_t>(v)];
        if (relaxed_load(slot) != kInvalidVertex) continue;  // pre-check
        if (cas(slot, kInvalidVertex, my_id)) {
          my_wins.push_back(static_cast<vid_t>(v));
        }
      }
      local_wins += static_cast<std::int64_t>(my_wins.size());
      for (const vid_t v : my_wins) {
        // A granted claim must never be overwritten by another thread.
        if (relaxed_load(parent[static_cast<std::size_t>(v)]) != my_id) {
          local_wins += 1000000;  // poison the count; asserted below
        }
      }
      fetch_add_relaxed(total_wins, local_wins);
    });
    ASSERT_EQ(total_wins, vertices) << "trial seed " << seed;
    ASSERT_TRUE(std::none_of(parent.begin(), parent.end(),
                             [](vid_t p) { return p == kInvalidVertex; }))
        << "trial seed " << seed;
  }
}

TEST(ConcurrencyStress, ParallelKarpSipserStaysMaximalAndValid) {
  std::uint64_t stream = kMasterSeed ^ 0x4B5;
  for (int trial = 0; trial < 12; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    const int threads = random_thread_count(rng);
    ErdosRenyiParams params;
    params.nx = 1500;
    params.ny = 1400;
    params.edges = 7000;
    params.seed = seed;
    const BipartiteGraph g = generate_erdos_renyi(params);
    const Matching m = parallel_karp_sipser(g, seed, threads);
    ASSERT_EQ(validate_matching(g, m), "") << "trial seed " << seed;
    ASSERT_TRUE(is_maximal_matching(g, m))
        << "trial seed " << seed << " threads " << threads;
  }
}

// Same seed -> same cardinality, across 50 trials with a fresh random
// thread count each trial, against a serial Hopcroft-Karp reference.
// This is the paper's determinism claim for MS-BFS-Graft (the matching
// itself may differ run to run; its cardinality may not).
void determinism_trials(const BipartiteGraph& g, const char* label) {
  Matching reference_matching = karp_sipser(g, 11);
  hopcroft_karp(g, reference_matching);
  const std::int64_t reference = reference_matching.cardinality();

  std::uint64_t stream = kMasterSeed ^ 0xDE7;
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    RunConfig config;
    config.threads = random_thread_count(rng);
    config.direction_optimizing = rng.below(2) == 0;
    config.tree_grafting = rng.below(2) == 0;
    config.seed = 11;  // fixed algorithm seed: cardinality must not move
    Matching m = karp_sipser(g, 11);
    ms_bfs_graft(g, m, config);
    ASSERT_EQ(validate_matching(g, m), "")
        << label << " trial " << trial << " seed " << seed;
    ASSERT_EQ(m.cardinality(), reference)
        << label << " trial " << trial << " trial seed " << seed
        << " threads " << config.threads << " do "
        << config.direction_optimizing << " graft " << config.tree_grafting;
    ASSERT_TRUE(is_maximum_matching(g, m))
        << label << " trial " << trial << " trial seed " << seed;
  }
}

TEST(ConcurrencyStress, MsBfsGraftCardinalityDeterministic50TrialsRmat) {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8.0;
  params.seed = 42;
  determinism_trials(generate_rmat(params), "rmat");
}

TEST(ConcurrencyStress, MsBfsGraftCardinalityDeterministic50TrialsWeb) {
  WebCrawlParams params;
  params.nx = 1200;
  params.ny = 1200;
  params.stub_fraction = 0.6;
  params.hub_count = 48;
  params.seed = 42;
  determinism_trials(generate_webcrawl(params), "web");
}

TEST(ConcurrencyStress, FullEngineUnderOversubscriptionCertifies) {
  // End-to-end: heavy-tailed graph, maximum oversubscription, invariant
  // auditing on. Any dropped augmenting path fails the Koenig check.
  ChungLuParams params;
  params.nx = 2000;
  params.ny = 2000;
  params.avg_degree = 7.0;
  params.gamma = 2.0;
  params.max_degree = 256;
  params.seed = 5;
  const BipartiteGraph g = generate_chung_lu(params);
  std::uint64_t stream = kMasterSeed ^ 0xF11;
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    RunConfig config;
    config.threads = 2 * omp_get_num_procs();
    config.check_invariants = true;
    Matching m = parallel_karp_sipser(g, seed, config.threads);
    ms_bfs_graft(g, m, config);
    ASSERT_TRUE(is_maximum_matching(g, m)) << "trial seed " << seed;
  }
}

}  // namespace
}  // namespace graftmatch
