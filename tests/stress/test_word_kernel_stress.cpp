// Word-kernel stress harness (ctest label: stress).
//
// The word-granular bottom-up kernel claims 64 visited bits with one
// CAS (AtomicBitmap::claim_word) and falls back to per-bit claims when
// the CAS loop exhausts its retries under contention. The solver's
// word-per-thread schedule makes same-level contention rare, so this
// harness manufactures the contention directly: threads race
// overlapping masks at randomized widths (tail words included) under
// scheduling jitter, mixed word/bit granularity races, and full
// kernel=word engine runs at randomized thread counts -- all
// oracle-checked and designed to run suppression-free under
// ThreadSanitizer (`cmake -DGRAFTMATCH_SAN=tsan`, `ctest -L stress`).
//
// Every randomized trial derives its seed from a fixed master seed via
// a splitmix64 stream and prints it on failure.
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/gen/suite.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/epoch_array.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/prng.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch {
namespace {

constexpr std::uint64_t kMasterSeed = 0x30D1CA5ULL;

/// Jitter with probability 1/16 at every hook when hooks are compiled
/// in (TSan / stress builds); a no-op in plain builds, where the same
/// tests still run as fast schedule-race checks. The claim_word CAS
/// loop has a hook between its load and its compare_exchange, so the
/// jitter lands exactly inside the retry window.
class StressEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { stress::set_yield_period(16); }
  void TearDown() override { stress::set_yield_period(0); }
};
[[maybe_unused]] const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new StressEnvironment);

int random_thread_count(Xoshiro256& rng) {
  const int hw = omp_get_num_procs();
  return 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(2 * hw)));
}

TEST(WordKernelStress, RacingOverlappingMasksWinEachBitOnce) {
  // Every thread races claim_word over every word with its own random
  // mask. Exactly-once means: summed popcounts of all wins equals the
  // popcount of the final bitmap, and every won bit is inside the
  // winner's mask. Widths are randomized and deliberately non-multiples
  // of 64 so the tail word is always in play.
  std::uint64_t stream = kMasterSeed;
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    const int threads = random_thread_count(rng);
    const std::size_t width = 65 + static_cast<std::size_t>(rng.below(4031));
    AtomicBitmap bits;
    bits.reset(width);
    const std::size_t words = bits.word_count();

    std::int64_t total_won = 0;
    std::int64_t fallbacks = 0;
    parallel_region(threads, [&] {
      Xoshiro256 local_rng(seed ^
                           static_cast<std::uint64_t>(omp_get_thread_num()));
      std::int64_t local_won = 0;
      std::int64_t local_fallbacks = 0;
      // No worksharing: every thread attacks every word, twice, so the
      // second sweep races against saturated and half-claimed words.
      for (int sweep = 0; sweep < 2; ++sweep) {
        for (std::size_t w = 0; w < words; ++w) {
          const std::uint64_t mask = local_rng() | local_rng();  // ~75% dense
          bool fell_back = false;
          const std::uint64_t won = bits.claim_word(w, mask, &fell_back);
          ASSERT_EQ(won & ~mask, 0u)
              << "won a bit outside the mask, trial seed " << seed;
          local_won += std::popcount(won);
          if (fell_back) ++local_fallbacks;
        }
      }
      fetch_add_relaxed(total_won, local_won);
      fetch_add_relaxed(fallbacks, local_fallbacks);
    });

    std::int64_t set_bits = 0;
    for (std::size_t w = 0; w < words; ++w) {
      set_bits += std::popcount(bits.load_word(w));
    }
    ASSERT_EQ(total_won, set_bits)
        << "lost or double-granted claims, trial seed " << seed;
    RecordProperty("fallbacks", static_cast<int>(fallbacks));
  }
}

TEST(WordKernelStress, MixedWordAndBitGranularityStaysExactlyOnce) {
  // Half the threads claim whole words, half claim individual bits of
  // the same words -- the exact mix the kernel's contention fallback
  // produces. Total wins (counting bits) must equal final set bits.
  std::uint64_t stream = kMasterSeed ^ 0xB17;
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    const int threads = std::max(2, random_thread_count(rng));
    const std::size_t width = 64 * (8 + static_cast<std::size_t>(rng.below(56)));
    AtomicBitmap bits;
    bits.reset(width);
    const std::size_t words = bits.word_count();

    std::int64_t total_won = 0;
    parallel_region(threads, [&] {
      const int tid = omp_get_thread_num();
      Xoshiro256 local_rng(seed ^ static_cast<std::uint64_t>(tid) * 0x9E37ULL);
      std::int64_t local_won = 0;
      if (tid % 2 == 0) {
        for (std::size_t w = 0; w < words; ++w) {
          local_won += std::popcount(bits.claim_word(w, local_rng()));
        }
      } else {
        for (std::size_t i = 0; i < width; ++i) {
          if ((local_rng() & 1u) != 0 && bits.claim(i)) ++local_won;
        }
      }
      fetch_add_relaxed(total_won, local_won);
    });

    std::int64_t set_bits = 0;
    for (std::size_t w = 0; w < words; ++w) {
      set_bits += std::popcount(bits.load_word(w));
    }
    ASSERT_EQ(total_won, set_bits) << "trial seed " << seed;
  }
}

TEST(WordKernelStress, ForcedContentionExercisesFallbackCorrectly) {
  // All threads hammer ONE word with disjoint per-thread masks, round
  // after round. Disjointness makes the postcondition exact: every
  // thread must win precisely its own mask, whether the word-CAS
  // landed or the per-bit fallback finished the job. With up to 64
  // claimants per word and jitter inside the retry window, the
  // 4-attempt CAS budget does get exhausted here.
  std::uint64_t stream = kMasterSeed ^ 0xFA11;
  std::int64_t fallbacks = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    const int threads =
        2 + static_cast<int>(rng.below(
                static_cast<std::uint64_t>(2 * omp_get_num_procs())));
    const int claimants = std::min(threads, 64);
    const int bits_each = 64 / claimants;
    AtomicBitmap bits;
    bits.reset(64);
    parallel_region(threads, [&] {
      const int tid = omp_get_thread_num();
      if (tid < claimants) {
        // Thread t owns bit-lanes [t * bits_each, (t+1) * bits_each).
        std::uint64_t mask = 0;
        for (int b = 0; b < bits_each; ++b) {
          mask |= std::uint64_t{1} << (tid * bits_each + b);
        }
        bool fell_back = false;
        const std::uint64_t won = bits.claim_word(0, mask, &fell_back);
        ASSERT_EQ(won, mask)
            << "disjoint claimant lost its own bits, trial seed " << seed
            << " tid " << tid;
        if (fell_back) fetch_add_relaxed(fallbacks, std::int64_t{1});
      }
    });
    std::uint64_t expected = 0;
    for (int t = 0; t < claimants; ++t) {
      for (int b = 0; b < bits_each; ++b) {
        expected |= std::uint64_t{1} << (t * bits_each + b);
      }
    }
    ASSERT_EQ(bits.load_word(0), expected) << "trial seed " << seed;
  }
  // Whether the fallback fired is schedule-dependent; record it so a
  // TSan CI log shows the path was (usually) exercised.
  RecordProperty("fallbacks_across_trials", static_cast<int>(fallbacks));
}

TEST(WordKernelStress, WordKernelEngineRunsMatchOracleUnderJitter) {
  // End-to-end: kernel=word engine runs at randomized thread counts and
  // policies, oracle-checked every trial. Under TSan this is the leg
  // that would surface a racy scan->claim->attach interleaving.
  std::uint64_t stream = kMasterSeed ^ 0xE2E;
  const std::vector<std::string> instances = {"hugetrace-like",
                                              "copapers-like",
                                              "wikipedia-like"};
  const std::vector<DirectionPolicy> policies = {
      DirectionPolicy::kFixed, DirectionPolicy::kAdaptive,
      DirectionPolicy::kBottomUp};
  for (int trial = 0; trial < 9; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    const std::string& name = instances[trial % instances.size()];
    const BipartiteGraph g =
        suite_instance(name).factory(0.01, 100 + trial);
    const std::int64_t expected = maximum_matching_cardinality(g);
    RunConfig config;
    config.direction_policy = policies[static_cast<std::size_t>(
        rng.below(policies.size()))];
    config.bottom_up_kernel = BottomUpKernel::kWord;
    config.threads = random_thread_count(rng);
    Matching m = randomized_greedy(g, seed);
    const RunStats stats = ms_bfs_graft(g, m, config);
    ASSERT_EQ(stats.final_cardinality, expected)
        << name << " trial seed " << seed << " dirsel="
        << to_string(config.direction_policy)
        << " threads=" << config.threads;
    ASSERT_TRUE(is_valid_matching(g, m)) << "trial seed " << seed;
  }
}

}  // namespace
}  // namespace graftmatch
