// Sharded-solve concurrency stress (ctest labels: stress shard).
//
// The engine's pooled block solve runs one solver instance per host
// thread, each pinned to an OpenMP width of 1, pulling blocks off a
// shared atomic cursor. This harness drives that pool -- and the
// wide-block path next to it -- under randomized thread counts,
// oversubscription, and (in GRAFTMATCH_STRESS_HOOKS builds) scheduling
// jitter inside the runtime's race windows, with the Koenig audit on.
// Designed to run under ThreadSanitizer: `cmake -DGRAFTMATCH_SAN=tsan`
// then `ctest -L stress` (see docs/TESTING.md).
//
// Every randomized trial derives its seed from a fixed master seed via
// a splitmix64 stream and prints that seed on failure, so any CI log is
// enough to replay a failing schedule's inputs.
#include <gtest/gtest.h>
#include <omp.h>

#include <cstdint>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/gen/sbm.hpp"
#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/prng.hpp"
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch {
namespace {

constexpr std::uint64_t kMasterSeed = 0x5417DULL;

class StressEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { stress::set_yield_period(16); }
  void TearDown() override { stress::set_yield_period(0); }
};
[[maybe_unused]] const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new StressEnvironment);

int random_thread_count(Xoshiro256& rng) {
  const int hw = omp_get_num_procs();
  return 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(2 * hw)));
}

/// Many small islands: every component sits far under the engine's
/// payoff cap, so the run always takes the extract/solve/stitch path
/// and (with enough host threads) fills the one-thread-per-block pool.
BipartiteGraph many_islands(std::uint64_t seed, vid_t side = 48,
                            vid_t blocks = 48) {
  SbmParams params;
  params.rows_per_block = side;
  params.cols_per_block = side;
  params.blocks = blocks;
  params.in_degree = 3.0;
  params.out_degree = 0.0;
  params.seed = seed;
  return generate_sbm(params);
}

TEST(ShardStress, PooledBlockSolvesCertifyUnderRandomSchedules) {
  const BipartiteGraph g = many_islands(3);
  Matching reference(g.num_x(), g.num_y());
  hopcroft_karp(g, reference);
  const std::int64_t nu = reference.cardinality();

  std::uint64_t stream = kMasterSeed;
  for (int trial = 0; trial < 16; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    RunConfig config;
    config.threads = random_thread_count(rng);
    config.shard = ShardMode::kDm;
    config.seed = 1 + rng.below(1000);
    config.check_invariants = true;
    const char* const solvers[] = {"graft", "pf", "hk"};
    const std::string solver = solvers[rng.below(3)];
    const std::string init = rng.below(2) == 0 ? "rgreedy" : "ks";
    Matching m;
    const RunStats stats = engine::run_sharded(solver, init, g, m, config);
    ASSERT_EQ(validate_matching(g, m), "")
        << "trial seed " << seed << " solver " << solver;
    ASSERT_EQ(m.cardinality(), nu)
        << "trial seed " << seed << " solver " << solver << " threads "
        << config.threads;
    ASSERT_TRUE(is_maximum_matching(g, m)) << "trial seed " << seed;
    ASSERT_FALSE(stats.shard.fallback) << "trial seed " << seed;
    // A deficient start must be repaired by block solves, not by some
    // hidden monolithic pass. (Karp-Sipser occasionally starts maximum
    // on these islands; then zero blocks is the right answer.)
    if (stats.initial_cardinality < nu) {
      ASSERT_GT(stats.shard.blocks_solved, 0) << "trial seed " << seed;
    }
  }
}

TEST(ShardStress, SkewedBlockMixDrivesWideAndPooledPathsTogether) {
  // One dominant-but-under-cap island next to a swarm of small ones:
  // the engine sends the big block through the wide path while the
  // pool drains the rest, so both solve paths run in one trial.
  std::uint64_t stream = kMasterSeed ^ 0x51E3;
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    SbmParams params;
    params.rows_per_block = 40;
    params.cols_per_block = 40;
    params.blocks = 40;
    params.in_degree = 3.0;
    params.out_degree = 0.0;
    params.seed = seed;
    const BipartiteGraph g = generate_sbm(params);

    Matching reference(g.num_x(), g.num_y());
    hopcroft_karp(g, reference);

    RunConfig config;
    config.threads = random_thread_count(rng);
    config.shard = ShardMode::kDm;
    config.check_invariants = true;
    Matching m;
    const RunStats stats =
        engine::run_sharded("graft", "rgreedy", g, m, config);
    ASSERT_EQ(m.cardinality(), reference.cardinality())
        << "trial seed " << seed << " threads " << config.threads;
    ASSERT_TRUE(is_maximum_matching(g, m)) << "trial seed " << seed;
    ASSERT_EQ(stats.shard.solved_wide + stats.shard.solved_pooled,
              stats.shard.blocks_solved)
        << "trial seed " << seed;
  }
}

TEST(ShardStress, CardinalityDeterministicAcrossSchedules) {
  // The sharded driver inherits MS-BFS-Graft's determinism claim: with
  // the algorithm seed fixed, the final cardinality must not depend on
  // the thread count or which pool worker solves which block.
  const BipartiteGraph g = many_islands(7, 40, 40);
  RunConfig first_config;
  first_config.threads = 1;
  first_config.shard = ShardMode::kDm;
  first_config.seed = 11;
  Matching first;
  engine::run_sharded("graft", "ks", g, first, first_config);
  const std::int64_t reference = first.cardinality();

  std::uint64_t stream = kMasterSeed ^ 0xDE7;
  for (int trial = 0; trial < 24; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    RunConfig config;
    config.threads = random_thread_count(rng);
    config.shard = ShardMode::kDm;
    config.seed = 11;  // fixed algorithm seed: cardinality must not move
    Matching m;
    engine::run_sharded("graft", "ks", g, m, config);
    ASSERT_EQ(m.cardinality(), reference)
        << "trial seed " << seed << " threads " << config.threads;
  }
}

}  // namespace
}  // namespace graftmatch
