// Session-isolation stress harness (ctest labels: stress serve).
//
// Many SessionContexts solving concurrently in one process -- each on
// its own host thread, with randomized OpenMP widths, randomized
// per-session yield-jitter overrides, and traces armed on some
// sessions but not others -- while a MatchServer hammers the same
// engine through its own worker sessions. Designed to run under
// ThreadSanitizer (cmake -DGRAFTMATCH_SAN=tsan; ctest -L stress),
// where any cross-session sharing of probe atomics, trace rings, or
// workspace pools surfaces as a data race, suppression-free.
//
// Every randomized trial derives its seed from a fixed master seed and
// prints it on failure so CI logs are enough to replay the schedule's
// inputs.
#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/gen/planted.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/prng.hpp"
#include "graftmatch/serve/roster.hpp"
#include "graftmatch/serve/server.hpp"

namespace graftmatch {
namespace {

constexpr std::uint64_t kMasterSeed = 0x5E551011ULL;

class StressEnvironment : public ::testing::Environment {
 public:
  void SetUp() override { stress::set_yield_period(16); }
  void TearDown() override { stress::set_yield_period(0); }
};
[[maybe_unused]] const auto* const kEnv =
    ::testing::AddGlobalTestEnvironment(new StressEnvironment);

BipartiteGraph planted(std::uint64_t seed, std::int64_t pairs) {
  PlantedParams params;
  params.matched_pairs = pairs;
  params.surplus_rows = 40;
  params.bottleneck = 10;
  params.noise_degree = 3.0;
  params.seed = seed;
  return generate_planted(params).graph;
}

int random_width(Xoshiro256& rng) {
  const int hw = omp_get_num_procs();
  return 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(2 * hw)));
}

// The core claim under maximum scheduling pressure: S sessions, each on
// its own host thread with its own width/jitter/trace configuration,
// repeatedly solving distinct graphs -- every run must reach its own
// oracle and every armed session must flush its own trace.
TEST(SessionStress, ConcurrentSessionsSolveIsolated) {
  constexpr int kSessions = 4;
  constexpr int kRunsPerSession = 6;

  std::vector<BipartiteGraph> graphs;
  std::vector<std::int64_t> oracles;
  for (int s = 0; s < kSessions; ++s) {
    graphs.push_back(
        planted(kMasterSeed + static_cast<std::uint64_t>(s),
                500 + 60 * s));
    oracles.push_back(maximum_matching_cardinality(graphs.back()));
  }

  std::atomic<int> wrong{0};
  std::vector<std::string> failures(kSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      Xoshiro256 rng(kMasterSeed ^ static_cast<std::uint64_t>(s * 7919));
      SessionContext session;
      const SessionScope bind(session);
      const bool armed = (s % 2) == 0;
      if (armed) session.trace().arm();
      // Exercise all three jitter states: disabled, aggressive, and
      // inherit-the-process-period.
      if (s % 3 == 0) session.set_yield_period(4);
      else if (s % 3 == 1) session.clear_yield_period();
      else session.set_yield_period(0);

      for (int run = 0; run < kRunsPerSession; ++run) {
        RunConfig config;
        config.threads = random_width(rng);
        config.seed = rng();
        Matching matching(graphs[static_cast<std::size_t>(s)].num_x(),
                          graphs[static_cast<std::size_t>(s)].num_y());
        const RunStats stats =
            engine::run(session, "graft", "rgreedy",
                        graphs[static_cast<std::size_t>(s)], matching,
                        config);
        if (stats.final_cardinality != oracles[static_cast<std::size_t>(s)]) {
          wrong.fetch_add(1);
          failures[static_cast<std::size_t>(s)] =
              "run " + std::to_string(run) + " width " +
              std::to_string(config.threads) + ": got " +
              std::to_string(stats.final_cardinality) + " want " +
              std::to_string(oracles[static_cast<std::size_t>(s)]);
        }
        if (session.workspaces().outstanding() != 0) {
          wrong.fetch_add(1);
          failures[static_cast<std::size_t>(s)] = "leaked workspace lease";
        }
      }
      if (obs::compiled() && armed &&
          !session.trace().last_run().collected) {
        wrong.fetch_add(1);
        failures[static_cast<std::size_t>(s)] = "armed session lost trace";
      }
      if (!armed && session.trace().last_run().collected) {
        wrong.fetch_add(1);
        failures[static_cast<std::size_t>(s)] = "unarmed session collected";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_TRUE(failures[static_cast<std::size_t>(s)].empty())
        << "session " << s << ": " << failures[static_cast<std::size_t>(s)];
  }
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_FALSE(default_session().trace().last_run().collected)
      << "something emitted into the process default session";
}

// Sessions interleaved with the ambient default path: threads that
// never bind a session keep using default_session() while bound
// threads run beside them; both populations must stay correct.
TEST(SessionStress, BoundAndUnboundThreadsCoexist) {
  const BipartiteGraph bound_graph = planted(kMasterSeed ^ 0xB0, 450);
  const BipartiteGraph unbound_graph = planted(kMasterSeed ^ 0xC1, 350);
  const std::int64_t bound_oracle = maximum_matching_cardinality(bound_graph);
  const std::int64_t unbound_oracle =
      maximum_matching_cardinality(unbound_graph);

  std::atomic<int> wrong{0};
  constexpr int kPairs = 3;
  constexpr int kRuns = 4;
  std::vector<std::thread> threads;
  for (int p = 0; p < kPairs; ++p) {
    threads.emplace_back([&, p] {  // bound
      Xoshiro256 rng(kMasterSeed ^ static_cast<std::uint64_t>(0xAB0 + p));
      SessionContext session;
      const SessionScope bind(session);
      for (int run = 0; run < kRuns; ++run) {
        RunConfig config;
        config.threads = random_width(rng);
        Matching m(bound_graph.num_x(), bound_graph.num_y());
        const RunStats stats =
            engine::run(session, "graft", "ks", bound_graph, m, config);
        if (stats.final_cardinality != bound_oracle) wrong.fetch_add(1);
      }
    });
    threads.emplace_back([&, p] {  // unbound: ambient = default session
      Xoshiro256 rng(kMasterSeed ^ static_cast<std::uint64_t>(0xCD0 + p));
      for (int run = 0; run < kRuns; ++run) {
        RunConfig config;
        config.threads = random_width(rng);
        Matching m(unbound_graph.num_x(), unbound_graph.num_y());
        const RunStats stats =
            engine::run_sharded("pf", "greedy", unbound_graph, m, config);
        if (stats.final_cardinality != unbound_oracle) wrong.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong.load(), 0);
}

// The serving layer under concurrent load with mixed request shapes:
// every well-formed request must come back with the oracle cardinality
// regardless of which solver/mode it chose, and malformed ones must
// come back as error responses while the counters stay consistent.
TEST(SessionStress, MatchServerUnderConcurrentMixedLoad) {
  serve::GraphRoster roster;
  roster.add("alpha", planted(kMasterSeed ^ 0xA1, 420));
  roster.add("beta", planted(kMasterSeed ^ 0xB2, 360));
  roster.add("gamma", planted(kMasterSeed ^ 0xC3, 300));

  serve::ServerOptions options;
  options.workers = 4;
  options.queue_capacity = 32;
  // Batching on: concurrent same-key requests may coalesce, and every
  // member of a group must still get a correct, audited answer.
  options.batch_max = 4;
  options.batch_window_us = 200;
  serve::MatchServer server(roster, options);

  const char* const solvers[] = {"graft", "pf", "hk"};
  const char* const reduces[] = {"none", "d1"};
  const char* const shards[] = {"none", "dm"};

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 8;
  std::atomic<int> wrong{0};
  std::atomic<int> expected_failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Xoshiro256 rng(kMasterSeed ^ static_cast<std::uint64_t>(0x5EED + c));
      for (int r = 0; r < kRequestsPerClient; ++r) {
        serve::MatchRequest request;
        const bool malformed = rng.below(8) == 0;
        if (malformed) {
          request.graph = "no-such-graph";
          expected_failures.fetch_add(1);
        } else {
          const auto& entry = roster.at(rng.below(roster.size()));
          request.graph = entry.name;
          request.solver = solvers[rng.below(3)];
          request.reduce = reduces[rng.below(2)];
          request.shard = shards[rng.below(2)];
          request.threads = 1 + static_cast<int>(rng.below(2));
          // A third of the well-formed requests carry a deadline far
          // beyond any plausible backlog: the deadline bookkeeping runs
          // under load without injecting expiry nondeterminism.
          if (rng.below(3) == 0) request.deadline_ms = 60'000;
        }
        const serve::MatchResponse response = server.solve(std::move(request));
        if (malformed) {
          if (response.ok || response.error.empty()) wrong.fetch_add(1);
        } else if (!response.ok || response.expired ||
                   response.cardinality != response.maximum ||
                   response.batch < 1 ||
                   response.batch > static_cast<int>(options.batch_max)) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  server.stop();

  EXPECT_EQ(wrong.load(), 0);
  const serve::ServerCounters counters = server.counters();
  EXPECT_EQ(counters.accepted + counters.rejected,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(counters.completed + counters.failed + counters.expired,
            counters.accepted)
      << "every accepted request resolves exactly once";
  EXPECT_EQ(counters.expired, 0u) << "60 s deadlines never expire here";
  EXPECT_EQ(counters.failed,
            static_cast<std::uint64_t>(expected_failures.load()));
  EXPECT_EQ(counters.rejected, 0u)
      << "closed-loop clients never outrun a queue deeper than the client "
         "count";
}

TEST(SessionStress, BatchedServerShutdownUnderOpenLoopLoad) {
  // Open-loop submitters race stop() while batches are in flight: the
  // drain contract says every future whose try_submit succeeded is
  // fulfilled -- by a served, failed, or expired response -- never
  // abandoned (a std::future_error from get() would mean a worker
  // dropped a claimed task on the floor).
  serve::GraphRoster roster;
  roster.add("alpha", planted(kMasterSeed ^ 0xD4, 380));
  roster.add("beta", planted(kMasterSeed ^ 0xE5, 320));

  serve::ServerOptions options;
  options.workers = 3;
  options.queue_capacity = 16;
  options.batch_max = 8;
  options.batch_window_us = 500;
  serve::MatchServer server(roster, options);

  constexpr int kSubmitters = 5;
  constexpr int kPerSubmitter = 40;
  std::vector<std::vector<std::future<serve::MatchResponse>>> accepted(
      kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      Xoshiro256 rng(kMasterSeed ^ static_cast<std::uint64_t>(0xD0 + s));
      for (int r = 0; r < kPerSubmitter; ++r) {
        serve::MatchRequest request;
        request.graph = rng.below(2) == 0 ? "alpha" : "beta";
        if (rng.below(4) == 0) request.deadline_ms = 1;  // may expire
        std::future<serve::MatchResponse> pending;
        if (server.try_submit(std::move(request), pending)) {
          accepted[static_cast<std::size_t>(s)].push_back(
              std::move(pending));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  server.stop();
  for (std::thread& submitter : submitters) submitter.join();

  std::uint64_t total_accepted = 0;
  std::uint64_t served = 0;
  for (auto& futures : accepted) {
    for (auto& future : futures) {
      ++total_accepted;
      ASSERT_NO_THROW({
        const serve::MatchResponse response = future.get();
        if (response.ok) {
          ++served;
          EXPECT_EQ(response.cardinality, response.maximum);
        } else {
          EXPECT_TRUE(response.expired || !response.error.empty());
        }
      });
    }
  }
  const serve::ServerCounters counters = server.counters();
  EXPECT_EQ(counters.accepted, total_accepted);
  EXPECT_EQ(counters.completed + counters.failed + counters.expired,
            counters.accepted);
  EXPECT_EQ(counters.completed, served);
}

}  // namespace
}  // namespace graftmatch
