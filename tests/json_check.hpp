// Minimal strict JSON (RFC 8259) validator for tests.
//
// The library emits JSON from two places (run_stats_json and the obs
// Chrome-trace writer) by hand, so the tests re-parse that output with
// an independent, deliberately strict checker: no NaN/Inf literals, no
// trailing commas, no unescaped control characters, full-document
// consumption. Validation only -- it builds no DOM.
#pragma once

#include <cctype>
#include <string>
#include <string_view>

namespace graftmatch::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid(std::string* error) {
    pos_ = 0;
    error_.clear();
    skip_ws();
    const bool ok = parse_value(0) && (skip_ws(), pos_ == text_.size());
    if (!ok && error_.empty()) fail("trailing garbage");
    if (error != nullptr) *error = error_;
    return ok && error_.empty();
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end");
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string();
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }

  bool parse_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_object(int depth) {
    if (!consume('{')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!parse_string()) return fail("object key must be a string");
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_value(depth + 1)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parse_array(int depth) {
    if (!consume('[')) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!parse_value(depth + 1)) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') return ++pos_, true;
      if (c < 0x20) return fail("unescaped control character");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return fail("bad number");  // catches nan/inf/'+'/'.5'
    }
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return pos_ > start || fail("empty number");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// True iff `text` is one complete, strictly valid JSON document.
inline bool json_valid(std::string_view text, std::string* error = nullptr) {
  JsonChecker checker(text);
  return checker.valid(error);
}

}  // namespace graftmatch::testing
