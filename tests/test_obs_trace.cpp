// Tests for the obs/ tracing layer: event-stream invariants for every
// registered solver, Chrome trace_event export validity, trace/stats
// cross-checks, and the arm/disarm lifecycle.
//
// Carries the `obs` ctest label: CI runs exactly these tests under TSan
// in a GRAFTMATCH_TRACE=ON build to prove the tracer itself is
// race-free while the solvers hammer it from their parallel regions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/gen/planted.hpp"
#include "graftmatch/obs/chrome_trace.hpp"
#include "graftmatch/obs/summary.hpp"
#include "graftmatch/obs/trace.hpp"
#include "json_check.hpp"

namespace graftmatch {
namespace {

PlantedGraph test_instance() {
  PlantedParams params;
  params.matched_pairs = 512;
  params.surplus_rows = 64;
  params.bottleneck = 16;
  params.noise_degree = 3.0;
  params.seed = 9;
  return generate_planted(params);
}

/// Structural invariants every flushed trace must satisfy: events
/// grouped per thread, timestamps monotone within a thread, every
/// Begin matched by an End of the same name (LIFO), non-negative
/// normalized timestamps, exactly one run span.
void check_trace_invariants(const obs::RunTrace& trace, int max_threads) {
  ASSERT_TRUE(trace.collected);
  EXPECT_EQ(trace.dropped, 0);
  EXPECT_FALSE(trace.events.empty());

  std::set<std::int32_t> seen_tids;
  std::int32_t current_tid = trace.events.front().tid;
  std::int64_t last_ts = 0;
  std::vector<std::string_view> stack;
  int run_begins = 0;
  int run_ends = 0;

  for (const obs::Event& event : trace.events) {
    ASSERT_NE(event.name, nullptr);
    EXPECT_GE(event.ts_ns, 0) << "timestamps are epoch-normalized";
    if (event.tid != current_tid) {
      // Thread segments must not interleave, and each must close every
      // span it opened.
      EXPECT_FALSE(seen_tids.count(event.tid))
          << "tid " << event.tid << " appears in two segments";
      EXPECT_TRUE(stack.empty())
          << "tid " << current_tid << " left " << stack.size()
          << " spans open";
      seen_tids.insert(current_tid);
      current_tid = event.tid;
      last_ts = 0;
      stack.clear();
    }
    EXPECT_GE(event.ts_ns, last_ts) << "timestamps regress within a thread";
    last_ts = event.ts_ns;
    switch (event.kind) {
      case obs::EventKind::kBegin:
        stack.push_back(event.name->name);
        run_begins += std::string_view(event.name->name) == "run";
        break;
      case obs::EventKind::kEnd:
        ASSERT_FALSE(stack.empty()) << "End without Begin: "
                                    << event.name->name;
        EXPECT_EQ(stack.back(), std::string_view(event.name->name));
        stack.pop_back();
        run_ends += std::string_view(event.name->name) == "run";
        break;
      case obs::EventKind::kComplete:
        EXPECT_GE(event.dur_ns, 0);
        break;
      case obs::EventKind::kCounter:
      case obs::EventKind::kInstant:
        break;
    }
  }
  EXPECT_TRUE(stack.empty());
  seen_tids.insert(current_tid);
  EXPECT_EQ(run_begins, 1);
  EXPECT_EQ(run_ends, 1);
  EXPECT_LE(static_cast<int>(seen_tids.size()), max_threads);
  EXPECT_EQ(trace.thread_count, static_cast<int>(seen_tids.size()));
}

TEST(ObsTrace, CompileGateMatchesBuild) {
#if GRAFTMATCH_TRACE_ENABLED
  EXPECT_TRUE(obs::compiled());
#else
  EXPECT_FALSE(obs::compiled());
  obs::arm();  // no-ops must stay callable
  EXPECT_FALSE(obs::active());
  EXPECT_EQ(obs::timestamp(), 0);
  EXPECT_FALSE(obs::begin_run("x", 1));
  obs::end_run();
  obs::disarm();
#endif
}

// Every registry solver, serial and parallel, must produce a
// well-formed trace AND the correct matching while traced.
TEST(ObsTrace, EveryRegistrySolverTracesCleanly) {
  if (!obs::compiled()) GTEST_SKIP() << "GRAFTMATCH_TRACE=OFF build";
  const PlantedGraph planted = test_instance();
  obs::arm();
  for (const engine::SolverInfo& solver : engine::solver_registry()) {
    RunConfig config;
    config.threads = 3;
    Matching m(planted.graph.num_x(), planted.graph.num_y());
    const RunStats stats = solver.run(planted.graph, m, config);
    EXPECT_EQ(m.cardinality(), planted.maximum_cardinality) << solver.name;

    const obs::RunTrace& trace = obs::last_run();
    EXPECT_EQ(trace.algorithm, stats.algorithm) << solver.name;
    check_trace_invariants(trace, std::max(stats.threads_used, 1));

    EXPECT_TRUE(stats.obs.collected) << solver.name;
    EXPECT_EQ(stats.obs.events,
              static_cast<std::int64_t>(trace.events.size()))
        << solver.name;

    std::string error;
    const std::string json = obs::chrome_trace_json(trace);
    EXPECT_TRUE(testing::json_valid(json, &error))
        << solver.name << ": " << error;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find(stats.algorithm), std::string::npos);
  }
  obs::disarm();
}

// The trace must agree with the independently collected RunStats
// instrumentation: phase rows, frontier samples, and the JSON obs block.
TEST(ObsTrace, GraftTraceMatchesPhaseStatsAndFrontierTrace) {
  if (!obs::compiled()) GTEST_SKIP() << "GRAFTMATCH_TRACE=OFF build";
  const PlantedGraph planted = test_instance();
  obs::arm();
  RunConfig config;
  config.threads = 2;
  config.collect_phase_stats = true;
  config.collect_frontier_trace = true;
  Matching m(planted.graph.num_x(), planted.graph.num_y());
  const RunStats stats = ms_bfs_graft(planted.graph, m, config);
  obs::disarm();

  const obs::TraceSummary summary = obs::summarize(obs::last_run());
  ASSERT_EQ(summary.phases.size(), stats.phase_stats.size());
  for (std::size_t i = 0; i < summary.phases.size(); ++i) {
    const obs::PhaseAnatomy& traced = summary.phases[i];
    const PhaseStats& recorded = stats.phase_stats[i];
    EXPECT_EQ(traced.phase, recorded.phase);
    EXPECT_EQ(traced.levels, recorded.levels);
    EXPECT_EQ(traced.bottom_up_levels, recorded.bottom_up_levels);
    EXPECT_EQ(traced.augmentations, recorded.augmentations);
    EXPECT_EQ(traced.grafted, recorded.grafted);
    EXPECT_GE(traced.seconds, 0.0);
  }

  // Frontier counter events replicate the frontier_trace samples
  // exactly (size and direction, in order).
  std::vector<const obs::Event*> counters;
  for (const obs::Event& event : obs::last_run().events) {
    if (event.kind == obs::EventKind::kCounter &&
        std::string_view(event.name->name) == "frontier") {
      counters.push_back(&event);
    }
  }
  ASSERT_EQ(counters.size(), stats.frontier_trace.size());
  for (std::size_t i = 0; i < counters.size(); ++i) {
    EXPECT_EQ(counters[i]->arg0, stats.frontier_trace[i].frontier_size);
    EXPECT_EQ(counters[i]->arg1 != 0, stats.frontier_trace[i].bottom_up);
  }

  // Summary counters land in RunStats::obs and in the JSON document.
  EXPECT_EQ(stats.obs.levels,
            static_cast<std::int64_t>(stats.frontier_trace.size()));
  EXPECT_EQ(stats.obs.grafts + stats.obs.rebuilds,
            static_cast<std::int64_t>(stats.phase_stats.size()) - 1)
      << "every phase but the last ends in a graft-or-rebuild decision";
  const std::string json = run_stats_json(stats);
  std::string error;
  EXPECT_TRUE(testing::json_valid(json, &error)) << error;
  EXPECT_NE(json.find("\"obs\""), std::string::npos);

  // Step spans reconcile: trace step totals never exceed the stopwatch
  // columns (each span is emitted strictly inside its lap).
  const StepSeconds& s = stats.step_seconds;
  EXPECT_LE(summary.top_down, s.top_down + 1e-9);
  EXPECT_LE(summary.bottom_up, s.bottom_up + 1e-9);
  EXPECT_LE(summary.augment, s.augment + 1e-9);
  EXPECT_LE(summary.graft, s.graft + 1e-9);
  EXPECT_LE(summary.statistics, s.statistics + 1e-9);
}

TEST(ObsTrace, UnarmedRunsCollectNothing) {
  if (!obs::compiled()) GTEST_SKIP() << "GRAFTMATCH_TRACE=OFF build";
  obs::disarm();
  const PlantedGraph planted = test_instance();
  Matching m(planted.graph.num_x(), planted.graph.num_y());
  const RunStats stats = ms_bfs_graft(planted.graph, m);
  EXPECT_FALSE(stats.obs.collected);
  EXPECT_EQ(run_stats_json(stats).find("\"obs\""), std::string::npos);
}

TEST(ObsTrace, NestedBeginRunRefused) {
  if (!obs::compiled()) GTEST_SKIP() << "GRAFTMATCH_TRACE=OFF build";
  obs::arm();
  ASSERT_TRUE(obs::begin_run("outer", 1));
  EXPECT_FALSE(obs::begin_run("inner", 1)) << "no nested trace runs";
  obs::end_run();
  obs::disarm();
  EXPECT_EQ(obs::last_run().algorithm, "outer");
  EXPECT_FALSE(obs::begin_run("disarmed", 1));
}

// Per-thread rings are bounded: a tiny capacity must drop events (and
// report them) instead of growing without bound or corrupting state.
TEST(ObsTrace, BoundedRingDropsAndReports) {
  if (!obs::compiled()) GTEST_SKIP() << "GRAFTMATCH_TRACE=OFF build";
  ::setenv("GRAFTMATCH_TRACE_CAPACITY", "16", 1);
  const PlantedGraph planted = test_instance();
  obs::arm();
  Matching m(planted.graph.num_x(), planted.graph.num_y());
  const RunStats stats = ms_bfs_graft(planted.graph, m);
  obs::disarm();
  ::unsetenv("GRAFTMATCH_TRACE_CAPACITY");

  EXPECT_EQ(m.cardinality(), planted.maximum_cardinality)
      << "dropping trace events must not perturb the algorithm";
  EXPECT_TRUE(stats.obs.collected);
  EXPECT_GT(stats.obs.dropped, 0) << "a 16-event ring cannot hold a run";
  // Still a structurally valid (if truncated) Chrome trace document.
  std::string error;
  EXPECT_TRUE(
      testing::json_valid(obs::chrome_trace_json(obs::last_run()), &error))
      << error;
}

TEST(ObsTrace, ChromeTraceFileWriting) {
  if (!obs::compiled()) GTEST_SKIP() << "GRAFTMATCH_TRACE=OFF build";
  const PlantedGraph planted = test_instance();
  obs::arm();
  Matching m(planted.graph.num_x(), planted.graph.num_y());
  (void)ms_bfs_graft(planted.graph, m);
  obs::disarm();

  const std::string path = ::testing::TempDir() + "/graftmatch_trace.json";
  EXPECT_TRUE(obs::write_chrome_trace_file(path, obs::last_run()));
  EXPECT_FALSE(
      obs::write_chrome_trace_file("/nonexistent/dir/t.json", obs::last_run()));
}

}  // namespace
}  // namespace graftmatch
