// Differential oracle battery for the dynamic/ subsystem.
//
// The DynamicMatcher claims a MAXIMUM matching after every churn batch;
// nothing in this file trusts that claim. After every randomized
// add/remove batch the matcher's graph is materialized and re-solved
// from scratch with Hopcroft-Karp (baselines/, zero code shared with
// the incremental path), the cardinalities must agree exactly, and the
// Koenig certificate must accept the incremental matching on the
// materialized CSR. A second battery drives tiny graphs through
// exhaustive churn sequences against a self-contained Kuhn reference,
// and the staleness/compaction knobs are swept to their degenerate
// settings (always-resolve, compact-every-batch, streak-of-one) to
// prove the heuristics are cost-only: every setting must produce the
// same cardinality trajectory.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/dynamic/dynamic_matcher.hpp"
#include "graftmatch/dynamic/overlay.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/grid.hpp"
#include "graftmatch/gen/rmat.hpp"
#include "graftmatch/gen/sbm.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/prng.hpp"
#include "json_check.hpp"

namespace graftmatch {
namespace {

using dynamic::DynamicConfig;
using dynamic::DynamicMatcher;
using dynamic::GraphOverlay;

std::int64_t hk_cardinality(const BipartiteGraph& g) {
  Matching m(g.num_x(), g.num_y());
  hopcroft_karp(g, m);
  return m.cardinality();
}

/// Six structurally distinct generators, small enough that the
/// per-batch from-scratch oracle stays cheap.
BipartiteGraph corpus_graph(int which, std::uint64_t seed) {
  switch (which) {
    case 0: {
      ErdosRenyiParams p;
      p.nx = 400;
      p.ny = 360;
      p.edges = 1800;
      p.seed = seed;
      return generate_erdos_renyi(p);
    }
    case 1: {
      GridParams p;
      p.width = 20;
      p.height = 20;
      p.diagonal_drop = 0.3;  // imperfect, so deletions hit matched edges
      p.seed = seed;
      return generate_grid(p);
    }
    case 2: {
      WebCrawlParams p;
      p.nx = 400;
      p.ny = 350;
      p.avg_degree = 4.0;
      p.hub_count = 12;
      p.seed = seed;
      return generate_webcrawl(p);
    }
    case 3: {
      ChungLuParams p;
      p.nx = 400;
      p.ny = 400;
      p.avg_degree = 5.0;
      p.max_degree = 64;
      p.seed = seed;
      return generate_chung_lu(p);
    }
    case 4: {
      SbmParams p;
      p.rows_per_block = 60;
      p.cols_per_block = 50;
      p.blocks = 6;
      p.in_degree = 3.0;
      p.out_degree = 0.2;
      p.seed = seed;
      return generate_sbm(p);
    }
    default: {
      RmatParams p;
      p.scale = 8;
      p.edge_factor = 6.0;
      p.seed = seed;
      return generate_rmat(p);
    }
  }
}

constexpr int kCorpusSize = 6;
const char* corpus_name(int which) {
  static const char* kNames[kCorpusSize] = {"er",       "grid", "webcrawl",
                                            "chung_lu", "sbm",  "rmat"};
  return kNames[which];
}

/// Deterministic churn driver: interleaves removals (drawn from the
/// live edge set) and insertions (removed edges re-added plus fresh
/// random pairs), checking the matcher against the oracle after every
/// batch. Batch sizes sweep 1..256 so single-edge updates and
/// bulk updates both get covered.
void churn_against_oracle(const BipartiteGraph& start, std::uint64_t seed,
                          const DynamicConfig& config,
                          const std::string& label, int batches = 10) {
  SessionContext session;
  DynamicMatcher matcher(session, start, config);

  Xoshiro256 rng(mix64(seed ^ 0xd15c0u));
  std::vector<Edge> live = start.to_edges().edges;
  std::vector<Edge> removed;
  const int kBatchSizes[] = {1, 3, 16, 64, 256};
  for (int step = 0; step < batches; ++step) {
    const int want =
        kBatchSizes[step % (sizeof(kBatchSizes) / sizeof(kBatchSizes[0]))];
    std::vector<Edge> batch;
    const bool remove = (step % 2) == 0;
    if (remove) {
      for (int k = 0; k < want && !live.empty(); ++k) {
        const std::size_t pick = rng.below(live.size());
        batch.push_back(live[pick]);
        removed.push_back(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      }
      matcher.remove_edges(batch);
    } else {
      for (int k = 0; k < want; ++k) {
        if (!removed.empty() && rng.below(2) == 0) {
          batch.push_back(removed.back());
          removed.pop_back();
        } else {
          batch.push_back({static_cast<vid_t>(rng.below(
                               static_cast<std::uint64_t>(start.num_x()))),
                           static_cast<vid_t>(rng.below(
                               static_cast<std::uint64_t>(start.num_y())))});
        }
      }
      matcher.add_edges(batch);
      for (const Edge& e : batch) live.push_back(e);
    }
    // De-dup `live` lazily: insertion of an already-live edge is a
    // no-op in the matcher, and double-removal batches are themselves
    // a case worth exercising.

    const BipartiteGraph snapshot = matcher.materialize();
    ASSERT_TRUE(is_valid_matching(snapshot, matcher.matching()))
        << label << " step " << step;
    ASSERT_EQ(matcher.cardinality(), matcher.matching().cardinality())
        << label << " step " << step;
    ASSERT_EQ(matcher.cardinality(), hk_cardinality(snapshot))
        << label << " step " << step << " (oracle disagrees)";
    ASSERT_TRUE(is_maximum_matching(snapshot, matcher.matching()))
        << label << " step " << step << " (Koenig rejects)";
  }
}

TEST(DynamicChurn, OracleParityAcrossGeneratorsAndSeeds) {
  for (int which = 0; which < kCorpusSize; ++which) {
    for (std::uint64_t seed : {11ULL, 12ULL, 13ULL, 14ULL}) {
      const BipartiteGraph g = corpus_graph(which, seed);
      churn_against_oracle(g, seed, DynamicConfig{},
                           std::string(corpus_name(which)) + "/" +
                               std::to_string(seed));
    }
  }
}

TEST(DynamicChurn, KnobSettingsAreCostOnly) {
  // Degenerate heuristic settings must not change any cardinality:
  // always-resolve, compact-every-batch, failure-streak-of-one, and a
  // never-resolve/never-compact overlay that only re-augments.
  const BipartiteGraph g = corpus_graph(0, 21);
  DynamicConfig always_resolve;
  always_resolve.staleness_delta_fraction = 0.0;
  DynamicConfig always_compact;
  always_compact.compact_fraction = 0.0;
  DynamicConfig streak_one;
  streak_one.staleness_failure_streak = 1;
  DynamicConfig never;
  never.staleness_delta_fraction = 1e9;
  never.compact_fraction = 1e9;
  churn_against_oracle(g, 21, always_resolve, "always_resolve");
  churn_against_oracle(g, 21, always_compact, "always_compact");
  churn_against_oracle(g, 21, streak_one, "streak_one");
  churn_against_oracle(g, 21, never, "never");
}

TEST(DynamicChurn, SelfCheckingModeAndOtherSolvers) {
  // check_invariants audits inside the matcher after every batch; the
  // resolve path must also work through a non-default solver entry.
  const BipartiteGraph g = corpus_graph(2, 31);
  DynamicConfig config;
  config.check_invariants = true;
  config.solver = "hk";
  config.initializer = "streaming_ks";
  config.staleness_delta_fraction = 0.05;  // force frequent re-solves
  churn_against_oracle(g, 31, config, "audited_hk");
}

// ---- exhaustive tiny-graph churn against an independent Kuhn
// reference (adjacency-matrix based, no library code).
class KuhnReference {
 public:
  KuhnReference(int nx, int ny, const std::vector<std::vector<bool>>& adj)
      : nx_(nx), ny_(ny), adj_(adj),
        mate_y_(static_cast<std::size_t>(ny), -1) {}

  int solve() {
    int result = 0;
    for (int x = 0; x < nx_; ++x) {
      seen_.assign(static_cast<std::size_t>(ny_), false);
      if (try_augment(x)) ++result;
    }
    return result;
  }

 private:
  bool try_augment(int x) {
    for (int y = 0; y < ny_; ++y) {
      const auto yi = static_cast<std::size_t>(y);
      if (!adj_[static_cast<std::size_t>(x)][yi] || seen_[yi]) continue;
      seen_[yi] = true;
      if (mate_y_[yi] < 0 || try_augment(mate_y_[yi])) {
        mate_y_[yi] = x;
        return true;
      }
    }
    return false;
  }

  int nx_;
  int ny_;
  const std::vector<std::vector<bool>>& adj_;
  std::vector<int> mate_y_;
  std::vector<bool> seen_;
};

TEST(DynamicChurn, ExhaustiveTinyChurnVsKuhn) {
  // Tiny graphs hit the degenerate shapes (empty sides, isolated
  // vertices, complete blocks) far more densely than the corpus does.
  // 4x4 universe, every churn sequence of 8 single-edge flips over a
  // random starting graph, cross-checked against Kuhn on the adjacency
  // matrix after EVERY flip.
  Xoshiro256 rng(mix64(0xe4a57));
  for (int trial = 0; trial < 150; ++trial) {
    const int nx = 1 + static_cast<int>(rng.below(4));
    const int ny = 1 + static_cast<int>(rng.below(4));
    std::vector<std::vector<bool>> adj(
        static_cast<std::size_t>(nx),
        std::vector<bool>(static_cast<std::size_t>(ny), false));
    EdgeList list;
    list.nx = nx;
    list.ny = ny;
    const double density = rng.uniform();
    for (int x = 0; x < nx; ++x) {
      for (int y = 0; y < ny; ++y) {
        if (rng.uniform() < density) {
          adj[static_cast<std::size_t>(x)][static_cast<std::size_t>(y)] =
              true;
          list.edges.push_back({x, y});
        }
      }
    }
    SessionContext session;
    DynamicConfig config;
    config.check_invariants = true;
    DynamicMatcher matcher(session, BipartiteGraph::from_edges(list),
                           config);
    for (int flip = 0; flip < 8; ++flip) {
      const int x = static_cast<int>(rng.below(static_cast<std::uint64_t>(nx)));
      const int y = static_cast<int>(rng.below(static_cast<std::uint64_t>(ny)));
      auto cell = adj[static_cast<std::size_t>(x)].begin() + y;
      const Edge e{x, y};
      if (*cell) {
        *cell = false;
        EXPECT_EQ(matcher.remove_edges({&e, 1}), 1);
      } else {
        *cell = true;
        EXPECT_EQ(matcher.add_edges({&e, 1}), 1);
      }
      KuhnReference reference(nx, ny, adj);
      ASSERT_EQ(matcher.cardinality(), reference.solve())
          << "trial " << trial << " flip " << flip << " nx=" << nx
          << " ny=" << ny;
    }
  }
}

// ---- GraphOverlay unit contracts.

BipartiteGraph tiny_graph() {
  EdgeList list;
  list.nx = 3;
  list.ny = 3;
  list.edges = {{0, 0}, {0, 1}, {1, 1}, {2, 2}};
  return BipartiteGraph::from_edges(list);
}

TEST(GraphOverlay, InsertEraseResurrectRoundTrip) {
  GraphOverlay overlay(tiny_graph());
  EXPECT_EQ(overlay.live_edges(), 4);
  EXPECT_TRUE(overlay.has_edge(0, 1));
  EXPECT_FALSE(overlay.insert(0, 1));  // already live in the base
  EXPECT_TRUE(overlay.erase(0, 1));    // tombstone
  EXPECT_FALSE(overlay.has_edge(0, 1));
  EXPECT_EQ(overlay.live_edges(), 3);
  EXPECT_EQ(overlay.cost(), 1);
  EXPECT_FALSE(overlay.erase(0, 1));  // double erase is a no-op
  EXPECT_TRUE(overlay.insert(0, 1));  // resurrects the tombstoned slot
  EXPECT_TRUE(overlay.has_edge(0, 1));
  EXPECT_EQ(overlay.cost(), 0);  // resurrection, not a delta entry
  EXPECT_TRUE(overlay.insert(2, 0));  // genuinely new -> delta
  EXPECT_EQ(overlay.cost(), 1);
  EXPECT_EQ(overlay.live_edges(), 5);
  EXPECT_TRUE(overlay.erase(2, 0));  // delta removal, not a tombstone
  EXPECT_EQ(overlay.cost(), 0);
  EXPECT_THROW(overlay.insert(3, 0), std::out_of_range);
  EXPECT_THROW(overlay.erase(0, -1), std::out_of_range);
  EXPECT_FALSE(overlay.has_edge(5, 5));  // out of range reads are false
}

TEST(GraphOverlay, DegreesAndNeighborIterationTrackLiveSet) {
  GraphOverlay overlay(tiny_graph());
  ASSERT_TRUE(overlay.erase(0, 0));
  ASSERT_TRUE(overlay.insert(0, 2));
  EXPECT_EQ(overlay.degree_x(0), 2);  // {1 (base), 2 (delta)}
  EXPECT_EQ(overlay.degree_y(2), 2);  // {0 (delta), 2 (base)}
  EXPECT_EQ(overlay.degree_y(0), 0);
  std::vector<vid_t> seen;
  overlay.for_each_neighbor_x(0, [&](vid_t y) {
    seen.push_back(y);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<vid_t>{1, 2}));
  seen.clear();
  overlay.for_each_neighbor_y(2, [&](vid_t x) {
    seen.push_back(x);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<vid_t>{2, 0}));  // base slots, then delta
  // Early exit: callback returning false stops the walk.
  int visits = 0;
  EXPECT_FALSE(overlay.for_each_neighbor_x(0, [&](vid_t) {
    ++visits;
    return false;
  }));
  EXPECT_EQ(visits, 1);
}

TEST(GraphOverlay, MaterializeAndCompactPreserveLiveSet) {
  ErdosRenyiParams params;
  params.nx = 80;
  params.ny = 70;
  params.edges = 300;
  const BipartiteGraph g = generate_erdos_renyi(params);
  GraphOverlay overlay(g);
  Xoshiro256 rng(mix64(7));
  for (int k = 0; k < 120; ++k) {
    const vid_t x = static_cast<vid_t>(rng.below(80));
    const vid_t y = static_cast<vid_t>(rng.below(70));
    if (overlay.has_edge(x, y)) {
      overlay.erase(x, y);
    } else {
      overlay.insert(x, y);
    }
  }
  const BipartiteGraph before = overlay.materialize();
  const std::int64_t live = overlay.live_edges();
  EXPECT_EQ(before.num_edges(), live);
  for (vid_t x = 0; x < before.num_x(); ++x) {
    for (const vid_t y : before.neighbors_of_x(x)) {
      EXPECT_TRUE(overlay.has_edge(x, y));
    }
  }
  overlay.compact();
  EXPECT_EQ(overlay.cost(), 0);
  EXPECT_EQ(overlay.live_edges(), live);
  EXPECT_EQ(overlay.base_edges(), live);
  const BipartiteGraph after = overlay.materialize();
  for (vid_t x = 0; x < before.num_x(); ++x) {
    ASSERT_EQ(before.degree_x(x), after.degree_x(x)) << x;
  }
}

// ---- counters and the strict-JSON "dynamic" stats block.

TEST(DynamicStats, CountersAndStrictJson) {
  SessionContext session;
  DynamicConfig config;
  config.compact_fraction = 0.0;  // force compactions so the counter moves
  const BipartiteGraph g = corpus_graph(0, 41);
  DynamicMatcher matcher(session, g, config);

  const EdgeList edges = g.to_edges();
  std::vector<Edge> batch(edges.edges.begin(), edges.edges.begin() + 32);
  EXPECT_EQ(matcher.remove_edges(batch), 32);
  EXPECT_EQ(matcher.add_edges(batch), 32);
  EXPECT_EQ(matcher.add_edges(batch), 0);  // all already live

  const RunStats stats = matcher.stats();
  EXPECT_EQ(stats.algorithm, "dynamic+graft");
  ASSERT_TRUE(stats.dynamic.collected);
  EXPECT_EQ(stats.dynamic.batches, 3);
  EXPECT_EQ(stats.dynamic.edges_added, 32);
  EXPECT_EQ(stats.dynamic.edges_removed, 32);
  EXPECT_GE(stats.dynamic.compactions, 1);
  EXPECT_GE(stats.dynamic.overlay_peak, 1);
  EXPECT_EQ(stats.final_cardinality, matcher.cardinality());

  std::string error;
  EXPECT_TRUE(testing::json_valid(run_stats_json(stats), &error)) << error;

  // The NaN/Inf guard: poisoned timings must still yield strict JSON.
  RunStats poisoned = stats;
  poisoned.dynamic.apply_seconds = std::numeric_limits<double>::quiet_NaN();
  poisoned.dynamic.resolve_seconds =
      std::numeric_limits<double>::infinity();
  poisoned.dynamic.reaugment_seconds =
      -std::numeric_limits<double>::infinity();
  EXPECT_TRUE(testing::json_valid(run_stats_json(poisoned), &error)) << error;
}

TEST(DynamicStats, ResolveAndCompactEntryPoints) {
  SessionContext session;
  const BipartiteGraph g = corpus_graph(4, 51);
  DynamicConfig config;
  config.staleness_delta_fraction = 1e9;  // never auto-resolve
  config.compact_fraction = 1e9;          // never auto-compact
  DynamicMatcher matcher(session, g, config);
  const std::int64_t before = matcher.cardinality();

  const EdgeList edges = g.to_edges();
  std::vector<Edge> batch(edges.edges.begin(), edges.edges.begin() + 16);
  matcher.remove_edges(batch);
  EXPECT_GT(matcher.overlay().cost(), 0);
  matcher.compact();
  EXPECT_EQ(matcher.overlay().cost(), 0);
  EXPECT_EQ(matcher.stats().dynamic.compactions, 1);
  EXPECT_EQ(matcher.cardinality(), hk_cardinality(matcher.materialize()));

  matcher.resolve();
  EXPECT_EQ(matcher.stats().dynamic.resolves, 1);
  EXPECT_EQ(matcher.cardinality(), hk_cardinality(matcher.materialize()));

  matcher.add_edges(batch);
  EXPECT_EQ(matcher.cardinality(), before);
}

}  // namespace
}  // namespace graftmatch
