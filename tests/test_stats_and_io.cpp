// Tests for RunStats (formatting, derived metrics, path-length
// histograms, JSON robustness), BipartiteGraph::from_csr, and matching
// serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/baselines/pothen_fan.hpp"
#include "graftmatch/baselines/ss_bfs.hpp"
#include "graftmatch/baselines/ss_dfs.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/dynamic/dynamic_matcher.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/graph/matching_io.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/obs/trace.hpp"
#include "json_check.hpp"

namespace graftmatch {
namespace {

TEST(RunStats, DerivedMetrics) {
  RunStats stats;
  stats.algorithm = "test";
  stats.augmentations = 4;
  stats.total_path_edges = 20;
  stats.edges_traversed = 3'000'000;
  stats.seconds = 1.5;
  EXPECT_DOUBLE_EQ(stats.avg_path_length(), 5.0);
  EXPECT_DOUBLE_EQ(stats.mteps(), 2.0);

  RunStats empty;
  EXPECT_EQ(empty.avg_path_length(), 0.0);
  EXPECT_EQ(empty.mteps(), 0.0);
}

TEST(RunStats, StepSecondsTotal) {
  StepSeconds steps;
  steps.top_down = 1;
  steps.bottom_up = 2;
  steps.augment = 3;
  steps.graft = 4;
  steps.statistics = 5;
  steps.other = 6;
  EXPECT_DOUBLE_EQ(steps.total(), 21.0);
}

TEST(RunStats, FormatContainsKeyFields) {
  RunStats stats;
  stats.algorithm = "MS-BFS-Graft";
  stats.final_cardinality = 42;
  stats.phases = 3;
  const std::string text = format_run_stats(stats);
  EXPECT_NE(text.find("MS-BFS-Graft"), std::string::npos);
  EXPECT_NE(text.find("|M|=42"), std::string::npos);
  EXPECT_NE(text.find("phases=3"), std::string::npos);
}

TEST(RunStatsJson, RealRunIsStrictlyValid) {
  ChungLuParams params;
  params.nx = params.ny = 1000;
  params.avg_degree = 5.0;
  const BipartiteGraph g = generate_chung_lu(params);
  Matching m = randomized_greedy(g, 1);
  RunConfig config;
  config.collect_phase_stats = true;
  config.collect_frontier_trace = true;
  config.collect_path_histogram = true;
  const RunStats stats = ms_bfs_graft(g, m, config);
  std::string error;
  EXPECT_TRUE(testing::json_valid(run_stats_json(stats), &error)) << error;
}

// A reduced run must emit the `reduce` block next to `obs`, both
// strictly valid; an unreduced run must emit neither key.
TEST(RunStatsJson, ReduceBlockIsStrictlyValid) {
  ChungLuParams params;
  params.nx = params.ny = 800;
  params.avg_degree = 2.0;  // sparse, so pendant reductions actually fire
  params.seed = 9;
  const BipartiteGraph g = generate_chung_lu(params);

  obs::arm();
  Matching m;
  RunConfig config;
  config.reduce = ReduceMode::kDegree1;
  config.collect_path_histogram = true;
  const RunStats stats = engine::run_reduced("graft", "greedy", g, m, config);
  obs::disarm();

  ASSERT_TRUE(stats.reduce.collected);
  ASSERT_TRUE(stats.obs.collected);
  EXPECT_GT(stats.reduce.forced_matches, 0);
  const std::string json = run_stats_json(stats);
  std::string error;
  EXPECT_TRUE(testing::json_valid(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"reduce\":{\"mode\":\"d1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"forced_matches\":"), std::string::npos);
  EXPECT_NE(json.find("\"reconstruct_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"obs\":{"), std::string::npos);

  // Non-finite timings inside the reduce block must stay valid JSON.
  RunStats degenerate = stats;
  degenerate.reduce.reduce_seconds = std::numeric_limits<double>::quiet_NaN();
  degenerate.reduce.compact_seconds = std::numeric_limits<double>::infinity();
  const std::string bad = run_stats_json(degenerate);
  EXPECT_TRUE(testing::json_valid(bad, &error)) << error << "\n" << bad;
  EXPECT_EQ(bad.find("nan"), std::string::npos);
  EXPECT_EQ(bad.find("inf"), std::string::npos);

  RunStats plain;
  const std::string without = run_stats_json(plain);
  EXPECT_TRUE(testing::json_valid(without, &error)) << error;
  EXPECT_EQ(without.find("\"reduce\""), std::string::npos);
}

// A churn run through the DynamicMatcher must emit the `dynamic` block
// strictly valid, with the non-finite-timing guard that every other
// block honors; plain stats must omit the key entirely.
TEST(RunStatsJson, DynamicBlockIsStrictlyValid) {
  ChungLuParams params;
  params.nx = params.ny = 300;
  params.avg_degree = 4.0;
  params.seed = 21;
  const BipartiteGraph g = generate_chung_lu(params);

  SessionContext session;
  dynamic::DynamicMatcher matcher(session, g);
  const std::vector<Edge> batch = {g.to_edges().edges[0],
                                   g.to_edges().edges[1]};
  matcher.remove_edges(batch);
  matcher.add_edges(batch);
  const RunStats stats = matcher.stats();
  ASSERT_TRUE(stats.dynamic.collected);
  EXPECT_EQ(stats.dynamic.batches, 2);
  EXPECT_EQ(stats.dynamic.edges_removed, 2);

  const std::string json = run_stats_json(stats);
  std::string error;
  EXPECT_TRUE(testing::json_valid(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"dynamic\":{\"batches\":2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"reaugment_searches\":"), std::string::npos);
  EXPECT_NE(json.find("\"overlay_peak\":"), std::string::npos);

  // Non-finite timings inside the dynamic block must stay valid JSON.
  RunStats degenerate = stats;
  degenerate.dynamic.apply_seconds = std::numeric_limits<double>::quiet_NaN();
  degenerate.dynamic.reaugment_seconds =
      std::numeric_limits<double>::infinity();
  degenerate.dynamic.compact_seconds =
      -std::numeric_limits<double>::infinity();
  degenerate.dynamic.resolve_seconds =
      std::numeric_limits<double>::quiet_NaN();
  const std::string bad = run_stats_json(degenerate);
  EXPECT_TRUE(testing::json_valid(bad, &error)) << error << "\n" << bad;
  EXPECT_EQ(bad.find("nan"), std::string::npos);
  EXPECT_EQ(bad.find("inf"), std::string::npos);

  RunStats plain;
  const std::string without = run_stats_json(plain);
  EXPECT_TRUE(testing::json_valid(without, &error)) << error;
  EXPECT_EQ(without.find("\"dynamic\""), std::string::npos);
}

// A real MS-BFS-Graft run emits the `bookkeeping` block (workspace
// warmth, incremental-sweep counters); hand-built stats without it must
// omit the key entirely.
TEST(RunStatsJson, BookkeepingBlockIsStrictlyValid) {
  ChungLuParams params;
  params.nx = params.ny = 1200;
  params.avg_degree = 4.0;
  params.seed = 13;
  const BipartiteGraph g = generate_chung_lu(params);

  RunConfig config;
  RunStats stats;
  {
    Matching m(g.num_x(), g.num_y());
    stats = ms_bfs_graft(g, m, config);
  }
  ASSERT_TRUE(stats.bookkeeping.collected);
  const std::string json = run_stats_json(stats);
  std::string error;
  EXPECT_TRUE(testing::json_valid(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"bookkeeping\":{\"workspace_warm\":"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"classified_y\":"), std::string::npos);
  EXPECT_NE(json.find("\"epoch_bumps\":"), std::string::npos);
  // The incremental classification sweeps visit forest members only;
  // their volume is bounded by runs over the whole vertex range.
  EXPECT_GE(stats.bookkeeping.classified_y, 0);
  EXPECT_GE(stats.bookkeeping.counted_x, 0);

  // Same thread, same dimensions: the thread_local workspace is warm.
  {
    Matching m(g.num_x(), g.num_y());
    const RunStats again = ms_bfs_graft(g, m, config);
    EXPECT_TRUE(again.bookkeeping.workspace_warm);
    const std::string warm_json = run_stats_json(again);
    EXPECT_TRUE(testing::json_valid(warm_json, &error)) << error;
    EXPECT_NE(warm_json.find("\"workspace_warm\":true"), std::string::npos)
        << warm_json;
  }

  RunStats plain;
  const std::string without = run_stats_json(plain);
  EXPECT_TRUE(testing::json_valid(without, &error)) << error;
  EXPECT_EQ(without.find("\"bookkeeping\""), std::string::npos);
}

// JSON has no NaN/Inf literals; non-finite doubles (a 0-second run, a
// degenerate division) must never corrupt the document.
TEST(RunStatsJson, NonFiniteFieldsStayValid) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  RunStats stats;
  stats.algorithm = "degenerate";
  stats.seconds = nan;
  stats.step_seconds.top_down = inf;
  stats.step_seconds.bottom_up = -inf;
  stats.step_seconds.augment = nan;
  stats.step_seconds.graft = inf;
  stats.step_seconds.statistics = nan;
  stats.step_seconds.other = inf;
  PhaseStats phase;
  phase.phase = 1;
  phase.seconds = nan;
  stats.phase_stats.push_back(phase);
  // edges > 0 with seconds = NaN makes mteps() NaN too.
  stats.edges_traversed = 100;
  stats.augmentations = 1;
  stats.total_path_edges = 3;

  const std::string json = run_stats_json(stats);
  std::string error;
  EXPECT_TRUE(testing::json_valid(json, &error)) << error << "\n" << json;
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

// Algorithm names flow into JSON verbatim; quotes, backslashes, and
// control characters must come out escaped.
TEST(RunStatsJson, EscapesAlgorithmString) {
  RunStats stats;
  stats.algorithm = "evil\"name\\with\nnewline\tand\x01" "control";
  const std::string json = run_stats_json(stats);
  std::string error;
  EXPECT_TRUE(testing::json_valid(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline\\tand\\u0001control"),
            std::string::npos);
}

// Every path-collecting algorithm: histogram totals must reconcile with
// augmentations/total_path_edges, and lengths must be odd.
TEST(PathHistogram, ConsistentAcrossAlgorithms) {
  ChungLuParams params;
  params.nx = params.ny = 2000;
  params.avg_degree = 6.0;
  params.seed = 4;
  const BipartiteGraph g = generate_chung_lu(params);
  const Matching initial = randomized_greedy(g, 2);

  const auto check = [&](auto&& algorithm, const char* name) {
    RunConfig config;
    config.collect_path_histogram = true;
    Matching m = initial;
    const RunStats stats = algorithm(g, m, config);
    std::int64_t count = 0;
    std::int64_t edges = 0;
    for (const auto& [length, paths] : stats.path_length_histogram) {
      EXPECT_EQ(length % 2, 1) << name << ": even path length " << length;
      EXPECT_GT(paths, 0) << name;
      count += paths;
      edges += length * paths;
    }
    EXPECT_EQ(count, stats.augmentations) << name;
    EXPECT_EQ(edges, stats.total_path_edges) << name;
    EXPECT_GT(count, 0) << name << ": workload left no paths";
  };

  check([](const auto& g2, auto& m, const RunConfig& c) {
    return ms_bfs_graft(g2, m, c);
  }, "graft");
  check([](const auto& g2, auto& m, const RunConfig& c) {
    return pothen_fan(g2, m, c);
  }, "pf");
  check([](const auto& g2, auto& m, const RunConfig& c) {
    return hopcroft_karp(g2, m, c);
  }, "hk");
  check([](const auto& g2, auto& m, const RunConfig& c) {
    return ss_bfs(g2, m, c);
  }, "ssbfs");
  check([](const auto& g2, auto& m, const RunConfig& c) {
    return ss_dfs(g2, m, c);
  }, "ssdfs");
}

TEST(PathHistogram, OffByDefault) {
  ChungLuParams params;
  params.nx = params.ny = 500;
  const BipartiteGraph g = generate_chung_lu(params);
  Matching m = randomized_greedy(g, 1);
  const RunStats stats = ms_bfs_graft(g, m);
  EXPECT_TRUE(stats.path_length_histogram.empty());
}

TEST(FromCsr, BuildsEquivalentGraph) {
  // x0 ~ {y1, y0 (dup, unsorted)}, x1 ~ {}, x2 ~ {y2}
  const std::vector<eid_t> offsets{0, 3, 3, 4};
  const std::vector<vid_t> neighbors{1, 0, 0, 2};
  const BipartiteGraph g = BipartiteGraph::from_csr(offsets, neighbors, 3);
  EXPECT_EQ(g.num_x(), 3);
  EXPECT_EQ(g.num_y(), 3);
  EXPECT_EQ(g.num_edges(), 3);  // duplicate merged
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 2));
  EXPECT_EQ(g.degree_x(1), 0);
}

TEST(FromCsr, ValidatesInput) {
  const std::vector<eid_t> empty;
  const std::vector<vid_t> none;
  EXPECT_THROW(BipartiteGraph::from_csr(empty, none, 1),
               std::invalid_argument);

  const std::vector<eid_t> bad_frame{0, 2};
  const std::vector<vid_t> one{0};
  EXPECT_THROW(BipartiteGraph::from_csr(bad_frame, one, 1),
               std::invalid_argument);

  const std::vector<eid_t> decreasing{0, 1, 0, 1};
  const std::vector<vid_t> n1{0};
  EXPECT_THROW(BipartiteGraph::from_csr(decreasing, n1, 1),
               std::invalid_argument);

  const std::vector<eid_t> offsets{0, 1};
  const std::vector<vid_t> out_of_range{5};
  EXPECT_THROW(BipartiteGraph::from_csr(offsets, out_of_range, 2),
               std::invalid_argument);
}

TEST(MatchingIo, RoundTrip) {
  Matching m(5, 7);
  m.match(0, 6);
  m.match(3, 2);
  m.match(4, 0);

  std::ostringstream out;
  write_matching(out, m);
  std::istringstream in(out.str());
  const Matching loaded = read_matching(in);
  EXPECT_EQ(loaded, m);
  EXPECT_EQ(loaded.num_x(), 5);
  EXPECT_EQ(loaded.num_y(), 7);
}

TEST(MatchingIo, EmptyMatchingRoundTrip) {
  const Matching m(3, 3);
  std::ostringstream out;
  write_matching(out, m);
  std::istringstream in(out.str());
  EXPECT_EQ(read_matching(in), m);
}

TEST(MatchingIo, RejectsCorruptInput) {
  const auto expect_fail = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(read_matching(in), std::runtime_error) << text;
  };
  expect_fail("not-a-matching 1\n1 1 0\n");
  expect_fail("graftmatch-matching 2\n1 1 0\n");
  expect_fail("graftmatch-matching 1\n-1 1 0\n");
  expect_fail("graftmatch-matching 1\n2 2 1\n");          // truncated
  expect_fail("graftmatch-matching 1\n2 2 1\n5 0\n");     // out of range
  expect_fail("graftmatch-matching 1\n2 2 2\n0 0\n1 0\n");  // dup endpoint
}

TEST(MatchingIo, FileRoundTrip) {
  Matching m(4, 4);
  m.match(1, 3);
  const std::string path = ::testing::TempDir() + "/graftmatch_matching.txt";
  write_matching_file(path, m);
  EXPECT_EQ(read_matching_file(path), m);
  EXPECT_THROW(read_matching_file("/nonexistent/m.txt"), std::runtime_error);
}

}  // namespace
}  // namespace graftmatch
