// Cross-module integration tests: full pipelines exercising generator ->
// I/O -> matching -> decomposition -> verification together, plus
// consistency across transformations (matching number is invariant
// under relabeling and transposition).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch {
namespace {

TEST(Integration, MtxRoundTripPreservesMatchingNumber) {
  ChungLuParams params;
  params.nx = params.ny = 1500;
  params.avg_degree = 6.0;
  params.seed = 17;
  const BipartiteGraph original = generate_chung_lu(params);
  const std::int64_t expected = maximum_matching_cardinality(original);

  const std::string path = testing::TempDir() + "/graftmatch_integration.mtx";
  write_matrix_market_file(path, original.to_edges());
  const BipartiteGraph loaded =
      BipartiteGraph::from_edges(read_matrix_market_file(path));

  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(maximum_matching_cardinality(loaded), expected);
}

TEST(Integration, MatchingNumberInvariantUnderRelabeling) {
  WebCrawlParams params;
  params.nx = params.ny = 2000;
  params.seed = 5;
  const BipartiteGraph g = generate_webcrawl(params);
  const std::int64_t expected = maximum_matching_cardinality(g);

  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    const BipartiteGraph shuffled = shuffle_labels(g, seed);
    Matching m = randomized_greedy(shuffled, seed);
    ms_bfs_graft(shuffled, m);
    EXPECT_EQ(m.cardinality(), expected) << seed;
  }
}

TEST(Integration, MatchingNumberInvariantUnderTransposition) {
  ErdosRenyiParams params;
  params.nx = 900;
  params.ny = 700;
  params.edges = 3200;
  const BipartiteGraph g = generate_erdos_renyi(params);
  EXPECT_EQ(maximum_matching_cardinality(g),
            maximum_matching_cardinality(transpose(g)));
}

TEST(Integration, WarmStartFromAnotherAlgorithmsOutput) {
  // Feeding one algorithm's maximum matching into another must be a
  // no-op (zero augmentations).
  const BipartiteGraph g = suite_instance("amazon-like").factory(0.01, 3);
  Matching m = karp_sipser(g);
  pothen_fan(g, m);
  ASSERT_TRUE(is_maximum_matching(g, m));
  const RunStats stats = ms_bfs_graft(g, m);
  EXPECT_EQ(stats.augmentations, 0);
  EXPECT_EQ(stats.phases, 1);
}

TEST(Integration, DmOfGeneratedMatrixMatchesBtf) {
  const BipartiteGraph g = suite_instance("wb-edu-like").factory(0.01, 2);
  const DmDecomposition dm = dm_decompose(g);
  const BlockTriangularForm btf = block_triangular_form(g, dm);
  EXPECT_TRUE(verify_btf(g, btf));
  // Coarse part sizes agree between the two views.
  EXPECT_EQ(btf.square_row_begin, dm.rows_in(DmBlock::kHorizontal));
  EXPECT_EQ(btf.square_row_end - btf.square_row_begin,
            dm.rows_in(DmBlock::kSquare));
}

TEST(Integration, StatsEdgesBoundedByPhaseWork) {
  // Edge traversals cannot exceed phases * directed edges (each phase
  // touches each directed edge O(1) times in MS-BFS-Graft).
  const BipartiteGraph g = suite_instance("wikipedia-like").factory(0.01, 1);
  Matching m = randomized_greedy(g, 1);
  const RunStats stats = ms_bfs_graft(g, m);
  EXPECT_LE(stats.edges_traversed,
            2 * stats.phases * g.num_directed_edges());
}

TEST(Integration, SerialAndParallelGraftAgreeOnCardinality) {
  const BipartiteGraph g = suite_instance("rmat-like").factory(0.01, 8);
  RunConfig serial;
  serial.threads = 1;
  RunConfig parallel;
  parallel.threads = 4;
  Matching m1 = randomized_greedy(g, 9);
  Matching m2 = m1;
  ms_bfs_graft(g, m1, serial);
  ms_bfs_graft(g, m2, parallel);
  EXPECT_EQ(m1.cardinality(), m2.cardinality());
}

TEST(Integration, RepeatedRunsAreDeterministicSerially) {
  const BipartiteGraph g = suite_instance("road_usa-like").factory(0.01, 4);
  RunConfig config;
  config.threads = 1;
  Matching m1 = randomized_greedy(g, 6);
  Matching m2 = randomized_greedy(g, 6);
  ASSERT_EQ(m1, m2);
  const RunStats s1 = ms_bfs_graft(g, m1, config);
  const RunStats s2 = ms_bfs_graft(g, m2, config);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(s1.phases, s2.phases);
  EXPECT_EQ(s1.edges_traversed, s2.edges_traversed);
  EXPECT_EQ(s1.total_path_edges, s2.total_path_edges);
}

}  // namespace
}  // namespace graftmatch
