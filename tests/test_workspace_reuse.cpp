// Workspace-reuse coverage (ctest labels: tier1, stress).
//
// One GraftWorkspace serves back-to-back solver runs -- on the same
// graph, on different graphs, and across dimension changes -- with
// check_invariants on, so any epoch/bitmap state bleeding between runs
// (a stale stamp surviving a bump, a bitmap bit from a previous graph,
// a candidate-pool entry outliving its run) trips the forest audit or
// the cardinality oracle. The stress label additionally runs the trials
// under the TSan tier's scheduling jitter and randomized thread counts.
#include <gtest/gtest.h>
#include <omp.h>

#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/grid.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/runtime/prng.hpp"
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch {
namespace {

std::int64_t reference_cardinality(const BipartiteGraph& g) {
  Matching m(g.num_x(), g.num_y());
  hopcroft_karp(g, m);
  return m.cardinality();
}

/// Run the workspace overload with the audit armed and verify the
/// result against an independent oracle.
void run_and_check(const BipartiteGraph& g, GraftWorkspace& workspace,
                   std::int64_t reference, const RunConfig& base,
                   bool expect_warm) {
  Matching m = karp_sipser(g, 7);
  RunConfig config = base;
  config.check_invariants = true;
  const RunStats stats = ms_bfs_graft(g, m, config, workspace);
  ASSERT_TRUE(stats.bookkeeping.collected);
  EXPECT_EQ(stats.bookkeeping.workspace_warm, expect_warm);
  EXPECT_TRUE(validate_matching(g, m).empty());
  EXPECT_EQ(m.cardinality(), reference);
  EXPECT_TRUE(is_maximum_matching(g, m));
}

TEST(WorkspaceReuse, SameGraphBackToBackRunsAreWarm) {
  ChungLuParams params;
  params.nx = params.ny = 3000;
  params.avg_degree = 5.0;
  params.seed = 11;
  const BipartiteGraph g = generate_chung_lu(params);
  const std::int64_t reference = reference_cardinality(g);

  GraftWorkspace workspace;
  for (int run = 0; run < 4; ++run) {
    run_and_check(g, workspace, reference, RunConfig{},
                  /*expect_warm=*/run > 0);
  }
  EXPECT_EQ(workspace.prepared_runs, 4);
}

TEST(WorkspaceReuse, ConfigurationMatrixSharesOneWorkspace) {
  // Every accelerator combination reuses the same warm arrays; the
  // config governs which bookkeeping paths run (pool builds, bitmap
  // maintenance), so cycling configs is what exercises cross-run
  // staleness between DIFFERENT code paths.
  WebCrawlParams params;
  params.nx = params.ny = 2000;
  params.seed = 5;
  const BipartiteGraph g = generate_webcrawl(params);
  const std::int64_t reference = reference_cardinality(g);

  GraftWorkspace workspace;
  bool first = true;
  for (int round = 0; round < 2; ++round) {
    for (const bool dir_opt : {false, true}) {
      for (const bool graft : {false, true}) {
        RunConfig config;
        config.direction_optimizing = dir_opt;
        config.tree_grafting = graft;
        run_and_check(g, workspace, reference, config,
                      /*expect_warm=*/!first);
        first = false;
      }
    }
  }
}

TEST(WorkspaceReuse, DifferentGraphsAlternateThroughOneWorkspace) {
  ChungLuParams cl;
  cl.nx = cl.ny = 2500;
  cl.avg_degree = 4.0;
  cl.seed = 3;
  const BipartiteGraph a = generate_chung_lu(cl);

  GridParams grid;
  grid.width = 40;
  grid.height = 50;
  const BipartiteGraph b = generate_grid(grid);

  const std::int64_t ref_a = reference_cardinality(a);
  const std::int64_t ref_b = reference_cardinality(b);

  GraftWorkspace workspace;
  for (int round = 0; round < 3; ++round) {
    // Dimensions change on every switch, so every prepare is cold; the
    // point is that values written for graph A never leak into B's run.
    run_and_check(a, workspace, ref_a, RunConfig{}, /*expect_warm=*/false);
    run_and_check(b, workspace, ref_b, RunConfig{}, /*expect_warm=*/false);
  }
}

TEST(WorkspaceReuse, ShrinkThenRegrowKeepsRunsIndependent) {
  // Shrinking keeps the larger allocation (capacity is sticky); the
  // logical range must still behave as freshly reset. Regrowing to the
  // original size must not resurrect values from the first run.
  ErdosRenyiParams big;
  big.nx = big.ny = 4000;
  big.edges = 16000;
  big.seed = 21;
  const BipartiteGraph large = generate_erdos_renyi(big);

  ErdosRenyiParams tiny;
  tiny.nx = tiny.ny = 300;
  tiny.edges = 1200;
  tiny.seed = 22;
  const BipartiteGraph small = generate_erdos_renyi(tiny);

  const std::int64_t ref_large = reference_cardinality(large);
  const std::int64_t ref_small = reference_cardinality(small);

  GraftWorkspace workspace;
  run_and_check(large, workspace, ref_large, RunConfig{}, false);
  run_and_check(small, workspace, ref_small, RunConfig{}, false);
  run_and_check(large, workspace, ref_large, RunConfig{}, false);
  // Same dimensions as the previous run: warm again.
  run_and_check(large, workspace, ref_large, RunConfig{}, true);
}

TEST(WorkspaceReuse, ThreadLocalOverloadStaysCorrectAcrossCalls) {
  // The 3-argument overload reuses a thread_local workspace; repeated
  // calls from one thread on mixed graphs are the bench min-of-runs
  // and diff-roster pattern.
  ChungLuParams cl;
  cl.nx = cl.ny = 1500;
  cl.avg_degree = 6.0;
  cl.seed = 17;
  const BipartiteGraph a = generate_chung_lu(cl);
  cl.seed = 18;
  const BipartiteGraph b = generate_chung_lu(cl);  // same dims: warm path

  const std::int64_t ref_a = reference_cardinality(a);
  const std::int64_t ref_b = reference_cardinality(b);

  for (int round = 0; round < 3; ++round) {
    for (const bool dir_opt : {false, true}) {
      Matching ma = karp_sipser(a, 7);
      Matching mb = karp_sipser(b, 7);
      RunConfig config;
      config.direction_optimizing = dir_opt;
      config.check_invariants = true;
      ms_bfs_graft(a, ma, config);
      ms_bfs_graft(b, mb, config);
      EXPECT_EQ(ma.cardinality(), ref_a);
      EXPECT_EQ(mb.cardinality(), ref_b);
    }
  }
}

TEST(WorkspaceReuse, RandomizedTrialsUnderScheduleJitter) {
  // Stress-tier workhorse: random graphs, random thread counts, one
  // workspace throughout. Seeds derive from a fixed master via
  // splitmix64 and are printed on failure for replay.
  constexpr std::uint64_t kMasterSeed = 0xA11C0DEULL;
  std::uint64_t stream = kMasterSeed;
  GraftWorkspace workspace;
  const int hw = omp_get_num_procs();

  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = splitmix64_next(stream);
    Xoshiro256 rng(seed);
    ChungLuParams params;
    params.nx = static_cast<vid_t>(500 + rng.below(2000));
    params.ny = static_cast<vid_t>(500 + rng.below(2000));
    params.avg_degree = 3.0 + static_cast<double>(rng.below(4));
    params.seed = seed;
    const BipartiteGraph g = generate_chung_lu(params);
    const std::int64_t reference = reference_cardinality(g);

    Matching m = karp_sipser(g, seed);
    RunConfig config;
    config.threads =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(2 * hw)));
    config.check_invariants = true;
    ms_bfs_graft(g, m, config, workspace);
    EXPECT_TRUE(validate_matching(g, m).empty()) << "seed " << seed;
    EXPECT_EQ(m.cardinality(), reference) << "seed " << seed;
  }
}

}  // namespace
}  // namespace graftmatch
