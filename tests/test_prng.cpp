// Unit tests for the deterministic PRNG substrate (splitmix64,
// xoshiro256**, alias tables).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "graftmatch/runtime/alias_table.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {
namespace {

TEST(Splitmix64, KnownSequence) {
  // Reference values for seed 0 from the published splitmix64 code.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454fULL);
}

TEST(Splitmix64, MixIsStateless) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Xoshiro, DeterministicGivenSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256 rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro, BelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> histogram{};
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.below(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int count : histogram) {
    EXPECT_NEAR(count, expected, 5 * std::sqrt(expected));
  }
}

TEST(Xoshiro, UniformInHalfOpenUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro, ForkedStreamsAreIndependent) {
  Xoshiro256 base(42);
  Xoshiro256 s0 = base.fork(0);
  Xoshiro256 s1 = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (s0() == s1());
  EXPECT_LE(equal, 1);

  // Forking is deterministic: same stream id, same sequence.
  Xoshiro256 s0_again = Xoshiro256(42).fork(0);
  Xoshiro256 s0_ref = Xoshiro256(42).fork(0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(s0_again(), s0_ref());
}

TEST(AliasTable, SingleEntryAlwaysSampled) {
  const std::vector<double> weights{3.0};
  const AliasTable table{std::span<const double>(weights)};
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> weights{1.0, 0.0, 1.0};
  const AliasTable table{std::span<const double>(weights)};
  Xoshiro256 rng(1);
  for (int i = 0; i < 2000; ++i) EXPECT_NE(table.sample(rng), 1u);
}

TEST(AliasTable, MatchesWeightProportions) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  const AliasTable table{std::span<const double>(weights)};
  Xoshiro256 rng(5);
  std::array<int, 4> histogram{};
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++histogram[table.sample(rng)];
  const double total = 10.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = kDraws * weights[i] / total;
    EXPECT_NEAR(histogram[i], expected, 6 * std::sqrt(expected)) << i;
  }
}

TEST(AliasTable, RejectsInvalidWeights) {
  const std::vector<double> empty;
  EXPECT_THROW(AliasTable{std::span<const double>(empty)},
               std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(AliasTable{std::span<const double>(negative)},
               std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(AliasTable{std::span<const double>(zeros)},
               std::invalid_argument);
}

}  // namespace
}  // namespace graftmatch
