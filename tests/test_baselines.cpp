// Per-algorithm tests for the baseline maximum-matching algorithms:
// hand-crafted graphs with known optima, configuration knobs, and stats
// plausibility. (Cross-algorithm agreement at scale lives in
// test_property_sweep.cpp.)
#include <gtest/gtest.h>

#include <cmath>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/baselines/pothen_fan.hpp"
#include "graftmatch/baselines/push_relabel.hpp"
#include "graftmatch/baselines/ss_bfs.hpp"
#include "graftmatch/baselines/ss_dfs.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/verify/koenig.hpp"

namespace graftmatch {
namespace {

// Chain trap: greedy matches x0-y1, forcing a length-3 augmenting path.
BipartiteGraph chain_trap() {
  EdgeList list;
  list.nx = 2;
  list.ny = 2;
  list.edges = {{0, 0}, {0, 1}, {1, 1}};
  return BipartiteGraph::from_edges(list);
}

// Deeper trap: optimal requires a length-5 path through three trees.
BipartiteGraph deep_trap() {
  EdgeList list;
  list.nx = 3;
  list.ny = 3;
  list.edges = {{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}};
  return BipartiteGraph::from_edges(list);
}

// The worked example of the paper's Fig. 2(a): 6 x 6, maximal matching
// {x3-y1, x4-y2, x5-y3(paper's y5?)} -- we encode the figure's edges.
BipartiteGraph figure2_graph() {
  EdgeList list;
  list.nx = 6;
  list.ny = 6;
  // Vertices x1..x6 / y1..y6 map to indices 0..5.
  list.edges = {{0, 0}, {0, 1},          // x1 ~ y1, y2
                {2, 0}, {2, 1}, {2, 2},  // x3 ~ y1, y2, y3
                {1, 2}, {1, 4},          // x2 ~ y3, y5
                {3, 1}, {3, 3},          // x4 ~ y2, y4
                {4, 2}, {4, 4},          // x5 ~ y3, y5
                {5, 3}, {5, 5}};         // x6 ~ y4, y6
  return BipartiteGraph::from_edges(list);
}

template <typename Algorithm>
void expect_solves(Algorithm&& algorithm, const BipartiteGraph& g,
                   std::int64_t expected, const char* name) {
  Matching m(g.num_x(), g.num_y());
  const RunStats stats = algorithm(g, m);
  EXPECT_EQ(m.cardinality(), expected) << name;
  EXPECT_TRUE(is_maximum_matching(g, m)) << name;
  EXPECT_EQ(stats.final_cardinality, expected) << name;
  EXPECT_EQ(stats.final_cardinality - stats.initial_cardinality,
            stats.augmentations)
      << name << ": each augmentation adds exactly one edge";
}

TEST(SsBfs, SolvesTraps) {
  expect_solves([](auto& g, auto& m) { return ss_bfs(g, m); }, chain_trap(),
                2, "chain");
  expect_solves([](auto& g, auto& m) { return ss_bfs(g, m); }, deep_trap(),
                3, "deep");
  expect_solves([](auto& g, auto& m) { return ss_bfs(g, m); },
                figure2_graph(), 6, "figure2");
}

TEST(SsBfs, FindsShortestPathsFromScratch) {
  const BipartiteGraph g = deep_trap();
  Matching m(3, 3);
  const RunStats stats = ss_bfs(g, m);
  // From an empty matching every augmentation is a single edge.
  EXPECT_EQ(stats.total_path_edges, 3);
  EXPECT_DOUBLE_EQ(stats.avg_path_length(), 1.0);
}

TEST(SsBfs, FailedTreeRetentionSkipsDeadVertices) {
  // x0 and x1 both see only y0: the second search must traverse almost
  // nothing because the first failure hides the shared tree.
  EdgeList list;
  list.nx = 3;
  list.ny = 1;
  list.edges = {{0, 0}, {1, 0}, {2, 0}};
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  Matching m(3, 1);
  const RunStats stats = ss_bfs(g, m);
  EXPECT_EQ(m.cardinality(), 1);
  // First search matches x0-y0 (1 edge). Second traverses (x1,y0) and
  // fails; y0's flag stays set, so the third search traverses only its
  // own adjacency scan of x2 (1 edge) and stops at the hidden vertex.
  EXPECT_LE(stats.edges_traversed, 4);
}

TEST(SsDfs, SolvesTraps) {
  expect_solves([](auto& g, auto& m) { return ss_dfs(g, m); }, chain_trap(),
                2, "chain");
  expect_solves([](auto& g, auto& m) { return ss_dfs(g, m); }, deep_trap(),
                3, "deep");
  expect_solves([](auto& g, auto& m) { return ss_dfs(g, m); },
                figure2_graph(), 6, "figure2");
}

TEST(PothenFan, SolvesTrapsSerial) {
  RunConfig config;
  config.threads = 1;
  expect_solves(
      [&config](auto& g, auto& m) { return pothen_fan(g, m, config); },
      chain_trap(), 2, "chain");
  expect_solves(
      [&config](auto& g, auto& m) { return pothen_fan(g, m, config); },
      figure2_graph(), 6, "figure2");
}

TEST(PothenFan, SolvesWithMultipleThreads) {
  RunConfig config;
  config.threads = 4;
  ChungLuParams params;
  params.nx = params.ny = 2000;
  params.avg_degree = 6.0;
  const BipartiteGraph g = generate_chung_lu(params);
  Matching m = greedy_maximal(g);
  pothen_fan(g, m, config);
  EXPECT_TRUE(is_maximum_matching(g, m));
}

TEST(PothenFan, FairnessToggleBothCorrect) {
  const BipartiteGraph g = figure2_graph();
  for (const bool fairness : {true, false}) {
    RunConfig config;
    config.pf_fairness = fairness;
    Matching m(g.num_x(), g.num_y());
    pothen_fan(g, m, config);
    EXPECT_EQ(m.cardinality(), 6) << fairness;
  }
}

TEST(PothenFan, LookaheadCountsEdges) {
  const BipartiteGraph g = chain_trap();
  Matching m(2, 2);
  const RunStats stats = pothen_fan(g, m);
  EXPECT_GT(stats.edges_traversed, 0);
  EXPECT_EQ(stats.algorithm, "Pothen-Fan");
}

TEST(HopcroftKarp, SolvesTraps) {
  expect_solves([](auto& g, auto& m) { return hopcroft_karp(g, m); },
                chain_trap(), 2, "chain");
  expect_solves([](auto& g, auto& m) { return hopcroft_karp(g, m); },
                deep_trap(), 3, "deep");
  expect_solves([](auto& g, auto& m) { return hopcroft_karp(g, m); },
                figure2_graph(), 6, "figure2");
}

TEST(HopcroftKarp, PhaseBoundRespected) {
  // HK needs O(sqrt(n)) phases; on a 3000-vertex ER graph from an empty
  // matching that is a loose but meaningful bound.
  ErdosRenyiParams params;
  params.nx = params.ny = 1500;
  params.edges = 6000;
  const BipartiteGraph g = generate_erdos_renyi(params);
  Matching m(params.nx, params.ny);
  const RunStats stats = hopcroft_karp(g, m);
  EXPECT_TRUE(is_maximum_matching(g, m));
  EXPECT_LE(stats.phases, 2 * static_cast<std::int64_t>(
                                  std::sqrt(2.0 * params.nx)) + 10);
}

TEST(HopcroftKarp, ShortestPathsFirst) {
  const BipartiteGraph g = deep_trap();
  Matching m(3, 3);
  const RunStats stats = hopcroft_karp(g, m);
  // From empty, all three augmenting paths have length 1 (one phase).
  EXPECT_EQ(stats.phases, 2);  // one productive + one terminating
  EXPECT_DOUBLE_EQ(stats.avg_path_length(), 1.0);
}

TEST(PushRelabel, SolvesTraps) {
  expect_solves([](auto& g, auto& m) { return push_relabel(g, m); },
                chain_trap(), 2, "chain");
  expect_solves([](auto& g, auto& m) { return push_relabel(g, m); },
                deep_trap(), 3, "deep");
  expect_solves([](auto& g, auto& m) { return push_relabel(g, m); },
                figure2_graph(), 6, "figure2");
}

TEST(PushRelabel, HonorsTuningKnobs) {
  ErdosRenyiParams params;
  params.nx = params.ny = 1200;
  params.edges = 5000;
  const BipartiteGraph g = generate_erdos_renyi(params);
  for (const int queue_limit : {1, 100, 500}) {
    for (const int frequency : {1, 2, 16}) {
      RunConfig config;
      config.pr_queue_limit = queue_limit;
      config.pr_relabel_frequency = frequency;
      Matching m = greedy_maximal(g);
      push_relabel(g, m, config);
      EXPECT_TRUE(is_maximum_matching(g, m))
          << "queue=" << queue_limit << " freq=" << frequency;
    }
  }
}

TEST(PushRelabel, ParallelThreadsCorrect) {
  ChungLuParams params;
  params.nx = params.ny = 1500;
  params.avg_degree = 6.0;
  const BipartiteGraph g = generate_chung_lu(params);
  for (const int threads : {1, 2, 4}) {
    RunConfig config;
    config.threads = threads;
    Matching m = greedy_maximal(g);
    push_relabel(g, m, config);
    EXPECT_TRUE(is_maximum_matching(g, m)) << threads;
  }
}

TEST(PushRelabel, StartsFromEmptyMatching) {
  ErdosRenyiParams params;
  params.nx = params.ny = 400;
  params.edges = 1600;
  const BipartiteGraph g = generate_erdos_renyi(params);
  Matching m(params.nx, params.ny);
  push_relabel(g, m);
  EXPECT_TRUE(is_maximum_matching(g, m));
}

TEST(AllBaselines, HandleEdgelessGraph) {
  EdgeList list;
  list.nx = 4;
  list.ny = 4;
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const auto expect_zero = [&](auto&& algorithm) {
    Matching m(4, 4);
    algorithm(g, m);
    EXPECT_EQ(m.cardinality(), 0);
  };
  expect_zero([](auto& g2, auto& m) { return ss_bfs(g2, m); });
  expect_zero([](auto& g2, auto& m) { return ss_dfs(g2, m); });
  expect_zero([](auto& g2, auto& m) { return pothen_fan(g2, m); });
  expect_zero([](auto& g2, auto& m) { return hopcroft_karp(g2, m); });
  expect_zero([](auto& g2, auto& m) { return push_relabel(g2, m); });
}

}  // namespace
}  // namespace graftmatch
