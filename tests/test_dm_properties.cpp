// Property battery for the Dulmage-Mendelsohn / BTF layer (dm/).
//
// The coarse decomposition is CANONICAL: the H/S/V classes do not
// depend on which maximum matching induced them. That makes a strong
// oracle cheap -- this file recomputes the classes from scratch with an
// independent alternating-reach implementation seeded by an independent
// maximum matching (Kuhn's algorithm on small graphs, Hopcroft-Karp on
// fuzz graphs), and requires dm_decompose (which picks its own matching
// via MS-BFS-Graft) to land on the identical partition. On top of that
// sit the structural invariants every legal decomposition must satisfy:
//
//   * every vertex in exactly one class;
//   * edges never point "downhill" (rank H=0 < S=1 < V=2: an edge
//     (row, col) always has rank(row) <= rank(col), the zero blocks of
//     the coarse block-triangular form);
//   * matched pairs never straddle a class;
//   * H rows, V cols, and the whole S part are saturated;
//   * the surplus identities |V_R|-|V_C| = nx - nu, |H_C|-|H_R| = ny - nu;
//   * structural rank == the oracle matching number;
//   * BTF permutations are genuine permutations with consistent block
//     boundaries, and verify_btf accepts the result.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/dm/btf.hpp"
#include "graftmatch/dm/dulmage_mendelsohn.hpp"
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/planted.hpp"
#include "graftmatch/gen/sbm.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/parallel.hpp"

// Sanitized builds run the exhaustive enumeration 10-20x slower;
// subsample the 4x4 cell there (deterministically) instead of timing
// out. GRAFTMATCH_TSAN_ACTIVE comes from runtime/parallel.hpp.
#if GRAFTMATCH_TSAN_ACTIVE || defined(__SANITIZE_ADDRESS__)
#define GRAFTMATCH_DM_EXH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GRAFTMATCH_DM_EXH_SANITIZED 1
#endif
#endif
#ifndef GRAFTMATCH_DM_EXH_SANITIZED
#define GRAFTMATCH_DM_EXH_SANITIZED 0
#endif

namespace graftmatch {
namespace {

// ---------------------------------------------------------------------
// Independent reference: alternating reach over mate arrays, sharing no
// code with dm_decompose (which walks a CSR with epoch marks).
// ---------------------------------------------------------------------

struct RefClasses {
  std::vector<int> row_class;  // 0 = H, 1 = S, 2 = V
  std::vector<int> col_class;
};

/// Classify from any MAXIMUM matching: V = alternating reach from
/// unmatched rows (row -> col via any edge, col -> row via the matched
/// edge), H = the mirror reach from unmatched cols, S = the rest. With
/// a maximum matching the two reaches cannot collide (a collision would
/// be an augmenting path).
RefClasses reference_classes(const BipartiteGraph& g, const Matching& m) {
  const auto nx = static_cast<std::size_t>(g.num_x());
  const auto ny = static_cast<std::size_t>(g.num_y());
  RefClasses ref;
  ref.row_class.assign(nx, 1);
  ref.col_class.assign(ny, 1);

  std::vector<vid_t> stack;
  for (vid_t x = 0; x < g.num_x(); ++x) {
    if (!m.is_matched_x(x)) {
      ref.row_class[static_cast<std::size_t>(x)] = 2;
      stack.push_back(x);
    }
  }
  while (!stack.empty()) {
    const vid_t x = stack.back();
    stack.pop_back();
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (ref.col_class[static_cast<std::size_t>(y)] == 2) continue;
      ref.col_class[static_cast<std::size_t>(y)] = 2;
      const vid_t mate = m.mate_of_y(y);
      if (mate != kInvalidVertex &&
          ref.row_class[static_cast<std::size_t>(mate)] != 2) {
        ref.row_class[static_cast<std::size_t>(mate)] = 2;
        stack.push_back(mate);
      }
    }
  }
  for (vid_t y = 0; y < g.num_y(); ++y) {
    if (!m.is_matched_y(y) && ref.col_class[static_cast<std::size_t>(y)] == 1) {
      ref.col_class[static_cast<std::size_t>(y)] = 0;
      stack.push_back(y);
    }
  }
  while (!stack.empty()) {
    const vid_t y = stack.back();
    stack.pop_back();
    for (const vid_t x : g.neighbors_of_y(y)) {
      if (ref.row_class[static_cast<std::size_t>(x)] != 1) continue;
      ref.row_class[static_cast<std::size_t>(x)] = 0;
      const vid_t mate = m.mate_of_x(x);
      if (mate != kInvalidVertex &&
          ref.col_class[static_cast<std::size_t>(mate)] == 1) {
        ref.col_class[static_cast<std::size_t>(mate)] = 0;
        stack.push_back(mate);
      }
    }
  }
  return ref;
}

int rank_of(DmBlock b) { return static_cast<int>(b); }

/// Every structural invariant of a legal coarse decomposition, checked
/// against an oracle matching number.
void check_coarse_invariants(const BipartiteGraph& g,
                             const DmDecomposition& dm, std::int64_t nu) {
  ASSERT_EQ(static_cast<vid_t>(dm.row_block.size()), g.num_x());
  ASSERT_EQ(static_cast<vid_t>(dm.col_block.size()), g.num_y());
  EXPECT_EQ(dm.structural_rank(), nu);
  EXPECT_TRUE(is_valid_matching(g, dm.matching));
  EXPECT_TRUE(is_maximum_matching(g, dm.matching));

  // Exactly-once classification: the three tallies partition each side.
  EXPECT_EQ(dm.rows_in(DmBlock::kHorizontal) + dm.rows_in(DmBlock::kSquare) +
                dm.rows_in(DmBlock::kVertical),
            static_cast<std::int64_t>(g.num_x()));
  EXPECT_EQ(dm.cols_in(DmBlock::kHorizontal) + dm.cols_in(DmBlock::kSquare) +
                dm.cols_in(DmBlock::kVertical),
            static_cast<std::int64_t>(g.num_y()));

  // Zero blocks of the coarse BTF: no edge points downhill.
  for (vid_t x = 0; x < g.num_x(); ++x) {
    for (const vid_t y : g.neighbors_of_x(x)) {
      ASSERT_LE(rank_of(dm.row_block[static_cast<std::size_t>(x)]),
                rank_of(dm.col_block[static_cast<std::size_t>(y)]))
          << "edge (" << x << "," << y << ") points downhill";
    }
  }

  // Matched pairs co-travel; saturation per class.
  for (vid_t x = 0; x < g.num_x(); ++x) {
    const DmBlock bx = dm.row_block[static_cast<std::size_t>(x)];
    const vid_t y = dm.matching.mate_of_x(x);
    if (y != kInvalidVertex) {
      ASSERT_EQ(rank_of(bx), rank_of(dm.col_block[static_cast<std::size_t>(y)]))
          << "matched pair (" << x << "," << y << ") straddles classes";
    } else {
      ASSERT_EQ(bx, DmBlock::kVertical) << "unmatched row " << x
                                        << " must be vertical";
    }
  }
  for (vid_t y = 0; y < g.num_y(); ++y) {
    if (!dm.matching.is_matched_y(y)) {
      ASSERT_EQ(dm.col_block[static_cast<std::size_t>(y)],
                DmBlock::kHorizontal)
          << "unmatched col " << y << " must be horizontal";
    }
  }

  // Square part perfectly matched; surplus identities pin the H/V sizes
  // to the deficiency on each side.
  EXPECT_EQ(dm.rows_in(DmBlock::kSquare), dm.cols_in(DmBlock::kSquare));
  EXPECT_EQ(dm.rows_in(DmBlock::kVertical) - dm.cols_in(DmBlock::kVertical),
            static_cast<std::int64_t>(g.num_x()) - nu);
  EXPECT_EQ(dm.cols_in(DmBlock::kHorizontal) - dm.rows_in(DmBlock::kHorizontal),
            static_cast<std::int64_t>(g.num_y()) - nu);
}

void check_same_partition(const DmDecomposition& dm, const RefClasses& ref) {
  for (std::size_t x = 0; x < ref.row_class.size(); ++x) {
    ASSERT_EQ(rank_of(dm.row_block[x]), ref.row_class[x]) << "row " << x;
  }
  for (std::size_t y = 0; y < ref.col_class.size(); ++y) {
    ASSERT_EQ(rank_of(dm.col_block[y]), ref.col_class[y]) << "col " << y;
  }
}

/// Permutation validity + block boundary consistency, beyond what
/// verify_btf (which focuses on zero-structure) asserts.
void check_btf_shape(const BipartiteGraph& g, const BlockTriangularForm& btf) {
  const auto nx = static_cast<std::size_t>(g.num_x());
  const auto ny = static_cast<std::size_t>(g.num_y());
  ASSERT_EQ(btf.row_perm.size(), nx);
  ASSERT_EQ(btf.col_perm.size(), ny);
  std::vector<std::uint8_t> seen_row(nx, 0);
  for (const vid_t r : btf.row_perm) {
    ASSERT_LT(static_cast<std::size_t>(r), nx);
    ASSERT_FALSE(seen_row[static_cast<std::size_t>(r)])
        << "row " << r << " appears twice";
    seen_row[static_cast<std::size_t>(r)] = 1;
  }
  std::vector<std::uint8_t> seen_col(ny, 0);
  for (const vid_t c : btf.col_perm) {
    ASSERT_LT(static_cast<std::size_t>(c), ny);
    ASSERT_FALSE(seen_col[static_cast<std::size_t>(c)])
        << "col " << c << " appears twice";
    seen_col[static_cast<std::size_t>(c)] = 1;
  }

  ASSERT_GE(btf.square_row_begin, 0);
  ASSERT_LE(btf.square_row_begin, btf.square_row_end);
  ASSERT_LE(btf.square_row_end, static_cast<std::int64_t>(nx));
  ASSERT_GE(btf.square_col_begin, 0);
  ASSERT_LE(btf.square_col_begin, btf.square_col_end);
  ASSERT_LE(btf.square_col_end, static_cast<std::int64_t>(ny));
  const std::int64_t square =
      btf.square_row_end - btf.square_row_begin;
  ASSERT_EQ(square, btf.square_col_end - btf.square_col_begin);

  // Block offsets: monotone, spanning exactly the square part.
  ASSERT_GE(btf.block_offsets.size(), 1u);
  ASSERT_EQ(btf.block_offsets.front(), 0);
  ASSERT_EQ(btf.block_offsets.back(), square);
  for (std::size_t b = 1; b < btf.block_offsets.size(); ++b) {
    ASSERT_LT(btf.block_offsets[b - 1], btf.block_offsets[b]);
  }

  // The permutation segments agree with the coarse classes.
  const DmDecomposition& dm = btf.decomposition();
  for (std::size_t i = 0; i < nx; ++i) {
    const DmBlock expected =
        static_cast<std::int64_t>(i) < btf.square_row_begin
            ? DmBlock::kHorizontal
            : (static_cast<std::int64_t>(i) < btf.square_row_end
                   ? DmBlock::kSquare
                   : DmBlock::kVertical);
    ASSERT_EQ(dm.row_block[static_cast<std::size_t>(btf.row_perm[i])],
              expected)
        << "permuted row position " << i;
  }
  for (std::size_t i = 0; i < ny; ++i) {
    const DmBlock expected =
        static_cast<std::int64_t>(i) < btf.square_col_begin
            ? DmBlock::kHorizontal
            : (static_cast<std::int64_t>(i) < btf.square_col_end
                   ? DmBlock::kSquare
                   : DmBlock::kVertical);
    ASSERT_EQ(dm.col_block[static_cast<std::size_t>(btf.col_perm[i])],
              expected)
        << "permuted col position " << i;
  }
}

// ---------------------------------------------------------------------
// Fuzz corpus: one graph per generator family x seed, small enough for
// the O(n m) checks to stay fast but structurally diverse (communities,
// power laws, planted bottlenecks, near-regular noise).
// ---------------------------------------------------------------------

std::vector<BipartiteGraph> fuzz_corpus(std::uint64_t seed) {
  std::vector<BipartiteGraph> graphs;
  {
    SbmParams p;
    p.rows_per_block = 96;
    p.cols_per_block = 96;
    p.blocks = 6;
    p.in_degree = 3.0;
    p.out_degree = 0.4;
    p.seed = seed;
    graphs.push_back(generate_sbm(p));
  }
  {
    SbmParams p;  // disconnected islands with row surplus
    p.rows_per_block = 80;
    p.cols_per_block = 48;
    p.blocks = 8;
    p.in_degree = 2.5;
    p.out_degree = 0.0;
    p.seed = seed + 1;
    graphs.push_back(generate_sbm(p));
  }
  {
    WebCrawlParams p;
    p.nx = 600;
    p.ny = 500;
    p.avg_degree = 4.0;
    p.gamma = 1.9;
    p.stub_fraction = 0.5;
    p.hub_count = 16;
    p.seed = seed + 2;
    graphs.push_back(generate_webcrawl(p));
  }
  {
    PlantedParams p;
    p.matched_pairs = 512;
    p.surplus_rows = 64;
    p.bottleneck = 16;
    p.noise_degree = 3.0;
    p.seed = seed + 3;
    graphs.push_back(generate_planted(p).graph);
  }
  {
    ChungLuParams p;
    p.nx = 700;
    p.ny = 650;
    p.avg_degree = 2.0;  // sparse: large H and V parts
    p.seed = seed + 4;
    graphs.push_back(generate_chung_lu(p));
  }
  {
    ErdosRenyiParams p;
    p.nx = 400;
    p.ny = 520;
    p.edges = 2000;  // ~5 per row: mixed saturated/deficient regions
    p.seed = seed + 5;
    graphs.push_back(generate_erdos_renyi(p));
  }
  return graphs;
}

std::int64_t hk_oracle(const BipartiteGraph& g, Matching* out = nullptr) {
  Matching m(g.num_x(), g.num_y());
  hopcroft_karp(g, m);
  const std::int64_t nu = m.cardinality();
  if (out != nullptr) *out = std::move(m);
  return nu;
}

class DmProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DmProperties, CoarseInvariantsOnFuzzCorpus) {
  for (const BipartiteGraph& g : fuzz_corpus(GetParam())) {
    const std::int64_t nu = hk_oracle(g);
    const DmDecomposition dm = dm_decompose(g);
    check_coarse_invariants(g, dm, nu);
  }
}

TEST_P(DmProperties, CanonicalAcrossMatchings) {
  // dm_decompose picks its own maximum matching (MS-BFS-Graft from
  // Karp-Sipser); the reference reach runs from Hopcroft-Karp's. The
  // partitions must be identical anyway, and so must the explicit
  // matching-reuse overload's.
  for (const BipartiteGraph& g : fuzz_corpus(GetParam() + 100)) {
    Matching hk_matching;
    hk_oracle(g, &hk_matching);
    const RefClasses ref = reference_classes(g, hk_matching);
    check_same_partition(dm_decompose(g), ref);
    check_same_partition(dm_decompose(g, hk_matching), ref);
  }
}

TEST_P(DmProperties, BtfShapeOnFuzzCorpus) {
  for (const BipartiteGraph& g : fuzz_corpus(GetParam() + 200)) {
    const BlockTriangularForm btf = block_triangular_form(g);
    check_btf_shape(g, btf);
    EXPECT_TRUE(verify_btf(g, btf));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmProperties,
                         ::testing::Values(31, 32, 33, 34));

// ---------------------------------------------------------------------
// Exhaustive small graphs: every bipartite graph up to 3x3 and a full
// 4x4 sweep, against a from-scratch Kuhn maximum matching. Degenerate
// shapes (empty graphs, isolated vertices, stars, complete blocks) are
// hit by construction.
// ---------------------------------------------------------------------

int kuhn_try(const std::vector<std::vector<int>>& adj, int x,
             std::vector<int>& mate_y, std::vector<char>& seen) {
  for (const int y : adj[static_cast<std::size_t>(x)]) {
    if (seen[static_cast<std::size_t>(y)]) continue;
    seen[static_cast<std::size_t>(y)] = 1;
    if (mate_y[static_cast<std::size_t>(y)] < 0 ||
        kuhn_try(adj, mate_y[static_cast<std::size_t>(y)], mate_y, seen)) {
      mate_y[static_cast<std::size_t>(y)] = x;
      return 1;
    }
  }
  return 0;
}

Matching kuhn_matching(int nx, int ny,
                       const std::vector<std::vector<int>>& adj) {
  std::vector<int> mate_y(static_cast<std::size_t>(ny), -1);
  std::vector<char> seen;
  for (int x = 0; x < nx; ++x) {
    seen.assign(static_cast<std::size_t>(ny), 0);
    kuhn_try(adj, x, mate_y, seen);
  }
  Matching m(nx, ny);
  for (int y = 0; y < ny; ++y) {
    if (mate_y[static_cast<std::size_t>(y)] >= 0) {
      m.match(mate_y[static_cast<std::size_t>(y)], y);
    }
  }
  return m;
}

class ExhaustiveDmCell : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(ExhaustiveDmCell, EveryGraphMatchesBruteForce) {
  const auto [nx, ny] = GetParam();
  const int bits = nx * ny;
#if GRAFTMATCH_DM_EXH_SANITIZED
  // Prime stride keeps the subsample spread across edge patterns.
  const std::uint64_t stride = bits >= 12 ? 97 : 1;
#else
  const std::uint64_t stride = 1;
#endif
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << bits);
       mask += stride) {
    std::vector<std::vector<int>> adj(static_cast<std::size_t>(nx));
    EdgeList list;
    list.nx = nx;
    list.ny = ny;
    for (int bit = 0; bit < bits; ++bit) {
      if ((mask >> bit) & 1u) {
        const int x = bit / ny;
        const int y = bit % ny;
        adj[static_cast<std::size_t>(x)].push_back(y);
        list.edges.push_back({x, y});
      }
    }
    const BipartiteGraph g = BipartiteGraph::from_edges(list);
    const Matching reference = kuhn_matching(nx, ny, adj);
    const RefClasses ref = reference_classes(g, reference);

    const DmDecomposition dm = dm_decompose(g);
    ASSERT_EQ(dm.structural_rank(), reference.cardinality())
        << "nx=" << nx << " ny=" << ny << " mask=" << mask;
    {
      SCOPED_TRACE(::testing::Message()
                   << "nx=" << nx << " ny=" << ny << " mask=" << mask);
      check_same_partition(dm, ref);
      check_coarse_invariants(g, dm, reference.cardinality());
      const BlockTriangularForm btf = block_triangular_form(g, dm);
      check_btf_shape(g, btf);
      ASSERT_TRUE(verify_btf(g, btf));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, ExhaustiveDmCell,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 3),
                      std::make_tuple(3, 1), std::make_tuple(2, 2),
                      std::make_tuple(2, 3), std::make_tuple(3, 2),
                      std::make_tuple(3, 3), std::make_tuple(4, 4)));

}  // namespace
}  // namespace graftmatch
