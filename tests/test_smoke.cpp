// End-to-end smoke tests: every algorithm reaches the same maximum
// cardinality on a few small-but-nontrivial graphs and passes the
// Koenig certificate.
#include <gtest/gtest.h>

#include "graftmatch/graftmatch.hpp"

namespace graftmatch {
namespace {

BipartiteGraph small_rmat() {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8.0;
  params.seed = 42;
  return generate_rmat(params);
}

TEST(Smoke, GraftReachesMaximum) {
  const BipartiteGraph g = small_rmat();
  Matching matching = karp_sipser(g);
  ASSERT_TRUE(is_valid_matching(g, matching));
  const RunStats stats = ms_bfs_graft(g, matching);
  EXPECT_TRUE(is_valid_matching(g, matching));
  EXPECT_TRUE(is_maximum_matching(g, matching));
  EXPECT_EQ(stats.final_cardinality, matching.cardinality());
  EXPECT_GE(stats.final_cardinality, stats.initial_cardinality);
}

TEST(Smoke, AllAlgorithmsAgree) {
  const BipartiteGraph g = small_rmat();
  const std::int64_t expected = maximum_matching_cardinality(g);

  const auto check = [&](auto&& algorithm, const char* name) {
    Matching matching = karp_sipser(g);
    algorithm(g, matching);
    EXPECT_TRUE(is_maximum_matching(g, matching)) << name;
    EXPECT_EQ(matching.cardinality(), expected) << name;
  };

  check([](const auto& graph, auto& m) { return ms_bfs_graft(graph, m); },
        "ms_bfs_graft");
  check([](const auto& graph, auto& m) { return ms_bfs(graph, m); },
        "ms_bfs");
  check([](const auto& graph, auto& m) { return pothen_fan(graph, m); },
        "pothen_fan");
  check([](const auto& graph, auto& m) { return push_relabel(graph, m); },
        "push_relabel");
  check([](const auto& graph, auto& m) { return hopcroft_karp(graph, m); },
        "hopcroft_karp");
  check([](const auto& graph, auto& m) { return ss_bfs(graph, m); },
        "ss_bfs");
  check([](const auto& graph, auto& m) { return ss_dfs(graph, m); },
        "ss_dfs");
}

TEST(Smoke, DmAndBtf) {
  const BipartiteGraph g = small_rmat();
  const BlockTriangularForm btf = block_triangular_form(g);
  EXPECT_TRUE(verify_btf(g, btf));
}

}  // namespace
}  // namespace graftmatch
