// Property battery for the kernelization pre-pass (ctest label:
// reduce; also runs in the TSan stress tier).
//
// The load-bearing properties, each checked against independent
// oracles (Hopcroft-Karp for nu, the Koenig certificate for
// maximality, validate_matching for well-formedness):
//   1. nu(kernel) + forced + folds == nu(original) for every mode, on
//      the whole differential corpus and on fresh random draws.
//   2. reconstruct_matching of a maximum kernel matching is a valid,
//      MAXIMUM matching of the original graph.
//   3. reduce -> compact -> reduce is idempotent: a second pass finds
//      nothing.
//   4. The pipeline is deterministic in the thread count: kernel, log,
//      and counters are bit-identical serial vs. parallel.
// Plus exact-counter checks on hand-built shapes (pendant cascades,
// degree-2 folds, degenerate graphs) and an end-to-end sweep through
// engine::run_reduced over every registry solver.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "diff_harness.hpp"
#include "graftmatch/graftmatch.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace {

using namespace graftmatch;  // NOLINT

// Debug + TSan is an order of magnitude slower; thin dense sweeps so
// the stress tier stays in budget while every property still runs.
#if GRAFTMATCH_TSAN_ACTIVE
constexpr std::size_t kCorpusStride = 4;
constexpr int kRandomDraws = 12;
#else
constexpr std::size_t kCorpusStride = 1;
constexpr int kRandomDraws = 48;
#endif

const std::vector<diff::Instance>& corpus() {
  static const std::vector<diff::Instance> instances =
      diff::build_corpus(0x5EEDC0DEu);
  return instances;
}

std::int64_t oracle_nu(const diff::Instance& inst) {
  if (inst.known_maximum >= 0) return inst.known_maximum;
  return maximum_matching_cardinality(inst.graph);
}

std::int64_t lifted(const reduce::Reduction& red) {
  return red.stats.forced_matches + red.stats.folds;
}

/// Maximum matching of `g` via the Hopcroft-Karp oracle.
Matching solve_maximum(const BipartiteGraph& g) {
  Matching m(g.num_x(), g.num_y());
  hopcroft_karp(g, m);
  return m;
}

const ReduceMode kModes[] = {ReduceMode::kDegree1, ReduceMode::kDegree12};

BipartiteGraph random_graph(Xoshiro256& rng) {
  const vid_t nx = 1 + static_cast<vid_t>(rng() % 40);
  const vid_t ny = 1 + static_cast<vid_t>(rng() % 40);
  const std::int64_t m = static_cast<std::int64_t>(
      rng() % static_cast<std::uint64_t>(2 * (nx + ny)));
  EdgeList list;
  list.nx = nx;
  list.ny = ny;
  for (std::int64_t e = 0; e < m; ++e) {
    list.edges.push_back({static_cast<vid_t>(rng() %
                                             static_cast<std::uint64_t>(nx)),
                          static_cast<vid_t>(rng() %
                                             static_cast<std::uint64_t>(ny))});
  }
  return BipartiteGraph::from_edges(list);
}

TEST(ReduceProperties, KernelNuPlusLiftedEqualsOriginalNuOnCorpus) {
  for (std::size_t i = 0; i < corpus().size(); i += kCorpusStride) {
    const diff::Instance& inst = corpus()[i];
    const std::int64_t nu = oracle_nu(inst);
    for (const ReduceMode mode : kModes) {
      const reduce::Reduction red = reduce::reduce_graph(inst.graph, mode);
      const std::int64_t kernel_nu =
          maximum_matching_cardinality(reduce::solve_graph(red, inst.graph));
      EXPECT_EQ(kernel_nu + lifted(red), nu)
          << inst.name << " " << reduce::debug_summary(red);
    }
  }
}

TEST(ReduceProperties, ReconstructionIsValidAndMaximumOnCorpus) {
  for (std::size_t i = 0; i < corpus().size(); i += kCorpusStride) {
    const diff::Instance& inst = corpus()[i];
    const std::int64_t nu = oracle_nu(inst);
    for (const ReduceMode mode : kModes) {
      const reduce::Reduction red = reduce::reduce_graph(inst.graph, mode);
      const Matching kernel_matching =
          solve_maximum(reduce::solve_graph(red, inst.graph));
      const Matching m =
          reduce::reconstruct_matching(inst.graph, red, kernel_matching);
      EXPECT_EQ(validate_matching(inst.graph, m), "")
          << inst.name << " " << reduce::debug_summary(red);
      EXPECT_TRUE(is_maximum_matching(inst.graph, m))
          << inst.name << " " << reduce::debug_summary(red);
      EXPECT_EQ(m.cardinality(), nu)
          << inst.name << " " << reduce::debug_summary(red);
    }
  }
}

TEST(ReduceProperties, ReduceCompactReduceIsIdempotent) {
  for (std::size_t i = 0; i < corpus().size(); i += kCorpusStride) {
    const diff::Instance& inst = corpus()[i];
    for (const ReduceMode mode : kModes) {
      const reduce::Reduction first = reduce::reduce_graph(inst.graph, mode);
      const BipartiteGraph& k1 = reduce::solve_graph(first, inst.graph);
      const reduce::Reduction second = reduce::reduce_graph(k1, mode);
      EXPECT_EQ(second.stats.forced_matches, 0)
          << inst.name << " " << reduce::debug_summary(second);
      EXPECT_EQ(second.stats.folds, 0) << inst.name;
      EXPECT_EQ(second.stats.isolated_x, 0) << inst.name;
      EXPECT_EQ(second.stats.isolated_y, 0) << inst.name;
      EXPECT_TRUE(second.ops.empty()) << inst.name;
      // A second pass never finds anything, so it is always identity.
      EXPECT_TRUE(second.identity) << inst.name;
      const BipartiteGraph& k2 = reduce::solve_graph(second, k1);
      EXPECT_EQ(k2.num_x(), k1.num_x()) << inst.name;
      EXPECT_EQ(k2.num_y(), k1.num_y()) << inst.name;
      EXPECT_EQ(k2.num_edges(), k1.num_edges()) << inst.name;
    }
  }
}

TEST(ReduceProperties, DeterministicAcrossThreadCounts) {
  // Sparse enough to reduce heavily, big enough (> 4096 edges) that the
  // classification and compaction phases actually open parallel regions.
  const BipartiteGraph g = generate_erdos_renyi(
      {.nx = 4000, .ny = 4000, .edges = 9000, .seed = 17});
  ASSERT_GT(g.num_edges(), 4096);
  for (const ReduceMode mode : kModes) {
    reduce::Reduction serial;
    {
      const ThreadCountGuard guard(1);
      serial = reduce::reduce_graph(g, mode);
    }
    const reduce::Reduction parallel = reduce::reduce_graph(g, mode);
    EXPECT_EQ(serial.ops, parallel.ops);
    EXPECT_EQ(serial.kernel_x_to_orig, parallel.kernel_x_to_orig);
    EXPECT_EQ(serial.kernel_y_to_rep, parallel.kernel_y_to_rep);
    EXPECT_EQ(serial.stats.rounds, parallel.stats.rounds);
    EXPECT_EQ(serial.stats.isolated_x, parallel.stats.isolated_x);
    EXPECT_EQ(serial.stats.isolated_y, parallel.stats.isolated_y);
    EXPECT_EQ(serial.stats.forced_matches, parallel.stats.forced_matches);
    EXPECT_EQ(serial.stats.folds, parallel.stats.folds);
    EXPECT_EQ(serial.identity, parallel.identity);
    const EdgeList a = reduce::solve_graph(serial, g).to_edges();
    const EdgeList b = reduce::solve_graph(parallel, g).to_edges();
    EXPECT_EQ(a.nx, b.nx);
    EXPECT_EQ(a.ny, b.ny);
    EXPECT_EQ(a.edges, b.edges);
  }
}

TEST(ReduceProperties, PendantCascadeOnPath) {
  // Path x0-y0-x1-y1-x2-y2-x3: nu = 3, fully consumed by the pendant
  // rule (x3 goes isolated once y2 is taken).
  EdgeList list;
  list.nx = 4;
  list.ny = 3;
  list.edges = {{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}, {3, 2}};
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const reduce::Reduction red =
      reduce::reduce_graph(g, ReduceMode::kDegree1);
  EXPECT_EQ(red.stats.forced_matches, 3) << reduce::debug_summary(red);
  EXPECT_EQ(red.stats.isolated_x, 1);
  EXPECT_EQ(red.kernel.num_x(), 0);
  EXPECT_EQ(red.kernel.num_y(), 0);
  EXPECT_GE(red.stats.rounds, 2);  // the cascade needs multiple rounds

  const Matching m = reduce::reconstruct_matching(
      g, red, Matching(red.kernel.num_x(), red.kernel.num_y()));
  EXPECT_EQ(validate_matching(g, m), "");
  EXPECT_TRUE(is_maximum_matching(g, m));
  EXPECT_EQ(m.cardinality(), 3);
}

TEST(ReduceProperties, DegreeTwoFoldOnCycle) {
  // C4: x0,x1 each adjacent to y0,y1; nu = 2. d1 finds nothing; d1d2
  // folds one x (merging y0,y1) and then force-matches the other.
  EdgeList list;
  list.nx = 2;
  list.ny = 2;
  list.edges = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const BipartiteGraph g = BipartiteGraph::from_edges(list);

  const reduce::Reduction d1 = reduce::reduce_graph(g, ReduceMode::kDegree1);
  EXPECT_TRUE(d1.identity) << reduce::debug_summary(d1);
  EXPECT_EQ(reduce::solve_graph(d1, g).num_edges(), g.num_edges());
  EXPECT_TRUE(d1.ops.empty());

  const reduce::Reduction d2 = reduce::reduce_graph(g, ReduceMode::kDegree12);
  EXPECT_EQ(d2.stats.folds, 1) << reduce::debug_summary(d2);
  EXPECT_EQ(d2.stats.forced_matches, 1);
  EXPECT_EQ(d2.kernel.num_x(), 0);
  EXPECT_EQ(d2.kernel.num_y(), 0);

  const Matching m = reduce::reconstruct_matching(
      g, d2, Matching(d2.kernel.num_x(), d2.kernel.num_y()));
  EXPECT_EQ(validate_matching(g, m), "");
  EXPECT_TRUE(is_maximum_matching(g, m));
  EXPECT_EQ(m.cardinality(), 2);
}

TEST(ReduceProperties, DegenerateGraphs) {
  for (const ReduceMode mode : kModes) {
    // Completely empty.
    const BipartiteGraph empty = BipartiteGraph::from_edges({0, 0, {}});
    const reduce::Reduction r0 = reduce::reduce_graph(empty, mode);
    EXPECT_EQ(r0.kernel.num_vertices(), 0);
    EXPECT_TRUE(
        is_maximum_matching(empty, reduce::reconstruct_matching(
                                       empty, r0, Matching(0, 0))));

    // Edgeless parts: everything is isolated.
    const BipartiteGraph edgeless = BipartiteGraph::from_edges({3, 5, {}});
    const reduce::Reduction r1 = reduce::reduce_graph(edgeless, mode);
    EXPECT_EQ(r1.kernel.num_vertices(), 0) << reduce::debug_summary(r1);
    EXPECT_EQ(r1.stats.isolated_x, 3);
    EXPECT_EQ(r1.stats.isolated_y, 5);
    const Matching m1 = reduce::reconstruct_matching(
        edgeless, r1, Matching(0, 0));
    EXPECT_TRUE(is_maximum_matching(edgeless, m1));

    // Star: one Y, many pendant X. One forced match, the rest isolated.
    EdgeList star;
    star.nx = 4;
    star.ny = 1;
    star.edges = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
    const BipartiteGraph gs = BipartiteGraph::from_edges(star);
    const reduce::Reduction r2 = reduce::reduce_graph(gs, mode);
    EXPECT_EQ(r2.stats.forced_matches, 1) << reduce::debug_summary(r2);
    EXPECT_EQ(r2.stats.isolated_x, 3);
    EXPECT_EQ(r2.kernel.num_vertices(), 0);
    const Matching m2 = reduce::reconstruct_matching(gs, r2, Matching(0, 0));
    EXPECT_TRUE(is_maximum_matching(gs, m2));
    EXPECT_EQ(m2.cardinality(), 1);

    // K3,3: every X has degree 3; nothing reduces in either mode.
    EdgeList k33;
    k33.nx = 3;
    k33.ny = 3;
    for (vid_t x = 0; x < 3; ++x) {
      for (vid_t y = 0; y < 3; ++y) k33.edges.push_back({x, y});
    }
    const BipartiteGraph gk = BipartiteGraph::from_edges(k33);
    const reduce::Reduction r3 = reduce::reduce_graph(gk, mode);
    EXPECT_TRUE(r3.ops.empty()) << reduce::debug_summary(r3);
    EXPECT_TRUE(r3.identity);
    EXPECT_EQ(reduce::solve_graph(r3, gk).num_edges(), 9);
    // Identity means no rebuilt kernel at all: the empty member proves
    // the no-copy fast path actually ran.
    EXPECT_EQ(r3.kernel.num_edges(), 0);
  }
}

TEST(ReduceProperties, ModeNoneIsVerbatim) {
  const diff::Instance& inst = corpus().front();
  const reduce::Reduction red =
      reduce::reduce_graph(inst.graph, ReduceMode::kNone);
  EXPECT_EQ(red.kernel.num_x(), inst.graph.num_x());
  EXPECT_EQ(red.kernel.num_y(), inst.graph.num_y());
  EXPECT_EQ(red.kernel.num_edges(), inst.graph.num_edges());
  EXPECT_TRUE(red.ops.empty());
  const Matching kernel_matching = solve_maximum(red.kernel);
  const Matching m =
      reduce::reconstruct_matching(inst.graph, red, kernel_matching);
  EXPECT_TRUE(is_maximum_matching(inst.graph, m));
}

TEST(ReduceProperties, CountersAreConsistent) {
  for (std::size_t i = 0; i < corpus().size(); i += kCorpusStride) {
    const diff::Instance& inst = corpus()[i];
    for (const ReduceMode mode : kModes) {
      const reduce::Reduction red = reduce::reduce_graph(inst.graph, mode);
      const BipartiteGraph& kernel = reduce::solve_graph(red, inst.graph);
      const ReduceCounters& s = red.stats;
      EXPECT_TRUE(s.collected);
      EXPECT_EQ(s.mode, mode);
      EXPECT_EQ(s.kernel_nx, kernel.num_x());
      EXPECT_EQ(s.kernel_ny, kernel.num_y());
      EXPECT_EQ(s.kernel_edges, kernel.num_edges());
      if (red.identity) {
        // Identity skips the rebuild; maps stay empty and nothing was
        // removed.
        EXPECT_TRUE(red.kernel_x_to_orig.empty());
        EXPECT_TRUE(red.kernel_y_to_rep.empty());
        EXPECT_EQ(s.vertices_removed, 0);
        EXPECT_EQ(s.edges_removed, 0);
      } else {
        EXPECT_GE(s.rounds, 1);
        EXPECT_EQ(static_cast<std::int64_t>(red.kernel_x_to_orig.size()),
                  s.kernel_nx);
        EXPECT_EQ(static_cast<std::int64_t>(red.kernel_y_to_rep.size()),
                  s.kernel_ny);
      }
      EXPECT_EQ(s.vertices_removed,
                (inst.graph.num_x() - s.kernel_nx) +
                    (inst.graph.num_y() - s.kernel_ny));
      EXPECT_EQ(s.edges_removed, inst.graph.num_edges() - s.kernel_edges);
      EXPECT_EQ(static_cast<std::int64_t>(red.ops.size()),
                s.forced_matches + s.folds);
      EXPECT_GE(s.reduce_seconds, 0.0);
      EXPECT_GE(s.compact_seconds, 0.0);
    }
  }
}

TEST(ReduceProperties, RandomSweepNuAndReconstruction) {
  Xoshiro256 rng(0xFEEDFACEu);
  for (int draw = 0; draw < kRandomDraws; ++draw) {
    const BipartiteGraph g = random_graph(rng);
    const std::int64_t nu = maximum_matching_cardinality(g);
    for (const ReduceMode mode : kModes) {
      const reduce::Reduction red = reduce::reduce_graph(g, mode);
      const BipartiteGraph& kernel = reduce::solve_graph(red, g);
      EXPECT_EQ(maximum_matching_cardinality(kernel) + lifted(red), nu)
          << "draw " << draw << " " << reduce::debug_summary(red);
      const Matching m = reduce::reconstruct_matching(
          g, red, solve_maximum(kernel));
      EXPECT_EQ(validate_matching(g, m), "")
          << "draw " << draw << " " << reduce::debug_summary(red);
      EXPECT_TRUE(is_maximum_matching(g, m))
          << "draw " << draw << " " << reduce::debug_summary(red);
      EXPECT_EQ(m.cardinality(), nu) << "draw " << draw;
    }
  }
}

TEST(ReduceProperties, RunReducedMatchesOracleForEverySolver) {
  std::size_t checked = 0;
  for (std::size_t i = 0; i < corpus().size() && checked < 3;
       i += 5, ++checked) {
    const diff::Instance& inst = corpus()[i];
    const std::int64_t nu = oracle_nu(inst);
    for (const std::string& solver : engine::solver_names()) {
      for (const ReduceMode mode : kModes) {
        RunConfig config;
        config.reduce = mode;
        Matching m;
        const RunStats stats =
            engine::run_reduced(solver, "none", inst.graph, m, config);
        EXPECT_EQ(validate_matching(inst.graph, m), "")
            << inst.name << " " << solver << " " << to_string(mode);
        EXPECT_TRUE(is_maximum_matching(inst.graph, m))
            << inst.name << " " << solver << " " << to_string(mode);
        EXPECT_EQ(m.cardinality(), nu) << inst.name << " " << solver;
        EXPECT_EQ(stats.final_cardinality, nu) << inst.name << " " << solver;
        EXPECT_TRUE(stats.reduce.collected);
        EXPECT_EQ(stats.reduce.mode, mode);
        EXPECT_LE(stats.initial_cardinality, stats.final_cardinality);
      }
    }
  }
  EXPECT_GE(checked, 1u);
}

}  // namespace
