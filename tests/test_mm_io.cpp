// Unit tests for Matrix Market I/O.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/mm_io.hpp"

namespace graftmatch {
namespace {

TEST(MatrixMarket, ParsesCoordinateReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 4 0.25\n");
  const EdgeList list = read_matrix_market(in);
  EXPECT_EQ(list.nx, 3);
  EXPECT_EQ(list.ny, 4);
  ASSERT_EQ(list.edges.size(), 3u);
  EXPECT_EQ(list.edges[0], (Edge{0, 0}));
  EXPECT_EQ(list.edges[1], (Edge{1, 2}));
  EXPECT_EQ(list.edges[2], (Edge{2, 3}));
}

TEST(MatrixMarket, ParsesPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const EdgeList list = read_matrix_market(in);
  ASSERT_EQ(list.edges.size(), 2u);
  EXPECT_EQ(list.edges[0], (Edge{0, 1}));
}

TEST(MatrixMarket, ExpandsSymmetricStorage) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 2.0\n"
      "3 2 3.0\n");
  const EdgeList list = read_matrix_market(in);
  // diag (0,0) + mirrored (1,0)/(0,1) + (2,1)/(1,2) = 5 edges.
  EXPECT_EQ(list.edges.size(), 5u);
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(2, 0));
}

TEST(MatrixMarket, CaseInsensitiveBanner) {
  std::istringstream in(
      "%%MatrixMarket MATRIX Coordinate Pattern General\n"
      "1 1 1\n"
      "1 1\n");
  EXPECT_EQ(read_matrix_market(in).edges.size(), 1u);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::istringstream in("%%NotMatrixMarket matrix coordinate real general\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsIndexOutOfRange) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "3 1\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedFile) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, RejectsNonSquareSymmetric) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  EdgeList original;
  original.nx = 3;
  original.ny = 5;
  original.edges = {{0, 4}, {1, 0}, {2, 2}, {2, 3}};
  original.canonicalize();

  std::ostringstream out;
  write_matrix_market(out, original);
  std::istringstream in(out.str());
  const EdgeList parsed = read_matrix_market(in);
  EXPECT_EQ(parsed.nx, original.nx);
  EXPECT_EQ(parsed.ny, original.ny);
  EXPECT_EQ(parsed.edges, original.edges);
}

TEST(MatrixMarket, FileRoundTrip) {
  EdgeList original;
  original.nx = 2;
  original.ny = 2;
  original.edges = {{0, 0}, {1, 1}};
  const std::string path = testing::TempDir() + "/graftmatch_roundtrip.mtx";
  write_matrix_market_file(path, original);
  const EdgeList parsed = read_matrix_market_file(path);
  EXPECT_EQ(parsed.edges, original.edges);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/graph.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace graftmatch
