// Tests for the serving layer (src/graftmatch/serve/): the bounded
// admission queue, the key=value wire protocol and its framing, the
// graph roster with its load-time oracle, the MatchServer lifecycle
// (admission control, per-session workers, cardinality audit, error
// responses), and the Unix-domain-socket front end running end to end.
//
// Carries the `serve` label so CI can select the serving battery on
// its own (the TSan leg runs it alongside the stress tier).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/gen/planted.hpp"
#include "graftmatch/serve/bounded_queue.hpp"
#include "graftmatch/serve/protocol.hpp"
#include "graftmatch/serve/roster.hpp"
#include "graftmatch/serve/server.hpp"
#include "graftmatch/serve/uds.hpp"

namespace graftmatch::serve {
namespace {

BipartiteGraph planted(std::uint64_t seed, std::int64_t pairs = 400) {
  PlantedParams params;
  params.matched_pairs = pairs;
  params.surplus_rows = 32;
  params.bottleneck = 8;
  params.noise_degree = 3.0;
  params.seed = seed;
  return generate_planted(params).graph;
}

GraphRoster small_roster() {
  GraphRoster roster;
  roster.add("alpha", planted(11, 400));
  roster.add("beta", planted(12, 300));
  return roster;
}

TEST(BoundedQueue, RejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3)) << "at capacity";
  EXPECT_EQ(queue.size(), 2u);

  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.try_push(3)) << "space freed by pop";
}

TEST(BoundedQueue, CloseDrainsBacklogThenReportsClosed) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_FALSE(queue.try_push(3)) << "closed queues admit nothing";

  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.pop(out)) << "closed and drained";
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.pop(out));
  });
  queue.close();
  consumer.join();
}

TEST(Protocol, RequestRoundTrip) {
  MatchRequest request;
  request.graph = "alpha";
  request.solver = "pf";
  request.initializer = "greedy";
  request.threads = 3;
  request.reduce = "d1";
  request.shard = "dm";

  MatchRequest decoded;
  std::string error;
  ASSERT_TRUE(decode_request(encode_request(request), decoded, error))
      << error;
  EXPECT_EQ(decoded.graph, "alpha");
  EXPECT_EQ(decoded.solver, "pf");
  EXPECT_EQ(decoded.initializer, "greedy");
  EXPECT_EQ(decoded.threads, 3);
  EXPECT_EQ(decoded.reduce, "d1");
  EXPECT_EQ(decoded.shard, "dm");
}

TEST(Protocol, RequestDefaultsAndUnknownKeys) {
  MatchRequest decoded;
  std::string error;
  // Minimal payload with an unknown key a newer peer might send.
  ASSERT_TRUE(decode_request("graph=g\nfuture_knob=7\n", decoded, error))
      << error;
  EXPECT_EQ(decoded.graph, "g");
  EXPECT_EQ(decoded.solver, "graft");
  EXPECT_EQ(decoded.initializer, "ks");
  EXPECT_EQ(decoded.threads, 0);
}

TEST(Protocol, RequestValidation) {
  MatchRequest decoded;
  std::string error;
  EXPECT_FALSE(decode_request("solver=graft\n", decoded, error))
      << "graph is required";
  EXPECT_FALSE(decode_request("graph=g\nthreads=abc\n", decoded, error));
  EXPECT_FALSE(decode_request("not a key value line\n", decoded, error));
}

TEST(Protocol, ResponseRoundTripIncludingErrorWithEquals) {
  MatchResponse response;
  response.ok = false;
  response.rejected = true;
  response.error = "audit failed: served=41, oracle=42";  // '=' in value
  response.graph = "alpha";
  response.solver = "graft";
  response.initializer = "ks";
  response.cardinality = 41;
  response.maximum = 42;
  response.seconds = 0.125;
  response.session = 9;
  response.threads = 2;

  MatchResponse decoded;
  std::string error;
  ASSERT_TRUE(decode_response(encode_response(response), decoded, error))
      << error;
  EXPECT_FALSE(decoded.ok);
  EXPECT_TRUE(decoded.rejected);
  EXPECT_EQ(decoded.error, response.error);
  EXPECT_EQ(decoded.cardinality, 41);
  EXPECT_EQ(decoded.maximum, 42);
  EXPECT_DOUBLE_EQ(decoded.seconds, 0.125);
  EXPECT_EQ(decoded.session, 9u);
  EXPECT_EQ(decoded.threads, 2);
}

TEST(Protocol, EncoderSanitizesNewlines) {
  MatchResponse response;
  response.ok = false;
  response.error = "line one\nline two";
  MatchResponse decoded;
  std::string error;
  ASSERT_TRUE(decode_response(encode_response(response), decoded, error))
      << error;
  EXPECT_EQ(decoded.error, "line one line two");
}

TEST(Protocol, FramesRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  EXPECT_TRUE(write_frame(fds[0], "graph=alpha\n"));
  EXPECT_TRUE(write_frame(fds[0], ""));  // empty payload is a valid frame
  std::string payload;
  EXPECT_TRUE(read_frame(fds[1], payload));
  EXPECT_EQ(payload, "graph=alpha\n");
  EXPECT_TRUE(read_frame(fds[1], payload));
  EXPECT_TRUE(payload.empty());

  ::close(fds[0]);
  EXPECT_FALSE(read_frame(fds[1], payload)) << "clean EOF reads false";
  ::close(fds[1]);
}

TEST(Protocol, FrameRejectsOversizedLength) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A length prefix far beyond kMaxFrameBytes must be refused without
  // attempting the allocation.
  const unsigned char header[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::write(fds[0], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  std::string payload;
  EXPECT_FALSE(read_frame(fds[1], payload));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Roster, OracleMatchesHopcroftKarpAndLookupWorks) {
  const GraphRoster roster = small_roster();
  ASSERT_EQ(roster.size(), 2u);
  const RosterEntry* alpha = roster.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->maximum_cardinality,
            maximum_matching_cardinality(alpha->graph));
  EXPECT_EQ(roster.find("gamma"), nullptr);
  EXPECT_EQ(&roster.at(0), roster.find("alpha"));
}

TEST(Roster, DuplicateNamesThrow) {
  GraphRoster roster;
  roster.add("alpha", planted(1, 50));
  EXPECT_THROW(roster.add("alpha", planted(2, 50)), std::invalid_argument);
}

TEST(MatchServer, ServesCorrectCardinalities) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);

  for (const RosterEntry& entry : roster.entries()) {
    MatchRequest request;
    request.graph = entry.name;
    const MatchResponse response = server.solve(std::move(request));
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.cardinality, entry.maximum_cardinality);
    EXPECT_EQ(response.maximum, entry.maximum_cardinality);
    EXPECT_NE(response.session, 0u);
  }
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.accepted, roster.size());
  EXPECT_EQ(counters.completed, roster.size());
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.rejected, 0u);
}

TEST(MatchServer, BadRequestsGetErrorResponsesNotCrashes) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);

  const auto expect_error = [&](MatchRequest request) {
    const MatchResponse response = server.solve(std::move(request));
    EXPECT_FALSE(response.ok);
    EXPECT_FALSE(response.error.empty());
    EXPECT_FALSE(response.rejected) << "failures are not rejections";
  };

  MatchRequest request;
  request.graph = "no-such-graph";
  expect_error(request);

  request.graph = "alpha";
  request.solver = "no-such-solver";
  expect_error(request);

  request.solver = "graft";
  request.initializer = "no-such-init";
  expect_error(request);

  request.initializer = "ks";
  request.reduce = "bogus";
  expect_error(request);

  request.reduce = "none";
  request.shard = "bogus";
  expect_error(request);

  EXPECT_EQ(server.counters().failed, 5u);
  EXPECT_EQ(server.counters().completed, 0u);
}

TEST(MatchServer, SolverAndModeSelectionPerRequest) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);

  for (const std::string& solver : {"graft", "pf", "hk"}) {
    MatchRequest request;
    request.graph = "alpha";
    request.solver = solver;
    const MatchResponse response = server.solve(std::move(request));
    EXPECT_TRUE(response.ok) << solver << ": " << response.error;
    EXPECT_EQ(response.cardinality, roster.find("alpha")->maximum_cardinality)
        << solver;
  }

  MatchRequest request;
  request.graph = "beta";
  request.reduce = "d1";
  request.shard = "dm";
  const MatchResponse response = server.solve(std::move(request));
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.cardinality, roster.find("beta")->maximum_cardinality);
}

TEST(MatchServer, AdmissionControlRejectsBeyondCapacity) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.autostart = false;  // nothing drains while we fill
  MatchServer server(roster, options);

  MatchRequest request;
  request.graph = "alpha";
  std::future<MatchResponse> first, second, overflow;
  EXPECT_TRUE(server.try_submit(request, first));
  EXPECT_TRUE(server.try_submit(request, second));
  EXPECT_FALSE(server.try_submit(request, overflow)) << "queue is full";

  // The blocking path feels the same backpressure as a fast failure.
  const MatchResponse rejected = server.solve(request);
  EXPECT_FALSE(rejected.ok);
  EXPECT_TRUE(rejected.rejected);

  server.start();  // accepted requests still get real answers
  const MatchResponse response_1 = first.get();
  const MatchResponse response_2 = second.get();
  EXPECT_TRUE(response_1.ok) << response_1.error;
  EXPECT_TRUE(response_2.ok) << response_2.error;

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.rejected, 2u);
  EXPECT_EQ(counters.completed, 2u);
}

TEST(MatchServer, ConcurrentClientsAllGetCorrectAnswers) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 3;
  MatchServer server(roster, options);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 6;
  std::vector<int> wrong(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const RosterEntry& entry =
            roster.at(static_cast<std::size_t>(r + c) % roster.size());
        MatchRequest request;
        request.graph = entry.name;
        const MatchResponse response = server.solve(std::move(request));
        if (!response.ok ||
            response.cardinality != entry.maximum_cardinality) {
          ++wrong[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(wrong[static_cast<std::size_t>(c)], 0) << "client " << c;
  }
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.completed,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(counters.failed, 0u);
}

TEST(MatchServer, StopAnswersPendingRequests) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.autostart = false;
  MatchServer server(roster, options);

  MatchRequest request;
  request.graph = "beta";
  std::future<MatchResponse> pending;
  ASSERT_TRUE(server.try_submit(request, pending));
  server.start();
  server.stop();  // close + drain + join: the future must be fulfilled
  const MatchResponse response = pending.get();
  EXPECT_TRUE(response.ok) << response.error;
}

TEST(Uds, EndToEndOverRealSocket) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);
  // Tests run with the binary dir as cwd; a relative path keeps us
  // under sockaddr_un's 108-byte limit regardless of build-tree depth.
  UdsServer uds(server, "test_serve_uds.sock");
  std::string error;
  ASSERT_TRUE(uds.start(error)) << error;

  UdsClient client;
  ASSERT_TRUE(client.connect("test_serve_uds.sock", error)) << error;

  MatchRequest request;
  request.graph = "alpha";
  MatchResponse response;
  ASSERT_TRUE(client.request(request, response, error)) << error;
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.cardinality, roster.find("alpha")->maximum_cardinality);

  // Same connection, second exchange: the per-connection loop persists.
  request.graph = "beta";
  ASSERT_TRUE(client.request(request, response, error)) << error;
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.cardinality, roster.find("beta")->maximum_cardinality);

  client.close();
  uds.stop();
  EXPECT_FALSE(uds.running());
}

TEST(Uds, MalformedPayloadGetsErrorResponse) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);
  UdsServer uds(server, "test_serve_uds_bad.sock");
  std::string error;
  ASSERT_TRUE(uds.start(error)) << error;

  // A request whose graph field is empty fails decode_request on the
  // server side; the connection must answer with an error response
  // instead of dropping.
  UdsClient client;
  ASSERT_TRUE(client.connect("test_serve_uds_bad.sock", error)) << error;
  MatchResponse response;
  MatchRequest empty;  // graph stays empty -> decode_request fails
  ASSERT_TRUE(client.request(empty, response, error)) << error;
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());

  uds.stop();
}

TEST(Uds, RestartAfterStopReusesPath) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);
  UdsServer first(server, "test_serve_uds_restart.sock");
  std::string error;
  ASSERT_TRUE(first.start(error)) << error;
  first.stop();

  UdsServer second(server, "test_serve_uds_restart.sock");
  ASSERT_TRUE(second.start(error)) << error;
  UdsClient client;
  ASSERT_TRUE(client.connect("test_serve_uds_restart.sock", error)) << error;
  MatchRequest request;
  request.graph = "alpha";
  MatchResponse response;
  ASSERT_TRUE(client.request(request, response, error)) << error;
  EXPECT_TRUE(response.ok) << response.error;
  second.stop();
}

}  // namespace
}  // namespace graftmatch::serve
