// Tests for the serving layer (src/graftmatch/serve/): the bounded
// admission queue (including the batching primitives extract_if and
// wait_push_until), the key=value wire protocol and its framing
// (exact double round-trips, control-character rejection in request
// fields), the graph roster with its load-time oracle, the MatchServer
// lifecycle (admission control, batching/coalescing, deadline
// enforcement at admission and dispatch, per-session workers,
// cardinality audit, error responses), and the Unix-domain-socket
// front end running end to end (including connection churn: fds
// deregister before close and finished threads are reaped).
//
// Carries the `serve` label so CI can select the serving battery on
// its own (the TSan and asan+ubsan legs run it alongside the stress
// tier).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/gen/planted.hpp"
#include "graftmatch/serve/batch.hpp"
#include "graftmatch/serve/bounded_queue.hpp"
#include "graftmatch/serve/protocol.hpp"
#include "graftmatch/serve/roster.hpp"
#include "graftmatch/serve/server.hpp"
#include "graftmatch/serve/uds.hpp"

namespace graftmatch::serve {
namespace {

BipartiteGraph planted(std::uint64_t seed, std::int64_t pairs = 400) {
  PlantedParams params;
  params.matched_pairs = pairs;
  params.surplus_rows = 32;
  params.bottleneck = 8;
  params.noise_degree = 3.0;
  params.seed = seed;
  return generate_planted(params).graph;
}

GraphRoster small_roster() {
  GraphRoster roster;
  roster.add("alpha", planted(11, 400));
  roster.add("beta", planted(12, 300));
  return roster;
}

TEST(BoundedQueue, RejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3)) << "at capacity";
  EXPECT_EQ(queue.size(), 2u);

  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.try_push(3)) << "space freed by pop";
}

TEST(BoundedQueue, CloseDrainsBacklogThenReportsClosed) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  queue.close();
  EXPECT_FALSE(queue.try_push(3)) << "closed queues admit nothing";

  int out = 0;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.pop(out)) << "closed and drained";
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(1);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.pop(out));
  });
  queue.close();
  consumer.join();
}

TEST(BoundedQueue, ExtractIfClaimsMatchesAndPreservesTheRest) {
  BoundedQueue<int> queue(8);
  for (const int value : {1, 2, 3, 4, 5, 6}) {
    ASSERT_TRUE(queue.try_push(int{value}));
  }
  std::vector<int> evens;
  EXPECT_EQ(queue.extract_if([](int v) { return v % 2 == 0; }, evens, 2), 2u)
      << "honors the max";
  EXPECT_EQ(evens, (std::vector<int>{2, 4}));
  EXPECT_EQ(queue.extract_if([](int v) { return v % 2 == 0; }, evens, 8), 1u);
  EXPECT_EQ(evens, (std::vector<int>{2, 4, 6}));

  // The odd items kept their relative order.
  int out = 0;
  for (const int expected : {1, 3, 5}) {
    ASSERT_TRUE(queue.pop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueue, WaitPushUntilSeesNewPushesAndTimesOutQuietly) {
  using clock = std::chrono::steady_clock;
  BoundedQueue<int> queue(4);
  const std::uint64_t seen = queue.push_sequence();

  // Nothing arrives: the wait ends at the deadline with the sequence
  // unchanged -- the "stop extending the window" signal.
  EXPECT_EQ(queue.wait_push_until(seen,
                                  clock::now() + std::chrono::milliseconds(5)),
            seen);

  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(queue.try_push(7));
  });
  const std::uint64_t after =
      queue.wait_push_until(seen, clock::now() + std::chrono::seconds(10));
  producer.join();
  EXPECT_GT(after, seen) << "a new push ends the wait early";

  // Close also ends the wait, again leaving the sequence unchanged.
  queue.close();
  const std::uint64_t current = queue.push_sequence();
  EXPECT_EQ(queue.wait_push_until(current,
                                  clock::now() + std::chrono::seconds(10)),
            current);
}

TEST(BatchKey, GroupsOnSolveIdentityNotThreads) {
  MatchRequest a;
  a.graph = "alpha";
  MatchRequest b = a;
  b.threads = 8;  // width is an execution hint, not part of the answer
  EXPECT_EQ(batch_key(a), batch_key(b));

  MatchRequest c = a;
  c.reduce = "d1";
  EXPECT_FALSE(batch_key(a) == batch_key(c));
}

TEST(Protocol, RequestRoundTrip) {
  MatchRequest request;
  request.graph = "alpha";
  request.solver = "pf";
  request.initializer = "greedy";
  request.threads = 3;
  request.reduce = "d1";
  request.shard = "dm";
  request.dirsel = "adaptive";
  request.kernel = "word";

  MatchRequest decoded;
  std::string error;
  ASSERT_TRUE(decode_request(encode_request(request), decoded, error))
      << error;
  EXPECT_EQ(decoded.graph, "alpha");
  EXPECT_EQ(decoded.solver, "pf");
  EXPECT_EQ(decoded.initializer, "greedy");
  EXPECT_EQ(decoded.threads, 3);
  EXPECT_EQ(decoded.reduce, "d1");
  EXPECT_EQ(decoded.shard, "dm");
  EXPECT_EQ(decoded.dirsel, "adaptive");
  EXPECT_EQ(decoded.kernel, "word");
}

TEST(Protocol, RequestDefaultsAndUnknownKeys) {
  MatchRequest decoded;
  std::string error;
  // Minimal payload with an unknown key a newer peer might send.
  ASSERT_TRUE(decode_request("graph=g\nfuture_knob=7\n", decoded, error))
      << error;
  EXPECT_EQ(decoded.graph, "g");
  EXPECT_EQ(decoded.solver, "graft");
  EXPECT_EQ(decoded.initializer, "ks");
  EXPECT_EQ(decoded.threads, 0);
  EXPECT_EQ(decoded.dirsel, "fixed");
  EXPECT_EQ(decoded.kernel, "bit");
}

TEST(Protocol, DirselAndKernelRejectControlCharacters) {
  MatchRequest decoded;
  std::string error;
  EXPECT_FALSE(decode_request("graph=g\ndirsel=ad\x01aptive\n", decoded,
                              error));
  EXPECT_FALSE(decode_request("graph=g\nkernel=wo\trd\n", decoded, error));
  // Unknown-but-clean values pass the wire layer; the server rejects
  // them at config-parse time with a named error (see MatchServer
  // tests), keeping the protocol forward compatible.
  EXPECT_TRUE(decode_request("graph=g\ndirsel=someday\n", decoded, error))
      << error;
  EXPECT_EQ(decoded.dirsel, "someday");
}

TEST(Protocol, RequestValidation) {
  MatchRequest decoded;
  std::string error;
  EXPECT_FALSE(decode_request("solver=graft\n", decoded, error))
      << "graph is required";
  EXPECT_FALSE(decode_request("graph=g\nthreads=abc\n", decoded, error));
  EXPECT_FALSE(decode_request("not a key value line\n", decoded, error));
}

TEST(Protocol, ResponseRoundTripIncludingErrorWithEquals) {
  MatchResponse response;
  response.ok = false;
  response.rejected = true;
  response.error = "audit failed: served=41, oracle=42";  // '=' in value
  response.graph = "alpha";
  response.solver = "graft";
  response.initializer = "ks";
  response.cardinality = 41;
  response.maximum = 42;
  response.seconds = 0.125;
  response.session = 9;
  response.threads = 2;

  MatchResponse decoded;
  std::string error;
  ASSERT_TRUE(decode_response(encode_response(response), decoded, error))
      << error;
  EXPECT_FALSE(decoded.ok);
  EXPECT_TRUE(decoded.rejected);
  EXPECT_EQ(decoded.error, response.error);
  EXPECT_EQ(decoded.cardinality, 41);
  EXPECT_EQ(decoded.maximum, 42);
  EXPECT_DOUBLE_EQ(decoded.seconds, 0.125);
  EXPECT_EQ(decoded.session, 9u);
  EXPECT_EQ(decoded.threads, 2);
}

TEST(Protocol, EncoderSanitizesNewlines) {
  MatchResponse response;
  response.ok = false;
  response.error = "line one\nline two";
  MatchResponse decoded;
  std::string error;
  ASSERT_TRUE(decode_response(encode_response(response), decoded, error))
      << error;
  EXPECT_EQ(decoded.error, "line one line two");
}

TEST(Protocol, DoubleRoundTripIsExact) {
  // The `seconds` a client reads must be bit-for-bit the value the
  // server measured. The old 6-significant-digit ostream encoding
  // fails every case below.
  for (const double seconds :
       {0.1234567890123456, 1.0 / 3.0, 9876.543219876543, 5.4321e-9,
        123456.78901234567}) {
    MatchResponse response;
    response.ok = true;
    response.seconds = seconds;
    MatchResponse decoded;
    std::string error;
    ASSERT_TRUE(decode_response(encode_response(response), decoded, error))
        << error;
    EXPECT_EQ(decoded.seconds, seconds) << "lossy encode of " << seconds;
  }
}

TEST(Protocol, DoubleDecodingIsStrict) {
  MatchResponse decoded;
  std::string error;
  // Trailing junk, hex floats, and inf/nan spellings must all be
  // rejected, not locale-/parser-dependently half-accepted.
  for (const char* bad : {"1.5x", "0x1p3", "inf", "nan", "1,5", ""}) {
    EXPECT_FALSE(decode_response(std::string("ok=1\nseconds=") + bad + "\n",
                                 decoded, error))
        << "accepted seconds=" << bad;
  }
}

TEST(Protocol, RequestFieldsRejectControlCharacters) {
  // A graph named "a\nb" must fail loudly at encode time -- the old
  // sanitizer rewrote it to "a b", so the server looked up (and
  // reported errors about) a name the client never sent.
  MatchRequest request;
  request.graph = "a\nb";
  EXPECT_THROW(encode_request(request), std::invalid_argument);
  request.graph = "alpha";
  request.solver = "gra\rft";
  EXPECT_THROW(encode_request(request), std::invalid_argument);
  request.solver = "graft";
  request.initializer = "k\ts";
  EXPECT_THROW(encode_request(request), std::invalid_argument);
  request.initializer = "ks";
  request.reduce = std::string("d1\x01", 3);
  EXPECT_THROW(encode_request(request), std::invalid_argument);
  request.reduce = "none";
  request.shard = "dm\x7f";
  EXPECT_THROW(encode_request(request), std::invalid_argument);
  request.shard = "none";
  EXPECT_NO_THROW(encode_request(request)) << "clean fields encode fine";

  // Decode side: a hand-built payload smuggling a control character
  // into a lookup field is a decode error, not a silent rewrite.
  MatchRequest decoded;
  std::string error;
  EXPECT_FALSE(decode_request("graph=a\tb\n", decoded, error));
  EXPECT_FALSE(decode_request("graph=g\nsolver=p\x01f\n", decoded, error));
  EXPECT_TRUE(decode_request("graph=g\n", decoded, error)) << error;
}

TEST(Protocol, DeadlineAndBatchFieldsRoundTrip) {
  MatchRequest request;
  request.graph = "alpha";
  request.deadline_ms = 750;
  MatchRequest decoded_request;
  std::string error;
  ASSERT_TRUE(
      decode_request(encode_request(request), decoded_request, error))
      << error;
  EXPECT_EQ(decoded_request.deadline_ms, 750);

  // No deadline -> the field is not even emitted (old peers never see
  // it).
  request.deadline_ms = 0;
  EXPECT_EQ(encode_request(request).find("deadline_ms"), std::string::npos);

  MatchResponse response;
  response.ok = false;
  response.expired = true;
  response.error = "deadline exceeded (750 ms) before dispatch";
  response.batch = 5;
  MatchResponse decoded_response;
  ASSERT_TRUE(
      decode_response(encode_response(response), decoded_response, error))
      << error;
  EXPECT_TRUE(decoded_response.expired);
  EXPECT_EQ(decoded_response.batch, 5);

  // Defaults when the fields are absent (an old server's response).
  ASSERT_TRUE(decode_response("ok=1\n", decoded_response, error)) << error;
  EXPECT_FALSE(decoded_response.expired);
  EXPECT_EQ(decoded_response.batch, 1);
}

TEST(Protocol, FramesRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  EXPECT_TRUE(write_frame(fds[0], "graph=alpha\n"));
  EXPECT_TRUE(write_frame(fds[0], ""));  // empty payload is a valid frame
  std::string payload;
  EXPECT_TRUE(read_frame(fds[1], payload));
  EXPECT_EQ(payload, "graph=alpha\n");
  EXPECT_TRUE(read_frame(fds[1], payload));
  EXPECT_TRUE(payload.empty());

  ::close(fds[0]);
  EXPECT_FALSE(read_frame(fds[1], payload)) << "clean EOF reads false";
  ::close(fds[1]);
}

TEST(Protocol, FrameRejectsOversizedLength) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // A length prefix far beyond kMaxFrameBytes must be refused without
  // attempting the allocation.
  const unsigned char header[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::write(fds[0], header, sizeof(header)),
            static_cast<ssize_t>(sizeof(header)));
  std::string payload;
  EXPECT_FALSE(read_frame(fds[1], payload));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Roster, OracleMatchesHopcroftKarpAndLookupWorks) {
  const GraphRoster roster = small_roster();
  ASSERT_EQ(roster.size(), 2u);
  const RosterEntry* alpha = roster.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->maximum_cardinality,
            maximum_matching_cardinality(alpha->graph));
  EXPECT_EQ(roster.find("gamma"), nullptr);
  EXPECT_EQ(&roster.at(0), roster.find("alpha"));
}

TEST(Roster, DuplicateNamesThrow) {
  GraphRoster roster;
  roster.add("alpha", planted(1, 50));
  EXPECT_THROW(roster.add("alpha", planted(2, 50)), std::invalid_argument);
}

TEST(MatchServer, ServesCorrectCardinalities) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);

  for (const RosterEntry& entry : roster.entries()) {
    MatchRequest request;
    request.graph = entry.name;
    const MatchResponse response = server.solve(std::move(request));
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.cardinality, entry.maximum_cardinality);
    EXPECT_EQ(response.maximum, entry.maximum_cardinality);
    EXPECT_NE(response.session, 0u);
  }
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.accepted, roster.size());
  EXPECT_EQ(counters.completed, roster.size());
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.rejected, 0u);
}

TEST(MatchServer, BadRequestsGetErrorResponsesNotCrashes) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);

  const auto expect_error = [&](MatchRequest request) {
    const MatchResponse response = server.solve(std::move(request));
    EXPECT_FALSE(response.ok);
    EXPECT_FALSE(response.error.empty());
    EXPECT_FALSE(response.rejected) << "failures are not rejections";
  };

  MatchRequest request;
  request.graph = "no-such-graph";
  expect_error(request);

  request.graph = "alpha";
  request.solver = "no-such-solver";
  expect_error(request);

  request.solver = "graft";
  request.initializer = "no-such-init";
  expect_error(request);

  request.initializer = "ks";
  request.reduce = "bogus";
  expect_error(request);

  request.reduce = "none";
  request.shard = "bogus";
  expect_error(request);

  request.shard = "none";
  request.dirsel = "bogus";
  expect_error(request);

  request.dirsel = "fixed";
  request.kernel = "bogus";
  expect_error(request);

  EXPECT_EQ(server.counters().failed, 7u);
  EXPECT_EQ(server.counters().completed, 0u);
}

TEST(MatchServer, SolverAndModeSelectionPerRequest) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);

  for (const std::string& solver : {"graft", "pf", "hk"}) {
    MatchRequest request;
    request.graph = "alpha";
    request.solver = solver;
    const MatchResponse response = server.solve(std::move(request));
    EXPECT_TRUE(response.ok) << solver << ": " << response.error;
    EXPECT_EQ(response.cardinality, roster.find("alpha")->maximum_cardinality)
        << solver;
  }

  MatchRequest request;
  request.graph = "beta";
  request.reduce = "d1";
  request.shard = "dm";
  const MatchResponse response = server.solve(std::move(request));
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.cardinality, roster.find("beta")->maximum_cardinality);

  // The traversal-backend knobs ride the same path: every policy x
  // kernel combination must serve the oracle cardinality (the server's
  // audit would flag a miss even if this EXPECT did not).
  for (const std::string& dirsel : {"fixed", "adaptive", "td", "bu"}) {
    for (const std::string& kernel : {"bit", "word"}) {
      MatchRequest knob_request;
      knob_request.graph = "alpha";
      knob_request.dirsel = dirsel;
      knob_request.kernel = kernel;
      const MatchResponse knob_response =
          server.solve(std::move(knob_request));
      EXPECT_TRUE(knob_response.ok)
          << dirsel << "/" << kernel << ": " << knob_response.error;
      EXPECT_EQ(knob_response.cardinality,
                roster.find("alpha")->maximum_cardinality)
          << dirsel << "/" << kernel;
    }
  }
}

TEST(MatchServer, AdmissionControlRejectsBeyondCapacity) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.autostart = false;  // nothing drains while we fill
  MatchServer server(roster, options);

  MatchRequest request;
  request.graph = "alpha";
  std::future<MatchResponse> first, second, overflow;
  EXPECT_TRUE(server.try_submit(request, first));
  EXPECT_TRUE(server.try_submit(request, second));
  EXPECT_FALSE(server.try_submit(request, overflow)) << "queue is full";

  // The blocking path feels the same backpressure as a fast failure.
  const MatchResponse rejected = server.solve(request);
  EXPECT_FALSE(rejected.ok);
  EXPECT_TRUE(rejected.rejected);

  server.start();  // accepted requests still get real answers
  const MatchResponse response_1 = first.get();
  const MatchResponse response_2 = second.get();
  EXPECT_TRUE(response_1.ok) << response_1.error;
  EXPECT_TRUE(response_2.ok) << response_2.error;

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.accepted, 2u);
  EXPECT_EQ(counters.rejected, 2u);
  EXPECT_EQ(counters.completed, 2u);
}

TEST(MatchServer, ConcurrentClientsAllGetCorrectAnswers) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 3;
  MatchServer server(roster, options);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 6;
  std::vector<int> wrong(kClients, 0);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const RosterEntry& entry =
            roster.at(static_cast<std::size_t>(r + c) % roster.size());
        MatchRequest request;
        request.graph = entry.name;
        const MatchResponse response = server.solve(std::move(request));
        if (!response.ok ||
            response.cardinality != entry.maximum_cardinality) {
          ++wrong[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(wrong[static_cast<std::size_t>(c)], 0) << "client " << c;
  }
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.completed,
            static_cast<std::uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(counters.failed, 0u);
}

TEST(MatchServer, StopAnswersPendingRequests) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.autostart = false;
  MatchServer server(roster, options);

  MatchRequest request;
  request.graph = "beta";
  std::future<MatchResponse> pending;
  ASSERT_TRUE(server.try_submit(request, pending));
  server.start();
  server.stop();  // close + drain + join: the future must be fulfilled
  const MatchResponse response = pending.get();
  EXPECT_TRUE(response.ok) << response.error;
}

TEST(MatchServer, CoalescesSameKeyBacklogIntoOneSolve) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.autostart = false;  // queue the whole group before any drain
  options.batch_max = 16;
  MatchServer server(roster, options);

  MatchRequest request;
  request.graph = "alpha";
  constexpr std::size_t kGroup = 4;
  std::vector<std::future<MatchResponse>> pending(kGroup);
  for (auto& future : pending) {
    ASSERT_TRUE(server.try_submit(request, future));
  }
  server.start();

  for (auto& future : pending) {
    const MatchResponse response = future.get();
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.cardinality,
              roster.find("alpha")->maximum_cardinality);
    EXPECT_EQ(response.batch, static_cast<int>(kGroup))
        << "every member rode the same solve";
  }
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.batches, 1u) << "one dispatch for the whole group";
  EXPECT_EQ(counters.coalesced, kGroup);
  EXPECT_EQ(counters.completed, kGroup);
}

TEST(MatchServer, MixedKeysSplitIntoPerKeyBatches) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.autostart = false;
  options.batch_window_us = 0;  // claim only what is already queued
  MatchServer server(roster, options);

  // Interleaved keys: alpha, beta, alpha, beta. Coalescing must group
  // by key, not by queue adjacency.
  std::vector<std::future<MatchResponse>> pending(4);
  for (std::size_t i = 0; i < pending.size(); ++i) {
    MatchRequest request;
    request.graph = i % 2 == 0 ? "alpha" : "beta";
    ASSERT_TRUE(server.try_submit(std::move(request), pending[i]));
  }
  server.start();

  for (std::size_t i = 0; i < pending.size(); ++i) {
    const MatchResponse response = pending[i].get();
    const std::string expected = i % 2 == 0 ? "alpha" : "beta";
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.graph, expected) << "answer matches the request key";
    EXPECT_EQ(response.cardinality,
              roster.find(expected)->maximum_cardinality);
    EXPECT_EQ(response.batch, 2);
  }
  EXPECT_EQ(server.counters().batches, 2u);
}

TEST(MatchServer, BatchMaxOneDisablesCoalescing) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.autostart = false;
  options.batch_max = 1;
  MatchServer server(roster, options);

  MatchRequest request;
  request.graph = "beta";
  std::vector<std::future<MatchResponse>> pending(3);
  for (auto& future : pending) {
    ASSERT_TRUE(server.try_submit(request, future));
  }
  server.start();
  for (auto& future : pending) {
    const MatchResponse response = future.get();
    EXPECT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.batch, 1);
  }
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.batches, 3u) << "one solve per request";
  EXPECT_EQ(counters.coalesced, 0u);
}

TEST(MatchServer, DeadlinePassedInQueueYieldsExpiredResponse) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.autostart = false;  // hold the request in the queue past its
                              // deadline
  MatchServer server(roster, options);

  MatchRequest request;
  request.graph = "alpha";
  request.deadline_ms = 1;
  std::future<MatchResponse> pending;
  ASSERT_TRUE(server.try_submit(std::move(request), pending));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.start();

  const MatchResponse response = pending.get();
  EXPECT_FALSE(response.ok);
  EXPECT_TRUE(response.expired);
  EXPECT_FALSE(response.rejected) << "expiry is not an admission rejection";
  EXPECT_NE(response.error.find("deadline exceeded"), std::string::npos)
      << response.error;

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.expired, 1u);
  EXPECT_EQ(counters.completed, 0u) << "nothing was solved";
  EXPECT_EQ(counters.accepted, counters.completed + counters.failed +
                                   counters.expired);
}

TEST(MatchServer, ExpiredMembersDoNotPoisonTheirBatch) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.autostart = false;
  MatchServer server(roster, options);

  MatchRequest doomed;
  doomed.graph = "alpha";
  doomed.deadline_ms = 1;
  MatchRequest fine;
  fine.graph = "alpha";  // same key: both land in one batch
  std::future<MatchResponse> doomed_pending, fine_pending;
  ASSERT_TRUE(server.try_submit(std::move(doomed), doomed_pending));
  ASSERT_TRUE(server.try_submit(std::move(fine), fine_pending));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.start();

  const MatchResponse expired = doomed_pending.get();
  EXPECT_TRUE(expired.expired);
  const MatchResponse served = fine_pending.get();
  EXPECT_TRUE(served.ok) << served.error;
  EXPECT_EQ(served.cardinality, roster.find("alpha")->maximum_cardinality);
  EXPECT_EQ(served.batch, 1) << "the expired member left a group of one";
}

TEST(MatchServer, AdmissionGateRejectsUnmeetableDeadlines) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.autostart = false;
  options.queue_capacity = 16;
  // Deterministic gate: pretend each request takes 50 ms, so 4 queued
  // requests imply a 200 ms backlog.
  options.assumed_service_ms = 50.0;
  MatchServer server(roster, options);
  EXPECT_DOUBLE_EQ(server.service_estimate_ms(), 50.0);

  MatchRequest request;
  request.graph = "alpha";
  std::vector<std::future<MatchResponse>> backlog(4);
  for (auto& future : backlog) {
    ASSERT_TRUE(server.try_submit(request, future));
  }

  MatchRequest tight;
  tight.graph = "alpha";
  tight.deadline_ms = 10;  // backlog says ~200 ms: hopeless
  std::future<MatchResponse> rejected_future;
  std::string reason;
  EXPECT_FALSE(server.try_submit(tight, rejected_future, &reason));
  EXPECT_NE(reason.find("unmeetable"), std::string::npos) << reason;

  MatchRequest roomy;
  roomy.graph = "alpha";
  roomy.deadline_ms = 10'000;  // plenty of headroom: admitted
  std::future<MatchResponse> admitted;
  EXPECT_TRUE(server.try_submit(std::move(roomy), admitted));

  EXPECT_EQ(server.counters().rejected, 1u);
  server.start();  // drain so every accepted future resolves
  for (auto& future : backlog) {
    EXPECT_TRUE(future.get().ok);
  }
  EXPECT_TRUE(admitted.get().ok);
}

TEST(MatchServer, StopUnderLoadFulfillsEveryAcceptedPromise) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 8;  // small: submitters race a shrinking door
  MatchServer server(roster, options);

  // Four submitters race stop(): every future whose try_submit said
  // "accepted" must still resolve to a real response -- a broken
  // promise (std::future_error on get) means stop() dropped work it
  // had admitted.
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 12;
  std::vector<std::vector<std::future<MatchResponse>>> accepted(kSubmitters);
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int r = 0; r < kPerSubmitter; ++r) {
        MatchRequest request;
        request.graph = s % 2 == 0 ? "alpha" : "beta";
        if (r % 3 == 0) request.deadline_ms = 1;  // some will expire
        std::future<MatchResponse> pending;
        if (server.try_submit(std::move(request), pending)) {
          accepted[static_cast<std::size_t>(s)].push_back(
              std::move(pending));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  server.stop();  // races the submitters AND the in-flight batches
  for (std::thread& submitter : submitters) submitter.join();

  std::size_t total_accepted = 0;
  for (auto& futures : accepted) {
    for (auto& future : futures) {
      ++total_accepted;
      ASSERT_NO_THROW({
        const MatchResponse response = future.get();
        // ok, failed, or expired are all legitimate; silence is not.
        if (!response.ok) {
          EXPECT_TRUE(!response.error.empty() || response.expired);
        }
      });
    }
  }
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.accepted, total_accepted);
  EXPECT_EQ(counters.accepted,
            counters.completed + counters.failed + counters.expired)
      << "every accepted request is accounted for";
}

TEST(Uds, EndToEndOverRealSocket) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);
  // Tests run with the binary dir as cwd; a relative path keeps us
  // under sockaddr_un's 108-byte limit regardless of build-tree depth.
  UdsServer uds(server, "test_serve_uds.sock");
  std::string error;
  ASSERT_TRUE(uds.start(error)) << error;

  UdsClient client;
  ASSERT_TRUE(client.connect("test_serve_uds.sock", error)) << error;

  MatchRequest request;
  request.graph = "alpha";
  MatchResponse response;
  ASSERT_TRUE(client.request(request, response, error)) << error;
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.cardinality, roster.find("alpha")->maximum_cardinality);

  // Same connection, second exchange: the per-connection loop persists.
  request.graph = "beta";
  ASSERT_TRUE(client.request(request, response, error)) << error;
  EXPECT_TRUE(response.ok) << response.error;
  EXPECT_EQ(response.cardinality, roster.find("beta")->maximum_cardinality);

  client.close();
  uds.stop();
  EXPECT_FALSE(uds.running());
}

TEST(Uds, MalformedPayloadGetsErrorResponse) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);
  UdsServer uds(server, "test_serve_uds_bad.sock");
  std::string error;
  ASSERT_TRUE(uds.start(error)) << error;

  // A request whose graph field is empty fails decode_request on the
  // server side; the connection must answer with an error response
  // instead of dropping.
  UdsClient client;
  ASSERT_TRUE(client.connect("test_serve_uds_bad.sock", error)) << error;
  MatchResponse response;
  MatchRequest empty;  // graph stays empty -> decode_request fails
  ASSERT_TRUE(client.request(empty, response, error)) << error;
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());

  uds.stop();
}

TEST(Uds, RestartAfterStopReusesPath) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);
  UdsServer first(server, "test_serve_uds_restart.sock");
  std::string error;
  ASSERT_TRUE(first.start(error)) << error;
  first.stop();

  UdsServer second(server, "test_serve_uds_restart.sock");
  ASSERT_TRUE(second.start(error)) << error;
  UdsClient client;
  ASSERT_TRUE(client.connect("test_serve_uds_restart.sock", error)) << error;
  MatchRequest request;
  request.graph = "alpha";
  MatchResponse response;
  ASSERT_TRUE(client.request(request, response, error)) << error;
  EXPECT_TRUE(response.ok) << response.error;
  second.stop();
}

TEST(Uds, ClientRefusesRequestWithControlCharacters) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);
  UdsServer uds(server, "test_serve_uds_ctrl.sock");
  std::string error;
  ASSERT_TRUE(uds.start(error)) << error;

  UdsClient client;
  ASSERT_TRUE(client.connect("test_serve_uds_ctrl.sock", error)) << error;
  MatchRequest request;
  request.graph = "al\npha";  // would have been looked up as "al pha"
  MatchResponse response;
  EXPECT_FALSE(client.request(request, response, error));
  EXPECT_NE(error.find("control character"), std::string::npos) << error;

  // The connection survives the refused request (nothing was sent).
  request.graph = "alpha";
  ASSERT_TRUE(client.request(request, response, error)) << error;
  EXPECT_TRUE(response.ok) << response.error;
  uds.stop();
}

TEST(Uds, ConnectionChurnDeregistersAndReaps) {
  const GraphRoster roster = small_roster();
  MatchServer server(roster);
  UdsServer uds(server, "test_serve_uds_churn.sock");
  std::string error;
  ASSERT_TRUE(uds.start(error)) << error;

  // Rapid connect/request/disconnect cycles: every serving thread must
  // deregister its fd (before closing it) and get reaped by the accept
  // loop -- the old server grew one dead thread per connection forever.
  constexpr int kChurn = 24;
  for (int i = 0; i < kChurn; ++i) {
    UdsClient client;
    ASSERT_TRUE(client.connect("test_serve_uds_churn.sock", error)) << error;
    MatchRequest request;
    request.graph = i % 2 == 0 ? "alpha" : "beta";
    MatchResponse response;
    ASSERT_TRUE(client.request(request, response, error)) << error;
    EXPECT_TRUE(response.ok) << response.error;
    client.close();
  }

  // The accept loop reaps on every poll tick (<= 100 ms apart); after
  // all clients are gone the tracked set must drain to zero.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (uds.tracked_connections() > 0 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(uds.tracked_connections(), 0u)
      << "finished connections were never reaped";

  // And the server still accepts fresh connections afterwards.
  UdsClient client;
  ASSERT_TRUE(client.connect("test_serve_uds_churn.sock", error)) << error;
  MatchRequest request;
  request.graph = "alpha";
  MatchResponse response;
  ASSERT_TRUE(client.request(request, response, error)) << error;
  EXPECT_TRUE(response.ok) << response.error;
  uds.stop();
  EXPECT_EQ(uds.tracked_connections(), 0u);
}

TEST(Uds, BatchedRequestsOverSocketCarryGroupSize) {
  const GraphRoster roster = small_roster();
  ServerOptions options;
  options.workers = 1;
  options.batch_max = 8;
  options.batch_window_us = 50'000;  // generous: socket clients arrive
                                     // far apart compared to in-process
  MatchServer server(roster, options);
  UdsServer uds(server, "test_serve_uds_batch.sock");
  std::string error;
  ASSERT_TRUE(uds.start(error)) << error;

  // Several socket clients issue the same request concurrently; the
  // responses must be correct regardless of how the window groups them,
  // and each must report a plausible group size.
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::vector<int> batch_seen(kClients, 0);
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      UdsClient client;
      std::string client_error;
      if (!client.connect("test_serve_uds_batch.sock", client_error)) {
        ++failures[static_cast<std::size_t>(c)];
        return;
      }
      MatchRequest request;
      request.graph = "alpha";
      MatchResponse response;
      if (!client.request(request, response, client_error) || !response.ok ||
          response.cardinality != roster.find("alpha")->maximum_cardinality) {
        ++failures[static_cast<std::size_t>(c)];
        return;
      }
      batch_seen[static_cast<std::size_t>(c)] = response.batch;
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[static_cast<std::size_t>(c)], 0) << "client " << c;
    EXPECT_GE(batch_seen[static_cast<std::size_t>(c)], 1);
    EXPECT_LE(batch_seen[static_cast<std::size_t>(c)], kClients);
  }
  uds.stop();
}

}  // namespace
}  // namespace graftmatch::serve
