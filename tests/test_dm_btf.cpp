// Tests for the Dulmage-Mendelsohn decomposition and block triangular
// form application.
#include <gtest/gtest.h>

#include "graftmatch/dm/btf.hpp"
#include "graftmatch/dm/dulmage_mendelsohn.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/grid.hpp"
#include "graftmatch/gen/webcrawl.hpp"
#include "graftmatch/graph/transforms.hpp"

namespace graftmatch {
namespace {

// A matrix with all three coarse parts:
//   rows 0-1 x cols 0-2 : horizontal (2x3, full)
//   rows 2-3 x cols 3-4 : square (diagonal + one coupling)
//   rows 4-6 x cols 5-6 : vertical (3x2, full)
// plus legal "upper" couplings (horizontal rows to later columns).
BipartiteGraph three_part_matrix() {
  EdgeList list;
  list.nx = 7;
  list.ny = 7;
  // horizontal block
  for (vid_t x = 0; x < 2; ++x) {
    for (vid_t y = 0; y < 3; ++y) list.edges.push_back({x, y});
  }
  // square block: 2x2 lower-left-free
  list.edges.push_back({2, 3});
  list.edges.push_back({2, 4});
  list.edges.push_back({3, 4});
  // vertical block
  for (vid_t x = 4; x < 7; ++x) {
    for (vid_t y = 5; y < 7; ++y) list.edges.push_back({x, y});
  }
  // allowed couplings: horizontal rows may hit square/vertical columns
  list.edges.push_back({0, 3});
  list.edges.push_back({1, 6});
  // square rows may hit vertical columns
  list.edges.push_back({2, 5});
  return BipartiteGraph::from_edges(list);
}

TEST(DmDecomposition, ClassifiesThreePartMatrix) {
  const BipartiteGraph g = three_part_matrix();
  const DmDecomposition dm = dm_decompose(g);

  EXPECT_EQ(dm.rows_in(DmBlock::kHorizontal), 2);
  EXPECT_EQ(dm.cols_in(DmBlock::kHorizontal), 3);
  EXPECT_EQ(dm.rows_in(DmBlock::kSquare), 2);
  EXPECT_EQ(dm.cols_in(DmBlock::kSquare), 2);
  EXPECT_EQ(dm.rows_in(DmBlock::kVertical), 3);
  EXPECT_EQ(dm.cols_in(DmBlock::kVertical), 2);

  // Structural rank = |M*| = 2 + 2 + 2.
  EXPECT_EQ(dm.structural_rank(), 6);
}

TEST(DmDecomposition, PerfectlyMatchableIsAllSquare) {
  GridParams params;
  params.width = 16;
  params.height = 16;
  const BipartiteGraph g = generate_grid(params);
  const DmDecomposition dm = dm_decompose(g);
  EXPECT_EQ(dm.rows_in(DmBlock::kSquare), 256);
  EXPECT_EQ(dm.cols_in(DmBlock::kSquare), 256);
  EXPECT_EQ(dm.rows_in(DmBlock::kHorizontal), 0);
  EXPECT_EQ(dm.rows_in(DmBlock::kVertical), 0);
}

TEST(DmDecomposition, HorizontalVerticalSizesMatchDeficiency) {
  // Every unmatched row is vertical; every unmatched column horizontal.
  WebCrawlParams params;
  params.nx = params.ny = 2000;
  params.seed = 3;
  const BipartiteGraph g = generate_webcrawl(params);
  const DmDecomposition dm = dm_decompose(g);
  const std::int64_t matched = dm.structural_rank();
  // |VR| - |VC| = unmatched rows; |HC| - |HR| = unmatched columns.
  EXPECT_EQ(dm.rows_in(DmBlock::kVertical) - dm.cols_in(DmBlock::kVertical),
            g.num_x() - matched);
  EXPECT_EQ(dm.cols_in(DmBlock::kHorizontal) -
                dm.rows_in(DmBlock::kHorizontal),
            g.num_y() - matched);
  // Square part is perfectly matched.
  EXPECT_EQ(dm.rows_in(DmBlock::kSquare), dm.cols_in(DmBlock::kSquare));
}

TEST(DmDecomposition, MatchedPairsStayInSameBlock) {
  ErdosRenyiParams params;
  params.nx = 700;
  params.ny = 600;
  params.edges = 2200;
  const BipartiteGraph g = generate_erdos_renyi(params);
  const DmDecomposition dm = dm_decompose(g);
  for (vid_t x = 0; x < g.num_x(); ++x) {
    const vid_t y = dm.matching.mate_of_x(x);
    if (y == kInvalidVertex) continue;
    EXPECT_EQ(static_cast<int>(dm.row_block[static_cast<std::size_t>(x)]),
              static_cast<int>(dm.col_block[static_cast<std::size_t>(y)]))
        << "pair (" << x << ", " << y << ")";
  }
}

TEST(Btf, VerifiesOnThreePartMatrix) {
  const BipartiteGraph g = three_part_matrix();
  const BlockTriangularForm btf = block_triangular_form(g);
  EXPECT_TRUE(verify_btf(g, btf));
  EXPECT_EQ(btf.square_row_end - btf.square_row_begin, 2);
  // Square part: rows 2,3 / cols 3,4 with edges (2,3),(2,4),(3,4):
  // contracted digraph 2->3 only, so two 1x1 blocks in topo order.
  EXPECT_EQ(btf.num_square_blocks(), 2);
}

TEST(Btf, SingleStronglyConnectedSquare) {
  // 2x2 fully dense square: one irreducible block.
  EdgeList list;
  list.nx = 2;
  list.ny = 2;
  list.edges = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const BlockTriangularForm btf = block_triangular_form(g);
  EXPECT_TRUE(verify_btf(g, btf));
  EXPECT_EQ(btf.num_square_blocks(), 1);
}

TEST(Btf, DiagonalMatrixGivesAllSingletonBlocks) {
  EdgeList list;
  list.nx = 5;
  list.ny = 5;
  for (vid_t i = 0; i < 5; ++i) list.edges.push_back({i, i});
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const BlockTriangularForm btf = block_triangular_form(g);
  EXPECT_TRUE(verify_btf(g, btf));
  EXPECT_EQ(btf.num_square_blocks(), 5);
}

TEST(Btf, UpperTriangularMatrixKeepsOrder) {
  // Upper triangular 4x4: blocks must come out in an order where all
  // nonzeros are on-or-above the diagonal blocks.
  EdgeList list;
  list.nx = 4;
  list.ny = 4;
  for (vid_t i = 0; i < 4; ++i) {
    for (vid_t j = i; j < 4; ++j) list.edges.push_back({i, j});
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const BlockTriangularForm btf = block_triangular_form(g);
  EXPECT_TRUE(verify_btf(g, btf));
  EXPECT_EQ(btf.num_square_blocks(), 4);
}

TEST(Btf, CycleCollapsesToOneBlock) {
  // Circulant: row i ~ {col i, col (i+1) mod n}: one big SCC.
  EdgeList list;
  list.nx = 6;
  list.ny = 6;
  for (vid_t i = 0; i < 6; ++i) {
    list.edges.push_back({i, i});
    list.edges.push_back({i, (i + 1) % 6});
  }
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const BlockTriangularForm btf = block_triangular_form(g);
  EXPECT_TRUE(verify_btf(g, btf));
  EXPECT_EQ(btf.num_square_blocks(), 1);
}

TEST(Btf, RandomGraphsVerify) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    ErdosRenyiParams params;
    params.nx = 500;
    params.ny = 450;
    params.edges = 1800;
    params.seed = seed;
    const BipartiteGraph g = generate_erdos_renyi(params);
    const BlockTriangularForm btf = block_triangular_form(g);
    EXPECT_TRUE(verify_btf(g, btf)) << seed;
    // Permutations cover all rows/cols.
    EXPECT_EQ(btf.row_perm.size(), static_cast<std::size_t>(g.num_x()));
    EXPECT_EQ(btf.col_perm.size(), static_cast<std::size_t>(g.num_y()));
  }
}

TEST(Btf, EmptyGraph) {
  EdgeList list;
  list.nx = 3;
  list.ny = 2;
  const BipartiteGraph g = BipartiteGraph::from_edges(list);
  const BlockTriangularForm btf = block_triangular_form(g);
  EXPECT_TRUE(verify_btf(g, btf));
  EXPECT_EQ(btf.num_square_blocks(), 0);
  EXPECT_EQ(btf.square_row_begin, btf.square_row_end);
}

TEST(Btf, VerifyRejectsCorruptPermutation) {
  const BipartiteGraph g = three_part_matrix();
  BlockTriangularForm btf = block_triangular_form(g);
  ASSERT_TRUE(verify_btf(g, btf));
  std::swap(btf.row_perm[0], btf.row_perm[btf.row_perm.size() - 1]);
  // Swapping a horizontal row with a vertical one breaks nothing in the
  // permutation check, but duplicating an entry must fail.
  btf.row_perm[0] = btf.row_perm[1];
  EXPECT_FALSE(verify_btf(g, btf));
}

}  // namespace
}  // namespace graftmatch
