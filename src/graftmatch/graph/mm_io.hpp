// Matrix Market I/O.
//
// The paper evaluates on matrices from the University of Florida sparse
// matrix collection, which ships in Matrix Market (.mtx) format. This
// reader supports the subset those files use: "matrix coordinate"
// headers with real / integer / pattern fields and general / symmetric /
// skew-symmetric / hermitian symmetry. Values are discarded (matching
// cares only about structure); symmetric storage is expanded. The writer
// emits "coordinate pattern general", sufficient to round-trip graphs.
#pragma once

#include <iosfwd>
#include <string>

#include "graftmatch/graph/edge_list.hpp"

namespace graftmatch {

/// Parse a Matrix Market stream into a bipartite edge list
/// (rows -> X, columns -> Y). Throws std::runtime_error on malformed
/// input, with a 1-based line number in the message.
EdgeList read_matrix_market(std::istream& in);

/// Convenience: open and parse a file.
EdgeList read_matrix_market_file(const std::string& path);

/// Write as "matrix coordinate pattern general" (1-based indices).
void write_matrix_market(std::ostream& out, const EdgeList& edges);

void write_matrix_market_file(const std::string& path, const EdgeList& edges);

}  // namespace graftmatch
