#include "graftmatch/graph/transforms.hpp"

#include <numeric>
#include <stdexcept>

namespace graftmatch {

BipartiteGraph transpose(const BipartiteGraph& g) {
  EdgeList list;
  list.nx = g.num_y();
  list.ny = g.num_x();
  list.edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (vid_t x = 0; x < g.num_x(); ++x) {
    for (vid_t y : g.neighbors_of_x(x)) list.edges.push_back({y, x});
  }
  return BipartiteGraph::from_edges(list);
}

BipartiteGraph permute(const BipartiteGraph& g,
                       const std::vector<vid_t>& perm_x,
                       const std::vector<vid_t>& perm_y) {
  if (static_cast<vid_t>(perm_x.size()) != g.num_x() ||
      static_cast<vid_t>(perm_y.size()) != g.num_y()) {
    throw std::invalid_argument("permute: permutation size mismatch");
  }
  if (!is_permutation(perm_x) || !is_permutation(perm_y)) {
    throw std::invalid_argument("permute: not a permutation");
  }
  EdgeList list;
  list.nx = g.num_x();
  list.ny = g.num_y();
  list.edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (vid_t x = 0; x < g.num_x(); ++x) {
    for (vid_t y : g.neighbors_of_x(x)) {
      list.edges.push_back({perm_x[static_cast<std::size_t>(x)],
                            perm_y[static_cast<std::size_t>(y)]});
    }
  }
  return BipartiteGraph::from_edges(list);
}

BipartiteGraph shuffle_labels(const BipartiteGraph& g, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto perm_x = random_permutation(g.num_x(), rng);
  const auto perm_y = random_permutation(g.num_y(), rng);
  return permute(g, perm_x, perm_y);
}

std::vector<vid_t> random_permutation(vid_t n, Xoshiro256& rng) {
  std::vector<vid_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), vid_t{0});
  for (vid_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<vid_t>(
        rng.below(static_cast<std::uint64_t>(i) + 1));
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

bool is_permutation(const std::vector<vid_t>& perm) {
  const auto n = static_cast<vid_t>(perm.size());
  std::vector<bool> seen(perm.size(), false);
  for (const vid_t v : perm) {
    if (v < 0 || v >= n || seen[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace graftmatch
