// Plain-text serialization of matchings, so expensive maximum matchings
// (and Karp-Sipser warm starts) can be cached between runs.
//
// Format:
//   graftmatch-matching 1
//   <nx> <ny> <cardinality>
//   <x> <y>          (one matched pair per line, ascending x)
#pragma once

#include <iosfwd>
#include <string>

#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

void write_matching(std::ostream& out, const Matching& matching);
void write_matching_file(const std::string& path, const Matching& matching);

/// Parse a matching; throws std::runtime_error on malformed input
/// (bad magic, out-of-range vertices, duplicate endpoints, or a pair
/// count that disagrees with the header).
Matching read_matching(std::istream& in);
Matching read_matching_file(const std::string& path);

}  // namespace graftmatch
