#include "graftmatch/graph/matching_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace graftmatch {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("matching io: " + message);
}

}  // namespace

void write_matching(std::ostream& out, const Matching& matching) {
  out << "graftmatch-matching 1\n";
  out << matching.num_x() << ' ' << matching.num_y() << ' '
      << matching.cardinality() << '\n';
  for (vid_t x = 0; x < matching.num_x(); ++x) {
    const vid_t y = matching.mate_of_x(x);
    if (y != kInvalidVertex) out << x << ' ' << y << '\n';
  }
}

void write_matching_file(const std::string& path, const Matching& matching) {
  std::ofstream out(path);
  if (!out) fail("cannot open " + path);
  write_matching(out, matching);
}

Matching read_matching(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != "graftmatch-matching") {
    fail("bad magic");
  }
  if (version != 1) fail("unsupported version");

  vid_t nx = 0;
  vid_t ny = 0;
  std::int64_t cardinality = 0;
  if (!(in >> nx >> ny >> cardinality) || nx < 0 || ny < 0 ||
      cardinality < 0) {
    fail("bad header");
  }

  Matching matching(nx, ny);
  for (std::int64_t k = 0; k < cardinality; ++k) {
    vid_t x = 0;
    vid_t y = 0;
    if (!(in >> x >> y)) fail("truncated pair list");
    if (x < 0 || x >= nx || y < 0 || y >= ny) fail("pair out of range");
    if (matching.is_matched_x(x) || matching.is_matched_y(y)) {
      fail("duplicate endpoint");
    }
    matching.match(x, y);
  }
  return matching;
}

Matching read_matching_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  return read_matching(in);
}

}  // namespace graftmatch
