// Bipartite edge list: the interchange format between generators,
// Matrix Market I/O, and CSR construction.
#pragma once

#include <cstdint>
#include <vector>

#include "graftmatch/types.hpp"

namespace graftmatch {

/// One bipartite edge (x in X/rows, y in Y/columns).
struct Edge {
  vid_t x;
  vid_t y;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A bag of bipartite edges plus the two part sizes. May contain
/// duplicates and is unordered until canonicalize() is called.
struct EdgeList {
  vid_t nx = 0;  ///< |X| (rows)
  vid_t ny = 0;  ///< |Y| (columns)
  std::vector<Edge> edges;

  /// Sort lexicographically and drop duplicate edges in place.
  void canonicalize();

  /// True when every endpoint is inside [0, nx) x [0, ny).
  bool in_bounds() const noexcept;

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(edges.size());
  }
};

}  // namespace graftmatch
