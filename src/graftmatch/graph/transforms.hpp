// Structure-preserving graph transformations used by tests, the DM/BTF
// application, and workload preparation.
#pragma once

#include <vector>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

/// Swap the two parts: X vertices become Y vertices and vice versa.
/// (Transpose of the underlying matrix.)
BipartiteGraph transpose(const BipartiteGraph& g);

/// Relabel vertices: new_x = perm_x[old_x], new_y = perm_y[old_y].
/// Both arrays must be permutations of their respective ranges.
/// Throws std::invalid_argument otherwise.
BipartiteGraph permute(const BipartiteGraph& g,
                       const std::vector<vid_t>& perm_x,
                       const std::vector<vid_t>& perm_y);

/// Random relabeling of both sides; useful for breaking generator
/// artifacts (sorted ids) in benchmarks. Deterministic given `seed`.
BipartiteGraph shuffle_labels(const BipartiteGraph& g, std::uint64_t seed);

/// A uniformly random permutation of [0, n) (Fisher-Yates).
std::vector<vid_t> random_permutation(vid_t n, Xoshiro256& rng);

/// True when `perm` is a permutation of [0, perm.size()).
bool is_permutation(const std::vector<vid_t>& perm);

}  // namespace graftmatch
