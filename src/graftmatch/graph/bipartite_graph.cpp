#include "graftmatch/graph/bipartite_graph.hpp"

#include <algorithm>
#include <stdexcept>

#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/parallel.hpp"

namespace graftmatch {
namespace {

// Below this many edges the counting sort runs serially: opening
// parallel regions costs more than the work they would split, and the
// reduce/ property tests build hundreds of thousands of tiny kernels.
// Either path produces identical arrays.
constexpr std::int64_t kSerialBuildThreshold = 1 << 12;

// Counting-sort one CSR side from a deduplicated edge list.
// key(e) selects the source vertex, value(e) the stored neighbor.
template <typename Key, typename Value>
void build_side(const std::vector<Edge>& edges, vid_t n,
                std::vector<eid_t>& offsets, std::vector<vid_t>& neighbors,
                Key key, Value value) {
  offsets.assign(static_cast<std::size_t>(n) + 1, 0);
  const std::int64_t m = static_cast<std::int64_t>(edges.size());

  if (m < kSerialBuildThreshold) {
    for (const Edge& e : edges) {
      ++offsets[static_cast<std::size_t>(key(e)) + 1];
    }
    for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
      offsets[v + 1] += offsets[v];
    }
    neighbors.resize(static_cast<std::size_t>(m));
    std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : edges) {
      neighbors[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(key(e))]++)] = value(e);
    }
    for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
      std::sort(neighbors.begin() + offsets[v],
                neighbors.begin() + offsets[v + 1]);
    }
    return;
  }

  parallel_region([&] {
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < m; ++i) {
      fetch_add_relaxed(
          offsets[static_cast<std::size_t>(
                      key(edges[static_cast<std::size_t>(i)])) + 1],
          eid_t{1});
    }
  });
  for (std::size_t v = 0; v < static_cast<std::size_t>(n); ++v) {
    offsets[v + 1] += offsets[v];
  }

  neighbors.resize(static_cast<std::size_t>(m));
  std::vector<eid_t> cursor(offsets.begin(), offsets.end() - 1);
  parallel_region([&] {
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < m; ++i) {
      const Edge& e = edges[static_cast<std::size_t>(i)];
      const eid_t slot =
          fetch_add_relaxed(cursor[static_cast<std::size_t>(key(e))], eid_t{1});
      neighbors[static_cast<std::size_t>(slot)] = value(e);
    }
  });

  parallel_region([&] {
#pragma omp for schedule(dynamic, 1024)
    for (std::int64_t v = 0; v < n; ++v) {
      std::sort(neighbors.begin() + offsets[static_cast<std::size_t>(v)],
                neighbors.begin() + offsets[static_cast<std::size_t>(v) + 1]);
    }
  });
}

}  // namespace

BipartiteGraph BipartiteGraph::from_edges(const EdgeList& list) {
  if (list.nx < 0 || list.ny < 0) {
    throw std::invalid_argument("BipartiteGraph: negative part size");
  }
  if (!list.in_bounds()) {
    throw std::invalid_argument("BipartiteGraph: edge endpoint out of range");
  }

  EdgeList canonical = list;
  canonical.canonicalize();

  BipartiteGraph g;
  g.nx_ = canonical.nx;
  g.ny_ = canonical.ny;
  build_side(
      canonical.edges, g.nx_, g.x_offsets_, g.x_neighbors_,
      [](const Edge& e) { return e.x; }, [](const Edge& e) { return e.y; });
  build_side(
      canonical.edges, g.ny_, g.y_offsets_, g.y_neighbors_,
      [](const Edge& e) { return e.y; }, [](const Edge& e) { return e.x; });
  return g;
}

BipartiteGraph BipartiteGraph::from_csr(std::span<const eid_t> offsets,
                                        std::span<const vid_t> neighbors,
                                        vid_t ny) {
  if (offsets.empty()) {
    throw std::invalid_argument("from_csr: offsets must have nx+1 entries");
  }
  if (offsets.front() != 0 ||
      offsets.back() != static_cast<eid_t>(neighbors.size())) {
    throw std::invalid_argument("from_csr: offsets do not frame neighbors");
  }
  EdgeList list;
  list.nx = static_cast<vid_t>(offsets.size()) - 1;
  list.ny = ny;
  list.edges.reserve(neighbors.size());
  for (vid_t x = 0; x < list.nx; ++x) {
    const eid_t begin = offsets[static_cast<std::size_t>(x)];
    const eid_t end = offsets[static_cast<std::size_t>(x) + 1];
    if (begin > end) {
      throw std::invalid_argument("from_csr: offsets must be nondecreasing");
    }
    for (eid_t k = begin; k < end; ++k) {
      list.edges.push_back({x, neighbors[static_cast<std::size_t>(k)]});
    }
  }
  return from_edges(list);
}

BipartiteGraph BipartiteGraph::from_canonical_csr(
    std::vector<eid_t> offsets, std::vector<vid_t> neighbors, vid_t ny) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != static_cast<eid_t>(neighbors.size())) {
    throw std::invalid_argument(
        "from_canonical_csr: offsets do not frame neighbors");
  }
  if (ny < 0) {
    throw std::invalid_argument("from_canonical_csr: negative part size");
  }
  const vid_t nx = static_cast<vid_t>(offsets.size()) - 1;
  const std::int64_t m = static_cast<std::int64_t>(neighbors.size());

  // Validate per row: nondecreasing offsets, strictly ascending
  // neighbors in range. The flag merges with relaxed stores; the
  // region's join edge orders them before the serial read.
  std::atomic<bool> malformed{false};
  const auto check_row = [&](vid_t x) {
    const eid_t begin = offsets[static_cast<std::size_t>(x)];
    const eid_t end = offsets[static_cast<std::size_t>(x) + 1];
    if (begin > end) {
      malformed.store(true, std::memory_order_relaxed);
      return;
    }
    vid_t previous = -1;
    for (eid_t k = begin; k < end; ++k) {
      const vid_t y = neighbors[static_cast<std::size_t>(k)];
      if (y <= previous || y >= ny) {
        malformed.store(true, std::memory_order_relaxed);
        return;
      }
      previous = y;
    }
  };
  if (m < kSerialBuildThreshold) {
    for (vid_t x = 0; x < nx; ++x) check_row(x);
  } else {
    parallel_region([&] {
#pragma omp for schedule(static)
      for (std::int64_t x = 0; x < nx; ++x) {
        check_row(static_cast<vid_t>(x));
      }
    });
  }
  if (malformed.load(std::memory_order_relaxed)) {
    throw std::invalid_argument(
        "from_canonical_csr: rows must be sorted, duplicate-free, in range");
  }

  BipartiteGraph g;
  g.nx_ = nx;
  g.ny_ = ny;
  g.x_offsets_ = std::move(offsets);
  g.x_neighbors_ = std::move(neighbors);

  // Derive the Y side with the same counting-sort pattern as
  // build_side, iterating rows of the adopted X CSR.
  g.y_offsets_.assign(static_cast<std::size_t>(ny) + 1, 0);
  g.y_neighbors_.resize(static_cast<std::size_t>(m));
  if (m < kSerialBuildThreshold) {
    for (const vid_t y : g.x_neighbors_) {
      ++g.y_offsets_[static_cast<std::size_t>(y) + 1];
    }
    for (std::size_t v = 0; v < static_cast<std::size_t>(ny); ++v) {
      g.y_offsets_[v + 1] += g.y_offsets_[v];
    }
    std::vector<eid_t> cursor(g.y_offsets_.begin(), g.y_offsets_.end() - 1);
    for (vid_t x = 0; x < nx; ++x) {
      for (const vid_t y : g.neighbors_of_x(x)) {
        g.y_neighbors_[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(y)]++)] = x;
      }
    }
    // X rows are scanned in ascending order, so each Y row is already
    // sorted; no per-row sort needed on the serial path.
    return g;
  }

  parallel_region([&] {
#pragma omp for schedule(static)
    for (std::int64_t k = 0; k < m; ++k) {
      fetch_add_relaxed(
          g.y_offsets_[static_cast<std::size_t>(
                           g.x_neighbors_[static_cast<std::size_t>(k)]) + 1],
          eid_t{1});
    }
  });
  for (std::size_t v = 0; v < static_cast<std::size_t>(ny); ++v) {
    g.y_offsets_[v + 1] += g.y_offsets_[v];
  }
  std::vector<eid_t> cursor(g.y_offsets_.begin(), g.y_offsets_.end() - 1);
  parallel_region([&] {
#pragma omp for schedule(static)
    for (std::int64_t x = 0; x < nx; ++x) {
      for (const vid_t y : g.neighbors_of_x(static_cast<vid_t>(x))) {
        const eid_t slot =
            fetch_add_relaxed(cursor[static_cast<std::size_t>(y)], eid_t{1});
        g.y_neighbors_[static_cast<std::size_t>(slot)] =
            static_cast<vid_t>(x);
      }
    }
  });
  // Separate region: the sort reads slots other threads scattered, and
  // only the region join edge makes that handoff TSan-visible.
  parallel_region([&] {
#pragma omp for schedule(dynamic, 1024)
    for (std::int64_t y = 0; y < ny; ++y) {
      std::sort(
          g.y_neighbors_.begin() + g.y_offsets_[static_cast<std::size_t>(y)],
          g.y_neighbors_.begin() +
              g.y_offsets_[static_cast<std::size_t>(y) + 1]);
    }
  });
  return g;
}

bool BipartiteGraph::has_edge(vid_t x, vid_t y) const noexcept {
  if (x < 0 || x >= nx_ || y < 0 || y >= ny_) return false;
  const auto adj = neighbors_of_x(x);
  return std::binary_search(adj.begin(), adj.end(), y);
}

EdgeList BipartiteGraph::to_edges() const {
  EdgeList list;
  list.nx = nx_;
  list.ny = ny_;
  list.edges.reserve(static_cast<std::size_t>(num_edges()));
  for (vid_t x = 0; x < nx_; ++x) {
    for (vid_t y : neighbors_of_x(x)) list.edges.push_back({x, y});
  }
  return list;
}

std::int64_t BipartiteGraph::memory_bytes() const noexcept {
  return static_cast<std::int64_t>(
      (x_offsets_.size() + y_offsets_.size()) * sizeof(eid_t) +
      (x_neighbors_.size() + y_neighbors_.size()) * sizeof(vid_t));
}

}  // namespace graftmatch
