// Descriptive statistics of a bipartite graph, used by the Table II
// reproduction and by the generator tests.
#pragma once

#include <cstdint>
#include <string>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct GraphStats {
  vid_t nx = 0;
  vid_t ny = 0;
  std::int64_t edges = 0;          ///< undirected edges (nnz)
  double avg_degree_x = 0.0;
  double avg_degree_y = 0.0;
  eid_t max_degree_x = 0;
  eid_t max_degree_y = 0;
  vid_t isolated_x = 0;            ///< degree-0 X vertices
  vid_t isolated_y = 0;
  double degree_skew_x = 0.0;      ///< max degree / avg degree
};

/// Compute stats with a parallel scan over both sides.
GraphStats compute_graph_stats(const BipartiteGraph& g);

/// One-line rendering: "nx=... ny=... m=... davg=... dmax=...".
std::string format_graph_stats(const GraphStats& stats);

}  // namespace graftmatch
