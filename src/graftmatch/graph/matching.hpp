// Matching representation shared by every algorithm.
//
// The paper represents a matching as a single mate[] array over X u Y
// with -1 for unmatched vertices. We split it into mate_x / mate_y so
// both sides index from zero, which keeps kernels free of offset
// arithmetic; the semantics are identical.
#pragma once

#include <cstdint>
#include <vector>

#include "graftmatch/types.hpp"

namespace graftmatch {

class Matching {
 public:
  Matching() = default;

  /// Empty matching over parts of size nx and ny.
  Matching(vid_t nx, vid_t ny)
      : mate_x_(static_cast<std::size_t>(nx), kInvalidVertex),
        mate_y_(static_cast<std::size_t>(ny), kInvalidVertex) {}

  vid_t num_x() const noexcept { return static_cast<vid_t>(mate_x_.size()); }
  vid_t num_y() const noexcept { return static_cast<vid_t>(mate_y_.size()); }

  /// Mate of x in Y, or kInvalidVertex.
  vid_t mate_of_x(vid_t x) const noexcept {
    return mate_x_[static_cast<std::size_t>(x)];
  }
  /// Mate of y in X, or kInvalidVertex.
  vid_t mate_of_y(vid_t y) const noexcept {
    return mate_y_[static_cast<std::size_t>(y)];
  }

  bool is_matched_x(vid_t x) const noexcept {
    return mate_of_x(x) != kInvalidVertex;
  }
  bool is_matched_y(vid_t y) const noexcept {
    return mate_of_y(y) != kInvalidVertex;
  }

  /// Add the edge (x, y) to the matching. Both endpoints must currently
  /// be unmatched (checked only by assert; kernels maintain this).
  void match(vid_t x, vid_t y) noexcept {
    mate_x_[static_cast<std::size_t>(x)] = y;
    mate_y_[static_cast<std::size_t>(y)] = x;
  }

  /// Remove the matched edge incident to x (no-op if x is unmatched).
  void unmatch_x(vid_t x) noexcept {
    const vid_t y = mate_of_x(x);
    if (y == kInvalidVertex) return;
    mate_x_[static_cast<std::size_t>(x)] = kInvalidVertex;
    mate_y_[static_cast<std::size_t>(y)] = kInvalidVertex;
  }

  /// Number of matched edges. O(nx).
  std::int64_t cardinality() const noexcept {
    std::int64_t count = 0;
    for (const vid_t mate : mate_x_) count += (mate != kInvalidVertex);
    return count;
  }

  /// Matching number as a fraction of |X u Y| (the paper's Table II
  /// reporting convention: 2|M| / n).
  double fraction_of_vertices() const noexcept {
    const auto n = static_cast<double>(mate_x_.size() + mate_y_.size());
    return n == 0.0 ? 0.0 : 2.0 * static_cast<double>(cardinality()) / n;
  }

  /// Direct access for parallel kernels (atomic_ref-compatible storage).
  std::vector<vid_t>& mate_x() noexcept { return mate_x_; }
  std::vector<vid_t>& mate_y() noexcept { return mate_y_; }
  const std::vector<vid_t>& mate_x() const noexcept { return mate_x_; }
  const std::vector<vid_t>& mate_y() const noexcept { return mate_y_; }

  friend bool operator==(const Matching&, const Matching&) = default;

 private:
  std::vector<vid_t> mate_x_;
  std::vector<vid_t> mate_y_;
};

}  // namespace graftmatch
