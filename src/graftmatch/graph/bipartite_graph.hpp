// Bipartite graph in compressed sparse row form, stored in BOTH
// directions (X -> Y and Y -> X adjacency).
//
// The paper (Sec. IV-B) keeps each nonzero A[i][j] as two directed edges
// so that top-down traversals can scan X adjacency and bottom-up
// traversals can scan Y adjacency; we mirror that layout. In the paper's
// accounting, m = 2 * nnz; num_edges() below returns nnz (the number of
// undirected edges) and num_directed_edges() returns the paper's m.
#pragma once

#include <span>
#include <vector>

#include "graftmatch/graph/edge_list.hpp"
#include "graftmatch/types.hpp"

namespace graftmatch {

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Build from an edge list. Duplicate edges are merged. Endpoints are
  /// validated; throws std::invalid_argument on out-of-range vertices.
  /// Construction runs in parallel (counting sort per side).
  static BipartiteGraph from_edges(const EdgeList& edges);

  /// Build directly from an X-side CSR (offsets of size nx+1, neighbors
  /// holding Y ids). The Y-side adjacency is derived. Neighbor lists may
  /// be unsorted and contain duplicates; they are canonicalized. Throws
  /// std::invalid_argument on malformed offsets or out-of-range ids.
  static BipartiteGraph from_csr(std::span<const eid_t> offsets,
                                 std::span<const vid_t> neighbors, vid_t ny);

  /// Build from an already-canonical X-side CSR: offsets framing
  /// neighbors, every row sorted strictly ascending, ids in [0, ny).
  /// The arrays are adopted without a canonicalization sort (the
  /// validation and the derived Y side are O(n + m), parallel), which
  /// is what the kernel compaction in reduce/ relies on. Throws
  /// std::invalid_argument when the input is not canonical.
  static BipartiteGraph from_canonical_csr(std::vector<eid_t> offsets,
                                           std::vector<vid_t> neighbors,
                                           vid_t ny);

  vid_t num_x() const noexcept { return nx_; }
  vid_t num_y() const noexcept { return ny_; }
  vid_t num_vertices() const noexcept { return nx_ + ny_; }

  /// Number of undirected edges (nnz of the underlying matrix).
  std::int64_t num_edges() const noexcept {
    return static_cast<std::int64_t>(x_neighbors_.size());
  }
  /// m in the paper's convention: each nonzero counted in both directions.
  std::int64_t num_directed_edges() const noexcept { return 2 * num_edges(); }

  /// Neighbors (Y vertices) of an X vertex, sorted ascending.
  std::span<const vid_t> neighbors_of_x(vid_t x) const noexcept {
    return {x_neighbors_.data() + x_offsets_[static_cast<std::size_t>(x)],
            x_neighbors_.data() + x_offsets_[static_cast<std::size_t>(x) + 1]};
  }

  /// Neighbors (X vertices) of a Y vertex, sorted ascending.
  std::span<const vid_t> neighbors_of_y(vid_t y) const noexcept {
    return {y_neighbors_.data() + y_offsets_[static_cast<std::size_t>(y)],
            y_neighbors_.data() + y_offsets_[static_cast<std::size_t>(y) + 1]};
  }

  eid_t degree_x(vid_t x) const noexcept {
    return x_offsets_[static_cast<std::size_t>(x) + 1] -
           x_offsets_[static_cast<std::size_t>(x)];
  }
  eid_t degree_y(vid_t y) const noexcept {
    return y_offsets_[static_cast<std::size_t>(y) + 1] -
           y_offsets_[static_cast<std::size_t>(y)];
  }

  /// True when (x, y) is an edge. O(log degree_x(x)).
  bool has_edge(vid_t x, vid_t y) const noexcept;

  /// Raw CSR views for kernel implementations.
  std::span<const eid_t> x_offsets() const noexcept { return x_offsets_; }
  std::span<const vid_t> x_neighbors() const noexcept { return x_neighbors_; }
  std::span<const eid_t> y_offsets() const noexcept { return y_offsets_; }
  std::span<const vid_t> y_neighbors() const noexcept { return y_neighbors_; }

  /// Reconstruct the (canonical) edge list.
  EdgeList to_edges() const;

  /// Approximate resident bytes of the CSR arrays.
  std::int64_t memory_bytes() const noexcept;

 private:
  vid_t nx_ = 0;
  vid_t ny_ = 0;
  std::vector<eid_t> x_offsets_;  ///< size nx+1
  std::vector<vid_t> x_neighbors_;
  std::vector<eid_t> y_offsets_;  ///< size ny+1
  std::vector<vid_t> y_neighbors_;
};

}  // namespace graftmatch
