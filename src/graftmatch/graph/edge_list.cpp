#include "graftmatch/graph/edge_list.hpp"

#include <algorithm>

namespace graftmatch {

void EdgeList::canonicalize() {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

bool EdgeList::in_bounds() const noexcept {
  for (const Edge& e : edges) {
    if (e.x < 0 || e.x >= nx || e.y < 0 || e.y >= ny) return false;
  }
  return true;
}

}  // namespace graftmatch
