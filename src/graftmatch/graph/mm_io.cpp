#include "graftmatch/graph/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace graftmatch {
namespace {

[[noreturn]] void fail(std::int64_t line, const std::string& message) {
  std::ostringstream out;
  out << "matrix market: line " << line << ": " << message;
  throw std::runtime_error(out.str());
}

std::string lowercase(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return text;
}

struct Header {
  std::string field;     // real | integer | pattern | complex
  std::string symmetry;  // general | symmetric | skew-symmetric | hermitian
};

Header parse_banner(const std::string& line) {
  std::istringstream in(line);
  std::string banner, object, format, field, symmetry;
  in >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" && banner != "%MatrixMarket") {
    fail(1, "missing %%MatrixMarket banner");
  }
  object = lowercase(object);
  format = lowercase(format);
  field = lowercase(field);
  symmetry = lowercase(symmetry);
  if (object != "matrix") fail(1, "unsupported object '" + object + "'");
  if (format != "coordinate") {
    fail(1, "unsupported format '" + format + "' (only coordinate)");
  }
  if (field != "real" && field != "integer" && field != "pattern" &&
      field != "complex") {
    fail(1, "unsupported field '" + field + "'");
  }
  if (symmetry != "general" && symmetry != "symmetric" &&
      symmetry != "skew-symmetric" && symmetry != "hermitian") {
    fail(1, "unsupported symmetry '" + symmetry + "'");
  }
  return {field, symmetry};
}

}  // namespace

EdgeList read_matrix_market(std::istream& in) {
  std::string line;
  std::int64_t lineno = 0;

  if (!std::getline(in, line)) fail(1, "empty input");
  ++lineno;
  const Header header = parse_banner(line);

  // Skip comment lines.
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] != '%') break;
  }
  if (line.empty() || line[0] == '%') fail(lineno, "missing size line");

  std::int64_t rows = 0, cols = 0, entries = 0;
  {
    std::istringstream sizes(line);
    if (!(sizes >> rows >> cols >> entries)) {
      fail(lineno, "malformed size line");
    }
    if (rows < 0 || cols < 0 || entries < 0) {
      fail(lineno, "negative dimension");
    }
  }

  EdgeList list;
  list.nx = rows;
  list.ny = cols;
  const bool symmetric = header.symmetry != "general";
  list.edges.reserve(
      static_cast<std::size_t>(symmetric ? 2 * entries : entries));

  for (std::int64_t k = 0; k < entries; ++k) {
    if (!std::getline(in, line)) fail(lineno + 1, "unexpected end of file");
    ++lineno;
    if (line.empty() || line[0] == '%') {
      --k;  // tolerate stray blank/comment lines between entries
      continue;
    }
    std::istringstream entry(line);
    std::int64_t i = 0, j = 0;
    if (!(entry >> i >> j)) fail(lineno, "malformed entry");
    if (i < 1 || i > rows || j < 1 || j > cols) {
      fail(lineno, "index out of range");
    }
    const vid_t x = i - 1;
    const vid_t y = j - 1;
    list.edges.push_back({x, y});
    if (symmetric && i != j) {
      // Symmetric storage keeps only the lower triangle; mirror it.
      // (Requires a square matrix; the UF collection guarantees this.)
      if (rows != cols) fail(lineno, "symmetric matrix must be square");
      list.edges.push_back({y, x});
    }
  }

  list.canonicalize();
  return list;
}

EdgeList read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("matrix market: cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const EdgeList& edges) {
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << "% written by graftmatch\n";
  out << edges.nx << ' ' << edges.ny << ' ' << edges.edges.size() << '\n';
  for (const Edge& e : edges.edges) {
    out << (e.x + 1) << ' ' << (e.y + 1) << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("matrix market: cannot open " + path);
  write_matrix_market(out, edges);
}

}  // namespace graftmatch
