#include "graftmatch/graph/graph_stats.hpp"

#include <algorithm>
#include <sstream>

namespace graftmatch {

GraphStats compute_graph_stats(const BipartiteGraph& g) {
  GraphStats stats;
  stats.nx = g.num_x();
  stats.ny = g.num_y();
  stats.edges = g.num_edges();

  eid_t max_dx = 0;
  eid_t max_dy = 0;
  vid_t iso_x = 0;
  vid_t iso_y = 0;
#pragma omp parallel for schedule(static) reduction(max : max_dx) \
    reduction(+ : iso_x)
  for (vid_t x = 0; x < stats.nx; ++x) {
    const eid_t d = g.degree_x(x);
    max_dx = std::max(max_dx, d);
    iso_x += (d == 0);
  }
#pragma omp parallel for schedule(static) reduction(max : max_dy) \
    reduction(+ : iso_y)
  for (vid_t y = 0; y < stats.ny; ++y) {
    const eid_t d = g.degree_y(y);
    max_dy = std::max(max_dy, d);
    iso_y += (d == 0);
  }

  stats.max_degree_x = max_dx;
  stats.max_degree_y = max_dy;
  stats.isolated_x = iso_x;
  stats.isolated_y = iso_y;
  stats.avg_degree_x =
      stats.nx > 0 ? static_cast<double>(stats.edges) / static_cast<double>(stats.nx) : 0.0;
  stats.avg_degree_y =
      stats.ny > 0 ? static_cast<double>(stats.edges) / static_cast<double>(stats.ny) : 0.0;
  stats.degree_skew_x = stats.avg_degree_x > 0.0
                            ? static_cast<double>(stats.max_degree_x) / stats.avg_degree_x
                            : 0.0;
  return stats;
}

std::string format_graph_stats(const GraphStats& stats) {
  std::ostringstream out;
  out << "nx=" << stats.nx << " ny=" << stats.ny << " m=" << stats.edges
      << " davg_x=" << stats.avg_degree_x << " dmax_x=" << stats.max_degree_x
      << " dmax_y=" << stats.max_degree_y << " iso_x=" << stats.isolated_x
      << " iso_y=" << stats.isolated_y;
  return out.str();
}

}  // namespace graftmatch
