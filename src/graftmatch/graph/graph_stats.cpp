#include "graftmatch/graph/graph_stats.hpp"

#include <algorithm>
#include <sstream>

#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/parallel.hpp"

namespace graftmatch {
namespace {

// Atomic max-merge of a per-thread partial into the shared cell.
void merge_max(eid_t& shared, eid_t local) noexcept {
  eid_t observed = relaxed_load(shared);
  while (local > observed && !cas(shared, observed, local)) {
    observed = relaxed_load(shared);
  }
}

}  // namespace

GraphStats compute_graph_stats(const BipartiteGraph& g) {
  GraphStats stats;
  stats.nx = g.num_x();
  stats.ny = g.num_y();
  stats.edges = g.num_edges();

  eid_t max_dx = 0;
  eid_t max_dy = 0;
  vid_t iso_x = 0;
  vid_t iso_y = 0;
  parallel_region([&] {
    eid_t local_max_dx = 0;
    eid_t local_max_dy = 0;
    vid_t local_iso_x = 0;
    vid_t local_iso_y = 0;
#pragma omp for schedule(static) nowait
    for (vid_t x = 0; x < stats.nx; ++x) {
      const eid_t d = g.degree_x(x);
      local_max_dx = std::max(local_max_dx, d);
      local_iso_x += (d == 0);
    }
#pragma omp for schedule(static)
    for (vid_t y = 0; y < stats.ny; ++y) {
      const eid_t d = g.degree_y(y);
      local_max_dy = std::max(local_max_dy, d);
      local_iso_y += (d == 0);
    }
    merge_max(max_dx, local_max_dx);
    merge_max(max_dy, local_max_dy);
    fetch_add_relaxed(iso_x, local_iso_x);
    fetch_add_relaxed(iso_y, local_iso_y);
  });

  stats.max_degree_x = max_dx;
  stats.max_degree_y = max_dy;
  stats.isolated_x = iso_x;
  stats.isolated_y = iso_y;
  stats.avg_degree_x =
      stats.nx > 0 ? static_cast<double>(stats.edges) / static_cast<double>(stats.nx) : 0.0;
  stats.avg_degree_y =
      stats.ny > 0 ? static_cast<double>(stats.edges) / static_cast<double>(stats.ny) : 0.0;
  stats.degree_skew_x = stats.avg_degree_x > 0.0
                            ? static_cast<double>(stats.max_degree_x) / stats.avg_degree_x
                            : 0.0;
  return stats;
}

std::string format_graph_stats(const GraphStats& stats) {
  std::ostringstream out;
  out << "nx=" << stats.nx << " ny=" << stats.ny << " m=" << stats.edges
      << " davg_x=" << stats.avg_degree_x << " dmax_x=" << stats.max_degree_x
      << " dmax_y=" << stats.max_degree_y << " iso_x=" << stats.isolated_x
      << " iso_y=" << stats.isolated_y;
  return out.str();
}

}  // namespace graftmatch
