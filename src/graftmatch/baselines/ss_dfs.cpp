#include "graftmatch/baselines/ss_dfs.hpp"

#include <utility>
#include <vector>

#include "graftmatch/engine/stats_sink.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {

RunStats ss_dfs(SessionContext& session, const BipartiteGraph& g,
                Matching& matching, const RunConfig& config) {
  const SessionScope scope(session);
  RunStats stats;
  engine::StatsSink sink(session, stats, "SS-DFS", matching,
                         /*parallel=*/false);

  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();

  std::vector<std::uint8_t> visited(static_cast<std::size_t>(ny), 0);
  std::vector<vid_t> parent(static_cast<std::size_t>(ny), kInvalidVertex);
  std::vector<vid_t> trail;
  // DFS stack of (x vertex, offset of the next neighbor to scan).
  std::vector<std::pair<vid_t, eid_t>> stack;
  trail.reserve(256);
  stack.reserve(256);

  const auto x_offsets = g.x_offsets();
  const auto x_neighbors = g.x_neighbors();

  for (vid_t x0 = 0; x0 < nx; ++x0) {
    if (matching.is_matched_x(x0)) continue;

    ++stats.phases;
    trail.clear();
    stack.assign(1, {x0, x_offsets[static_cast<std::size_t>(x0)]});
    vid_t found_leaf = kInvalidVertex;

    sink.start(engine::Step::kTopDown);
    while (!stack.empty() && found_leaf == kInvalidVertex) {
      auto& [x, position] = stack.back();
      if (position == x_offsets[static_cast<std::size_t>(x) + 1]) {
        stack.pop_back();
        continue;
      }
      const vid_t y = x_neighbors[static_cast<std::size_t>(position++)];
      ++stats.edges_traversed;
      if (visited[static_cast<std::size_t>(y)]) continue;
      visited[static_cast<std::size_t>(y)] = 1;
      parent[static_cast<std::size_t>(y)] = x;
      trail.push_back(y);
      const vid_t mate = matching.mate_of_y(y);
      if (mate == kInvalidVertex) {
        found_leaf = y;
      } else {
        stack.push_back({mate, x_offsets[static_cast<std::size_t>(mate)]});
      }
    }

    sink.stop(engine::Step::kTopDown);

    if (found_leaf != kInvalidVertex) {
      const auto lap = sink.scoped(engine::Step::kAugment);
      std::int64_t path_edges = 0;
      vid_t y = found_leaf;
      while (y != kInvalidVertex) {
        const vid_t x = parent[static_cast<std::size_t>(y)];
        const vid_t next_y = matching.mate_of_x(x);
        matching.match(x, y);
        ++path_edges;
        if (next_y != kInvalidVertex) ++path_edges;
        y = next_y;
      }
      ++stats.augmentations;
      stats.total_path_edges += path_edges;
      if (config.collect_path_histogram) {
        ++stats.path_length_histogram[path_edges];
      }
      for (const vid_t v : trail) {
        visited[static_cast<std::size_t>(v)] = 0;
      }
    }
  }

  sink.finish(matching);
  return stats;
}

RunStats ss_dfs(const BipartiteGraph& g, Matching& matching,
                const RunConfig& config) {
  return ss_dfs(ambient_session(), g, matching, config);
}

}  // namespace graftmatch
