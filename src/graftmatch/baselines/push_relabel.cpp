#include "graftmatch/baselines/push_relabel.hpp"

#include <algorithm>
#include <vector>

#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/engine/stats_sink.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

/// Tiny per-vertex spinlock (one byte per Y vertex).
class SpinGuard {
 public:
  SpinGuard(std::uint8_t* locks, vid_t y) noexcept
      : lock_(locks[static_cast<std::size_t>(y)]) {
    while (std::atomic_ref<std::uint8_t>(lock_).exchange(
               1, std::memory_order_acquire) != 0) {
      // spin; critical sections are a handful of instructions
    }
  }
  ~SpinGuard() {
    std::atomic_ref<std::uint8_t>(lock_).store(0, std::memory_order_release);
  }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  std::uint8_t& lock_;
};

}  // namespace

RunStats push_relabel(SessionContext& session, const BipartiteGraph& g,
                      Matching& matching, const RunConfig& config) {
  const SessionScope scope(session);
  const ThreadCountGuard thread_guard(config.threads);
  RunStats stats;
  engine::StatsSink sink(session, stats, "PR", matching, /*parallel=*/true);

  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();
  auto& mate_x = matching.mate_x();
  auto& mate_y = matching.mate_y();

  // Label "infinity": no displacement chain visits a Y vertex twice, so
  // any true distance is <= ny; ny + 1 certifies unreachability.
  const std::int64_t label_max = ny + 1;
  std::vector<std::int64_t> psi(static_cast<std::size_t>(ny), 0);
  std::vector<std::uint8_t> locks(static_cast<std::size_t>(ny), 0);

  // Exact labels via multi-source BFS from the free Y vertices:
  // psi[y] = number of double pushes a chain starting at y needs to
  // reach a free Y vertex (0 when y itself is free).
  std::vector<vid_t> frontier;
  std::vector<vid_t> next;
  const engine::Adjacency reverse_adj = engine::y_adjacency(g);
  const auto global_relabel = [&] {
    const auto lap = sink.scoped(engine::Step::kStatistics);
    std::fill(psi.begin(), psi.end(), label_max);
    frontier.clear();
    for (vid_t y = 0; y < ny; ++y) {
      if (mate_y[static_cast<std::size_t>(y)] == kInvalidVertex) {
        psi[static_cast<std::size_t>(y)] = 0;
        frontier.push_back(y);
      }
    }
    std::int64_t level = 0;
    while (!frontier.empty()) {
      next.clear();
      ++level;
      stats.edges_traversed += engine::scan_frontier_edges(
          reverse_adj, frontier, [&](vid_t, vid_t x) {
            const vid_t held = mate_x[static_cast<std::size_t>(x)];
            if (held != kInvalidVertex &&
                psi[static_cast<std::size_t>(held)] == label_max) {
              psi[static_cast<std::size_t>(held)] = level;
              next.push_back(held);
            }
            return true;
          });
      frontier.swap(next);
    }
  };

  global_relabel();

  FrontierQueue<vid_t> active(static_cast<std::size_t>(nx) + 16);
  FrontierQueue<vid_t> reactivated(static_cast<std::size_t>(nx) + 16);
  for (vid_t x = 0; x < nx; ++x) {
    if (mate_x[static_cast<std::size_t>(x)] == kInvalidVertex &&
        g.degree_x(x) > 0) {
      active.push(x);
    }
  }

  // Global-relabel cadence: every (n / frequency) pushes, per the
  // Langguth et al. tuning the paper adopts (freq 2 serial, 16 at high
  // thread counts).
  const std::int64_t relabel_threshold =
      std::max<std::int64_t>(64, (nx + ny) / std::max(1, config.pr_relabel_frequency));
  std::int64_t pushes_since_relabel = 0;

  // One double push for active vertex x. Returns the displaced X vertex
  // (to reactivate), x itself if it must retry later, or kInvalidVertex
  // when x was matched or retired. Thread-safe.
  auto double_push = [&](vid_t x, std::int64_t& edges) -> vid_t {
    for (;;) {
      // Scan x's neighbors for the two smallest labels.
      std::int64_t min1 = label_max + 1;
      std::int64_t min2 = label_max + 1;
      vid_t best = kInvalidVertex;
      for (const vid_t y : g.neighbors_of_x(x)) {
        ++edges;
        const std::int64_t label =
            relaxed_load(psi[static_cast<std::size_t>(y)]);
        if (label < min1) {
          min2 = min1;
          min1 = label;
          best = y;
        } else if (label < min2) {
          min2 = label;
        }
      }
      if (best == kInvalidVertex || min1 >= label_max) {
        return kInvalidVertex;  // unmatchable: retire x
      }

      const SpinGuard guard(locks.data(), best);
      // The label may have moved between scan and lock; retry if so.
      if (relaxed_load(psi[static_cast<std::size_t>(best)]) != min1) {
        continue;
      }
      const vid_t displaced = relaxed_load(mate_y[static_cast<std::size_t>(best)]);
      relaxed_store(mate_y[static_cast<std::size_t>(best)], x);
      relaxed_store(mate_x[static_cast<std::size_t>(x)], best);
      if (displaced != kInvalidVertex) {
        relaxed_store(mate_x[static_cast<std::size_t>(displaced)],
                      kInvalidVertex);
      }
      // Relabel: the next displacement from `best` must route through
      // x's second-best alternative.
      relaxed_store(psi[static_cast<std::size_t>(best)],
                    std::min(min2 + 1, label_max));
      return displaced;
    }
  };

  const int chunk = std::max(1, config.pr_queue_limit);
  while (!active.empty()) {
    sink.start(engine::Step::kTopDown);
    const engine::TraversalCounters counters = engine::for_each_chunked(
        active.items(), chunk, reactivated,
        [&](vid_t x, auto& out, engine::TraversalCounters& local) {
          if (relaxed_load(mate_x[static_cast<std::size_t>(x)]) !=
              kInvalidVertex) {
            return;  // stale entry
          }
          const vid_t displaced = double_push(x, local.edges);
          ++local.visits;  // one double push
          if (displaced != kInvalidVertex) out.push(displaced);
        });
    sink.stop(engine::Step::kTopDown);
    stats.edges_traversed += counters.edges;

    ++stats.phases;
    pushes_since_relabel += counters.visits;

    active.clear();
    active.swap(reactivated);
    if (pushes_since_relabel >= relabel_threshold && !active.empty()) {
      global_relabel();
      pushes_since_relabel = 0;
    }
  }

  sink.finish(matching);
  // PR has no augmenting paths; report one unit of gained cardinality
  // per "augmentation" so the shared stats invariants hold.
  stats.augmentations = stats.final_cardinality - stats.initial_cardinality;
  stats.total_path_edges = stats.augmentations;
  return stats;
}

RunStats push_relabel(const BipartiteGraph& g, Matching& matching,
                      const RunConfig& config) {
  return push_relabel(ambient_session(), g, matching, config);
}

}  // namespace graftmatch
