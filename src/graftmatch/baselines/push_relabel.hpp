// Push-relabel bipartite matching (the PR competitor of Figs. 3-4).
//
// Follows the bipartite specialization of Goldberg-Tarjan used by
// Langguth, Manne et al. (the implementation the paper compares
// against): labels psi live on Y vertices; an unmatched X vertex is
// "active"; processing an active x performs a DOUBLE PUSH onto its
// minimum-label admissible neighbor y* (stealing y*'s mate, which
// becomes active again) and relabels psi[y*] to second-min + 1. A vertex
// whose neighbors all carry labels >= n is unmatchable and is retired.
//
// Periodic GLOBAL RELABELING recomputes exact labels with a multi-source
// BFS from the free Y vertices; its cadence is the paper's "relabel
// frequency" knob (2 serial / 16 at high thread counts), and the
// "queue limit" bounds the chunk of active vertices a thread grabs.
//
// The multithreaded variant locks y* with a per-vertex spinlock during
// the double push so label monotonicity and mate consistency hold.
#pragma once

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

class SessionContext;

RunStats push_relabel(SessionContext& session, const BipartiteGraph& g,
                      Matching& matching, const RunConfig& config = {});
/// Ambient-session convenience (runtime/context.hpp).
RunStats push_relabel(const BipartiteGraph& g, Matching& matching,
                      const RunConfig& config = {});

}  // namespace graftmatch
