// Single-source BFS matching (Algorithm 1 with a BFS search).
//
// Serial by nature: augments one path at a time. Implements the key SS
// optimization the paper discusses in Sec. II-C: when a search tree
// T(x0) yields no augmenting path, its visited flags are NOT cleared, so
// the dead tree is never traversed again (those vertices can never lie
// on a future augmenting path).
#pragma once

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

class SessionContext;

/// Grow `matching` to maximum cardinality. Returns run statistics
/// (phases == number of augmenting-path searches).
RunStats ss_bfs(SessionContext& session, const BipartiteGraph& g,
                Matching& matching, const RunConfig& config = {});
/// Ambient-session convenience (runtime/context.hpp).
RunStats ss_bfs(const BipartiteGraph& g, Matching& matching,
                const RunConfig& config = {});

}  // namespace graftmatch
