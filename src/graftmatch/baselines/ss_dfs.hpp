// Single-source DFS matching (Algorithm 1 with a DFS search).
//
// Same failed-tree retention as SS-BFS; differs only in search order,
// which the paper's Fig. 1 uses to show that DFS-based searches find
// much longer augmenting paths.
#pragma once

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

class SessionContext;

RunStats ss_dfs(SessionContext& session, const BipartiteGraph& g,
                Matching& matching, const RunConfig& config = {});
/// Ambient-session convenience (runtime/context.hpp).
RunStats ss_dfs(const BipartiteGraph& g, Matching& matching,
                const RunConfig& config = {});

}  // namespace graftmatch
