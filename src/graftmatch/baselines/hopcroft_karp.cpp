#include "graftmatch/baselines/hopcroft_karp.hpp"

#include <limits>
#include <utility>
#include <vector>

#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/engine/stats_sink.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

constexpr std::int64_t kInfinity = std::numeric_limits<std::int64_t>::max();

}  // namespace

RunStats hopcroft_karp(SessionContext& session, const BipartiteGraph& g,
                       Matching& matching, const RunConfig& config) {
  const SessionScope scope(session);
  RunStats stats;
  engine::StatsSink sink(session, stats, "HK", matching, /*parallel=*/false);

  const vid_t nx = g.num_x();
  const engine::Adjacency adj = engine::x_adjacency(g);

  // dist[x]: BFS level of X vertex x in the alternating level graph
  // (0 for unmatched roots); kInfinity when unreached.
  std::vector<std::int64_t> dist(static_cast<std::size_t>(nx));
  std::vector<vid_t> frontier;
  std::vector<vid_t> next;
  // DFS cursor per X vertex: each adjacency entry scanned at most once
  // per phase, preserving the O(m) per-phase bound.
  std::vector<eid_t> cursor(static_cast<std::size_t>(nx));
  std::vector<std::pair<vid_t, vid_t>> stack;  // (x, y chosen from x)

  const auto x_offsets = g.x_offsets();
  const auto x_neighbors = g.x_neighbors();

  while (true) {
    ++stats.phases;

    // ---- BFS: build levels until the first free Y vertex is seen.
    sink.start(engine::Step::kTopDown);
    std::int64_t shortest = kInfinity;
    frontier.clear();
    for (vid_t x = 0; x < nx; ++x) {
      if (matching.is_matched_x(x)) {
        dist[static_cast<std::size_t>(x)] = kInfinity;
      } else {
        dist[static_cast<std::size_t>(x)] = 0;
        frontier.push_back(x);
      }
    }
    std::int64_t level = 0;
    while (!frontier.empty() && shortest == kInfinity) {
      next.clear();
      stats.edges_traversed +=
          engine::scan_frontier_edges(adj, frontier, [&](vid_t, vid_t y) {
            const vid_t mate = matching.mate_of_y(y);
            if (mate == kInvalidVertex) {
              shortest = level;  // free Y found: stop after this level
            } else if (dist[static_cast<std::size_t>(mate)] == kInfinity) {
              dist[static_cast<std::size_t>(mate)] = level + 1;
              next.push_back(mate);
            }
            return true;  // finish the level even after a hit
          });
      frontier.swap(next);
      ++level;
    }
    sink.stop(engine::Step::kTopDown);
    if (shortest == kInfinity) break;  // no augmenting path: maximum

    // ---- DFS: peel off vertex-disjoint shortest augmenting paths.
    const auto lap = sink.scoped(engine::Step::kAugment);
    for (vid_t x = 0; x < nx; ++x) {
      cursor[static_cast<std::size_t>(x)] =
          x_offsets[static_cast<std::size_t>(x)];
    }

    for (vid_t x0 = 0; x0 < nx; ++x0) {
      if (matching.is_matched_x(x0)) continue;
      stack.clear();
      stack.push_back({x0, kInvalidVertex});

      while (!stack.empty()) {
        const vid_t x = stack.back().first;
        eid_t& pos = cursor[static_cast<std::size_t>(x)];
        const eid_t end = x_offsets[static_cast<std::size_t>(x) + 1];

        bool advanced = false;
        while (pos < end) {
          const vid_t y = x_neighbors[static_cast<std::size_t>(pos++)];
          ++stats.edges_traversed;
          const vid_t mate = matching.mate_of_y(y);
          if (mate == kInvalidVertex) {
            if (dist[static_cast<std::size_t>(x)] != shortest) continue;
            // Complete shortest path: flip the edges along the stack.
            stack.back().second = y;
            std::int64_t path_edges = 0;
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
              const vid_t px = it->first;
              const vid_t py = it->second;
              if (matching.is_matched_x(px)) ++path_edges;
              matching.match(px, py);
              ++path_edges;
            }
            ++stats.augmentations;
            stats.total_path_edges += path_edges;
            if (config.collect_path_histogram) {
              ++stats.path_length_histogram[path_edges];
            }
            // Remove path X vertices from the level graph.
            for (const auto& [px, py] : stack) {
              dist[static_cast<std::size_t>(px)] = kInfinity;
            }
            stack.clear();
            advanced = true;
            break;
          }
          if (dist[static_cast<std::size_t>(mate)] ==
              dist[static_cast<std::size_t>(x)] + 1) {
            stack.back().second = y;
            stack.push_back({mate, kInvalidVertex});
            advanced = true;
            break;
          }
        }
        if (!advanced) {
          // Dead end: retire x from the level graph and backtrack.
          dist[static_cast<std::size_t>(x)] = kInfinity;
          stack.pop_back();
        }
      }
    }
  }

  sink.finish(matching);
  return stats;
}

RunStats hopcroft_karp(const BipartiteGraph& g, Matching& matching,
                       const RunConfig& config) {
  return hopcroft_karp(ambient_session(), g, matching, config);
}

std::int64_t maximum_matching_cardinality(const BipartiteGraph& g) {
  Matching matching = karp_sipser(g);
  hopcroft_karp(g, matching);
  return matching.cardinality();
}

}  // namespace graftmatch
