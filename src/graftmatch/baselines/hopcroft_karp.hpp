// Hopcroft-Karp: phase = one BFS computing the level graph up to the
// shortest augmenting-path length, then DFS extraction of a maximal set
// of vertex-disjoint shortest augmenting paths. O(m * sqrt(n)) total.
//
// Serial, as in the paper's Fig. 1 comparison (implementation lineage:
// Duff, Kaya, Ucar's MC64-style codes). Also used throughout the test
// suite as the optimality oracle for every other algorithm.
#pragma once

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

class SessionContext;

RunStats hopcroft_karp(SessionContext& session, const BipartiteGraph& g,
                       Matching& matching, const RunConfig& config = {});
/// Ambient-session convenience (runtime/context.hpp).
RunStats hopcroft_karp(const BipartiteGraph& g, Matching& matching,
                       const RunConfig& config = {});

/// Convenience oracle: maximum matching cardinality of g, computed with
/// Karp-Sipser initialization + Hopcroft-Karp.
std::int64_t maximum_matching_cardinality(const BipartiteGraph& g);

}  // namespace graftmatch
