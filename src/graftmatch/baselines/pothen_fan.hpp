// Pothen-Fan algorithm: multi-source DFS with lookahead, plus the
// "fairness" refinement (alternating adjacency scan direction between
// phases). This is the PF competitor of the paper's Figs. 3, 4; the
// multithreaded variant follows Azad et al. [4]: each thread grows a DFS
// tree from one unmatched vertex, Y vertices are claimed with atomic
// visited flags so trees stay vertex-disjoint, and each thread augments
// its own path immediately.
#pragma once

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

class SessionContext;

/// Grow `matching` to maximum cardinality with Pothen-Fan.
/// Honors config.threads (<=0 keeps the OpenMP default) and
/// config.pf_fairness.
RunStats pothen_fan(SessionContext& session, const BipartiteGraph& g,
                    Matching& matching, const RunConfig& config = {});
/// Ambient-session convenience (runtime/context.hpp).
RunStats pothen_fan(const BipartiteGraph& g, Matching& matching,
                    const RunConfig& config = {});

}  // namespace graftmatch
