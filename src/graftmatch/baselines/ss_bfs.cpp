#include "graftmatch/baselines/ss_bfs.hpp"

#include <vector>

#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/engine/stats_sink.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {

RunStats ss_bfs(SessionContext& session, const BipartiteGraph& g,
                Matching& matching, const RunConfig& config) {
  const SessionScope scope(session);
  RunStats stats;
  engine::StatsSink sink(session, stats, "SS-BFS", matching,
                         /*parallel=*/false);

  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();
  const engine::Adjacency adj = engine::x_adjacency(g);

  std::vector<std::uint8_t> visited(static_cast<std::size_t>(ny), 0);
  std::vector<vid_t> parent(static_cast<std::size_t>(ny), kInvalidVertex);
  std::vector<vid_t> frontier;
  std::vector<vid_t> next;
  std::vector<vid_t> trail;  // Y vertices visited by the current search
  frontier.reserve(256);
  next.reserve(256);
  trail.reserve(256);

  for (vid_t x0 = 0; x0 < nx; ++x0) {
    if (matching.is_matched_x(x0)) continue;

    ++stats.phases;
    trail.clear();
    frontier.assign(1, x0);
    vid_t found_leaf = kInvalidVertex;

    {
      const auto lap = sink.scoped(engine::Step::kTopDown);
      while (!frontier.empty() && found_leaf == kInvalidVertex) {
        next.clear();
        stats.edges_traversed +=
            engine::scan_frontier_edges(adj, frontier, [&](vid_t x, vid_t y) {
              if (visited[static_cast<std::size_t>(y)]) return true;
              visited[static_cast<std::size_t>(y)] = 1;
              parent[static_cast<std::size_t>(y)] = x;
              trail.push_back(y);
              const vid_t mate = matching.mate_of_y(y);
              if (mate == kInvalidVertex) {
                found_leaf = y;  // shortest augmenting path from x0
                return false;    // stop the whole level scan
              }
              next.push_back(mate);
              return true;
            });
        frontier.swap(next);
      }
    }

    if (found_leaf != kInvalidVertex) {
      const auto lap = sink.scoped(engine::Step::kAugment);
      // Flip the path by walking parent/mate pointers back to x0.
      std::int64_t path_edges = 0;
      vid_t y = found_leaf;
      while (y != kInvalidVertex) {
        const vid_t x = parent[static_cast<std::size_t>(y)];
        const vid_t next_y = matching.mate_of_x(x);
        matching.match(x, y);
        ++path_edges;              // the newly matched edge (x, y)
        if (next_y != kInvalidVertex) ++path_edges;  // the flipped one
        y = next_y;
      }
      ++stats.augmentations;
      stats.total_path_edges += path_edges;
      if (config.collect_path_histogram) {
        ++stats.path_length_histogram[path_edges];
      }
      // Successful searches release their visited vertices; failed
      // trees stay hidden (their flags are never cleared).
      for (const vid_t v : trail) {
        visited[static_cast<std::size_t>(v)] = 0;
      }
    }
  }

  sink.finish(matching);
  return stats;
}

RunStats ss_bfs(const BipartiteGraph& g, Matching& matching,
                const RunConfig& config) {
  return ss_bfs(ambient_session(), g, matching, config);
}

}  // namespace graftmatch
