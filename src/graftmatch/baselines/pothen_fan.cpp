#include "graftmatch/baselines/pothen_fan.hpp"

#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/engine/stats_sink.hpp"
#include "graftmatch/runtime/aligned.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

/// Per-thread DFS workspace, reused across phases.
struct DfsWorkspace {
  /// DFS stack of (x vertex, next adjacency offset to scan).
  std::vector<std::pair<vid_t, eid_t>> stack;
  std::int64_t edges = 0;         ///< edges traversed by this thread
  std::int64_t paths = 0;         ///< augmenting paths found
  std::int64_t path_edges = 0;    ///< sum of their lengths
  std::map<std::int64_t, std::int64_t> histogram;  ///< optional lengths
  bool collect_histogram = false;
};

}  // namespace

RunStats pothen_fan(SessionContext& session, const BipartiteGraph& g,
                    Matching& matching, const RunConfig& config) {
  const SessionScope scope(session);
  const ThreadCountGuard thread_guard(config.threads);
  RunStats stats;
  engine::StatsSink sink(session, stats, "Pothen-Fan", matching,
                         /*parallel=*/true);

  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();
  auto& mate_x = matching.mate_x();
  auto& mate_y = matching.mate_y();
  const auto x_offsets = g.x_offsets();
  const auto x_neighbors = g.x_neighbors();

  std::vector<std::uint8_t> visited(static_cast<std::size_t>(ny), 0);
  std::vector<vid_t> parent(static_cast<std::size_t>(ny), kInvalidVertex);
  // Lookahead cursor per X vertex: monotone scan position hunting for an
  // unmatched neighbor; each adjacency entry is looked at most once over
  // the whole run, giving PF its O(m) lookahead total.
  std::vector<eid_t> lookahead(static_cast<std::size_t>(nx));
  parallel_region([&] {
#pragma omp for schedule(static)
    for (vid_t x = 0; x < nx; ++x) {
      lookahead[static_cast<std::size_t>(x)] =
          x_offsets[static_cast<std::size_t>(x)];
    }
  });

  // Try to claim an unmatched Y neighbor of x via the lookahead cursor.
  // Returns the claimed vertex or kInvalidVertex. May claim a matched
  // vertex (lost race); the caller treats that as a regular tree child.
  const auto look_ahead = [&](vid_t x, std::int64_t& edges,
                              bool& claimed_matched) -> vid_t {
    eid_t& cursor = lookahead[static_cast<std::size_t>(x)];
    const eid_t end = x_offsets[static_cast<std::size_t>(x) + 1];
    while (cursor < end) {
      const vid_t y = x_neighbors[static_cast<std::size_t>(cursor)];
      ++cursor;
      ++edges;
      if (relaxed_load(mate_y[static_cast<std::size_t>(y)]) !=
          kInvalidVertex) {
        continue;  // matched: not a lookahead hit, leave for the DFS
      }
      if (!claim_flag(visited[static_cast<std::size_t>(y)])) continue;
      // Re-check after the claim: another thread may have matched y
      // between our read and our claim.
      claimed_matched = relaxed_load(mate_y[static_cast<std::size_t>(y)]) !=
                        kInvalidVertex;
      return y;
    }
    return kInvalidVertex;
  };

  // Flip the path ending at unmatched `leaf`, walking parent/mate
  // pointers up to the root. All path vertices are exclusively claimed
  // by this thread, so relaxed atomics suffice.
  const auto augment = [&](vid_t leaf, std::int64_t& path_edges) {
    vid_t y = leaf;
    while (y != kInvalidVertex) {
      const vid_t x = parent[static_cast<std::size_t>(y)];
      const vid_t next_y = relaxed_load(mate_x[static_cast<std::size_t>(x)]);
      relaxed_store(mate_x[static_cast<std::size_t>(x)], y);
      relaxed_store(mate_y[static_cast<std::size_t>(y)], x);
      ++path_edges;
      if (next_y != kInvalidVertex) ++path_edges;
      y = next_y;
    }
  };

  // One DFS-with-lookahead search from unmatched x0. Returns true when a
  // path was found (and augmented).
  const auto search = [&](vid_t x0, DfsWorkspace& ws, bool forward) -> bool {
    ws.stack.clear();
    ws.stack.push_back({x0, forward ? x_offsets[static_cast<std::size_t>(x0)]
                                    : x_offsets[static_cast<std::size_t>(x0) + 1]});
    while (!ws.stack.empty()) {
      auto& [x, position] = ws.stack.back();

      // Lookahead first: a direct unmatched neighbor ends the search.
      bool claimed_matched = false;
      const vid_t hit = look_ahead(x, ws.edges, claimed_matched);
      if (hit != kInvalidVertex && !claimed_matched) {
        parent[static_cast<std::size_t>(hit)] = x;
        std::int64_t path_edges = 0;
        augment(hit, path_edges);
        ++ws.paths;
        ws.path_edges += path_edges;
        if (ws.collect_histogram) ++ws.histogram[path_edges];
        return true;
      }
      if (hit != kInvalidVertex && claimed_matched) {
        // Claimed a matched vertex: descend into it like a DFS child.
        parent[static_cast<std::size_t>(hit)] = x;
        const vid_t mate = relaxed_load(mate_y[static_cast<std::size_t>(hit)]);
        ws.stack.push_back(
            {mate, forward ? x_offsets[static_cast<std::size_t>(mate)]
                           : x_offsets[static_cast<std::size_t>(mate) + 1]});
        continue;
      }

      // Regular DFS step over x's adjacency in the fair direction.
      vid_t child = kInvalidVertex;
      if (forward) {
        const eid_t end = x_offsets[static_cast<std::size_t>(x) + 1];
        while (position < end) {
          const vid_t y = x_neighbors[static_cast<std::size_t>(position++)];
          ++ws.edges;
          if (claim_flag(visited[static_cast<std::size_t>(y)])) {
            child = y;
            break;
          }
        }
      } else {
        const eid_t begin = x_offsets[static_cast<std::size_t>(x)];
        while (position > begin) {
          const vid_t y = x_neighbors[static_cast<std::size_t>(--position)];
          ++ws.edges;
          if (claim_flag(visited[static_cast<std::size_t>(y)])) {
            child = y;
            break;
          }
        }
      }
      if (child == kInvalidVertex) {
        ws.stack.pop_back();
        continue;
      }
      parent[static_cast<std::size_t>(child)] = x;
      const vid_t mate = relaxed_load(mate_y[static_cast<std::size_t>(child)]);
      if (mate == kInvalidVertex) {
        std::int64_t path_edges = 0;
        augment(child, path_edges);
        ++ws.paths;
        ws.path_edges += path_edges;
        if (ws.collect_histogram) ++ws.histogram[path_edges];
        return true;
      }
      ws.stack.push_back(
          {mate, forward ? x_offsets[static_cast<std::size_t>(mate)]
                         : x_offsets[static_cast<std::size_t>(mate) + 1]});
    }
    return false;
  };

  bool progress = true;
  bool forward = true;
  while (progress) {
    ++stats.phases;
    const auto lap = sink.scoped(engine::Step::kTopDown);
    first_touch_fill(visited, std::uint8_t{0});

    // Workspaces are per phase (fresh per team thread), so the merged
    // path count of one sweep is exactly this phase's progress.
    std::int64_t phase_paths = 0;
    engine::for_each_root_dynamic(
        nx, /*chunk=*/16,
        [&] {
          DfsWorkspace ws;
          ws.collect_histogram = config.collect_path_histogram;
          return ws;
        },
        [&](vid_t x0, DfsWorkspace& ws) {
          if (relaxed_load(mate_x[static_cast<std::size_t>(x0)]) !=
              kInvalidVertex)
            return;
          search(x0, ws, forward);
        },
        [&](const DfsWorkspace& ws) {
          phase_paths += ws.paths;
          stats.edges_traversed += ws.edges;
          stats.augmentations += ws.paths;
          stats.total_path_edges += ws.path_edges;
          for (const auto& [length, count] : ws.histogram) {
            stats.path_length_histogram[length] += count;
          }
        });

    progress = phase_paths > 0;
    if (config.pf_fairness) forward = !forward;
  }

  sink.finish(matching);
  return stats;
}

RunStats pothen_fan(const BipartiteGraph& g, Matching& matching,
                    const RunConfig& config) {
  return pothen_fan(ambient_session(), g, matching, config);
}

}  // namespace graftmatch
