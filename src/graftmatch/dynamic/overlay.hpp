// Mutable bipartite-graph overlay for the dynamic matcher.
//
// The solvers and the verification oracles want an immutable CSR; edge
// churn wants O(degree) point updates. GraphOverlay keeps both honest:
// an immutable CSR base plus (a) per-vertex sorted delta adjacency for
// inserted edges and (b) tombstone bitmaps over the base's x-side and
// y-side adjacency slots for deleted edges. Live-neighbor iteration
// walks the base row skipping tombstones, then the delta row -- every
// structure is mirrored on both sides so X-rooted and Y-rooted
// traversals pay the same cost, exactly like the base CSR.
//
// The overlay gets slower as it diverges from the base (every deleted
// slot is still scanned, every delta row is a second cache miss), so
// cost() exposes the divergence and compact() folds everything back
// into a canonical CSR via from_canonical_csr -- the payoff-gated
// "periodic compaction" of the dynamic matcher. Compaction changes no
// live edge, so a matching valid on the overlay stays valid across it.
//
// Thread-safety: mutation is single-owner (the DynamicMatcher serializes
// it); concurrent reads without a mutation in flight are safe.
#pragma once

#include <cstdint>
#include <vector>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/edge_list.hpp"
#include "graftmatch/types.hpp"

namespace graftmatch::dynamic {

class GraphOverlay {
 public:
  explicit GraphOverlay(BipartiteGraph base);

  vid_t num_x() const noexcept { return base_.num_x(); }
  vid_t num_y() const noexcept { return base_.num_y(); }

  /// Edges in the base CSR (compaction resets this).
  std::int64_t base_edges() const noexcept { return base_.num_edges(); }
  /// The base CSR itself. Equal to the live graph only when cost() is 0
  /// (i.e. right after construction or compact()).
  const BipartiteGraph& base() const noexcept { return base_; }
  /// Live edges: base - tombstoned + delta.
  std::int64_t live_edges() const noexcept {
    return base_.num_edges() - tombstoned_ + delta_;
  }
  /// Divergence from the base: tombstoned slots plus delta edges. The
  /// compaction gate compares this against base_edges().
  std::int64_t cost() const noexcept { return tombstoned_ + delta_; }

  /// True when (x, y) is a live edge. O(log degree).
  bool has_edge(vid_t x, vid_t y) const noexcept;

  /// Insert edge (x, y): resurrect a tombstoned base slot or append to
  /// the delta rows. Returns false (and changes nothing) when the edge
  /// is already live. Endpoints must be in range.
  bool insert(vid_t x, vid_t y);

  /// Erase edge (x, y): tombstone a base slot or drop a delta entry.
  /// Returns false (and changes nothing) when the edge is not live.
  bool erase(vid_t x, vid_t y);

  /// Live degree of a vertex (base minus tombstones plus delta).
  eid_t degree_x(vid_t x) const noexcept {
    return base_.degree_x(x) - dead_x_[static_cast<std::size_t>(x)] +
           static_cast<eid_t>(delta_x_[static_cast<std::size_t>(x)].size());
  }
  eid_t degree_y(vid_t y) const noexcept {
    return base_.degree_y(y) - dead_y_[static_cast<std::size_t>(y)] +
           static_cast<eid_t>(delta_y_[static_cast<std::size_t>(y)].size());
  }

  /// Visit every live Y neighbor of `x`. `fn(y)` returning false stops
  /// the walk early (and for_each returns false); return true from the
  /// callback to continue.
  template <class Fn>
  bool for_each_neighbor_x(vid_t x, Fn&& fn) const {
    const auto xi = static_cast<std::size_t>(x);
    const auto offsets = base_.x_offsets();
    const auto neighbors = base_.x_neighbors();
    for (eid_t e = offsets[xi]; e < offsets[xi + 1]; ++e) {
      if (x_dead(e)) continue;
      if (!fn(neighbors[static_cast<std::size_t>(e)])) return false;
    }
    for (const vid_t y : delta_x_[xi]) {
      if (!fn(y)) return false;
    }
    return true;
  }

  /// Visit every live X neighbor of `y` (mirror of the above).
  template <class Fn>
  bool for_each_neighbor_y(vid_t y, Fn&& fn) const {
    const auto yi = static_cast<std::size_t>(y);
    const auto offsets = base_.y_offsets();
    const auto neighbors = base_.y_neighbors();
    for (eid_t e = offsets[yi]; e < offsets[yi + 1]; ++e) {
      if (y_dead(e)) continue;
      if (!fn(neighbors[static_cast<std::size_t>(e)])) return false;
    }
    for (const vid_t x : delta_y_[yi]) {
      if (!fn(x)) return false;
    }
    return true;
  }

  /// Snapshot the live edge set as a canonical CSR graph (the oracle
  /// input and the compaction product). Does not modify the overlay.
  BipartiteGraph materialize() const;

  /// Replace the base with materialize() and clear every delta and
  /// tombstone. cost() is 0 afterwards; the live edge set is unchanged.
  void compact();

 private:
  bool x_dead(eid_t slot) const noexcept {
    return (x_tomb_[static_cast<std::size_t>(slot >> 6)] >>
            (slot & 63)) & 1u;
  }
  bool y_dead(eid_t slot) const noexcept {
    return (y_tomb_[static_cast<std::size_t>(slot >> 6)] >>
            (slot & 63)) & 1u;
  }
  /// Base adjacency slot of (x, y) on the X side, or -1. O(log degree).
  eid_t x_slot(vid_t x, vid_t y) const noexcept;
  eid_t y_slot(vid_t y, vid_t x) const noexcept;

  BipartiteGraph base_;
  /// Tombstone bitmaps, one bit per base adjacency slot per side.
  std::vector<std::uint64_t> x_tomb_;
  std::vector<std::uint64_t> y_tomb_;
  /// Tombstoned slots per vertex, so live degrees stay O(1).
  std::vector<eid_t> dead_x_;
  std::vector<eid_t> dead_y_;
  /// Inserted edges not in the base, sorted per vertex, both sides.
  std::vector<std::vector<vid_t>> delta_x_;
  std::vector<std::vector<vid_t>> delta_y_;
  std::int64_t tombstoned_ = 0;
  std::int64_t delta_ = 0;
};

}  // namespace graftmatch::dynamic
