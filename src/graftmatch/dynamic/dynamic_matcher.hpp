// Incremental maximum matching under edge churn.
//
// DynamicMatcher owns a GraphOverlay (CSR base + delta adjacency +
// tombstones) and maintains a MAXIMUM matching across add_edges() /
// remove_edges() batches by localized re-augmentation instead of
// re-solving from scratch:
//
//  * Deletions. Removing an unmatched edge cannot break maximality
//    (shrinking the edge set never creates augmenting paths). Removing
//    k matched edges frees k endpoint pairs; every augmenting path of
//    the shrunken graph w.r.t. the SHRUNKEN matching must end at a
//    newly-freed vertex -- a path avoiding all of them would alternate
//    identically w.r.t. the old matching and contradict its maximality.
//    So repair starts as one alternating BFS per newly-freed X and per
//    newly-freed Y. If those searches recover p paths, p == 0 proves
//    maximality directly (the matching never changed, and every root
//    the theorem points at was searched and failed -- failed searches
//    persist across other augmentations), and p == k proves it by
//    counting (|M| is back at the pre-batch value, an upper bound on
//    the shrunken maximum). For 0 < p < k the theorem no longer
//    applies to the REPAIRED matching: a repair path can terminate at
//    the newly-freed endpoint of a different deficiency path, leaving
//    an augmenting path whose endpoints are both old-free -- invisible
//    from every freed root (the differential battery caught exactly
//    this). That remainder falls back to the insertion sweep below.
//
//  * Insertions. A new augmenting path must cross an inserted edge,
//    but it may START anywhere: an inserted edge with both endpoints
//    matched can sit mid-path (x0 - y1 = x1 - NEW - y2 = x2 - y3 with
//    x0, y3 free), so seeding only from the new edges' endpoints would
//    MISS paths and silently surrender maximality. The matcher first
//    fast-path-matches inserted edges whose endpoints are both free,
//    then runs multi-source alternating sweeps from EVERY free X until
//    a sweep finds nothing -- the empty sweep is the maximality proof.
//    This is one MS-BFS phase shape, without the initializer and from
//    a matching at most |batch| below maximum, which is what makes it
//    cheaper than a full re-solve for small batches (bench_churn
//    measures the crossover).
//
//  * Failed-tree retention. Searches share visited stamps across
//    consecutive FAILURES: while the matching is unchanged, no
//    augmenting path (from any root, either side) can pass through a
//    failed alternating tree -- its X vertices have every neighbor
//    inside the tree and its Y vertices are matched with mates inside
//    it, so a path's last tree vertex could not leave (the same
//    argument ss_bfs relies on). Later searches prune at the retained
//    frontier, bounding a whole failure-dominated sweep round by one
//    O(m) pass instead of O(freeX * m); stamps are re-bumped only
//    after a successful augmentation invalidates the forest. On
//    heavily deficient graphs (web crawls, RMAT) this is the
//    difference between incremental repair beating and losing to the
//    per-batch full re-solve.
//
// Correctness never depends on the heuristics. Two gates are purely
// about cost:
//  * Staleness: when the churn volume since the last full solve
//    crosses `staleness_delta_fraction` of the graph, or
//    `staleness_failure_streak` consecutive searches found no path,
//    the matcher compacts and re-solves through the engine registry
//    (RunConfig surface included: solver, initializer, threads,
//    reduce/shard) -- the same entry point is the oracle the
//    differential tests compare against.
//  * Compaction: when the overlay's divergence crosses
//    `compact_fraction` of the base edges, it is folded back into a
//    canonical CSR (the matching is untouched; the live edge set does
//    not change).
//
// Session wiring: every public mutator binds the owning SessionContext
// as ambient for its duration, so obs spans (dynamic.apply /
// dynamic.reaugment / dynamic.compact) land in the session's trace,
// full re-solves draw workspace leases from the session's pool, and
// stress-build yield jitter follows the session's override. One
// matcher is single-owner like a solve; put concurrent matchers in
// separate sessions (tests/stress/test_dynamic_stress.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/dynamic/overlay.hpp"
#include "graftmatch/graph/edge_list.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/epoch_array.hpp"

namespace graftmatch::dynamic {

struct DynamicConfig {
  /// Registry keys for the initial solve and staleness re-solves.
  std::string solver = "graft";
  std::string initializer = "rgreedy";
  /// RunConfig for those solves (threads, seed, reduce, shard, ...).
  RunConfig run;

  /// Fold the overlay back into a CSR when cost() exceeds this fraction
  /// of the base edges. <= 0 compacts after every batch.
  double compact_fraction = 0.25;

  /// Full re-solve when churn since the last solve exceeds this
  /// fraction of the graph's edges at that solve.
  double staleness_delta_fraction = 0.5;
  /// Full re-solve after this many consecutive failed augmenting-path
  /// searches (a cost heuristic; failed searches are normal and leave
  /// the matching maximum regardless). <= 0 disables the streak gate.
  int staleness_failure_streak = 0;

  /// Audit after every batch: matching validity plus the Koenig
  /// maximality certificate on the materialized graph. O(n + m) per
  /// batch -- for tests and debugging.
  bool check_invariants = false;
};

class DynamicMatcher {
 public:
  /// Takes the initial graph, solves it to maximum through the engine
  /// registry under `session`, and is ready for churn.
  DynamicMatcher(SessionContext& session, BipartiteGraph base,
                 DynamicConfig config = {});

  vid_t num_x() const noexcept { return overlay_.num_x(); }
  vid_t num_y() const noexcept { return overlay_.num_y(); }
  std::int64_t live_edges() const noexcept { return overlay_.live_edges(); }

  const Matching& matching() const noexcept { return matching_; }
  std::int64_t cardinality() const noexcept { return cardinality_; }
  const DynamicConfig& config() const noexcept { return config_; }
  const GraphOverlay& overlay() const noexcept { return overlay_; }

  /// Insert a batch of edges (duplicates and already-present edges are
  /// skipped) and restore maximality. Returns the number of edges
  /// actually inserted. Throws std::out_of_range on bad endpoints.
  std::int64_t add_edges(std::span<const Edge> batch);

  /// Erase a batch of edges (absent edges are skipped) and restore
  /// maximality. Returns the number of edges actually erased.
  std::int64_t remove_edges(std::span<const Edge> batch);

  /// Snapshot the live graph as a CSR (the oracle input).
  BipartiteGraph materialize() const { return overlay_.materialize(); }

  /// Force a compaction now, regardless of the payoff gate.
  void compact();

  /// Force a full re-solve now (compacts first), regardless of the
  /// staleness gates.
  void resolve();

  /// Lifetime-cumulative stats: algorithm "dynamic+<solver>", the
  /// current cardinality, and the `dynamic` counter block (strict-JSON
  /// clean through run_stats_json).
  RunStats stats() const;

 private:
  void bind_and_apply(std::span<const Edge> batch, bool insert);
  /// One alternating BFS from a free X (or free Y) root; applies the
  /// augmenting path when found. Returns true on success.
  // `fresh_marks` bumps the visited epochs before the search; pass
  // false to retain the failed trees of previous searches (sound only
  // while the matching is unchanged since those failures -- see the
  // failed-tree-retention note in the class comment).
  bool augment_from_x(vid_t root, bool fresh_marks = true);
  bool augment_from_y(vid_t root, bool fresh_marks = true);
  /// Repeated all-free-X sweeps until one finds nothing.
  void sweep_to_maximum();
  void note_search(bool found_path);
  bool staleness_tripped() const;
  void full_resolve();
  void maybe_compact();
  void audit() const;

  SessionContext* session_;
  DynamicConfig config_;
  GraphOverlay overlay_;
  Matching matching_;
  std::int64_t cardinality_ = 0;

  /// Churn volume since the last full solve, and the live-edge count at
  /// that solve (the staleness denominators).
  std::int64_t churn_since_resolve_ = 0;
  std::int64_t edges_at_resolve_ = 0;
  int failure_streak_ = 0;

  /// Serial-BFS scratch, epoch-invalidated per search (no O(n) clear).
  EpochStamps visited_x_;
  EpochStamps visited_y_;
  std::vector<vid_t> parent_y_;  ///< Y -> X that discovered it (X roots)
  std::vector<vid_t> parent_x_;  ///< X -> Y that discovered it (Y roots)
  std::vector<vid_t> queue_;

  DynamicCounters counters_;
};

}  // namespace graftmatch::dynamic
