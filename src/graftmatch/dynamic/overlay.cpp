#include "graftmatch/dynamic/overlay.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace graftmatch::dynamic {
namespace {

/// Insert `value` into a sorted row, keeping it sorted. Returns false
/// when already present.
bool sorted_insert(std::vector<vid_t>& row, vid_t value) {
  const auto it = std::lower_bound(row.begin(), row.end(), value);
  if (it != row.end() && *it == value) return false;
  row.insert(it, value);
  return true;
}

/// Remove `value` from a sorted row. Returns false when absent.
bool sorted_erase(std::vector<vid_t>& row, vid_t value) {
  const auto it = std::lower_bound(row.begin(), row.end(), value);
  if (it == row.end() || *it != value) return false;
  row.erase(it);
  return true;
}

void check_endpoint(vid_t v, vid_t bound, const char* side) {
  if (v < 0 || v >= bound) {
    throw std::out_of_range(std::string("GraphOverlay: ") + side +
                            " endpoint out of range");
  }
}

}  // namespace

GraphOverlay::GraphOverlay(BipartiteGraph base) : base_(std::move(base)) {
  const auto words = [](std::int64_t bits) {
    return static_cast<std::size_t>((bits + 63) / 64);
  };
  x_tomb_.assign(words(base_.num_edges()), 0u);
  y_tomb_.assign(words(base_.num_edges()), 0u);
  dead_x_.assign(static_cast<std::size_t>(base_.num_x()), 0);
  dead_y_.assign(static_cast<std::size_t>(base_.num_y()), 0);
  delta_x_.resize(static_cast<std::size_t>(base_.num_x()));
  delta_y_.resize(static_cast<std::size_t>(base_.num_y()));
}

eid_t GraphOverlay::x_slot(vid_t x, vid_t y) const noexcept {
  const auto offsets = base_.x_offsets();
  const auto neighbors = base_.x_neighbors();
  const auto xi = static_cast<std::size_t>(x);
  const vid_t* first = neighbors.data() + offsets[xi];
  const vid_t* last = neighbors.data() + offsets[xi + 1];
  const vid_t* it = std::lower_bound(first, last, y);
  if (it == last || *it != y) return -1;
  return offsets[xi] + (it - first);
}

eid_t GraphOverlay::y_slot(vid_t y, vid_t x) const noexcept {
  const auto offsets = base_.y_offsets();
  const auto neighbors = base_.y_neighbors();
  const auto yi = static_cast<std::size_t>(y);
  const vid_t* first = neighbors.data() + offsets[yi];
  const vid_t* last = neighbors.data() + offsets[yi + 1];
  const vid_t* it = std::lower_bound(first, last, x);
  if (it == last || *it != x) return -1;
  return offsets[yi] + (it - first);
}

bool GraphOverlay::has_edge(vid_t x, vid_t y) const noexcept {
  if (x < 0 || y < 0 || x >= num_x() || y >= num_y()) return false;
  const eid_t slot = x_slot(x, y);
  if (slot >= 0) return !x_dead(slot);
  const auto& row = delta_x_[static_cast<std::size_t>(x)];
  return std::binary_search(row.begin(), row.end(), y);
}

bool GraphOverlay::insert(vid_t x, vid_t y) {
  check_endpoint(x, num_x(), "X");
  check_endpoint(y, num_y(), "Y");
  const eid_t xs = x_slot(x, y);
  if (xs >= 0) {
    if (!x_dead(xs)) return false;  // already live in the base
    // Resurrect the tombstoned slot on both sides; the y-side slot
    // exists whenever the x-side one does (the CSR is symmetric).
    const eid_t ys = y_slot(y, x);
    x_tomb_[static_cast<std::size_t>(xs >> 6)] &= ~(1ull << (xs & 63));
    y_tomb_[static_cast<std::size_t>(ys >> 6)] &= ~(1ull << (ys & 63));
    --dead_x_[static_cast<std::size_t>(x)];
    --dead_y_[static_cast<std::size_t>(y)];
    tombstoned_ -= 1;
    return true;
  }
  if (!sorted_insert(delta_x_[static_cast<std::size_t>(x)], y)) return false;
  sorted_insert(delta_y_[static_cast<std::size_t>(y)], x);
  delta_ += 1;
  return true;
}

bool GraphOverlay::erase(vid_t x, vid_t y) {
  check_endpoint(x, num_x(), "X");
  check_endpoint(y, num_y(), "Y");
  const eid_t xs = x_slot(x, y);
  if (xs >= 0) {
    if (x_dead(xs)) return false;  // already tombstoned
    const eid_t ys = y_slot(y, x);
    x_tomb_[static_cast<std::size_t>(xs >> 6)] |= 1ull << (xs & 63);
    y_tomb_[static_cast<std::size_t>(ys >> 6)] |= 1ull << (ys & 63);
    ++dead_x_[static_cast<std::size_t>(x)];
    ++dead_y_[static_cast<std::size_t>(y)];
    tombstoned_ += 1;
    return true;
  }
  if (!sorted_erase(delta_x_[static_cast<std::size_t>(x)], y)) return false;
  sorted_erase(delta_y_[static_cast<std::size_t>(y)], x);
  delta_ -= 1;
  return true;
}

BipartiteGraph GraphOverlay::materialize() const {
  // Canonical row merge: live base slots (already sorted) merged with
  // the sorted delta row, per X vertex. from_canonical_csr adopts the
  // arrays without re-sorting.
  const auto nx = static_cast<std::size_t>(num_x());
  std::vector<eid_t> offsets(nx + 1, 0);
  for (std::size_t x = 0; x < nx; ++x) {
    offsets[x + 1] =
        offsets[x] + degree_x(static_cast<vid_t>(x));
  }
  std::vector<vid_t> neighbors(static_cast<std::size_t>(offsets[nx]));
  const auto base_offsets = base_.x_offsets();
  const auto base_neighbors = base_.x_neighbors();
  for (std::size_t x = 0; x < nx; ++x) {
    std::size_t out = static_cast<std::size_t>(offsets[x]);
    const auto& delta = delta_x_[x];
    std::size_t d = 0;
    for (eid_t e = base_offsets[x]; e < base_offsets[x + 1]; ++e) {
      if (x_dead(e)) continue;
      const vid_t y = base_neighbors[static_cast<std::size_t>(e)];
      while (d < delta.size() && delta[d] < y) neighbors[out++] = delta[d++];
      neighbors[out++] = y;
    }
    while (d < delta.size()) neighbors[out++] = delta[d++];
  }
  return BipartiteGraph::from_canonical_csr(std::move(offsets),
                                            std::move(neighbors), num_y());
}

void GraphOverlay::compact() {
  base_ = materialize();
  const auto words = [](std::int64_t bits) {
    return static_cast<std::size_t>((bits + 63) / 64);
  };
  x_tomb_.assign(words(base_.num_edges()), 0u);
  y_tomb_.assign(words(base_.num_edges()), 0u);
  std::fill(dead_x_.begin(), dead_x_.end(), 0);
  std::fill(dead_y_.begin(), dead_y_.end(), 0);
  for (auto& row : delta_x_) row.clear();
  for (auto& row : delta_y_) row.clear();
  tombstoned_ = 0;
  delta_ = 0;
}

}  // namespace graftmatch::dynamic
