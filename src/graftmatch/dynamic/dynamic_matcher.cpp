#include "graftmatch/dynamic/dynamic_matcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graftmatch/engine/registry.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/timer.hpp"
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

namespace graftmatch::dynamic {

DynamicMatcher::DynamicMatcher(SessionContext& session, BipartiteGraph base,
                               DynamicConfig config)
    : session_(&session),
      config_(std::move(config)),
      overlay_(std::move(base)),
      matching_(overlay_.num_x(), overlay_.num_y()) {
  visited_x_.reset(static_cast<std::size_t>(overlay_.num_x()));
  visited_y_.reset(static_cast<std::size_t>(overlay_.num_y()));
  parent_y_.assign(static_cast<std::size_t>(overlay_.num_y()),
                   kInvalidVertex);
  parent_x_.assign(static_cast<std::size_t>(overlay_.num_x()),
                   kInvalidVertex);
  queue_.reserve(static_cast<std::size_t>(
      std::max(overlay_.num_x(), overlay_.num_y())));
  // The initial solve. Not counted as a staleness re-solve: the
  // `resolves` counter measures churn-triggered work.
  const SessionScope scope(*session_);
  engine::run(*session_, config_.solver, config_.initializer,
              overlay_.base(), matching_, config_.run);
  cardinality_ = matching_.cardinality();
  edges_at_resolve_ = overlay_.live_edges();
  if (config_.check_invariants) audit();
}

std::int64_t DynamicMatcher::add_edges(std::span<const Edge> batch) {
  const SessionScope scope(*session_);
  const Timer batch_timer;
  obs::emit_begin(obs::names::kDynamicApply,
                  static_cast<std::int64_t>(batch.size()), cardinality_);
  std::int64_t inserted = 0;
  for (const Edge& e : batch) {
    if (!overlay_.insert(e.x, e.y)) continue;
    ++inserted;
    // Fast path: a new edge with both endpoints free is itself an
    // augmenting path of length one.
    if (!matching_.is_matched_x(e.x) && !matching_.is_matched_y(e.y)) {
      matching_.match(e.x, e.y);
      ++cardinality_;
      ++counters_.direct_matches;
    }
  }
  counters_.batches += 1;
  counters_.edges_added += inserted;
  churn_since_resolve_ += inserted;
  if (inserted > 0) {
    if (staleness_tripped()) {
      full_resolve();
    } else {
      sweep_to_maximum();
      if (config_.staleness_failure_streak > 0 &&
          failure_streak_ >= config_.staleness_failure_streak) {
        full_resolve();
      }
    }
  }
  maybe_compact();
  if (config_.check_invariants) audit();
  obs::emit_end(obs::names::kDynamicApply, overlay_.live_edges(),
                cardinality_);
  counters_.apply_seconds += batch_timer.elapsed();
  return inserted;
}

std::int64_t DynamicMatcher::remove_edges(std::span<const Edge> batch) {
  const SessionScope scope(*session_);
  const Timer batch_timer;
  obs::emit_begin(obs::names::kDynamicApply,
                  static_cast<std::int64_t>(batch.size()), cardinality_);
  std::int64_t erased = 0;
  std::vector<vid_t> freed_x;
  std::vector<vid_t> freed_y;
  for (const Edge& e : batch) {
    if (!overlay_.erase(e.x, e.y)) continue;
    ++erased;
    // Erasing an unmatched edge cannot break maximality; erasing a
    // matched one frees its endpoints, the only places a new
    // augmenting path can end (see the class comment).
    if (matching_.mate_of_x(e.x) == e.y) {
      matching_.unmatch_x(e.x);
      --cardinality_;
      freed_x.push_back(e.x);
      freed_y.push_back(e.y);
    }
  }
  counters_.batches += 1;
  counters_.edges_removed += erased;
  churn_since_resolve_ += erased;
  if (staleness_tripped()) {
    full_resolve();
  } else if (!freed_x.empty()) {
    const auto freed = static_cast<std::int64_t>(freed_x.size());
    std::int64_t paths = 0;
    {
      const Timer repair_timer;
      obs::emit_begin(obs::names::kDynamicReaugment, freed);
      // One search per freed root, each against the current matching; a
      // root re-matched by an earlier repair path needs no search, and
      // a failed root stays failed (persistence). Consecutive failures
      // retain their trees (valid across sides: a dead tree is dead
      // for every root); each success invalidates the retained forest.
      bool fresh = true;
      for (const vid_t x : freed_x) {
        if (matching_.is_matched_x(x)) continue;
        const bool found = augment_from_x(x, fresh);
        note_search(found);
        fresh = found;
        paths += found;
      }
      for (const vid_t y : freed_y) {
        if (matching_.is_matched_y(y)) continue;
        const bool found = augment_from_y(y, fresh);
        note_search(found);
        fresh = found;
        paths += found;
      }
      obs::emit_end(obs::names::kDynamicReaugment,
                    static_cast<std::int64_t>(freed_x.size() +
                                              freed_y.size()),
                    paths);
      counters_.reaugment_seconds += repair_timer.elapsed();
    }
    // p == 0 proves maximality (the matching is untouched, so every
    // residual augmenting path would still have a newly-freed endpoint,
    // and every such root was searched and failed). p == k proves it by
    // counting (|M| is back to the pre-batch value, an upper bound on
    // the shrunken graph's maximum). In between, a repair path may have
    // consumed the newly-freed endpoint of a DIFFERENT deficiency path,
    // leaving an augmenting path between two old-free vertices that no
    // freed root can see -- only the global sweep proves maximality
    // there.
    if (paths > 0 && paths < freed) {
      sweep_to_maximum();
    }
    if (config_.staleness_failure_streak > 0 &&
        failure_streak_ >= config_.staleness_failure_streak) {
      full_resolve();
    }
  }
  maybe_compact();
  if (config_.check_invariants) audit();
  obs::emit_end(obs::names::kDynamicApply, overlay_.live_edges(),
                cardinality_);
  counters_.apply_seconds += batch_timer.elapsed();
  return erased;
}

bool DynamicMatcher::augment_from_x(vid_t root, bool fresh_marks) {
  ++counters_.reaugment_searches;
  if (fresh_marks) {
    visited_x_.bump();
    visited_y_.bump();
  }
  queue_.clear();
  queue_.push_back(root);
  visited_x_.stamp(static_cast<std::size_t>(root));
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const vid_t x = queue_[head];
    vid_t found = kInvalidVertex;
    overlay_.for_each_neighbor_x(x, [&](vid_t y) {
      const auto yi = static_cast<std::size_t>(y);
      if (visited_y_.valid(yi)) return true;
      visited_y_.stamp(yi);
      parent_y_[yi] = x;
      if (!matching_.is_matched_y(y)) {
        found = y;
        return false;  // free Y: augmenting path complete
      }
      const vid_t next = matching_.mate_of_y(y);
      if (!visited_x_.valid(static_cast<std::size_t>(next))) {
        visited_x_.stamp(static_cast<std::size_t>(next));
        queue_.push_back(next);
      }
      return true;
    });
    if (found != kInvalidVertex) {
      // Flip the path by walking the parent chain back to the root.
      vid_t y = found;
      while (y != kInvalidVertex) {
        const vid_t px = parent_y_[static_cast<std::size_t>(y)];
        const vid_t next = matching_.mate_of_x(px);
        matching_.unmatch_x(px);
        matching_.match(px, y);
        y = next;
      }
      ++cardinality_;
      ++counters_.reaugment_paths;
      return true;
    }
  }
  return false;
}

bool DynamicMatcher::augment_from_y(vid_t root, bool fresh_marks) {
  ++counters_.reaugment_searches;
  if (fresh_marks) {
    visited_x_.bump();
    visited_y_.bump();
  }
  queue_.clear();
  queue_.push_back(root);
  visited_y_.stamp(static_cast<std::size_t>(root));
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const vid_t y = queue_[head];
    vid_t found = kInvalidVertex;
    overlay_.for_each_neighbor_y(y, [&](vid_t x) {
      const auto xi = static_cast<std::size_t>(x);
      if (visited_x_.valid(xi)) return true;
      visited_x_.stamp(xi);
      parent_x_[xi] = y;
      if (!matching_.is_matched_x(x)) {
        found = x;
        return false;  // free X: augmenting path complete
      }
      const vid_t next = matching_.mate_of_x(x);
      if (!visited_y_.valid(static_cast<std::size_t>(next))) {
        visited_y_.stamp(static_cast<std::size_t>(next));
        queue_.push_back(next);
      }
      return true;
    });
    if (found != kInvalidVertex) {
      vid_t x = found;
      while (x != kInvalidVertex) {
        const vid_t py = parent_x_[static_cast<std::size_t>(x)];
        const vid_t next = matching_.mate_of_y(py);
        if (next != kInvalidVertex) matching_.unmatch_x(next);
        matching_.match(x, py);
        x = next;
      }
      ++cardinality_;
      ++counters_.reaugment_paths;
      return true;
    }
  }
  return false;
}

void DynamicMatcher::sweep_to_maximum() {
  const Timer sweep_timer;
  obs::emit_begin(obs::names::kDynamicReaugment);
  std::int64_t searches = 0;
  std::int64_t paths = 0;
  // Augmenting never frees a vertex, so a round with zero paths found
  // proves maximality (every free X was searched and failed). The
  // persistence argument makes round 2 that proof round in practice.
  // Within a round, consecutive failed searches retain their trees
  // (see the class comment), so a failure-dominated round -- the norm
  // on heavily deficient graphs -- costs one O(m) pass total.
  for (;;) {
    ++counters_.sweep_rounds;
    std::int64_t found = 0;
    bool any_free_y = false;
    for (vid_t y = 0; y < overlay_.num_y() && !any_free_y; ++y) {
      any_free_y = !matching_.is_matched_y(y);
    }
    if (any_free_y) {
      bool fresh = true;
      for (vid_t x = 0; x < overlay_.num_x(); ++x) {
        if (matching_.is_matched_x(x)) continue;
        ++searches;
        const bool ok = augment_from_x(x, fresh);
        note_search(ok);
        fresh = ok;
        found += ok;
      }
    }
    if (found == 0) break;
    paths += found;
  }
  obs::emit_end(obs::names::kDynamicReaugment, searches, paths);
  counters_.reaugment_seconds += sweep_timer.elapsed();
}

void DynamicMatcher::note_search(bool found_path) {
  failure_streak_ = found_path ? 0 : failure_streak_ + 1;
}

bool DynamicMatcher::staleness_tripped() const {
  const auto denom =
      static_cast<double>(std::max<std::int64_t>(edges_at_resolve_, 1));
  if (static_cast<double>(churn_since_resolve_) >
      config_.staleness_delta_fraction * denom) {
    return true;
  }
  return config_.staleness_failure_streak > 0 &&
         failure_streak_ >= config_.staleness_failure_streak;
}

void DynamicMatcher::full_resolve() {
  const Timer resolve_timer;
  counters_.overlay_peak = std::max(counters_.overlay_peak, overlay_.cost());
  if (overlay_.cost() > 0) {
    obs::emit_begin(obs::names::kDynamicCompact, overlay_.live_edges());
    overlay_.compact();
    obs::emit_end(obs::names::kDynamicCompact, overlay_.live_edges());
    ++counters_.compactions;
  }
  Matching fresh(overlay_.num_x(), overlay_.num_y());
  engine::run(*session_, config_.solver, config_.initializer,
              overlay_.base(), fresh, config_.run);
  matching_ = std::move(fresh);
  cardinality_ = matching_.cardinality();
  churn_since_resolve_ = 0;
  edges_at_resolve_ = overlay_.live_edges();
  failure_streak_ = 0;
  ++counters_.resolves;
  counters_.resolve_seconds += resolve_timer.elapsed();
}

void DynamicMatcher::maybe_compact() {
  counters_.overlay_peak = std::max(counters_.overlay_peak, overlay_.cost());
  if (overlay_.cost() == 0) return;
  const auto threshold =
      config_.compact_fraction * static_cast<double>(overlay_.base_edges());
  if (static_cast<double>(overlay_.cost()) <= threshold) return;
  const Timer compact_timer;
  obs::emit_begin(obs::names::kDynamicCompact, overlay_.live_edges());
  overlay_.compact();
  obs::emit_end(obs::names::kDynamicCompact, overlay_.live_edges());
  ++counters_.compactions;
  counters_.compact_seconds += compact_timer.elapsed();
}

void DynamicMatcher::compact() {
  const SessionScope scope(*session_);
  counters_.overlay_peak = std::max(counters_.overlay_peak, overlay_.cost());
  if (overlay_.cost() == 0) return;
  const Timer compact_timer;
  obs::emit_begin(obs::names::kDynamicCompact, overlay_.live_edges());
  overlay_.compact();
  obs::emit_end(obs::names::kDynamicCompact, overlay_.live_edges());
  ++counters_.compactions;
  counters_.compact_seconds += compact_timer.elapsed();
}

void DynamicMatcher::resolve() {
  const SessionScope scope(*session_);
  full_resolve();
  if (config_.check_invariants) audit();
}

void DynamicMatcher::audit() const {
  const BipartiteGraph live = overlay_.materialize();
  if (!is_valid_matching(live, matching_)) {
    throw std::logic_error("DynamicMatcher: matching invalid after batch");
  }
  if (matching_.cardinality() != cardinality_) {
    throw std::logic_error(
        "DynamicMatcher: cached cardinality out of sync with matching");
  }
  if (!is_maximum_matching(live, matching_)) {
    throw std::logic_error(
        "DynamicMatcher: matching lost maximality (Koenig certificate)");
  }
}

RunStats DynamicMatcher::stats() const {
  RunStats stats;
  stats.algorithm = "dynamic+" + config_.solver;
  stats.initial_cardinality = cardinality_;
  stats.final_cardinality = cardinality_;
  stats.augmentations = counters_.reaugment_paths;
  stats.total_path_edges = 0;
  stats.threads_used = std::max(config_.run.threads, 1);
  stats.seconds = counters_.apply_seconds;
  stats.dynamic = counters_;
  stats.dynamic.collected = true;
  return stats;
}

}  // namespace graftmatch::dynamic
