// Structured-grid stencil matrices: the "scientific computing" class.
//
// kkt_power / hugetrace / delaunay-like inputs share three structural
// properties the paper leans on: near-perfect matching number, bounded
// degree, and large diameter. A 5-point (2D) or 7-point (3D) stencil
// matrix interpreted as a bipartite graph has exactly these properties
// (the diagonal gives a perfect matching; we optionally knock out a
// fraction of diagonal entries to dial the matching number down).
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct GridParams {
  vid_t width = 512;
  vid_t height = 512;
  vid_t depth = 1;             ///< depth > 1 selects the 3D 7-point stencil
  double diagonal_drop = 0.0;  ///< fraction of diagonal entries removed
  std::uint64_t seed = 1;      ///< used only when diagonal_drop > 0
};

/// Bipartite graph of the stencil matrix of a width x height (x depth)
/// grid: row i is connected to column i (unless dropped) and to the
/// columns of grid-adjacent cells.
BipartiteGraph generate_grid(const GridParams& params);

}  // namespace graftmatch
