#include "graftmatch/gen/sbm.hpp"

#include <omp.h>

#include <cmath>
#include <stdexcept>

#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

BipartiteGraph generate_sbm(const SbmParams& params) {
  if (params.rows_per_block <= 0 || params.cols_per_block <= 0 ||
      params.blocks <= 0) {
    throw std::invalid_argument("sbm: sizes must be positive");
  }
  if (params.in_degree < 0.0 || params.out_degree < 0.0) {
    throw std::invalid_argument("sbm: degrees must be non-negative");
  }

  const vid_t nx = params.rows_per_block * params.blocks;
  const vid_t ny = params.cols_per_block * params.blocks;

  EdgeList list;
  list.nx = nx;
  list.ny = ny;
  list.edges.reserve(static_cast<std::size_t>(
      static_cast<double>(nx) * (params.in_degree + params.out_degree)));

  Xoshiro256 rng(params.seed);
  for (vid_t x = 0; x < nx; ++x) {
    const vid_t block = x / params.rows_per_block;
    const vid_t own_base = block * params.cols_per_block;

    // In-block edges: Poisson-ish via independent geometric rounding.
    const auto in_edges = static_cast<std::int64_t>(std::floor(
        params.in_degree + rng.uniform()));
    for (std::int64_t k = 0; k < in_edges; ++k) {
      list.edges.push_back(
          {x, own_base + static_cast<vid_t>(rng.below(
                  static_cast<std::uint64_t>(params.cols_per_block)))});
    }
    // Cross-block edges land anywhere outside the own block.
    if (params.blocks > 1) {
      const auto out_edges = static_cast<std::int64_t>(std::floor(
          params.out_degree + rng.uniform()));
      for (std::int64_t k = 0; k < out_edges; ++k) {
        vid_t other = static_cast<vid_t>(rng.below(
            static_cast<std::uint64_t>(params.blocks - 1)));
        if (other >= block) ++other;
        list.edges.push_back(
            {x, other * params.cols_per_block +
                    static_cast<vid_t>(rng.below(static_cast<std::uint64_t>(
                        params.cols_per_block)))});
      }
    }
  }
  return BipartiteGraph::from_edges(list);
}

}  // namespace graftmatch
