#include "graftmatch/gen/planted.hpp"

#include <stdexcept>

#include "graftmatch/graph/transforms.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

PlantedGraph generate_planted(const PlantedParams& params) {
  if (params.matched_pairs < 0 || params.surplus_rows < 0 ||
      params.bottleneck < 0) {
    throw std::invalid_argument("planted: negative sizes");
  }
  if (params.noise_degree < 0.0) {
    throw std::invalid_argument("planted: negative noise degree");
  }

  const vid_t planted = params.matched_pairs;
  const vid_t surplus = params.surplus_rows;
  const vid_t bottleneck = params.bottleneck;

  Xoshiro256 rng(params.seed);
  EdgeList list;
  list.nx = planted + surplus;
  list.ny = planted + bottleneck;

  // Planted perfect matching plus noise, confined to the planted block
  // (so the block's maximum stays exactly `planted`).
  for (vid_t i = 0; i < planted; ++i) {
    list.edges.push_back({i, i});
  }
  const auto noise_edges =
      static_cast<std::int64_t>(params.noise_degree *
                                static_cast<double>(planted));
  for (std::int64_t k = 0; k < noise_edges; ++k) {
    const auto x = static_cast<vid_t>(
        rng.below(static_cast<std::uint64_t>(planted)));
    const auto y = static_cast<vid_t>(
        rng.below(static_cast<std::uint64_t>(planted)));
    list.edges.push_back({x, y});
  }

  // Surplus rows compete for the bottleneck columns. The deterministic
  // ring pattern (row j -> cols j mod B and j+1 mod B) guarantees the
  // bottleneck block's maximum is exactly min(surplus, bottleneck);
  // extra random edges into the same columns cannot raise it.
  if (bottleneck > 0) {
    for (vid_t j = 0; j < surplus; ++j) {
      const vid_t row = planted + j;
      list.edges.push_back({row, planted + (j % bottleneck)});
      list.edges.push_back({row, planted + ((j + 1) % bottleneck)});
      if (rng.uniform() < 0.5) {
        list.edges.push_back(
            {row, planted + static_cast<vid_t>(rng.below(
                      static_cast<std::uint64_t>(bottleneck)))});
      }
    }
  }

  PlantedGraph result;
  result.maximum_cardinality =
      planted + (bottleneck > 0 ? std::min(surplus, bottleneck) : 0);
  // Hide the construction from the algorithms under test.
  result.graph = shuffle_labels(BipartiteGraph::from_edges(list),
                                mix64(params.seed + 0x9e37u));
  return result;
}

}  // namespace graftmatch
