// Web-crawl-like bipartite graphs: the paper's third class (wb-edu,
// web-Google, wikipedia), whose defining property is a LOW matching
// number -- many vertices cannot be matched because link mass
// concentrates on a small set of hub columns.
//
// Construction: column popularity follows a heavy power law
// (gamma ~ 1.9), and a `stub_fraction` of rows are one-link stub pages
// pointing only at hubs. Stubs compete for the same few hubs, so the
// maximum matching leaves a large fraction of rows unmatched -- the
// regime where tree grafting pays off most (paper Sec. V-A).
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct WebCrawlParams {
  vid_t nx = 1 << 15;         ///< pages (rows)
  vid_t ny = 1 << 15;         ///< link targets (columns)
  double avg_degree = 6.0;    ///< mean out-degree of non-stub pages
  double gamma = 1.9;         ///< column-popularity power-law exponent
  double stub_fraction = 0.5; ///< fraction of rows that are 1-link stubs
  vid_t hub_count = 256;      ///< stubs link uniformly into the top hubs
  std::uint64_t seed = 1;
};

BipartiteGraph generate_webcrawl(const WebCrawlParams& params);

}  // namespace graftmatch
