#include "graftmatch/gen/road.hpp"

#include <stdexcept>

#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

BipartiteGraph generate_road(const RoadParams& params) {
  if (params.width <= 0 || params.height <= 0) {
    throw std::invalid_argument("road: dimensions must be positive");
  }
  if (params.edge_keep < 0.0 || params.edge_keep > 1.0 ||
      params.dead_end < 0.0 || params.dead_end > 1.0) {
    throw std::invalid_argument("road: probabilities outside [0, 1]");
  }

  const vid_t w = params.width;
  const vid_t h = params.height;
  const vid_t n = w * h;
  Xoshiro256 rng(params.seed);

  EdgeList list;
  list.nx = n;
  list.ny = n;
  list.edges.reserve(static_cast<std::size_t>(n) * 5);

  const auto cell = [w](vid_t x, vid_t y) { return y * w + x; };

  // Dead-end selection first so it is independent of edge sampling order.
  std::vector<bool> dead(static_cast<std::size_t>(n), false);
  for (vid_t v = 0; v < n; ++v) {
    dead[static_cast<std::size_t>(v)] = rng.uniform() < params.dead_end;
  }

  for (vid_t y = 0; y < h; ++y) {
    for (vid_t x = 0; x < w; ++x) {
      const vid_t row = cell(x, y);
      if (dead[static_cast<std::size_t>(row)]) continue;
      // Roads correspond to a symmetric adjacency matrix with a zero-free
      // diagonal (each intersection's own column): keep the diagonal and
      // a random subset of lattice links.
      list.edges.push_back({row, row});
      const auto keep = [&](vid_t other) {
        if (dead[static_cast<std::size_t>(other)]) return;
        if (rng.uniform() < params.edge_keep) {
          list.edges.push_back({row, other});
          list.edges.push_back({other, row});
        }
      };
      if (x + 1 < w) keep(cell(x + 1, y));
      if (y + 1 < h) keep(cell(x, y + 1));
    }
  }
  return BipartiteGraph::from_edges(list);
}

}  // namespace graftmatch
