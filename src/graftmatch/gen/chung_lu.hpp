// Chung-Lu bipartite graphs with power-law expected degrees.
//
// Stand-in for the paper's scale-free class (cit-Patents, amazon0312,
// coPapersDBLP, wikipedia): skewed degree distributions where MS-BFS
// beats DFS-based searches. The power-law exponent gamma controls the
// skew; lower gamma means heavier tail and (empirically) lower matching
// number, like the wikipedia instance.
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct ChungLuParams {
  vid_t nx = 1 << 15;
  vid_t ny = 1 << 15;
  double avg_degree = 8.0;  ///< expected edges ~= avg_degree * nx
  double gamma = 2.5;       ///< power-law exponent of expected degrees
  eid_t max_degree = 1 << 12;
  std::uint64_t seed = 1;
};

/// Sample edges by picking endpoints proportional to power-law weights
/// (the "fast Chung-Lu" / weighted ball-dropping scheme). Duplicates
/// merged; realized degree of vertex v is Binomial with mean ~ w_v.
BipartiteGraph generate_chung_lu(const ChungLuParams& params);

}  // namespace graftmatch
