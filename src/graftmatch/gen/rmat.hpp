// Recursive MATrix (R-MAT) generator, Graph500 flavor.
//
// The paper's scale-free class includes a Graph500 RMAT instance
// (Table II). We generate an RMAT square matrix and interpret rows as X
// and columns as Y, exactly as the paper constructs bipartite graphs
// from sparse matrices (Sec. IV-B).
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct RmatParams {
  int scale = 16;                ///< 2^scale vertices per side
  double edge_factor = 16.0;     ///< edges = edge_factor * 2^scale
  double a = 0.57;               ///< Graph500 defaults
  double b = 0.19;
  double c = 0.19;               ///< d = 1 - a - b - c
  std::uint64_t seed = 1;
  bool scramble_ids = true;      ///< hash vertex labels (Graph500 does)
};

/// Generate an RMAT bipartite graph. Duplicate edges are merged, so the
/// resulting edge count is slightly below edge_factor * 2^scale.
BipartiteGraph generate_rmat(const RmatParams& params);

}  // namespace graftmatch
