#include "graftmatch/gen/webcrawl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graftmatch/runtime/alias_table.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

BipartiteGraph generate_webcrawl(const WebCrawlParams& params) {
  if (params.nx <= 0 || params.ny <= 0) {
    throw std::invalid_argument("webcrawl: parts must be nonempty");
  }
  if (params.gamma <= 1.0) {
    throw std::invalid_argument("webcrawl: gamma must exceed 1");
  }
  if (params.stub_fraction < 0.0 || params.stub_fraction > 1.0) {
    throw std::invalid_argument("webcrawl: stub_fraction outside [0, 1]");
  }
  if (params.hub_count <= 0 || params.hub_count > params.ny) {
    throw std::invalid_argument("webcrawl: hub_count outside (0, ny]");
  }

  // Column popularity weights: w_j ~ (j+1)^(-1/(gamma-1)). Column 0 is
  // the biggest hub; the first hub_count columns absorb the stub links.
  std::vector<double> weights(static_cast<std::size_t>(params.ny));
  const double exponent = -1.0 / (params.gamma - 1.0);
  for (vid_t j = 0; j < params.ny; ++j) {
    weights[static_cast<std::size_t>(j)] =
        std::pow(static_cast<double>(j) + 1.0, exponent);
  }
  const AliasTable columns{std::span<const double>(weights)};

  Xoshiro256 rng(params.seed);
  EdgeList list;
  list.nx = params.nx;
  list.ny = params.ny;
  list.edges.reserve(static_cast<std::size_t>(
      static_cast<double>(params.nx) * params.avg_degree / 2.0));

  for (vid_t x = 0; x < params.nx; ++x) {
    const bool is_stub = rng.uniform() < params.stub_fraction;
    if (is_stub) {
      const auto hub = static_cast<vid_t>(
          rng.below(static_cast<std::uint64_t>(params.hub_count)));
      list.edges.push_back({x, hub});
      continue;
    }
    // Out-degree of a regular page: geometric-ish around avg_degree.
    const auto degree = static_cast<std::int64_t>(std::max(
        1.0, std::round(-params.avg_degree * std::log(1.0 - rng.uniform()))));
    for (std::int64_t k = 0; k < degree; ++k) {
      list.edges.push_back({x, static_cast<vid_t>(columns.sample(rng))});
    }
  }
  return BipartiteGraph::from_edges(list);
}

}  // namespace graftmatch
