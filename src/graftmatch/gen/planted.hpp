// Planted-matching generator: graphs whose EXACT maximum matching
// cardinality is known by construction.
//
// Construction: a perfect matching is planted on `matched_pairs`
// vertices (x_i ~ y_i, relabeled), noise edges are added on top (they
// can never decrease the matching number), and the remaining
// nx - matched_pairs rows are connected ONLY to a clique of `bottleneck`
// already-matched columns... no: connected only into a designated set of
// `bottleneck` EXTRA columns shared with `bottleneck` of the surplus
// rows, so exactly min(bottleneck, surplus) extra rows can be matched.
//
// Precisely: maximum matching = matched_pairs + min(bottleneck, surplus)
// where surplus = nx - matched_pairs (surplus rows compete for
// `bottleneck` dedicated columns). This gives tests an exact oracle that
// is independent of any matching algorithm.
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct PlantedParams {
  vid_t matched_pairs = 1 << 12;  ///< size of the planted perfect part
  vid_t surplus_rows = 1 << 8;    ///< rows beyond the planted part
  vid_t bottleneck = 1 << 4;      ///< dedicated columns for surplus rows
  double noise_degree = 4.0;      ///< expected extra edges per planted row
  std::uint64_t seed = 1;
};

struct PlantedGraph {
  BipartiteGraph graph;
  std::int64_t maximum_cardinality = 0;  ///< exact, by construction
};

PlantedGraph generate_planted(const PlantedParams& params);

}  // namespace graftmatch
