#include "graftmatch/gen/grid.hpp"

#include <stdexcept>

#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

BipartiteGraph generate_grid(const GridParams& params) {
  if (params.width <= 0 || params.height <= 0 || params.depth <= 0) {
    throw std::invalid_argument("grid: dimensions must be positive");
  }
  if (params.diagonal_drop < 0.0 || params.diagonal_drop > 1.0) {
    throw std::invalid_argument("grid: diagonal_drop outside [0, 1]");
  }

  const vid_t w = params.width;
  const vid_t h = params.height;
  const vid_t d = params.depth;
  const vid_t n = w * h * d;

  Xoshiro256 rng(params.seed);
  EdgeList list;
  list.nx = n;
  list.ny = n;
  list.edges.reserve(static_cast<std::size_t>(n) * (d > 1 ? 7 : 5));

  const auto cell = [w, h](vid_t x, vid_t y, vid_t z) {
    return (z * h + y) * w + x;
  };

  for (vid_t z = 0; z < d; ++z) {
    for (vid_t y = 0; y < h; ++y) {
      for (vid_t x = 0; x < w; ++x) {
        const vid_t row = cell(x, y, z);
        const bool keep_diagonal =
            params.diagonal_drop == 0.0 ||
            rng.uniform() >= params.diagonal_drop;
        if (keep_diagonal) list.edges.push_back({row, row});
        if (x + 1 < w) {
          list.edges.push_back({row, cell(x + 1, y, z)});
          list.edges.push_back({cell(x + 1, y, z), row});
        }
        if (y + 1 < h) {
          list.edges.push_back({row, cell(x, y + 1, z)});
          list.edges.push_back({cell(x, y + 1, z), row});
        }
        if (z + 1 < d) {
          list.edges.push_back({row, cell(x, y, z + 1)});
          list.edges.push_back({cell(x, y, z + 1), row});
        }
      }
    }
  }
  return BipartiteGraph::from_edges(list);
}

}  // namespace graftmatch
