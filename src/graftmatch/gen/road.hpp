// Road-network-like graphs: bounded degree, locally connected, long
// shortest paths (road_usa / europe_osm class).
//
// We lay vertices on a jittered 2D lattice and connect each to a random
// subset of its lattice neighbors, then delete a fraction of vertices'
// incident edges entirely ("dead ends"), which lowers the matching
// number the way real road matrices do.
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct RoadParams {
  vid_t width = 1024;
  vid_t height = 1024;
  double edge_keep = 0.85;   ///< probability a lattice link survives
  double dead_end = 0.02;    ///< fraction of rows with all edges removed
  std::uint64_t seed = 1;
};

BipartiteGraph generate_road(const RoadParams& params);

}  // namespace graftmatch
