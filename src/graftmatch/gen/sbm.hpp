// Bipartite stochastic block model: rows and columns partitioned into
// communities; edge probability depends only on the community pair.
// Community structure is the feature real link graphs have that plain
// random models lack, and it shapes how alternating trees overlap --
// useful both as a workload and for stress-testing the grafting step
// (trees tend to collide inside communities).
#pragma once

#include <cstdint>
#include <vector>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct SbmParams {
  vid_t rows_per_block = 1 << 10;
  vid_t cols_per_block = 1 << 10;
  vid_t blocks = 8;
  double in_degree = 6.0;    ///< expected edges per row into its own block
  double out_degree = 1.0;   ///< expected edges per row into other blocks
  std::uint64_t seed = 1;
};

BipartiteGraph generate_sbm(const SbmParams& params);

}  // namespace graftmatch
