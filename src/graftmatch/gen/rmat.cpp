#include "graftmatch/gen/rmat.hpp"

#include <omp.h>

#include <cmath>
#include <stdexcept>

#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

BipartiteGraph generate_rmat(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 30) {
    throw std::invalid_argument("rmat: scale out of range [1, 30]");
  }
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0) {
    throw std::invalid_argument("rmat: probabilities must be a partition");
  }

  const vid_t n = vid_t{1} << params.scale;
  const auto target_edges =
      static_cast<std::int64_t>(params.edge_factor * static_cast<double>(n));

  EdgeList list;
  list.nx = n;
  list.ny = n;
  list.edges.resize(static_cast<std::size_t>(target_edges));

  parallel_region([&] {
    // Independent deterministic stream per thread.
    Xoshiro256 rng =
        Xoshiro256(params.seed).fork(static_cast<std::uint64_t>(
            omp_get_thread_num()) + 0x51edd1u);
#pragma omp for schedule(static)
    for (std::int64_t k = 0; k < target_edges; ++k) {
      vid_t row = 0;
      vid_t col = 0;
      for (int level = 0; level < params.scale; ++level) {
        const double p = rng.uniform();
        row <<= 1;
        col <<= 1;
        if (p < params.a) {
          // top-left quadrant: nothing to add
        } else if (p < params.a + params.b) {
          col |= 1;
        } else if (p < params.a + params.b + params.c) {
          row |= 1;
        } else {
          row |= 1;
          col |= 1;
        }
      }
      if (params.scramble_ids) {
        row = static_cast<vid_t>(
            mix64(static_cast<std::uint64_t>(row) ^ params.seed) &
            static_cast<std::uint64_t>(n - 1));
        col = static_cast<vid_t>(
            mix64(static_cast<std::uint64_t>(col) ^ (params.seed * 31 + 7)) &
            static_cast<std::uint64_t>(n - 1));
      }
      list.edges[static_cast<std::size_t>(k)] = {row, col};
    }
  });

  return BipartiteGraph::from_edges(list);
}

}  // namespace graftmatch
