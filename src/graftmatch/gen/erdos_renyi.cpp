#include "graftmatch/gen/erdos_renyi.hpp"

#include <omp.h>

#include <stdexcept>

#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

BipartiteGraph generate_erdos_renyi(const ErdosRenyiParams& params) {
  if (params.nx <= 0 || params.ny <= 0) {
    throw std::invalid_argument("erdos_renyi: parts must be nonempty");
  }
  if (params.edges < 0) {
    throw std::invalid_argument("erdos_renyi: negative edge count");
  }

  EdgeList list;
  list.nx = params.nx;
  list.ny = params.ny;
  list.edges.resize(static_cast<std::size_t>(params.edges));

  parallel_region([&] {
    Xoshiro256 rng = Xoshiro256(params.seed).fork(
        static_cast<std::uint64_t>(omp_get_thread_num()) + 0xe12du);
#pragma omp for schedule(static)
    for (std::int64_t k = 0; k < params.edges; ++k) {
      const auto x = static_cast<vid_t>(
          rng.below(static_cast<std::uint64_t>(params.nx)));
      const auto y = static_cast<vid_t>(
          rng.below(static_cast<std::uint64_t>(params.ny)));
      list.edges[static_cast<std::size_t>(k)] = {x, y};
    }
  });
  return BipartiteGraph::from_edges(list);
}

}  // namespace graftmatch
