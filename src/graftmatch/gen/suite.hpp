// The benchmark suite: named synthetic stand-ins for the paper's
// Table II inputs, grouped into the paper's three classes.
//
//   class 1  "scientific"  -- high matching number (kkt_power, hugetrace,
//                             delaunay, road_usa analogues)
//   class 2  "scale-free"  -- skewed degrees (cit-Patents, amazon0312,
//                             coPapersDBLP, RMAT analogues)
//   class 3  "web"         -- low matching number (wikipedia, web-Google,
//                             wb-edu analogues)
//
// Every instance is deterministic given its seed, and has a size knob so
// tests run in milliseconds while benches run at full size.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

enum class GraphClass {
  kScientific,  ///< class 1: high matching number
  kScaleFree,   ///< class 2: skewed degree distribution
  kWeb,         ///< class 3: low matching number
};

/// Printable class name ("scientific" / "scale-free" / "web").
std::string to_string(GraphClass cls);

struct SuiteInstance {
  std::string name;        ///< e.g. "kkt_power-like"
  std::string paper_name;  ///< the Table II instance it stands in for
  GraphClass graph_class;
  std::function<BipartiteGraph(double size_factor, std::uint64_t seed)>
      factory;
};

/// All suite instances, in Table II order.
const std::vector<SuiteInstance>& benchmark_suite();

/// Look up one instance by name; throws std::out_of_range when missing.
const SuiteInstance& suite_instance(const std::string& name);

/// Names of instances belonging to a class.
std::vector<std::string> suite_names(GraphClass cls);

}  // namespace graftmatch
