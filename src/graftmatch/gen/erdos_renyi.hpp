// Erdos-Renyi bipartite random graphs G(nx, ny, m).
#pragma once

#include <cstdint>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct ErdosRenyiParams {
  vid_t nx = 1 << 14;
  vid_t ny = 1 << 14;
  std::int64_t edges = 1 << 18;  ///< target edge count (before dedup)
  std::uint64_t seed = 1;
};

/// Sample `edges` endpoints uniformly at random; duplicates merged.
BipartiteGraph generate_erdos_renyi(const ErdosRenyiParams& params);

}  // namespace graftmatch
