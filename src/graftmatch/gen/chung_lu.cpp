#include "graftmatch/gen/chung_lu.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graftmatch/runtime/alias_table.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {
namespace {

// Expected-degree weights w_i ~ (i + i0)^(-1/(gamma-1)), clamped to
// max_degree, scaled so that the mean equals avg_degree.
std::vector<double> power_law_weights(vid_t n, double avg_degree,
                                      double gamma, eid_t max_degree) {
  const double exponent = -1.0 / (gamma - 1.0);
  std::vector<double> weights(static_cast<std::size_t>(n));
  double sum = 0.0;
  for (vid_t i = 0; i < n; ++i) {
    const double w = std::pow(static_cast<double>(i) + 1.0, exponent);
    weights[static_cast<std::size_t>(i)] = w;
    sum += w;
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  for (double& w : weights) {
    w = std::min(w * scale, static_cast<double>(max_degree));
  }
  return weights;
}

}  // namespace

BipartiteGraph generate_chung_lu(const ChungLuParams& params) {
  if (params.nx <= 0 || params.ny <= 0) {
    throw std::invalid_argument("chung_lu: parts must be nonempty");
  }
  if (params.gamma <= 1.0) {
    throw std::invalid_argument("chung_lu: gamma must exceed 1");
  }
  if (params.avg_degree <= 0.0) {
    throw std::invalid_argument("chung_lu: avg_degree must be positive");
  }

  const auto weights_x = power_law_weights(params.nx, params.avg_degree,
                                           params.gamma, params.max_degree);
  const auto weights_y = power_law_weights(params.ny, params.avg_degree,
                                           params.gamma, params.max_degree);
  const AliasTable table_x{std::span<const double>(weights_x)};
  const AliasTable table_y{std::span<const double>(weights_y)};

  const auto target_edges = static_cast<std::int64_t>(
      params.avg_degree * static_cast<double>(params.nx));

  EdgeList list;
  list.nx = params.nx;
  list.ny = params.ny;
  list.edges.resize(static_cast<std::size_t>(target_edges));

  parallel_region([&] {
    Xoshiro256 rng = Xoshiro256(params.seed).fork(
        static_cast<std::uint64_t>(omp_get_thread_num()) + 0xc1u);
#pragma omp for schedule(static)
    for (std::int64_t k = 0; k < target_edges; ++k) {
      const auto x = static_cast<vid_t>(table_x.sample(rng));
      const auto y = static_cast<vid_t>(table_y.sample(rng));
      list.edges[static_cast<std::size_t>(k)] = {x, y};
    }
  });
  return BipartiteGraph::from_edges(list);
}

}  // namespace graftmatch
