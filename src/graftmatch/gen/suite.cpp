#include "graftmatch/gen/suite.hpp"

#include <cmath>
#include <stdexcept>

#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/grid.hpp"
#include "graftmatch/gen/rmat.hpp"
#include "graftmatch/gen/road.hpp"
#include "graftmatch/gen/webcrawl.hpp"

namespace graftmatch {
namespace {

// Scale a linear dimension by sqrt(size_factor) so that vertex/edge
// counts scale roughly linearly with size_factor.
vid_t scale_dim(vid_t base, double size_factor) {
  const double scaled = static_cast<double>(base) * std::sqrt(size_factor);
  return std::max<vid_t>(4, static_cast<vid_t>(scaled));
}

vid_t scale_count(vid_t base, double size_factor) {
  const double scaled = static_cast<double>(base) * size_factor;
  return std::max<vid_t>(8, static_cast<vid_t>(scaled));
}

int scale_log2(int base, double size_factor) {
  const int shift = static_cast<int>(std::lround(std::log2(
      std::max(size_factor, 1.0 / 1024.0))));
  return std::max(4, base + shift);
}

std::vector<SuiteInstance> build_suite() {
  std::vector<SuiteInstance> suite;

  // ----- class 1: scientific computing & road networks (high matching
  // number; the paper reports ~1.0 fractions for these).
  suite.push_back(
      {"kkt_power-like", "kkt_power", GraphClass::kScientific,
       [](double f, std::uint64_t seed) {
         GridParams p;
         p.width = scale_dim(640, f);
         p.height = scale_dim(640, f);
         p.diagonal_drop = 0.02;  // KKT systems have a few zero diagonals
         p.seed = seed;
         return generate_grid(p);
       }});
  suite.push_back(
      {"hugetrace-like", "hugetrace-00020", GraphClass::kScientific,
       [](double f, std::uint64_t seed) {
         GridParams p;  // large 2D mesh, zero-free diagonal
         p.width = scale_dim(800, f);
         p.height = scale_dim(800, f);
         p.seed = seed;
         return generate_grid(p);
       }});
  suite.push_back(
      {"delaunay-like", "delaunay_n24", GraphClass::kScientific,
       [](double f, std::uint64_t seed) {
         GridParams p;  // 3D stencil: higher degree, still near-perfect
         p.width = scale_dim(96, f);
         p.height = scale_dim(96, f);
         p.depth = 48;
         p.seed = seed;
         return generate_grid(p);
       }});
  suite.push_back(
      {"road_usa-like", "road_usa", GraphClass::kScientific,
       [](double f, std::uint64_t seed) {
         RoadParams p;
         p.width = scale_dim(760, f);
         p.height = scale_dim(760, f);
         p.seed = seed;
         return generate_road(p);
       }});

  // ----- class 2: scale-free graphs.
  suite.push_back(
      {"cit-patents-like", "cit-Patents", GraphClass::kScaleFree,
       [](double f, std::uint64_t seed) {
         ChungLuParams p;
         p.nx = scale_count(1 << 18, f);
         p.ny = p.nx;
         p.avg_degree = 9.0;
         p.gamma = 2.6;
         p.seed = seed;
         return generate_chung_lu(p);
       }});
  suite.push_back(
      {"amazon-like", "amazon0312", GraphClass::kScaleFree,
       [](double f, std::uint64_t seed) {
         ChungLuParams p;
         p.nx = scale_count(1 << 17, f);
         p.ny = p.nx;
         p.avg_degree = 8.0;
         p.gamma = 3.0;  // mild skew: amazon is close to a co-purchase mesh
         p.seed = seed;
         return generate_chung_lu(p);
       }});
  suite.push_back(
      {"copapers-like", "coPapersDBLP", GraphClass::kScaleFree,
       [](double f, std::uint64_t seed) {
         ChungLuParams p;
         p.nx = scale_count(1 << 17, f);
         p.ny = p.nx;
         p.avg_degree = 24.0;  // dense co-authorship cliques
         p.gamma = 2.3;
         p.seed = seed;
         return generate_chung_lu(p);
       }});
  suite.push_back(
      {"rmat-like", "RMAT (Graph500)", GraphClass::kScaleFree,
       [](double f, std::uint64_t seed) {
         RmatParams p;
         p.scale = scale_log2(18, f);
         p.edge_factor = 16.0;
         p.seed = seed;
         return generate_rmat(p);
       }});

  // ----- class 3: web crawls & link graphs (low matching number).
  suite.push_back(
      {"wikipedia-like", "wikipedia-20070206", GraphClass::kWeb,
       [](double f, std::uint64_t seed) {
         WebCrawlParams p;
         p.nx = scale_count(1 << 18, f);
         p.ny = p.nx;
         p.avg_degree = 12.0;
         p.gamma = 1.9;
         p.stub_fraction = 0.45;
         p.seed = seed;
         return generate_webcrawl(p);
       }});
  suite.push_back(
      {"web-google-like", "web-Google", GraphClass::kWeb,
       [](double f, std::uint64_t seed) {
         WebCrawlParams p;
         p.nx = scale_count(1 << 17, f);
         p.ny = p.nx;
         p.avg_degree = 10.0;
         p.gamma = 2.0;
         p.stub_fraction = 0.55;
         p.hub_count = 192;
         p.seed = seed;
         return generate_webcrawl(p);
       }});
  suite.push_back(
      {"wb-edu-like", "wb-edu", GraphClass::kWeb,
       [](double f, std::uint64_t seed) {
         WebCrawlParams p;
         p.nx = scale_count(1 << 18, f);
         p.ny = scale_count(1 << 17, f);  // rectangular: crawls see more
                                          // pages than distinct targets
         p.avg_degree = 8.0;
         p.gamma = 1.8;
         p.stub_fraction = 0.6;
         p.hub_count = 128;
         p.seed = seed;
         return generate_webcrawl(p);
       }});

  return suite;
}

}  // namespace

std::string to_string(GraphClass cls) {
  switch (cls) {
    case GraphClass::kScientific: return "scientific";
    case GraphClass::kScaleFree: return "scale-free";
    case GraphClass::kWeb: return "web";
  }
  return "unknown";
}

const std::vector<SuiteInstance>& benchmark_suite() {
  static const std::vector<SuiteInstance> suite = build_suite();
  return suite;
}

const SuiteInstance& suite_instance(const std::string& name) {
  for (const SuiteInstance& instance : benchmark_suite()) {
    if (instance.name == name) return instance;
  }
  throw std::out_of_range("suite: no instance named " + name);
}

std::vector<std::string> suite_names(GraphClass cls) {
  std::vector<std::string> names;
  for (const SuiteInstance& instance : benchmark_suite()) {
    if (instance.graph_class == cls) names.push_back(instance.name);
  }
  return names;
}

}  // namespace graftmatch
