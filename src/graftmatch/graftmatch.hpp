// Umbrella header: the full public API of the graftmatch library.
//
// Typical use:
//
//   #include "graftmatch/graftmatch.hpp"
//
//   auto graph = graftmatch::generate_rmat({.scale = 18});
//   auto matching = graftmatch::karp_sipser(graph);       // maximal init
//   auto stats = graftmatch::ms_bfs_graft(graph, matching);  // maximum
//   assert(graftmatch::is_maximum_matching(graph, matching));
#pragma once

#include "graftmatch/types.hpp"

// Graph substrate
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/edge_list.hpp"
#include "graftmatch/graph/graph_stats.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/graph/matching_io.hpp"
#include "graftmatch/graph/mm_io.hpp"
#include "graftmatch/graph/transforms.hpp"

// Workload generators
#include "graftmatch/gen/chung_lu.hpp"
#include "graftmatch/gen/erdos_renyi.hpp"
#include "graftmatch/gen/grid.hpp"
#include "graftmatch/gen/planted.hpp"
#include "graftmatch/gen/rmat.hpp"
#include "graftmatch/gen/road.hpp"
#include "graftmatch/gen/sbm.hpp"
#include "graftmatch/gen/suite.hpp"
#include "graftmatch/gen/webcrawl.hpp"

// Initializers
#include "graftmatch/init/greedy.hpp"
#include "graftmatch/init/karp_sipser.hpp"
#include "graftmatch/init/parallel_karp_sipser.hpp"
#include "graftmatch/init/streaming_ks.hpp"

// Maximum matching: core algorithm and baselines
#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/baselines/pothen_fan.hpp"
#include "graftmatch/baselines/push_relabel.hpp"
#include "graftmatch/baselines/ss_bfs.hpp"
#include "graftmatch/baselines/ss_dfs.hpp"
#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/core/run_stats.hpp"

// Kernelization pre-pass (reductions + reconstruction)
#include "graftmatch/reduce/reduce.hpp"

// Dulmage-Mendelsohn block sharding (classification + extraction)
#include "graftmatch/shard/shard.hpp"

// Incremental matching under edge churn
#include "graftmatch/dynamic/dynamic_matcher.hpp"
#include "graftmatch/dynamic/overlay.hpp"

// Traversal engine: shared frontier kernels, solver/initializer
// registries, and the phase-scoped stats sink
#include "graftmatch/engine/edge_partition.hpp"
#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/engine/stats_sink.hpp"

// Observability: structured tracing and Chrome trace export
#include "graftmatch/obs/chrome_trace.hpp"
#include "graftmatch/obs/summary.hpp"
#include "graftmatch/obs/trace.hpp"

// Serving: session contexts and the matching-as-a-service core
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/serve/bounded_queue.hpp"
#include "graftmatch/serve/protocol.hpp"
#include "graftmatch/serve/roster.hpp"
#include "graftmatch/serve/server.hpp"
#include "graftmatch/serve/uds.hpp"

// Verification
#include "graftmatch/verify/koenig.hpp"
#include "graftmatch/verify/validate.hpp"

// Applications
#include "graftmatch/dm/btf.hpp"
#include "graftmatch/dm/dulmage_mendelsohn.hpp"

// Runtime utilities
#include "graftmatch/runtime/affinity.hpp"
#include "graftmatch/runtime/cli.hpp"
#include "graftmatch/runtime/system_info.hpp"
#include "graftmatch/runtime/timer.hpp"
