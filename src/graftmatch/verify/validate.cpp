#include "graftmatch/verify/validate.hpp"

#include <sstream>

namespace graftmatch {

std::string validate_matching(const BipartiteGraph& g, const Matching& m) {
  std::ostringstream error;
  if (m.num_x() != g.num_x() || m.num_y() != g.num_y()) {
    error << "size mismatch: matching (" << m.num_x() << ", " << m.num_y()
          << ") vs graph (" << g.num_x() << ", " << g.num_y() << ")";
    return error.str();
  }
  for (vid_t x = 0; x < g.num_x(); ++x) {
    const vid_t y = m.mate_of_x(x);
    if (y == kInvalidVertex) continue;
    if (y < 0 || y >= g.num_y()) {
      error << "mate_x[" << x << "] = " << y << " out of range";
      return error.str();
    }
    if (m.mate_of_y(y) != x) {
      error << "asymmetric pair: mate_x[" << x << "] = " << y
            << " but mate_y[" << y << "] = " << m.mate_of_y(y);
      return error.str();
    }
    if (!g.has_edge(x, y)) {
      error << "matched non-edge (" << x << ", " << y << ")";
      return error.str();
    }
  }
  for (vid_t y = 0; y < g.num_y(); ++y) {
    const vid_t x = m.mate_of_y(y);
    if (x == kInvalidVertex) continue;
    if (x < 0 || x >= g.num_x() || m.mate_of_x(x) != y) {
      error << "asymmetric pair: mate_y[" << y << "] = " << x;
      return error.str();
    }
  }
  return {};
}

bool is_valid_matching(const BipartiteGraph& g, const Matching& m) {
  return validate_matching(g, m).empty();
}

}  // namespace graftmatch
