// Matching validity checks used by tests and examples.
#pragma once

#include <string>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

/// A matching is valid when (a) sizes agree with the graph, (b) mate
/// pointers are mutually consistent, and (c) every matched pair is an
/// actual edge. Returns an empty string when valid, else a diagnostic.
std::string validate_matching(const BipartiteGraph& g, const Matching& m);

/// Convenience wrapper: true when validate_matching returns empty.
bool is_valid_matching(const BipartiteGraph& g, const Matching& m);

}  // namespace graftmatch
