// Maximum-cardinality certificate via Koenig's theorem.
//
// For a bipartite graph, a matching M is maximum iff there is a vertex
// cover of size |M|. Given M, let Z be the set of vertices reachable
// from unmatched X vertices by M-alternating paths; then
// C = (X \ Z) u (Y n Z) is a vertex cover, and |C| = |M| exactly when M
// is maximum. This gives an O(n + m) *independent* maximality check used
// throughout the test suite: it never trusts the algorithm under test,
// only the graph and the final mate arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

struct VertexCover {
  std::vector<vid_t> x_vertices;  ///< cover members from X
  std::vector<vid_t> y_vertices;  ///< cover members from Y

  std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(x_vertices.size() + y_vertices.size());
  }
};

/// Koenig construction from a (valid) matching. Always returns a vertex
/// cover; its size equals |M| iff M is maximum.
VertexCover koenig_cover(const BipartiteGraph& g, const Matching& m);

/// True when every edge of g has an endpoint in the cover.
bool covers_all_edges(const BipartiteGraph& g, const VertexCover& cover);

/// Full maximality certificate: matching valid, cover covers all edges,
/// and |cover| == |M|.
bool is_maximum_matching(const BipartiteGraph& g, const Matching& m);

}  // namespace graftmatch
