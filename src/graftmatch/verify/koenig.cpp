#include "graftmatch/verify/koenig.hpp"

#include <vector>

#include "graftmatch/verify/validate.hpp"

namespace graftmatch {

VertexCover koenig_cover(const BipartiteGraph& g, const Matching& m) {
  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();

  // Alternating BFS from all unmatched X vertices:
  // X -> Y along unmatched edges, Y -> X along matched edges.
  std::vector<std::uint8_t> reached_x(static_cast<std::size_t>(nx), 0);
  std::vector<std::uint8_t> reached_y(static_cast<std::size_t>(ny), 0);
  std::vector<vid_t> frontier;
  std::vector<vid_t> next;
  for (vid_t x = 0; x < nx; ++x) {
    if (!m.is_matched_x(x)) {
      reached_x[static_cast<std::size_t>(x)] = 1;
      frontier.push_back(x);
    }
  }
  while (!frontier.empty()) {
    next.clear();
    for (const vid_t x : frontier) {
      for (const vid_t y : g.neighbors_of_x(x)) {
        if (reached_y[static_cast<std::size_t>(y)]) continue;
        if (m.mate_of_x(x) == y) continue;  // must leave X unmatched
        reached_y[static_cast<std::size_t>(y)] = 1;
        const vid_t mate = m.mate_of_y(y);
        if (mate != kInvalidVertex &&
            !reached_x[static_cast<std::size_t>(mate)]) {
          reached_x[static_cast<std::size_t>(mate)] = 1;
          next.push_back(mate);
        }
      }
    }
    frontier.swap(next);
  }

  VertexCover cover;
  for (vid_t x = 0; x < nx; ++x) {
    if (!reached_x[static_cast<std::size_t>(x)]) {
      cover.x_vertices.push_back(x);
    }
  }
  for (vid_t y = 0; y < ny; ++y) {
    if (reached_y[static_cast<std::size_t>(y)]) {
      cover.y_vertices.push_back(y);
    }
  }
  return cover;
}

bool covers_all_edges(const BipartiteGraph& g, const VertexCover& cover) {
  std::vector<std::uint8_t> in_x(static_cast<std::size_t>(g.num_x()), 0);
  std::vector<std::uint8_t> in_y(static_cast<std::size_t>(g.num_y()), 0);
  for (const vid_t x : cover.x_vertices) {
    in_x[static_cast<std::size_t>(x)] = 1;
  }
  for (const vid_t y : cover.y_vertices) {
    in_y[static_cast<std::size_t>(y)] = 1;
  }
  for (vid_t x = 0; x < g.num_x(); ++x) {
    if (in_x[static_cast<std::size_t>(x)]) continue;
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (!in_y[static_cast<std::size_t>(y)]) return false;
    }
  }
  return true;
}

bool is_maximum_matching(const BipartiteGraph& g, const Matching& m) {
  if (!is_valid_matching(g, m)) return false;
  const VertexCover cover = koenig_cover(g, m);
  return covers_all_edges(g, cover) && cover.size() == m.cardinality();
}

}  // namespace graftmatch
