#include "graftmatch/obs/summary.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string_view>

namespace graftmatch::obs {
namespace {

bool is(const Event& event, const EventName& name) {
  // Compare by string: EventName constants are inline variables, but
  // string identity keeps the fold correct for any equal-named emitter.
  return event.name == &name ||
         std::string_view(event.name->name) == name.name;
}

double ns_to_s(std::int64_t ns) { return static_cast<double>(ns) * 1e-9; }

std::string cell(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

}  // namespace

TraceSummary summarize(const RunTrace& trace) {
  TraceSummary summary;
  summary.events = static_cast<std::int64_t>(trace.events.size());
  summary.dropped = trace.dropped;

  // Events arrive grouped by tid and time-ordered per tid, so one pass
  // with per-span-name stacks folds every thread segment. Step and
  // phase spans never self-nest, so a stack per name (just the open
  // begin timestamp) is enough; -1 marks "not open".
  struct OpenSpans {
    std::int64_t run = -1;
    std::int64_t phase = -1;
    std::int64_t step[5] = {-1, -1, -1, -1, -1};
  };
  const EventName* const kSteps[5] = {&names::kTopDown, &names::kBottomUp,
                                      &names::kAugment, &names::kGraft,
                                      &names::kStatistics};
  double* const step_totals[5] = {&summary.top_down, &summary.bottom_up,
                                  &summary.augment, &summary.graft,
                                  &summary.statistics};

  OpenSpans open;
  PhaseAnatomy current;
  bool phase_open = false;
  std::int32_t segment_tid = trace.events.empty() ? 0 : trace.events[0].tid;

  for (const Event& event : trace.events) {
    if (event.tid != segment_tid) {
      // New thread segment: abandon any unbalanced spans defensively.
      segment_tid = event.tid;
      open = OpenSpans{};
      phase_open = false;
    }

    switch (event.kind) {
      case EventKind::kBegin:
        if (is(event, names::kRun)) {
          open.run = event.ts_ns;
        } else if (is(event, names::kPhase)) {
          open.phase = event.ts_ns;
          current = PhaseAnatomy{};
          current.phase = event.arg0;
          phase_open = true;
        } else {
          for (int s = 0; s < 5; ++s) {
            if (is(event, *kSteps[s])) {
              open.step[s] = event.ts_ns;
              break;
            }
          }
        }
        break;

      case EventKind::kEnd:
        if (is(event, names::kRun)) {
          if (open.run >= 0) {
            summary.run_seconds = ns_to_s(event.ts_ns - open.run);
          }
          open.run = -1;
        } else if (is(event, names::kPhase)) {
          if (phase_open && open.phase >= 0) {
            current.seconds = ns_to_s(event.ts_ns - open.phase);
            current.augmentations = event.arg1;
            summary.phases.push_back(current);
          }
          open.phase = -1;
          phase_open = false;
        } else {
          for (int s = 0; s < 5; ++s) {
            if (!is(event, *kSteps[s]) || open.step[s] < 0) continue;
            const double seconds = ns_to_s(event.ts_ns - open.step[s]);
            *step_totals[s] += seconds;
            if (phase_open) {
              double* const phase_steps[5] = {
                  &current.top_down, &current.bottom_up, &current.augment,
                  &current.graft, &current.statistics};
              *phase_steps[s] += seconds;
            }
            open.step[s] = -1;
            break;
          }
        }
        break;

      case EventKind::kCounter:
        if (is(event, names::kFrontier)) {
          ++summary.levels;
          summary.bottom_up_levels += event.arg1 != 0;
          summary.frontier_peak =
              std::max(summary.frontier_peak, event.arg0);
          summary.frontier_volume += event.arg0;
          if (phase_open) {
            ++current.levels;
            current.bottom_up_levels += event.arg1 != 0;
            current.frontier_peak =
                std::max(current.frontier_peak, event.arg0);
            current.frontier_volume += event.arg0;
          }
        }
        break;

      case EventKind::kInstant:
        if (is(event, names::kDirectionSwitch)) {
          ++summary.direction_switches;
        } else if (is(event, names::kGraftChosen)) {
          ++summary.grafts;
          if (phase_open) current.grafted = true;
        } else if (is(event, names::kRebuildChosen)) {
          ++summary.rebuilds;
        }
        break;

      case EventKind::kComplete:
        ++summary.kernel_spans;
        summary.kernel_edges += event.arg0;
        break;
    }
  }
  return summary;
}

std::vector<std::string> phase_csv_columns() {
  return {"instance",     "phase",        "seconds",       "top_down_s",
          "bottom_up_s",  "augment_s",    "graft_s",       "statistics_s",
          "levels",       "bottom_up_levels", "frontier_peak",
          "frontier_volume", "augmentations", "grafted"};
}

std::vector<std::string> phase_csv_row(const std::string& instance,
                                       const PhaseAnatomy& row) {
  return {instance,
          std::to_string(row.phase),
          cell(row.seconds),
          cell(row.top_down),
          cell(row.bottom_up),
          cell(row.augment),
          cell(row.graft),
          cell(row.statistics),
          std::to_string(row.levels),
          std::to_string(row.bottom_up_levels),
          std::to_string(row.frontier_peak),
          std::to_string(row.frontier_volume),
          std::to_string(row.augmentations),
          row.grafted ? "1" : "0"};
}

}  // namespace graftmatch::obs
