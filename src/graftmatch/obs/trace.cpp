#include "graftmatch/obs/trace.hpp"

#if GRAFTMATCH_TRACE_ENABLED

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <mutex>

namespace graftmatch::obs {
namespace {

/// One thread's event ring. Owned exclusively by its registering thread
/// between begin_run() and end_run(); the serial thread touches it only
/// outside parallel regions (see the contract in trace.hpp).
struct ThreadBuffer {
  std::vector<Event> events;
  std::int64_t dropped = 0;
  std::int32_t tid = 0;
};

std::mutex& registry_mutex() {
  static std::mutex mutex;
  return mutex;
}

/// Buffers live for the process lifetime: OpenMP pool threads persist
/// across runs, and a leaked few-MB ring per thread beats any teardown
/// race with threads that may still hold the thread_local pointer.
std::vector<ThreadBuffer*>& registry() {
  static std::vector<ThreadBuffer*> buffers;
  return buffers;
}

std::atomic<bool> g_armed{false};
/// Max events per thread ring; beyond it events are dropped (counted).
std::size_t g_capacity = std::size_t{1} << 17;
std::string g_run_algorithm;
RunTrace g_last_run;

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    buffer = new ThreadBuffer;
    const std::scoped_lock lock(registry_mutex());
    buffer->tid = static_cast<std::int32_t>(registry().size());
    registry().push_back(buffer);
  }
  return *buffer;
}

std::size_t capacity_from_env() {
  const char* value = std::getenv("GRAFTMATCH_TRACE_CAPACITY");
  if (value == nullptr) return std::size_t{1} << 17;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 16) {
    return std::size_t{1} << 17;
  }
  return static_cast<std::size_t>(parsed);
}

void push_event(ThreadBuffer& buffer, const EventName& name, EventKind kind,
                std::int64_t ts_ns, std::int64_t dur_ns, std::int64_t arg0,
                std::int64_t arg1) {
  if (buffer.events.size() >= g_capacity) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back(
      {&name, kind, buffer.tid, ts_ns, dur_ns, arg0, arg1});
}

}  // namespace

namespace detail {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void emit_now(const EventName& name, EventKind kind, std::int64_t arg0,
              std::int64_t arg1) {
  push_event(local_buffer(), name, kind, now_ns(), 0, arg0, arg1);
}

void emit_span(const EventName& name, std::int64_t start_ns,
               std::int64_t arg0, std::int64_t arg1) {
  push_event(local_buffer(), name, EventKind::kComplete, start_ns,
             now_ns() - start_ns, arg0, arg1);
}

}  // namespace detail

void arm() { g_armed.store(true, std::memory_order_relaxed); }
void disarm() { g_armed.store(false, std::memory_order_relaxed); }
bool armed() { return g_armed.load(std::memory_order_relaxed); }

bool begin_run(const char* algorithm, std::int64_t threads) {
  if (!armed()) return false;
  if (detail::g_active.load(std::memory_order_relaxed)) {
    return false;  // nested run: the outer owner's trace absorbs it
  }
  {
    const std::scoped_lock lock(registry_mutex());
    for (ThreadBuffer* buffer : registry()) {
      buffer->events.clear();
      buffer->dropped = 0;
    }
  }
  g_capacity = capacity_from_env();
  g_run_algorithm = algorithm != nullptr ? algorithm : "";
  detail::g_active.store(true, std::memory_order_relaxed);
  detail::emit_now(names::kRun, EventKind::kBegin, threads, 0);
  return true;
}

void end_run() {
  if (!detail::g_active.load(std::memory_order_relaxed)) return;
  detail::emit_now(names::kRun, EventKind::kEnd, 0, 0);
  detail::g_active.store(false, std::memory_order_relaxed);

  RunTrace trace;
  trace.algorithm = g_run_algorithm;
  trace.collected = true;
  const std::scoped_lock lock(registry_mutex());
  std::size_t total = 0;
  std::int64_t epoch = std::numeric_limits<std::int64_t>::max();
  for (const ThreadBuffer* buffer : registry()) {
    total += buffer->events.size();
    trace.dropped += buffer->dropped;
    if (!buffer->events.empty()) {
      // Per-thread rings are emission-ordered, so the first event is
      // the thread's earliest; the global minimum is the run begin.
      epoch = std::min(epoch, buffer->events.front().ts_ns);
      ++trace.thread_count;
    }
  }
  trace.events.reserve(total);
  for (const ThreadBuffer* buffer : registry()) {
    for (Event event : buffer->events) {
      event.ts_ns -= epoch;
      trace.events.push_back(event);
    }
  }
  g_last_run = std::move(trace);
}

const RunTrace& last_run() { return g_last_run; }

}  // namespace graftmatch::obs

#else  // GRAFTMATCH_TRACE_ENABLED == 0

namespace graftmatch::obs {

void arm() {}
void disarm() {}
bool armed() { return false; }
bool begin_run(const char*, std::int64_t) { return false; }
void end_run() {}
const RunTrace& last_run() {
  static const RunTrace empty;
  return empty;
}

}  // namespace graftmatch::obs

#endif  // GRAFTMATCH_TRACE_ENABLED
