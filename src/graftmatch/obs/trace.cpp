#include "graftmatch/obs/trace.hpp"

#include "graftmatch/runtime/context.hpp"

#if GRAFTMATCH_TRACE_ENABLED

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>

namespace graftmatch::obs {
namespace {

std::uint64_t next_sink_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::size_t capacity_from_env() {
  const char* value = std::getenv("GRAFTMATCH_TRACE_CAPACITY");
  if (value == nullptr) return std::size_t{1} << 17;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 16) {
    return std::size_t{1} << 17;
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace

/// One thread's event ring within one sink. Owned exclusively by its
/// registering thread between begin_run() and end_run(); the run owner
/// touches it only outside parallel regions (contract in trace.hpp).
struct TraceSink::ThreadBuffer {
  std::vector<Event> events;
  std::int64_t dropped = 0;
  std::int32_t tid = 0;
};

TraceSink::TraceSink() : id_(next_sink_id()), capacity_(capacity_from_env()) {}
TraceSink::~TraceSink() = default;

TraceSink::ThreadBuffer& TraceSink::local_buffer() {
  // Per-thread cache of (sink id -> ring) mappings. Keyed by the
  // monotonically-unique sink id, never the sink address: a destroyed
  // sink's address can be reused by a new sink, but its id cannot, so a
  // stale entry is inert rather than aliasing. Entries are tiny and a
  // thread only accumulates one per sink it ever emits into (in
  // practice: the default session plus its own server session), so the
  // vector stays short; the eviction cap is a backstop for pathological
  // session churn. Rings themselves are owned by the sink and die with
  // it -- the cache holds non-owning pointers that are only ever
  // dereferenced after an id match against a live sink (`this`).
  struct CacheEntry {
    std::uint64_t sink_id;
    ThreadBuffer* buffer;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.sink_id == id_) return *entry.buffer;
  }
  auto owned = std::make_unique<ThreadBuffer>();
  ThreadBuffer* buffer = owned.get();
  {
    const std::scoped_lock lock(registry_mutex_);
    buffer->tid = static_cast<std::int32_t>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  if (cache.size() >= 64) {
    // Evict the entry with the lowest sink id -- the oldest sink, the
    // one most likely already destroyed. Eviction only costs a
    // re-registration (a fresh ring, hence a fresh tid) if that sink is
    // ever emitted into again.
    cache.erase(std::min_element(
        cache.begin(), cache.end(), [](const auto& a, const auto& b) {
          return a.sink_id < b.sink_id;
        }));
  }
  cache.push_back({id_, buffer});
  return *buffer;
}

bool TraceSink::begin_run(const char* algorithm, std::int64_t threads) {
  if (!armed()) return false;
  if (active_.exchange(true, std::memory_order_relaxed)) {
    return false;  // nested run: the outer owner's trace absorbs it
  }
  {
    const std::scoped_lock lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      buffer->events.clear();
      buffer->dropped = 0;
    }
  }
  capacity_ = capacity_from_env();
  run_algorithm_ = algorithm != nullptr ? algorithm : "";
  emit(names::kRun, EventKind::kBegin, detail::now_ns(), 0, threads, 0);
  return true;
}

void TraceSink::end_run() {
  if (!active_.load(std::memory_order_relaxed)) return;
  emit(names::kRun, EventKind::kEnd, detail::now_ns(), 0, 0, 0);
  active_.store(false, std::memory_order_relaxed);

  RunTrace trace;
  trace.algorithm = run_algorithm_;
  trace.collected = true;
  const std::scoped_lock lock(registry_mutex_);
  std::size_t total = 0;
  std::int64_t epoch = std::numeric_limits<std::int64_t>::max();
  for (const auto& buffer : buffers_) {
    total += buffer->events.size();
    trace.dropped += buffer->dropped;
    if (!buffer->events.empty()) {
      // Per-thread rings are emission-ordered, so the first event is
      // the thread's earliest; the global minimum is the run begin.
      epoch = std::min(epoch, buffer->events.front().ts_ns);
      ++trace.thread_count;
    }
  }
  trace.events.reserve(total);
  for (const auto& buffer : buffers_) {
    for (Event event : buffer->events) {
      event.ts_ns -= epoch;
      trace.events.push_back(event);
    }
  }
  last_run_ = std::move(trace);
}

void TraceSink::emit(const EventName& name, EventKind kind,
                     std::int64_t ts_ns, std::int64_t dur_ns,
                     std::int64_t arg0, std::int64_t arg1) {
  ThreadBuffer& buffer = local_buffer();
  if (buffer.events.size() >= capacity_) {
    ++buffer.dropped;
    return;
  }
  buffer.events.push_back({&name, kind, buffer.tid, ts_ns, dur_ns, arg0,
                           arg1});
}

namespace detail {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void emit_now(const EventName& name, EventKind kind, std::int64_t arg0,
              std::int64_t arg1) {
  TraceSink& sink = ambient_session().trace();
  if (!sink.collecting()) return;
  sink.emit(name, kind, now_ns(), 0, arg0, arg1);
}

void emit_span(const EventName& name, std::int64_t start_ns,
               std::int64_t arg0, std::int64_t arg1) {
  TraceSink& sink = ambient_session().trace();
  if (!sink.collecting()) return;
  sink.emit(name, EventKind::kComplete, start_ns, now_ns() - start_ns, arg0,
            arg1);
}

}  // namespace detail

bool active() noexcept { return ambient_session().trace().collecting(); }

void arm() { ambient_session().trace().arm(); }
void disarm() { ambient_session().trace().disarm(); }
bool armed() { return ambient_session().trace().armed(); }

bool begin_run(const char* algorithm, std::int64_t threads) {
  return ambient_session().trace().begin_run(algorithm, threads);
}

void end_run() { ambient_session().trace().end_run(); }

const RunTrace& last_run() { return ambient_session().trace().last_run(); }

}  // namespace graftmatch::obs

#else  // GRAFTMATCH_TRACE_ENABLED == 0

namespace graftmatch::obs {

void arm() {}
void disarm() {}
bool armed() { return false; }
bool begin_run(const char*, std::int64_t) { return false; }
void end_run() {}
const RunTrace& last_run() {
  static const RunTrace empty;
  return empty;
}

}  // namespace graftmatch::obs

#endif  // GRAFTMATCH_TRACE_ENABLED
