// Trace summarization: fold an obs::RunTrace back into the per-step
// seconds and per-phase anatomy the paper's figures consume.
//
// bench_fig6_breakdown reconciles these step totals against the
// StatsSink stopwatch columns (they must agree within noise: every
// trace span is emitted strictly inside its stopwatch lap), and
// bench_fig8 reads the frontier counters. StatsSink uses the counter
// block to fill RunStats::obs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graftmatch/obs/trace.hpp"

namespace graftmatch::obs {

/// Anatomy of one MS-BFS-Graft phase, rebuilt from the phase span and
/// the events nested inside it on the emitting thread.
struct PhaseAnatomy {
  std::int64_t phase = 0;   ///< 1-based index (arg0 of the phase span)
  double seconds = 0.0;     ///< phase span duration
  double top_down = 0.0;    ///< step span seconds inside this phase
  double bottom_up = 0.0;
  double augment = 0.0;
  double graft = 0.0;
  double statistics = 0.0;
  std::int64_t levels = 0;  ///< frontier counters seen in this phase
  std::int64_t bottom_up_levels = 0;
  std::int64_t frontier_peak = 0;
  std::int64_t frontier_volume = 0;  ///< sum of |F| over levels
  std::int64_t augmentations = 0;    ///< arg1 of the phase End event
  bool grafted = false;              ///< a graft_chosen instant fired
};

/// Whole-run rollup of a trace.
struct TraceSummary {
  /// Step seconds summed over all B/E step spans (Fig. 6 columns).
  double top_down = 0.0;
  double bottom_up = 0.0;
  double augment = 0.0;
  double graft = 0.0;
  double statistics = 0.0;
  double run_seconds = 0.0;  ///< duration of the run span

  std::int64_t events = 0;
  std::int64_t dropped = 0;
  std::int64_t levels = 0;
  std::int64_t bottom_up_levels = 0;
  std::int64_t direction_switches = 0;
  std::int64_t grafts = 0;    ///< graft_chosen instants
  std::int64_t rebuilds = 0;  ///< rebuild_chosen instants
  std::int64_t frontier_peak = 0;
  std::int64_t frontier_volume = 0;
  std::int64_t kernel_spans = 0;  ///< per-thread kernel X events
  std::int64_t kernel_edges = 0;  ///< edges they report scanning

  std::vector<PhaseAnatomy> phases;
};

/// Fold a trace. Events must be per-thread contiguous and
/// timestamp-ordered within each thread, as end_run() produces them.
TraceSummary summarize(const RunTrace& trace);

/// CSV schema for per-phase anatomy rows (bench_fig6's second
/// artifact): instance + the PhaseAnatomy fields in declaration order.
std::vector<std::string> phase_csv_columns();
std::vector<std::string> phase_csv_row(const std::string& instance,
                                       const PhaseAnatomy& row);

}  // namespace graftmatch::obs
