// Chrome trace_event serialization of an obs::RunTrace.
//
// The output is the JSON Object Format of the Trace Event spec:
// {"traceEvents":[...]} with B/E/X/C/i phase records plus process- and
// thread-name metadata, loadable in chrome://tracing and Perfetto
// (ui.perfetto.dev -> Open trace file). Timestamps are microseconds
// with nanosecond precision preserved as fractional digits.
#pragma once

#include <string>

#include "graftmatch/obs/trace.hpp"

namespace graftmatch::obs {

/// Render the trace as a self-contained Chrome trace JSON document.
std::string chrome_trace_json(const RunTrace& trace);

/// Write chrome_trace_json() to `path`. Returns false when the file
/// cannot be opened or written.
bool write_chrome_trace_file(const std::string& path, const RunTrace& trace);

}  // namespace graftmatch::obs
