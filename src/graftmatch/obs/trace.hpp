// Structured tracing: low-overhead per-thread event collection for the
// traversal engine.
//
// The paper's evaluation lives on per-phase anatomy (Fig. 6 step
// breakdowns, Fig. 8 frontier traces); end-of-run aggregates cannot
// show a regression INSIDE a phase (e.g. the direction switch firing a
// level late). This subsystem records phase/step begin-end spans,
// per-level frontier counters, per-thread kernel spans, and decision
// instants (direction switches, graft-vs-rebuild) into thread-private
// rings, then flushes them at run end into a RunTrace that the Chrome
// trace writer (chrome_trace.hpp), the summarizer (summary.hpp), and
// RunStats::obs consume.
//
// Ownership model: every ring, the armed/active flags, and the flushed
// RunTrace belong to a TraceSink. Each SessionContext
// (runtime/context.hpp) owns one sink, so two sessions tracing
// concurrently in one process never see each other's events. The
// free-function API below (arm/begin_run/emit_*/last_run) is the
// emission surface the solvers use; it routes to the AMBIENT session's
// sink -- the session bound to the calling thread by SessionScope and
// propagated into OpenMP teams by parallel_region(), falling back to
// the process-wide default session when no binding is active. One-shot
// drivers that never create a session therefore keep today's behavior
// (one de-facto global trace), while sessions get full isolation.
//
// Concurrency contract (matches parallel_region()'s happens-before
// discipline, so the TSan tier stays suppression-free):
//  * Each thread writes only its own ring; rings are registered once
//    per (sink, thread) under the sink's mutex and then touched
//    exclusively by their owner.
//  * The thread that owns the run clears rings in begin_run() and
//    snapshots them in end_run(), both while no parallel region is
//    open; the region fork edge (release slot store -> acquire body
//    load) orders the clear before any worker write, and the join edge
//    orders every worker write before the snapshot.
//  * The active() gate is a relaxed atomic: emitters only need to see
//    a value, not synchronize through it.
//  * Distinct sinks share nothing but the thread-slot counter, so
//    concurrent sessions may trace concurrently.
//
// Cost model: compiled out entirely at GRAFTMATCH_TRACE_ENABLED=0
// (every emit call is an empty constexpr-false branch). When compiled
// in but not armed, each emission site costs one ambient-session lookup
// plus one relaxed atomic load. Events are emitted per LEVEL and per
// PHASE, never per edge, so even armed runs stay within a few percent
// of untraced time.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef GRAFTMATCH_TRACE_ENABLED
#define GRAFTMATCH_TRACE_ENABLED 1
#endif

namespace graftmatch::obs {

/// Static identity of an event type: the display name plus labels for
/// the two payload slots (nullptr = slot unused). Emit sites pass the
/// canonical constants from obs::names, so events carry one pointer
/// instead of a string.
struct EventName {
  const char* name;
  const char* arg0;
  const char* arg1;
};

namespace names {
/// Whole-run span, emitted by StatsSink (arg0 = threads).
inline constexpr EventName kRun{"run", "threads", nullptr};
/// One repeat-until phase of MS-BFS-Graft (arg0 = 1-based phase,
/// arg1 on the End event = augmentations found).
inline constexpr EventName kPhase{"phase", "phase", "augmentations"};
/// Step spans, one per StatsSink lap. Names match engine::Step.
inline constexpr EventName kTopDown{"top_down", nullptr, nullptr};
inline constexpr EventName kBottomUp{"bottom_up", nullptr, nullptr};
inline constexpr EventName kAugment{"augment", nullptr, nullptr};
inline constexpr EventName kGraft{"graft", nullptr, nullptr};
inline constexpr EventName kStatistics{"statistics", nullptr, nullptr};
/// Per-level frontier counter (arg0 = |F|, arg1 = 1 for bottom-up).
inline constexpr EventName kFrontier{"frontier", "size", "bottom_up"};
/// Per-thread kernel spans from frontier_kernels.hpp (arg0 = edges
/// scanned by that thread, arg1 = successful visits).
inline constexpr EventName kKernelFrontierEdge{"kernel.frontier_edge",
                                               "edges", "visits"};
inline constexpr EventName kKernelReverse{"kernel.reverse", "edges",
                                          "visits"};
inline constexpr EventName kKernelChunked{"kernel.chunked", "edges",
                                          "visits"};
inline constexpr EventName kKernelWord{"kernel.word", "edges", "visits"};
/// Direction flip within a phase (arg0 = level, arg1 = new direction).
inline constexpr EventName kDirectionSwitch{"direction_switch", "level",
                                            "bottom_up"};
/// Run-start instant naming the traversal configuration (arg0 =
/// DirectionPolicy as int, arg1 = BottomUpKernel as int; the string
/// forms live in the `direction` RunStats block).
inline constexpr EventName kDirectionPolicy{"direction_policy", "policy",
                                            "kernel"};
/// Step 3 decision instants (arg0 = |activeX|, arg1 = |renewableY|).
inline constexpr EventName kGraftChosen{"graft_chosen", "active_x",
                                        "renewable_y"};
inline constexpr EventName kRebuildChosen{"rebuild_chosen", "active_x",
                                          "renewable_y"};
/// Epoch-bookkeeping instants (runtime/epoch_array.hpp): workspace
/// binding at run start (arg0 = 1 when the arrays were warm-reused from
/// a previous run, arg1 = runs prepared so far on this workspace) and
/// the one-time O(ny) candidate-pool build (arg0 = pool size).
inline constexpr EventName kWorkspacePrepared{"workspace_prepared", "warm",
                                              "runs"};
inline constexpr EventName kPoolBuild{"pool_build", "candidates", nullptr};
/// Kernelization pre-pass spans (src/graftmatch/reduce/). The whole
/// pipeline (arg0 = ReduceMode as int), one span per reduction round
/// (arg0 = 1-based round, arg1 on the End event = ops applied), the
/// kernel compaction (arg0 = kernel edges), and the matching
/// reconstruction (arg0 = forced matches replayed).
inline constexpr EventName kReduce{"reduce", "mode", nullptr};
inline constexpr EventName kReduceRound{"reduce.round", "round", "ops"};
inline constexpr EventName kReduceCompact{"reduce.compact", "kernel_edges",
                                          nullptr};
inline constexpr EventName kReduceReconstruct{"reduce.reconstruct", "forced",
                                              nullptr};
/// DM-sharded execution spans (src/graftmatch/shard/). Decomposition +
/// block extraction (arg0 = blocks found, arg1 = blocks needing a
/// solve), one span per solved block (arg0 = block index, arg1 = block
/// edges), and the stitch + audit (arg0 = stitched cardinality).
inline constexpr EventName kShardDecompose{"shard.decompose", "blocks",
                                           "solvable"};
inline constexpr EventName kShardBlock{"shard.block", "block", "edges"};
inline constexpr EventName kShardStitch{"shard.stitch", "cardinality",
                                        nullptr};
/// Serving-layer spans (src/graftmatch/serve/): one span per request a
/// server worker executes (arg0 = roster entry index, arg1 on the End
/// event = matched cardinality).
inline constexpr EventName kServeRequest{"serve.request", "roster_entry",
                                         "cardinality"};
/// One span per dispatched batch (arg0 = coalesced group size, arg1 =
/// matched cardinality); a singleton request is a batch of one.
inline constexpr EventName kServeBatch{"serve.batch", "group", "cardinality"};
/// Incremental-matcher spans (src/graftmatch/dynamic/): one span per
/// applied churn batch (arg0 = batch size, arg1 on the End event =
/// cardinality after), one per localized re-augmentation pass (arg0 =
/// searches launched, arg1 = augmenting paths applied), and one per
/// payoff-gated compaction (arg0 = live edges folded into the CSR).
inline constexpr EventName kDynamicApply{"dynamic.apply", "edges",
                                         "cardinality"};
inline constexpr EventName kDynamicReaugment{"dynamic.reaugment", "searches",
                                             "paths"};
inline constexpr EventName kDynamicCompact{"dynamic.compact", "live_edges",
                                           nullptr};
}  // namespace names

/// Chrome trace_event phase kinds this subsystem emits.
enum class EventKind : std::uint8_t {
  kBegin,     ///< "B": span opens
  kEnd,       ///< "E": span closes
  kComplete,  ///< "X": span with duration, emitted once at its end
  kCounter,   ///< "C": sampled value
  kInstant,   ///< "i": point event
};

struct Event {
  const EventName* name = nullptr;
  EventKind kind = EventKind::kInstant;
  std::int32_t tid = 0;     ///< ring registration order (0 = first emitter)
  std::int64_t ts_ns = 0;   ///< relative to run begin after the snapshot
  std::int64_t dur_ns = 0;  ///< kComplete only
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
};

/// The flushed result of one traced run: events grouped by thread
/// (contiguous per tid, timestamp-ordered within a tid).
struct RunTrace {
  std::string algorithm;
  std::vector<Event> events;
  std::int64_t dropped = 0;  ///< events lost to full rings (see capacity)
  int thread_count = 0;      ///< rings that contributed at least one event
  bool collected = false;
};

#if GRAFTMATCH_TRACE_ENABLED

/// One session's trace collector: the armed/active flags, the
/// per-thread event rings, and the flushed RunTrace of the most recent
/// run. A sink must outlive every run recorded into it (a
/// SessionContext owns its sink for exactly that reason).
///
/// begin_run()/end_run() are called by the thread that owns the run (an
/// engine StatsSink or driver), never concurrently with each other on
/// one sink; emit() may be called from any thread bound to the owning
/// session, including every thread of an open parallel team.
class TraceSink {
 public:
  TraceSink();
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Arm / disarm collection. Arming alone records nothing: the next
  /// begin_run/end_run pair collects. Ring capacity is re-read from
  /// GRAFTMATCH_TRACE_CAPACITY (events per thread, default 1<<17) at
  /// every begin_run().
  void arm() noexcept { armed_.store(true, std::memory_order_relaxed); }
  void disarm() noexcept { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Run lifecycle. begin_run() returns true when this call owns the
  /// trace (armed, and no run already active on this sink -- a nested
  /// solver run records into its owner's trace); only the owner calls
  /// end_run(), which snapshots every ring into last_run().
  bool begin_run(const char* algorithm, std::int64_t threads);
  void end_run();
  const RunTrace& last_run() const noexcept { return last_run_; }

  /// Collection in progress (between an owning begin_run and its
  /// end_run). Relaxed: the fork/join edges of parallel_region() order
  /// the owner's flips against worker emissions.
  bool collecting() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Append one event to the calling thread's ring (drop-counted once
  /// the ring is full). Callers gate on collecting().
  void emit(const EventName& name, EventKind kind, std::int64_t ts_ns,
            std::int64_t dur_ns, std::int64_t arg0, std::int64_t arg1);

 private:
  struct ThreadBuffer;
  ThreadBuffer& local_buffer();

  /// Process-unique sink identity; keys the thread-local ring cache so
  /// a stale cache entry can never alias a new sink at a reused
  /// address.
  const std::uint64_t id_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> active_{false};
  std::size_t capacity_;
  std::string run_algorithm_;
  RunTrace last_run_;
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

#else  // GRAFTMATCH_TRACE_ENABLED == 0: the sink is an empty shell so
       // SessionContext keeps a uniform shape across build modes.

class TraceSink {
 public:
  void arm() noexcept {}
  void disarm() noexcept {}
  bool armed() const noexcept { return false; }
  bool begin_run(const char*, std::int64_t) { return false; }
  void end_run() {}
  const RunTrace& last_run() const noexcept {
    static const RunTrace empty;
    return empty;
  }
  bool collecting() const noexcept { return false; }
  void emit(const EventName&, EventKind, std::int64_t, std::int64_t,
            std::int64_t, std::int64_t) {}
};

#endif  // GRAFTMATCH_TRACE_ENABLED

/// Ambient-session compatibility surface: each call resolves the
/// calling thread's bound session (SessionScope / parallel_region
/// propagation; the process default session when unbound) and operates
/// on that session's sink. One-shot drivers and the existing tests use
/// these; session-aware code calls the TraceSink methods directly.
void arm();
void disarm();
bool armed();
bool begin_run(const char* algorithm, std::int64_t threads);
void end_run();
const RunTrace& last_run();

#if GRAFTMATCH_TRACE_ENABLED

namespace detail {
std::int64_t now_ns();
/// Append to the ambient session's sink; no-ops unless that sink is
/// collecting.
void emit_now(const EventName& name, EventKind kind, std::int64_t arg0,
              std::int64_t arg1);
void emit_span(const EventName& name, std::int64_t start_ns,
               std::int64_t arg0, std::int64_t arg1);
}  // namespace detail

constexpr bool compiled() noexcept { return true; }
/// True when the ambient session's sink is collecting.
bool active() noexcept;
/// Span start marker for emit_complete(); 0 when not collecting.
inline std::int64_t timestamp() noexcept {
  return active() ? detail::now_ns() : 0;
}
inline void emit_begin(const EventName& name, std::int64_t arg0 = 0,
                       std::int64_t arg1 = 0) {
  detail::emit_now(name, EventKind::kBegin, arg0, arg1);
}
inline void emit_end(const EventName& name, std::int64_t arg0 = 0,
                     std::int64_t arg1 = 0) {
  detail::emit_now(name, EventKind::kEnd, arg0, arg1);
}
inline void emit_counter(const EventName& name, std::int64_t arg0,
                         std::int64_t arg1 = 0) {
  detail::emit_now(name, EventKind::kCounter, arg0, arg1);
}
inline void emit_instant(const EventName& name, std::int64_t arg0 = 0,
                         std::int64_t arg1 = 0) {
  detail::emit_now(name, EventKind::kInstant, arg0, arg1);
}
/// Close a span opened with timestamp(). No-op when the start marker is
/// 0 (collection was off when the span opened).
inline void emit_complete(const EventName& name, std::int64_t start_ns,
                          std::int64_t arg0 = 0, std::int64_t arg1 = 0) {
  if (start_ns != 0) detail::emit_span(name, start_ns, arg0, arg1);
}

#else  // GRAFTMATCH_TRACE_ENABLED == 0: every emitter folds to nothing.

constexpr bool compiled() noexcept { return false; }
constexpr bool active() noexcept { return false; }
constexpr std::int64_t timestamp() noexcept { return 0; }
constexpr void emit_begin(const EventName&, std::int64_t = 0,
                          std::int64_t = 0) noexcept {}
constexpr void emit_end(const EventName&, std::int64_t = 0,
                        std::int64_t = 0) noexcept {}
constexpr void emit_counter(const EventName&, std::int64_t,
                            std::int64_t = 0) noexcept {}
constexpr void emit_instant(const EventName&, std::int64_t = 0,
                            std::int64_t = 0) noexcept {}
constexpr void emit_complete(const EventName&, std::int64_t,
                             std::int64_t = 0, std::int64_t = 0) noexcept {}

#endif  // GRAFTMATCH_TRACE_ENABLED

}  // namespace graftmatch::obs
