// Structured tracing: low-overhead per-thread event collection for the
// traversal engine.
//
// The paper's evaluation lives on per-phase anatomy (Fig. 6 step
// breakdowns, Fig. 8 frontier traces); end-of-run aggregates cannot
// show a regression INSIDE a phase (e.g. the direction switch firing a
// level late). This subsystem records phase/step begin-end spans,
// per-level frontier counters, per-thread kernel spans, and decision
// instants (direction switches, graft-vs-rebuild) into thread-private
// rings, then flushes them at run end into a RunTrace that the Chrome
// trace writer (chrome_trace.hpp), the summarizer (summary.hpp), and
// RunStats::obs consume.
//
// Concurrency contract (matches parallel_region()'s happens-before
// discipline, so the TSan tier stays suppression-free):
//  * Each thread writes only its own ring; rings are registered once
//    under a mutex and then touched exclusively by their owner.
//  * The serial thread clears rings in begin_run() and snapshots them
//    in end_run(), both while no parallel region is open; the region
//    fork edge (release slot store -> acquire body load) orders the
//    clear before any worker write, and the join edge orders every
//    worker write before the snapshot.
//  * The active() gate is a relaxed atomic: emitters only need to see
//    a value, not synchronize through it.
//
// Cost model: compiled out entirely at GRAFTMATCH_TRACE_ENABLED=0
// (every emit call is an empty constexpr-false branch). When compiled
// in but not armed, each emission site costs one relaxed atomic load.
// Events are emitted per LEVEL and per PHASE, never per edge, so even
// armed runs stay within a few percent of untraced time.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#ifndef GRAFTMATCH_TRACE_ENABLED
#define GRAFTMATCH_TRACE_ENABLED 1
#endif

namespace graftmatch::obs {

/// Static identity of an event type: the display name plus labels for
/// the two payload slots (nullptr = slot unused). Emit sites pass the
/// canonical constants from obs::names, so events carry one pointer
/// instead of a string.
struct EventName {
  const char* name;
  const char* arg0;
  const char* arg1;
};

namespace names {
/// Whole-run span, emitted by StatsSink (arg0 = threads).
inline constexpr EventName kRun{"run", "threads", nullptr};
/// One repeat-until phase of MS-BFS-Graft (arg0 = 1-based phase,
/// arg1 on the End event = augmentations found).
inline constexpr EventName kPhase{"phase", "phase", "augmentations"};
/// Step spans, one per StatsSink lap. Names match engine::Step.
inline constexpr EventName kTopDown{"top_down", nullptr, nullptr};
inline constexpr EventName kBottomUp{"bottom_up", nullptr, nullptr};
inline constexpr EventName kAugment{"augment", nullptr, nullptr};
inline constexpr EventName kGraft{"graft", nullptr, nullptr};
inline constexpr EventName kStatistics{"statistics", nullptr, nullptr};
/// Per-level frontier counter (arg0 = |F|, arg1 = 1 for bottom-up).
inline constexpr EventName kFrontier{"frontier", "size", "bottom_up"};
/// Per-thread kernel spans from frontier_kernels.hpp (arg0 = edges
/// scanned by that thread, arg1 = successful visits).
inline constexpr EventName kKernelFrontierEdge{"kernel.frontier_edge",
                                               "edges", "visits"};
inline constexpr EventName kKernelReverse{"kernel.reverse", "edges",
                                          "visits"};
inline constexpr EventName kKernelChunked{"kernel.chunked", "edges",
                                          "visits"};
/// Direction flip within a phase (arg0 = level, arg1 = new direction).
inline constexpr EventName kDirectionSwitch{"direction_switch", "level",
                                            "bottom_up"};
/// Step 3 decision instants (arg0 = |activeX|, arg1 = |renewableY|).
inline constexpr EventName kGraftChosen{"graft_chosen", "active_x",
                                        "renewable_y"};
inline constexpr EventName kRebuildChosen{"rebuild_chosen", "active_x",
                                          "renewable_y"};
/// Epoch-bookkeeping instants (runtime/epoch_array.hpp): workspace
/// binding at run start (arg0 = 1 when the arrays were warm-reused from
/// a previous run, arg1 = runs prepared so far on this workspace) and
/// the one-time O(ny) candidate-pool build (arg0 = pool size).
inline constexpr EventName kWorkspacePrepared{"workspace_prepared", "warm",
                                              "runs"};
inline constexpr EventName kPoolBuild{"pool_build", "candidates", nullptr};
/// Kernelization pre-pass spans (src/graftmatch/reduce/). The whole
/// pipeline (arg0 = ReduceMode as int), one span per reduction round
/// (arg0 = 1-based round, arg1 on the End event = ops applied), the
/// kernel compaction (arg0 = kernel edges), and the matching
/// reconstruction (arg0 = forced matches replayed).
inline constexpr EventName kReduce{"reduce", "mode", nullptr};
inline constexpr EventName kReduceRound{"reduce.round", "round", "ops"};
inline constexpr EventName kReduceCompact{"reduce.compact", "kernel_edges",
                                          nullptr};
inline constexpr EventName kReduceReconstruct{"reduce.reconstruct", "forced",
                                              nullptr};
/// DM-sharded execution spans (src/graftmatch/shard/). Decomposition +
/// block extraction (arg0 = blocks found, arg1 = blocks needing a
/// solve), one span per solved block (arg0 = block index, arg1 = block
/// edges), and the stitch + audit (arg0 = stitched cardinality).
inline constexpr EventName kShardDecompose{"shard.decompose", "blocks",
                                           "solvable"};
inline constexpr EventName kShardBlock{"shard.block", "block", "edges"};
inline constexpr EventName kShardStitch{"shard.stitch", "cardinality",
                                        nullptr};
}  // namespace names

/// Chrome trace_event phase kinds this subsystem emits.
enum class EventKind : std::uint8_t {
  kBegin,     ///< "B": span opens
  kEnd,       ///< "E": span closes
  kComplete,  ///< "X": span with duration, emitted once at its end
  kCounter,   ///< "C": sampled value
  kInstant,   ///< "i": point event
};

struct Event {
  const EventName* name = nullptr;
  EventKind kind = EventKind::kInstant;
  std::int32_t tid = 0;     ///< ring registration order (0 = first emitter)
  std::int64_t ts_ns = 0;   ///< relative to run begin after the snapshot
  std::int64_t dur_ns = 0;  ///< kComplete only
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;
};

/// The flushed result of one traced run: events grouped by thread
/// (contiguous per tid, timestamp-ordered within a tid).
struct RunTrace {
  std::string algorithm;
  std::vector<Event> events;
  std::int64_t dropped = 0;  ///< events lost to full rings (see capacity)
  int thread_count = 0;      ///< rings that contributed at least one event
  bool collected = false;
};

/// Arm / disarm collection. Arming alone records nothing: the next
/// StatsSink run (begin_run/end_run pair) collects. Ring capacity is
/// re-read from GRAFTMATCH_TRACE_CAPACITY (events per thread, default
/// 1<<17) at every begin_run().
void arm();
void disarm();
bool armed();

/// Run lifecycle, called by the engine's StatsSink. begin_run() returns
/// true when this call owns the trace (armed, and no run already
/// active -- a nested solver run records into its owner's trace);
/// only the owner calls end_run(), which snapshots every ring into the
/// trace returned by last_run().
bool begin_run(const char* algorithm, std::int64_t threads);
void end_run();
const RunTrace& last_run();

#if GRAFTMATCH_TRACE_ENABLED

namespace detail {
/// Collection gate. Relaxed everywhere: the fork/join edges of
/// parallel_region() order the serial-thread flips against worker
/// emissions, the atomic only keeps the flag itself race-free.
inline std::atomic<bool> g_active{false};
std::int64_t now_ns();
void emit_now(const EventName& name, EventKind kind, std::int64_t arg0,
              std::int64_t arg1);
void emit_span(const EventName& name, std::int64_t start_ns,
               std::int64_t arg0, std::int64_t arg1);
}  // namespace detail

constexpr bool compiled() noexcept { return true; }
inline bool active() noexcept {
  return detail::g_active.load(std::memory_order_relaxed);
}
/// Span start marker for emit_complete(); 0 when not collecting.
inline std::int64_t timestamp() noexcept {
  return active() ? detail::now_ns() : 0;
}
inline void emit_begin(const EventName& name, std::int64_t arg0 = 0,
                       std::int64_t arg1 = 0) {
  if (active()) detail::emit_now(name, EventKind::kBegin, arg0, arg1);
}
inline void emit_end(const EventName& name, std::int64_t arg0 = 0,
                     std::int64_t arg1 = 0) {
  if (active()) detail::emit_now(name, EventKind::kEnd, arg0, arg1);
}
inline void emit_counter(const EventName& name, std::int64_t arg0,
                         std::int64_t arg1 = 0) {
  if (active()) detail::emit_now(name, EventKind::kCounter, arg0, arg1);
}
inline void emit_instant(const EventName& name, std::int64_t arg0 = 0,
                         std::int64_t arg1 = 0) {
  if (active()) detail::emit_now(name, EventKind::kInstant, arg0, arg1);
}
/// Close a span opened with timestamp(). No-op when the start marker is
/// 0 (collection was off when the span opened).
inline void emit_complete(const EventName& name, std::int64_t start_ns,
                          std::int64_t arg0 = 0, std::int64_t arg1 = 0) {
  if (start_ns != 0 && active()) {
    detail::emit_span(name, start_ns, arg0, arg1);
  }
}

#else  // GRAFTMATCH_TRACE_ENABLED == 0: every emitter folds to nothing.

constexpr bool compiled() noexcept { return false; }
constexpr bool active() noexcept { return false; }
constexpr std::int64_t timestamp() noexcept { return 0; }
constexpr void emit_begin(const EventName&, std::int64_t = 0,
                          std::int64_t = 0) noexcept {}
constexpr void emit_end(const EventName&, std::int64_t = 0,
                        std::int64_t = 0) noexcept {}
constexpr void emit_counter(const EventName&, std::int64_t,
                            std::int64_t = 0) noexcept {}
constexpr void emit_instant(const EventName&, std::int64_t = 0,
                            std::int64_t = 0) noexcept {}
constexpr void emit_complete(const EventName&, std::int64_t,
                             std::int64_t = 0, std::int64_t = 0) noexcept {}

#endif  // GRAFTMATCH_TRACE_ENABLED

}  // namespace graftmatch::obs
