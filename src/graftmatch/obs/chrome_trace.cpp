#include "graftmatch/obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

namespace graftmatch::obs {
namespace {

constexpr int kPid = 1;

void append_escaped(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out << buffer;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Microsecond timestamp with the sub-microsecond part kept: Perfetto
/// accepts fractional "ts"/"dur", and our spans are often sub-µs.
void append_us(std::ostringstream& out, std::int64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns < 0 ? -(ns % 1000) : ns % 1000));
  out << buffer;
}

void append_args(std::ostringstream& out, const Event& event) {
  if (event.name->arg0 == nullptr && event.name->arg1 == nullptr) return;
  out << ",\"args\":{";
  bool first = true;
  if (event.name->arg0 != nullptr) {
    out << '"' << event.name->arg0 << "\":" << event.arg0;
    first = false;
  }
  if (event.name->arg1 != nullptr) {
    out << (first ? "" : ",") << '"' << event.name->arg1
        << "\":" << event.arg1;
  }
  out << '}';
}

void append_metadata(std::ostringstream& out, const char* what, int tid,
                     const std::string& value) {
  out << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << kPid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":";
  append_escaped(out, value);
  out << "}}";
}

}  // namespace

std::string chrome_trace_json(const RunTrace& trace) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) out << ',';
    first = false;
  };

  separator();
  append_metadata(out, "process_name", 0, "graftmatch: " + trace.algorithm);
  std::set<std::int32_t> tids;
  for (const Event& event : trace.events) tids.insert(event.tid);
  for (const std::int32_t tid : tids) {
    separator();
    append_metadata(out, "thread_name", tid,
                    tid == 0 ? "serial" : "worker " + std::to_string(tid));
  }

  for (const Event& event : trace.events) {
    separator();
    out << "{\"name\":\"" << event.name->name << "\",\"ph\":\"";
    switch (event.kind) {
      case EventKind::kBegin: out << 'B'; break;
      case EventKind::kEnd: out << 'E'; break;
      case EventKind::kComplete: out << 'X'; break;
      case EventKind::kCounter: out << 'C'; break;
      case EventKind::kInstant: out << 'i'; break;
    }
    out << "\",\"pid\":" << kPid << ",\"tid\":" << event.tid << ",\"ts\":";
    append_us(out, event.ts_ns);
    if (event.kind == EventKind::kComplete) {
      out << ",\"dur\":";
      append_us(out, event.dur_ns);
    }
    if (event.kind == EventKind::kInstant) out << ",\"s\":\"t\"";
    append_args(out, event);
    out << '}';
  }

  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool write_chrome_trace_file(const std::string& path, const RunTrace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json(trace) << '\n';
  return static_cast<bool>(out.flush());
}

}  // namespace graftmatch::obs
