// Dulmage-Mendelsohn block sharding: partition a bipartite graph into
// independent subproblems that can be matched concurrently and stitched
// back together without losing cardinality.
//
// The decomposition starts from ANY matching M0 (typically a cheap
// initializer, not necessarily maximum) and mirrors dm_decompose's
// alternating-reachability marking:
//
//   * V (vertical) vertices are alternating-reachable from the
//     unmatched rows, H (horizontal) vertices are reachable from the
//     unmatched columns and not from unmatched rows, S (square) is the
//     rest. When M0 is maximum this IS the coarse DM partition; for a
//     non-maximum M0 it is a coarsening with the same closure property.
//   * A matched pair always lands in one class together (the reach
//     visits a column and its matched row, or a row and its matched
//     column, as one step), so matched edges never cross classes.
//   * Every M0-augmenting path is an alternating walk from an unmatched
//     row, so all of its vertices are in V and all of its edges are
//     intra-class; the path therefore lies inside ONE connected
//     component of G[V].
//
// The H and S parts contain no unmatched row at all (every unmatched
// row is a V seed), so they are *frozen*: their M0 edges pass through
// verbatim, and they are never split further -- only the V part is
// broken into connected components, because only a V component with a
// free vertex on BOTH sides can host an augmenting path. Components
// failing that test are frozen too. Solving each remaining component
// to optimality and stitching recovers a maximum matching of the whole
// graph by Berge's lemma -- M* (+) M0 decomposes into vertex-disjoint
// augmenting paths, each confined to one solvable component. Keeping
// the component search inside V is also what makes the decomposition
// cheap on nearly-saturated graphs: the alternating reaches only walk
// the deficient region, never the matched bulk. docs/SHARDING.md
// carries the full argument and the operational flag reference.
#pragma once

#include <cstdint>
#include <vector>

#include "graftmatch/dm/dulmage_mendelsohn.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/types.hpp"

namespace graftmatch::shard {

/// Tallies for one connected component of G[V].
struct ShardComponent {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t unmatched_rows = 0;
  std::int64_t unmatched_cols = 0;
  std::int64_t edges = 0;    ///< intra-V edges inside the component
  std::int64_t matched = 0;  ///< M0 pairs inside the component

  /// A component can host an augmenting path only if it still has a
  /// free vertex on BOTH sides; otherwise it is frozen.
  bool solvable() const noexcept {
    return unmatched_rows > 0 && unmatched_cols > 0;
  }
};

/// Vertex classes + V-component labels for a (graph, matching) pair.
/// Every vertex is classified exactly once; every V vertex belongs to
/// exactly one component (H/S vertices keep label -1 -- their coarse
/// parts are frozen as wholes and never split).
struct ShardClassification {
  std::vector<DmBlock> row_class;           ///< size nx
  std::vector<DmBlock> col_class;           ///< size ny
  std::vector<std::int64_t> row_component;  ///< size nx; -1 outside V
  std::vector<std::int64_t> col_component;  ///< size ny; -1 outside V
  std::vector<ShardComponent> components;   ///< V components only
  std::int64_t h_rows = 0;  ///< rows in the (frozen) horizontal part
  std::int64_t h_cols = 0;
  std::int64_t s_rows = 0;  ///< rows in the (frozen) square part
  std::int64_t s_cols = 0;
  /// True when the `max_component_edges` gate fired (see
  /// classify_shards), so classification stopped early. The per-vertex
  /// label vectors are then empty (the seed pre-scan aborts before
  /// allocating them) or partially filled; no other field may be used.
  bool aborted = false;

  std::int64_t solvable_blocks() const noexcept;
  std::int64_t solvable_edges() const noexcept;
  std::int64_t largest_solvable_edges() const noexcept;
  std::int64_t solvable_matched() const noexcept;
};

/// Classify vertices (alternating reach from both free sides, V wins
/// over H as in dm_decompose) and label connected components of G[V].
/// The row-side reach, the component labels, and the per-component edge
/// tallies are fused into a single union-find pass, so the cost is O(n)
/// for the label arrays plus work proportional to the alternating reach
/// regions -- near-saturating initializers leave those tiny.
///
/// `max_component_edges` (0 = unlimited) is the payoff gate. The scan
/// stops early and returns with `aborted` set as soon as any of three
/// signals says sharding cannot pay:
///   1. one component's edge weight crosses the cap (the graph is
///      dominated by a single deficient block);
///   2. the unmatched rows' combined degree crosses three times the cap
///      during a zero-allocation pre-scan (the V region is guaranteed
///      to span several times the cap before the BFS even starts, and
///      the function returns before touching a per-vertex array);
///   3. a quarter of the cap has been traversed and a single component
///      holds more than half of it (a giant is forming, no need to
///      wait for it to reach the cap).
/// Callers then solve monolithically having spent only a fraction of
/// one pass; block-rich graphs (many communities, each a small slice of
/// the total) trip none of the three.
ShardClassification classify_shards(const BipartiteGraph& g,
                                    const Matching& m0,
                                    std::int64_t max_component_edges = 0);

/// One solvable V component lifted out as a standalone subproblem.
struct ShardBlock {
  std::int64_t component = -1;  ///< index into `components`
  BipartiteGraph graph;         ///< sub-CSR over local ids
  std::vector<vid_t> x_ids;     ///< local row -> global row, ascending
  std::vector<vid_t> y_ids;     ///< local col -> global col, ascending
  Matching initial;             ///< M0 projected into local ids
};

/// Extract every solvable component as a sub-CSR with its slice of M0.
/// The id maps are ascending, so local neighbor lists inherit the
/// global sort order and the CSR is adopted canonically (no re-sort).
/// Frozen components are not extracted -- their M0 edges stay in the
/// global matching untouched.
std::vector<ShardBlock> extract_blocks(const BipartiteGraph& g,
                                       const Matching& m0,
                                       const ShardClassification& c);

/// Replace `global`'s edges on `block`'s vertices with the solved local
/// matching, translated back to global ids. Blocks are vertex-disjoint,
/// so stitching different blocks never conflicts.
void stitch_block(const ShardBlock& block, const Matching& local,
                  Matching& global);

}  // namespace graftmatch::shard
