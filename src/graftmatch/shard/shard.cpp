#include "graftmatch/shard/shard.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace graftmatch::shard {
namespace {

// Union-find over row ids [0, nx) and column ids [nx, nx + ny), with
// path halving and weighting by accumulated intra-V edge count. The
// edge weights double as the payoff gate's progress meter.
struct ComponentForest {
  std::vector<std::int64_t> parent;
  std::vector<std::int64_t> edges;  ///< row-side edge count at the root

  explicit ComponentForest(std::size_t nodes)
      : parent(nodes), edges(nodes, 0) {
    for (std::size_t i = 0; i < nodes; ++i) {
      parent[i] = static_cast<std::int64_t>(i);
    }
  }

  std::int64_t find(std::int64_t v) noexcept {
    while (parent[static_cast<std::size_t>(v)] != v) {
      auto& p = parent[static_cast<std::size_t>(v)];
      p = parent[static_cast<std::size_t>(p)];
      v = p;
    }
    return v;
  }

  /// Returns the merged root's edge count (unchanged if already joined).
  std::int64_t unite(std::int64_t a, std::int64_t b) noexcept {
    a = find(a);
    b = find(b);
    if (a == b) return edges[static_cast<std::size_t>(a)];
    if (edges[static_cast<std::size_t>(a)] < edges[static_cast<std::size_t>(b)]) {
      std::swap(a, b);
    }
    parent[static_cast<std::size_t>(b)] = a;
    edges[static_cast<std::size_t>(a)] += edges[static_cast<std::size_t>(b)];
    return edges[static_cast<std::size_t>(a)];
  }
};

void reach_from_cols(const BipartiteGraph& g, const Matching& m,
                     std::vector<std::uint8_t>& row_mark,
                     std::vector<std::uint8_t>& col_mark) {
  std::vector<vid_t> frontier;
  std::vector<vid_t> next;
  for (vid_t y = 0; y < g.num_y(); ++y) {
    if (!m.is_matched_y(y)) {
      col_mark[static_cast<std::size_t>(y)] = 1;
      frontier.push_back(y);
    }
  }
  while (!frontier.empty()) {
    next.clear();
    for (const vid_t y : frontier) {
      for (const vid_t x : g.neighbors_of_y(y)) {
        if (row_mark[static_cast<std::size_t>(x)]) continue;
        if (m.mate_of_y(y) == x) continue;
        row_mark[static_cast<std::size_t>(x)] = 1;
        const vid_t mate = m.mate_of_x(x);
        if (mate != kInvalidVertex &&
            !col_mark[static_cast<std::size_t>(mate)]) {
          col_mark[static_cast<std::size_t>(mate)] = 1;
          next.push_back(mate);
        }
      }
    }
    frontier.swap(next);
  }
}

}  // namespace

std::int64_t ShardClassification::solvable_blocks() const noexcept {
  std::int64_t count = 0;
  for (const ShardComponent& c : components) count += c.solvable();
  return count;
}

std::int64_t ShardClassification::solvable_edges() const noexcept {
  std::int64_t total = 0;
  for (const ShardComponent& c : components) {
    if (c.solvable()) total += c.edges;
  }
  return total;
}

std::int64_t ShardClassification::largest_solvable_edges() const noexcept {
  std::int64_t largest = 0;
  for (const ShardComponent& c : components) {
    if (c.solvable()) largest = std::max(largest, c.edges);
  }
  return largest;
}

std::int64_t ShardClassification::solvable_matched() const noexcept {
  std::int64_t total = 0;
  for (const ShardComponent& c : components) {
    if (c.solvable()) total += c.matched;
  }
  return total;
}

ShardClassification classify_shards(const BipartiteGraph& g,
                                    const Matching& m0,
                                    std::int64_t max_component_edges) {
  const auto nx = static_cast<std::size_t>(g.num_x());
  const auto ny = static_cast<std::size_t>(g.num_y());
  if (static_cast<vid_t>(nx) != m0.num_x() ||
      static_cast<vid_t>(ny) != m0.num_y()) {
    throw std::invalid_argument("classify_shards: matching shape mismatch");
  }

  ShardClassification c;

  // Zero-allocation pre-scan for the seed gate (signal 2 in the header
  // doc, plus the single-row case of signal 1): the unmatched rows'
  // combined degree is a lower bound on the V region's edge mass before
  // a single BFS step. Once it crosses three times the cap (~m/5 at the
  // engine's m/16), the reach is guaranteed to span several times the
  // cap whatever its component structure, so extraction could never pay
  // -- return before allocating or filling a single per-vertex array.
  // This is what keeps the overhead on massively deficient web graphs
  // to a fraction of one row scan.
  if (max_component_edges > 0) {
    std::int64_t seed_weight = 0;
    for (vid_t x = 0; x < g.num_x(); ++x) {
      if (m0.is_matched_x(x)) continue;
      seed_weight += g.degree_x(x);
      if (g.degree_x(x) > max_component_edges ||
          seed_weight > 3 * max_component_edges) {
        c.aborted = true;
        return c;
      }
    }
  }

  c.row_class.assign(nx, DmBlock::kSquare);
  c.col_class.assign(ny, DmBlock::kSquare);
  c.row_component.assign(nx, -1);
  c.col_component.assign(ny, -1);

  std::vector<std::uint8_t> v_rows(nx, 0);
  std::vector<std::uint8_t> v_cols(ny, 0);

  // Fused row-side pass: the alternating BFS from the unmatched rows
  // (the same marking dm_decompose uses, but tolerant of a non-maximum
  // M0), with G[V]-component union-find and the per-component edge
  // tally inline. Every neighbor of a V row is itself V -- non-mate
  // neighbors are marked the moment the row's adjacency is scanned, and
  // the mate is the column that reached the row -- so a row's whole
  // degree joins its component's edge weight as soon as the row enters
  // V, and the weight at the root is exact for finished components and
  // a live lower bound while the reach is still growing. That lower
  // bound drives the payoff gate (see the header for the three abort
  // signals): abort once one component outgrows `max_component_edges`
  // outright, or -- much earlier on giant-component graphs -- once the
  // reach has traversed a quarter of the cap and a single component
  // holds more than half of everything traversed so far. Block-rich
  // graphs never trip the concentration test (each community holds a
  // small slice of the total), while a web-shaped giant trips it within
  // a few percent of a pass, so the monolithic fallback pays almost
  // nothing.
  ComponentForest forest(nx + ny);
  const auto col_node = [nx](vid_t y) {
    return static_cast<std::int64_t>(nx) + static_cast<std::int64_t>(y);
  };
  std::int64_t total_weight = 0;  // sum of degree_x over V rows so far
  const auto gate_trips = [&](std::int64_t weight) {
    if (max_component_edges <= 0) return false;
    if (weight > max_component_edges) return true;
    return total_weight * 4 >= max_component_edges &&
           weight * 2 > total_weight;
  };
  std::vector<vid_t> frontier;
  std::vector<vid_t> next;
  bool aborted = false;
  // The pre-scan above already bounded the seeds' combined degree, so
  // this fill runs gate-free.
  for (vid_t x = 0; x < g.num_x(); ++x) {
    if (m0.is_matched_x(x)) continue;
    v_rows[static_cast<std::size_t>(x)] = 1;
    forest.edges[static_cast<std::size_t>(x)] = g.degree_x(x);
    total_weight += g.degree_x(x);
    frontier.push_back(x);
  }
  while (!frontier.empty() && !aborted) {
    next.clear();
    for (const vid_t x : frontier) {
      for (const vid_t y : g.neighbors_of_x(x)) {
        if (m0.mate_of_x(x) == y) continue;  // pair already joined below
        // Union even when y is already marked: that is exactly how
        // distinct alternating trees merge into one G[V] component.
        const std::int64_t weight = forest.unite(x, col_node(y));
        if (gate_trips(weight)) {
          aborted = true;
          break;
        }
        if (v_cols[static_cast<std::size_t>(y)]) continue;
        v_cols[static_cast<std::size_t>(y)] = 1;
        const vid_t mate = m0.mate_of_y(y);
        if (mate == kInvalidVertex ||
            v_rows[static_cast<std::size_t>(mate)]) {
          continue;
        }
        v_rows[static_cast<std::size_t>(mate)] = 1;
        forest.unite(col_node(y), mate);
        const std::int64_t root = forest.find(mate);
        forest.edges[static_cast<std::size_t>(root)] += g.degree_x(mate);
        total_weight += g.degree_x(mate);
        if (gate_trips(forest.edges[static_cast<std::size_t>(root)])) {
          aborted = true;
          break;
        }
        next.push_back(mate);
      }
      if (aborted) break;
    }
    frontier.swap(next);
  }
  if (aborted) {
    c.aborted = true;
    return c;
  }

  std::vector<std::uint8_t> h_row_mark(nx, 0);
  std::vector<std::uint8_t> h_col_mark(ny, 0);
  reach_from_cols(g, m0, h_row_mark, h_col_mark);

  // V wins over H, mirroring dm_decompose. With a maximum matching the
  // two reaches are disjoint and the priority never fires; with a
  // non-maximum M0 an overlap marks an augmenting path's territory,
  // which must land in V for the solvable blocks to capture it.
  std::vector<vid_t> v_row_list;
  std::vector<vid_t> v_col_list;
  for (std::size_t x = 0; x < nx; ++x) {
    if (v_rows[x]) {
      c.row_class[x] = DmBlock::kVertical;
      v_row_list.push_back(static_cast<vid_t>(x));
    } else if (h_row_mark[x]) {
      c.row_class[x] = DmBlock::kHorizontal;
      c.h_rows += 1;
    } else {
      c.s_rows += 1;
    }
  }
  for (std::size_t y = 0; y < ny; ++y) {
    if (v_cols[y]) {
      c.col_class[y] = DmBlock::kVertical;
      v_col_list.push_back(static_cast<vid_t>(y));
    } else if (h_col_mark[y]) {
      c.col_class[y] = DmBlock::kHorizontal;
      c.h_cols += 1;
    } else {
      c.s_cols += 1;
    }
  }

  // Compact union-find roots into dense component ids and tally. Each
  // V row contributes its full degree to its component's edge count
  // (all its neighbors are V and in the same component, and each edge
  // is counted once, from the row side).
  std::vector<std::int64_t> root_to_comp(nx + ny, -1);
  for (const vid_t x : v_row_list) {
    const auto root = static_cast<std::size_t>(
        forest.find(static_cast<std::int64_t>(x)));
    std::int64_t id = root_to_comp[root];
    if (id == -1) {
      id = static_cast<std::int64_t>(c.components.size());
      root_to_comp[root] = id;
      c.components.emplace_back();
    }
    c.row_component[static_cast<std::size_t>(x)] = id;
    ShardComponent& comp = c.components[static_cast<std::size_t>(id)];
    comp.rows += 1;
    comp.edges += g.degree_x(x);
    if (m0.is_matched_x(x)) {
      comp.matched += 1;
    } else {
      comp.unmatched_rows += 1;
    }
  }
  for (const vid_t y : v_col_list) {
    const auto root = static_cast<std::size_t>(forest.find(col_node(y)));
    std::int64_t id = root_to_comp[root];
    if (id == -1) {
      // A V column is always adjacent to the V row that reached it, so
      // this is a belt-and-braces branch that keeps malformed inputs
      // total rather than a path real graphs take.
      id = static_cast<std::int64_t>(c.components.size());
      root_to_comp[root] = id;
      c.components.emplace_back();
    }
    c.col_component[static_cast<std::size_t>(y)] = id;
    ShardComponent& comp = c.components[static_cast<std::size_t>(id)];
    comp.cols += 1;
    if (!m0.is_matched_y(y)) comp.unmatched_cols += 1;
  }
  return c;
}

std::vector<ShardBlock> extract_blocks(const BipartiteGraph& g,
                                       const Matching& m0,
                                       const ShardClassification& c) {
  // Component -> block index for the solvable components only.
  std::vector<std::int64_t> block_of(c.components.size(), -1);
  std::vector<ShardBlock> blocks;
  for (std::size_t i = 0; i < c.components.size(); ++i) {
    if (!c.components[i].solvable()) continue;
    block_of[i] = static_cast<std::int64_t>(blocks.size());
    ShardBlock block;
    block.component = static_cast<std::int64_t>(i);
    block.x_ids.reserve(static_cast<std::size_t>(c.components[i].rows));
    block.y_ids.reserve(static_cast<std::size_t>(c.components[i].cols));
    blocks.push_back(std::move(block));
  }
  if (blocks.empty()) return blocks;

  // Global -> local id maps. Scanning ids in ascending order keeps each
  // block's id lists sorted, which in turn keeps the remapped neighbor
  // lists strictly ascending (the canonical-CSR precondition).
  std::vector<vid_t> y_local(static_cast<std::size_t>(g.num_y()),
                             kInvalidVertex);
  for (vid_t x = 0; x < g.num_x(); ++x) {
    const std::int64_t comp = c.row_component[static_cast<std::size_t>(x)];
    if (comp == -1) continue;
    const std::int64_t b = block_of[static_cast<std::size_t>(comp)];
    if (b == -1) continue;
    blocks[static_cast<std::size_t>(b)].x_ids.push_back(x);
  }
  for (vid_t y = 0; y < g.num_y(); ++y) {
    const std::int64_t comp = c.col_component[static_cast<std::size_t>(y)];
    if (comp == -1) continue;
    const std::int64_t b = block_of[static_cast<std::size_t>(comp)];
    if (b == -1) continue;
    ShardBlock& block = blocks[static_cast<std::size_t>(b)];
    y_local[static_cast<std::size_t>(y)] =
        static_cast<vid_t>(block.y_ids.size());
    block.y_ids.push_back(y);
  }

  for (ShardBlock& block : blocks) {
    const ShardComponent& comp =
        c.components[static_cast<std::size_t>(block.component)];
    const std::int64_t id = block.component;
    std::vector<eid_t> offsets;
    offsets.reserve(block.x_ids.size() + 1);
    offsets.push_back(0);
    std::vector<vid_t> neighbors;
    neighbors.reserve(static_cast<std::size_t>(comp.edges));
    for (const vid_t x : block.x_ids) {
      for (const vid_t y : g.neighbors_of_x(x)) {
        if (c.col_component[static_cast<std::size_t>(y)] != id) continue;
        neighbors.push_back(y_local[static_cast<std::size_t>(y)]);
      }
      offsets.push_back(static_cast<eid_t>(neighbors.size()));
    }
    block.graph = BipartiteGraph::from_canonical_csr(
        std::move(offsets), std::move(neighbors),
        static_cast<vid_t>(block.y_ids.size()));

    block.initial = Matching(static_cast<vid_t>(block.x_ids.size()),
                             static_cast<vid_t>(block.y_ids.size()));
    for (std::size_t i = 0; i < block.x_ids.size(); ++i) {
      const vid_t y = m0.mate_of_x(block.x_ids[i]);
      if (y == kInvalidVertex) continue;
      // A matched pair never crosses a class, hence never a component:
      // its global mate must live in this block.
      const vid_t j = y_local[static_cast<std::size_t>(y)];
      assert(j != kInvalidVertex);
      block.initial.match(static_cast<vid_t>(i), j);
    }
  }
  return blocks;
}

void stitch_block(const ShardBlock& block, const Matching& local,
                  Matching& global) {
  if (local.num_x() != static_cast<vid_t>(block.x_ids.size()) ||
      local.num_y() != static_cast<vid_t>(block.y_ids.size())) {
    throw std::invalid_argument("stitch_block: local matching shape mismatch");
  }
  // Clear every stale M0 edge on the block first; interleaving the
  // unmatch with the re-match could leave a half-updated pair when the
  // local solution rewires a column to a different row.
  for (const vid_t x : block.x_ids) global.unmatch_x(x);
  for (std::size_t i = 0; i < block.x_ids.size(); ++i) {
    const vid_t j = local.mate_of_x(static_cast<vid_t>(i));
    if (j == kInvalidVertex) continue;
    global.match(block.x_ids[i], block.y_ids[static_cast<std::size_t>(j)]);
  }
}

}  // namespace graftmatch::shard
