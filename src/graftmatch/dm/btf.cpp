#include "graftmatch/dm/btf.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "graftmatch/graph/transforms.hpp"

namespace graftmatch {
namespace {

// Iterative Tarjan SCC over the contracted square-part digraph.
// Nodes are matched (row, col) pairs, identified by an index into
// `square_rows`; there is an arc u -> v when A[row_u, col_v] != 0.
// Returns, per node, a component id numbered in TOPOLOGICAL order
// (arcs go from lower to higher component ids... from lower-or-equal).
class SquareSccSolver {
 public:
  SquareSccSolver(const BipartiteGraph& g,
                  const std::vector<vid_t>& square_rows,
                  const std::vector<vid_t>& col_to_node)
      : g_(g), square_rows_(square_rows), col_to_node_(col_to_node) {}

  std::vector<std::int64_t> solve(std::int64_t& num_components) {
    const auto n = static_cast<std::int64_t>(square_rows_.size());
    index_.assign(static_cast<std::size_t>(n), kUnvisited);
    lowlink_.assign(static_cast<std::size_t>(n), 0);
    on_stack_.assign(static_cast<std::size_t>(n), 0);
    component_.assign(static_cast<std::size_t>(n), -1);
    next_index_ = 0;
    component_count_ = 0;

    for (std::int64_t v = 0; v < n; ++v) {
      if (index_[static_cast<std::size_t>(v)] == kUnvisited) visit(v);
    }

    // Tarjan emits components in reverse topological order; flip ids so
    // arcs run from lower ids to higher ids (upper triangular layout).
    for (auto& c : component_) c = component_count_ - 1 - c;
    num_components = component_count_;
    return std::move(component_);
  }

 private:
  static constexpr std::int64_t kUnvisited = -1;

  // Arc targets of node u: other square pairs whose column appears in
  // u's row.
  template <typename Fn>
  void for_each_arc(std::int64_t u, Fn&& fn) const {
    const vid_t row = square_rows_[static_cast<std::size_t>(u)];
    for (const vid_t y : g_.neighbors_of_x(row)) {
      const std::int64_t v = col_to_node_[static_cast<std::size_t>(y)];
      if (v >= 0 && v != u) fn(v);
    }
  }

  void visit(std::int64_t start) {
    struct Frame {
      std::int64_t node;
      std::size_t arc_pos;  // progress through the node's arc list
    };
    // Materializing arc lists per frame keeps the iterative DFS simple;
    // square parts are small relative to the full graph.
    std::vector<Frame> call_stack;
    std::vector<std::vector<std::int64_t>> arcs_stack;

    const auto push_node = [&](std::int64_t v) {
      index_[static_cast<std::size_t>(v)] = next_index_;
      lowlink_[static_cast<std::size_t>(v)] = next_index_;
      ++next_index_;
      scc_stack_.push_back(v);
      on_stack_[static_cast<std::size_t>(v)] = 1;
      call_stack.push_back({v, 0});
      std::vector<std::int64_t> arcs;
      for_each_arc(v, [&arcs](std::int64_t w) { arcs.push_back(w); });
      arcs_stack.push_back(std::move(arcs));
    };

    push_node(start);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::int64_t v = frame.node;
      auto& arcs = arcs_stack.back();

      if (frame.arc_pos < arcs.size()) {
        const std::int64_t w = arcs[frame.arc_pos++];
        if (index_[static_cast<std::size_t>(w)] == kUnvisited) {
          push_node(w);
        } else if (on_stack_[static_cast<std::size_t>(w)]) {
          lowlink_[static_cast<std::size_t>(v)] =
              std::min(lowlink_[static_cast<std::size_t>(v)],
                       index_[static_cast<std::size_t>(w)]);
        }
        continue;
      }

      // v is finished: close its component if it is a root.
      if (lowlink_[static_cast<std::size_t>(v)] ==
          index_[static_cast<std::size_t>(v)]) {
        for (;;) {
          const std::int64_t w = scc_stack_.back();
          scc_stack_.pop_back();
          on_stack_[static_cast<std::size_t>(w)] = 0;
          component_[static_cast<std::size_t>(w)] = component_count_;
          if (w == v) break;
        }
        ++component_count_;
      }
      call_stack.pop_back();
      arcs_stack.pop_back();
      if (!call_stack.empty()) {
        const std::int64_t parent = call_stack.back().node;
        lowlink_[static_cast<std::size_t>(parent)] =
            std::min(lowlink_[static_cast<std::size_t>(parent)],
                     lowlink_[static_cast<std::size_t>(v)]);
      }
    }
  }

  const BipartiteGraph& g_;
  const std::vector<vid_t>& square_rows_;
  const std::vector<vid_t>& col_to_node_;

  std::vector<std::int64_t> index_;
  std::vector<std::int64_t> lowlink_;
  std::vector<std::uint8_t> on_stack_;
  std::vector<std::int64_t> component_;
  std::vector<std::int64_t> scc_stack_;
  std::int64_t next_index_ = 0;
  std::int64_t component_count_ = 0;
};

int block_rank(DmBlock block) {
  switch (block) {
    case DmBlock::kHorizontal: return 0;
    case DmBlock::kSquare: return 1;
    case DmBlock::kVertical: return 2;
  }
  return 3;
}

}  // namespace

BlockTriangularForm block_triangular_form(const BipartiteGraph& g) {
  return block_triangular_form(g, dm_decompose(g));
}

BlockTriangularForm block_triangular_form(const BipartiteGraph& g,
                                          DmDecomposition dm) {
  BlockTriangularForm btf;

  // Collect the square pairs (node list of the contracted digraph).
  std::vector<vid_t> square_rows;
  std::vector<vid_t> col_to_node(static_cast<std::size_t>(g.num_y()), -1);
  for (vid_t x = 0; x < g.num_x(); ++x) {
    if (dm.row_block[static_cast<std::size_t>(x)] != DmBlock::kSquare)
      continue;
    const vid_t y = dm.matching.mate_of_x(x);
    col_to_node[static_cast<std::size_t>(y)] =
        static_cast<vid_t>(square_rows.size());
    square_rows.push_back(x);
  }

  std::int64_t num_blocks = 0;
  std::vector<std::int64_t> node_block;
  if (!square_rows.empty()) {
    SquareSccSolver solver(g, square_rows, col_to_node);
    node_block = solver.solve(num_blocks);
  }

  // Order square nodes by block id (stable, so ties keep node order).
  std::vector<std::int64_t> node_order(square_rows.size());
  for (std::size_t i = 0; i < node_order.size(); ++i) {
    node_order[i] = static_cast<std::int64_t>(i);
  }
  std::stable_sort(node_order.begin(), node_order.end(),
                   [&node_block](std::int64_t a, std::int64_t b) {
                     return node_block[static_cast<std::size_t>(a)] <
                            node_block[static_cast<std::size_t>(b)];
                   });

  // Assemble permutations: horizontal, then square (block order), then
  // vertical; columns mirror rows so square diagonals carry the
  // matching.
  const auto append_rows = [&](DmBlock block) {
    for (vid_t x = 0; x < g.num_x(); ++x) {
      if (dm.row_block[static_cast<std::size_t>(x)] == block) {
        btf.row_perm.push_back(x);
      }
    }
  };
  const auto append_cols = [&](DmBlock block) {
    for (vid_t y = 0; y < g.num_y(); ++y) {
      if (dm.col_block[static_cast<std::size_t>(y)] == block) {
        btf.col_perm.push_back(y);
      }
    }
  };

  append_rows(DmBlock::kHorizontal);
  append_cols(DmBlock::kHorizontal);
  btf.square_row_begin = static_cast<std::int64_t>(btf.row_perm.size());
  btf.square_col_begin = static_cast<std::int64_t>(btf.col_perm.size());

  btf.block_offsets.push_back(0);
  std::int64_t previous_block = -1;
  for (const std::int64_t node : node_order) {
    const std::int64_t block = node_block[static_cast<std::size_t>(node)];
    if (block != previous_block && previous_block != -1) {
      btf.block_offsets.push_back(static_cast<std::int64_t>(
          btf.row_perm.size()) - btf.square_row_begin);
    }
    previous_block = block;
    const vid_t row = square_rows[static_cast<std::size_t>(node)];
    btf.row_perm.push_back(row);
    btf.col_perm.push_back(dm.matching.mate_of_x(row));
  }
  btf.block_offsets.push_back(
      static_cast<std::int64_t>(btf.row_perm.size()) - btf.square_row_begin);
  if (square_rows.empty()) {
    btf.block_offsets.assign({0});  // zero blocks
  }

  btf.square_row_end = static_cast<std::int64_t>(btf.row_perm.size());
  btf.square_col_end = static_cast<std::int64_t>(btf.col_perm.size());
  append_rows(DmBlock::kVertical);
  append_cols(DmBlock::kVertical);

  btf.dm_ = std::move(dm);
  return btf;
}

bool verify_btf(const BipartiteGraph& g, const BlockTriangularForm& btf) {
  if (static_cast<vid_t>(btf.row_perm.size()) != g.num_x() ||
      static_cast<vid_t>(btf.col_perm.size()) != g.num_y()) {
    return false;
  }
  if (!is_permutation(btf.row_perm) || !is_permutation(btf.col_perm)) {
    return false;
  }
  const DmDecomposition& dm = btf.decomposition();

  // Coarse zero structure: a nonzero (x, y) must satisfy
  // rank(row block) <= rank(col block) in (H=0, S=1, V=2) order.
  for (vid_t x = 0; x < g.num_x(); ++x) {
    const int row_rank = block_rank(dm.row_block[static_cast<std::size_t>(x)]);
    for (const vid_t y : g.neighbors_of_x(x)) {
      if (row_rank > block_rank(dm.col_block[static_cast<std::size_t>(y)])) {
        return false;
      }
    }
  }

  // Square part: diagonal carries the matching, and nonzeros respect
  // block upper triangularity.
  std::vector<std::int64_t> row_to_square_block(
      static_cast<std::size_t>(g.num_x()), -1);
  std::vector<std::int64_t> col_to_square_block(
      static_cast<std::size_t>(g.num_y()), -1);
  for (std::int64_t b = 0; b + 1 < static_cast<std::int64_t>(
                                       btf.block_offsets.size());
       ++b) {
    for (std::int64_t i = btf.block_offsets[static_cast<std::size_t>(b)];
         i < btf.block_offsets[static_cast<std::size_t>(b) + 1]; ++i) {
      const auto row_pos = static_cast<std::size_t>(btf.square_row_begin + i);
      const auto col_pos = static_cast<std::size_t>(btf.square_col_begin + i);
      const vid_t row = btf.row_perm[row_pos];
      const vid_t col = btf.col_perm[col_pos];
      if (!g.has_edge(row, col)) return false;  // diagonal must be nonzero
      row_to_square_block[static_cast<std::size_t>(row)] = b;
      col_to_square_block[static_cast<std::size_t>(col)] = b;
    }
  }
  for (vid_t x = 0; x < g.num_x(); ++x) {
    const std::int64_t rb = row_to_square_block[static_cast<std::size_t>(x)];
    if (rb < 0) continue;
    for (const vid_t y : g.neighbors_of_x(x)) {
      const std::int64_t cb = col_to_square_block[static_cast<std::size_t>(y)];
      if (cb >= 0 && rb > cb) return false;
    }
  }
  return true;
}

}  // namespace graftmatch
