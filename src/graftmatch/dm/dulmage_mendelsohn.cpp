#include "graftmatch/dm/dulmage_mendelsohn.hpp"

#include <algorithm>

#include "graftmatch/core/ms_bfs_graft.hpp"
#include "graftmatch/init/karp_sipser.hpp"

namespace graftmatch {
namespace {

// Alternating BFS over X (rows): from the unmatched rows, rows reach
// columns over unmatched edges and columns reach their matched row.
// Marks every reached row and column.
void alternating_reach_from_rows(const BipartiteGraph& g, const Matching& m,
                                 std::vector<std::uint8_t>& row_mark,
                                 std::vector<std::uint8_t>& col_mark) {
  std::vector<vid_t> frontier;
  std::vector<vid_t> next;
  for (vid_t x = 0; x < g.num_x(); ++x) {
    if (!m.is_matched_x(x)) {
      row_mark[static_cast<std::size_t>(x)] = 1;
      frontier.push_back(x);
    }
  }
  while (!frontier.empty()) {
    next.clear();
    for (const vid_t x : frontier) {
      for (const vid_t y : g.neighbors_of_x(x)) {
        if (col_mark[static_cast<std::size_t>(y)]) continue;
        if (m.mate_of_x(x) == y) continue;
        col_mark[static_cast<std::size_t>(y)] = 1;
        const vid_t mate = m.mate_of_y(y);
        if (mate != kInvalidVertex &&
            !row_mark[static_cast<std::size_t>(mate)]) {
          row_mark[static_cast<std::size_t>(mate)] = 1;
          next.push_back(mate);
        }
      }
    }
    frontier.swap(next);
  }
}

// Mirror image: alternating BFS from the unmatched columns.
void alternating_reach_from_cols(const BipartiteGraph& g, const Matching& m,
                                 std::vector<std::uint8_t>& row_mark,
                                 std::vector<std::uint8_t>& col_mark) {
  std::vector<vid_t> frontier;
  std::vector<vid_t> next;
  for (vid_t y = 0; y < g.num_y(); ++y) {
    if (!m.is_matched_y(y)) {
      col_mark[static_cast<std::size_t>(y)] = 1;
      frontier.push_back(y);
    }
  }
  while (!frontier.empty()) {
    next.clear();
    for (const vid_t y : frontier) {
      for (const vid_t x : g.neighbors_of_y(y)) {
        if (row_mark[static_cast<std::size_t>(x)]) continue;
        if (m.mate_of_y(y) == x) continue;
        row_mark[static_cast<std::size_t>(x)] = 1;
        const vid_t mate = m.mate_of_x(x);
        if (mate != kInvalidVertex &&
            !col_mark[static_cast<std::size_t>(mate)]) {
          col_mark[static_cast<std::size_t>(mate)] = 1;
          next.push_back(mate);
        }
      }
    }
    frontier.swap(next);
  }
}

}  // namespace

std::int64_t DmDecomposition::rows_in(DmBlock block) const noexcept {
  return std::count(row_block.begin(), row_block.end(), block);
}

std::int64_t DmDecomposition::cols_in(DmBlock block) const noexcept {
  return std::count(col_block.begin(), col_block.end(), block);
}

DmDecomposition dm_decompose(const BipartiteGraph& g) {
  Matching matching = karp_sipser(g);
  ms_bfs_graft(g, matching);
  return dm_decompose(g, std::move(matching));
}

DmDecomposition dm_decompose(const BipartiteGraph& g, Matching matching) {
  DmDecomposition dm;
  dm.row_block.assign(static_cast<std::size_t>(g.num_x()), DmBlock::kSquare);
  dm.col_block.assign(static_cast<std::size_t>(g.num_y()), DmBlock::kSquare);

  // Vertical part: reachable from unmatched rows.
  std::vector<std::uint8_t> v_rows(static_cast<std::size_t>(g.num_x()), 0);
  std::vector<std::uint8_t> v_cols(static_cast<std::size_t>(g.num_y()), 0);
  alternating_reach_from_rows(g, matching, v_rows, v_cols);

  // Horizontal part: reachable from unmatched columns.
  std::vector<std::uint8_t> h_rows(static_cast<std::size_t>(g.num_x()), 0);
  std::vector<std::uint8_t> h_cols(static_cast<std::size_t>(g.num_y()), 0);
  alternating_reach_from_cols(g, matching, h_rows, h_cols);

  // With a maximum matching the two reachable sets are disjoint (an
  // overlap would expose an augmenting path).
  for (vid_t x = 0; x < g.num_x(); ++x) {
    if (v_rows[static_cast<std::size_t>(x)]) {
      dm.row_block[static_cast<std::size_t>(x)] = DmBlock::kVertical;
    } else if (h_rows[static_cast<std::size_t>(x)]) {
      dm.row_block[static_cast<std::size_t>(x)] = DmBlock::kHorizontal;
    }
  }
  for (vid_t y = 0; y < g.num_y(); ++y) {
    if (v_cols[static_cast<std::size_t>(y)]) {
      dm.col_block[static_cast<std::size_t>(y)] = DmBlock::kVertical;
    } else if (h_cols[static_cast<std::size_t>(y)]) {
      dm.col_block[static_cast<std::size_t>(y)] = DmBlock::kHorizontal;
    }
  }

  dm.matching = std::move(matching);
  return dm;
}

}  // namespace graftmatch
