// Dulmage-Mendelsohn decomposition -- the paper's motivating application
// (Sec. I): a maximum matching of the bipartite row/column graph of a
// sparse matrix induces a canonical partition of rows and columns into
//
//   * horizontal part (HR x HC): underdetermined, |HC| > |HR|
//     (columns reachable by alternating paths from unmatched columns,
//     plus their matched rows);
//   * square part (SR x SC): perfectly matched, |SR| == |SC|;
//   * vertical part (VR x VC): overdetermined, |VR| > |VC|
//     (rows reachable by alternating paths from unmatched rows, plus
//     their matched columns).
//
// Permuting the matrix to (H, S, V) order exposes a coarse block
// triangular structure; the fine decomposition (see btf.hpp) further
// splits the square part by strongly connected components.
#pragma once

#include <cstdint>
#include <vector>

#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

enum class DmBlock : std::uint8_t {
  kHorizontal = 0,
  kSquare = 1,
  kVertical = 2,
};

struct DmDecomposition {
  std::vector<DmBlock> row_block;  ///< size nx
  std::vector<DmBlock> col_block;  ///< size ny
  Matching matching;               ///< the maximum matching used

  std::int64_t rows_in(DmBlock block) const noexcept;
  std::int64_t cols_in(DmBlock block) const noexcept;

  /// The matrix has full structural row (column) rank iff the
  /// horizontal (vertical) part is empty... structural rank itself is
  /// the matching cardinality.
  std::int64_t structural_rank() const noexcept {
    return matching.cardinality();
  }
};

/// Compute the coarse decomposition. Uses MS-BFS-Graft (with Karp-Sipser
/// initialization) for the maximum matching.
DmDecomposition dm_decompose(const BipartiteGraph& g);

/// Same, reusing a caller-provided MAXIMUM matching (not verified here;
/// pass the output of any library algorithm).
DmDecomposition dm_decompose(const BipartiteGraph& g, Matching matching);

}  // namespace graftmatch
