// Block triangular form (BTF) via the fine Dulmage-Mendelsohn
// decomposition: the square part of the coarse decomposition is split
// into irreducible diagonal blocks -- the strongly connected components
// of the digraph obtained by contracting each matched (row, column)
// pair -- and ordered topologically. Permuting rows and columns to
//
//      [ H  *  * ]
//      [ 0  S  * ]      with S itself block upper triangular
//      [ 0  0  V ]
//
// lets sparse solvers factor each irreducible block independently (the
// circuit-simulation use case the paper cites [2]).
#pragma once

#include <cstdint>
#include <vector>

#include "graftmatch/dm/dulmage_mendelsohn.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch {

struct BlockTriangularForm {
  /// Row/column permutations: position i of the permuted matrix holds
  /// original row row_perm[i] / column col_perm[i].
  std::vector<vid_t> row_perm;
  std::vector<vid_t> col_perm;

  /// Permuted-row index where the square part starts / ends (the
  /// horizontal part occupies rows [0, square_row_begin), the vertical
  /// part rows [square_row_end, nx)). Same convention for columns.
  std::int64_t square_row_begin = 0;
  std::int64_t square_row_end = 0;
  std::int64_t square_col_begin = 0;
  std::int64_t square_col_end = 0;

  /// Diagonal block boundaries inside the square part: block b spans
  /// permuted rows/cols [block_offsets[b], block_offsets[b+1]) relative
  /// to square_*_begin. Blocks appear in topological order, so every
  /// square-part nonzero lies on or above its diagonal block.
  std::vector<std::int64_t> block_offsets;

  std::int64_t num_square_blocks() const noexcept {
    return static_cast<std::int64_t>(block_offsets.size()) - 1;
  }

  const DmDecomposition& decomposition() const noexcept { return dm_; }
  DmDecomposition dm_;
};

/// Compute the BTF of g (rows = X, columns = Y). Uses MS-BFS-Graft for
/// the maximum matching; pass a decomposition to reuse one.
BlockTriangularForm block_triangular_form(const BipartiteGraph& g);
BlockTriangularForm block_triangular_form(const BipartiteGraph& g,
                                          DmDecomposition dm);

/// Structural checks used by tests and examples: zero blocks of the
/// coarse form and upper block triangularity of the square part.
bool verify_btf(const BipartiteGraph& g, const BlockTriangularForm& btf);

}  // namespace graftmatch
