// Unix-domain-socket front end for MatchServer.
//
// A deliberately thin layer: UdsServer accepts stream connections on a
// filesystem socket and, per connection, loops read_frame -> decode ->
// MatchServer::solve -> encode -> write_frame. All concurrency policy
// (worker pool, admission control, cardinality audit) lives in
// MatchServer; this file only moves frames. Each connection gets its
// own thread because a connection is a session of blocking
// request/response exchanges and MatchServer::solve already applies
// backpressure via rejected responses.
//
// Shutdown: the accept loop polls with a short timeout so stop() can
// ask it to exit, and open connection fds are shutdown() so blocked
// reads return; every spawned thread is joined before stop() returns.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graftmatch/serve/protocol.hpp"
#include "graftmatch/serve/server.hpp"

namespace graftmatch::serve {

class UdsServer {
 public:
  /// `server` must outlive this object. The socket is not created until
  /// start().
  UdsServer(MatchServer& server, std::string socket_path);
  ~UdsServer();
  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Bind + listen on the socket path (unlinking any stale socket
  /// first) and launch the accept loop. Returns false with `error` set
  /// on any socket-layer failure.
  bool start(std::string& error);

  /// Stop accepting, cut open connections, join all threads, unlink
  /// the socket. Idempotent.
  void stop();

  const std::string& socket_path() const noexcept { return socket_path_; }
  bool running() const noexcept { return listen_fd_ >= 0; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  MatchServer& server_;
  const std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

/// Blocking client for one connection's worth of request/response
/// exchanges. Not thread-safe; use one client per thread.
class UdsClient {
 public:
  UdsClient() = default;
  ~UdsClient();
  UdsClient(const UdsClient&) = delete;
  UdsClient& operator=(const UdsClient&) = delete;

  bool connect(const std::string& socket_path, std::string& error);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// One round trip. Returns false (with `error` set) on transport or
  /// decode failure; a server-side failure is a successful round trip
  /// with response.ok == false.
  bool request(const MatchRequest& request, MatchResponse& response,
               std::string& error);

 private:
  int fd_ = -1;
};

}  // namespace graftmatch::serve
