// Unix-domain-socket front end for MatchServer.
//
// A deliberately thin layer: UdsServer accepts stream connections on a
// filesystem socket and, per connection, loops read_frame -> decode ->
// MatchServer::solve -> encode -> write_frame. All concurrency policy
// (worker pool, batching, admission control, cardinality audit) lives
// in MatchServer; this file only moves frames. Each connection gets its
// own thread because a connection is a session of blocking
// request/response exchanges and MatchServer::solve already applies
// backpressure via rejected responses.
//
// Connection lifecycle discipline (the ordering is the point):
//  * a serving thread DEREGISTERS its fd from the connection table
//    (under the lock) BEFORE calling ::close() on it, so stop() can
//    never shutdown() an fd number the kernel has already recycled for
//    a new connection or any other subsystem;
//  * finished connection entries are reaped (joined and erased) by the
//    accept loop on every iteration, so the table stays proportional to
//    LIVE connections instead of growing for the server's lifetime.
//
// Shutdown: the accept loop polls with a short timeout so stop() can
// ask it to exit, and open connection fds are shutdown() so blocked
// reads return; every spawned thread is joined before stop() returns.
#pragma once

#include <atomic>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "graftmatch/serve/protocol.hpp"
#include "graftmatch/serve/server.hpp"

namespace graftmatch::serve {

class UdsServer {
 public:
  /// `server` must outlive this object. The socket is not created until
  /// start().
  UdsServer(MatchServer& server, std::string socket_path);
  ~UdsServer();
  UdsServer(const UdsServer&) = delete;
  UdsServer& operator=(const UdsServer&) = delete;

  /// Bind + listen on the socket path (unlinking any stale socket
  /// first) and launch the accept loop. Returns false with `error` set
  /// on any socket-layer failure.
  bool start(std::string& error);

  /// Stop accepting, cut open connections, join all threads, unlink
  /// the socket. Idempotent.
  void stop();

  const std::string& socket_path() const noexcept { return socket_path_; }
  bool running() const noexcept { return listen_fd_ >= 0; }

  /// Connection entries currently tracked (live + finished-but-not-yet-
  /// reaped). Drops back toward zero as the accept loop reaps; the
  /// churn tests assert it does not grow monotonically.
  std::size_t tracked_connections() const;

 private:
  /// One accepted connection: its fd (reset to -1 when the serving
  /// thread deregisters it, after which stop() must not touch it) and
  /// the serving thread, reaped once `finished` is set. std::list keeps
  /// entry addresses stable for the serving thread's back-pointer.
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void accept_loop();
  void serve_connection(Connection& connection);
  /// Join and erase every finished entry.
  void reap_finished();

  MatchServer& server_;
  const std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  mutable std::mutex connections_mutex_;
  std::list<Connection> connections_;
};

/// Blocking client for one connection's worth of request/response
/// exchanges. Not thread-safe; use one client per thread.
class UdsClient {
 public:
  UdsClient() = default;
  ~UdsClient();
  UdsClient(const UdsClient&) = delete;
  UdsClient& operator=(const UdsClient&) = delete;

  bool connect(const std::string& socket_path, std::string& error);
  void close();
  bool connected() const noexcept { return fd_ >= 0; }

  /// One round trip. Returns false (with `error` set) on transport,
  /// encode (control characters in a request field), or decode failure;
  /// a server-side failure is a successful round trip with
  /// response.ok == false.
  bool request(const MatchRequest& request, MatchResponse& response,
               std::string& error);

 private:
  int fd_ = -1;
};

}  // namespace graftmatch::serve
