#include "graftmatch/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch::serve {

MatchServer::MatchServer(const GraphRoster& roster, ServerOptions options)
    : roster_(roster),
      options_(options),
      queue_(options.queue_capacity),
      scheduler_(queue_,
                 BatchOptions{options.batch_max, options.batch_window_us}),
      service_ewma_ms_(options.assumed_service_ms > 0.0
                           ? options.assumed_service_ms
                           : 0.0) {
  if (options_.autostart) start();
}

MatchServer::~MatchServer() { stop(); }

void MatchServer::start() {
  if (started_ || stopped_) return;
  started_ = true;
  const int workers = options_.workers > 0 ? options_.workers : 1;
  sessions_.reserve(static_cast<std::size_t>(workers));
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    sessions_.push_back(std::make_unique<SessionContext>());
    SessionContext& session = *sessions_.back();
    workers_.emplace_back([this, &session] { worker_loop(session); });
  }
}

void MatchServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

double MatchServer::estimated_backlog_ms() const {
  const double per_request = service_ewma_ms_.load(std::memory_order_relaxed);
  if (per_request <= 0.0) return 0.0;
  const double workers =
      static_cast<double>(std::max(1, options_.workers));
  // Conservative on purpose: this assumes the backlog drains one
  // request per solve. Batching usually drains same-key runs faster, so
  // the gate over-rejects tight deadlines rather than admitting work
  // destined to expire in the queue.
  return static_cast<double>(queue_.size()) * per_request / workers;
}

void MatchServer::record_service_ms(double per_request_ms) {
  double current = service_ewma_ms_.load(std::memory_order_relaxed);
  double next;
  do {
    next = current <= 0.0 ? per_request_ms
                          : 0.75 * current + 0.25 * per_request_ms;
  } while (!service_ewma_ms_.compare_exchange_weak(
      current, next, std::memory_order_relaxed));
}

bool MatchServer::try_submit(MatchRequest request,
                             std::future<MatchResponse>& response,
                             std::string* reject_reason) {
  ServerTask task;
  if (request.deadline_ms > 0) {
    // Admission half of deadline enforcement: when the backlog already
    // implies this deadline cannot be met, reject now instead of
    // queueing a request destined to expire.
    const double backlog_ms = estimated_backlog_ms();
    if (backlog_ms > static_cast<double>(request.deadline_ms)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (reject_reason != nullptr) {
        *reject_reason = "deadline of " + std::to_string(request.deadline_ms) +
                         " ms unmeetable: estimated backlog is " +
                         std::to_string(static_cast<std::int64_t>(backlog_ms)) +
                         " ms";
      }
      return false;
    }
    task.has_deadline = true;
    task.deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(request.deadline_ms);
  }
  task.request = std::move(request);
  std::future<MatchResponse> pending = task.promise.get_future();
  if (!queue_.try_push(std::move(task))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (reject_reason != nullptr) {
      *reject_reason = "server at capacity (queue full or stopped)";
    }
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  response = std::move(pending);
  return true;
}

MatchResponse MatchServer::solve(MatchRequest request) {
  const std::string graph = request.graph;
  std::future<MatchResponse> pending;
  std::string reason;
  if (!try_submit(std::move(request), pending, &reason)) {
    MatchResponse response;
    response.ok = false;
    response.rejected = true;
    response.graph = graph;
    response.error = reason;
    return response;
  }
  return pending.get();
}

ServerCounters MatchServer::counters() const {
  ServerCounters counters;
  counters.accepted = accepted_.load(std::memory_order_relaxed);
  counters.rejected = rejected_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.failed = failed_.load(std::memory_order_relaxed);
  counters.expired = expired_.load(std::memory_order_relaxed);
  counters.batches = batches_.load(std::memory_order_relaxed);
  counters.coalesced = coalesced_.load(std::memory_order_relaxed);
  return counters;
}

void MatchServer::worker_loop(SessionContext& session) {
  std::vector<ServerTask> batch;
  std::vector<ServerTask> live;
  while (scheduler_.next_batch(batch)) {
    // Dispatch half of deadline enforcement: members whose absolute
    // deadline passed while queued are answered without a solve.
    live.clear();
    const auto now = std::chrono::steady_clock::now();
    for (ServerTask& task : batch) {
      if (task.has_deadline && now >= task.deadline) {
        MatchResponse response;
        response.ok = false;
        response.expired = true;
        response.graph = task.request.graph;
        response.solver = task.request.solver;
        response.initializer = task.request.initializer;
        response.error = "deadline exceeded (" +
                         std::to_string(task.request.deadline_ms) +
                         " ms) before dispatch";
        response.session = session.id();
        expired_.fetch_add(1, std::memory_order_relaxed);
        task.promise.set_value(std::move(response));
      } else {
        live.push_back(std::move(task));
      }
    }
    batch.clear();
    if (live.empty()) continue;

    batches_.fetch_add(1, std::memory_order_relaxed);
    if (live.size() >= 2) {
      coalesced_.fetch_add(live.size(), std::memory_order_relaxed);
    }

    MatchResponse response;
    const Timer service_timer;
    try {
      response = handle(session, live.front().request, live.size());
    } catch (const std::exception& e) {
      response = MatchResponse{};
      response.graph = live.front().request.graph;
      response.error = e.what();
    }
    record_service_ms(service_timer.elapsed() * 1000.0 /
                      static_cast<double>(live.size()));
    response.session = session.id();
    response.batch = static_cast<int>(live.size());
    if (response.ok) {
      completed_.fetch_add(live.size(), std::memory_order_relaxed);
    } else {
      failed_.fetch_add(live.size(), std::memory_order_relaxed);
    }
    // Fan the one result out to every member of the group; the solve
    // answered all of them.
    for (std::size_t i = 0; i + 1 < live.size(); ++i) {
      live[i].promise.set_value(response);
    }
    live.back().promise.set_value(std::move(response));
    live.clear();  // drop the fulfilled promises before blocking again
  }
}

MatchResponse MatchServer::handle(SessionContext& session,
                                  const MatchRequest& request,
                                  std::size_t group_size) {
  MatchResponse response;
  response.graph = request.graph;
  response.solver = request.solver;
  response.initializer = request.initializer;

  const RosterEntry* entry = roster_.find(request.graph);
  if (entry == nullptr) {
    response.error = "unknown graph \"" + request.graph + "\"";
    return response;
  }
  response.maximum = entry->maximum_cardinality;
  if (engine::find_solver_or_null(request.solver) == nullptr) {
    response.error = "unknown solver \"" + request.solver + "\"";
    return response;
  }
  if (engine::find_initializer_or_null(request.initializer) == nullptr) {
    response.error = "unknown initializer \"" + request.initializer + "\"";
    return response;
  }

  RunConfig config;
  if (!parse_reduce_mode(request.reduce, config.reduce)) {
    response.error = "unknown reduce mode \"" + request.reduce + "\"";
    return response;
  }
  if (!parse_shard_mode(request.shard, config.shard)) {
    response.error = "unknown shard mode \"" + request.shard + "\"";
    return response;
  }
  if (!parse_direction_policy(request.dirsel, config.direction_policy)) {
    response.error = "unknown dirsel policy \"" + request.dirsel + "\"";
    return response;
  }
  if (!parse_bottom_up_kernel(request.kernel, config.bottom_up_kernel)) {
    response.error = "unknown kernel arm \"" + request.kernel + "\"";
    return response;
  }
  config.threads =
      request.threads > 0 ? request.threads : options_.solver_threads;
  response.threads = config.threads;

  const SessionScope scope(session);
  const std::size_t entry_index =
      static_cast<std::size_t>(entry - roster_.entries().data());
  const std::int64_t span_start = obs::timestamp();

  Matching matching;
  const RunStats stats =
      engine::run_batch(session, request.solver, request.initializer,
                        entry->graph, matching, config, group_size);

  obs::emit_complete(obs::names::kServeBatch, span_start,
                     static_cast<std::int64_t>(group_size),
                     stats.final_cardinality);
  obs::emit_complete(obs::names::kServeRequest, span_start,
                     static_cast<std::int64_t>(entry_index),
                     stats.final_cardinality);

  response.cardinality = stats.final_cardinality;
  response.seconds = stats.seconds;
  if (options_.check_cardinality &&
      stats.final_cardinality != entry->maximum_cardinality) {
    response.error = "cardinality audit failed: served " +
                     std::to_string(stats.final_cardinality) +
                     ", oracle says " +
                     std::to_string(entry->maximum_cardinality);
    return response;
  }
  response.ok = true;
  return response;
}

}  // namespace graftmatch::serve
