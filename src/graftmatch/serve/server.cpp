#include "graftmatch/serve/server.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/engine/registry.hpp"
#include "graftmatch/graph/matching.hpp"
#include "graftmatch/obs/trace.hpp"

namespace graftmatch::serve {

MatchServer::MatchServer(const GraphRoster& roster, ServerOptions options)
    : roster_(roster),
      options_(options),
      queue_(options.queue_capacity) {
  if (options_.autostart) start();
}

MatchServer::~MatchServer() { stop(); }

void MatchServer::start() {
  if (started_ || stopped_) return;
  started_ = true;
  const int workers = options_.workers > 0 ? options_.workers : 1;
  sessions_.reserve(static_cast<std::size_t>(workers));
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    sessions_.push_back(std::make_unique<SessionContext>());
    SessionContext& session = *sessions_.back();
    workers_.emplace_back([this, &session] { worker_loop(session); });
  }
}

void MatchServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

bool MatchServer::try_submit(MatchRequest request,
                             std::future<MatchResponse>& response) {
  Task task;
  task.request = std::move(request);
  std::future<MatchResponse> pending = task.promise.get_future();
  if (!queue_.try_push(std::move(task))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  response = std::move(pending);
  return true;
}

MatchResponse MatchServer::solve(MatchRequest request) {
  const std::string graph = request.graph;
  std::future<MatchResponse> pending;
  if (!try_submit(std::move(request), pending)) {
    MatchResponse response;
    response.ok = false;
    response.rejected = true;
    response.graph = graph;
    response.error = "server at capacity (queue full or stopped)";
    return response;
  }
  return pending.get();
}

ServerCounters MatchServer::counters() const {
  ServerCounters counters;
  counters.accepted = accepted_.load(std::memory_order_relaxed);
  counters.rejected = rejected_.load(std::memory_order_relaxed);
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.failed = failed_.load(std::memory_order_relaxed);
  return counters;
}

void MatchServer::worker_loop(SessionContext& session) {
  Task task;
  while (queue_.pop(task)) {
    MatchResponse response;
    try {
      response = handle(session, task.request);
    } catch (const std::exception& e) {
      response = MatchResponse{};
      response.graph = task.request.graph;
      response.error = e.what();
    }
    response.session = session.id();
    if (response.ok) {
      completed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    task.promise.set_value(std::move(response));
    task = Task{};  // drop the fulfilled promise before blocking again
  }
}

MatchResponse MatchServer::handle(SessionContext& session,
                                  const MatchRequest& request) {
  MatchResponse response;
  response.graph = request.graph;
  response.solver = request.solver;
  response.initializer = request.initializer;

  const RosterEntry* entry = roster_.find(request.graph);
  if (entry == nullptr) {
    response.error = "unknown graph \"" + request.graph + "\"";
    return response;
  }
  response.maximum = entry->maximum_cardinality;
  if (engine::find_solver_or_null(request.solver) == nullptr) {
    response.error = "unknown solver \"" + request.solver + "\"";
    return response;
  }
  if (engine::find_initializer_or_null(request.initializer) == nullptr) {
    response.error = "unknown initializer \"" + request.initializer + "\"";
    return response;
  }

  RunConfig config;
  if (!parse_reduce_mode(request.reduce, config.reduce)) {
    response.error = "unknown reduce mode \"" + request.reduce + "\"";
    return response;
  }
  if (!parse_shard_mode(request.shard, config.shard)) {
    response.error = "unknown shard mode \"" + request.shard + "\"";
    return response;
  }
  config.threads =
      request.threads > 0 ? request.threads : options_.solver_threads;
  response.threads = config.threads;

  const SessionScope scope(session);
  const std::size_t entry_index =
      static_cast<std::size_t>(entry - roster_.entries().data());
  const std::int64_t span_start = obs::timestamp();

  Matching matching;
  const RunStats stats = engine::run(session, request.solver,
                                     request.initializer, entry->graph,
                                     matching, config);

  obs::emit_complete(obs::names::kServeRequest, span_start,
                     static_cast<std::int64_t>(entry_index),
                     stats.final_cardinality);

  response.cardinality = stats.final_cardinality;
  response.seconds = stats.seconds;
  if (options_.check_cardinality &&
      stats.final_cardinality != entry->maximum_cardinality) {
    response.error = "cardinality audit failed: served " +
                     std::to_string(stats.final_cardinality) +
                     ", oracle says " +
                     std::to_string(entry->maximum_cardinality);
    return response;
  }
  response.ok = true;
  return response;
}

}  // namespace graftmatch::serve
