// Graph roster: the load-once graph store of the serving layer.
//
// A matching service answers many requests over a fixed set of graphs
// (marketplaces re-match the same rider/driver universe; sparse solvers
// re-permute the same matrices), so the expensive parts -- building the
// CSR and computing each graph's maximum-matching cardinality with the
// serial Hopcroft-Karp oracle -- happen exactly once, at load time.
// Requests then reference graphs by name, and every response can be
// audited against the precomputed oracle for free (the
// cardinality-consistency gate in MatchServer and bench_serve).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graftmatch/graph/bipartite_graph.hpp"

namespace graftmatch::serve {

struct RosterEntry {
  std::string name;
  BipartiteGraph graph;
  /// Maximum-matching cardinality, from the serial Hopcroft-Karp oracle
  /// at load time. Every served response must reach exactly this.
  std::int64_t maximum_cardinality = 0;
};

class GraphRoster {
 public:
  /// Add a graph under `name` (must be unique); computes the oracle
  /// cardinality now so serving never pays for it.
  void add(std::string name, BipartiteGraph graph);

  /// Load benchmark-suite instances by name (gen/suite.hpp), e.g.
  /// {"rmat-like", "wb-edu-like"}; `size_factor` and `seed` are the
  /// suite factory knobs. Throws std::out_of_range on an unknown name.
  static GraphRoster from_suite(std::span<const std::string> names,
                                double size_factor, std::uint64_t seed);

  const RosterEntry* find(const std::string& name) const;
  const RosterEntry& at(std::size_t index) const { return entries_.at(index); }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  std::span<const RosterEntry> entries() const noexcept { return entries_; }

 private:
  std::vector<RosterEntry> entries_;
};

}  // namespace graftmatch::serve
