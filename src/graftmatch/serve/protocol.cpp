#include "graftmatch/serve/protocol.hpp"

#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graftmatch/runtime/cli.hpp"

namespace graftmatch::serve {
namespace {

// Response-side diagnostics only (the error message): newlines delimit
// fields, so they must not appear in a value, and spaces keep a
// multi-line exception message readable instead of truncating it.
// Request lookup keys are never sanitized -- they are rejected instead
// (see is_clean_field), because a silently rewritten key changes what
// the server looks up.
std::string sanitize(std::string value) {
  for (char& c : value) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return value;
}

void put(std::ostringstream& out, const char* key, const std::string& value) {
  out << key << '=' << sanitize(value) << '\n';
}

void put(std::ostringstream& out, const char* key, std::int64_t value) {
  out << key << '=' << value << '\n';
}

// Shortest round-trip form (std::to_chars default): the decoded double
// is bit-for-bit the encoded one, unlike ostream's 6-significant-digit
// default, and the spelling is locale-independent.
void put(std::ostringstream& out, const char* key, double value) {
  char buffer[64];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec == std::errc{}) {
    out << key << '='
        << std::string_view(buffer, static_cast<std::size_t>(ptr - buffer))
        << '\n';
  } else {
    out << key << '=' << 0.0 << '\n';  // unreachable for finite doubles
  }
}

/// A request string field travels verbatim or not at all.
void put_field(std::ostringstream& out, const char* key,
               const std::string& value) {
  if (!is_clean_field(value)) {
    throw std::invalid_argument(std::string("request field \"") + key +
                                "\" contains a control character");
  }
  out << key << '=' << value << '\n';
}

bool parse_int(const std::string& value, std::int64_t& out) {
  const char* first = value.data();
  const char* last = first + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

// Strict, locale-independent, whole-token parse (runtime/cli.hpp) --
// std::stod honors the process locale, so a comma-decimal locale would
// mis-read or reject the peer's "0.125".
bool parse_double(const std::string& value, double& out) {
  const auto parsed =
      cli::try_parse_double(value, std::numeric_limits<double>::lowest(),
                            std::numeric_limits<double>::max());
  if (!parsed) return false;
  out = *parsed;
  return true;
}

bool parse_bool(const std::string& value, bool& out) {
  if (value == "1" || value == "true") {
    out = true;
    return true;
  }
  if (value == "0" || value == "false") {
    out = false;
    return true;
  }
  return false;
}

// Walks `payload` line by line and hands each key/value pair to
// `field`, which returns false on a malformed value for a known key.
// Unknown keys are skipped so old peers tolerate new fields.
template <typename FieldFn>
bool for_each_field(const std::string& payload, FieldFn&& field,
                    std::string& error) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    if (end == std::string::npos) end = payload.size();
    const std::string_view line(payload.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      error = "malformed line (no '='): " + std::string(line);
      return false;
    }
    const std::string key(line.substr(0, eq));
    const std::string value(line.substr(eq + 1));
    if (!field(key, value)) {
      error = "bad value for \"" + key + "\": " + value;
      return false;
    }
  }
  return true;
}

}  // namespace

bool is_clean_field(std::string_view value) noexcept {
  for (const char c : value) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20 || u == 0x7f) return false;
  }
  return true;
}

std::string encode_request(const MatchRequest& request) {
  std::ostringstream out;
  put_field(out, "graph", request.graph);
  put_field(out, "solver", request.solver);
  put_field(out, "init", request.initializer);
  put(out, "threads", static_cast<std::int64_t>(request.threads));
  put_field(out, "reduce", request.reduce);
  put_field(out, "shard", request.shard);
  put_field(out, "dirsel", request.dirsel);
  put_field(out, "kernel", request.kernel);
  if (request.deadline_ms > 0) put(out, "deadline_ms", request.deadline_ms);
  return out.str();
}

bool decode_request(const std::string& payload, MatchRequest& request,
                    std::string& error) {
  request = MatchRequest{};
  const bool parsed = for_each_field(
      payload,
      [&](const std::string& key, const std::string& value) {
        if (key == "graph") {
          if (!is_clean_field(value)) return false;
          request.graph = value;
        } else if (key == "solver") {
          if (!is_clean_field(value)) return false;
          request.solver = value;
        } else if (key == "init") {
          if (!is_clean_field(value)) return false;
          request.initializer = value;
        } else if (key == "threads") {
          std::int64_t threads = 0;
          if (!parse_int(value, threads)) return false;
          request.threads = static_cast<int>(threads);
        } else if (key == "reduce") {
          if (!is_clean_field(value)) return false;
          request.reduce = value;
        } else if (key == "shard") {
          if (!is_clean_field(value)) return false;
          request.shard = value;
        } else if (key == "dirsel") {
          if (!is_clean_field(value)) return false;
          request.dirsel = value;
        } else if (key == "kernel") {
          if (!is_clean_field(value)) return false;
          request.kernel = value;
        } else if (key == "deadline_ms") {
          if (!parse_int(value, request.deadline_ms)) return false;
        }
        return true;
      },
      error);
  if (!parsed) return false;
  if (request.graph.empty()) {
    error = "request is missing required field \"graph\"";
    return false;
  }
  return true;
}

std::string encode_response(const MatchResponse& response) {
  std::ostringstream out;
  put(out, "ok", static_cast<std::int64_t>(response.ok ? 1 : 0));
  if (!response.error.empty()) put(out, "error", response.error);
  if (response.rejected) put(out, "rejected", std::int64_t{1});
  if (response.expired) put(out, "expired", std::int64_t{1});
  put(out, "graph", response.graph);
  put(out, "solver", response.solver);
  put(out, "init", response.initializer);
  put(out, "cardinality", response.cardinality);
  put(out, "maximum", response.maximum);
  put(out, "seconds", response.seconds);
  put(out, "session", static_cast<std::int64_t>(response.session));
  put(out, "threads", static_cast<std::int64_t>(response.threads));
  put(out, "batch", static_cast<std::int64_t>(response.batch));
  return out.str();
}

bool decode_response(const std::string& payload, MatchResponse& response,
                     std::string& error) {
  response = MatchResponse{};
  bool saw_ok = false;
  const bool parsed = for_each_field(
      payload,
      [&](const std::string& key, const std::string& value) {
        if (key == "ok") {
          saw_ok = true;
          return parse_bool(value, response.ok);
        }
        if (key == "error") {
          response.error = value;
          return true;
        }
        if (key == "rejected") return parse_bool(value, response.rejected);
        if (key == "expired") return parse_bool(value, response.expired);
        if (key == "graph") {
          response.graph = value;
          return true;
        }
        if (key == "solver") {
          response.solver = value;
          return true;
        }
        if (key == "init") {
          response.initializer = value;
          return true;
        }
        if (key == "cardinality") return parse_int(value, response.cardinality);
        if (key == "maximum") return parse_int(value, response.maximum);
        if (key == "seconds") return parse_double(value, response.seconds);
        if (key == "session") {
          std::int64_t session = 0;
          if (!parse_int(value, session)) return false;
          response.session = static_cast<std::uint64_t>(session);
          return true;
        }
        if (key == "threads") {
          std::int64_t threads = 0;
          if (!parse_int(value, threads)) return false;
          response.threads = static_cast<int>(threads);
          return true;
        }
        if (key == "batch") {
          std::int64_t batch = 0;
          if (!parse_int(value, batch)) return false;
          response.batch = static_cast<int>(batch);
          return true;
        }
        return true;
      },
      error);
  if (!parsed) return false;
  if (!saw_ok) {
    error = "response is missing required field \"ok\"";
    return false;
  }
  return true;
}

namespace {

bool write_all(int fd, const void* data, std::size_t size) {
  const char* cursor = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t wrote = ::write(fd, cursor, size);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    cursor += wrote;
    size -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t size) {
  char* cursor = static_cast<char*>(data);
  while (size > 0) {
    const ssize_t got = ::read(fd, cursor, size);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF mid-frame (or before one: clean close)
    cursor += got;
    size -= static_cast<std::size_t>(got);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  unsigned char header[4];
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(length & 0xff);
  header[1] = static_cast<unsigned char>((length >> 8) & 0xff);
  header[2] = static_cast<unsigned char>((length >> 16) & 0xff);
  header[3] = static_cast<unsigned char>((length >> 24) & 0xff);
  return write_all(fd, header, sizeof(header)) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload) {
  unsigned char header[4];
  if (!read_all(fd, header, sizeof(header))) return false;
  const std::uint32_t length =
      static_cast<std::uint32_t>(header[0]) |
      (static_cast<std::uint32_t>(header[1]) << 8) |
      (static_cast<std::uint32_t>(header[2]) << 16) |
      (static_cast<std::uint32_t>(header[3]) << 24);
  if (length > kMaxFrameBytes) return false;
  payload.resize(length);
  if (length == 0) return true;
  return read_all(fd, payload.data(), length);
}

}  // namespace graftmatch::serve
