// MatchServer: the concurrent matching-as-a-service core.
//
// A bounded pool of worker threads, each owning one long-lived
// SessionContext, drains a bounded request queue. Sessions are the
// point: a worker's width probe, trace sink, and warm workspace pool
// persist across requests (so repeat solves of same-shaped graphs skip
// allocation) and never touch another worker's -- the isolation that
// runtime/context.hpp exists to provide. Admission control is the
// queue's capacity: when it is full, try_submit() fails and solve()
// returns a `rejected` response instead of queueing unbounded latency.
//
// Every response is audited against the roster's load-time
// Hopcroft-Karp oracle (ServerOptions::check_cardinality): a served
// matching that is not maximum is a bug, and the server says so rather
// than returning it as a success.
//
// Transport-free by design: this header is the in-process API
// (try_submit/solve), used directly by bench_serve and the tests; the
// Unix-domain-socket front end (serve/uds.hpp) is a thin framing layer
// over the same solve() call.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graftmatch/runtime/context.hpp"
#include "graftmatch/serve/bounded_queue.hpp"
#include "graftmatch/serve/protocol.hpp"
#include "graftmatch/serve/roster.hpp"

namespace graftmatch::serve {

struct ServerOptions {
  /// Worker threads, each with its own long-lived SessionContext. Total
  /// solver parallelism is workers * per-request width, so the useful
  /// shapes are many 1-wide sessions (throughput) or few wide ones
  /// (latency on big graphs).
  int workers = 2;
  /// Admission bound: requests queued but not yet picked up. Full queue
  /// => reject.
  std::size_t queue_capacity = 64;
  /// Default per-request solver width when MatchRequest::threads <= 0.
  int solver_threads = 1;
  /// Start workers in the constructor. Tests set false to fill the
  /// queue deterministically before anything drains it.
  bool autostart = true;
  /// Audit each response's cardinality against the roster oracle and
  /// fail the response on mismatch.
  bool check_cardinality = true;
};

/// Monotonic totals since construction. accepted counts requests that
/// entered the queue; completed + failed partition the accepted ones
/// that finished (failed = error response or audit mismatch, not
/// rejection).
struct ServerCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

class MatchServer {
 public:
  /// The roster must outlive the server; graphs are served by
  /// reference, never copied per request.
  explicit MatchServer(const GraphRoster& roster, ServerOptions options = {});
  ~MatchServer();
  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Spin up the worker pool (idempotent; a no-op after stop()).
  void start();
  /// Close admission, drain the backlog, join the workers. Pending
  /// accepted requests still get real responses.
  void stop();

  /// Non-blocking submit. On acceptance, `response` is a future the
  /// serving worker fulfills; returns false (future untouched) when the
  /// queue is full or the server is stopped.
  bool try_submit(MatchRequest request, std::future<MatchResponse>& response);

  /// Blocking convenience: submit and wait. A full queue yields an
  /// immediate response with rejected=true rather than blocking, so
  /// closed-loop clients feel backpressure as a fast failure.
  MatchResponse solve(MatchRequest request);

  const GraphRoster& roster() const noexcept { return roster_; }
  const ServerOptions& options() const noexcept { return options_; }
  ServerCounters counters() const;
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct Task {
    MatchRequest request;
    std::promise<MatchResponse> promise;
  };

  void worker_loop(SessionContext& session);
  MatchResponse handle(SessionContext& session, const MatchRequest& request);

  const GraphRoster& roster_;
  const ServerOptions options_;
  BoundedQueue<Task> queue_;
  /// One session per worker, stable addresses (workers hold references
  /// across their whole lifetime).
  std::vector<std::unique_ptr<SessionContext>> sessions_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
};

}  // namespace graftmatch::serve
