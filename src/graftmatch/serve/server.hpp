// MatchServer: the concurrent matching-as-a-service core.
//
// A bounded pool of worker threads, each owning one long-lived
// SessionContext, drains a bounded request queue through a batching
// dispatcher. Sessions are the point: a worker's width probe, trace
// sink, and warm workspace pool persist across requests (so repeat
// solves of same-shaped graphs skip allocation) and never touch another
// worker's -- the isolation that runtime/context.hpp exists to provide.
//
// Batching is the throughput lever: MS-BFS-Graft is natively
// multi-source, so concurrent requests agreeing on (graph, solver,
// initializer, reduce, shard) are coalesced by the BatchScheduler
// (serve/batch.hpp) into ONE engine::run_batch per group within a
// bounded window, and the single result is fanned back out to every
// member's promise. batch_max = 1 restores the one-solve-per-request
// behavior.
//
// Deadlines are enforced twice. At admission, a request whose
// `deadline_ms` is already implied unmeetable by the queue backlog
// (depth x the EWMA of recent per-request service time / workers) is
// rejected immediately -- failing fast beats queueing work that will be
// thrown away. At dispatch, a batch member whose absolute deadline has
// passed gets a `deadline exceeded` response instead of a solve.
//
// Every solved response is audited against the roster's load-time
// Hopcroft-Karp oracle (ServerOptions::check_cardinality): a served
// matching that is not maximum is a bug, and the server says so rather
// than returning it as a success.
//
// Transport-free by design: this header is the in-process API
// (try_submit/solve), used directly by bench_serve and the tests; the
// Unix-domain-socket front end (serve/uds.hpp) is a thin framing layer
// over the same solve() call.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "graftmatch/runtime/context.hpp"
#include "graftmatch/serve/batch.hpp"
#include "graftmatch/serve/bounded_queue.hpp"
#include "graftmatch/serve/protocol.hpp"
#include "graftmatch/serve/roster.hpp"

namespace graftmatch::serve {

struct ServerOptions {
  /// Worker threads, each with its own long-lived SessionContext. Total
  /// solver parallelism is workers * per-request width, so the useful
  /// shapes are many 1-wide sessions (throughput) or few wide ones
  /// (latency on big graphs).
  int workers = 2;
  /// Admission bound: requests queued but not yet picked up. Full queue
  /// => reject.
  std::size_t queue_capacity = 64;
  /// Default per-request solver width when MatchRequest::threads <= 0.
  int solver_threads = 1;
  /// Start workers in the constructor. Tests set false to fill the
  /// queue deterministically before anything drains it.
  bool autostart = true;
  /// Audit each response's cardinality against the roster oracle and
  /// fail the response on mismatch.
  bool check_cardinality = true;
  /// Largest coalesced group one solve may answer; 1 disables batching.
  std::size_t batch_max = 16;
  /// Coalescing window in microseconds: how long an undersized batch
  /// waits for more same-key arrivals before dispatching. 0 = dispatch
  /// with whatever was already queued.
  std::int64_t batch_window_us = 200;
  /// Seed for the admission deadline gate's service-time EWMA, in
  /// milliseconds per request. 0 disables the gate until the first
  /// completed solve provides a real measurement.
  double assumed_service_ms = 0.0;
};

/// Monotonic totals since construction. accepted counts requests that
/// entered the queue; completed + failed + expired partition the
/// accepted ones that finished (failed = error response or audit
/// mismatch; expired = deadline passed before dispatch; neither is a
/// rejection).
struct ServerCounters {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t expired = 0;
  /// Dispatched groups (a singleton counts as a batch of one).
  std::uint64_t batches = 0;
  /// Requests served as members of a group of >= 2 (the coalescing win:
  /// solves avoided = coalesced - batches over the multi-member groups).
  std::uint64_t coalesced = 0;
};

class MatchServer {
 public:
  /// The roster must outlive the server; graphs are served by
  /// reference, never copied per request.
  explicit MatchServer(const GraphRoster& roster, ServerOptions options = {});
  ~MatchServer();
  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Spin up the worker pool (idempotent; a no-op after stop()).
  void start();
  /// Close admission, drain the backlog, join the workers. Pending
  /// accepted requests still get real responses (or `deadline
  /// exceeded` ones when their deadline passed while queued).
  void stop();

  /// Non-blocking submit. On acceptance, `response` is a future the
  /// serving worker fulfills; returns false (future untouched) when the
  /// queue is full, the server is stopped, or the request's deadline is
  /// already unmeetable given the backlog. When `reject_reason` is
  /// non-null it receives the reason for a false return.
  bool try_submit(MatchRequest request, std::future<MatchResponse>& response,
                  std::string* reject_reason = nullptr);

  /// Blocking convenience: submit and wait. A full queue (or an
  /// unmeetable deadline) yields an immediate response with
  /// rejected=true rather than blocking, so closed-loop clients feel
  /// backpressure as a fast failure.
  MatchResponse solve(MatchRequest request);

  const GraphRoster& roster() const noexcept { return roster_; }
  const ServerOptions& options() const noexcept { return options_; }
  ServerCounters counters() const;
  std::size_t queue_depth() const { return queue_.size(); }
  /// The admission gate's current per-request service estimate (ms).
  double service_estimate_ms() const {
    return service_ewma_ms_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(SessionContext& session);
  /// One solve answering `group_size` coalesced requests; the returned
  /// response is the fan-out template (everything but per-member
  /// bookkeeping).
  MatchResponse handle(SessionContext& session, const MatchRequest& request,
                       std::size_t group_size);
  /// Queue-backlog wait estimate for the admission deadline gate.
  double estimated_backlog_ms() const;
  void record_service_ms(double per_request_ms);

  const GraphRoster& roster_;
  const ServerOptions options_;
  BoundedQueue<ServerTask> queue_;
  BatchScheduler scheduler_;
  /// One session per worker, stable addresses (workers hold references
  /// across their whole lifetime).
  std::vector<std::unique_ptr<SessionContext>> sessions_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<double> service_ewma_ms_;
};

}  // namespace graftmatch::serve
