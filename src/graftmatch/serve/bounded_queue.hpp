// Bounded MPMC task queue: the admission-control primitive of the
// serving layer.
//
// A matching request is heavy (a whole solver run), so an unbounded
// queue converts overload into unbounded latency. This queue rejects at
// the door instead: try_push() fails immediately when the queue holds
// `capacity` items, and the caller turns that into a "rejected" response
// (MatchServer) or backpressure (a closed-loop client retries later).
// Blocking semantics live only on the consumer side, where server
// workers wait for work.
//
// Mutex + condition variable on purpose: requests are milliseconds of
// solver work, so queue overhead is noise, and the blocking pop gives
// workers a race-free shutdown path (close() wakes everyone and pop
// drains the backlog before reporting closed).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <queue>
#include <utility>

namespace graftmatch::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admission control: enqueue unless the queue is at capacity or
  /// closed. Never blocks.
  bool try_push(T&& item) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocking consume. Returns false only when the queue is closed AND
  /// drained -- items accepted before close() are still delivered.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop();
    return true;
  }

  /// Stop admitting; wake every blocked pop() once the backlog drains.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::queue<T> items_;
  bool closed_ = false;
};

}  // namespace graftmatch::serve
