// Bounded MPMC task queue: the admission-control primitive of the
// serving layer.
//
// A matching request is heavy (a whole solver run), so an unbounded
// queue converts overload into unbounded latency. This queue rejects at
// the door instead: try_push() fails immediately when the queue holds
// `capacity` items, and the caller turns that into a "rejected" response
// (MatchServer) or backpressure (a closed-loop client retries later).
// Blocking semantics live only on the consumer side, where server
// workers wait for work.
//
// On top of the plain pop, the queue supports the batching dispatcher
// (serve/batch.hpp): extract_if() pulls every queued item matching a
// predicate (the coalescing key) while preserving the order of the
// rest, and wait_push_until() is the deadline-aware wait that lets a
// worker hold a coalescing window open without polling -- it sleeps
// until a *new* push lands, the queue closes, or the window deadline
// passes.
//
// Mutex + condition variable on purpose: requests are milliseconds of
// solver work, so queue overhead is noise, and the blocking pop gives
// workers a race-free shutdown path (close() wakes everyone and pop
// drains the backlog before reporting closed).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace graftmatch::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admission control: enqueue unless the queue is at capacity or
  /// closed. Never blocks.
  bool try_push(T&& item) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      ++push_sequence_;
    }
    // notify_all, not notify_one: consumers wait in two distinct states
    // (blocked pop() and a coalescing-window wait_push_until()), and
    // waking only the window-holder would strand the item until its
    // window closed.
    ready_.notify_all();
    return true;
  }

  /// Blocking consume. Returns false only when the queue is closed AND
  /// drained -- items accepted before close() are still delivered.
  bool pop(T& out) {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Move up to `max` queued items satisfying `pred` into `out`
  /// (front-to-back, appended), preserving the relative order of the
  /// items left behind. Never blocks; returns the number extracted.
  /// This is how a batching worker claims every queued request sharing
  /// its group key without disturbing other groups' queue positions.
  template <typename Pred>
  std::size_t extract_if(Pred&& pred, std::vector<T>& out, std::size_t max) {
    const std::scoped_lock lock(mutex_);
    std::size_t taken = 0;
    for (auto it = items_.begin(); it != items_.end() && taken < max;) {
      if (pred(*it)) {
        out.push_back(std::move(*it));
        it = items_.erase(it);
        ++taken;
      } else {
        ++it;
      }
    }
    return taken;
  }

  /// Monotonic count of successful pushes; the wait token for
  /// wait_push_until().
  std::uint64_t push_sequence() const {
    const std::scoped_lock lock(mutex_);
    return push_sequence_;
  }

  /// Deadline-aware wait for new arrivals: block until the push
  /// sequence advances past `seen`, the queue closes, or `deadline`
  /// passes, whichever is first. Returns the current push sequence --
  /// equal to `seen` exactly when the wait ended for a reason other
  /// than a new push (deadline or close), which is the caller's signal
  /// to stop extending a coalescing window.
  std::uint64_t wait_push_until(
      std::uint64_t seen, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock lock(mutex_);
    ready_.wait_until(lock, deadline,
                      [&] { return closed_ || push_sequence_ != seen; });
    return push_sequence_;
  }

  /// Stop admitting; wake every blocked pop() once the backlog drains.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  std::uint64_t push_sequence_ = 0;
  bool closed_ = false;
};

}  // namespace graftmatch::serve
