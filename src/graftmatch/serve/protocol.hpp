// Wire protocol of the matching service: length-prefixed key=value
// frames.
//
// One request or response is a single frame: a 4-byte little-endian
// payload length followed by the payload, which is newline-separated
// `key=value` lines (values may contain '='; they may not contain
// newlines). The format is deliberately trivial: `printf '...' | socat
// - UNIX:/path` can drive a server, every field is inspectable in a
// hexdump, and adding a field never breaks an old peer (unknown keys
// are skipped, missing keys keep their defaults).
//
// String hygiene: request string fields (graph, solver, init, reduce,
// shard, dirsel, kernel) are lookup keys, so control characters in
// them are REJECTED at
// both encode time (std::invalid_argument) and decode time (error
// return) rather than silently rewritten -- a graph named "a\nb" must
// fail loudly, not be looked up as "a b" and misreported as unknown
// under the mangled name. Response-side free text (the error message)
// is server-generated diagnostics; there newlines/CRs are replaced with
// spaces so a multi-line exception message cannot corrupt the framing.
//
// Doubles (the `seconds` field) are encoded with std::to_chars shortest
// round-trip form and decoded with the strict locale-independent parser
// from runtime/cli.hpp, so the value a client reads is bit-for-bit the
// value the server measured regardless of either side's locale.
//
// The same encode/decode pair backs the Unix-domain-socket front end
// (serve/uds.hpp) and the protocol tests (which run it over a
// socketpair without any server).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace graftmatch::serve {

/// One matching request. `graph` names a roster entry; the rest select
/// how to solve it (registry keys and engine modes, all validated
/// server-side so a bad request yields an error response, not a crash).
struct MatchRequest {
  std::string graph;
  std::string solver = "graft";
  std::string initializer = "ks";
  /// OpenMP width for this request's solver regions; <= 0 uses the
  /// server's configured per-request default.
  int threads = 0;
  std::string reduce = "none";  ///< ReduceMode key (run_stats.hpp)
  std::string shard = "none";   ///< ShardMode key
  std::string dirsel = "fixed";  ///< DirectionPolicy key
  std::string kernel = "bit";    ///< BottomUpKernel key
  /// Relative deadline in milliseconds from admission; <= 0 = none.
  /// Enforced twice: at admission (rejected when the queue backlog
  /// already implies a miss) and at dispatch (an expired member of a
  /// batch gets a `deadline exceeded` response instead of a solve).
  std::int64_t deadline_ms = 0;
};

struct MatchResponse {
  bool ok = false;
  std::string error;  ///< set when !ok (unknown graph/solver, audit fail)
  /// True when the request was turned away by admission control (queue
  /// full, or a deadline the backlog already made unmeetable); the
  /// client may retry, nothing was solved.
  bool rejected = false;
  /// True when the request was accepted but its deadline passed before
  /// a worker dispatched it; nothing was solved.
  bool expired = false;
  std::string graph;
  std::string solver;
  std::string initializer;
  std::int64_t cardinality = 0;  ///< matched cardinality this run found
  std::int64_t maximum = 0;      ///< roster oracle (load-time Hopcroft-Karp)
  double seconds = 0.0;          ///< solver wall time, server-side
  std::uint64_t session = 0;     ///< id of the session that served it
  int threads = 0;               ///< solver width actually used
  /// Size of the coalesced group this response's solve answered (1 =
  /// the request was served alone).
  int batch = 1;
};

/// True when `value` may travel as a request lookup key: non-empty
/// fields must be free of ASCII control characters (0x00-0x1f, 0x7f).
bool is_clean_field(std::string_view value) noexcept;

/// Encodes a request payload. Throws std::invalid_argument when any
/// string field contains a control character (see is_clean_field) --
/// mangling a lookup key would change what the server looks up.
std::string encode_request(const MatchRequest& request);
bool decode_request(const std::string& payload, MatchRequest& request,
                    std::string& error);

std::string encode_response(const MatchResponse& response);
bool decode_response(const std::string& payload, MatchResponse& response,
                     std::string& error);

/// Frame cap: a request/response is a handful of short lines, so
/// anything near this is a corrupt or hostile peer.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

/// Blocking frame I/O on a connected stream socket (UDS or socketpair).
/// write_frame returns false on any short write / peer reset;
/// read_frame returns false on clean EOF, error, or an oversized
/// length prefix. Both retry EINTR.
bool write_frame(int fd, const std::string& payload);
bool read_frame(int fd, std::string& payload);

}  // namespace graftmatch::serve
