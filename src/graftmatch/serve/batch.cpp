#include "graftmatch/serve/batch.hpp"

#include <utility>

namespace graftmatch::serve {

BatchKey batch_key(const MatchRequest& request) {
  return BatchKey{request.graph, request.solver, request.initializer,
                  request.reduce, request.shard};
}

bool BatchScheduler::next_batch(std::vector<ServerTask>& out) {
  out.clear();
  ServerTask seed;
  if (!queue_.pop(seed)) return false;
  const BatchKey key = batch_key(seed.request);
  out.push_back(std::move(seed));

  const std::size_t max = options_.max_batch > 0 ? options_.max_batch : 1;
  if (max <= 1) return true;

  const auto same_key = [&](const ServerTask& task) {
    return batch_key(task.request) == key;
  };
  // Snapshot the push sequence BEFORE the first claim: a push landing
  // between the claim and the first wait then reads as "new" (one
  // spurious re-claim) instead of silently aging past the wait token.
  std::uint64_t seen = queue_.push_sequence();
  queue_.extract_if(same_key, out, max - out.size());
  if (out.size() >= max || options_.window_us <= 0) return true;

  // Coalescing window: sleep until a new push lands (then re-claim
  // matching tasks), giving near-simultaneous requests a chance to ride
  // this solve. wait_push_until returns an unchanged sequence exactly
  // when the window expired or the queue closed -- both mean dispatch
  // with what we have.
  const auto window_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(options_.window_us);
  while (out.size() < max) {
    const std::uint64_t now = queue_.wait_push_until(seen, window_deadline);
    if (now == seen) break;
    seen = now;
    queue_.extract_if(same_key, out, max - out.size());
  }
  return true;
}

}  // namespace graftmatch::serve
