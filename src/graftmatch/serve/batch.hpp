// BatchScheduler: the coalescing dispatcher between the admission queue
// and the server workers.
//
// MS-BFS-Graft is natively multi-source -- one run amortizes traversal
// across many active trees -- so N concurrent requests for the same
// (graph, solver, initializer, reduce, shard) key do not need N solver
// runs: one run answers all of them. The scheduler turns the FIFO
// backlog into groups: a worker seeds a batch with the oldest queued
// task, claims every other queued task with the same key (extract_if,
// which leaves other groups' queue positions untouched), and then holds
// a bounded coalescing window open (wait_push_until) so requests
// arriving microseconds apart ride the same solve. The worker executes
// one engine::run_batch for the group and fans the single result out to
// every member's promise.
//
// The scheduler is shared by all workers and keeps NO private state --
// every pending task stays in the BoundedQueue until a batch claims it,
// so queue depth remains the single truth admission control (including
// the deadline gate's backlog estimate) reasons about, and no worker
// can strand another group's tasks in a private stash.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "graftmatch/serve/bounded_queue.hpp"
#include "graftmatch/serve/protocol.hpp"

namespace graftmatch::serve {

/// One accepted request in flight: the decoded request, the promise the
/// serving worker fulfills, and the absolute deadline admission stamped
/// from MatchRequest::deadline_ms (has_deadline false = none).
struct ServerTask {
  MatchRequest request;
  std::promise<MatchResponse> promise;
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = false;
};

/// The coalescing key: requests agreeing on all five fields are
/// answered by one solve. `threads` is deliberately absent -- width is
/// an execution hint, not a result-changing input (every solver is
/// cardinality-deterministic across widths), so the group runs at the
/// seed member's width and everyone shares the answer.
struct BatchKey {
  std::string graph;
  std::string solver;
  std::string initializer;
  std::string reduce;
  std::string shard;

  friend bool operator==(const BatchKey&, const BatchKey&) = default;
};

BatchKey batch_key(const MatchRequest& request);

struct BatchOptions {
  /// Largest group one solve may answer; 1 disables coalescing (every
  /// request gets its own solve, the pre-batching behavior).
  std::size_t max_batch = 16;
  /// How long a worker holds an undersized batch open waiting for more
  /// same-key arrivals, in microseconds. 0 = dispatch immediately with
  /// whatever was already queued.
  std::int64_t window_us = 200;
};

class BatchScheduler {
 public:
  BatchScheduler(BoundedQueue<ServerTask>& queue, BatchOptions options)
      : queue_(queue), options_(options) {}
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Assemble the next batch into `out` (cleared first): block for a
  /// seed task, claim queued same-key tasks, then extend through the
  /// coalescing window while the batch is undersized. Returns false
  /// only when the queue is closed and drained -- the workers' exit
  /// signal. Thread-safe; concurrent callers assemble disjoint batches.
  bool next_batch(std::vector<ServerTask>& out);

  const BatchOptions& options() const noexcept { return options_; }

 private:
  BoundedQueue<ServerTask>& queue_;
  const BatchOptions options_;
};

}  // namespace graftmatch::serve
