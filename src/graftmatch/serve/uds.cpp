#include "graftmatch/serve/uds.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace graftmatch::serve {
namespace {

bool fill_sockaddr(const std::string& path, sockaddr_un& addr,
                   std::string& error) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    error = "socket path empty or longer than sockaddr_un allows: " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

std::string errno_string(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

UdsServer::UdsServer(MatchServer& server, std::string socket_path)
    : server_(server), socket_path_(std::move(socket_path)) {}

UdsServer::~UdsServer() { stop(); }

bool UdsServer::start(std::string& error) {
  if (listen_fd_ >= 0) return true;
  sockaddr_un addr;
  if (!fill_sockaddr(socket_path_, addr, error)) return false;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_string("socket");
    return false;
  }
  ::unlink(socket_path_.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = errno_string("bind " + socket_path_);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) < 0) {
    error = errno_string("listen " + socket_path_);
    ::close(fd);
    ::unlink(socket_path_.c_str());
    return false;
  }
  // Nonblocking listener: the accept loop polls with a timeout so
  // stop() never waits on a connection that never comes.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  listen_fd_ = fd;
  stopping_ = false;
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void UdsServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Cut connections whose serving threads still own their fd (fd >= 0
    // under the lock means the thread has not deregistered yet, so the
    // number cannot have been recycled) so blocked read_frame calls
    // return.
    const std::scoped_lock lock(connections_mutex_);
    for (const Connection& connection : connections_) {
      if (connection.fd >= 0) ::shutdown(connection.fd, SHUT_RDWR);
    }
  }
  // Every serving thread now winds down; join them all. Each entry is
  // joined BEFORE its node is erased -- the serving thread holds a
  // reference to the node until it returns, and list nodes have stable
  // addresses, so joining first is what makes the erase safe. With the
  // acceptor gone, stop() is the only mutator left.
  for (;;) {
    Connection* connection = nullptr;
    {
      const std::scoped_lock lock(connections_mutex_);
      if (connections_.empty()) break;
      connection = &connections_.front();
    }
    if (connection->thread.joinable()) connection->thread.join();
    const std::scoped_lock lock(connections_mutex_);
    connections_.pop_front();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

std::size_t UdsServer::tracked_connections() const {
  const std::scoped_lock lock(connections_mutex_);
  return connections_.size();
}

void UdsServer::reap_finished() {
  // Finished threads are joined OUTSIDE the lock (join can run
  // destructors / scheduler waits) after being unlinked under it.
  std::vector<std::thread> done;
  {
    const std::scoped_lock lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->finished.load(std::memory_order_acquire)) {
        done.push_back(std::move(it->thread));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::thread& thread : done) {
    if (thread.joinable()) thread.join();
  }
}

void UdsServer::accept_loop() {
  while (!stopping_) {
    reap_finished();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::scoped_lock lock(connections_mutex_);
    connections_.emplace_back();
    Connection& connection = connections_.back();
    connection.fd = fd;
    connection.thread =
        std::thread([this, &connection] { serve_connection(connection); });
  }
}

void UdsServer::serve_connection(Connection& connection) {
  const int fd = connection.fd;
  std::string payload;
  while (read_frame(fd, payload)) {
    MatchRequest request;
    MatchResponse response;
    std::string error;
    if (decode_request(payload, request, error)) {
      response = server_.solve(std::move(request));
    } else {
      response.ok = false;
      response.error = "bad request: " + error;
    }
    if (!write_frame(fd, encode_response(response))) break;
  }
  // Deregister FIRST, close SECOND. The moment ::close returns the
  // kernel may hand this fd number to a fresh accept (or any other
  // thread's open); deregistering before closing guarantees stop()
  // can never shutdown() a recycled number it thinks is ours.
  {
    const std::scoped_lock lock(connections_mutex_);
    connection.fd = -1;
  }
  ::close(fd);
  connection.finished.store(true, std::memory_order_release);
}

UdsClient::~UdsClient() { close(); }

bool UdsClient::connect(const std::string& socket_path, std::string& error) {
  if (fd_ >= 0) close();
  sockaddr_un addr;
  if (!fill_sockaddr(socket_path, addr, error)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_string("socket");
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error = errno_string("connect " + socket_path);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void UdsClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool UdsClient::request(const MatchRequest& request, MatchResponse& response,
                        std::string& error) {
  if (fd_ < 0) {
    error = "not connected";
    return false;
  }
  std::string payload;
  try {
    payload = encode_request(request);
  } catch (const std::invalid_argument& e) {
    // Control characters in a lookup field: refuse to send rather than
    // ship a frame the server must reject (or worse, misinterpret).
    error = e.what();
    return false;
  }
  if (!write_frame(fd_, payload)) {
    error = "failed to write request frame";
    return false;
  }
  if (!read_frame(fd_, payload)) {
    error = "connection closed before a response arrived";
    return false;
  }
  return decode_response(payload, response, error);
}

}  // namespace graftmatch::serve
