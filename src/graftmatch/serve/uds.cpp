#include "graftmatch/serve/uds.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace graftmatch::serve {
namespace {

bool fill_sockaddr(const std::string& path, sockaddr_un& addr,
                   std::string& error) {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    error = "socket path empty or longer than sockaddr_un allows: " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

std::string errno_string(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

UdsServer::UdsServer(MatchServer& server, std::string socket_path)
    : server_(server), socket_path_(std::move(socket_path)) {}

UdsServer::~UdsServer() { stop(); }

bool UdsServer::start(std::string& error) {
  if (listen_fd_ >= 0) return true;
  sockaddr_un addr;
  if (!fill_sockaddr(socket_path_, addr, error)) return false;

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_string("socket");
    return false;
  }
  ::unlink(socket_path_.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = errno_string("bind " + socket_path_);
    ::close(fd);
    return false;
  }
  if (::listen(fd, 16) < 0) {
    error = errno_string("listen " + socket_path_);
    ::close(fd);
    ::unlink(socket_path_.c_str());
    return false;
  }
  // Nonblocking listener: the accept loop polls with a timeout so
  // stop() never waits on a connection that never comes.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  listen_fd_ = fd;
  stopping_ = false;
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void UdsServer::stop() {
  if (listen_fd_ < 0) return;
  stopping_ = true;
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Cut live connections so their blocking read_frame calls return.
    const std::scoped_lock lock(connections_mutex_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    const std::scoped_lock lock(connections_mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(socket_path_.c_str());
}

void UdsServer::accept_loop() {
  while (!stopping_) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const std::scoped_lock lock(connections_mutex_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void UdsServer::serve_connection(int fd) {
  std::string payload;
  while (read_frame(fd, payload)) {
    MatchRequest request;
    MatchResponse response;
    std::string error;
    if (decode_request(payload, request, error)) {
      response = server_.solve(std::move(request));
    } else {
      response.ok = false;
      response.error = "bad request: " + error;
    }
    if (!write_frame(fd, encode_response(response))) break;
  }
  ::close(fd);
  const std::scoped_lock lock(connections_mutex_);
  for (int& tracked : connection_fds_) {
    if (tracked == fd) {
      tracked = connection_fds_.back();
      connection_fds_.pop_back();
      break;
    }
  }
}

UdsClient::~UdsClient() { close(); }

bool UdsClient::connect(const std::string& socket_path, std::string& error) {
  if (fd_ >= 0) close();
  sockaddr_un addr;
  if (!fill_sockaddr(socket_path, addr, error)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_string("socket");
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    error = errno_string("connect " + socket_path);
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void UdsClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool UdsClient::request(const MatchRequest& request, MatchResponse& response,
                        std::string& error) {
  if (fd_ < 0) {
    error = "not connected";
    return false;
  }
  if (!write_frame(fd_, encode_request(request))) {
    error = "failed to write request frame";
    return false;
  }
  std::string payload;
  if (!read_frame(fd_, payload)) {
    error = "connection closed before a response arrived";
    return false;
  }
  return decode_response(payload, response, error);
}

}  // namespace graftmatch::serve
