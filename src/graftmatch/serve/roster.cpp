#include "graftmatch/serve/roster.hpp"

#include <stdexcept>
#include <utility>

#include "graftmatch/baselines/hopcroft_karp.hpp"
#include "graftmatch/gen/suite.hpp"

namespace graftmatch::serve {

void GraphRoster::add(std::string name, BipartiteGraph graph) {
  if (find(name) != nullptr) {
    throw std::invalid_argument("GraphRoster: duplicate entry \"" + name +
                                "\"");
  }
  RosterEntry entry;
  entry.name = std::move(name);
  entry.maximum_cardinality = maximum_matching_cardinality(graph);
  entry.graph = std::move(graph);
  entries_.push_back(std::move(entry));
}

GraphRoster GraphRoster::from_suite(std::span<const std::string> names,
                                    double size_factor, std::uint64_t seed) {
  GraphRoster roster;
  for (const std::string& name : names) {
    roster.add(name, suite_instance(name).factory(size_factor, seed));
  }
  return roster;
}

const RosterEntry* GraphRoster::find(const std::string& name) const {
  for (const RosterEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace graftmatch::serve
