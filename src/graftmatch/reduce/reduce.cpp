#include "graftmatch/reduce/reduce.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "graftmatch/graph/edge_list.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch::reduce {
namespace {

// Below this many edges every phase runs serially; the property and
// exhaustive tests reduce hundreds of thousands of tiny graphs, and a
// fork/join per round would dominate. Results are identical either way
// (classification is read-only; application is always serial).
constexpr std::int64_t kSerialThreshold = 1 << 12;

/// Read-only union-find lookup, safe to call from parallel
/// classification (no path compression). Folds link an absorbed root
/// directly to the surviving root and always absorb the smaller class,
/// so chains stay logarithmic without compression.
vid_t find_root(const std::vector<vid_t>& parent, vid_t y) {
  while (parent[static_cast<std::size_t>(y)] != y) {
    y = parent[static_cast<std::size_t>(y)];
  }
  return y;
}

class Reducer {
 public:
  Reducer(const BipartiteGraph& g, ReduceMode mode)
      : g_(g),
        fold_(mode == ReduceMode::kDegree12),
        serial_(g.num_edges() < kSerialThreshold),
        alive_x_(static_cast<std::size_t>(g.num_x()), 1),
        class_alive_(static_cast<std::size_t>(g.num_y()), 1),
        queued_(static_cast<std::size_t>(g.num_x()), 0) {
    stats_.collected = true;
    stats_.mode = mode;
    if (fold_) {
      const std::size_t ny = static_cast<std::size_t>(g.num_y());
      y_parent_.resize(ny);
      std::iota(y_parent_.begin(), y_parent_.end(), vid_t{0});
      y_members_.resize(ny);
      for (std::size_t y = 0; y < ny; ++y) {
        y_members_[y] = {static_cast<vid_t>(y)};
      }
    }
  }

  Reduction run(ReduceMode mode) {
    Reduction out;
    out.mode = mode;
    out.orig_nx = g_.num_x();
    out.orig_ny = g_.num_y();

    obs::emit_begin(obs::names::kReduce, static_cast<std::int64_t>(mode));
    {
      const Timer timer;
      run_rounds();
      stats_.reduce_seconds = timer.elapsed();
    }
    {
      const Timer timer;
      obs::emit_begin(obs::names::kReduceCompact);
      compact(out);
      obs::emit_end(obs::names::kReduceCompact,
                    out.identity ? g_.num_edges() : out.kernel.num_edges());
      stats_.compact_seconds = timer.elapsed();
    }
    obs::emit_end(obs::names::kReduce, static_cast<std::int64_t>(mode));

    const BipartiteGraph& kernel = out.identity ? g_ : out.kernel;
    stats_.kernel_nx = kernel.num_x();
    stats_.kernel_ny = kernel.num_y();
    stats_.kernel_edges = kernel.num_edges();
    stats_.vertices_removed = (out.orig_nx - kernel.num_x()) +
                              (out.orig_ny - kernel.num_y());
    stats_.edges_removed = g_.num_edges() - kernel.num_edges();

    out.ops = std::move(ops_);
    if (!out.identity) out.y_members = std::move(y_members_);
    out.stats = stats_;
    return out;
  }

 private:
  /// Distinct live Y classes adjacent to x, counted with early exit at
  /// 3; the first two distinct roots land in `reps`. Read-only, so the
  /// parallel classification phase may call it concurrently.
  int live_degree_upto3(vid_t x, vid_t reps[2]) const {
    int count = 0;
    for (const vid_t y : g_.neighbors_of_x(x)) {
      const vid_t r = fold_ ? find_root(y_parent_, y) : y;
      if (!class_alive_[static_cast<std::size_t>(r)]) continue;
      if (count > 0 && reps[0] == r) continue;
      if (count > 1 && reps[1] == r) continue;
      if (count < 2) reps[count] = r;
      if (++count == 3) break;
    }
    return count;
  }

  /// Queue every live X neighbor of original Y vertex y for the next
  /// round (its live degree may have dropped).
  void touch_neighbors_of_y(vid_t y, std::vector<vid_t>& next) {
    for (const vid_t x : g_.neighbors_of_y(y)) {
      if (!alive_x_[static_cast<std::size_t>(x)] ||
          queued_[static_cast<std::size_t>(x)]) {
        continue;
      }
      queued_[static_cast<std::size_t>(x)] = 1;
      next.push_back(x);
    }
  }

  void apply_forced(vid_t x, vid_t r, std::vector<vid_t>& next) {
    ops_.push_back({Op::Kind::kForced, x, r, kInvalidVertex, 0});
    alive_x_[static_cast<std::size_t>(x)] = 0;
    class_alive_[static_cast<std::size_t>(r)] = 0;
    ++stats_.forced_matches;
    if (fold_) {
      for (const vid_t y : y_members_[static_cast<std::size_t>(r)]) {
        touch_neighbors_of_y(y, next);
      }
    } else {
      touch_neighbors_of_y(r, next);
    }
  }

  void apply_fold(vid_t x, vid_t ra, vid_t rb, std::vector<vid_t>& next) {
    // Absorb the smaller class into the larger (ties by smaller root)
    // so member lists grow small-to-large and parent chains stay
    // logarithmic.
    vid_t survivor = ra;
    vid_t absorbed = rb;
    const std::size_t sa = y_members_[static_cast<std::size_t>(ra)].size();
    const std::size_t sb = y_members_[static_cast<std::size_t>(rb)].size();
    if (sb > sa || (sb == sa && rb < ra)) std::swap(survivor, absorbed);

    auto& sm = y_members_[static_cast<std::size_t>(survivor)];
    auto& am = y_members_[static_cast<std::size_t>(absorbed)];
    const auto split = static_cast<std::int64_t>(sm.size());
    ops_.push_back({Op::Kind::kFold, x, survivor, absorbed, split});
    sm.insert(sm.end(), am.begin(), am.end());
    am.clear();
    am.shrink_to_fit();
    y_parent_[static_cast<std::size_t>(absorbed)] = survivor;
    alive_x_[static_cast<std::size_t>(x)] = 0;
    ++stats_.folds;
    // Only an x adjacent to BOTH classes loses live degree, and every
    // such x touches a member of the absorbed class (now sm's suffix).
    for (std::size_t i = static_cast<std::size_t>(split); i < sm.size(); ++i) {
      touch_neighbors_of_y(sm[i], next);
    }
  }

  void run_rounds() {
    if (fold_) {
      run_rounds_fold();
    } else {
      run_rounds_d1();
    }
  }

  /// d1 rounds with exact live-degree counters. Without folds a class
  /// is one Y vertex, so an X vertex's live degree is just a counter
  /// that decrements when a neighbor dies -- no adjacency rescans to
  /// classify, and the whole reduction is O(nx + edges of removed
  /// vertices). Only the counter initialization is parallel; every
  /// decrement happens in the serial apply loop, so the op log is
  /// identical at every thread count.
  void run_rounds_d1() {
    const vid_t nx = g_.num_x();
    deg_.resize(static_cast<std::size_t>(nx));
    if (serial_) {
      for (vid_t x = 0; x < nx; ++x) {
        deg_[static_cast<std::size_t>(x)] = g_.degree_x(x);
      }
    } else {
      parallel_region([&] {
#pragma omp for schedule(static)
        for (std::int64_t x = 0; x < nx; ++x) {
          deg_[static_cast<std::size_t>(x)] =
              g_.degree_x(static_cast<vid_t>(x));
        }
      });
    }

    std::vector<vid_t> candidates;
    for (vid_t x = 0; x < nx; ++x) {
      if (deg_[static_cast<std::size_t>(x)] <= 1) {
        queued_[static_cast<std::size_t>(x)] = 1;
        candidates.push_back(x);
      }
    }

    std::vector<vid_t> next;
    while (!candidates.empty()) {
      ++stats_.rounds;
      obs::emit_begin(obs::names::kReduceRound, stats_.rounds);
      std::int64_t ops_this_round = 0;
      next.clear();
      for (const vid_t x : candidates) {
        queued_[static_cast<std::size_t>(x)] = 0;
        if (!alive_x_[static_cast<std::size_t>(x)]) continue;
        if (deg_[static_cast<std::size_t>(x)] == 0) {
          alive_x_[static_cast<std::size_t>(x)] = 0;
          ++stats_.isolated_x;
          ++ops_this_round;
          continue;
        }
        // Exactly one live neighbor left; find it and force the match.
        vid_t r = kInvalidVertex;
        for (const vid_t y : g_.neighbors_of_x(x)) {
          if (class_alive_[static_cast<std::size_t>(y)]) {
            r = y;
            break;
          }
        }
        ops_.push_back({Op::Kind::kForced, x, r, kInvalidVertex, 0});
        alive_x_[static_cast<std::size_t>(x)] = 0;
        class_alive_[static_cast<std::size_t>(r)] = 0;
        ++stats_.forced_matches;
        ++ops_this_round;
        for (const vid_t x2 : g_.neighbors_of_y(r)) {
          if (!alive_x_[static_cast<std::size_t>(x2)]) continue;
          if (--deg_[static_cast<std::size_t>(x2)] <= 1 &&
              !queued_[static_cast<std::size_t>(x2)]) {
            queued_[static_cast<std::size_t>(x2)] = 1;
            next.push_back(x2);
          }
        }
      }
      obs::emit_end(obs::names::kReduceRound, stats_.rounds, ops_this_round);
      candidates.swap(next);
    }
  }

  void run_rounds_fold() {
    const vid_t nx = g_.num_x();
    std::vector<vid_t> candidates(static_cast<std::size_t>(nx));
    std::iota(candidates.begin(), candidates.end(), vid_t{0});
    std::vector<std::uint8_t> small;
    std::vector<vid_t> next;
    // A degree-2 X vertex is only reducible when folds are on.
    const int reducible_limit = fold_ ? 2 : 1;

    while (!candidates.empty()) {
      ++stats_.rounds;
      obs::emit_begin(obs::names::kReduceRound, stats_.rounds);

      // Classify against round-start state (read-only, thread-count
      // independent): which candidates could a rule apply to?
      const auto n = static_cast<std::int64_t>(candidates.size());
      small.assign(static_cast<std::size_t>(n), 0);
      if (serial_) {
        for (std::int64_t i = 0; i < n; ++i) {
          vid_t reps[2] = {kInvalidVertex, kInvalidVertex};
          small[static_cast<std::size_t>(i)] =
              live_degree_upto3(candidates[static_cast<std::size_t>(i)],
                                reps) <= reducible_limit;
        }
      } else {
        parallel_region([&] {
#pragma omp for schedule(dynamic, 512)
          for (std::int64_t i = 0; i < n; ++i) {
            vid_t reps[2] = {kInvalidVertex, kInvalidVertex};
            small[static_cast<std::size_t>(i)] =
                live_degree_upto3(candidates[static_cast<std::size_t>(i)],
                                  reps) <= reducible_limit;
          }
        });
      }

      // Apply serially in candidate order. Degrees are recomputed per
      // candidate because earlier applications in this pass may have
      // lowered them further; a candidate classified above the limit
      // cannot have dropped to it yet (only applications lower degrees,
      // and those queue the affected X vertices for the next round).
      std::int64_t ops_this_round = 0;
      next.clear();
      for (std::int64_t i = 0; i < n; ++i) {
        if (!small[static_cast<std::size_t>(i)]) continue;
        const vid_t x = candidates[static_cast<std::size_t>(i)];
        if (!alive_x_[static_cast<std::size_t>(x)]) continue;
        vid_t reps[2] = {kInvalidVertex, kInvalidVertex};
        const int deg = live_degree_upto3(x, reps);
        if (deg == 0) {
          alive_x_[static_cast<std::size_t>(x)] = 0;
          ++stats_.isolated_x;
          ++ops_this_round;
        } else if (deg == 1) {
          apply_forced(x, reps[0], next);
          ++ops_this_round;
        } else if (deg == 2 && fold_) {
          apply_fold(x, reps[0], reps[1], next);
          ++ops_this_round;
        }
      }
      for (const vid_t x : next) queued_[static_cast<std::size_t>(x)] = 0;
      obs::emit_end(obs::names::kReduceRound, stats_.rounds, ops_this_round);
      candidates.swap(next);
    }
  }

  void compact(Reduction& out) {
    // No rule fired: the graph IS its own kernel. Skip the CSR rebuild
    // and leave kernel/maps empty (identity contract, see Reduction);
    // degree-0 Y vertices, which no rule touches anyway, stay put.
    if (ops_.empty() && stats_.isolated_x == 0) {
      out.identity = true;
      return;
    }

    // Payoff gate (d1 only; the fold mode is opt-in and reported
    // as-is): compaction is a full O(n + m) CSR rebuild, so a
    // reduction that barely shrank the graph costs more than the
    // slightly smaller kernel saves. When less than 1/8 of the edges
    // AND less than 1/8 of the vertices would go, discard the log and
    // solve the original graph instead -- trivially matching-number
    // preserving, since the solver then sees every vertex the rules
    // would have matched. 1/8 tracks the break-even observed on the
    // bench suite (bench_reduce_gain).
    if (!fold_) {
      eid_t kernel_edges = 0;
      for (vid_t x = 0; x < g_.num_x(); ++x) {
        if (alive_x_[static_cast<std::size_t>(x)]) {
          kernel_edges += deg_[static_cast<std::size_t>(x)];
        }
      }
      // Each forced match removed one X and one Y; isolated X removed
      // themselves. (Isolated Y are only discovered during compaction
      // and count toward neither side of the gate.)
      const vid_t removed_vertices =
          2 * static_cast<vid_t>(stats_.forced_matches) + stats_.isolated_x;
      const bool edges_worth =
          (g_.num_edges() - kernel_edges) * 8 >= g_.num_edges();
      const bool vertices_worth =
          removed_vertices * 8 >= g_.num_vertices();
      if (!edges_worth && !vertices_worth) {
        ops_.clear();
        stats_.forced_matches = 0;
        stats_.isolated_x = 0;
        out.identity = true;
        return;
      }
    }

    const vid_t nx = g_.num_x();
    const vid_t ny = g_.num_y();

    std::vector<vid_t> x_to_kernel(static_cast<std::size_t>(nx),
                                   kInvalidVertex);
    for (vid_t x = 0; x < nx; ++x) {
      if (!alive_x_[static_cast<std::size_t>(x)]) continue;
      x_to_kernel[static_cast<std::size_t>(x)] =
          static_cast<vid_t>(out.kernel_x_to_orig.size());
      out.kernel_x_to_orig.push_back(x);
    }
    const auto knx = static_cast<vid_t>(out.kernel_x_to_orig.size());

    if (fold_) {
      compact_folded(out, knx, x_to_kernel);
      return;
    }

    // d1 path: classes are singleton original Y vertices, so kernel
    // rows stay sorted and duplicate-free and the CSR can be built
    // directly (and in parallel) without a canonicalization sort.
    std::vector<eid_t> counts(static_cast<std::size_t>(knx), 0);
    std::vector<std::uint8_t> used(static_cast<std::size_t>(ny), 0);
    const auto count_row = [&](vid_t i) {
      const vid_t x = out.kernel_x_to_orig[static_cast<std::size_t>(i)];
      eid_t degree = 0;
      for (const vid_t y : g_.neighbors_of_x(x)) {
        if (!class_alive_[static_cast<std::size_t>(y)]) continue;
        ++degree;
        // Benign same-value race across rows sharing a neighbor.
        relaxed_store(used[static_cast<std::size_t>(y)], std::uint8_t{1});
      }
      counts[static_cast<std::size_t>(i)] = degree;
    };
    if (serial_) {
      for (vid_t i = 0; i < knx; ++i) count_row(i);
    } else {
      parallel_region([&] {
#pragma omp for schedule(dynamic, 512)
        for (std::int64_t i = 0; i < knx; ++i) {
          count_row(static_cast<vid_t>(i));
        }
      });
    }

    // A live Y vertex with no live edge is dropped here: its removal
    // cannot cascade (it changes no X degree), so the rounds above
    // never need to look at the Y side.
    std::vector<vid_t> y_to_kernel(static_cast<std::size_t>(ny),
                                   kInvalidVertex);
    for (vid_t y = 0; y < ny; ++y) {
      if (!class_alive_[static_cast<std::size_t>(y)]) continue;
      if (used[static_cast<std::size_t>(y)]) {
        y_to_kernel[static_cast<std::size_t>(y)] =
            static_cast<vid_t>(out.kernel_y_to_rep.size());
        out.kernel_y_to_rep.push_back(y);
      } else {
        ++stats_.isolated_y;
      }
    }
    const auto kny = static_cast<vid_t>(out.kernel_y_to_rep.size());

    const eid_t total = exclusive_prefix_sum(counts);
    std::vector<eid_t> offsets(static_cast<std::size_t>(knx) + 1);
    for (vid_t i = 0; i < knx; ++i) {
      offsets[static_cast<std::size_t>(i)] =
          counts[static_cast<std::size_t>(i)];
    }
    offsets[static_cast<std::size_t>(knx)] = total;

    std::vector<vid_t> neighbors(static_cast<std::size_t>(total));
    const auto fill_row = [&](vid_t i) {
      const vid_t x = out.kernel_x_to_orig[static_cast<std::size_t>(i)];
      eid_t cursor = offsets[static_cast<std::size_t>(i)];
      for (const vid_t y : g_.neighbors_of_x(x)) {
        if (!class_alive_[static_cast<std::size_t>(y)]) continue;
        neighbors[static_cast<std::size_t>(cursor++)] =
            y_to_kernel[static_cast<std::size_t>(y)];
      }
    };
    if (serial_) {
      for (vid_t i = 0; i < knx; ++i) fill_row(i);
    } else {
      parallel_region([&] {
#pragma omp for schedule(dynamic, 512)
        for (std::int64_t i = 0; i < knx; ++i) {
          fill_row(static_cast<vid_t>(i));
        }
      });
    }
    out.kernel = BipartiteGraph::from_canonical_csr(std::move(offsets),
                                                    std::move(neighbors), kny);
  }

  /// d1d2 compaction: merged classes break row sortedness and can
  /// duplicate kernel edges, so go through from_edges (which merges
  /// duplicates). Serial; the fold mode is opt-in.
  void compact_folded(Reduction& out, vid_t knx,
                      const std::vector<vid_t>& x_to_kernel) {
    const vid_t ny = g_.num_y();
    std::vector<std::uint8_t> used(static_cast<std::size_t>(ny), 0);
    for (const vid_t x : out.kernel_x_to_orig) {
      for (const vid_t y : g_.neighbors_of_x(x)) {
        const vid_t r = find_root(y_parent_, y);
        if (class_alive_[static_cast<std::size_t>(r)]) {
          used[static_cast<std::size_t>(r)] = 1;
        }
      }
    }

    std::vector<vid_t> y_to_kernel(static_cast<std::size_t>(ny),
                                   kInvalidVertex);
    for (vid_t y = 0; y < ny; ++y) {
      // Kernel Y vertices are the live class roots with a live edge.
      if (y_parent_[static_cast<std::size_t>(y)] != y ||
          !class_alive_[static_cast<std::size_t>(y)]) {
        continue;
      }
      if (used[static_cast<std::size_t>(y)]) {
        y_to_kernel[static_cast<std::size_t>(y)] =
            static_cast<vid_t>(out.kernel_y_to_rep.size());
        out.kernel_y_to_rep.push_back(y);
      } else {
        ++stats_.isolated_y;
      }
    }

    EdgeList list;
    list.nx = knx;
    list.ny = static_cast<vid_t>(out.kernel_y_to_rep.size());
    for (const vid_t x : out.kernel_x_to_orig) {
      for (const vid_t y : g_.neighbors_of_x(x)) {
        const vid_t r = find_root(y_parent_, y);
        if (!class_alive_[static_cast<std::size_t>(r)]) continue;
        list.edges.push_back({x_to_kernel[static_cast<std::size_t>(x)],
                              y_to_kernel[static_cast<std::size_t>(r)]});
      }
    }
    out.kernel = BipartiteGraph::from_edges(list);
  }

  const BipartiteGraph& g_;
  const bool fold_;
  const bool serial_;
  std::vector<std::uint8_t> alive_x_;
  std::vector<std::uint8_t> class_alive_;  ///< indexed by class root
  std::vector<std::uint8_t> queued_;
  std::vector<eid_t> deg_;  ///< d1 only: live degree of each X vertex
  std::vector<vid_t> y_parent_;                 ///< d1d2 only
  std::vector<std::vector<vid_t>> y_members_;   ///< d1d2 only
  std::vector<Op> ops_;
  ReduceCounters stats_;
};

}  // namespace

Reduction reduce_graph(const BipartiteGraph& g, ReduceMode mode) {
  if (mode == ReduceMode::kNone) {
    // Verbatim kernel: no rules, identity maps, empty log. (The engine
    // short-circuits this case; direct callers get sane behavior.)
    Reduction out;
    out.mode = mode;
    out.orig_nx = g.num_x();
    out.orig_ny = g.num_y();
    out.kernel = g;
    out.kernel_x_to_orig.resize(static_cast<std::size_t>(g.num_x()));
    std::iota(out.kernel_x_to_orig.begin(), out.kernel_x_to_orig.end(),
              vid_t{0});
    out.kernel_y_to_rep.resize(static_cast<std::size_t>(g.num_y()));
    std::iota(out.kernel_y_to_rep.begin(), out.kernel_y_to_rep.end(),
              vid_t{0});
    out.stats.collected = true;
    out.stats.mode = mode;
    out.stats.kernel_nx = g.num_x();
    out.stats.kernel_ny = g.num_y();
    out.stats.kernel_edges = g.num_edges();
    return out;
  }
  Reducer reducer(g, mode);
  return reducer.run(mode);
}

Matching reconstruct_matching(const BipartiteGraph& original,
                              const Reduction& red,
                              const Matching& kernel_matching) {
  if (original.num_x() != red.orig_nx || original.num_y() != red.orig_ny) {
    throw std::invalid_argument(
        "reconstruct_matching: original graph does not match the reduction");
  }
  if (red.identity) {
    // The kernel IS the original graph (and red.kernel is empty), so a
    // kernel matching is already an original-graph matching.
    if (kernel_matching.num_x() != red.orig_nx ||
        kernel_matching.num_y() != red.orig_ny) {
      throw std::invalid_argument(
          "reconstruct_matching: matching does not fit the kernel");
    }
    return kernel_matching;
  }
  if (kernel_matching.num_x() != red.kernel.num_x() ||
      kernel_matching.num_y() != red.kernel.num_y()) {
    throw std::invalid_argument(
        "reconstruct_matching: matching does not fit the kernel");
  }

  obs::emit_begin(obs::names::kReduceReconstruct, red.stats.forced_matches);
  Matching result(red.orig_nx, red.orig_ny);

  if (red.y_members.empty()) {
    // No folds ever happened (none / d1, or ny == 0): classes are
    // singletons, so kernel matches map straight through and forced
    // pairs are pairwise disjoint from them and from each other.
    for (vid_t j = 0; j < red.kernel.num_y(); ++j) {
      const vid_t xk = kernel_matching.mate_of_y(j);
      if (xk == kInvalidVertex) continue;
      result.match(red.kernel_x_to_orig[static_cast<std::size_t>(xk)],
                   red.kernel_y_to_rep[static_cast<std::size_t>(j)]);
    }
    for (const Op& op : red.ops) {
      result.match(op.x, op.a);
    }
    obs::emit_end(obs::names::kReduceReconstruct, red.stats.forced_matches);
    return result;
  }

  // Full replay. State: per-class matched X (over original ids), the
  // mutable member lists, and each Y vertex's current class root.
  const auto ny = static_cast<std::size_t>(red.orig_ny);
  std::vector<vid_t> class_match(ny, kInvalidVertex);
  std::vector<std::vector<vid_t>> members = red.y_members;
  std::vector<vid_t> class_of(ny, kInvalidVertex);
  for (std::size_t r = 0; r < ny; ++r) {
    for (const vid_t y : members[r]) {
      class_of[static_cast<std::size_t>(y)] = static_cast<vid_t>(r);
    }
  }

  for (vid_t j = 0; j < red.kernel.num_y(); ++j) {
    const vid_t xk = kernel_matching.mate_of_y(j);
    if (xk == kInvalidVertex) continue;
    class_match[static_cast<std::size_t>(
        red.kernel_y_to_rep[static_cast<std::size_t>(j)])] =
        red.kernel_x_to_orig[static_cast<std::size_t>(xk)];
  }

  for (auto it = red.ops.rbegin(); it != red.ops.rend(); ++it) {
    const Op& op = *it;
    if (op.kind == Op::Kind::kForced) {
      // The class died unmatched in everything replayed so far; the
      // pendant x takes it. Which member x ends up on is settled by
      // the fold unwinds (reverse-later ops) that built the class.
      class_match[static_cast<std::size_t>(op.a)] = op.x;
      continue;
    }
    // Undo the fold: peel the absorbed members off the survivor's
    // suffix, then place the merged class's matched X (if any) on the
    // side it is actually adjacent to and give op.x the other side
    // (op.x was adjacent to both at fold time).
    auto& sm = members[static_cast<std::size_t>(op.a)];
    auto& am = members[static_cast<std::size_t>(op.b)];
    am.assign(sm.begin() + op.split, sm.end());
    sm.resize(static_cast<std::size_t>(op.split));
    for (const vid_t y : am) {
      class_of[static_cast<std::size_t>(y)] = op.b;
    }
    const vid_t xp = class_match[static_cast<std::size_t>(op.a)];
    if (xp == kInvalidVertex) {
      class_match[static_cast<std::size_t>(op.a)] = op.x;
      continue;
    }
    bool on_survivor = false;
    for (const vid_t y : original.neighbors_of_x(xp)) {
      if (class_of[static_cast<std::size_t>(y)] == op.a) {
        on_survivor = true;
        break;
      }
    }
    if (on_survivor) {
      class_match[static_cast<std::size_t>(op.b)] = op.x;
    } else {
      class_match[static_cast<std::size_t>(op.b)] = xp;
      class_match[static_cast<std::size_t>(op.a)] = op.x;
    }
  }

  // Every fold is unwound, so every class is the singleton {root}.
  for (std::size_t r = 0; r < ny; ++r) {
    if (class_match[r] != kInvalidVertex) {
      result.match(class_match[r], static_cast<vid_t>(r));
    }
  }
  obs::emit_end(obs::names::kReduceReconstruct, red.stats.forced_matches);
  return result;
}

std::string debug_summary(const Reduction& red) {
  const ReduceCounters& s = red.stats;
  std::ostringstream out;
  out << "reduce[mode=" << to_string(red.mode) << " orig=" << red.orig_nx
      << "x" << red.orig_ny << " rounds=" << s.rounds
      << " isolated=" << s.isolated_x << "+" << s.isolated_y
      << " forced=" << s.forced_matches << " folds=" << s.folds
      << " kernel=" << s.kernel_nx << "x" << s.kernel_ny << "/"
      << s.kernel_edges << " ops=" << red.ops.size() << "]";
  return out.str();
}

}  // namespace graftmatch::reduce
