// Kernelization pre-pass: shrink a bipartite graph with matching-number
// preserving reductions before handing it to a solver.
//
// The reductions are classic (Karp--Sipser style), applied to exhaustion
// in rounds:
//   * degree-0: an isolated vertex is in no matching; drop it.
//   * degree-1 (pendant): if x has exactly one live neighbor y, some
//     maximum matching contains (x, y); force the match and remove both.
//   * degree-2 fold (optional, --reduce=d1d2): if x has exactly two live
//     neighbors y1, y2, merge y1 and y2 into one vertex y' and delete x;
//     nu(G) = nu(G') + 1, and any maximum matching of G' lifts back (if
//     y' is matched to x', then x' is adjacent to y1 or y2 -- match it
//     there and match x to the other; if y' is unmatched, match x to
//     either).
// Y vertices therefore live in CLASSES (merged sets); the kernel has
// one Y vertex per live class. A reconstruction log records every
// forced match and fold so that ANY maximum matching of the kernel maps
// back to a maximum matching of the original graph (reverse replay; see
// reconstruct_matching).
//
// Determinism: classification of candidates runs in parallel but is
// read-only against round-start state; applications happen serially in
// candidate order, so the kernel, the log, and every counter are
// identical for every thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch::reduce {

/// One entry of the reconstruction log, recorded in application order.
struct Op {
  enum class Kind : std::uint8_t {
    kForced,  ///< pendant x force-matched to its only live Y class
    kFold,    ///< degree-2 x removed, its two Y classes merged
  };

  Kind kind = Kind::kForced;
  vid_t x = kInvalidVertex;  ///< original X vertex removed by this op
  /// kForced: root of the Y class x was matched to.
  /// kFold: root of the surviving (larger) class.
  vid_t a = kInvalidVertex;
  /// kFold only: root of the absorbed class.
  vid_t b = kInvalidVertex;
  /// kFold only: member count of the survivor before the merge. The
  /// survivor's member list at fold time is its first `split` entries;
  /// the absorbed class's members are appended after them, which is
  /// exactly what reverse replay truncates to undo the merge.
  std::int64_t split = 0;

  friend bool operator==(const Op&, const Op&) = default;
};

/// Result of reduce_graph: the kernel, the maps from kernel ids back to
/// original ids, and the log needed to lift a kernel matching.
struct Reduction {
  ReduceMode mode = ReduceMode::kNone;
  vid_t orig_nx = 0;
  vid_t orig_ny = 0;

  /// True when the kernel IS the original graph: either no rule fired
  /// (no op, no isolated X), or -- d1 only -- the rules removed less
  /// than 1/8 of both edges and vertices, in which case the log is
  /// discarded because the O(n + m) compaction would cost more than
  /// the slightly smaller kernel saves. `kernel`, the id maps, and
  /// `ops` are left EMPTY so an irreducible graph pays no copy; use
  /// solve_graph() to pick the graph a solver should run on, and note
  /// any degree-0 Y vertices stay (they cannot affect a matching).
  /// kNone reductions are not flagged: they keep the documented
  /// verbatim-copy behavior.
  bool identity = false;

  /// The compacted kernel; empty when `identity` is set.
  BipartiteGraph kernel;

  /// kernel X id -> original X id (ascending in original id).
  std::vector<vid_t> kernel_x_to_orig;
  /// kernel Y id -> root (original Y id) of the class it stands for.
  std::vector<vid_t> kernel_y_to_rep;

  /// Reconstruction log in application order.
  std::vector<Op> ops;

  /// d1d2 only (empty otherwise): post-reduction member list of every
  /// Y class, indexed by root. Every original Y id appears in exactly
  /// one list; a class absorbed by a fold has an empty list (its
  /// members sit in its survivor's suffix).
  std::vector<std::vector<vid_t>> y_members;

  /// Counters for RunStats::reduce (reconstruct_seconds is stamped by
  /// the engine driver, everything else here).
  ReduceCounters stats;
};

/// Run the reduction pipeline for `mode` and compact the remainder into
/// a fresh CSR kernel (renumbered, isolated Y classes dropped).
/// kNone returns a verbatim copy with identity maps and an empty log.
/// Emits obs spans (reduce, reduce.round, reduce.compact) when a trace
/// run is active. Parallel phases honor the ambient OpenMP thread
/// count; wrap in ThreadCountGuard to pin it.
Reduction reduce_graph(const BipartiteGraph& g, ReduceMode mode);

/// The graph a solver should run on after `reduction`: the compacted
/// kernel, or `original` itself for an identity reduction (whose
/// kernel member is deliberately left empty).
inline const BipartiteGraph& solve_graph(const Reduction& reduction,
                                         const BipartiteGraph& original) {
  return reduction.identity ? original : reduction.kernel;
}

/// Lift a matching of the kernel to a matching of the original graph by
/// replaying the log in reverse. If `kernel_matching` is maximum on the
/// kernel, the result is maximum on `original` (cardinality grows by
/// exactly forced_matches + folds). Throws std::invalid_argument when
/// the matching or graph dimensions do not match the reduction.
Matching reconstruct_matching(const BipartiteGraph& original,
                              const Reduction& reduction,
                              const Matching& kernel_matching);

/// One-line description of a reduction (mode, rounds, op counts, kernel
/// shape) for test failure messages and fuzz reproducer dumps.
std::string debug_summary(const Reduction& reduction);

}  // namespace graftmatch::reduce
