// Configuration and instrumentation shared by all matching algorithms.
//
// The paper's evaluation is driven by algorithmic metrics (edges
// traversed, phases, augmenting-path lengths -- Fig. 1), step timing
// breakdowns (Fig. 6), frontier anatomy (Fig. 8), and search rates
// (Fig. 4). Every algorithm in this library fills the same RunStats so
// the benches can print those tables uniformly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graftmatch/runtime/affinity.hpp"
#include "graftmatch/types.hpp"

namespace graftmatch {

/// Kernelization pre-pass selection (src/graftmatch/reduce/). The mode
/// names match the `--reduce=` CLI values.
enum class ReduceMode {
  kNone,      ///< no preprocessing ("none")
  kDegree1,   ///< isolated removal + pendant cascade ("d1")
  kDegree12,  ///< d1 plus degree-2 X-vertex folds ("d1d2")
};

/// Canonical CLI name of a mode ("none" / "d1" / "d1d2").
std::string to_string(ReduceMode mode);

/// Inverse of to_string; returns false (leaving `mode` untouched) for
/// unknown names.
bool parse_reduce_mode(const std::string& name, ReduceMode& mode);

/// Sharded-execution selection (src/graftmatch/shard/). The mode names
/// match the `--shard=` CLI values.
enum class ShardMode {
  kNone,  ///< monolithic solve ("none")
  kDm,    ///< Dulmage-Mendelsohn block sharding ("dm")
};

/// Canonical CLI name of a mode ("none" / "dm").
std::string to_string(ShardMode mode);

/// Inverse of to_string; returns false (leaving `mode` untouched) for
/// unknown names.
bool parse_shard_mode(const std::string& name, ShardMode& mode);

/// Traversal-direction policy for the level-synchronous searches
/// (engine/direction.hpp). The names match the `--dirsel=` CLI values.
enum class DirectionPolicy {
  kFixed,     ///< the paper's |F| >= unvisited/alpha rule ("fixed")
  kAdaptive,  ///< Beamer-style scout/awake edge counts with hysteresis
              ///< ("adaptive")
  kTopDown,   ///< never switch to bottom-up ("td"; test/ablation arm)
  kBottomUp,  ///< always prefer bottom-up ("bu"; test/ablation arm)
};

/// Canonical CLI name of a policy ("fixed" / "adaptive" / "td" / "bu").
std::string to_string(DirectionPolicy policy);

/// Inverse of to_string; returns false (leaving `policy` untouched) for
/// unknown names.
bool parse_direction_policy(const std::string& name, DirectionPolicy& policy);

/// Bottom-up kernel arm (engine/word_kernels.hpp). The names match the
/// `--kernel=` CLI values.
enum class BottomUpKernel {
  kBit,   ///< per-candidate pool scan, per-bit visited updates ("bit")
  kWord,  ///< whole-word ctz scan of the visited complement with
          ///< word-granular claims ("word")
};

/// Canonical CLI name of a kernel arm ("bit" / "word").
std::string to_string(BottomUpKernel kernel);

/// Inverse of to_string; returns false (leaving `kernel` untouched) for
/// unknown names.
bool parse_bottom_up_kernel(const std::string& name, BottomUpKernel& kernel);

/// Knobs common to all algorithms (each algorithm reads the subset that
/// applies to it; defaults reproduce the paper's settings).
struct RunConfig {
  /// OpenMP thread count; <= 0 keeps the runtime default.
  int threads = 0;

  /// Direction-optimization and grafting threshold (paper: alpha ~= 5).
  double alpha = kDefaultAlpha;

  /// MS-BFS-Graft ablation switches (Fig. 7): with both false the
  /// algorithm degenerates to the plain MS-BFS of Azad et al.
  bool direction_optimizing = true;
  bool tree_grafting = true;

  /// Record (phase, level, frontier size, direction) samples (Fig. 8).
  bool collect_frontier_trace = false;

  /// Record the augmenting-path length distribution (Fig. 1c detail).
  bool collect_path_histogram = false;

  /// MS-BFS-Graft only: record one PhaseStats row per phase.
  bool collect_phase_stats = false;

  /// MS-BFS-Graft only: after every BFS phase, run an O(n + m) audit of
  /// the alternating-forest invariants (tree disjointness, parent edges
  /// exist, root-pointer consistency, alternation, leaf validity) and
  /// throw std::logic_error on any violation. For tests and debugging;
  /// roughly doubles the runtime.
  bool check_invariants = false;

  /// Pothen-Fan fairness: alternate adjacency scan direction per phase.
  bool pf_fairness = true;

  /// Push-relabel tuning (paper Sec. V-A follows Langguth et al.:
  /// queue limit 500; relabel frequency 2 serial, 16 at 40 threads).
  int pr_queue_limit = 500;
  int pr_relabel_frequency = 2;

  /// Thread pinning policy (paper: compact via GOMP_CPU_AFFINITY).
  PinPolicy pin = PinPolicy::kNone;

  /// Seed for any tie-breaking randomness an algorithm may use.
  std::uint64_t seed = 1;

  /// Kernelization pre-pass (engine::run_reduced): reduce the graph,
  /// solve on the kernel, reconstruct onto the original. Solvers
  /// themselves ignore this field; it is read by the engine driver.
  ReduceMode reduce = ReduceMode::kNone;

  /// Sharded execution (engine::run_sharded): partition the graph into
  /// independent Dulmage-Mendelsohn blocks, solve the deficient blocks
  /// concurrently, and stitch. Solvers themselves ignore this field; it
  /// is read by the engine driver. Composes with `reduce` (the kernel
  /// is what gets sharded).
  ShardMode shard = ShardMode::kNone;

  /// Traversal-direction policy for the level-synchronous searches
  /// (MS-BFS-Graft's top-down/bottom-up switch). kFixed is the paper's
  /// alpha rule; kAdaptive switches on scout/awake edge counts with
  /// hysteresis (engine/direction.hpp). Only consulted when
  /// `direction_optimizing` is set.
  DirectionPolicy direction_policy = DirectionPolicy::kFixed;

  /// Bottom-up kernel arm: per-candidate pool scan (kBit, the default)
  /// or word-level scan of the visited complement with word-granular
  /// claims (kWord; engine/word_kernels.hpp). Cardinalities are
  /// identical either way; bench_micro_kernels A/Bs the arms.
  BottomUpKernel bottom_up_kernel = BottomUpKernel::kBit;
};

/// Per-phase summary of an MS-BFS-Graft run (RunConfig::
/// collect_phase_stats). One row per repeat-until iteration of
/// Algorithm 3, mirroring the phase-level discussion in Secs. III and V.
struct PhaseStats {
  std::int64_t phase = 0;          ///< 1-based phase index
  std::int64_t levels = 0;         ///< BFS levels run in Step 1
  std::int64_t bottom_up_levels = 0;
  std::int64_t edges = 0;          ///< edges traversed in this phase
  std::int64_t augmentations = 0;  ///< paths found and flipped
  std::int64_t active_x = 0;       ///< |activeX| at the graft decision
  std::int64_t renewable_y = 0;    ///< |renewableY| at the graft decision
  bool grafted = false;            ///< Step 3 chose grafting (not rebuild)
  double seconds = 0.0;
};

/// One frontier-size sample from a level-synchronous search.
struct FrontierSample {
  std::int64_t phase = 0;
  std::int64_t level = 0;          ///< BFS level within the phase
  std::int64_t frontier_size = 0;  ///< |F| entering this level
  bool bottom_up = false;          ///< direction chosen for this level
};

/// Counters distilled from the structured trace (src/graftmatch/obs/)
/// when a run executed with tracing armed. `collected` stays false on
/// untraced runs and in GRAFTMATCH_TRACE=OFF builds; the other fields
/// are then meaningless.
struct ObsCounters {
  bool collected = false;
  std::int64_t events = 0;   ///< trace events captured across threads
  std::int64_t dropped = 0;  ///< events lost to full per-thread rings
  std::int64_t levels = 0;   ///< BFS levels (frontier samples) observed
  std::int64_t bottom_up_levels = 0;
  std::int64_t direction_switches = 0;  ///< mid-phase direction flips
  std::int64_t grafts = 0;              ///< phases ending in a graft
  std::int64_t rebuilds = 0;            ///< phases ending in a rebuild
  std::int64_t frontier_peak = 0;       ///< max |F| over all levels
  std::int64_t frontier_volume = 0;     ///< sum of |F| over all levels
};

/// Counters from MS-BFS-Graft's epoch-versioned phase bookkeeping
/// (runtime/epoch_array.hpp + the GraftWorkspace). They quantify how
/// much full-range sweeping the incremental scheme avoided: the
/// classification sweeps scale with `classified_y`/`counted_x` (the
/// vertices phases actually touched) instead of phases * (nx + ny), the
/// candidate pool is built lazily per direction-switch streak
/// (`pool_builds`), maintained by re-inserting freed vertices
/// (`pool_reinserts`) and dropped whole on rebuild, and every rebuild
/// tears the forest down with two epoch bumps (`epoch_bumps`) instead
/// of an O(nx) clear. `collected` stays false for non-graft algorithms.
struct BookkeepingCounters {
  bool collected = false;
  bool workspace_warm = false;   ///< arrays reused from a previous run
  std::int64_t pool_builds = 0;  ///< full O(ny) candidate-pool builds
  std::int64_t pool_reinserts = 0;  ///< freed Ys re-inserted into the pool
  std::int64_t classified_y = 0;    ///< forest Ys classified (all phases)
  std::int64_t counted_x = 0;       ///< forest Xs counted (all phases)
  std::int64_t epoch_bumps = 0;     ///< O(1) forest invalidations
};

/// Counters from the pluggable direction-selection seam
/// (engine/direction.hpp) and the bottom-up kernel arm
/// (engine/word_kernels.hpp). `collected` stays false for algorithms
/// without a direction switch; the other fields are then meaningless.
/// Stamped by ms_bfs_graft so the chosen policy and every per-level
/// decision stay visible in the stats JSON ("direction" block).
struct DirectionCounters {
  bool collected = false;
  DirectionPolicy policy = DirectionPolicy::kFixed;
  BottomUpKernel kernel = BottomUpKernel::kBit;
  std::int64_t decisions = 0;        ///< levels the policy decided
  std::int64_t bottom_up_levels = 0; ///< decisions that chose bottom-up
  std::int64_t switches = 0;         ///< direction changes between levels
  /// Frontier edge mass summed over the decisions that computed it
  /// (adaptive policy only; 0 under fixed/forced policies).
  std::int64_t scout_edges = 0;
  /// Estimated unvisited-Y edge mass summed over the same decisions.
  std::int64_t awake_edges = 0;
  /// Word-kernel activity (kWord arm only): words committed with a
  /// word-granular claim, and commits that fell back to the per-bit
  /// CAS path under contention.
  std::int64_t word_commits = 0;
  std::int64_t word_fallbacks = 0;
};

/// Counters from the kernelization pre-pass (src/graftmatch/reduce/).
/// `collected` stays false when no reduction ran; the other fields are
/// then meaningless. Stamped by engine::run_reduced.
struct ReduceCounters {
  bool collected = false;
  ReduceMode mode = ReduceMode::kNone;
  std::int64_t rounds = 0;          ///< reduction rounds until fixpoint
  std::int64_t isolated_x = 0;      ///< degree-0 X vertices removed
  std::int64_t isolated_y = 0;      ///< degree-0 Y vertices removed
  std::int64_t forced_matches = 0;  ///< pendant (degree-1) matches
  std::int64_t folds = 0;           ///< degree-2 X-vertex folds
  std::int64_t vertices_removed = 0;  ///< X+Y vertices not in the kernel
  std::int64_t edges_removed = 0;     ///< original edges not in the kernel
  std::int64_t kernel_nx = 0;
  std::int64_t kernel_ny = 0;
  std::int64_t kernel_edges = 0;
  double reduce_seconds = 0.0;       ///< reduction rounds
  double compact_seconds = 0.0;      ///< renumber + kernel CSR build
  double reconstruct_seconds = 0.0;  ///< kernel matching -> original
};

/// Counters from the sharded execution path (src/graftmatch/shard/).
/// `collected` stays false when no sharded run happened; the other
/// fields are then meaningless. Stamped by engine::run_sharded.
///
/// A "block" is one connected component of the subgraph induced by one
/// coarse DM class (H / S / V of the approximate decomposition built
/// from the initializer's matching). Blocks with no unmatched row or no
/// unmatched column are provably maximum already and are frozen (their
/// initializer edges pass straight through to the stitched matching);
/// only the rest are extracted and solved.
struct ShardCounters {
  bool collected = false;
  ShardMode mode = ShardMode::kNone;
  /// The plan degenerated (zero solvable blocks, or one dominant block
  /// covering most of the graph): the solver ran monolithically on the
  /// original graph, continuing from the initializer's matching.
  bool fallback = false;
  std::int64_t blocks_total = 0;   ///< components across all classes
  std::int64_t blocks_solved = 0;  ///< extracted and solved to maximum
  std::int64_t blocks_frozen = 0;  ///< provably maximum, skipped
  std::int64_t blocks_h = 0;       ///< components in the horizontal class
  std::int64_t blocks_s = 0;       ///< components in the square class
  std::int64_t blocks_v = 0;       ///< components in the vertical class
  std::int64_t solved_wide = 0;    ///< blocks solved with the full team
  std::int64_t solved_pooled = 0;  ///< blocks solved via the 1-thread pool
  std::int64_t largest_block_edges = 0;  ///< over the solvable blocks
  std::int64_t frozen_matched = 0;  ///< initializer edges passed through
  double decompose_seconds = 0.0;   ///< init reach + component labeling
  double extract_seconds = 0.0;     ///< sub-CSR builds + index remapping
  double solve_seconds = 0.0;       ///< all per-block solves (wall clock)
  double stitch_seconds = 0.0;      ///< remap back + audit
};

/// Counters from the incremental matcher (src/graftmatch/dynamic/).
/// `collected` stays false on one-shot runs; the other fields are then
/// meaningless. Stamped by dynamic::DynamicMatcher, accumulated over
/// the matcher's whole lifetime (every batch since construction).
struct DynamicCounters {
  bool collected = false;
  std::int64_t batches = 0;        ///< add/remove batches applied
  std::int64_t edges_added = 0;    ///< edges actually inserted (deduped)
  std::int64_t edges_removed = 0;  ///< edges actually erased (deduped)
  std::int64_t direct_matches = 0;    ///< both-endpoints-free fast path
  std::int64_t reaugment_searches = 0;  ///< localized BFS launched
  std::int64_t reaugment_paths = 0;     ///< augmenting paths applied
  std::int64_t sweep_rounds = 0;   ///< all-free-X sweeps after inserts
  std::int64_t resolves = 0;       ///< staleness-triggered full re-solves
  std::int64_t compactions = 0;    ///< overlay folded back into CSR
  std::int64_t overlay_peak = 0;   ///< max overlay cost() observed
  double apply_seconds = 0.0;      ///< overlay mutation (both batch kinds)
  double reaugment_seconds = 0.0;  ///< localized searches + sweeps
  double compact_seconds = 0.0;    ///< payoff-gated compactions
  double resolve_seconds = 0.0;    ///< full re-solves via the registry
};

/// Wall-clock seconds per algorithm step (Fig. 6's categories).
struct StepSeconds {
  double top_down = 0.0;
  double bottom_up = 0.0;
  double augment = 0.0;
  double graft = 0.0;       ///< frontier reconstruction (Step 3)
  double statistics = 0.0;  ///< active/renewable classification (Alg. 7 l.2-4)
  double other = 0.0;       ///< init, bookkeeping not in the above

  double total() const noexcept {
    return top_down + bottom_up + augment + graft + statistics + other;
  }
};

/// Everything a single algorithm run reports.
struct RunStats {
  std::string algorithm;

  std::int64_t phases = 0;
  std::int64_t edges_traversed = 0;  ///< adjacency entries examined
  std::int64_t augmentations = 0;    ///< augmenting paths applied
  std::int64_t total_path_edges = 0; ///< sum of augmenting path lengths

  std::int64_t initial_cardinality = 0;
  std::int64_t final_cardinality = 0;

  /// OpenMP threads the run's parallel regions used (1 for the serial
  /// algorithms). Stamped by the engine's StatsSink.
  int threads_used = 0;

  double seconds = 0.0;  ///< total wall time of the matching run
  StepSeconds step_seconds;

  /// Trace-derived counters (see ObsCounters). Stamped by StatsSink
  /// when the run owned an armed trace.
  ObsCounters obs;

  /// Kernelization counters (see ReduceCounters). Stamped by
  /// engine::run_reduced when a reduction pre-pass ran; on reduced runs
  /// the cardinalities above are in original-graph terms while
  /// phases/edges/seconds describe the kernel solve.
  ReduceCounters reduce;

  /// Epoch-bookkeeping counters (see BookkeepingCounters). Stamped by
  /// ms_bfs_graft.
  BookkeepingCounters bookkeeping;

  /// Direction-policy and kernel-arm counters (see DirectionCounters).
  /// Stamped by ms_bfs_graft.
  DirectionCounters direction;

  /// Sharded-execution counters (see ShardCounters). Stamped by
  /// engine::run_sharded when a sharded run happened; phases/edges/
  /// augmentations are then summed over the per-block solves.
  ShardCounters shard;

  /// Incremental-matching counters (see DynamicCounters). Stamped by
  /// dynamic::DynamicMatcher::stats(); lifetime-cumulative.
  DynamicCounters dynamic;

  /// Filled when RunConfig::collect_frontier_trace is set.
  std::vector<FrontierSample> frontier_trace;

  /// Augmenting-path length distribution: length (in edges, always odd)
  /// -> count. Filled by the augmenting-path based algorithms when
  /// RunConfig::collect_path_histogram is set.
  std::map<std::int64_t, std::int64_t> path_length_histogram;

  /// Per-phase rows (RunConfig::collect_phase_stats; MS-BFS-Graft only).
  std::vector<PhaseStats> phase_stats;

  /// Mean augmenting-path length in edges (Fig. 1c), 0 when none found.
  double avg_path_length() const noexcept {
    return augmentations > 0 ? static_cast<double>(total_path_edges) /
                                   static_cast<double>(augmentations)
                             : 0.0;
  }

  /// Search rate in millions of traversed edges per second (Fig. 4):
  /// traversed edges / runtime, with augmentation time included, exactly
  /// as the paper computes it (Sec. V-C).
  double mteps() const noexcept {
    return seconds > 0.0 ? static_cast<double>(edges_traversed) / seconds / 1e6
                         : 0.0;
  }
};

/// Render a one-line summary: algorithm, |M|, phases, edges, time.
std::string format_run_stats(const RunStats& stats);

/// Render the full stats as a self-contained JSON object (scalars, the
/// step breakdown, and -- when collected -- phase stats, the path-length
/// histogram, and the frontier trace). Machine-readable counterpart of
/// format_run_stats for tooling (examples/matching_tool --json).
std::string run_stats_json(const RunStats& stats);

}  // namespace graftmatch
