#include "graftmatch/core/run_stats.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

/// JSON has no NaN/Inf literals; raw-streaming a non-finite double
/// (possible e.g. from a degenerate 0-second run) would corrupt the
/// document. Emit 0 for anything non-finite.
void append_number(std::ostringstream& out, double value) {
  if (std::isfinite(value)) {
    out << value;
  } else {
    out << 0;
  }
}

void append_escaped(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string to_string(ReduceMode mode) {
  switch (mode) {
    case ReduceMode::kNone: return "none";
    case ReduceMode::kDegree1: return "d1";
    case ReduceMode::kDegree12: return "d1d2";
  }
  return "none";
}

bool parse_reduce_mode(const std::string& name, ReduceMode& mode) {
  if (name == "none") {
    mode = ReduceMode::kNone;
  } else if (name == "d1") {
    mode = ReduceMode::kDegree1;
  } else if (name == "d1d2") {
    mode = ReduceMode::kDegree12;
  } else {
    return false;
  }
  return true;
}

std::string to_string(ShardMode mode) {
  switch (mode) {
    case ShardMode::kNone: return "none";
    case ShardMode::kDm: return "dm";
  }
  return "none";
}

bool parse_shard_mode(const std::string& name, ShardMode& mode) {
  if (name == "none") {
    mode = ShardMode::kNone;
  } else if (name == "dm") {
    mode = ShardMode::kDm;
  } else {
    return false;
  }
  return true;
}

std::string to_string(DirectionPolicy policy) {
  switch (policy) {
    case DirectionPolicy::kFixed: return "fixed";
    case DirectionPolicy::kAdaptive: return "adaptive";
    case DirectionPolicy::kTopDown: return "td";
    case DirectionPolicy::kBottomUp: return "bu";
  }
  return "fixed";
}

bool parse_direction_policy(const std::string& name,
                            DirectionPolicy& policy) {
  if (name == "fixed") {
    policy = DirectionPolicy::kFixed;
  } else if (name == "adaptive") {
    policy = DirectionPolicy::kAdaptive;
  } else if (name == "td") {
    policy = DirectionPolicy::kTopDown;
  } else if (name == "bu") {
    policy = DirectionPolicy::kBottomUp;
  } else {
    return false;
  }
  return true;
}

std::string to_string(BottomUpKernel kernel) {
  switch (kernel) {
    case BottomUpKernel::kBit: return "bit";
    case BottomUpKernel::kWord: return "word";
  }
  return "bit";
}

bool parse_bottom_up_kernel(const std::string& name,
                            BottomUpKernel& kernel) {
  if (name == "bit") {
    kernel = BottomUpKernel::kBit;
  } else if (name == "word") {
    kernel = BottomUpKernel::kWord;
  } else {
    return false;
  }
  return true;
}

std::string format_run_stats(const RunStats& stats) {
  std::ostringstream out;
  out << stats.algorithm << ": |M|=" << stats.final_cardinality << " (+"
      << (stats.final_cardinality - stats.initial_cardinality) << ")"
      << " phases=" << stats.phases << " edges=" << stats.edges_traversed
      << " paths=" << stats.augmentations
      << " avg_len=" << stats.avg_path_length() << " time="
      << format_seconds(stats.seconds) << " rate=" << stats.mteps()
      << " MTEPS";
  if (stats.reduce.collected) {
    out << " reduce=" << to_string(stats.reduce.mode) << "(kernel "
        << stats.reduce.kernel_nx << "x" << stats.reduce.kernel_ny << ", "
        << stats.reduce.kernel_edges << " edges, forced "
        << stats.reduce.forced_matches << ")";
  }
  if (stats.shard.collected) {
    out << " shard=" << to_string(stats.shard.mode);
    if (stats.shard.fallback) {
      out << "(fallback)";
    } else {
      out << "(" << stats.shard.blocks_solved << "/"
          << stats.shard.blocks_total << " blocks solved, "
          << stats.shard.blocks_frozen << " frozen)";
    }
  }
  if (stats.direction.collected &&
      (stats.direction.policy != DirectionPolicy::kFixed ||
       stats.direction.kernel != BottomUpKernel::kBit)) {
    out << " dirsel=" << to_string(stats.direction.policy)
        << " kernel=" << to_string(stats.direction.kernel);
  }
  return out.str();
}

std::string run_stats_json(const RunStats& stats) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "{\"algorithm\":";
  append_escaped(out, stats.algorithm);
  out << ",\"phases\":" << stats.phases
      << ",\"edges_traversed\":" << stats.edges_traversed
      << ",\"augmentations\":" << stats.augmentations
      << ",\"total_path_edges\":" << stats.total_path_edges
      << ",\"initial_cardinality\":" << stats.initial_cardinality
      << ",\"final_cardinality\":" << stats.final_cardinality
      << ",\"threads_used\":" << stats.threads_used << ",\"seconds\":";
  append_number(out, stats.seconds);
  out << ",\"avg_path_length\":";
  append_number(out, stats.avg_path_length());
  out << ",\"mteps\":";
  append_number(out, stats.mteps());
  const StepSeconds& s = stats.step_seconds;
  out << ",\"step_seconds\":{\"top_down\":";
  append_number(out, s.top_down);
  out << ",\"bottom_up\":";
  append_number(out, s.bottom_up);
  out << ",\"augment\":";
  append_number(out, s.augment);
  out << ",\"graft\":";
  append_number(out, s.graft);
  out << ",\"statistics\":";
  append_number(out, s.statistics);
  out << ",\"other\":";
  append_number(out, s.other);
  out << "}";
  if (stats.obs.collected) {
    const ObsCounters& o = stats.obs;
    out << ",\"obs\":{\"events\":" << o.events << ",\"dropped\":" << o.dropped
        << ",\"levels\":" << o.levels
        << ",\"bottom_up_levels\":" << o.bottom_up_levels
        << ",\"direction_switches\":" << o.direction_switches
        << ",\"grafts\":" << o.grafts << ",\"rebuilds\":" << o.rebuilds
        << ",\"frontier_peak\":" << o.frontier_peak
        << ",\"frontier_volume\":" << o.frontier_volume << "}";
  }
  if (stats.reduce.collected) {
    const ReduceCounters& r = stats.reduce;
    out << ",\"reduce\":{\"mode\":";
    append_escaped(out, to_string(r.mode));
    out << ",\"rounds\":" << r.rounds << ",\"isolated_x\":" << r.isolated_x
        << ",\"isolated_y\":" << r.isolated_y
        << ",\"forced_matches\":" << r.forced_matches
        << ",\"folds\":" << r.folds
        << ",\"vertices_removed\":" << r.vertices_removed
        << ",\"edges_removed\":" << r.edges_removed
        << ",\"kernel_nx\":" << r.kernel_nx
        << ",\"kernel_ny\":" << r.kernel_ny
        << ",\"kernel_edges\":" << r.kernel_edges << ",\"reduce_seconds\":";
    append_number(out, r.reduce_seconds);
    out << ",\"compact_seconds\":";
    append_number(out, r.compact_seconds);
    out << ",\"reconstruct_seconds\":";
    append_number(out, r.reconstruct_seconds);
    out << "}";
  }
  if (stats.shard.collected) {
    const ShardCounters& sh = stats.shard;
    out << ",\"shard\":{\"mode\":";
    append_escaped(out, to_string(sh.mode));
    out << ",\"fallback\":" << (sh.fallback ? "true" : "false")
        << ",\"blocks_total\":" << sh.blocks_total
        << ",\"blocks_solved\":" << sh.blocks_solved
        << ",\"blocks_frozen\":" << sh.blocks_frozen
        << ",\"blocks_h\":" << sh.blocks_h
        << ",\"blocks_s\":" << sh.blocks_s
        << ",\"blocks_v\":" << sh.blocks_v
        << ",\"solved_wide\":" << sh.solved_wide
        << ",\"solved_pooled\":" << sh.solved_pooled
        << ",\"largest_block_edges\":" << sh.largest_block_edges
        << ",\"frozen_matched\":" << sh.frozen_matched
        << ",\"decompose_seconds\":";
    append_number(out, sh.decompose_seconds);
    out << ",\"extract_seconds\":";
    append_number(out, sh.extract_seconds);
    out << ",\"solve_seconds\":";
    append_number(out, sh.solve_seconds);
    out << ",\"stitch_seconds\":";
    append_number(out, sh.stitch_seconds);
    out << "}";
  }
  if (stats.dynamic.collected) {
    const DynamicCounters& d = stats.dynamic;
    out << ",\"dynamic\":{\"batches\":" << d.batches
        << ",\"edges_added\":" << d.edges_added
        << ",\"edges_removed\":" << d.edges_removed
        << ",\"direct_matches\":" << d.direct_matches
        << ",\"reaugment_searches\":" << d.reaugment_searches
        << ",\"reaugment_paths\":" << d.reaugment_paths
        << ",\"sweep_rounds\":" << d.sweep_rounds
        << ",\"resolves\":" << d.resolves
        << ",\"compactions\":" << d.compactions
        << ",\"overlay_peak\":" << d.overlay_peak << ",\"apply_seconds\":";
    append_number(out, d.apply_seconds);
    out << ",\"reaugment_seconds\":";
    append_number(out, d.reaugment_seconds);
    out << ",\"compact_seconds\":";
    append_number(out, d.compact_seconds);
    out << ",\"resolve_seconds\":";
    append_number(out, d.resolve_seconds);
    out << "}";
  }
  if (stats.bookkeeping.collected) {
    const BookkeepingCounters& b = stats.bookkeeping;
    out << ",\"bookkeeping\":{\"workspace_warm\":"
        << (b.workspace_warm ? "true" : "false")
        << ",\"pool_builds\":" << b.pool_builds
        << ",\"pool_reinserts\":" << b.pool_reinserts
        << ",\"classified_y\":" << b.classified_y
        << ",\"counted_x\":" << b.counted_x
        << ",\"epoch_bumps\":" << b.epoch_bumps << "}";
  }
  if (stats.direction.collected) {
    const DirectionCounters& dir = stats.direction;
    out << ",\"direction\":{\"policy\":";
    append_escaped(out, to_string(dir.policy));
    out << ",\"kernel\":";
    append_escaped(out, to_string(dir.kernel));
    out << ",\"decisions\":" << dir.decisions
        << ",\"bottom_up_levels\":" << dir.bottom_up_levels
        << ",\"switches\":" << dir.switches
        << ",\"scout_edges\":" << dir.scout_edges
        << ",\"awake_edges\":" << dir.awake_edges
        << ",\"word_commits\":" << dir.word_commits
        << ",\"word_fallbacks\":" << dir.word_fallbacks << "}";
  }
  if (!stats.path_length_histogram.empty()) {
    out << ",\"path_length_histogram\":[";
    bool first = true;
    for (const auto& [length, count] : stats.path_length_histogram) {
      out << (first ? "" : ",") << "[" << length << "," << count << "]";
      first = false;
    }
    out << "]";
  }
  if (!stats.phase_stats.empty()) {
    out << ",\"phase_stats\":[";
    for (std::size_t i = 0; i < stats.phase_stats.size(); ++i) {
      const PhaseStats& p = stats.phase_stats[i];
      out << (i == 0 ? "" : ",") << "{\"phase\":" << p.phase
          << ",\"levels\":" << p.levels
          << ",\"bottom_up_levels\":" << p.bottom_up_levels
          << ",\"edges\":" << p.edges
          << ",\"augmentations\":" << p.augmentations
          << ",\"active_x\":" << p.active_x
          << ",\"renewable_y\":" << p.renewable_y
          << ",\"grafted\":" << (p.grafted ? "true" : "false")
          << ",\"seconds\":";
      append_number(out, p.seconds);
      out << "}";
    }
    out << "]";
  }
  if (!stats.frontier_trace.empty()) {
    out << ",\"frontier_trace\":[";
    for (std::size_t i = 0; i < stats.frontier_trace.size(); ++i) {
      const FrontierSample& f = stats.frontier_trace[i];
      out << (i == 0 ? "" : ",") << "{\"phase\":" << f.phase
          << ",\"level\":" << f.level
          << ",\"frontier_size\":" << f.frontier_size
          << ",\"bottom_up\":" << (f.bottom_up ? "true" : "false") << "}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace graftmatch
