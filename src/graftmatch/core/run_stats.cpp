#include "graftmatch/core/run_stats.hpp"

#include <iomanip>
#include <sstream>

#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

void append_escaped(std::ostringstream& out, const std::string& text) {
  out << '"';
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string format_run_stats(const RunStats& stats) {
  std::ostringstream out;
  out << stats.algorithm << ": |M|=" << stats.final_cardinality << " (+"
      << (stats.final_cardinality - stats.initial_cardinality) << ")"
      << " phases=" << stats.phases << " edges=" << stats.edges_traversed
      << " paths=" << stats.augmentations
      << " avg_len=" << stats.avg_path_length() << " time="
      << format_seconds(stats.seconds) << " rate=" << stats.mteps()
      << " MTEPS";
  return out.str();
}

std::string run_stats_json(const RunStats& stats) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "{\"algorithm\":";
  append_escaped(out, stats.algorithm);
  out << ",\"phases\":" << stats.phases
      << ",\"edges_traversed\":" << stats.edges_traversed
      << ",\"augmentations\":" << stats.augmentations
      << ",\"total_path_edges\":" << stats.total_path_edges
      << ",\"initial_cardinality\":" << stats.initial_cardinality
      << ",\"final_cardinality\":" << stats.final_cardinality
      << ",\"threads_used\":" << stats.threads_used
      << ",\"seconds\":" << stats.seconds
      << ",\"avg_path_length\":" << stats.avg_path_length()
      << ",\"mteps\":" << stats.mteps();
  const StepSeconds& s = stats.step_seconds;
  out << ",\"step_seconds\":{\"top_down\":" << s.top_down
      << ",\"bottom_up\":" << s.bottom_up << ",\"augment\":" << s.augment
      << ",\"graft\":" << s.graft << ",\"statistics\":" << s.statistics
      << ",\"other\":" << s.other << "}";
  if (!stats.path_length_histogram.empty()) {
    out << ",\"path_length_histogram\":[";
    bool first = true;
    for (const auto& [length, count] : stats.path_length_histogram) {
      out << (first ? "" : ",") << "[" << length << "," << count << "]";
      first = false;
    }
    out << "]";
  }
  if (!stats.phase_stats.empty()) {
    out << ",\"phase_stats\":[";
    for (std::size_t i = 0; i < stats.phase_stats.size(); ++i) {
      const PhaseStats& p = stats.phase_stats[i];
      out << (i == 0 ? "" : ",") << "{\"phase\":" << p.phase
          << ",\"levels\":" << p.levels
          << ",\"bottom_up_levels\":" << p.bottom_up_levels
          << ",\"edges\":" << p.edges
          << ",\"augmentations\":" << p.augmentations
          << ",\"active_x\":" << p.active_x
          << ",\"renewable_y\":" << p.renewable_y
          << ",\"grafted\":" << (p.grafted ? "true" : "false")
          << ",\"seconds\":" << p.seconds << "}";
    }
    out << "]";
  }
  if (!stats.frontier_trace.empty()) {
    out << ",\"frontier_trace\":[";
    for (std::size_t i = 0; i < stats.frontier_trace.size(); ++i) {
      const FrontierSample& f = stats.frontier_trace[i];
      out << (i == 0 ? "" : ",") << "{\"phase\":" << f.phase
          << ",\"level\":" << f.level
          << ",\"frontier_size\":" << f.frontier_size
          << ",\"bottom_up\":" << (f.bottom_up ? "true" : "false") << "}";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace graftmatch
