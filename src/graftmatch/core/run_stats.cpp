#include "graftmatch/core/run_stats.hpp"

#include <sstream>

#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {

std::string format_run_stats(const RunStats& stats) {
  std::ostringstream out;
  out << stats.algorithm << ": |M|=" << stats.final_cardinality << " (+"
      << (stats.final_cardinality - stats.initial_cardinality) << ")"
      << " phases=" << stats.phases << " edges=" << stats.edges_traversed
      << " paths=" << stats.augmentations
      << " avg_len=" << stats.avg_path_length() << " time="
      << format_seconds(stats.seconds) << " rate=" << stats.mteps()
      << " MTEPS";
  return out.str();
}

}  // namespace graftmatch
