#include "graftmatch/core/ms_bfs_graft.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "graftmatch/engine/edge_partition.hpp"
#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/engine/stats_sink.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

using engine::Step;

/// All per-run state of Algorithm 3, bundled so the step functions
/// (top-down, bottom-up, augment, graft) can share it without long
/// parameter lists.
struct GraftState {
  const BipartiteGraph& g;
  std::vector<vid_t>& mate_x;
  std::vector<vid_t>& mate_y;

  std::vector<std::uint8_t> visited;  ///< per Y vertex, one tree each
  std::vector<vid_t> parent;          ///< tree parent of each Y vertex
  std::vector<vid_t> root_x;          ///< tree root of each X vertex
  std::vector<vid_t> root_y;          ///< tree root of each Y vertex
  std::vector<vid_t> leaf;            ///< per root: augmenting-path end
  /// Logical timestamp at which each X vertex joined its tree. Bottom-up
  /// passes attach only to vertices stamped BEFORE the current pass so
  /// the search stays level-synchronous (a sequential bottom-up scan
  /// would otherwise cascade within one pass and grow DFS-shaped trees
  /// with long augmenting paths).
  std::vector<std::int64_t> x_join_time;
  std::int64_t now = 0;               ///< current pass timestamp

  FrontierQueue<vid_t> frontier;      ///< current frontier (X vertices)
  FrontierQueue<vid_t> next;          ///< next frontier being built

  engine::EdgePartition partition;    ///< per-level edge-balance scratch

  std::int64_t unvisited_y = 0;       ///< for the direction heuristic

  explicit GraftState(const BipartiteGraph& graph, Matching& matching)
      : g(graph),
        mate_x(matching.mate_x()),
        mate_y(matching.mate_y()),
        visited(static_cast<std::size_t>(graph.num_y()), 0),
        parent(static_cast<std::size_t>(graph.num_y()), kInvalidVertex),
        root_x(static_cast<std::size_t>(graph.num_x()), kInvalidVertex),
        root_y(static_cast<std::size_t>(graph.num_y()), kInvalidVertex),
        leaf(static_cast<std::size_t>(graph.num_x()), kInvalidVertex),
        x_join_time(static_cast<std::size_t>(graph.num_x()), -1),
        frontier(static_cast<std::size_t>(graph.num_x()) + 1),
        next(static_cast<std::size_t>(graph.num_x()) + 1),
        unvisited_y(graph.num_y()) {}

  /// x belongs to a tree in which no augmenting path has been found.
  bool in_active_tree(vid_t x) const noexcept {
    const vid_t r = relaxed_load(root_x[static_cast<std::size_t>(x)]);
    return r != kInvalidVertex &&
           relaxed_load(leaf[static_cast<std::size_t>(r)]) == kInvalidVertex;
  }
};

/// Algorithm 5: attach the (already claimed) Y vertex y as a child of x,
/// and either extend the frontier through y's mate or record an
/// augmenting path. `out` is the engine's thread-private out-queue
/// handle for the next frontier.
template <typename Out>
inline void update_pointers(GraftState& state, vid_t x, vid_t y, Out& out) {
  state.parent[static_cast<std::size_t>(y)] = x;
  const vid_t root = relaxed_load(state.root_x[static_cast<std::size_t>(x)]);
  relaxed_store(state.root_y[static_cast<std::size_t>(y)], root);
  const vid_t mate = relaxed_load(state.mate_y[static_cast<std::size_t>(y)]);
  if (mate != kInvalidVertex) {
    relaxed_store(state.root_x[static_cast<std::size_t>(mate)], root);
    relaxed_store(state.x_join_time[static_cast<std::size_t>(mate)],
                  state.now);
    out.push(mate);
  } else {
    // Augmenting path discovered: root .. y. Benign race (paper
    // Sec. III-B): concurrent discoveries in one tree overwrite each
    // other; the last write wins and exactly one path survives.
    relaxed_store(state.leaf[static_cast<std::size_t>(root)], y);
  }
}

/// Algorithm 4: top-down level. Scans the adjacency of every frontier
/// X vertex via the edge-balanced kernel (a hub's adjacency may be
/// split across threads; claims are atomic, so that is safe); claims
/// unvisited Y vertices atomically.
void top_down(GraftState& state, std::int64_t& edges,
              std::int64_t& newly_visited) {
  const engine::TraversalCounters counters = engine::for_each_frontier_edge(
      engine::x_adjacency(state.g), state.frontier.items(), state.next,
      state.partition,
      // The tree may have turned renewable after x was enqueued; such
      // frontier vertices must not keep growing it (Algorithm 4).
      [&](vid_t x) { return state.in_active_tree(x); },
      [&](vid_t x, vid_t y, auto& out, engine::TraversalCounters& local) {
        if (!claim_flag(state.visited[static_cast<std::size_t>(y)])) return;
        ++local.visits;
        update_pointers(state, x, y, out);
      });
  edges += counters.edges;
  newly_visited += counters.visits;
}

/// Algorithm 6: bottom-up step over the Y vertices in `candidates`
/// (either the unvisited Y vertices during BFS, or renewableY during
/// grafting). Each candidate claims itself into the first active tree
/// found among its neighbors; the item-granular kernel guarantees each
/// y is owned by exactly one thread, so visited needs no atomics.
/// Candidates that did not attach land in `failed` so the next
/// bottom-up level of the same phase skips already-attached vertices
/// (callers that do not need the list pass a scratch queue).
void bottom_up(GraftState& state, std::span<const vid_t> candidates,
               std::int64_t& edges, std::int64_t& newly_visited,
               FrontierQueue<vid_t>& failed) {
  const engine::TraversalCounters counters =
      engine::for_each_unvisited_reverse(
          engine::y_adjacency(state.g), candidates, state.next, failed,
          state.partition,
          [&](vid_t y) {
            return state.visited[static_cast<std::size_t>(y)] != 0;
          },
          [&](vid_t y, vid_t x, auto& out) {
            // Only vertices that joined a tree before this pass are
            // valid parents (level-synchronous semantics; x_join_time).
            if (relaxed_load(
                    state.x_join_time[static_cast<std::size_t>(x)]) >=
                state.now) {
              return false;
            }
            if (!state.in_active_tree(x)) return false;
            relaxed_store(state.visited[static_cast<std::size_t>(y)],
                          std::uint8_t{1});
            update_pointers(state, x, y, out);
            return true;  // stop exploring y's neighbors once attached
          });
  edges += counters.edges;
  newly_visited += counters.visits;
}

// O(n + m) audit of the alternating-forest invariants (RunConfig::
// check_invariants). Called at the end of Step 1, when the BFS forest is
// complete and augmentation has not yet modified the matching.
void assert_forest_invariants(const GraftState& state) {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("ms_bfs_graft invariant violated: " + what);
  };
  const BipartiteGraph& g = state.g;
  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();

  for (vid_t y = 0; y < ny; ++y) {
    const auto yi = static_cast<std::size_t>(y);
    if (!state.visited[yi]) {
      if (state.root_y[yi] != kInvalidVertex) {
        fail("unvisited Y vertex carries a root pointer");
      }
      continue;
    }
    const vid_t x = state.parent[yi];
    if (x == kInvalidVertex) fail("visited Y vertex without parent");
    if (!g.has_edge(x, y)) fail("parent pointer is not an edge");
    const vid_t root = state.root_y[yi];
    if (root == kInvalidVertex) fail("visited Y vertex without root");
    if (state.root_x[static_cast<std::size_t>(root)] != root) {
      fail("root of a visited Y vertex is not self-rooted");
    }
    if (state.mate_x[static_cast<std::size_t>(root)] != kInvalidVertex &&
        state.leaf[static_cast<std::size_t>(root)] == kInvalidVertex) {
      fail("active tree rooted at a matched vertex");
    }
    if (state.root_x[static_cast<std::size_t>(x)] != root) {
      fail("parent and child disagree on the tree root");
    }
    // Alternation: a non-root parent entered the tree through its mate.
    if (x != root) {
      const vid_t x_mate = state.mate_x[static_cast<std::size_t>(x)];
      if (x_mate == kInvalidVertex) {
        fail("non-root unmatched X vertex inside a tree");
      }
      if (!state.visited[static_cast<std::size_t>(x_mate)]) {
        fail("tree X vertex whose mate is not in the forest");
      }
      if (state.root_y[static_cast<std::size_t>(x_mate)] != root) {
        fail("X vertex and its mate lie in different trees");
      }
    }
    // The matched partner of y (if any) joined the same tree.
    const vid_t mate = state.mate_y[yi];
    if (mate != kInvalidVertex &&
        state.root_x[static_cast<std::size_t>(mate)] != root) {
      fail("matched pair split across trees");
    }
  }

  // Leaf pointers of unmatched roots mark genuine augmenting paths.
  for (vid_t x = 0; x < nx; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    if (state.mate_x[xi] != kInvalidVertex || state.root_x[xi] != x) {
      continue;  // not an unmatched root this phase
    }
    const vid_t leaf = state.leaf[xi];
    if (leaf == kInvalidVertex) continue;
    const auto li = static_cast<std::size_t>(leaf);
    if (!state.visited[li]) fail("leaf pointer to an unvisited Y vertex");
    if (state.mate_y[li] != kInvalidVertex) fail("leaf Y vertex is matched");
    if (state.root_y[li] != x) fail("leaf belongs to a different tree");
    // Walk the augmenting path back to the root; it must alternate and
    // terminate without cycles.
    vid_t y = leaf;
    std::int64_t steps = 0;
    while (true) {
      const vid_t px = state.parent[static_cast<std::size_t>(y)];
      if (px == kInvalidVertex) fail("augmenting path breaks at parent");
      if (px == x) break;
      y = state.mate_x[static_cast<std::size_t>(px)];
      if (y == kInvalidVertex) fail("augmenting path hits unmatched X");
      if (++steps > state.g.num_y()) fail("augmenting path cycles");
    }
  }
}

}  // namespace

RunStats ms_bfs_graft(const BipartiteGraph& g, Matching& matching,
                      const RunConfig& config) {
  if (!(config.alpha > 0.0)) {
    throw std::invalid_argument("ms_bfs_graft: alpha must be positive");
  }
  const ThreadCountGuard thread_guard(config.threads);
  if (config.pin != PinPolicy::kNone) pin_openmp_threads(config.pin);

  RunStats stats;
  engine::StatsSink sink(
      stats,
      config.tree_grafting
          ? (config.direction_optimizing ? "MS-BFS-Graft" : "MS-BFS+Graft")
          : (config.direction_optimizing ? "MS-BFS+DirOpt" : "MS-BFS"),
      matching, /*parallel=*/true);

  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();
  GraftState state(g, matching);

  // Reusable scratch: unvisited-Y candidate lists for bottom-up levels
  // (double-buffered: failed candidates of one level feed the next),
  // renewable/active classifications for the graft step.
  FrontierQueue<vid_t> candidates(static_cast<std::size_t>(ny));
  FrontierQueue<vid_t> failed_candidates(static_cast<std::size_t>(ny));
  FrontierQueue<vid_t> renewable_y(static_cast<std::size_t>(ny));
  FrontierQueue<vid_t> active_y(static_cast<std::size_t>(ny));
  FrontierQueue<vid_t> renewable_roots(static_cast<std::size_t>(nx));

  // Initial frontier: every unmatched X vertex roots its own tree.
  for (vid_t x = 0; x < nx; ++x) {
    if (state.mate_x[static_cast<std::size_t>(x)] == kInvalidVertex) {
      state.root_x[static_cast<std::size_t>(x)] = x;
      state.x_join_time[static_cast<std::size_t>(x)] = state.now;
      state.frontier.push(x);
    }
  }

  while (true) {
    ++stats.phases;
    obs::emit_begin(obs::names::kPhase, stats.phases);
    PhaseStats phase_row;
    phase_row.phase = stats.phases;
    const Timer phase_timer;
    const std::int64_t phase_edges_before = stats.edges_traversed;

    // ---- Step 1: grow the alternating BFS forest until F is empty.
    //
    // Direction choice follows the paper (top-down when |F| <
    // numUnvisitedY / alpha), with two refinements that bound the cost
    // of bottom-up on graphs with a large permanently-unreachable Y
    // mass: (a) within a phase, each bottom-up level rescans only the
    // candidates that failed to attach at the previous bottom-up level
    // (visits only shrink the unvisited set, so the failed list stays a
    // superset of it); (b) once a bottom-up level attaches almost
    // nothing, the leftover candidates are overwhelmingly unreachable
    // this phase, so bottom-up is disabled for the rest of the phase.
    std::int64_t level = 0;
    bool candidates_fresh = false;
    bool bottom_up_banned = false;
    bool last_bottom_up = false;
    while (!state.frontier.empty()) {
      const auto frontier_size =
          static_cast<std::int64_t>(state.frontier.size());
      const bool use_bottom_up =
          config.direction_optimizing && !bottom_up_banned &&
          engine::prefer_bottom_up(frontier_size, state.unvisited_y,
                                   config.alpha);
      obs::emit_counter(obs::names::kFrontier, frontier_size,
                        use_bottom_up ? 1 : 0);
      if (level > 0 && use_bottom_up != last_bottom_up) {
        obs::emit_instant(obs::names::kDirectionSwitch, level,
                          use_bottom_up ? 1 : 0);
      }
      last_bottom_up = use_bottom_up;

      if (config.collect_frontier_trace) {
        stats.frontier_trace.push_back(
            {stats.phases, level, frontier_size, use_bottom_up});
      }

      std::int64_t newly_visited = 0;
      state.next.clear();
      ++state.now;  // vertices joining during this pass get a new stamp
      phase_row.bottom_up_levels += use_bottom_up;
      if (use_bottom_up) {
        const auto lap = sink.scoped(Step::kBottomUp);
        if (!candidates_fresh) {
          candidates.clear();
          engine::collect_if(ny, candidates, [&](vid_t y) {
            return !state.visited[static_cast<std::size_t>(y)];
          });
          candidates_fresh = true;
        }
        failed_candidates.clear();
        bottom_up(state, candidates.items(), stats.edges_traversed,
                  newly_visited, failed_candidates);
        // Low yield: the survivors are (almost all) unreachable this
        // phase; stop paying to rescan them.
        if (8 * newly_visited < static_cast<std::int64_t>(candidates.size())) {
          bottom_up_banned = true;
        }
        candidates.swap(failed_candidates);
      } else {
        const auto lap = sink.scoped(Step::kTopDown);
        top_down(state, stats.edges_traversed, newly_visited);
        // The candidate list stays a (stale but safe) superset of the
        // unvisited set across top-down levels: visits only shrink it,
        // and bottom_up() skips visited entries.
      }
      state.unvisited_y -= newly_visited;
      state.frontier.clear();
      state.frontier.swap(state.next);
      ++level;
    }
    phase_row.levels = level;

    if (config.check_invariants) assert_forest_invariants(state);

    // ---- Step 2: augment along every renewable tree's unique path.
    {
      const auto lap = sink.scoped(Step::kStatistics);
      renewable_roots.clear();
      engine::collect_if(nx, renewable_roots, [&](vid_t x) {
        // Renewable roots are exactly the still-unmatched roots whose
        // leaf pointer was set this phase (stale leaves from earlier
        // phases belong to matched ex-roots).
        return state.mate_x[static_cast<std::size_t>(x)] == kInvalidVertex &&
               state.root_x[static_cast<std::size_t>(x)] == x &&
               state.leaf[static_cast<std::size_t>(x)] != kInvalidVertex;
      });
    }

    sink.start(Step::kAugment);
    {
      const auto roots = renewable_roots.items();
      const auto count = static_cast<std::int64_t>(roots.size());
      std::int64_t path_edges_total = 0;
      std::vector<std::int64_t> path_lengths;
      if (config.collect_path_histogram) {
        path_lengths.assign(static_cast<std::size_t>(count), 0);
      }
      // Paths live in vertex-disjoint trees: flip them in parallel.
      parallel_region([&] {
        std::int64_t local_path_edges = 0;
#pragma omp for schedule(dynamic, 8)
        for (std::int64_t i = 0; i < count; ++i) {
          const vid_t r = roots[static_cast<std::size_t>(i)];
          vid_t y = state.leaf[static_cast<std::size_t>(r)];
          std::int64_t path_edges = 0;
          while (y != kInvalidVertex) {
            const vid_t x = state.parent[static_cast<std::size_t>(y)];
            const vid_t next_y = state.mate_x[static_cast<std::size_t>(x)];
            state.mate_x[static_cast<std::size_t>(x)] = y;
            state.mate_y[static_cast<std::size_t>(y)] = x;
            ++path_edges;
            if (next_y != kInvalidVertex) ++path_edges;
            y = next_y;
          }
          local_path_edges += path_edges;
          if (config.collect_path_histogram) {
            path_lengths[static_cast<std::size_t>(i)] = path_edges;
          }
        }
        fetch_add_relaxed(path_edges_total, local_path_edges);
      });
      stats.augmentations += count;
      stats.total_path_edges += path_edges_total;
      phase_row.augmentations = count;
      for (const std::int64_t length : path_lengths) {
        ++stats.path_length_histogram[length];
      }
      sink.stop(Step::kAugment);

      if (count == 0) {
        if (config.collect_phase_stats) {
          phase_row.edges = stats.edges_traversed - phase_edges_before;
          phase_row.seconds = phase_timer.elapsed();
          stats.phase_stats.push_back(phase_row);
        }
        obs::emit_end(obs::names::kPhase, stats.phases, 0);
        break;  // no augmenting path in this phase: maximum
      }
    }

    // ---- Step 3: rebuild the frontier (Algorithm 7).
    // Statistics (lines 2-4): classify Y vertices into renewable
    // (tree found a path) and active, and count active X vertices.
    std::int64_t active_x_count = 0;
    {
      const auto lap = sink.scoped(Step::kStatistics);
      renewable_y.clear();
      active_y.clear();
      engine::for_each_index(
          ny, renewable_y, active_y,
          [&](vid_t y, auto& renewable_out, auto& active_out) {
            const vid_t r = state.root_y[static_cast<std::size_t>(y)];
            if (r == kInvalidVertex) return;
            if (state.leaf[static_cast<std::size_t>(r)] != kInvalidVertex) {
              renewable_out.push(y);
            } else {
              active_out.push(y);
            }
          });
      active_x_count =
          engine::count_if(nx, [&](vid_t x) { return state.in_active_tree(x); });
    }

    sink.start(Step::kGraft);
    // Free the renewable Y vertices so they can join other trees
    // (Algorithm 3 lines 16-17 / Algorithm 7 lines 6-7).
    {
      const auto items = renewable_y.items();
      const auto count = static_cast<std::int64_t>(items.size());
      parallel_region([&] {
#pragma omp for schedule(static)
        for (std::int64_t i = 0; i < count; ++i) {
          const vid_t y = items[static_cast<std::size_t>(i)];
          state.visited[static_cast<std::size_t>(y)] = 0;
          state.root_y[static_cast<std::size_t>(y)] = kInvalidVertex;
        }
      });
      state.unvisited_y += count;
    }

    const bool graft_profitable =
        config.tree_grafting &&
        static_cast<double>(active_x_count) >
            static_cast<double>(renewable_y.size()) / config.alpha;
    obs::emit_instant(
        graft_profitable ? obs::names::kGraftChosen : obs::names::kRebuildChosen,
        active_x_count, static_cast<std::int64_t>(renewable_y.size()));
    phase_row.active_x = active_x_count;
    phase_row.renewable_y = static_cast<std::int64_t>(renewable_y.size());
    phase_row.grafted = graft_profitable;

    state.frontier.clear();
    state.next.clear();
    if (graft_profitable) {
      // Graft: re-attach renewable Y vertices (and their mates) onto
      // active trees; the attached mates form the next frontier.
      std::int64_t newly_visited = 0;
      ++state.now;  // grafted mates must not recursively receive grafts
      failed_candidates.clear();  // scratch; graft ignores the failed list
      bottom_up(state, renewable_y.items(), stats.edges_traversed,
                newly_visited, failed_candidates);
      state.unvisited_y -= newly_visited;
      state.frontier.swap(state.next);
    } else {
      // Rebuild: destroy all trees and restart from the unmatched
      // X vertices (Algorithm 7 lines 10-15).
      {
        const auto items = active_y.items();
        const auto count = static_cast<std::int64_t>(items.size());
        parallel_region([&] {
#pragma omp for schedule(static)
          for (std::int64_t i = 0; i < count; ++i) {
            const vid_t y = items[static_cast<std::size_t>(i)];
            state.visited[static_cast<std::size_t>(y)] = 0;
            state.root_y[static_cast<std::size_t>(y)] = kInvalidVertex;
          }
        });
        state.unvisited_y += count;
      }
      parallel_region([&] {
#pragma omp for schedule(static)
        for (vid_t x = 0; x < nx; ++x) {
          state.root_x[static_cast<std::size_t>(x)] = kInvalidVertex;
        }
      });
      engine::collect_if(nx, state.frontier, [&](vid_t x) {
        if (state.mate_x[static_cast<std::size_t>(x)] != kInvalidVertex) {
          return false;
        }
        state.root_x[static_cast<std::size_t>(x)] = x;
        state.x_join_time[static_cast<std::size_t>(x)] = state.now;
        state.leaf[static_cast<std::size_t>(x)] = kInvalidVertex;
        return true;
      });
    }
    sink.stop(Step::kGraft);

    if (config.collect_phase_stats) {
      phase_row.edges = stats.edges_traversed - phase_edges_before;
      phase_row.seconds = phase_timer.elapsed();
      stats.phase_stats.push_back(phase_row);
    }
    obs::emit_end(obs::names::kPhase, stats.phases, phase_row.augmentations);
  }

  sink.finish(matching);
  return stats;
}

RunStats ms_bfs(const BipartiteGraph& g, Matching& matching,
                RunConfig config) {
  config.direction_optimizing = false;
  config.tree_grafting = false;
  return ms_bfs_graft(g, matching, config);
}

}  // namespace graftmatch
