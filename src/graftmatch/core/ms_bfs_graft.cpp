#include "graftmatch/core/ms_bfs_graft.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "graftmatch/engine/direction.hpp"
#include "graftmatch/engine/edge_partition.hpp"
#include "graftmatch/engine/frontier_kernels.hpp"
#include "graftmatch/engine/stats_sink.hpp"
#include "graftmatch/engine/word_kernels.hpp"
#include "graftmatch/obs/trace.hpp"
#include "graftmatch/runtime/atomics.hpp"
#include "graftmatch/runtime/context.hpp"
#include "graftmatch/runtime/epoch_array.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/runtime/parallel.hpp"
#include "graftmatch/runtime/timer.hpp"

namespace graftmatch {
namespace {

using engine::Step;

// Phase-bookkeeping scheme (the "epoch" design; containers in
// runtime/epoch_array.hpp, storage in core/graft_workspace.hpp):
//
//  * Forest validity is epoch-versioned. root_x[x] is meaningful iff
//    root_stamp marks x; leaf[r] iff leaf_stamp marks r. Both stamps
//    share the FOREST epoch, bumped on every rebuild, so tearing all
//    trees down is O(1) instead of an O(nx) root_x clear. Within an
//    epoch, a valid leaf entry on a (by now matched) ex-root persists
//    as a tombstone -- exactly the semantics the non-epoch code got
//    from never clearing the leaf array -- so in_active_tree() keeps
//    reporting those trees dead.
//
//  * visited is a word-packed atomic bitmap; parent[y]/root_y[y] are
//    meaningful iff y's bit is set (freeing a Y vertex clears only the
//    bit and leaves the values stale).
//
//  * active_x is the per-pass eligible-parent bitmap. Bits are set at
//    pass boundaries (publish_frontier) for the new frontier's members
//    and dropped when their tree dies, so the bottom-up inner loop
//    rejects the common case -- x not in any active tree at the last
//    boundary -- with ONE bit load instead of the old x_join_time
//    timestamp compare plus in_active_tree()'s two dependent loads.
//    Setting bits only at pass boundaries is also what keeps the
//    search level-synchronous (vertices joining during a pass are not
//    eligible parents within it). The bit cannot see trees that died
//    MID-pass, and attaching a candidate to a dead tree would waste it
//    for the phase, so bit-positive vertices confirm through the
//    root/leaf chain before claiming (see bottom_up's try_edge).
//
//  * Bottom-up candidates live in a persistent pool instead of being
//    recollected with an O(ny) sweep per phase. The pool is built
//    lazily from the visited-bitmap complement (word-level ctz
//    compaction) when a bottom-up pass needs it, then maintained
//    incrementally under the invariant "pool_stamp marks y <=> y is
//    physically in the pool": membership ends ONLY inside a pool scan
//    (which clears the stamp of every entry it drops, visited or
//    attached), and freed Y vertices are re-inserted iff unstamped.
//    The pool is therefore always a superset of the unvisited set,
//    which is all bottom_up needs. A rebuild frees the whole forest's
//    Y set at once; rather than pay O(|forest|) reinserting it, the
//    rebuild drops the pool and the next build's stamp bump retires
//    the stale memberships in O(1).
//
//  * Classification sweeps are incremental: the traversal kernels
//    track every Y vertex claimed this phase (touched_y); together
//    with the carried members of surviving active trees (carry_y) the
//    list covers the forest's Y set exactly, so the renewable/active
//    split scans O(|forest Y|) per phase instead of O(ny). The X side
//    needs no list at all: an active tree is its root plus the
//    (distinct) mates of its active Y members, so |activeX| is derived
//    as |surviving roots| + |activeY|. The still-unmatched roots list
//    makes renewable-root collection and rebuild re-rooting O(|roots|).

/// Per-run view: graph/matching references plus the reusable workspace.
struct GraftState {
  const BipartiteGraph& g;
  std::vector<vid_t>& mate_x;
  std::vector<vid_t>& mate_y;
  GraftWorkspace& ws;

  std::int64_t unvisited_y = 0;  ///< for the direction heuristic
  bool pool_built = false;       ///< bottom-up candidate pool exists
  /// One-thread team (evaluated after the ThreadCountGuard pins the
  /// width): bitmap writes then skip the locked RMW the shared-word
  /// layout otherwise requires. A fetch_or/fetch_and per visit is the
  /// one place the packed layout loses to byte arrays' plain stores,
  /// and on a serial team it buys nothing.
  const bool serial;

  GraftState(const BipartiteGraph& graph, Matching& matching,
             GraftWorkspace& workspace)
      : g(graph),
        mate_x(matching.mate_x()),
        mate_y(matching.mate_y()),
        ws(workspace),
        unvisited_y(graph.num_y()),
        serial(engine::serial_team()) {}

  /// x belongs to a tree in which no augmenting path has been found.
  /// The acquire pairs with update_pointers' stamp_release: a valid
  /// stamp implies root_x[x] holds the published root, never garbage.
  bool in_active_tree(vid_t x) const noexcept {
    const auto xi = static_cast<std::size_t>(x);
    if (!ws.root_stamp.valid_acquire(xi)) return false;
    const vid_t r = relaxed_load(ws.root_x[xi]);
    return !ws.leaf_stamp.valid(static_cast<std::size_t>(r));
  }
};

/// Algorithm 5: attach the (already claimed) Y vertex y as a child of x,
/// and either extend the frontier through y's mate or record an
/// augmenting path. `out` is the engine's thread-private out-queue
/// handle for the next frontier.
template <typename Out>
inline void update_pointers(GraftState& state, vid_t x, vid_t y, Out& out) {
  GraftWorkspace& ws = state.ws;
  const auto yi = static_cast<std::size_t>(y);
  ws.parent[yi] = x;  // y is claimed exactly once; plain store
  const vid_t root = relaxed_load(ws.root_x[static_cast<std::size_t>(x)]);
  relaxed_store(ws.root_y[yi], root);
  const vid_t mate = relaxed_load(state.mate_y[yi]);
  if (mate != kInvalidVertex) {
    const auto mi = static_cast<std::size_t>(mate);
    relaxed_store(ws.root_x[mi], root);
    ws.root_stamp.stamp_release(mi);  // publishes the root store above
    out.push(mate);
  } else {
    // Augmenting path discovered: root .. y. Benign race (paper
    // Sec. III-B): concurrent discoveries in one tree overwrite each
    // other; the last write wins and exactly one path survives. The
    // release stamp publishes whichever leaf value a valid stamp gates.
    relaxed_store(ws.leaf[static_cast<std::size_t>(root)], y);
    ws.leaf_stamp.stamp_release(static_cast<std::size_t>(root));
  }
}

/// Algorithm 4: top-down level. Scans the adjacency of every frontier
/// X vertex via the edge-balanced kernel (a hub's adjacency may be
/// split across threads; claims are atomic, so that is safe); claims
/// unvisited Y vertices atomically and tracks them in touched_y.
void top_down(GraftState& state, std::int64_t& edges,
              std::int64_t& newly_visited) {
  GraftWorkspace& ws = state.ws;
  const engine::TraversalCounters counters = engine::for_each_frontier_edge(
      engine::x_adjacency(state.g), ws.frontier.items(), ws.next, ws.touched_y,
      ws.partition,
      // The tree may have turned renewable after x was enqueued; such
      // frontier vertices must not keep growing it (Algorithm 4).
      [&](vid_t x) { return state.in_active_tree(x); },
      [&](vid_t x, vid_t y, auto& out, auto& track,
          engine::TraversalCounters& local) {
        const auto yi = static_cast<std::size_t>(y);
        if (!(state.serial ? ws.visited.claim_serial(yi)
                           : ws.visited.claim(yi))) {
          return;
        }
        ++local.visits;
        track.push(y);
        update_pointers(state, x, y, out);
      });
  edges += counters.edges;
  newly_visited += counters.visits;
}

/// Algorithm 6: bottom-up step over the Y vertices in `candidates`
/// (the candidate pool during BFS, or renewableY during grafting).
/// Each candidate claims itself into the first eligible tree found
/// among its neighbors; the item-granular kernel guarantees each y is
/// owned by exactly one thread, so its visited bit is set without a
/// claim. Candidates that did not attach land in `failed`. Only pool
/// scans end pool membership, so only they clear pool stamps
/// (`pool_scan`); the graft scan runs over renewableY and must leave
/// the stamps of entries still physically in the pool alone.
void bottom_up(GraftState& state, std::span<const vid_t> candidates,
               std::int64_t& edges, std::int64_t& newly_visited,
               FrontierQueue<vid_t>& failed, bool pool_scan) {
  GraftWorkspace& ws = state.ws;
  const engine::TraversalCounters counters =
      engine::for_each_unvisited_reverse(
          engine::y_adjacency(state.g), candidates, ws.next, failed,
          ws.touched_y, ws.partition,
          [&](vid_t y) {
            if (!ws.visited.test(static_cast<std::size_t>(y))) return false;
            if (pool_scan) ws.pool_stamp.clear(static_cast<std::size_t>(y));
            return true;
          },
          [&](vid_t y, vid_t x, auto& out, auto& track) {
            // One bit load replaces the x_join_time >= now compare plus
            // in_active_tree()'s first load: the bit is set only at
            // pass boundaries, for members of then-active trees, so it
            // rejects non-forest vertices with a single test.
            if (!ws.active_x.test(static_cast<std::size_t>(x))) return false;
            // The bit cannot see mid-pass tree deaths; attaching y to a
            // tree whose augmenting path was already found wastes it
            // for the phase, so trees that died since the boundary pay
            // the root/leaf load chain here, on bit-positive x only.
            // Racing a concurrent leaf discovery is the same benign
            // race the leaf store itself documents.
            const vid_t root =
                relaxed_load(ws.root_x[static_cast<std::size_t>(x)]);
            if (ws.leaf_stamp.valid(static_cast<std::size_t>(root))) {
              return false;
            }
            if (state.serial) {
              ws.visited.set_serial(static_cast<std::size_t>(y));
            } else {
              ws.visited.set(static_cast<std::size_t>(y));
            }
            if (pool_scan) ws.pool_stamp.clear(static_cast<std::size_t>(y));
            track.push(y);
            update_pointers(state, x, y, out);
            return true;  // stop exploring y's neighbors once attached
          });
  edges += counters.edges;
  newly_visited += counters.visits;
}

/// Word-level bottom-up step (RunConfig::bottom_up_kernel == kWord):
/// one sweep of the visited bitmap's complement per level, 64
/// candidates per word, winners committed with a single word-granular
/// claim (engine/word_kernels.hpp). No candidate pool exists in this
/// arm -- the complement IS the candidate list -- so the low-yield ban
/// compares against the zero bits actually examined and the pool
/// bookkeeping (build, refill, stamp audit) is skipped entirely
/// (state.pool_built stays false). The eligibility test and the attach
/// body are the bit path's, verbatim: active_x bit first, then the
/// root/leaf confirmation on bit-positive x only, with the same
/// documented benign race against mid-pass tree deaths.
engine::WordScanCounters bottom_up_words(GraftState& state, std::int64_t& edges,
                                         std::int64_t& newly_visited) {
  GraftWorkspace& ws = state.ws;
  const engine::WordScanCounters counters = engine::for_each_unvisited_word(
      engine::y_adjacency(state.g), ws.visited,
      static_cast<std::int64_t>(state.g.num_y()), ws.next, ws.touched_y,
      [&](vid_t /*y*/, vid_t x) {
        if (!ws.active_x.test(static_cast<std::size_t>(x))) return false;
        const vid_t root = relaxed_load(ws.root_x[static_cast<std::size_t>(x)]);
        return !ws.leaf_stamp.valid(static_cast<std::size_t>(root));
      },
      [&](vid_t y, vid_t x, auto& out) { update_pointers(state, x, y, out); });
  edges += counters.traversal.edges;
  newly_visited += counters.traversal.visits;
  return counters;
}

/// Install the freshly built frontier for the next pass: when bottom-up
/// can run, set every member's eligible-parent bit. Bits are published
/// only here -- at pass boundaries -- which is what keeps the search
/// level-synchronous (vertices joining during a pass are not eligible
/// parents within it). No X-side membership list is kept: the
/// |activeX| statistic is derived from the Y-side classification and
/// the surviving roots (every non-root member of an active tree is the
/// mate of exactly one of its Y vertices).
void publish_frontier(GraftState& state, bool mark_active) {
  if (!mark_active) return;
  GraftWorkspace& ws = state.ws;
  const std::span<const vid_t> members = ws.frontier.items();
  if (state.serial) {
    // Runs once per LEVEL; a plain bit loop beats kernel dispatch on a
    // one-thread team.
    for (const vid_t x : members) {
      ws.active_x.set_serial(static_cast<std::size_t>(x));
    }
    return;
  }
  const auto count = static_cast<std::int64_t>(members.size());
  parallel_region([&] {
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      ws.active_x.set(
          static_cast<std::size_t>(members[static_cast<std::size_t>(i)]));
    }
  });
}

/// Re-insert freed Y vertices into the bottom-up candidate pool. Under
/// the stamp <=> membership invariant an unstamped vertex is guaranteed
/// physically absent, so appending it cannot create a duplicate (which
/// would hand one y to two threads in the item-granular kernel). Items
/// are distinct and each is handled by exactly one thread, so the
/// check-then-stamp needs no atomics.
void refill_pool(GraftState& state, std::span<const vid_t> freed,
                 RunStats& stats) {
  GraftWorkspace& ws = state.ws;
  const auto before = static_cast<std::int64_t>(ws.pool.size());
  engine::for_each_item(freed, ws.pool, [&](vid_t y, auto& handle) {
    const auto yi = static_cast<std::size_t>(y);
    if (ws.pool_stamp.valid(yi)) return;
    ws.pool_stamp.stamp(yi);
    handle.push(y);
  });
  stats.bookkeeping.pool_reinserts +=
      static_cast<std::int64_t>(ws.pool.size()) - before;
}

// O(n + m) audit of the alternating-forest invariants (RunConfig::
// check_invariants). Called at the end of Step 1, when the BFS forest is
// complete and augmentation has not yet modified the matching. Under
// the epoch scheme, freed or never-visited slots legitimately hold
// stale values, so every check gates on the validity bit/stamp exactly
// the way the algorithm does -- and the audit additionally proves the
// epoch bookkeeping itself (pool stamps match the pool contents, every
// unvisited Y is a pool candidate, eligible-parent bits stay inside
// the forest).
void assert_forest_invariants(const GraftState& state) {
  const auto fail = [](const std::string& what) {
    throw std::logic_error("ms_bfs_graft invariant violated: " + what);
  };
  const BipartiteGraph& g = state.g;
  const GraftWorkspace& ws = state.ws;
  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();

  for (vid_t y = 0; y < ny; ++y) {
    const auto yi = static_cast<std::size_t>(y);
    if (!ws.visited.test(yi)) {
      // Stale parent/root values are fine here (gated by the bit), but
      // every unvisited Y must be a bottom-up candidate.
      if (state.pool_built && !ws.pool_stamp.valid(yi)) {
        fail("unvisited Y vertex missing from the candidate pool");
      }
      continue;
    }
    const vid_t x = ws.parent[yi];
    if (x == kInvalidVertex) fail("visited Y vertex without parent");
    if (!g.has_edge(x, y)) fail("parent pointer is not an edge");
    const vid_t root = ws.root_y[yi];
    if (root == kInvalidVertex) fail("visited Y vertex without root");
    const auto ri = static_cast<std::size_t>(root);
    if (!ws.root_stamp.valid(ri) || ws.root_x[ri] != root) {
      fail("root of a visited Y vertex is not self-rooted");
    }
    if (state.mate_x[ri] != kInvalidVertex && !ws.leaf_stamp.valid(ri)) {
      fail("active tree rooted at a matched vertex");
    }
    const auto xi = static_cast<std::size_t>(x);
    if (!ws.root_stamp.valid(xi) || ws.root_x[xi] != root) {
      fail("parent and child disagree on the tree root");
    }
    // Alternation: a non-root parent entered the tree through its mate.
    if (x != root) {
      const vid_t x_mate = state.mate_x[xi];
      if (x_mate == kInvalidVertex) {
        fail("non-root unmatched X vertex inside a tree");
      }
      if (!ws.visited.test(static_cast<std::size_t>(x_mate))) {
        fail("tree X vertex whose mate is not in the forest");
      }
      if (ws.root_y[static_cast<std::size_t>(x_mate)] != root) {
        fail("X vertex and its mate lie in different trees");
      }
    }
    // The matched partner of y (if any) joined the same tree.
    const vid_t mate = state.mate_y[yi];
    if (mate != kInvalidVertex) {
      const auto mi = static_cast<std::size_t>(mate);
      if (!ws.root_stamp.valid(mi) || ws.root_x[mi] != root) {
        fail("matched pair split across trees");
      }
    }
  }

  if (state.pool_built) {
    // stamp <=> physical membership, both directions at once: together
    // with the superset check above, equal counts prove every stamped
    // vertex sits in the pool exactly once and the pool holds no
    // unstamped entry.
    std::int64_t stamped = 0;
    for (vid_t y = 0; y < ny; ++y) {
      stamped += ws.pool_stamp.valid(static_cast<std::size_t>(y)) ? 1 : 0;
    }
    if (stamped != static_cast<std::int64_t>(ws.pool.size())) {
      fail("candidate-pool stamps disagree with the pool contents");
    }
  }

  // Leaf pointers of unmatched roots mark genuine augmenting paths.
  for (vid_t x = 0; x < nx; ++x) {
    const auto xi = static_cast<std::size_t>(x);
    if (ws.active_x.test(xi) && !ws.root_stamp.valid(xi)) {
      fail("eligible-parent bit on an X vertex outside the forest");
    }
    if (state.mate_x[xi] != kInvalidVertex || !ws.root_stamp.valid(xi) ||
        ws.root_x[xi] != x) {
      continue;  // not an unmatched root this phase
    }
    if (!ws.leaf_stamp.valid(xi)) continue;
    const vid_t leaf = ws.leaf[xi];
    const auto li = static_cast<std::size_t>(leaf);
    if (!ws.visited.test(li)) fail("leaf pointer to an unvisited Y vertex");
    if (state.mate_y[li] != kInvalidVertex) fail("leaf Y vertex is matched");
    if (ws.root_y[li] != x) fail("leaf belongs to a different tree");
    // Walk the augmenting path back to the root; it must alternate and
    // terminate without cycles.
    vid_t y = leaf;
    std::int64_t steps = 0;
    while (true) {
      const vid_t px = ws.parent[static_cast<std::size_t>(y)];
      if (px == kInvalidVertex) fail("augmenting path breaks at parent");
      if (px == x) break;
      y = state.mate_x[static_cast<std::size_t>(px)];
      if (y == kInvalidVertex) fail("augmenting path hits unmatched X");
      if (++steps > state.g.num_y()) fail("augmenting path cycles");
    }
  }
}

}  // namespace

RunStats ms_bfs_graft(SessionContext& session, const BipartiteGraph& g,
                      Matching& matching, const RunConfig& config,
                      GraftWorkspace& workspace) {
  if (!(config.alpha > 0.0) || !std::isfinite(config.alpha)) {
    // A NaN alpha fails the comparison; +inf passes it but collapses
    // every direction/graft threshold to zero, silently forcing
    // bottom-up -- reject both the same way.
    throw std::invalid_argument("ms_bfs_graft: alpha must be positive finite");
  }
  const SessionScope scope(session);
  const ThreadCountGuard thread_guard(config.threads);
  if (config.pin != PinPolicy::kNone) pin_openmp_threads(config.pin);

  RunStats stats;
  engine::StatsSink sink(
      session, stats,
      config.tree_grafting
          ? (config.direction_optimizing ? "MS-BFS-Graft" : "MS-BFS+Graft")
          : (config.direction_optimizing ? "MS-BFS+DirOpt" : "MS-BFS"),
      matching, /*parallel=*/true);

  const vid_t nx = g.num_x();
  const vid_t ny = g.num_y();
  GraftWorkspace& ws = workspace;
  const bool warm = ws.prepare(nx, ny);
  obs::emit_instant(obs::names::kWorkspacePrepared, warm ? 1 : 0,
                    ws.prepared_runs);
  stats.bookkeeping.collected = true;
  stats.bookkeeping.workspace_warm = warm;

  GraftState state(g, matching, ws);
  engine::DirectionSelector direction(config.direction_policy, config.alpha,
                                      g.num_edges(),
                                      static_cast<std::int64_t>(ny));
  obs::emit_instant(obs::names::kDirectionPolicy,
                    static_cast<std::int64_t>(config.direction_policy),
                    static_cast<std::int64_t>(config.bottom_up_kernel));
  // The eligible-parent bits feed the bottom-up kernel, which runs for
  // direction-optimized BFS levels AND for the graft scan; only the
  // plain MS-BFS baseline can skip maintaining them.
  const bool mark_active = config.direction_optimizing || config.tree_grafting;

  // Initial frontier: every unmatched X vertex roots its own tree. The
  // predicate's writes target the tested slot only, so the parallel
  // collect is race-free; the roots list doubles as the maintained
  // unmatched-roots set.
  engine::collect_if(nx, ws.frontier, [&](vid_t x) {
    const auto xi = static_cast<std::size_t>(x);
    if (state.mate_x[xi] != kInvalidVertex) return false;
    ws.root_x[xi] = x;
    ws.root_stamp.stamp(xi);
    return true;
  });
  ws.roots.append(ws.frontier.items());
  publish_frontier(state, mark_active);

  while (true) {
    ++stats.phases;
    obs::emit_begin(obs::names::kPhase, stats.phases);
    PhaseStats phase_row;
    phase_row.phase = stats.phases;
    const Timer phase_timer;
    const std::int64_t phase_edges_before = stats.edges_traversed;

    // ---- Step 1: grow the alternating BFS forest until F is empty.
    //
    // Direction choice follows the paper (top-down when |F| <
    // numUnvisitedY / alpha), with two refinements that bound the cost
    // of bottom-up on graphs with a large permanently-unreachable Y
    // mass: (a) each bottom-up level rescans only the pool survivors of
    // the previous scan (the pool stays a superset of the unvisited
    // set); (b) once a bottom-up level attaches almost nothing, the
    // leftover candidates are overwhelmingly unreachable this phase, so
    // bottom-up is disabled for the rest of the phase.
    std::int64_t level = 0;
    bool bottom_up_banned = false;
    bool last_bottom_up = false;
    direction.reset_phase();
    while (!ws.frontier.empty()) {
      const auto frontier_size = static_cast<std::int64_t>(ws.frontier.size());
      // The adaptive policy wants the frontier's exact edge mass (one
      // O(|F|) degree sweep); fixed/forced policies never ask, so they
      // pay nothing here.
      const std::int64_t scout_edges =
          config.direction_optimizing && direction.wants_scout()
              ? engine::scout_edge_sum(engine::x_adjacency(g),
                                       ws.frontier.items())
              : 0;
      const bool use_bottom_up =
          config.direction_optimizing &&
          direction.choose_bottom_up(frontier_size, scout_edges,
                                     state.unvisited_y, bottom_up_banned);
      obs::emit_counter(obs::names::kFrontier, frontier_size,
                        use_bottom_up ? 1 : 0);
      if (level > 0 && use_bottom_up != last_bottom_up) {
        obs::emit_instant(obs::names::kDirectionSwitch, level,
                          use_bottom_up ? 1 : 0);
      }
      last_bottom_up = use_bottom_up;

      if (config.collect_frontier_trace) {
        stats.frontier_trace.push_back(
            {stats.phases, level, frontier_size, use_bottom_up});
      }

      std::int64_t newly_visited = 0;
      ws.next.clear();
      phase_row.bottom_up_levels += use_bottom_up;
      if (use_bottom_up && config.bottom_up_kernel == BottomUpKernel::kWord) {
        // Word arm: one ctz sweep of the visited complement, no pool.
        const auto lap = sink.scoped(Step::kBottomUp);
        const engine::WordScanCounters word =
            bottom_up_words(state, stats.edges_traversed, newly_visited);
        direction.counters().word_commits += word.commits;
        direction.counters().word_fallbacks += word.fallbacks;
        // Same low-yield ban as the pool path, against the candidates
        // this sweep actually examined.
        if (8 * newly_visited < word.candidates) bottom_up_banned = true;
      } else if (use_bottom_up) {
        const auto lap = sink.scoped(Step::kBottomUp);
        if (!state.pool_built) {
          // O(ny) candidate-pool build from the visited bitmap's
          // complement (word-level ctz compaction), run lazily: once
          // here and again only after a rebuild dropped the pool.
          // Between builds the pool is maintained incrementally.
          ws.pool.clear();
          ws.pool_stamp.bump();
          engine::for_each_zero_bit(
              ws.visited.words(), ny, ws.pool,
              [&](std::int64_t y, auto& handle) {
                ws.pool_stamp.stamp(static_cast<std::size_t>(y));
                handle.push(static_cast<vid_t>(y));
              });
          state.pool_built = true;
          ++stats.bookkeeping.pool_builds;
          obs::emit_instant(obs::names::kPoolBuild,
                            static_cast<std::int64_t>(ws.pool.size()));
        }
        ws.pool_failed.clear();
        bottom_up(state, ws.pool.items(), stats.edges_traversed,
                  newly_visited, ws.pool_failed, /*pool_scan=*/true);
        // Low yield: the survivors are (almost all) unreachable this
        // phase; stop paying to rescan them.
        if (8 * newly_visited < static_cast<std::int64_t>(ws.pool.size())) {
          bottom_up_banned = true;
        }
        ws.pool.swap(ws.pool_failed);
      } else {
        const auto lap = sink.scoped(Step::kTopDown);
        top_down(state, stats.edges_traversed, newly_visited);
      }
      state.unvisited_y -= newly_visited;
      ws.frontier.clear();
      ws.frontier.swap(ws.next);
      publish_frontier(state, mark_active);
      ++level;
    }
    phase_row.levels = level;

    if (config.check_invariants) assert_forest_invariants(state);

    // ---- Step 2: augment along every renewable tree's unique path.
    // Renewable roots are exactly the roots-list members whose leaf was
    // stamped this phase (the list holds only still-unmatched roots,
    // and an unmatched root with a valid leaf always augmented the
    // phase the leaf was set), collected in O(|roots|), not O(nx).
    {
      const auto lap = sink.scoped(Step::kStatistics);
      ws.renewable_roots.clear();
      ws.roots_scratch.clear();
      engine::for_each_item(
          std::span<const vid_t>(ws.roots.items()), ws.renewable_roots,
          ws.roots_scratch, [&](vid_t x, auto& renewable_out, auto& keep_out) {
            if (ws.leaf_stamp.valid(static_cast<std::size_t>(x))) {
              renewable_out.push(x);
            } else {
              keep_out.push(x);
            }
          });
      // Augmented roots become matched and never unmatched again, so
      // the survivors list is next phase's roots list.
      ws.roots.swap(ws.roots_scratch);
    }

    sink.start(Step::kAugment);
    {
      const auto roots = ws.renewable_roots.items();
      const auto count = static_cast<std::int64_t>(roots.size());
      std::int64_t path_edges_total = 0;
      std::vector<std::int64_t> path_lengths;
      if (config.collect_path_histogram) {
        path_lengths.assign(static_cast<std::size_t>(count), 0);
      }
      // Paths live in vertex-disjoint trees: flip them in parallel.
      parallel_region([&] {
        std::int64_t local_path_edges = 0;
#pragma omp for schedule(dynamic, 8)
        for (std::int64_t i = 0; i < count; ++i) {
          const vid_t r = roots[static_cast<std::size_t>(i)];
          vid_t y = ws.leaf[static_cast<std::size_t>(r)];
          std::int64_t path_edges = 0;
          while (y != kInvalidVertex) {
            const vid_t x = ws.parent[static_cast<std::size_t>(y)];
            const vid_t next_y = state.mate_x[static_cast<std::size_t>(x)];
            state.mate_x[static_cast<std::size_t>(x)] = y;
            state.mate_y[static_cast<std::size_t>(y)] = x;
            ++path_edges;
            if (next_y != kInvalidVertex) ++path_edges;
            y = next_y;
          }
          local_path_edges += path_edges;
          if (config.collect_path_histogram) {
            path_lengths[static_cast<std::size_t>(i)] = path_edges;
          }
        }
        fetch_add_relaxed(path_edges_total, local_path_edges);
      });
      stats.augmentations += count;
      stats.total_path_edges += path_edges_total;
      phase_row.augmentations = count;
      for (const std::int64_t length : path_lengths) {
        ++stats.path_length_histogram[length];
      }
      sink.stop(Step::kAugment);

      if (count == 0) {
        if (config.collect_phase_stats) {
          phase_row.edges = stats.edges_traversed - phase_edges_before;
          phase_row.seconds = phase_timer.elapsed();
          stats.phase_stats.push_back(phase_row);
        }
        obs::emit_end(obs::names::kPhase, stats.phases, 0);
        break;  // no augmenting path in this phase: maximum
      }
    }

    // ---- Step 3: rebuild the frontier (Algorithm 7).
    // Statistics (lines 2-4): classify the forest's Y vertices into
    // renewable (tree found a path) and active, and count active X
    // vertices -- sweeping carry + touched lists (exactly the forest)
    // instead of the full vertex ranges.
    std::int64_t active_x_count = 0;
    {
      const auto lap = sink.scoped(Step::kStatistics);
      ws.renewable_y.clear();
      ws.active_y.clear();
      const auto classify = [&](vid_t y, auto& renewable_out,
                                auto& active_out) {
        const vid_t r = ws.root_y[static_cast<std::size_t>(y)];
        if (ws.leaf_stamp.valid(static_cast<std::size_t>(r))) {
          renewable_out.push(y);
        } else {
          active_out.push(y);
        }
      };
      engine::for_each_item(std::span<const vid_t>(ws.carry_y.items()),
                            ws.renewable_y, ws.active_y, classify);
      engine::for_each_item(std::span<const vid_t>(ws.touched_y.items()),
                            ws.renewable_y, ws.active_y, classify);
      stats.bookkeeping.classified_y +=
          static_cast<std::int64_t>(ws.carry_y.size() + ws.touched_y.size());

      // |activeX| needs no X-side sweep at all: an active tree is its
      // root plus the mates of its Y members, the mates are distinct
      // (they come from a matching), and a tree is active iff its Y
      // members classified active -- so the count is the surviving
      // roots (the list already dropped this phase's renewable roots)
      // plus the active Y vertices.
      active_x_count =
          static_cast<std::int64_t>(ws.roots.size() + ws.active_y.size());
      stats.bookkeeping.counted_x += active_x_count;
    }

    sink.start(Step::kGraft);
    // Free the renewable Y vertices so they can join other trees
    // (Algorithm 3 lines 16-17 / Algorithm 7 lines 6-7) and dismantle
    // the dead trees' eligible-parent bits: every non-root member is
    // some renewable Y's post-augmentation mate, and the roots are in
    // renewable_roots.
    {
      const auto renewables = ws.renewable_y.items();
      const auto renewable_count =
          static_cast<std::int64_t>(renewables.size());
      const auto dead_roots = ws.renewable_roots.items();
      const auto dead_root_count =
          static_cast<std::int64_t>(dead_roots.size());
      if (state.serial) {
        for (std::int64_t i = 0; i < renewable_count; ++i) {
          const vid_t y = renewables[static_cast<std::size_t>(i)];
          const auto yi = static_cast<std::size_t>(y);
          ws.visited.clear_serial(yi);
          if (mark_active) {
            const vid_t m = state.mate_y[yi];
            if (m != kInvalidVertex) {
              ws.active_x.clear_serial(static_cast<std::size_t>(m));
            }
          }
        }
        if (mark_active) {
          for (std::int64_t i = 0; i < dead_root_count; ++i) {
            ws.active_x.clear_serial(
                static_cast<std::size_t>(dead_roots[static_cast<std::size_t>(i)]));
          }
        }
      } else {
        parallel_region([&] {
#pragma omp for schedule(static) nowait
          for (std::int64_t i = 0; i < renewable_count; ++i) {
            const vid_t y = renewables[static_cast<std::size_t>(i)];
            const auto yi = static_cast<std::size_t>(y);
            ws.visited.clear(yi);
            if (mark_active) {
              const vid_t m = state.mate_y[yi];
              if (m != kInvalidVertex) {
                ws.active_x.clear(static_cast<std::size_t>(m));
              }
            }
          }
          if (mark_active) {
#pragma omp for schedule(static)
            for (std::int64_t i = 0; i < dead_root_count; ++i) {
              ws.active_x.clear(static_cast<std::size_t>(
                  dead_roots[static_cast<std::size_t>(i)]));
            }
          }
        });
      }
      state.unvisited_y += renewable_count;
    }

    const bool graft_profitable =
        config.tree_grafting &&
        static_cast<double>(active_x_count) >
            static_cast<double>(ws.renewable_y.size()) / config.alpha;
    obs::emit_instant(
        graft_profitable ? obs::names::kGraftChosen : obs::names::kRebuildChosen,
        active_x_count, static_cast<std::int64_t>(ws.renewable_y.size()));
    phase_row.active_x = active_x_count;
    phase_row.renewable_y = static_cast<std::int64_t>(ws.renewable_y.size());
    phase_row.grafted = graft_profitable;

    ws.frontier.clear();
    ws.next.clear();
    if (graft_profitable) {
      // Graft: carry the surviving active trees' bookkeeping into the
      // next phase, then re-attach renewable Y vertices (and their
      // mates) onto active trees; the attached mates form the next
      // frontier. Unattached renewables go back into the candidate
      // pool (they are unvisited again).
      ws.carry_y.swap(ws.active_y);
      ws.touched_y.clear();
      std::int64_t newly_visited = 0;
      ws.pool_failed.clear();  // scratch: the graft's failed list
      bottom_up(state, ws.renewable_y.items(), stats.edges_traversed,
                newly_visited, ws.pool_failed, /*pool_scan=*/false);
      state.unvisited_y -= newly_visited;
      if (state.pool_built) refill_pool(state, ws.pool_failed.items(), stats);
      ws.frontier.swap(ws.next);
      publish_frontier(state, mark_active);
    } else {
      // Rebuild: destroy all trees and restart from the unmatched
      // X vertices (Algorithm 7 lines 10-15). Freeing the active Y
      // vertices plus two epoch bumps IS the teardown -- no O(nx)
      // root_x clear.
      {
        const auto items = ws.active_y.items();
        const auto count = static_cast<std::int64_t>(items.size());
        if (state.serial) {
          for (std::int64_t i = 0; i < count; ++i) {
            ws.visited.clear_serial(
                static_cast<std::size_t>(items[static_cast<std::size_t>(i)]));
          }
        } else {
          parallel_region([&] {
#pragma omp for schedule(static)
            for (std::int64_t i = 0; i < count; ++i) {
              ws.visited.clear(
                  static_cast<std::size_t>(items[static_cast<std::size_t>(i)]));
            }
          });
        }
        state.unvisited_y += count;
      }
      // A rebuild frees the WHOLE forest's Y set. Refilling the pool
      // with it would cost O(|forest|) per rebuild for candidates a
      // later bottom-up pass may never scan (rebuild-heavy instances
      // tend never to switch direction again). Drop the pool instead:
      // if bottom-up does run again it rebuilds from the visited
      // bitmap's complement, and that build's pool_stamp.bump()
      // retires every stale membership stamp in O(1).
      state.pool_built = false;
      ws.root_stamp.bump();
      ws.leaf_stamp.bump();
      stats.bookkeeping.epoch_bumps += 2;
      if (mark_active) ws.active_x.clear_all();
      ws.carry_y.clear();
      ws.touched_y.clear();
      // Re-root the surviving unmatched roots: O(|roots|), not O(nx).
      engine::for_each_item(std::span<const vid_t>(ws.roots.items()),
                            ws.frontier, [&](vid_t x, auto& handle) {
                              const auto xi = static_cast<std::size_t>(x);
                              ws.root_x[xi] = x;
                              ws.root_stamp.stamp(xi);
                              handle.push(x);
                            });
      publish_frontier(state, mark_active);
    }
    sink.stop(Step::kGraft);

    if (config.collect_phase_stats) {
      phase_row.edges = stats.edges_traversed - phase_edges_before;
      phase_row.seconds = phase_timer.elapsed();
      stats.phase_stats.push_back(phase_row);
    }
    obs::emit_end(obs::names::kPhase, stats.phases, phase_row.augmentations);
  }

  stats.direction = direction.counters();
  stats.direction.kernel = config.bottom_up_kernel;
  sink.finish(matching);
  return stats;
}

RunStats ms_bfs_graft(SessionContext& session, const BipartiteGraph& g,
                      Matching& matching, const RunConfig& config) {
  // Lease a workspace from the session's pool: repeated runs (bench
  // min-of-runs, the diff corpus, back-to-back requests on a server
  // session) reuse warm, first-touched arrays, concurrent sessions
  // never share state, and -- unlike the thread_local this replaced --
  // the workspace is handed back when the run ends instead of staying
  // pinned to the host thread for the process lifetime.
  WorkspaceLease lease(session.workspaces());
  RunStats stats = ms_bfs_graft(session, g, matching, config, lease.get());
  lease.release();
  return stats;
}

RunStats ms_bfs_graft(const BipartiteGraph& g, Matching& matching,
                      const RunConfig& config, GraftWorkspace& workspace) {
  return ms_bfs_graft(ambient_session(), g, matching, config, workspace);
}

RunStats ms_bfs_graft(const BipartiteGraph& g, Matching& matching,
                      const RunConfig& config) {
  return ms_bfs_graft(ambient_session(), g, matching, config);
}

RunStats ms_bfs(SessionContext& session, const BipartiteGraph& g,
                Matching& matching, RunConfig config) {
  config.direction_optimizing = false;
  config.tree_grafting = false;
  return ms_bfs_graft(session, g, matching, config);
}

RunStats ms_bfs(const BipartiteGraph& g, Matching& matching,
                RunConfig config) {
  return ms_bfs(ambient_session(), g, matching, std::move(config));
}

}  // namespace graftmatch
