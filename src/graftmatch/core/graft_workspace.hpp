// Reusable, NUMA-aware per-vertex workspace for MS-BFS-Graft.
//
// GraftState used to allocate (and serially zero-fill) every per-vertex
// array on each call, which (a) faulted all pages on the calling thread
// -- the opposite of the Graph500-style first-touch placement the paper
// relies on -- and (b) made bench min-of-runs and the diff suite pay
// the allocation + page-fault tax on every run. The workspace owns all
// of that state instead:
//
//  * plain value arrays (parent, root_x, root_y, leaf) live in
//    FirstTouchBuffer so the parallel fill after a (re)allocation is
//    the true first touch of each page;
//  * validity is epoch-versioned (EpochStamps) so binding the workspace
//    to a same-sized problem costs O(1) epoch bumps, not O(n) clears;
//  * visited and the active-tree membership are word-packed bitmaps
//    whose full clears touch 1/64th of the memory of a byte array.
//
// A workspace may be reused back-to-back across runs and across graphs
// (prepare() re-binds it; dimensions may change freely). It is NOT
// thread-safe: one workspace serves one solver call at a time.
// Workspaces normally live in a session's WorkspacePool
// (runtime/context.hpp): ms_bfs_graft() leases one for the duration of
// the run and hands it back on return, so concurrent solver calls get
// disjoint workspaces, warm arrays are reused LIFO across runs, and
// nothing stays pinned to a host thread.
#pragma once

#include <cstdint>

#include "graftmatch/engine/edge_partition.hpp"
#include "graftmatch/runtime/epoch_array.hpp"
#include "graftmatch/runtime/frontier_queue.hpp"
#include "graftmatch/types.hpp"

namespace graftmatch {

struct GraftWorkspace {
  // --- per-X-vertex state ---
  FirstTouchBuffer<vid_t> root_x;  ///< tree root; valid iff root_stamp
  FirstTouchBuffer<vid_t> leaf;    ///< per root: augmenting-path end
  /// Forest-epoch stamps, both bumped on every rebuild (and at run
  /// start): root_stamp validates root_x entries, leaf_stamp validates
  /// leaf entries. A bump IS the forest teardown -- no array is
  /// cleared. Within an epoch a valid leaf entry persists as a
  /// tombstone on its (by then matched) ex-root, exactly like the
  /// never-cleared leaf array of the non-epoch implementation.
  EpochStamps root_stamp;
  EpochStamps leaf_stamp;
  /// One bit per X vertex: eligible bottom-up parent (joined the forest
  /// at a previous pass of a tree that was active at that pass's
  /// boundary). Replaces the x_join_time timestamp array AND the
  /// two dependent loads of in_active_tree() in the bottom-up inner
  /// loop with a single bit test. Maintained at pass boundaries
  /// (publish) and at the graft step (renewable trees' bits drop).
  AtomicBitmap active_x;

  // --- per-Y-vertex state ---
  FirstTouchBuffer<vid_t> parent;  ///< tree parent; valid iff visited
  FirstTouchBuffer<vid_t> root_y;  ///< tree root; valid iff visited
  AtomicBitmap visited;
  /// Candidate-pool membership: valid iff the Y vertex is physically in
  /// `pool` (see the pool maintenance contract in ms_bfs_graft.cpp).
  EpochStamps pool_stamp;

  // --- frontiers and incremental bookkeeping lists ---
  FrontierQueue<vid_t> frontier{0};  ///< current frontier (X vertices)
  FrontierQueue<vid_t> next{0};      ///< next frontier being built
  /// Bottom-up candidate pool, double-buffered with its failed list.
  /// Built lazily from the visited-bitmap complement when a bottom-up
  /// pass needs one, maintained incrementally between builds, and
  /// dropped whole on rebuild.
  FrontierQueue<vid_t> pool{0};
  FrontierQueue<vid_t> pool_failed{0};
  /// Y vertices claimed during the current phase (tracked by the
  /// traversal kernels) and Y vertices carried over from earlier phases
  /// (the active trees). Their union is exactly the forest's Y set, so
  /// classification sweeps them instead of [0, ny).
  FrontierQueue<vid_t> touched_y{0};
  FrontierQueue<vid_t> carry_y{0};
  FrontierQueue<vid_t> renewable_y{0};  ///< classification output
  FrontierQueue<vid_t> active_y{0};     ///< classification output
  /// Still-unmatched tree roots, maintained across phases (augmented
  /// roots leave; a matched vertex never becomes unmatched again), so
  /// renewable-root collection and rebuild re-rooting are O(|roots|)
  /// instead of O(nx).
  FrontierQueue<vid_t> roots{0};
  FrontierQueue<vid_t> roots_scratch{0};
  FrontierQueue<vid_t> renewable_roots{0};

  engine::EdgePartition partition;  ///< per-level edge-balance scratch

  vid_t nx = -1;
  vid_t ny = -1;
  std::int64_t prepared_runs = 0;  ///< how many runs bound this workspace

  /// Bind the workspace to an (nx, ny)-sized problem. Returns true when
  /// the arrays were warm (same dimensions as the previous run) and
  /// re-binding cost only epoch bumps plus two bitmap clears; false
  /// when dimensions changed and every array was (re)allocated and
  /// parallel-first-touched.
  bool prepare(vid_t nx_in, vid_t ny_in) {
    const bool warm = nx == nx_in && ny == ny_in;
    nx = nx_in;
    ny = ny_in;
    const auto ux = static_cast<std::size_t>(nx);
    const auto uy = static_cast<std::size_t>(ny);
    if (warm) {
      root_stamp.bump();
      leaf_stamp.bump();
      pool_stamp.bump();
      visited.clear_all();
      active_x.clear_all();
    } else {
      root_x.resize_uninit(ux);
      leaf.resize_uninit(ux);
      parent.resize_uninit(uy);
      root_y.resize_uninit(uy);
      root_stamp.reset(ux);
      leaf_stamp.reset(ux);
      pool_stamp.reset(uy);
      visited.reset(uy);
      active_x.reset(ux);
      frontier.ensure_capacity(ux + 1);
      next.ensure_capacity(ux + 1);
      pool.ensure_capacity(uy);
      pool_failed.ensure_capacity(uy);
      touched_y.ensure_capacity(uy);
      carry_y.ensure_capacity(uy);
      renewable_y.ensure_capacity(uy);
      active_y.ensure_capacity(uy);
      roots.ensure_capacity(ux);
      roots_scratch.ensure_capacity(ux);
      renewable_roots.ensure_capacity(ux);
    }
    frontier.clear();
    next.clear();
    pool.clear();
    pool_failed.clear();
    touched_y.clear();
    carry_y.clear();
    renewable_y.clear();
    active_y.clear();
    roots.clear();
    roots_scratch.clear();
    renewable_roots.clear();
    ++prepared_runs;
    return warm;
  }
};

}  // namespace graftmatch
