// MS-BFS-Graft: the paper's primary contribution (Algorithm 3).
//
// A multi-source, level-synchronous BFS matching algorithm with two
// accelerators:
//
//  * direction-optimizing BFS (Beamer et al.): each level runs top-down
//    (scan the frontier's adjacency) when the frontier is small, and
//    bottom-up (scan the unvisited Y vertices' adjacency, stopping at
//    the first active-tree neighbor) when it is large -- the switch is
//    |F| < numUnvisitedY / alpha;
//
//  * tree grafting: after augmentation, trees that produced an
//    augmenting path ("renewable") are dismantled, but their Y vertices
//    are immediately re-attached (grafted) onto the surviving "active"
//    trees wherever an edge permits, so active trees resume growing from
//    a large frontier instead of being rebuilt from scratch. Grafting is
//    only applied when |activeX| > |renewableY| / alpha; otherwise the
//    whole forest is rebuilt (profitable early on, when most trees are
//    renewable).
//
// Setting direction_optimizing = tree_grafting = false in RunConfig
// yields the plain MS-BFS baseline of Azad et al. [4], which Fig. 7's
// ablation measures against.
#pragma once

#include "graftmatch/core/graft_workspace.hpp"
#include "graftmatch/core/run_stats.hpp"
#include "graftmatch/graph/bipartite_graph.hpp"
#include "graftmatch/graph/matching.hpp"

namespace graftmatch {

class SessionContext;

/// Grow `matching` to maximum cardinality with MS-BFS-Graft.
/// Deterministic result cardinality regardless of thread count.
/// Per-vertex state comes from `session`'s warm-workspace pool (see
/// runtime/context.hpp): the run leases a workspace and hands it back
/// before returning, so repeated runs in one session reuse warm,
/// first-touched arrays and nothing is pinned per host thread.
RunStats ms_bfs_graft(SessionContext& session, const BipartiteGraph& g,
                      Matching& matching, const RunConfig& config = {});

/// As above with an explicit workspace (reusable across runs and across
/// graphs; see core/graft_workspace.hpp for the reuse contract).
RunStats ms_bfs_graft(SessionContext& session, const BipartiteGraph& g,
                      Matching& matching, const RunConfig& config,
                      GraftWorkspace& workspace);

/// Ambient-session conveniences: as above under the calling thread's
/// ambient session (the process default when none is bound).
RunStats ms_bfs_graft(const BipartiteGraph& g, Matching& matching,
                      const RunConfig& config = {});
RunStats ms_bfs_graft(const BipartiteGraph& g, Matching& matching,
                      const RunConfig& config, GraftWorkspace& workspace);

/// Plain MS-BFS baseline (no grafting, no direction optimization).
RunStats ms_bfs(SessionContext& session, const BipartiteGraph& g,
                Matching& matching, RunConfig config = {});
RunStats ms_bfs(const BipartiteGraph& g, Matching& matching,
                RunConfig config = {});

}  // namespace graftmatch
