// Cache-line aware containers to avoid false sharing in parallel loops.
#pragma once

#include <cstddef>
#include <vector>

namespace graftmatch {

/// Destructive-interference distance; hardcoded because
/// std::hardware_destructive_interference_size is not universally
/// available and 64 bytes matches every x86-64 part we target.
inline constexpr std::size_t kCacheLineBytes = 64;

/// A value padded out to a full cache line so per-thread counters that
/// live in an array do not false-share.
template <typename T>
struct alignas(kCacheLineBytes) Padded {
  T value{};

  Padded() = default;
  explicit Padded(const T& v) : value(v) {}

  operator T&() noexcept { return value; }
  operator const T&() const noexcept { return value; }
};

/// Convenience: a vector of per-thread padded slots.
template <typename T>
using PerThread = std::vector<Padded<T>>;

/// Sum all per-thread slots (single-threaded reduction, call after the
/// parallel region has joined).
template <typename T>
T per_thread_sum(const PerThread<T>& slots) {
  T total{};
  for (const auto& slot : slots) total += slot.value;
  return total;
}

}  // namespace graftmatch
