// Walker/Vose alias method: O(1) sampling from a fixed discrete
// distribution after O(n) setup. Used by the Chung-Lu and web-crawl
// generators to draw endpoints proportional to per-vertex weights.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graftmatch/runtime/prng.hpp"

namespace graftmatch {

class AliasTable {
 public:
  AliasTable() = default;

  /// Build from non-negative weights; at least one must be positive.
  explicit AliasTable(std::span<const double> weights) {
    const std::size_t n = weights.size();
    if (n == 0) throw std::invalid_argument("alias table: empty weights");

    double total = 0.0;
    for (const double w : weights) {
      if (w < 0.0) throw std::invalid_argument("alias table: negative weight");
      total += w;
    }
    if (total <= 0.0) {
      throw std::invalid_argument("alias table: all weights zero");
    }

    probability_.resize(n);
    alias_.assign(n, 0);
    // Vose's algorithm: split indices into under-full and over-full
    // buckets of the scaled distribution, then pair them up.
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small;
    std::vector<std::uint32_t> large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
      (scaled[i] < 1.0 ? small : large).push_back(
          static_cast<std::uint32_t>(i));
    }
    while (!small.empty() && !large.empty()) {
      const std::uint32_t s = small.back();
      small.pop_back();
      const std::uint32_t l = large.back();
      large.pop_back();
      probability_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    for (const std::uint32_t i : large) probability_[i] = 1.0;
    for (const std::uint32_t i : small) probability_[i] = 1.0;
  }

  /// Draw an index with probability proportional to its weight.
  std::size_t sample(Xoshiro256& rng) const noexcept {
    const std::size_t column = static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(probability_.size())));
    return rng.uniform() < probability_[column] ? column : alias_[column];
  }

  std::size_t size() const noexcept { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace graftmatch
