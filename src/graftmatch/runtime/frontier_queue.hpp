// Graph500-style parallel frontier queue.
//
// The paper (Sec. IV-A) attributes much of its multi-socket scalability
// to the queue scheme of the Graph500 omp-csr reference code: each thread
// appends discovered vertices to a small thread-private buffer sized to
// fit in L1, and flushes the buffer into a shared global array with a
// single atomic cursor bump when it fills. We reproduce that scheme here.
//
// Usage inside an OpenMP parallel region:
//
//   FrontierQueue<vid_t> next(capacity);
//   #pragma omp parallel
//   {
//     auto handle = next.handle();   // thread-private
//     #pragma omp for
//     for (...) { ...; handle.push(v); ... }
//     handle.flush();                // before leaving the region
//   }
//   std::span<vid_t> frontier = next.items();
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "graftmatch/runtime/atomics.hpp"

namespace graftmatch {

template <typename T>
class FrontierQueue {
 public:
  /// Per-thread buffer length. 256 x 8B = 2 KiB, comfortably L1-resident;
  /// the same order of magnitude the Graph500 reference uses.
  static constexpr std::size_t kLocalCapacity = 256;

  /// `capacity` must bound the total number of pushes between resets.
  /// For frontiers this is the number of X (or Y) vertices.
  explicit FrontierQueue(std::size_t capacity)
      : storage_(capacity), cursor_(0) {}

  /// Thread-private append handle. Create one per thread per parallel
  /// region; flush() before the handle goes out of scope.
  class Handle {
   public:
    explicit Handle(FrontierQueue& queue) noexcept : queue_(queue) {}
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { flush(); }

    void push(const T& item) noexcept {
      local_[count_++] = item;
      if (count_ == kLocalCapacity) flush();
    }

    /// Copy the private buffer into the shared array (thread-safe).
    void flush() noexcept {
      if (count_ == 0) return;
      const std::size_t base =
          static_cast<std::size_t>(fetch_add_relaxed(
              queue_.cursor_, static_cast<std::ptrdiff_t>(count_)));
      assert(base + count_ <= queue_.storage_.size());
      stress::maybe_yield();  // widen the reserve-to-copy window under stress
      for (std::size_t i = 0; i < count_; ++i) {
        queue_.storage_[base + i] = local_[i];
      }
      count_ = 0;
    }

   private:
    FrontierQueue& queue_;
    T local_[kLocalCapacity];
    std::size_t count_ = 0;
  };

  Handle handle() noexcept { return Handle(*this); }

  /// Serial append (outside parallel regions).
  void push(const T& item) noexcept {
    const auto at = static_cast<std::size_t>(cursor_++);
    assert(at < storage_.size());
    storage_[at] = item;
  }

  /// Serial bulk append: one copy, no per-item handle traffic. For
  /// one-thread teams and serial sections between parallel regions.
  void append(std::span<const T> items_to_add) noexcept {
    assert(static_cast<std::size_t>(cursor_) + items_to_add.size() <=
           storage_.size());
    std::copy(items_to_add.begin(), items_to_add.end(),
              storage_.begin() + cursor_);
    cursor_ += static_cast<std::ptrdiff_t>(items_to_add.size());
  }

  /// Items pushed since the last reset. Only valid after all handles
  /// have flushed and the parallel region has joined.
  std::span<T> items() noexcept {
    return {storage_.data(), static_cast<std::size_t>(cursor_)};
  }
  std::span<const T> items() const noexcept {
    return {storage_.data(), static_cast<std::size_t>(cursor_)};
  }

  std::size_t size() const noexcept {
    return static_cast<std::size_t>(cursor_);
  }
  bool empty() const noexcept { return cursor_ == 0; }
  std::size_t capacity() const noexcept { return storage_.size(); }

  /// Forget the contents; storage is reused.
  void clear() noexcept { cursor_ = 0; }

  /// Grow the backing storage to at least `capacity` and clear. Used by
  /// reusable workspaces (core/graft_workspace.hpp) when the bound
  /// problem's dimensions change; never shrinks, so repeated runs on
  /// same-size graphs reallocate nothing.
  void ensure_capacity(std::size_t capacity) {
    if (storage_.size() < capacity) storage_.resize(capacity);
    cursor_ = 0;
  }

  /// Swap contents with another queue (for current/next frontier flips).
  void swap(FrontierQueue& other) noexcept {
    storage_.swap(other.storage_);
    std::swap(cursor_, other.cursor_);
  }

 private:
  std::vector<T> storage_;
  std::ptrdiff_t cursor_;
};

}  // namespace graftmatch
