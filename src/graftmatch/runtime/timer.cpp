#include "graftmatch/runtime/timer.hpp"

#include <cstdio>

namespace graftmatch {

double now_seconds() noexcept {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

std::string format_seconds(double seconds) {
  char buffer[64];
  if (seconds >= 1.0) {
    std::snprintf(buffer, sizeof buffer, "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buffer, sizeof buffer, "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.1f us", seconds * 1e6);
  }
  return buffer;
}

}  // namespace graftmatch
