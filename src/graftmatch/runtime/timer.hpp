// Wall-clock timing utilities.
//
// Matching algorithms are instrumented per step (top-down, bottom-up,
// augment, graft, statistics), so the central abstraction here is an
// accumulating stopwatch that can be started/stopped many times and
// queried for total elapsed seconds.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace graftmatch {

/// Monotonic wall-clock timestamp in seconds.
double now_seconds() noexcept;

/// Simple one-shot timer: construct, then call elapsed().
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds since construction or the last reset().
  double elapsed() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating stopwatch: total time across many start()/stop() pairs.
class Stopwatch {
 public:
  void start() noexcept {
    start_ = clock::now();
    running_ = true;
  }

  void stop() noexcept {
    if (!running_) return;
    total_ += std::chrono::duration<double>(clock::now() - start_).count();
    running_ = false;
    ++laps_;
  }

  void reset() noexcept {
    total_ = 0.0;
    laps_ = 0;
    running_ = false;
  }

  /// Total accumulated seconds over all completed laps.
  double seconds() const noexcept { return total_; }

  /// Number of completed start()/stop() pairs.
  std::int64_t laps() const noexcept { return laps_; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_{};
  double total_ = 0.0;
  std::int64_t laps_ = 0;
  bool running_ = false;
};

/// RAII lap: starts `watch` on construction, stops it on destruction.
class ScopedLap {
 public:
  explicit ScopedLap(Stopwatch& watch) noexcept : watch_(watch) {
    watch_.start();
  }
  ~ScopedLap() { watch_.stop(); }
  ScopedLap(const ScopedLap&) = delete;
  ScopedLap& operator=(const ScopedLap&) = delete;

 private:
  Stopwatch& watch_;
};

/// Human-readable "1.234 s" / "56.7 ms" / "890 us" formatting.
std::string format_seconds(double seconds);

}  // namespace graftmatch
