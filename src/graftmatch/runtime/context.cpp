#include "graftmatch/runtime/context.hpp"

#include "graftmatch/core/graft_workspace.hpp"
#include "graftmatch/runtime/atomics.hpp"

namespace graftmatch {
namespace {

std::uint64_t next_session_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// The calling thread's binding. A plain pointer, not an owner: the
/// bound SessionContext must outlive the scope that bound it, which
/// SessionScope's stack discipline guarantees.
thread_local SessionContext* t_ambient_session = nullptr;

}  // namespace

WorkspacePool::WorkspacePool() = default;

// Out of line because ~unique_ptr<GraftWorkspace> needs the complete
// type, which only this translation unit sees.
WorkspacePool::~WorkspacePool() = default;

GraftWorkspace* WorkspacePool::acquire() {
  {
    const std::scoped_lock lock(mutex_);
    if (!idle_.empty()) {
      GraftWorkspace* workspace = idle_.back().release();
      idle_.pop_back();
      ++outstanding_;
      return workspace;
    }
    ++outstanding_;
    ++created_;
  }
  // Allocate outside the lock: a cold workspace is big and its arrays
  // get sized by prepare() anyway, so there is nothing to protect.
  return new GraftWorkspace;
}

void WorkspacePool::release(GraftWorkspace* workspace) {
  if (workspace == nullptr) return;
  std::unique_ptr<GraftWorkspace> owned(workspace);
  const std::scoped_lock lock(mutex_);
  --outstanding_;
  if (idle_.size() < max_idle_) {
    // LIFO: the next acquire() gets the warmest workspace.
    idle_.push_back(std::move(owned));
  }
}

void WorkspacePool::trim() {
  std::vector<std::unique_ptr<GraftWorkspace>> drop;
  const std::scoped_lock lock(mutex_);
  drop.swap(idle_);
}

void WorkspacePool::set_max_idle(std::size_t max_idle) {
  const std::scoped_lock lock(mutex_);
  max_idle_ = max_idle;
  if (idle_.size() > max_idle_) idle_.resize(max_idle_);
}

std::size_t WorkspacePool::max_idle() const {
  const std::scoped_lock lock(mutex_);
  return max_idle_;
}

std::size_t WorkspacePool::idle() const {
  const std::scoped_lock lock(mutex_);
  return idle_.size();
}

std::size_t WorkspacePool::outstanding() const {
  const std::scoped_lock lock(mutex_);
  return outstanding_;
}

std::size_t WorkspacePool::created() const {
  const std::scoped_lock lock(mutex_);
  return created_;
}

SessionContext::SessionContext() : id_(next_session_id()) {}
SessionContext::~SessionContext() = default;

SessionContext& default_session() {
  // Function-local static: constructed on first use from any thread,
  // leaked at exit order-safely via the magic-static mechanism.
  static SessionContext session;
  return session;
}

SessionContext& ambient_session() noexcept {
  SessionContext* bound = t_ambient_session;
  return bound != nullptr ? *bound : default_session();
}

bool has_ambient_session() noexcept { return t_ambient_session != nullptr; }

namespace detail {

SessionContext* exchange_ambient_session(SessionContext* session) noexcept {
  SessionContext* previous = t_ambient_session;
  t_ambient_session = session;
  return previous;
}

}  // namespace detail

}  // namespace graftmatch

#if defined(GRAFTMATCH_STRESS_HOOKS)

namespace graftmatch::stress {

std::uint32_t effective_yield_period() noexcept {
  const std::uint32_t session_period =
      ambient_session().yield_period_override();
  if (session_period != SessionContext::kInheritYieldPeriod) {
    return session_period;
  }
  return yield_period_ref().load(std::memory_order_relaxed);
}

}  // namespace graftmatch::stress

#endif  // GRAFTMATCH_STRESS_HOOKS
