#include "graftmatch/runtime/cli.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace graftmatch::cli {
namespace {

/// from_chars already rejects leading whitespace and '+'; the extra
/// checks here reject empty tokens and trailing junk ("12x", "3.5GB").
template <typename T>
std::optional<T> parse_full(std::string_view text) noexcept {
  if (text.empty()) return std::nullopt;
  T value{};
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<std::int64_t> try_parse_int(std::string_view text,
                                          std::int64_t min,
                                          std::int64_t max) noexcept {
  const auto value = parse_full<std::int64_t>(text);
  if (!value || *value < min || *value > max) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> try_parse_uint(std::string_view text) noexcept {
  // from_chars<unsigned> accepts "-1" by wrapping; reject a sign up front.
  if (!text.empty() && text.front() == '-') return std::nullopt;
  return parse_full<std::uint64_t>(text);
}

std::optional<double> try_parse_double(std::string_view text, double min,
                                       double max) noexcept {
  const auto value = parse_full<double>(text);
  // from_chars accepts "inf"/"nan" spellings; a finite range check
  // rejects both along with genuine overflow.
  if (!value || !std::isfinite(*value) || *value < min || *value > max) {
    return std::nullopt;
  }
  return value;
}

std::int64_t parse_int_arg(const char* flag, const char* text,
                           std::int64_t min, std::int64_t max) {
  if (const auto value = try_parse_int(text ? text : "", min, max)) {
    return *value;
  }
  std::fprintf(stderr,
               "error: %s expects an integer in [%lld, %lld], got '%s'\n",
               flag, static_cast<long long>(min), static_cast<long long>(max),
               text ? text : "");
  std::exit(2);
}

std::uint64_t parse_uint_arg(const char* flag, const char* text) {
  if (const auto value = try_parse_uint(text ? text : "")) return *value;
  std::fprintf(stderr,
               "error: %s expects a non-negative integer, got '%s'\n", flag,
               text ? text : "");
  std::exit(2);
}

double parse_double_arg(const char* flag, const char* text, double min,
                        double max) {
  if (const auto value = try_parse_double(text ? text : "", min, max)) {
    return *value;
  }
  std::fprintf(stderr, "error: %s expects a number in [%g, %g], got '%s'\n",
               flag, min, max, text ? text : "");
  std::exit(2);
}

}  // namespace graftmatch::cli
