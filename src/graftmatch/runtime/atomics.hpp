// Thin helpers over std::atomic_ref for lock-free flag/pointer updates.
//
// The paper's implementation uses GCC builtins (__sync_fetch_and_add,
// __sync_fetch_and_or) directly on plain arrays. We get the same codegen
// portably with C++20 std::atomic_ref, which lets us keep the hot arrays
// as plain contiguous vectors (important for the bottom-up traversal,
// which reads them non-atomically by design where that is safe).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#if defined(GRAFTMATCH_STRESS_HOOKS)
#include <thread>

#include "graftmatch/runtime/prng.hpp"
#endif

namespace graftmatch::stress {

/// Scheduling-jitter hooks for the concurrency stress harness.
///
/// Lock-free races (flag claims, mate CAS, queue-cursor bumps) are only
/// exercised when two threads actually land in the same window, and on a
/// lightly loaded machine the windows are a handful of instructions wide.
/// When the library is compiled with -DGRAFTMATCH_STRESS_HOOKS=ON, every
/// racy primitive below calls maybe_yield() inside its window, which
/// yields the OS thread with probability 1/period. That stretches the
/// windows by whole scheduling quanta and makes lost-update bugs loud
/// under the stress tests and TSan. In normal builds the hook compiles
/// to nothing.
#if defined(GRAFTMATCH_STRESS_HOOKS)

inline constexpr bool kHooksCompiled = true;

inline std::atomic<std::uint32_t>& yield_period_ref() noexcept {
  // 0 disables jitter; N yields with probability 1/N at each hook.
  static std::atomic<std::uint32_t> period{0};
  return period;
}

/// Enable (period > 0) or disable (period == 0) jitter process-wide.
/// Sessions may override per-session via SessionContext::
/// set_yield_period (runtime/context.hpp); threads bound to such a
/// session use the override, everyone else uses this value.
inline void set_yield_period(std::uint32_t period) noexcept {
  yield_period_ref().store(period, std::memory_order_relaxed);
}

/// The period in force for the calling thread: the ambient session's
/// override when one is set, else the process-wide period above.
/// Defined in runtime/context.cpp (this header stays below context.hpp
/// in the include order).
std::uint32_t effective_yield_period() noexcept;

inline void maybe_yield() noexcept {
  const std::uint32_t period = effective_yield_period();
  if (period == 0) return;
  // Per-thread splitmix64 stream, seeded from the TLS slot address so
  // threads diverge without coordination.
  thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ULL ^ reinterpret_cast<std::uintptr_t>(&state);
  if (splitmix64_next(state) % period == 0) std::this_thread::yield();
}

#else  // !GRAFTMATCH_STRESS_HOOKS

inline constexpr bool kHooksCompiled = false;
inline void set_yield_period(std::uint32_t) noexcept {}
inline void maybe_yield() noexcept {}

#endif

}  // namespace graftmatch::stress

namespace graftmatch {

/// Atomically claim a byte flag: set it to 1 and report whether this call
/// performed the transition 0 -> 1. Used to ensure each Y vertex joins
/// exactly one alternating tree in the parallel top-down step.
inline bool claim_flag(std::uint8_t& flag) noexcept {
  // Cheap non-atomic pre-check (paper Sec. III-B: "we check the visited
  // flags before performing the atomic operations").
  if (std::atomic_ref<std::uint8_t>(flag).load(std::memory_order_relaxed) !=
      0) {
    return false;
  }
  stress::maybe_yield();  // widen the check-then-claim window under stress
  return std::atomic_ref<std::uint8_t>(flag).exchange(
             1, std::memory_order_acq_rel) == 0;
}

/// Relaxed atomic store (for benign-race writes such as the leaf pointer,
/// where any single winning value is acceptable).
template <typename T>
inline void relaxed_store(T& location, T value) noexcept {
  static_assert(std::atomic_ref<T>::is_always_lock_free);
  std::atomic_ref<T>(location).store(value, std::memory_order_relaxed);
}

/// Relaxed atomic load.
template <typename T>
inline T relaxed_load(const T& location) noexcept {
  static_assert(std::atomic_ref<T>::is_always_lock_free);
  return std::atomic_ref<const T>(location).load(std::memory_order_relaxed);
}

/// Atomically claim one bit of a packed flag word: set `mask`'s bit and
/// report whether this call performed the 0 -> 1 transition. The
/// claim_flag contract on word-packed bitmaps (runtime/epoch_array.hpp);
/// the acq_rel fetch_or publishes the winner's subsequent tree-pointer
/// writes the same way claim_flag's exchange does.
inline bool claim_bit(std::uint64_t& word, std::uint64_t mask) noexcept {
  // Same cheap non-atomic pre-check as claim_flag (paper Sec. III-B).
  if (std::atomic_ref<std::uint64_t>(word).load(std::memory_order_relaxed) &
      mask) {
    return false;
  }
  stress::maybe_yield();  // widen the check-then-claim window under stress
  return (std::atomic_ref<std::uint64_t>(word).fetch_or(
              mask, std::memory_order_acq_rel) &
          mask) == 0;
}

/// Atomic fetch-or / fetch-and with relaxed ordering (bitmap bits whose
/// owners need no publication beyond the enclosing region join).
template <typename T>
inline T fetch_or_relaxed(T& location, T bits) noexcept {
  static_assert(std::atomic_ref<T>::is_always_lock_free);
  return std::atomic_ref<T>(location).fetch_or(bits,
                                               std::memory_order_relaxed);
}
template <typename T>
inline T fetch_and_relaxed(T& location, T bits) noexcept {
  static_assert(std::atomic_ref<T>::is_always_lock_free);
  return std::atomic_ref<T>(location).fetch_and(bits,
                                                std::memory_order_relaxed);
}

/// Atomic fetch-add with relaxed ordering (counters, queue cursors).
template <typename T>
inline T fetch_add_relaxed(T& location, T delta) noexcept {
  static_assert(std::atomic_ref<T>::is_always_lock_free);
  return std::atomic_ref<T>(location).fetch_add(delta,
                                                std::memory_order_relaxed);
}

/// Compare-and-swap; returns true when `location` transitioned from
/// `expected` to `desired`. Used for lock-free mate claims in the
/// parallel push-relabel and Pothen-Fan baselines.
template <typename T>
inline bool cas(T& location, T expected, T desired) noexcept {
  static_assert(std::atomic_ref<T>::is_always_lock_free);
  stress::maybe_yield();  // widen read-to-CAS windows in callers
  return std::atomic_ref<T>(location).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel,
      std::memory_order_relaxed);
}

}  // namespace graftmatch
