// Runtime system description, used by bench_table1_system to print the
// reproduction-substrate analogue of the paper's Table I.
#pragma once

#include <cstdint>
#include <string>

namespace graftmatch {

struct SystemInfo {
  std::string cpu_model;       ///< from /proc/cpuinfo, or "unknown"
  int logical_cpus = 0;        ///< online logical CPUs
  std::int64_t total_ram_mb = 0;
  std::string compiler;        ///< compiler id + version baked at build time
  int openmp_max_threads = 0;  ///< omp_get_max_threads() at query time
  std::string openmp_version;  ///< _OPENMP date macro, decoded
};

/// Gather a best-effort description of the current machine.
SystemInfo query_system_info();

/// Render as an aligned, human-readable block.
std::string format_system_info(const SystemInfo& info);

}  // namespace graftmatch
