// Thread pinning, mirroring the paper's GOMP_CPU_AFFINITY / KMP_AFFINITY
// "compact" placement (fill one socket before spilling to the next).
//
// On the reproduction substrate (a single-socket container) pinning is a
// no-op performance-wise, but the mechanism is implemented and tested so
// the library behaves as published on real multi-socket hardware.
#pragma once

#include <vector>

namespace graftmatch {

/// Pinning strategies.
enum class PinPolicy {
  kNone,     ///< leave threads wherever the OS puts them
  kCompact,  ///< thread t -> logical CPU (t mod ncpus), filling in order
  kScatter,  ///< round-robin across the CPU list with a stride
};

/// Number of logical CPUs visible to this process.
int logical_cpu_count() noexcept;

/// Pin the *calling* thread to the given logical CPU.
/// Returns false if the kernel rejected the affinity mask.
bool pin_current_thread(int cpu) noexcept;

/// CPU id the calling thread is currently executing on, or -1.
int current_cpu() noexcept;

/// Pin every OpenMP thread in a fresh parallel region according to
/// `policy`. Returns the CPU chosen per thread (index = omp thread id);
/// entries are -1 where pinning failed or policy is kNone.
std::vector<int> pin_openmp_threads(PinPolicy policy);

}  // namespace graftmatch
