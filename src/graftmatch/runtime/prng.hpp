// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in graftmatch (generators, Karp-Sipser's
// random rule, shuffles) draws from these engines so that runs are
// reproducible bit-for-bit given a seed. We implement splitmix64 (for
// seeding and cheap stateless hashing) and xoshiro256** (the workhorse
// engine), both public-domain algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace graftmatch {

/// One splitmix64 step: advances `state` and returns the next value.
/// Useful both as a tiny PRNG and as a mixing/seeding function.
inline std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value; handy for hashing (seed, index) pairs
/// so that parallel loops can draw independent deterministic streams.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64_next(s);
}

/// xoshiro256** 1.0 -- a fast, high-quality 64-bit engine.
/// Satisfies C++ UniformRandomBitGenerator so it composes with
/// std::uniform_int_distribution and friends if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // Seed the four words from splitmix64 as the authors recommend.
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64_next(s);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection-free approximation, which is
  /// adequate for workload generation (bias < 2^-64 * bound).
  std::uint64_t below(std::uint64_t bound) noexcept {
    const unsigned __int128 product =
        static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Jump-free independent substream: a fresh engine deterministically
  /// derived from this engine's seed material and `stream`.
  Xoshiro256 fork(std::uint64_t stream) const noexcept {
    return Xoshiro256(mix64(state_[0] ^ mix64(stream + 0x632be59bd9b4e019ULL)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace graftmatch
