// Strict command-line number parsing shared by the examples and benches.
//
// The tools originally parsed flag values with std::atoi/std::atoll,
// which silently turn garbage into 0 ("--threads banana" ran serial,
// "--size 1e" ran the default size) and wrap on overflow. These helpers
// parse with std::from_chars, require the whole token to be consumed,
// enforce a caller-supplied range, and either return nullopt (try_*)
// or print a usage-style diagnostic and exit(2) (parse_*_arg).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace graftmatch::cli {

/// Parse a whole token as a decimal integer in [min, max]. Rejects
/// empty tokens, leading whitespace or '+', trailing junk, and
/// out-of-range values. Negative numbers are accepted when min < 0.
std::optional<std::int64_t> try_parse_int(
    std::string_view text, std::int64_t min = INT64_MIN,
    std::int64_t max = INT64_MAX) noexcept;

/// As try_parse_int for non-negative 64-bit values (seeds).
std::optional<std::uint64_t> try_parse_uint(std::string_view text) noexcept;

/// Parse a whole token as a finite double in [min, max]. Rejects the
/// "inf"/"nan" spellings std::from_chars would otherwise accept.
std::optional<double> try_parse_double(std::string_view text, double min,
                                       double max) noexcept;

/// Strict CLI-facing wrappers: on any parse or range failure they print
/// "error: <flag> expects ..." to stderr and exit(2).
std::int64_t parse_int_arg(const char* flag, const char* text,
                           std::int64_t min, std::int64_t max);
std::uint64_t parse_uint_arg(const char* flag, const char* text);
double parse_double_arg(const char* flag, const char* text, double min,
                        double max);

}  // namespace graftmatch::cli
