// Small OpenMP helpers shared by the algorithm implementations.
#pragma once

#include <omp.h>

#include <cstdint>
#include <vector>

#include "graftmatch/types.hpp"

namespace graftmatch {

/// Scoped override of the OpenMP thread count; restores the previous
/// value on destruction. `threads <= 0` leaves the runtime default.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) noexcept
      : previous_(omp_get_max_threads()), active_(threads > 0) {
    if (active_) omp_set_num_threads(threads);
  }
  ~ThreadCountGuard() {
    if (active_) omp_set_num_threads(previous_);
  }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int previous_;
  bool active_;
};

/// Exclusive prefix sum; returns the total. Serial (inputs here are
/// per-thread or per-bucket arrays, far too small to parallelize).
template <typename T>
T exclusive_prefix_sum(std::vector<T>& values) {
  T running{};
  for (auto& value : values) {
    T next = running + value;
    value = running;
    running = next;
  }
  return running;
}

/// First-touch initialization: write `value` to every element from inside
/// a parallel loop so pages are faulted in by the threads that will use
/// them (the NUMA placement technique the paper relies on via numactl;
/// on a single socket this degenerates to a parallel fill).
template <typename T>
void first_touch_fill(std::vector<T>& data, const T& value) {
  const std::int64_t n = static_cast<std::int64_t>(data.size());
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) data[static_cast<std::size_t>(i)] = value;
}

}  // namespace graftmatch
