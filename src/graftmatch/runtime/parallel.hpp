// Small OpenMP helpers shared by the algorithm implementations.
#pragma once

#include <omp.h>

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <vector>

#include "graftmatch/runtime/context.hpp"
#include "graftmatch/types.hpp"

#if defined(__SANITIZE_THREAD__)
#define GRAFTMATCH_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GRAFTMATCH_TSAN_ACTIVE 1
#endif
#endif
#ifndef GRAFTMATCH_TSAN_ACTIVE
#define GRAFTMATCH_TSAN_ACTIVE 0
#endif

namespace graftmatch {

/// Width of the team most recently opened by parallel_region() under
/// the calling thread's AMBIENT SESSION (runtime/context.hpp): the
/// requested width before the region opens, overwritten from inside the
/// region with the width the runtime actually granted (they differ
/// under OMP_THREAD_LIMIT or nesting restrictions). A test probe:
/// regression tests for RunConfig::threads pin a thread count, run a
/// solver, and assert the regions it opened were that wide (see
/// tests/test_engine_registry.cpp); the engine's StatsSink reads it to
/// stamp RunStats::threads_used. Relaxed is enough -- probing callers
/// sequence the read after the solver returns. Unbound threads resolve
/// to the default session, so pre-session callers see exactly the old
/// process-global behavior; concurrent sessions each probe their own.
inline std::atomic<int>& last_team_width() noexcept {
  return ambient_session().team_width();
}

/// Count of parallel_region() calls issued so far under the calling
/// thread's ambient session. StatsSink snapshots this at run start: if
/// it moved by finish() time, at least one region ran and
/// last_team_width() holds a granted width for this run rather than a
/// stale or guessed value.
inline std::atomic<std::uint64_t>& region_epoch() noexcept {
  return ambient_session().region_epoch();
}

/// Runs `fn()` on every thread of an OpenMP parallel team. This is the
/// library's only way to open a parallel region; `#pragma omp for`
/// inside `fn` binds to the team as an orphaned worksharing construct.
/// `num_threads <= 0` uses the runtime default.
///
/// Session propagation: the opener's ambient session (see
/// runtime/context.hpp) is re-bound on every team thread before `fn`
/// runs, so emission sites deep inside the body (obs::emit_*,
/// stress::maybe_yield, nested width probes) resolve to the session
/// that opened the region, not to whatever the pool thread was last
/// bound to. The binding is scoped to the region.
///
/// Why a wrapper instead of a bare `#pragma omp parallel`: GCC's
/// libgomp is not TSan-instrumented, so the synchronization that hands
/// a region's shared-variable frame (.omp_data, materialized on the
/// serial thread's stack) to reused pool threads is invisible to the
/// race detector. Workers read that frame before any user statement
/// runs, which TSan reports as a race against whatever the serial
/// thread last wrote at those stack addresses -- either the frame
/// setup itself or stale locals of an earlier region's body. Blanket
/// `race:gomp_*` suppressions are not an answer: suppressions match
/// ANY frame of EITHER stack, and worker stacks are rooted in
/// gomp_thread_start, so they also swallow *real* races in library
/// code (see tools/tsan.supp).
///
/// Under TSan this wrapper removes the capture frame instead of trying
/// to annotate around it. The body is published through a static slot
/// with a release store and fetched by each team thread with an
/// acquire load -- the thread's first instrumented access -- and
/// `default(none)` turns any accidental capture into a compile error.
/// Every access workers make to serial-thread memory therefore goes
/// through the acquired body pointer and is ordered after everything
/// the serial thread wrote before the region. The mirror-image join
/// edge is a release increment per thread after `fn()` returns
/// (destructors of `fn`'s locals, e.g. FrontierQueue handles that
/// flush into shared storage, have already run) and an acquire load on
/// the serial side. Note that OpenMP `reduction` combines *after* the
/// body returns and `critical` uses uninstrumented locks, so bodies
/// accumulate into shared counters with fetch_add (or a std::mutex)
/// instead of using either clause.
///
/// The slot is per call site (one static per lambda type). Team width 1
/// skips the slot entirely (the encountering thread runs the body
/// itself, so there is no frame handoff to hide) and is safe to enter
/// from any number of host threads at once -- this is the serving
/// layer's default shape (solver_threads = 1 per worker session) and
/// what the shard/ block pool relies on. Wider regions serialize
/// concurrent openers of the SAME call site through a per-call-site
/// mutex in TSan builds only, so two sessions may open wide regions
/// concurrently without cross-publishing bodies; release builds take
/// no lock (libgomp hands each `#pragma omp parallel` its own frame,
/// the slot mechanism is not used, and teams are independent).
template <typename Fn>
inline void parallel_region(int num_threads, Fn&& fn) {
  SessionContext& session = ambient_session();
  const int team = num_threads > 0 ? num_threads : omp_get_max_threads();
  session.team_width().store(team, std::memory_order_relaxed);
  session.region_epoch().fetch_add(1, std::memory_order_relaxed);
  auto body = [&session, &fn] {
    const SessionScope bind(session);
    if (omp_get_thread_num() == 0) {
      session.team_width().store(omp_get_num_threads(),
                                 std::memory_order_relaxed);
    }
    fn();
  };
#if GRAFTMATCH_TSAN_ACTIVE
  if (team == 1) {
    // A one-thread team is executed by the encountering thread itself:
    // libgomp never hands the capture frame to a reused pool thread, so
    // the false-positive the slot mechanism works around cannot occur
    // and plain capture is TSan-clean. Taking this branch also lifts
    // the slot's one-opener-per-call-site restriction for one-wide
    // regions, keeping them fully concurrent across host threads.
#pragma omp parallel num_threads(1)
    { body(); }
    return;
  }
  using Body = decltype(body);
  static std::mutex site_mutex;
  static std::atomic<Body*> slot{nullptr};
  static std::atomic<std::uint64_t> joins{0};
  const std::scoped_lock site_lock(site_mutex);
  slot.store(std::addressof(body), std::memory_order_release);
#pragma omp parallel num_threads(team) default(none) shared(slot, joins)
  {
    Body& published = *slot.load(std::memory_order_acquire);
    published();
    joins.fetch_add(1, std::memory_order_release);
  }
  (void)joins.load(std::memory_order_acquire);
#else
#pragma omp parallel num_threads(team)
  { body(); }
#endif
}

/// parallel_region with the runtime-default thread count.
template <typename Fn>
inline void parallel_region(Fn&& fn) {
  parallel_region(0, std::forward<Fn>(fn));
}

/// Scoped override of the OpenMP thread count; restores the previous
/// value on destruction. `threads <= 0` leaves the runtime default.
///
/// Nesting contract: active guards on one thread must be destroyed in
/// LIFO order (stack scoping gives this for free), and nothing else may
/// change the thread count while a guard is active -- otherwise the
/// restores replay stale values in some interleaving and the last
/// writer wins. Debug builds assert both: the guard records its depth
/// in a thread_local nesting counter at construction and checks at
/// destruction that it is the innermost active guard and that the
/// value it applied is still in force. The OpenMP nthreads-var is a
/// per-thread ICV, so guards on different host threads (the shard/
/// block pool, serve/ workers) never interact.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int threads) noexcept
      : previous_(omp_get_max_threads()),
        applied_(threads),
        active_(threads > 0) {
    if (active_) {
      omp_set_num_threads(threads);
      depth_ = ++nesting_depth();
    }
  }
  ~ThreadCountGuard() {
    if (active_) {
      assert(nesting_depth() == depth_ &&
             "ThreadCountGuard destroyed out of LIFO order");
      assert(omp_get_max_threads() == applied_ &&
             "thread count changed behind an active ThreadCountGuard");
      --nesting_depth();
      omp_set_num_threads(previous_);
    }
  }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  static int& nesting_depth() noexcept {
    thread_local int depth = 0;
    return depth;
  }

  int previous_;
  int applied_;
  int depth_ = 0;
  bool active_;
};

/// Exclusive prefix sum; returns the total. Serial (inputs here are
/// per-thread or per-bucket arrays, far too small to parallelize).
template <typename T>
T exclusive_prefix_sum(std::vector<T>& values) {
  T running{};
  for (auto& value : values) {
    T next = running + value;
    value = running;
    running = next;
  }
  return running;
}

/// First-touch initialization: write `value` to every element from inside
/// a parallel loop so pages are faulted in by the threads that will use
/// them (the NUMA placement technique the paper relies on via numactl;
/// on a single socket this degenerates to a parallel fill). For pages
/// that are genuinely untouched, pair with storage that was allocated
/// without a serial value-initialization pass (see FirstTouchBuffer in
/// runtime/epoch_array.hpp) -- std::vector's resize zero-fills serially
/// and would fault every page on the constructing thread first.
template <typename T>
void first_touch_fill(T* data, std::size_t count, const T& value) {
  const std::int64_t n = static_cast<std::int64_t>(count);
  parallel_region([&] {
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(i)] = value;
    }
  });
}

template <typename T>
void first_touch_fill(std::vector<T>& data, const T& value) {
  first_touch_fill(data.data(), data.size(), value);
}

}  // namespace graftmatch
