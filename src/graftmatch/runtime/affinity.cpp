#include "graftmatch/runtime/affinity.hpp"

#include <omp.h>
#include <sched.h>
#include <unistd.h>

#include "graftmatch/runtime/parallel.hpp"

namespace graftmatch {

int logical_cpu_count() noexcept {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

bool pin_current_thread(int cpu) noexcept {
  if (cpu < 0) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(static_cast<unsigned>(cpu), &mask);
  return sched_setaffinity(0, sizeof mask, &mask) == 0;
}

int current_cpu() noexcept { return sched_getcpu(); }

std::vector<int> pin_openmp_threads(PinPolicy policy) {
  const int threads = omp_get_max_threads();
  std::vector<int> placement(static_cast<std::size_t>(threads), -1);
  if (policy == PinPolicy::kNone) return placement;

  const int ncpu = logical_cpu_count();
  parallel_region([&] {
    const int tid = omp_get_thread_num();
    int cpu = 0;
    switch (policy) {
      case PinPolicy::kCompact:
        cpu = tid % ncpu;
        break;
      case PinPolicy::kScatter:
        // Stride by half the CPU count so consecutive threads land on
        // different halves (different sockets on a 2-socket node).
        cpu = (tid * (ncpu / 2 > 0 ? ncpu / 2 : 1) + tid / 2) % ncpu;
        break;
      case PinPolicy::kNone:
        break;
    }
    if (pin_current_thread(cpu)) {
      placement[static_cast<std::size_t>(tid)] = cpu;
    }
  });
  return placement;
}

}  // namespace graftmatch
