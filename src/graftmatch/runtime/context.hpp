// Session contexts: the per-session home of everything that used to be
// process-global runtime state.
//
// The one-shot tools (matching_tool, the benches, the diff harness) run
// one solve at a time, so a single set of process-wide globals -- the
// team-width/region-epoch probe atomics in runtime/parallel.hpp, the
// obs trace rings, the thread_local GraftWorkspace -- was invisible.
// The serving layer (src/graftmatch/serve/) runs many independent
// solves concurrently in one process, and under globals those solves
// corrupt each other's stats, traces, and team probes. SessionContext
// gathers all of that state into one object:
//
//  * team_width() / region_epoch(): the parallel_region() probe pair
//    (see runtime/parallel.hpp) -- per session, so a width pinned by
//    one request can't leak into another request's RunStats;
//  * trace(): a private obs::TraceSink, so two armed sessions flush
//    two independent RunTraces;
//  * workspaces(): a warm GraftWorkspace pool with explicit
//    acquire/release, replacing the 3-arg ms_bfs_graft overload's
//    leaked thread_local workspace;
//  * a per-session yield-jitter period overriding the process-wide
//    stress knob (stress builds only).
//
// Binding model. Code finds its session AMBIENTLY: a thread_local
// pointer set by SessionScope (RAII) and propagated onto every thread
// of an OpenMP team by parallel_region(), so deep emission sites
// (obs::emit_* inside kernels, stress::maybe_yield inside atomics)
// need no signature change. A thread with no binding uses the process
// default_session(), which is what makes every pre-session signature
// keep its exact old behavior: one de-facto global context. Session-
// aware entry points (engine::run and the context-first solver
// overloads) install a SessionScope at the top; everything beneath
// inherits it.
//
// Thread-safety: a SessionContext may be shared by many threads (its
// members are individually thread-safe), but one *solve* inside a
// session is still single-owner -- the engine's drivers open parallel
// teams, they are not re-entrant per session. The serve/ layer gives
// each server worker its own long-lived session, which is the intended
// pattern.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graftmatch/obs/trace.hpp"

namespace graftmatch {

struct GraftWorkspace;

/// Bounded LIFO pool of warm GraftWorkspaces. acquire() prefers the
/// most recently released workspace (warmest pages, best chance that
/// prepare() takes the cheap same-dimensions path) and allocates when
/// the pool is empty; release() returns a workspace for reuse, keeping
/// at most max_idle() of them alive. All methods are thread-safe.
class WorkspacePool {
 public:
  WorkspacePool();
  ~WorkspacePool();
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Hand out a workspace (warmest idle one, or a fresh allocation).
  /// Ownership transfers to the caller until release(); prefer
  /// WorkspaceLease, which cannot forget the hand-back.
  GraftWorkspace* acquire();

  /// Return a workspace obtained from acquire(). Destroys it instead of
  /// pooling when max_idle() workspaces are already idle. `workspace`
  /// may be nullptr (no-op).
  void release(GraftWorkspace* workspace);

  /// Drop every idle workspace (outstanding ones are unaffected).
  void trim();

  /// Idle-retention bound; releases beyond it free the workspace.
  void set_max_idle(std::size_t max_idle);
  std::size_t max_idle() const;

  std::size_t idle() const;         ///< workspaces parked in the pool
  std::size_t outstanding() const;  ///< acquired and not yet released
  std::size_t created() const;      ///< total allocations ever made

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<GraftWorkspace>> idle_;
  std::size_t outstanding_ = 0;
  std::size_t created_ = 0;
  std::size_t max_idle_ = 16;
};

/// Move-only RAII handle on a pooled workspace. The destructor returns
/// the workspace; release() does it early (the explicit hand-back the
/// 3-arg ms_bfs_graft overload's thread_local never offered).
class WorkspaceLease {
 public:
  WorkspaceLease() noexcept = default;
  explicit WorkspaceLease(WorkspacePool& pool)
      : pool_(&pool), workspace_(pool.acquire()) {}
  ~WorkspaceLease() { release(); }
  WorkspaceLease(WorkspaceLease&& other) noexcept
      : pool_(other.pool_), workspace_(other.workspace_) {
    other.pool_ = nullptr;
    other.workspace_ = nullptr;
  }
  WorkspaceLease& operator=(WorkspaceLease&& other) noexcept {
    if (this != &other) {
      release();
      pool_ = other.pool_;
      workspace_ = other.workspace_;
      other.pool_ = nullptr;
      other.workspace_ = nullptr;
    }
    return *this;
  }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  /// Hand the workspace back now; the lease becomes empty.
  void release() {
    if (workspace_ != nullptr) pool_->release(workspace_);
    workspace_ = nullptr;
    pool_ = nullptr;
  }

  GraftWorkspace& get() const noexcept { return *workspace_; }
  explicit operator bool() const noexcept { return workspace_ != nullptr; }

 private:
  WorkspacePool* pool_ = nullptr;
  GraftWorkspace* workspace_ = nullptr;
};

class SessionContext {
 public:
  SessionContext();
  ~SessionContext();
  SessionContext(const SessionContext&) = delete;
  SessionContext& operator=(const SessionContext&) = delete;

  /// Process-unique session id (stamped into serve/ responses and
  /// useful when labelling per-session artifacts).
  std::uint64_t id() const noexcept { return id_; }

  /// The parallel_region() probe pair, per session: the width of the
  /// team most recently opened under this session (requested width
  /// before the region opens, overwritten with the granted width from
  /// inside it) and the count of regions opened so far. StatsSink reads
  /// both to stamp RunStats::threads_used; regression tests pin a
  /// thread count and assert on the width (tests/test_engine_registry
  /// .cpp, tests/test_session_context.cpp).
  std::atomic<int>& team_width() noexcept { return team_width_; }
  std::atomic<std::uint64_t>& region_epoch() noexcept {
    return region_epoch_;
  }

  /// This session's trace collector (see obs/trace.hpp). The obs::
  /// free functions route here for whichever session is ambient.
  obs::TraceSink& trace() noexcept { return trace_; }

  /// This session's warm-workspace pool.
  WorkspacePool& workspaces() noexcept { return workspaces_; }

  /// Per-session override of the stress-build yield-jitter period
  /// (runtime/atomics.hpp): 0 disables jitter for threads bound to this
  /// session, N yields with probability 1/N. Until set (or after
  /// clear), the session inherits the process-wide period from
  /// stress::set_yield_period(). No-op state in non-stress builds.
  void set_yield_period(std::uint32_t period) noexcept {
    yield_period_.store(period, std::memory_order_relaxed);
  }
  void clear_yield_period() noexcept {
    yield_period_.store(kInheritYieldPeriod, std::memory_order_relaxed);
  }
  /// The raw override slot (kInheritYieldPeriod when inheriting); use
  /// stress::effective_yield_period() for the resolved value.
  std::uint32_t yield_period_override() const noexcept {
    return yield_period_.load(std::memory_order_relaxed);
  }
  static constexpr std::uint32_t kInheritYieldPeriod = 0xffffffffu;

 private:
  const std::uint64_t id_;
  std::atomic<int> team_width_{0};
  std::atomic<std::uint64_t> region_epoch_{0};
  std::atomic<std::uint32_t> yield_period_{kInheritYieldPeriod};
  obs::TraceSink trace_;
  WorkspacePool workspaces_;
};

/// The process-wide fallback session: what every thread uses until a
/// SessionScope binds something else. Pre-session code paths therefore
/// behave exactly as before this refactor -- one shared width probe,
/// one shared trace, one shared pool.
SessionContext& default_session();

/// The calling thread's bound session, or default_session() when none
/// is bound. parallel_region() propagates the opener's binding onto
/// every team thread for the duration of the region.
SessionContext& ambient_session() noexcept;

/// True when the calling thread has an explicit binding (ambient_
/// session() would not fall back to the default).
bool has_ambient_session() noexcept;

namespace detail {
/// Swap the calling thread's binding; returns the previous one
/// (nullptr = unbound). SessionScope is the only intended caller.
SessionContext* exchange_ambient_session(SessionContext* session) noexcept;
}  // namespace detail

/// RAII binder: makes `session` the calling thread's ambient session
/// for the scope's lifetime, restoring the previous binding after.
/// Scopes nest (inner binding wins) and must be destroyed in LIFO
/// order on a given thread, which stack scoping guarantees.
class SessionScope {
 public:
  explicit SessionScope(SessionContext& session) noexcept
      : previous_(detail::exchange_ambient_session(&session)) {}
  ~SessionScope() { detail::exchange_ambient_session(previous_); }
  SessionScope(const SessionScope&) = delete;
  SessionScope& operator=(const SessionScope&) = delete;

 private:
  SessionContext* previous_;
};

}  // namespace graftmatch
