#include "graftmatch/runtime/system_info.hpp"

#include <omp.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

namespace graftmatch {
namespace {

std::string detect_cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const auto colon = line.find(':');
      if (colon != std::string::npos && colon + 2 <= line.size()) {
        return line.substr(colon + 2);
      }
    }
  }
  return "unknown";
}

std::string compiler_id() {
  std::ostringstream out;
#if defined(__clang__)
  out << "clang " << __clang_major__ << '.' << __clang_minor__ << '.'
      << __clang_patchlevel__;
#elif defined(__GNUC__)
  out << "gcc " << __GNUC__ << '.' << __GNUC_MINOR__ << '.'
      << __GNUC_PATCHLEVEL__;
#else
  out << "unknown";
#endif
  return out.str();
}

std::string openmp_version_string() {
#ifdef _OPENMP
  switch (_OPENMP) {
    case 201107: return "3.1";
    case 201307: return "4.0";
    case 201511: return "4.5";
    case 201811: return "5.0";
    case 202011: return "5.1";
    case 202111: return "5.2";
    default: {
      std::ostringstream out;
      out << "date " << _OPENMP;
      return out.str();
    }
  }
#else
  return "disabled";
#endif
}

}  // namespace

SystemInfo query_system_info() {
  SystemInfo info;
  info.cpu_model = detect_cpu_model();
  const long cpus = sysconf(_SC_NPROCESSORS_ONLN);
  info.logical_cpus = cpus > 0 ? static_cast<int>(cpus) : 1;
  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page_size = sysconf(_SC_PAGESIZE);
  if (pages > 0 && page_size > 0) {
    info.total_ram_mb =
        static_cast<std::int64_t>(pages) * page_size / (1024 * 1024);
  }
  info.compiler = compiler_id();
  info.openmp_max_threads = omp_get_max_threads();
  info.openmp_version = openmp_version_string();
  return info;
}

std::string format_system_info(const SystemInfo& info) {
  std::ostringstream out;
  out << "CPU model          : " << info.cpu_model << '\n'
      << "Logical CPUs       : " << info.logical_cpus << '\n'
      << "RAM                : " << info.total_ram_mb << " MB\n"
      << "Compiler           : " << info.compiler << '\n'
      << "OpenMP version     : " << info.openmp_version << '\n'
      << "OpenMP max threads : " << info.openmp_max_threads << '\n';
  return out.str();
}

}  // namespace graftmatch
